(** Persisted operator artifacts (".sca" files): a versioned, checksummed
    binary container for a sparsified representation [G ~ Q G_w Q'], so the
    expensive extraction (many black-box solves) and the cheap serving
    (three sparse matvecs per application) can live in different processes.

    The format is explicit — every integer and float is written out field
    by field; no closure or abstract value is ever [Marshal]ed — so a file
    written today stays readable by future versions, and a reader can
    reject damage with a precise, typed error instead of a segfault or a
    silently wrong answer.

    Layout (all integers little-endian 64-bit, floats as IEEE-754 bit
    patterns):

    {v
    offset  0: magic  "SUBCOP"              (6 bytes)
    offset  6: format version "A1"          (2 bytes)
    offset  8: payload length               (int64)
    offset 16: MD5 digest of the payload    (16 raw bytes)
    offset 32: payload                      (payload-length bytes)
    v}

    The payload holds [n], [solves], the [kind]/[source] strings
    (length-prefixed), then the two CSR blocks [q] and [gw] (rows, cols,
    then the length-prefixed [row_ptr], [col_idx] and [values] arrays).

    Failure modes, in the order the loader checks them: a file that does
    not start with the magic is {!Not_an_artifact}; a recognized magic with
    an unknown version tag is {!Unsupported_version}; a file shorter than
    its header demands is {!Truncated}; payload bytes that do not hash to
    the stored digest are {!Checksum_mismatch}; and a payload that passes
    the checksum but is internally inconsistent (negative sizes, CSR
    invariant violations, trailing bytes) is {!Malformed}. Writes go
    through a temporary file that is fsync'd, renamed into place, and
    sealed with an fsync of the containing directory, so neither a crashed
    writer nor a power loss can leave a half-written (or renamed-but-empty)
    artifact under the target name.

    {!Manifest} stores the multi-shard index of a sharded extraction in the
    same container discipline under its own magic ("SUBCMF" / "M1"); see
    {!Manifest} and {!load_any}. *)

type error =
  | Not_an_artifact of string  (** no magic: not a substrate operator artifact *)
  | Unsupported_version of string  (** artifact magic, but an unknown format version *)
  | Truncated of string  (** file ends before the header or payload does *)
  | Checksum_mismatch  (** payload does not hash to the stored digest *)
  | Malformed of string  (** checksum passed but the payload is inconsistent *)
  | Io of string  (** underlying file read/write failure *)

exception Error of { path : string; error : error }

(** One-line human-readable rendering of an {!error}. *)
val error_message : error -> string

(** What an artifact stores: the two sparse factors plus provenance. *)
type payload = {
  n : int;  (** operator dimension (contacts) *)
  solves : int;  (** black-box solves spent building the representation *)
  kind : string;  (** machine-readable family, e.g. ["wavelet"], ["lowrank"] *)
  source : string;  (** human-readable provenance (layout, solver, thresholds) *)
  q : Sparsemat.Csr.t;  (** n x n change of basis, orthonormal columns *)
  gw : Sparsemat.Csr.t;  (** n x n transformed matrix, symmetric *)
}

(** Write the payload to [path] (atomically and durably: temp file, fsync,
    rename, directory fsync). The CSR values round-trip bit-exactly —
    {!load} returns the same floats to the last bit.
    @raise Error with {!Io} on filesystem failure. *)
val save : path:string -> payload -> unit

(** Read an artifact back, verifying magic, version, length and checksum
    before parsing, and the CSR invariants after.
    @raise Error on any of the failure modes above. *)
val load : path:string -> payload

(** Multi-shard manifests (".scm" files): the index of a sharded
    extraction. Each quadtree-region shard persists its own single-operator
    artifact; the manifest records the shard list (region coordinates,
    contact ids, artifact file name and MD5, solve count) together with the
    layout's geometry digest and a per-shard status — [Complete], or
    [Quarantined reason] for a shard that exhausted its resilience ladder.
    The container framing (magic "SUBCMF", version "M1", payload length,
    whole-payload MD5) and the typed {!error} failure modes are shared with
    single-operator artifacts. *)
module Manifest : sig
  type status =
    | Complete  (** the shard's artifact is on disk and its digest is recorded *)
    | Quarantined of string  (** extraction failed; the reason names the exhausted ladder *)

  type entry = {
    shard_id : int;  (** position in the deterministic shard plan *)
    level : int;  (** quadtree level of the shard's region *)
    ix : int;  (** region x index at [level] *)
    iy : int;  (** region y index at [level] *)
    contacts : int array;  (** global contact ids, strictly ascending *)
    file : string;  (** shard artifact file name, relative to the manifest's directory *)
    file_digest : string;  (** MD5 of the shard artifact's bytes (16 raw bytes) *)
    solves : int;  (** black-box solves the shard's extraction spent *)
    status : status;
  }

  type t = {
    n : int;  (** global operator dimension (contacts in the full layout) *)
    total_shards : int;  (** planned shards; [entries] may lag mid-extraction *)
    geometry_digest : string;  (** MD5 of the layout geometry (16 raw bytes) *)
    source : string;  (** human-readable provenance *)
    entries : entry array;
  }

  val is_complete : entry -> bool

  (** Entries with status [Complete], in entry order. *)
  val complete : t -> entry list

  (** Entries with status [Quarantined], in entry order. *)
  val quarantined : t -> entry list

  (** Write the manifest to [path], atomically and durably (same temp file
      + fsync + rename + directory fsync discipline as {!val:save}).
      @raise Error with {!Malformed} if the manifest is internally
      inconsistent (overlapping shards, out-of-range contacts, duplicate
      ids), {!Io} on filesystem failure. *)
  val save : path:string -> t -> unit

  (** Read a manifest back, verifying framing, checksum and internal
      consistency. A single-operator artifact is rejected with a
      {!Not_an_artifact} naming the confusion.
      @raise Error on any failure mode. *)
  val load : path:string -> t
end

(** Load either file family, dispatching on the magic bytes: a
    single-operator artifact or a shard manifest.
    @raise Error on anything that is neither. *)
val load_any : path:string -> [ `Operator of payload | `Manifest of Manifest.t ]
