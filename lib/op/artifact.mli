(** Persisted operator artifacts (".sca" files): a versioned, checksummed
    binary container for a sparsified representation [G ~ Q G_w Q'], so the
    expensive extraction (many black-box solves) and the cheap serving
    (three sparse matvecs per application) can live in different processes.

    The format is explicit — every integer and float is written out field
    by field; no closure or abstract value is ever [Marshal]ed — so a file
    written today stays readable by future versions, and a reader can
    reject damage with a precise, typed error instead of a segfault or a
    silently wrong answer.

    Layout (all integers little-endian 64-bit, floats as IEEE-754 bit
    patterns):

    {v
    offset  0: magic  "SUBCOP"              (6 bytes)
    offset  6: format version "A1"          (2 bytes)
    offset  8: payload length               (int64)
    offset 16: MD5 digest of the payload    (16 raw bytes)
    offset 32: payload                      (payload-length bytes)
    v}

    The payload holds [n], [solves], the [kind]/[source] strings
    (length-prefixed), then the two CSR blocks [q] and [gw] (rows, cols,
    then the length-prefixed [row_ptr], [col_idx] and [values] arrays).

    Failure modes, in the order the loader checks them: a file that does
    not start with the magic is {!Not_an_artifact}; a recognized magic with
    an unknown version tag is {!Unsupported_version}; a file shorter than
    its header demands is {!Truncated}; payload bytes that do not hash to
    the stored digest are {!Checksum_mismatch}; and a payload that passes
    the checksum but is internally inconsistent (negative sizes, CSR
    invariant violations, trailing bytes) is {!Malformed}. Writes go
    through a temporary file renamed into place, so a crashed writer never
    leaves a half-written artifact under the target name. *)

type error =
  | Not_an_artifact of string  (** no magic: not a substrate operator artifact *)
  | Unsupported_version of string  (** artifact magic, but an unknown format version *)
  | Truncated of string  (** file ends before the header or payload does *)
  | Checksum_mismatch  (** payload does not hash to the stored digest *)
  | Malformed of string  (** checksum passed but the payload is inconsistent *)
  | Io of string  (** underlying file read/write failure *)

exception Error of { path : string; error : error }

(** One-line human-readable rendering of an {!error}. *)
val error_message : error -> string

(** What an artifact stores: the two sparse factors plus provenance. *)
type payload = {
  n : int;  (** operator dimension (contacts) *)
  solves : int;  (** black-box solves spent building the representation *)
  kind : string;  (** machine-readable family, e.g. ["wavelet"], ["lowrank"] *)
  source : string;  (** human-readable provenance (layout, solver, thresholds) *)
  q : Sparsemat.Csr.t;  (** n x n change of basis, orthonormal columns *)
  gw : Sparsemat.Csr.t;  (** n x n transformed matrix, symmetric *)
}

(** Write the payload to [path] (atomically: temp file + rename). The CSR
    values round-trip bit-exactly — {!load} returns the same floats to the
    last bit.
    @raise Error with {!Io} on filesystem failure. *)
val save : path:string -> payload -> unit

(** Read an artifact back, verifying magic, version, length and checksum
    before parsing, and the CSR invariants after.
    @raise Error on any of the failure modes above. *)
val load : path:string -> payload
