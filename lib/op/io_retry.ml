(* EINTR-restarting file-descriptor I/O.

   OCaml's buffered channels already restart interrupted reads and writes
   inside the runtime, but the raw [Unix] syscall wrappers do not: a
   process fielding signals — a daemon with SIGTERM/SIGCHLD handlers, a
   CLI run under a profiler's SIGPROF — sees [Unix.write] and [Unix.read]
   raise [EINTR] mid-transfer. A write loop that treats that as fatal
   leaves a torn file behind the atomic-rename discipline's back; a read
   loop loses its place in a length-prefixed stream. Every raw-fd
   transfer in the repo (artifact saves, the serve protocol's socket
   framing) goes through these helpers instead. *)

let rec restart f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let rec write_all fd buf off len =
  if len > 0 then begin
    match Unix.write fd buf off len with
    | written -> write_all fd buf (off + written) (len - written)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len
  end

let rec really_read fd buf off len =
  if len > 0 then begin
    match Unix.read fd buf off len with
    | 0 -> raise End_of_file
    | got -> really_read fd buf (off + got) (len - got)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_read fd buf off len
  end
