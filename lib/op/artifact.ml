(* Versioned, checksummed on-disk container for sparsified representations.

   The discipline mirrors Substrate.Checkpoint: a magic string carrying the
   format version, an explicit payload length, an MD5 digest over the exact
   payload bytes, and typed rejection of anything that does not check out.
   Unlike the checkpoint (which Marshals whole solver-response stages and
   only ever talks to the process that wrote it), an artifact is a
   long-lived interchange file, so the payload is written field by field —
   integers as little-endian int64, floats by their IEEE-754 bit pattern —
   and never Marshal'd: no closures, no abstract blocks, bit-exact float
   round-trips. *)

module Csr = Sparsemat.Csr

type error =
  | Not_an_artifact of string
  | Unsupported_version of string
  | Truncated of string
  | Checksum_mismatch
  | Malformed of string
  | Io of string

exception Error of { path : string; error : error }

let error_message = function
  | Not_an_artifact what -> Printf.sprintf "not a substrate operator artifact (%s)" what
  | Unsupported_version v ->
    Printf.sprintf
      "unsupported format version %S (this build reads \"A1\" operators and \"M1\" manifests)" v
  | Truncated what -> Printf.sprintf "truncated artifact: %s" what
  | Checksum_mismatch -> "payload checksum mismatch: the file is corrupt"
  | Malformed what -> Printf.sprintf "malformed artifact payload: %s" what
  | Io msg -> Printf.sprintf "i/o failure: %s" msg

let () =
  Printexc.register_printer (function
    | Error { path; error } -> Some (Printf.sprintf "Subcouple_op.Artifact.Error(%s: %s)" path (error_message error))
    | _ -> None)

type payload = {
  n : int;
  solves : int;
  kind : string;
  source : string;
  q : Csr.t;
  gw : Csr.t;
}

(* "SUBCOP" identifies the file family; the two bytes after it are the
   format version. A future incompatible layout bumps the version, keeping
   Not_an_artifact and Unsupported_version distinguishable. *)
let magic_family = "SUBCOP"
let format_version = "A1"
let header_bytes = 8 + 8 + 16  (* magic+version, payload length, MD5 *)

let fail path error = raise (Error { path; error })

(* --- writing ----------------------------------------------------------- *)

let add_int b i = Buffer.add_int64_le b (Int64.of_int i)
let add_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_string_field b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_int_array b a =
  add_int b (Array.length a);
  Array.iter (add_int b) a

let add_float_array b a =
  add_int b (Array.length a);
  Array.iter (add_float b) a

let add_csr b m =
  let row_ptr, col_idx, values = Csr.unpack m in
  add_int b (Csr.rows m);
  add_int b (Csr.cols m);
  add_int_array b row_ptr;
  add_int_array b col_idx;
  add_float_array b values

let encode p =
  let b = Buffer.create 4096 in
  add_int b p.n;
  add_int b p.solves;
  add_string_field b p.kind;
  add_string_field b p.source;
  add_csr b p.q;
  add_csr b p.gw;
  Buffer.contents b

let validate_payload path p =
  let square_of_n what m =
    if Csr.rows m <> p.n || Csr.cols m <> p.n then
      fail path
        (Malformed
           (Printf.sprintf "%s is %dx%d but the operator dimension is %d" what (Csr.rows m) (Csr.cols m) p.n))
  in
  if p.n < 0 then fail path (Malformed (Printf.sprintf "negative operator dimension %d" p.n));
  if p.solves < 0 then fail path (Malformed (Printf.sprintf "negative solve count %d" p.solves));
  square_of_n "Q" p.q;
  square_of_n "G_w" p.gw

(* Frame a payload in the shared container layout: 8 magic bytes (family +
   version), payload length, payload MD5, payload. Both file families
   (".sca" operator artifacts and ".scm" shard manifests) use it. *)
let frame ~family ~version body =
  let b = Buffer.create (header_bytes + String.length body) in
  Buffer.add_string b family;
  Buffer.add_string b version;
  add_int b (String.length body);
  Buffer.add_string b (Digest.string body);
  Buffer.add_string b body;
  b

(* Persist the rename itself: without an fsync of the containing directory
   a power loss can forget the new directory entry (or leave the rename
   but not the data, had the file not been synced first). Best-effort: some
   filesystems refuse to open a directory for reading. *)
let fsync_dir path =
  match Io_retry.restart (fun () -> Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0) with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> Io_retry.restart (fun () -> Unix.fsync fd))
  | exception Unix.Unix_error _ -> ()

(* Temp file + fsync + rename + directory fsync: a crashed (or power-lost)
   writer never leaves a torn, empty or unlinked file under the target
   name. The data is on stable storage before the rename makes it
   visible. *)
let write_atomic ~path b =
  let tmp = path ^ ".tmp" in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let bytes = Buffer.to_bytes b in
        (* EINTR-restarting: a bare [Unix.write] loop aborts mid-file when
           a signal lands (daemons handle signals routinely), leaving a
           torn tmp file for the rename below to publish. *)
        Io_retry.write_all fd bytes 0 (Bytes.length bytes);
        Io_retry.restart (fun () -> Unix.fsync fd));
    Sys.rename tmp path;
    fsync_dir path
  with
  | () -> ()
  | exception Sys_error msg -> fail path (Io msg)
  | exception Unix.Unix_error (e, fn, arg) ->
    fail path (Io (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))

let save ~path p =
  validate_payload path p;
  write_atomic ~path (frame ~family:magic_family ~version:format_version (encode p))

(* --- reading ----------------------------------------------------------- *)

type reader = { s : string; mutable pos : int; r_path : string }

let need r k what =
  if r.pos + k > String.length r.s then
    fail r.r_path
      (Malformed (Printf.sprintf "payload ends inside %s (offset %d, wanted %d more bytes)" what r.pos k))

let read_int r what =
  need r 8 what;
  let v64 = String.get_int64_le r.s r.pos in
  r.pos <- r.pos + 8;
  let v = Int64.to_int v64 in
  if not (Int64.equal (Int64.of_int v) v64) then
    fail r.r_path (Malformed (Printf.sprintf "%s does not fit a native int (%Ld)" what v64));
  v

let read_length r what =
  let v = read_int r what in
  if v < 0 then fail r.r_path (Malformed (Printf.sprintf "negative %s (%d)" what v));
  (* Every element needs at least one byte in the remaining payload, which
     caps hostile lengths before any allocation happens. *)
  if v > String.length r.s - r.pos then
    fail r.r_path (Malformed (Printf.sprintf "%s (%d) exceeds the remaining payload" what v));
  v

let read_string_field r what =
  let len = read_length r (what ^ " length") in
  need r len what;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let read_int_array r what =
  let len = read_length r (what ^ " length") in
  need r (8 * len) what;
  let a = Array.make len 0 in
  for i = 0 to len - 1 do
    a.(i) <- read_int r what
  done;
  a

let read_float_array r what =
  let len = read_length r (what ^ " length") in
  need r (8 * len) what;
  let a = Array.make len 0.0 in
  for i = 0 to len - 1 do
    a.(i) <- Int64.float_of_bits (String.get_int64_le r.s r.pos);
    r.pos <- r.pos + 8
  done;
  a

let read_csr r what =
  let rows = read_int r (what ^ " rows") in
  let cols = read_int r (what ^ " cols") in
  let row_ptr = read_int_array r (what ^ " row_ptr") in
  let col_idx = read_int_array r (what ^ " col_idx") in
  let values = read_float_array r (what ^ " values") in
  match Csr.pack ~rows ~cols ~row_ptr ~col_idx ~values with
  | m -> m
  | exception Invalid_argument msg -> fail r.r_path (Malformed (what ^ ": " ^ msg))

let decode path body =
  let r = { s = body; pos = 0; r_path = path } in
  let n = read_int r "operator dimension" in
  let solves = read_int r "solve count" in
  let kind = read_string_field r "kind" in
  let source = read_string_field r "source" in
  let q = read_csr r "Q" in
  let gw = read_csr r "G_w" in
  if r.pos <> String.length body then
    fail path (Malformed (Printf.sprintf "%d trailing payload bytes" (String.length body - r.pos)));
  let p = { n; solves; kind; source; q; gw } in
  validate_payload path p;
  p

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error msg -> fail path (Io msg)

(* Check the container framing of [raw] against the expected family and
   version and return the verified payload bytes. Shared by the operator
   and manifest loaders. *)
let frame_body ~family ~version path raw =
  let full_magic = family ^ version in
  if String.length raw < 8 then begin
    if String.length raw > 0 && String.equal raw (String.sub full_magic 0 (String.length raw)) then
      fail path (Truncated (Printf.sprintf "only %d of the 8 magic bytes present" (String.length raw)))
    else fail path (Not_an_artifact (if String.length raw = 0 then "empty file" else "no magic header"))
  end;
  if not (String.equal (String.sub raw 0 6) family) then
    fail path (Not_an_artifact "no magic header");
  let found_version = String.sub raw 6 2 in
  if not (String.equal found_version version) then fail path (Unsupported_version found_version);
  if String.length raw < header_bytes then
    fail path
      (Truncated
         (Printf.sprintf "header is %d bytes, file has %d" header_bytes (String.length raw)));
  let declared64 = String.get_int64_le raw 8 in
  let declared = Int64.to_int declared64 in
  if declared < 0 || not (Int64.equal (Int64.of_int declared) declared64) then
    fail path (Malformed (Printf.sprintf "implausible payload length %Ld" declared64));
  let present = String.length raw - header_bytes in
  if present < declared then
    fail path
      (Truncated (Printf.sprintf "payload declares %d bytes, file holds %d" declared present));
  if present > declared then
    fail path (Malformed (Printf.sprintf "%d trailing bytes after the payload" (present - declared)));
  let stored_digest = String.sub raw 16 16 in
  let body = String.sub raw header_bytes declared in
  if not (String.equal (Digest.string body) stored_digest) then fail path Checksum_mismatch;
  body

let load ~path =
  decode path (frame_body ~family:magic_family ~version:format_version path (read_file path))

(* --- shard manifests ---------------------------------------------------- *)

module Manifest = struct
  (* Captured before the manifest's own magic shadows it below. *)
  let operator_family = magic_family

  type status = Complete | Quarantined of string

  type entry = {
    shard_id : int;
    level : int;
    ix : int;
    iy : int;
    contacts : int array;
    file : string;
    file_digest : string;
    solves : int;
    status : status;
  }

  type t = {
    n : int;
    total_shards : int;
    geometry_digest : string;
    source : string;
    entries : entry array;
  }

  let magic_family = "SUBCMF"
  let format_version = "M1"

  let is_complete e = match e.status with Complete -> true | Quarantined _ -> false

  let complete m = List.filter is_complete (Array.to_list m.entries)
  let quarantined m = List.filter (fun e -> not (is_complete e)) (Array.to_list m.entries)

  let validate path m =
    if m.n < 0 then fail path (Malformed (Printf.sprintf "negative operator dimension %d" m.n));
    if m.total_shards < 0 then
      fail path (Malformed (Printf.sprintf "negative shard count %d" m.total_shards));
    if Array.length m.entries > m.total_shards then
      fail path
        (Malformed
           (Printf.sprintf "%d entries but only %d planned shards" (Array.length m.entries)
              m.total_shards));
    if String.length m.geometry_digest <> 16 then
      fail path (Malformed "geometry digest is not a 16-byte MD5");
    let claimed = Array.make (max 1 m.n) false in
    let seen_ids = Hashtbl.create 16 in
    Array.iter
      (fun e ->
        let where what = Printf.sprintf "shard %d: %s" e.shard_id what in
        if e.shard_id < 0 || e.shard_id >= m.total_shards then
          fail path
            (Malformed (Printf.sprintf "shard id %d out of range [0, %d)" e.shard_id m.total_shards));
        if Hashtbl.mem seen_ids e.shard_id then
          fail path (Malformed (Printf.sprintf "duplicate shard id %d" e.shard_id));
        Hashtbl.add seen_ids e.shard_id ();
        if e.level < 0 || e.ix < 0 || e.iy < 0 then
          fail path (Malformed (where "negative region coordinates"));
        if e.solves < 0 then fail path (Malformed (where "negative solve count"));
        (match e.status with
        | Complete ->
          if String.length e.file = 0 then
            fail path (Malformed (where "complete but names no artifact file"));
          if String.length e.file_digest <> 16 then
            fail path (Malformed (where "artifact digest is not a 16-byte MD5"))
        | Quarantined _ -> ());
        let prev = ref (-1) in
        Array.iter
          (fun c ->
            if c < 0 || c >= m.n then
              fail path (Malformed (where (Printf.sprintf "contact id %d out of range" c)));
            if c <= !prev then fail path (Malformed (where "contact ids not strictly ascending"));
            if claimed.(c) then
              fail path (Malformed (Printf.sprintf "contact %d claimed by two shards" c));
            claimed.(c) <- true;
            prev := c)
          e.contacts)
      m.entries

  let encode m =
    let b = Buffer.create 1024 in
    add_int b m.n;
    add_int b m.total_shards;
    add_string_field b m.geometry_digest;
    add_string_field b m.source;
    add_int b (Array.length m.entries);
    Array.iter
      (fun e ->
        add_int b e.shard_id;
        add_int b e.level;
        add_int b e.ix;
        add_int b e.iy;
        add_int_array b e.contacts;
        add_string_field b e.file;
        add_string_field b e.file_digest;
        add_int b e.solves;
        match e.status with
        | Complete ->
          add_int b 0;
          add_string_field b ""
        | Quarantined reason ->
          add_int b 1;
          add_string_field b reason)
      m.entries;
    Buffer.contents b

  let decode path body =
    let r = { s = body; pos = 0; r_path = path } in
    let n = read_int r "operator dimension" in
    let total_shards = read_int r "shard count" in
    let geometry_digest = read_string_field r "geometry digest" in
    let source = read_string_field r "source" in
    let count = read_length r "entry count" in
    let entries = ref [] in
    for i = 0 to count - 1 do
      let what field = Printf.sprintf "shard entry %d %s" i field in
      let shard_id = read_int r (what "id") in
      let level = read_int r (what "level") in
      let ix = read_int r (what "ix") in
      let iy = read_int r (what "iy") in
      let contacts = read_int_array r (what "contacts") in
      let file = read_string_field r (what "file") in
      let file_digest = read_string_field r (what "file digest") in
      let solves = read_int r (what "solves") in
      let tag = read_int r (what "status") in
      let reason = read_string_field r (what "quarantine reason") in
      let status =
        match tag with
        | 0 -> Complete
        | 1 -> Quarantined reason
        | t -> fail path (Malformed (Printf.sprintf "%s: unknown status tag %d" (what "status") t))
      in
      entries :=
        { shard_id; level; ix; iy; contacts; file; file_digest; solves; status } :: !entries
    done;
    if r.pos <> String.length body then
      fail path (Malformed (Printf.sprintf "%d trailing payload bytes" (String.length body - r.pos)));
    let m =
      { n; total_shards; geometry_digest; source; entries = Array.of_list (List.rev !entries) }
    in
    validate path m;
    m

  let save ~path m =
    validate path m;
    write_atomic ~path (frame ~family:magic_family ~version:format_version (encode m))

  let load ~path =
    let raw = read_file path in
    if String.length raw >= 6 && String.equal (String.sub raw 0 6) operator_family then
      fail path (Not_an_artifact "a single-operator artifact where a shard manifest was expected");
    decode path (frame_body ~family:magic_family ~version:format_version path raw)
end

(* Dispatch on the magic family: ".sca" single-operator artifact or ".scm"
   shard manifest. Anything else fails exactly like [load]. *)
let load_any ~path =
  let raw = read_file path in
  if String.length raw >= 6 && String.equal (String.sub raw 0 6) Manifest.magic_family then
    `Manifest (Manifest.load ~path)
  else `Operator (decode path (frame_body ~family:magic_family ~version:format_version path raw))
