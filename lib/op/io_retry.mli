(** EINTR-restarting file-descriptor I/O.

    The raw [Unix] syscall wrappers surface [EINTR] to the caller; in a
    process that handles signals (the serving daemon, checkpointed CLI
    runs) an interrupted transfer must restart, not abort — an aborted
    write loop leaves a torn temp file, an aborted read loses stream
    position. OCaml's buffered channels restart internally already; use
    these for raw file descriptors. *)

(** [restart f] runs [f], retrying as long as it raises
    [Unix.Unix_error (EINTR, _, _)]. For single syscalls with no partial
    progress ([Unix.fsync], [Unix.openfile], [Unix.select], accept). Do
    not use for [Unix.close] (the descriptor state after an interrupted
    close is unspecified). *)
val restart : (unit -> 'a) -> 'a

(** [write_all fd buf off len] writes the whole range, restarting on
    [EINTR] and continuing after short writes.
    @raise Unix.Unix_error on any other error. *)
val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit

(** [really_read fd buf off len] fills the whole range, restarting on
    [EINTR] and continuing after short reads.
    @raise End_of_file if the stream ends first.
    @raise Unix.Unix_error on any other error. *)
val really_read : Unix.file_descr -> Bytes.t -> int -> int -> unit
