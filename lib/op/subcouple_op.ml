(* The one operator abstraction every "apply G" path routes through.

   An operator is a record of closures plus metadata; representations stay
   whatever they are (black box, CSR factors, row bases, dense matrix) and
   expose a constructor returning this type. The extraction pipelines spend
   solves to build a representation; everything downstream — metrics,
   benchmarks, serving — only ever sees the operator. *)

module Artifact = Artifact

type meta = {
  kind : string;
  source : string;
  symmetric : bool;
}

type t = {
  op_n : int;
  op_apply : La.Vec.t -> La.Vec.t;
  op_batch : jobs:int -> La.Vec.t array -> La.Vec.t array;
  op_storage : int;
  op_solves : unit -> int;
  op_meta : meta;
}

module type S = sig
  type repr

  val op : repr -> t
end

let make ?batch ?(pure = false) ?(storage_floats = 0) ?(solves_spent = fun () -> 0) ~describe ~n
    apply =
  if n < 0 then invalid_arg "Subcouple_op.make: negative dimension";
  if storage_floats < 0 then invalid_arg "Subcouple_op.make: negative storage";
  let batch =
    match batch with
    | Some b -> b
    | None ->
      if pure then fun ~jobs vs -> Parallel.Pool.map_array ~jobs apply vs
      else fun ~jobs:_ vs -> Array.map apply vs
  in
  { op_n = n; op_apply = apply; op_batch = batch; op_storage = storage_floats;
    op_solves = solves_spent; op_meta = describe }

let n t = t.op_n
let describe t = t.op_meta
let storage_floats t = t.op_storage
let solves_spent t = t.op_solves ()

let check_length t v =
  if Array.length v <> t.op_n then
    invalid_arg
      (Printf.sprintf "Subcouple_op: expected a vector of %d components, got %d" t.op_n
         (Array.length v))

let apply t v =
  check_length t v;
  t.op_apply v

let apply_batch_span = "op.apply_batch"
let apply_batch_size_dist = Trace.dist "op.batch_size"

let apply_batch ?(jobs = 1) t vs =
  Array.iter (check_length t) vs;
  Trace.observe apply_batch_size_dist (float_of_int (Array.length vs));
  let out = Trace.with_span apply_batch_span (fun () -> t.op_batch ~jobs vs) in
  if Array.length out <> Array.length vs then
    invalid_arg "Subcouple_op: batch implementation returned a wrong-sized result";
  out

(* One fresh unit vector per column: a shared buffer would race under a
   parallel batch, and even sequentially it aliases if an implementation
   retains its argument. *)
let unit_vector n i =
  let e = Array.make n 0.0 in
  e.(i) <- 1.0;
  e

let columns ?jobs t indices =
  Array.iter
    (fun i ->
      if i < 0 || i >= t.op_n then
        invalid_arg
          (Printf.sprintf "Subcouple_op.columns: column index %d out of range [0, %d)" i t.op_n))
    indices;
  apply_batch ?jobs t (Array.map (unit_vector t.op_n) indices)

let of_dense ?(symmetric = false) ?(source = "dense matrix") g =
  if La.Mat.rows g <> La.Mat.cols g then invalid_arg "Subcouple_op.of_dense: matrix must be square";
  make ~pure:true
    ~storage_floats:(La.Mat.rows g * La.Mat.cols g)
    ~describe:{ kind = "dense"; source; symmetric }
    ~n:(La.Mat.rows g) (La.Mat.gemv g)
