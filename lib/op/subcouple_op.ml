(* The one operator abstraction every "apply G" path routes through.

   An operator is a record of closures plus metadata; representations stay
   whatever they are (black box, CSR factors, row bases, dense matrix) and
   expose a constructor returning this type. The extraction pipelines spend
   solves to build a representation; everything downstream — metrics,
   benchmarks, serving — only ever sees the operator. *)

module Artifact = Artifact
module Io_retry = Io_retry

type meta = {
  kind : string;
  source : string;
  symmetric : bool;
}

type t = {
  op_n : int;
  op_apply : La.Vec.t -> La.Vec.t;
  op_batch : jobs:int -> La.Vec.t array -> La.Vec.t array;
  op_storage : int;
  op_solves : unit -> int;
  op_meta : meta;
}

module type S = sig
  type repr

  val op : repr -> t
end

let make ?batch ?(pure = false) ?(storage_floats = 0) ?(solves_spent = fun () -> 0) ~describe ~n
    apply =
  if n < 0 then invalid_arg "Subcouple_op.make: negative dimension";
  if storage_floats < 0 then invalid_arg "Subcouple_op.make: negative storage";
  let batch =
    match batch with
    | Some b -> b
    | None ->
      if pure then fun ~jobs vs -> Parallel.Pool.map_array ~jobs apply vs
      else fun ~jobs:_ vs -> Array.map apply vs
  in
  { op_n = n; op_apply = apply; op_batch = batch; op_storage = storage_floats;
    op_solves = solves_spent; op_meta = describe }

let n t = t.op_n
let describe t = t.op_meta
let storage_floats t = t.op_storage
let solves_spent t = t.op_solves ()

let check_length t v =
  if Array.length v <> t.op_n then
    invalid_arg
      (Printf.sprintf "Subcouple_op: expected a vector of %d components, got %d" t.op_n
         (Array.length v))

let apply t v =
  check_length t v;
  t.op_apply v

let apply_batch_span = "op.apply_batch"
let apply_batch_size_dist = Trace.dist "op.batch_size"

let apply_batch ?(jobs = 1) t vs =
  Array.iter (check_length t) vs;
  Trace.observe apply_batch_size_dist (float_of_int (Array.length vs));
  let out = Trace.with_span apply_batch_span (fun () -> t.op_batch ~jobs vs) in
  if Array.length out <> Array.length vs then
    invalid_arg "Subcouple_op: batch implementation returned a wrong-sized result";
  out

(* One fresh unit vector per column: a shared buffer would race under a
   parallel batch, and even sequentially it aliases if an implementation
   retains its argument. *)
let unit_vector n i =
  let e = Array.make n 0.0 in
  e.(i) <- 1.0;
  e

let columns ?jobs t indices =
  Array.iter
    (fun i ->
      if i < 0 || i >= t.op_n then
        invalid_arg
          (Printf.sprintf "Subcouple_op.columns: column index %d out of range [0, %d)" i t.op_n))
    indices;
  apply_batch ?jobs t (Array.map (unit_vector t.op_n) indices)

let of_dense ?(symmetric = false) ?(source = "dense matrix") g =
  if La.Mat.rows g <> La.Mat.cols g then invalid_arg "Subcouple_op.of_dense: matrix must be square";
  make ~pure:true
    ~storage_floats:(La.Mat.rows g * La.Mat.cols g)
    ~describe:{ kind = "dense"; source; symmetric }
    ~n:(La.Mat.rows g) (La.Mat.gemv g)

module Csr = Sparsemat.Csr

(* Serve a loaded artifact payload directly: G v ~ Q (G_w (Q' v)), the same
   arithmetic (and the same fused batched sweeps) as [Repr.op], without
   needing the extraction layer. Batches split into at most [jobs]
   contiguous chunks on the Domain pool; neither fusion nor chunking
   reorders per-column arithmetic, so responses are bit-identical to the
   single-vector apply for every [jobs]. *)
let of_payload (p : Artifact.payload) =
  let apply_one v = Csr.gemv p.q (Csr.gemv p.gw (Csr.gemv_t p.q v)) in
  let fused chunk = Csr.apply_batch p.q (Csr.apply_batch p.gw (Csr.apply_batch_t p.q chunk)) in
  let batch ~jobs vs =
    let m = Array.length vs in
    if jobs <= 1 || m <= 1 then fused vs
    else begin
      let chunks = min jobs m in
      let parts =
        Array.init chunks (fun c ->
            let lo = c * m / chunks and hi = (c + 1) * m / chunks in
            Array.sub vs lo (hi - lo))
      in
      Array.concat (Array.to_list (Parallel.Pool.map_array ~jobs fused parts))
    end
  in
  make ~batch
    ~storage_floats:(Csr.nnz p.q + Csr.nnz p.gw)
    ~solves_spent:(fun () -> p.solves)
    ~describe:{ kind = p.kind; source = p.source; symmetric = true }
    ~n:p.n apply_one

(* --- composing a shard manifest back into one operator ------------------ *)

type health =
  | Full
  | Degraded of {
      quarantined : (int * string) list;
      pending : int;
      masked_contacts : int array;
    }

let pp_health ppf = function
  | Full -> Format.fprintf ppf "full: every shard complete"
  | Degraded { quarantined; pending; masked_contacts } ->
    Format.fprintf ppf "degraded (quarantined shards: %s; pending shards: %d; masked contacts: %d)"
      (if quarantined = [] then "none"
       else String.concat ", " (List.map (fun (id, _) -> string_of_int id) quarantined))
      pending (Array.length masked_contacts)

let masked_of_health = function
  | Full -> [||]
  | Degraded { masked_contacts; _ } -> Array.copy masked_contacts

(* Render at most [max_shown] indices; a degraded large manifest can mask
   thousands of contacts, and the warning must stay one readable line. *)
let format_indices ?(max_shown = 16) a =
  let n = Array.length a in
  let shown = min n max_shown in
  let b = Buffer.create 64 in
  Buffer.add_char b '[';
  for i = 0 to shown - 1 do
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (string_of_int a.(i))
  done;
  if n > shown then Buffer.add_string b (Printf.sprintf ", ... %d more" (n - shown));
  Buffer.add_char b ']';
  Buffer.contents b

let degraded_warning ?(context = "answer") health =
  match health with
  | Full -> None
  | Degraded { quarantined; pending; masked_contacts } ->
    Some
      (Printf.sprintf
         "degraded %s: %d masked contact%s %s served as zeros (%d quarantined shard%s, %d pending)"
         context
         (Array.length masked_contacts)
         (if Array.length masked_contacts = 1 then "" else "s")
         (format_indices masked_contacts)
         (List.length quarantined)
         (if List.length quarantined = 1 then "" else "s")
         pending)

let of_manifest ~dir (m : Artifact.Manifest.t) =
  let slots =
    List.map
      (fun (e : Artifact.Manifest.entry) ->
        let path = Filename.concat dir e.file in
        let p = Artifact.load ~path in
        (* The artifact is internally consistent (checksummed); now pin it
           to the manifest: the exact bytes the extraction recorded, with
           the shard's dimension. A swapped-in file — even a valid one —
           is rejected. *)
        if not (String.equal (Digest.file path) e.file_digest) then
          raise
            (Artifact.Error
               {
                 path;
                 error =
                   Artifact.Malformed
                     (Printf.sprintf "shard %d artifact does not match the manifest's digest"
                        e.shard_id);
               });
        if p.Artifact.n <> Array.length e.contacts then
          raise
            (Artifact.Error
               {
                 path;
                 error =
                   Artifact.Malformed
                     (Printf.sprintf "shard %d artifact has dimension %d, manifest lists %d contacts"
                        e.shard_id p.Artifact.n (Array.length e.contacts));
               });
        (e.contacts, of_payload p))
      (Artifact.Manifest.complete m)
  in
  let n = m.Artifact.Manifest.n in
  (* Block-diagonal composition: y[C_s] = G(C_s, C_s) v[C_s] per shard.
     Each output slot is written by exactly one shard (the manifest
     validator enforces disjointness), so results are deterministic and a
     masked (quarantined/pending) shard corrupts only its own rows —
     every other row is bit-identical to the fully-complete composition. *)
  let apply_one v =
    let y = Array.make n 0.0 in
    List.iter
      (fun (ids, op_s) ->
        let sub = Array.map (fun i -> v.(i)) ids in
        let ys = op_s.op_apply sub in
        Array.iteri (fun k i -> y.(i) <- ys.(k)) ids)
      slots;
    y
  in
  let storage = List.fold_left (fun acc (_, op_s) -> acc + op_s.op_storage) 0 slots in
  let solves = List.fold_left (fun acc (_, op_s) -> acc + op_s.op_solves ()) 0 slots in
  let op =
    make ~pure:true ~storage_floats:storage
      ~solves_spent:(fun () -> solves)
      ~describe:
        { kind = "manifest"; source = m.Artifact.Manifest.source; symmetric = true }
      ~n apply_one
  in
  let covered = Array.make (max 1 n) false in
  List.iter (fun (ids, _) -> Array.iter (fun i -> covered.(i) <- true) ids) slots;
  let masked = ref [] in
  for i = n - 1 downto 0 do
    if not covered.(i) then masked := i :: !masked
  done;
  let quarantined =
    List.map
      (fun (e : Artifact.Manifest.entry) ->
        ( e.shard_id,
          match e.status with
          | Artifact.Manifest.Quarantined reason -> reason
          | Artifact.Manifest.Complete -> "" ))
      (Artifact.Manifest.quarantined m)
  in
  let pending = m.Artifact.Manifest.total_shards - Array.length m.Artifact.Manifest.entries in
  let health =
    match (quarantined, pending) with
    | [], 0 -> Full
    | _ -> Degraded { quarantined; pending; masked_contacts = Array.of_list !masked }
  in
  (op, health)
