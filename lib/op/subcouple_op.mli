(** First-class linear operators.

    Every way the repo can "apply G" — the black-box solver, the sparsified
    [Q G_w Q'] representation, the row-basis and pairwise approximations,
    the factored wavelet basis, a plain dense matrix, an artifact loaded
    from disk — is a value of one type {!t}: dimension, single and batched
    application, column extraction, storage cost, solve cost and
    provenance. Consumers (error metrics, benchmarks, the serving CLI)
    are written once against this interface and work with any of them.

    Batched application routes through the [lib/parallel] Domain pool and
    is deterministic: results are bit-identical for every [jobs] value,
    because each right-hand side writes only its pre-assigned slot. *)

(** On-disk operator artifacts (save/load of sparsified representations). *)
module Artifact = Artifact

(** EINTR-restarting raw-fd I/O (artifact saves, serve-protocol framing). *)
module Io_retry = Io_retry

(** Operator provenance, carried along so downstream consumers can report
    what they are applying without threading extra arguments. *)
type meta = {
  kind : string;  (** machine-readable family: ["blackbox"], ["repr"], ["dense"], ... *)
  source : string;  (** human-readable provenance *)
  symmetric : bool;  (** the operator is symmetric by construction *)
}

type t

(** The conformance contract: a representation module exposes
    [op : repr -> t] turning its value into an operator. Implementations
    assert it with [module _ : Subcouple_op.S with type repr = t = ...]. *)
module type S = sig
  type repr

  val op : repr -> t
end

(** [make ~describe ~n apply] wraps an application closure.

    [?batch] supplies a native multi-RHS implementation (called as
    [batch ~jobs vs]; must return one response per right-hand side, in
    input order). Without it, [?pure] decides the default: [~pure:true]
    promises the closure holds no mutable scratch state, so batches run
    through the Domain pool; [false] (the default) keeps batches
    sequential — an arbitrary closure is never parallelized behind its
    back.

    [?storage_floats] (default 0) is the representation's stored-float
    count, the thesis's storage currency. [?solves_spent] (default
    [fun () -> 0]) reports black-box solves attributable to the operator:
    a live counter for the solver itself, the build cost for an extracted
    representation. *)
val make :
  ?batch:(jobs:int -> La.Vec.t array -> La.Vec.t array) ->
  ?pure:bool ->
  ?storage_floats:int ->
  ?solves_spent:(unit -> int) ->
  describe:meta ->
  n:int ->
  (La.Vec.t -> La.Vec.t) ->
  t

val n : t -> int
val describe : t -> meta

(** Floats the representation stores (0 for closures that store nothing). *)
val storage_floats : t -> int

(** Black-box solves spent by / behind this operator so far. *)
val solves_spent : t -> int

(** Apply the operator to one vector.
    @raise Invalid_argument on a wrong-length argument. *)
val apply : t -> La.Vec.t -> La.Vec.t

(** Apply to every right-hand side, responses in input order; [jobs]
    (default 1 = sequential) is the total parallelism. Results are
    bit-identical for every [jobs].
    @raise Invalid_argument on any wrong-length argument, before any
    application runs. *)
val apply_batch : ?jobs:int -> t -> La.Vec.t array -> La.Vec.t array

(** Extract the given columns (one unit-vector application each).
    @raise Invalid_argument naming any out-of-range index, before any
    application runs. *)
val columns : ?jobs:int -> t -> int array -> La.Vec.t array

(** The dense reference operator: wraps a square matrix (gemv per
    application, parallel batches, [rows * cols] stored floats). *)
val of_dense : ?symmetric:bool -> ?source:string -> La.Mat.t -> t

(** Serve a loaded artifact payload directly: [G v ~ Q (G_w (Q' v))], the
    same arithmetic and fused batched sweeps as the extraction layer's
    [Repr.op], usable without linking the extraction layer. Responses are
    bit-identical for every [jobs] value. *)
val of_payload : Artifact.payload -> t

(** Health of an operator composed from a shard manifest. [Degraded] lists
    quarantined shards (id and reason), the number of planned shards with
    no entry yet (an extraction interrupted mid-run), and the global
    contact ids with no covering shard. A degraded operator answers with
    zeros on masked rows and ignores masked inputs; every unmasked row is
    bit-identical to the fully-complete composition. *)
type health =
  | Full
  | Degraded of {
      quarantined : (int * string) list;
      pending : int;
      masked_contacts : int array;
    }

val pp_health : Format.formatter -> health -> unit

(** The contact ids a degraded composition masks ([[||]] when [Full]).
    A fresh copy: callers may sort or mutate it. *)
val masked_of_health : health -> int array

(** Render an index set as ["[2, 5, 9]"], truncated past [max_shown]
    (default 16) as ["[0, 1, ... 984 more]"]. *)
val format_indices : ?max_shown:int -> int array -> string

(** The one-line per-request warning a consumer must surface when serving
    answers from a degraded composition: names the masked contact ids
    (truncated), the quarantined-shard count and the pending-shard count.
    [None] when the composition is [Full]. [context] names the request
    kind ("answer", "column 3", ...). *)
val degraded_warning : ?context:string -> health -> string option

(** Compose a shard manifest back into one operator: block-diagonal over
    the shard regions, [y.(C_s) = G(C_s, C_s) v.(C_s)] per complete shard.
    [dir] is the manifest's directory (shard files are stored relative to
    it). Every shard artifact is loaded eagerly, verified against the
    digest recorded in the manifest, and checked for dimension agreement.
    @raise Artifact.Error if a shard artifact is missing, torn, corrupt,
    or not the file the manifest recorded. *)
val of_manifest : dir:string -> Artifact.Manifest.t -> t * health
