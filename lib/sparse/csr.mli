(** Compressed sparse row matrices. *)

type t

val rows : t -> int
val cols : t -> int
val nnz : t -> int

(** Total entries divided by nonzeros — the "sparsity" reported in the
    thesis's tables (a dense matrix has sparsity 1). *)
val sparsity_factor : t -> float

val of_coo : Coo.t -> t

(** Convert a dense matrix, keeping entries with magnitude above [threshold]
    (default 0: keep exact nonzeros). *)
val of_dense : ?threshold:float -> La.Mat.t -> t

val to_dense : t -> La.Mat.t
val gemv : t -> La.Vec.t -> La.Vec.t
val gemv_t : t -> La.Vec.t -> La.Vec.t

(** Fused multi-RHS product: [apply_batch t xs] returns [|A xs.(0); ...|]
    computed in one sweep over the matrix — each CSR entry is read once
    per block instead of once per column. Every output column is
    bit-identical to [gemv t xs.(c)]. *)
val apply_batch : t -> La.Vec.t array -> La.Vec.t array

(** Fused transposed multi-RHS product; each output column bit-identical
    to [gemv_t t xs.(c)] (including the exact-zero input skip). *)
val apply_batch_t : t -> La.Vec.t array -> La.Vec.t array

(** Cache-blocked single-RHS product: sweeps the matrix in column bands of
    [block] (default 4096) so the active slice of [x] stays cache-resident.
    Bit-identical to {!gemv} for any [block]; banding affects locality
    only. *)
val gemv_blocked : ?block:int -> t -> La.Vec.t -> La.Vec.t

val transpose : t -> t

(** Drop entries with magnitude at most the given threshold. *)
val drop_below : t -> float -> t

val max_abs : t -> float
val iter : t -> (int -> int -> float -> unit) -> unit

(** Find a magnitude threshold such that [drop_below] leaves roughly
    [target] times fewer nonzeros. *)
val threshold_for_sparsity : t -> target:float -> float

(** Write in Matrix Market coordinate format (1-based indices). *)
val to_matrix_market : ?comment:string -> t -> out_channel -> unit

(** Read a Matrix Market coordinate-format matrix. *)
val of_matrix_market : in_channel -> t

(** Visit the entries of row [i]. *)
val iter_row : t -> int -> (int -> float -> unit) -> unit

(** [pack ~rows ~cols ~row_ptr ~col_idx ~values] builds a matrix directly
    from raw CSR arrays (copied), validating every structural invariant —
    pointer monotonicity, length consistency, column-index range. Meant
    for deserialization paths that must not trust their input.
    @raise Invalid_argument describing the violated invariant. *)
val pack :
  rows:int -> cols:int -> row_ptr:int array -> col_idx:int array -> values:float array -> t

(** The raw CSR arrays [(row_ptr, col_idx, values)], as copies. Inverse of
    {!pack}; values round-trip bit-exactly. *)
val unpack : t -> int array * int array * float array
