(** Incomplete Cholesky IC(0) preconditioner for SPD CSR matrices. *)

type t

exception Breakdown of int

(** Factor with zero fill-in; raises [Breakdown i] on a non-positive pivot. *)
val factor : Csr.t -> t

val solve_lower : t -> La.Vec.t -> La.Vec.t
val solve_upper_t : t -> La.Vec.t -> La.Vec.t

(** Apply the preconditioner inverse [(L L')^{-1}]. *)
val apply : t -> La.Vec.t -> La.Vec.t
