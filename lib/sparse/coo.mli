(** Coordinate-format sparse matrix builder; duplicates are summed when
    converted to CSR. *)

type t

val create : int -> int -> t
val rows : t -> int
val cols : t -> int

(** Number of raw (pre-deduplication) entries added so far. *)
val entry_count : t -> int

(** Add one entry; zeros are skipped. *)
val add : t -> int -> int -> float -> unit

(** Add a dense block with top-left corner [(i0, j0)]. *)
val add_block : t -> i0:int -> j0:int -> La.Mat.t -> unit

(** Add a dense block at scattered global row/column indices. *)
val add_block_scattered : t -> row_idx:int array -> col_idx:int array -> La.Mat.t -> unit

(** Add a column vector at scattered row indices into column [j]. *)
val add_column : t -> j:int -> row_idx:int array -> La.Vec.t -> unit

val iter : t -> (int -> int -> float -> unit) -> unit
