(* Compressed sparse row matrices.

   The sparsified conductance representation G ~ Q G_w Q' is applied with
   three CSR matrix-vector products; the sparsity statistics the thesis
   reports (Tables 3.1, 4.1-4.3) are nnz counts of these matrices. *)

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (* length rows + 1 *)
  col_idx : int array;  (* length nnz *)
  values : float array;  (* length nnz *)
}

let rows t = t.rows
let cols t = t.cols
let nnz t = Array.length t.values

(* Ratio of total entries to nonzeros; "sparsity" in the thesis's tables. *)
let sparsity_factor t =
  let n = nnz t in
  if n = 0 then infinity else float_of_int t.rows *. float_of_int t.cols /. float_of_int n

let of_coo coo =
  let rows = Coo.rows coo and cols = Coo.cols coo in
  (* Accumulate duplicates in per-row hash tables. *)
  let row_tables = Array.init rows (fun _ -> Hashtbl.create 8) in
  Coo.iter coo (fun i j v ->
      let tbl = row_tables.(i) in
      match Hashtbl.find_opt tbl j with
      | Some old -> Hashtbl.replace tbl j (old +. v)
      | None -> Hashtbl.add tbl j v);
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    (* Exact-zero drop of entries that cancelled during accumulation. *)
    let live =
      Hashtbl.fold (fun _ v acc -> if Float.equal v 0.0 then acc else acc + 1) row_tables.(i) 0
    in
    row_ptr.(i + 1) <- row_ptr.(i) + live
  done;
  let total = row_ptr.(rows) in
  let col_idx = Array.make total 0 and values = Array.make total 0.0 in
  for i = 0 to rows - 1 do
    let cols_of_row =
      Hashtbl.fold
        (fun j v acc -> if Float.equal v 0.0 then acc else (j, v) :: acc)
        row_tables.(i) []
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) cols_of_row in
    List.iteri
      (fun k (j, v) ->
        col_idx.(row_ptr.(i) + k) <- j;
        values.(row_ptr.(i) + k) <- v)
      sorted
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense ?(threshold = 0.0) m =
  let coo = Coo.create (La.Mat.rows m) (La.Mat.cols m) in
  for i = 0 to La.Mat.rows m - 1 do
    for j = 0 to La.Mat.cols m - 1 do
      let v = La.Mat.get m i j in
      if Float.abs v > threshold then Coo.add coo i j v
    done
  done;
  of_coo coo

let to_dense t =
  let m = La.Mat.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      La.Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let gemv t (x : La.Vec.t) : La.Vec.t =
  if Array.length x <> t.cols then invalid_arg "Csr.gemv: dimension mismatch";
  let y = Array.make t.rows 0.0 in
  for i = 0 to t.rows - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

let gemv_t t (x : La.Vec.t) : La.Vec.t =
  if Array.length x <> t.rows then invalid_arg "Csr.gemv_t: dimension mismatch";
  let y = Array.make t.cols 0.0 in
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    (* Exact-zero skip: purely a work-saving test. *)
    if not (Float.equal xi 0.0) then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        y.(t.col_idx.(k)) <- y.(t.col_idx.(k)) +. (t.values.(k) *. xi)
      done
  done;
  y

let transpose t =
  let coo = Coo.create t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Coo.add coo t.col_idx.(k) i t.values.(k)
    done
  done;
  of_coo coo

(* Drop entries with |v| <= threshold. *)
let drop_below t threshold =
  let coo = Coo.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      if Float.abs t.values.(k) > threshold then Coo.add coo i t.col_idx.(k) t.values.(k)
    done
  done;
  of_coo coo

let max_abs t = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 t.values

let iter t f =
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i t.col_idx.(k) t.values.(k)
    done
  done

(* Binary search on a threshold so that dropping entries below it leaves the
   matrix approximately [target] times sparser than the input (thesis §3.7:
   "choosing a threshold t so that the sparsity will be approximately 6 times
   greater"). *)
let threshold_for_sparsity t ~target =
  if target <= 1.0 then 0.0
  else begin
    let goal = int_of_float (float_of_int (nnz t) /. target) in
    let lo = ref 0.0 and hi = ref (max_abs t) in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      let kept = ref 0 in
      Array.iter (fun v -> if Float.abs v > mid then incr kept) t.values;
      if !kept > goal then lo := mid else hi := mid
    done;
    !hi
  end

(* Matrix Market coordinate-format export, for interoperability with
   external circuit/EDA tooling. *)
let to_matrix_market ?(comment = "") t oc =
  output_string oc "%%MatrixMarket matrix coordinate real general\n";
  if comment <> "" then Printf.fprintf oc "%% %s\n" comment;
  Printf.fprintf oc "%d %d %d\n" t.rows t.cols (nnz t);
  iter t (fun i j v -> Printf.fprintf oc "%d %d %.17g\n" (i + 1) (j + 1) v)

let of_matrix_market ic =
  let rec header () =
    let line = input_line ic in
    if String.length line > 0 && line.[0] = '%' then header () else line
  in
  let dims = header () in
  let rows, cols, count = Scanf.sscanf dims " %d %d %d" (fun a b c -> (a, b, c)) in
  let coo = Coo.create rows cols in
  for _ = 1 to count do
    let line = input_line ic in
    let i, j, v = Scanf.sscanf line " %d %d %f" (fun a b c -> (a, b, c)) in
    Coo.add coo (i - 1) (j - 1) v
  done;
  of_coo coo

(* Build from raw CSR arrays, validating every structural invariant; the
   operator-artifact loader funnels untrusted file contents through here so
   a damaged file is rejected instead of producing out-of-bounds reads. *)
let pack ~rows ~cols ~row_ptr ~col_idx ~values =
  if rows < 0 || cols < 0 then invalid_arg "Csr.pack: negative dimensions";
  if Array.length row_ptr <> rows + 1 then
    invalid_arg
      (Printf.sprintf "Csr.pack: row_ptr has %d entries, want rows + 1 = %d" (Array.length row_ptr)
         (rows + 1));
  let count = Array.length values in
  if Array.length col_idx <> count then
    invalid_arg
      (Printf.sprintf "Csr.pack: col_idx has %d entries but values has %d" (Array.length col_idx)
         count);
  if row_ptr.(0) <> 0 then invalid_arg "Csr.pack: row_ptr must start at 0";
  if row_ptr.(rows) <> count then
    invalid_arg
      (Printf.sprintf "Csr.pack: row_ptr ends at %d but there are %d stored entries" row_ptr.(rows)
         count);
  for i = 0 to rows - 1 do
    if row_ptr.(i + 1) < row_ptr.(i) then
      invalid_arg (Printf.sprintf "Csr.pack: row_ptr decreases at row %d" i)
  done;
  Array.iter
    (fun j ->
      if j < 0 || j >= cols then
        invalid_arg (Printf.sprintf "Csr.pack: column index %d out of range [0, %d)" j cols))
    col_idx;
  {
    rows;
    cols;
    row_ptr = Array.copy row_ptr;
    col_idx = Array.copy col_idx;
    values = Array.copy values;
  }

let unpack t = (Array.copy t.row_ptr, Array.copy t.col_idx, Array.copy t.values)

(* Visit the entries of one row. *)
let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done
