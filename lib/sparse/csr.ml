(* Compressed sparse row matrices.

   The sparsified conductance representation G ~ Q G_w Q' is applied with
   three CSR matrix-vector products; the sparsity statistics the thesis
   reports (Tables 3.1, 4.1-4.3) are nnz counts of these matrices. *)

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (* length rows + 1 *)
  col_idx : int array;  (* length nnz *)
  values : float array;  (* length nnz *)
}

let rows t = t.rows
let cols t = t.cols
let nnz t = Array.length t.values

(* Ratio of total entries to nonzeros; "sparsity" in the thesis's tables. *)
let sparsity_factor t =
  let n = nnz t in
  if n = 0 then infinity else float_of_int t.rows *. float_of_int t.cols /. float_of_int n

let of_coo coo =
  let rows = Coo.rows coo and cols = Coo.cols coo in
  (* Accumulate duplicates in per-row hash tables. *)
  let row_tables = Array.init rows (fun _ -> Hashtbl.create 8) in
  Coo.iter coo (fun i j v ->
      let tbl = row_tables.(i) in
      match Hashtbl.find_opt tbl j with
      | Some old -> Hashtbl.replace tbl j (old +. v)
      | None -> Hashtbl.add tbl j v);
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    (* Exact-zero drop of entries that cancelled during accumulation. *)
    let live =
      Hashtbl.fold (fun _ v acc -> if Float.equal v 0.0 then acc else acc + 1) row_tables.(i) 0
    in
    row_ptr.(i + 1) <- row_ptr.(i) + live
  done;
  let total = row_ptr.(rows) in
  let col_idx = Array.make total 0 and values = Array.make total 0.0 in
  for i = 0 to rows - 1 do
    let cols_of_row =
      Hashtbl.fold
        (fun j v acc -> if Float.equal v 0.0 then acc else (j, v) :: acc)
        row_tables.(i) []
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) cols_of_row in
    List.iteri
      (fun k (j, v) ->
        col_idx.(row_ptr.(i) + k) <- j;
        values.(row_ptr.(i) + k) <- v)
      sorted
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense ?(threshold = 0.0) m =
  let coo = Coo.create (La.Mat.rows m) (La.Mat.cols m) in
  for i = 0 to La.Mat.rows m - 1 do
    for j = 0 to La.Mat.cols m - 1 do
      let v = La.Mat.get m i j in
      if Float.abs v > threshold then Coo.add coo i j v
    done
  done;
  of_coo coo

let to_dense t =
  let m = La.Mat.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      La.Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

(* Column indices are in range [0, cols) by construction ([of_coo] builds
   them, [pack] validates them), and [row_ptr] is monotone with
   [row_ptr.(rows) = nnz] — so every unsafe access in the product kernels
   below is bounded once the input vector length is checked on entry. *)

let gemv t (x : La.Vec.t) : La.Vec.t =
  if Array.length x <> t.cols then invalid_arg "Csr.gemv: dimension mismatch";
  let y = Array.make t.rows 0.0 in
  for i = 0 to t.rows - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc :=
        !acc +. (Array.unsafe_get t.values k *. Array.unsafe_get x (Array.unsafe_get t.col_idx k))
    done;
    Array.unsafe_set y i !acc
  done;
  y
[@@lint.hotpath "length x = cols checked on entry; k and col_idx bounded by the CSR invariants"]

let gemv_t t (x : La.Vec.t) : La.Vec.t =
  if Array.length x <> t.rows then invalid_arg "Csr.gemv_t: dimension mismatch";
  let y = Array.make t.cols 0.0 in
  for i = 0 to t.rows - 1 do
    let xi = Array.unsafe_get x i in
    (* Exact-zero skip: purely a work-saving test. *)
    if not (Float.equal xi 0.0) then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = Array.unsafe_get t.col_idx k in
        Array.unsafe_set y j (Array.unsafe_get y j +. (Array.unsafe_get t.values k *. xi))
      done
  done;
  y
[@@lint.hotpath "length x = rows checked on entry; k and col_idx bounded by the CSR invariants"]

let batch_width_dist = Trace.dist "csr.batch_width"

(* Fused multi-RHS product: ys.(c) = A * xs.(c) for the whole block in ONE
   sweep over the matrix. Each CSR entry is read once per block instead of
   once per column, turning the dominant memory traffic (the matrix) into
   the amortized term. Per column the contributions accumulate in exactly
   the per-row k order of [gemv], so each output column is bit-identical
   to the per-column loop — test/test_sparse.ml asserts this across
   patterns and widths. *)
let apply_batch t (xs : La.Vec.t array) : La.Vec.t array =
  let w = Array.length xs in
  Array.iter
    (fun x -> if Array.length x <> t.cols then invalid_arg "Csr.apply_batch: dimension mismatch")
    xs;
  Trace.with_span "csr.apply_batch" (fun () ->
      Trace.observe batch_width_dist (float_of_int w);
      let ys = Array.init w (fun _ -> Array.make t.rows 0.0) in
      (* Columns are consumed in register-blocked groups of four: the
         group's input pointers and accumulators stay in registers, and the
         row's entries are re-read from L1 across the group passes — one
         sweep over the matrix from memory's point of view. Each column's
         contributions still accumulate in the per-row k order of [gemv],
         so every output column is bit-identical to the per-column loop. *)
      for i = 0 to t.rows - 1 do
        let k0 = Array.unsafe_get t.row_ptr i and k1 = Array.unsafe_get t.row_ptr (i + 1) in
        let c = ref 0 in
        while !c + 4 <= w do
          let x0 = Array.unsafe_get xs !c
          and x1 = Array.unsafe_get xs (!c + 1)
          and x2 = Array.unsafe_get xs (!c + 2)
          and x3 = Array.unsafe_get xs (!c + 3) in
          let a0 = ref 0.0 and a1 = ref 0.0 and a2 = ref 0.0 and a3 = ref 0.0 in
          for k = k0 to k1 - 1 do
            let v = Array.unsafe_get t.values k in
            let j = Array.unsafe_get t.col_idx k in
            a0 := !a0 +. (v *. Array.unsafe_get x0 j);
            a1 := !a1 +. (v *. Array.unsafe_get x1 j);
            a2 := !a2 +. (v *. Array.unsafe_get x2 j);
            a3 := !a3 +. (v *. Array.unsafe_get x3 j)
          done;
          Array.unsafe_set (Array.unsafe_get ys !c) i !a0;
          Array.unsafe_set (Array.unsafe_get ys (!c + 1)) i !a1;
          Array.unsafe_set (Array.unsafe_get ys (!c + 2)) i !a2;
          Array.unsafe_set (Array.unsafe_get ys (!c + 3)) i !a3;
          c := !c + 4
        done;
        while !c < w do
          let x = Array.unsafe_get xs !c in
          let acc = ref 0.0 in
          for k = k0 to k1 - 1 do
            acc := !acc +. (Array.unsafe_get t.values k *. Array.unsafe_get x (Array.unsafe_get t.col_idx k))
          done;
          Array.unsafe_set (Array.unsafe_get ys !c) i !acc;
          incr c
        done
      done;
      ys)
[@@lint.hotpath
  "every xs column length-checked on entry; c < w, i < rows, k and col_idx bounded by the CSR \
   invariants"]

(* Fused transposed product, one matrix sweep for the block. The per-row
   input values are hoisted into [xis] so each CSR entry is read once; the
   exact-zero skip of [gemv_t] is applied per column (it saves work AND
   preserves -0.0 outputs that adding 0.0 would flip to +0.0). Per column
   the scatter order is the (i, k) order of [gemv_t] — bit-identical. *)
let apply_batch_t t (xs : La.Vec.t array) : La.Vec.t array =
  let w = Array.length xs in
  Array.iter
    (fun x ->
      if Array.length x <> t.rows then invalid_arg "Csr.apply_batch_t: dimension mismatch")
    xs;
  Trace.with_span "csr.apply_batch_t" (fun () ->
      Trace.observe batch_width_dist (float_of_int w);
      let ys = Array.init w (fun _ -> Array.make t.cols 0.0) in
      (* Same register-blocked grouping as [apply_batch]; the per-column
         exact-zero skip is kept (and a whole group of zero inputs skips
         the row scan entirely — pure work saving, no additions either way). *)
      for i = 0 to t.rows - 1 do
        let k0 = Array.unsafe_get t.row_ptr i and k1 = Array.unsafe_get t.row_ptr (i + 1) in
        let c = ref 0 in
        while !c + 4 <= w do
          let xi0 = Array.unsafe_get (Array.unsafe_get xs !c) i
          and xi1 = Array.unsafe_get (Array.unsafe_get xs (!c + 1)) i
          and xi2 = Array.unsafe_get (Array.unsafe_get xs (!c + 2)) i
          and xi3 = Array.unsafe_get (Array.unsafe_get xs (!c + 3)) i in
          let z0 = Float.equal xi0 0.0
          and z1 = Float.equal xi1 0.0
          and z2 = Float.equal xi2 0.0
          and z3 = Float.equal xi3 0.0 in
          if not (z0 && z1 && z2 && z3) then begin
            let y0 = Array.unsafe_get ys !c
            and y1 = Array.unsafe_get ys (!c + 1)
            and y2 = Array.unsafe_get ys (!c + 2)
            and y3 = Array.unsafe_get ys (!c + 3) in
            for k = k0 to k1 - 1 do
              let v = Array.unsafe_get t.values k in
              let j = Array.unsafe_get t.col_idx k in
              if not z0 then Array.unsafe_set y0 j (Array.unsafe_get y0 j +. (v *. xi0));
              if not z1 then Array.unsafe_set y1 j (Array.unsafe_get y1 j +. (v *. xi1));
              if not z2 then Array.unsafe_set y2 j (Array.unsafe_get y2 j +. (v *. xi2));
              if not z3 then Array.unsafe_set y3 j (Array.unsafe_get y3 j +. (v *. xi3))
            done
          end;
          c := !c + 4
        done;
        while !c < w do
          let xi = Array.unsafe_get (Array.unsafe_get xs !c) i in
          if not (Float.equal xi 0.0) then begin
            let y = Array.unsafe_get ys !c in
            for k = k0 to k1 - 1 do
              let j = Array.unsafe_get t.col_idx k in
              Array.unsafe_set y j (Array.unsafe_get y j +. (Array.unsafe_get t.values k *. xi))
            done
          end;
          incr c
        done
      done;
      ys)
[@@lint.hotpath
  "every xs column length-checked on entry; c < w, i < rows, k and col_idx bounded by the CSR \
   invariants"]

(* Cache-blocked single-RHS product: sweep the matrix in column bands of
   [block] so the active slice of [x] stays resident while every row's
   entries for that band are consumed. Per-row cursors resume each row
   where the previous band stopped; entries are consumed in ascending k
   order regardless of banding (an out-of-order column merely waits for a
   later band), so the per-row partial sums telescope into exactly the
   [gemv] accumulation sequence — bit-identical output, banding affects
   locality only. *)
let gemv_blocked ?(block = 4096) t (x : La.Vec.t) : La.Vec.t =
  if Array.length x <> t.cols then invalid_arg "Csr.gemv_blocked: dimension mismatch";
  if block <= 0 then invalid_arg "Csr.gemv_blocked: block must be positive";
  Trace.with_span "csr.gemv_blocked" (fun () ->
      let y = Array.make t.rows 0.0 in
      let cursor = Array.init t.rows (fun i -> t.row_ptr.(i)) in
      let band_lo = ref 0 in
      while !band_lo < t.cols do
        let band_hi = min t.cols (!band_lo + block) in
        for i = 0 to t.rows - 1 do
          let stop = Array.unsafe_get t.row_ptr (i + 1) in
          let k = ref (Array.unsafe_get cursor i) in
          let acc = ref (Array.unsafe_get y i) in
          while !k < stop && Array.unsafe_get t.col_idx !k < band_hi do
            acc :=
              !acc
              +. (Array.unsafe_get t.values !k
                 *. Array.unsafe_get x (Array.unsafe_get t.col_idx !k));
            incr k
          done;
          Array.unsafe_set y i !acc;
          Array.unsafe_set cursor i !k
        done;
        band_lo := band_hi
      done;
      y)
[@@lint.hotpath
  "length x = cols checked on entry; cursors start at row_ptr and only advance while k < \
   row_ptr.(i + 1)"]

let transpose t =
  let coo = Coo.create t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Coo.add coo t.col_idx.(k) i t.values.(k)
    done
  done;
  of_coo coo

(* Drop entries with |v| <= threshold. *)
let drop_below t threshold =
  let coo = Coo.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      if Float.abs t.values.(k) > threshold then Coo.add coo i t.col_idx.(k) t.values.(k)
    done
  done;
  of_coo coo

let max_abs t = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 t.values

let iter t f =
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i t.col_idx.(k) t.values.(k)
    done
  done

(* Binary search on a threshold so that dropping entries below it leaves the
   matrix approximately [target] times sparser than the input (thesis §3.7:
   "choosing a threshold t so that the sparsity will be approximately 6 times
   greater"). *)
let threshold_for_sparsity t ~target =
  if target <= 1.0 then 0.0
  else begin
    let goal = int_of_float (float_of_int (nnz t) /. target) in
    let lo = ref 0.0 and hi = ref (max_abs t) in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      let kept = ref 0 in
      Array.iter (fun v -> if Float.abs v > mid then incr kept) t.values;
      if !kept > goal then lo := mid else hi := mid
    done;
    !hi
  end

(* Matrix Market coordinate-format export, for interoperability with
   external circuit/EDA tooling. *)
let to_matrix_market ?(comment = "") t oc =
  output_string oc "%%MatrixMarket matrix coordinate real general\n";
  if comment <> "" then Printf.fprintf oc "%% %s\n" comment;
  Printf.fprintf oc "%d %d %d\n" t.rows t.cols (nnz t);
  iter t (fun i j v -> Printf.fprintf oc "%d %d %.17g\n" (i + 1) (j + 1) v)

let of_matrix_market ic =
  let rec header () =
    let line = input_line ic in
    if String.length line > 0 && line.[0] = '%' then header () else line
  in
  let dims = header () in
  let rows, cols, count = Scanf.sscanf dims " %d %d %d" (fun a b c -> (a, b, c)) in
  let coo = Coo.create rows cols in
  for _ = 1 to count do
    let line = input_line ic in
    let i, j, v = Scanf.sscanf line " %d %d %f" (fun a b c -> (a, b, c)) in
    Coo.add coo (i - 1) (j - 1) v
  done;
  of_coo coo

(* Build from raw CSR arrays, validating every structural invariant; the
   operator-artifact loader funnels untrusted file contents through here so
   a damaged file is rejected instead of producing out-of-bounds reads. *)
let pack ~rows ~cols ~row_ptr ~col_idx ~values =
  if rows < 0 || cols < 0 then invalid_arg "Csr.pack: negative dimensions";
  if Array.length row_ptr <> rows + 1 then
    invalid_arg
      (Printf.sprintf "Csr.pack: row_ptr has %d entries, want rows + 1 = %d" (Array.length row_ptr)
         (rows + 1));
  let count = Array.length values in
  if Array.length col_idx <> count then
    invalid_arg
      (Printf.sprintf "Csr.pack: col_idx has %d entries but values has %d" (Array.length col_idx)
         count);
  if row_ptr.(0) <> 0 then invalid_arg "Csr.pack: row_ptr must start at 0";
  if row_ptr.(rows) <> count then
    invalid_arg
      (Printf.sprintf "Csr.pack: row_ptr ends at %d but there are %d stored entries" row_ptr.(rows)
         count);
  for i = 0 to rows - 1 do
    if row_ptr.(i + 1) < row_ptr.(i) then
      invalid_arg (Printf.sprintf "Csr.pack: row_ptr decreases at row %d" i)
  done;
  Array.iter
    (fun j ->
      if j < 0 || j >= cols then
        invalid_arg (Printf.sprintf "Csr.pack: column index %d out of range [0, %d)" j cols))
    col_idx;
  {
    rows;
    cols;
    row_ptr = Array.copy row_ptr;
    col_idx = Array.copy col_idx;
    values = Array.copy values;
  }

let unpack t = (Array.copy t.row_ptr, Array.copy t.col_idx, Array.copy t.values)

(* Visit the entries of one row. *)
let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done
