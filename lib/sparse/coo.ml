(* Coordinate-format sparse matrix builder.

   Entries are accumulated in insertion order (duplicates summed on
   conversion); the finished matrix is converted to CSR for arithmetic.
   This is how the sparsified representations Q and G_w are assembled: the
   algorithms emit (row, col, value) triples square by square. *)

type t = {
  rows : int;
  cols : int;
  mutable entries : (int * int * float) list;
  mutable count : int;
}

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Coo.create: negative dimension";
  { rows; cols; entries = []; count = 0 }

let rows t = t.rows
let cols t = t.cols
let entry_count t = t.count

let add t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg (Printf.sprintf "Coo.add: index (%d, %d) out of bounds for %dx%d" i j t.rows t.cols);
  (* Exact-zero drop: only a literal 0.0 carries no information; every
     other magnitude is a real entry (thresholding is Csr.of_dense's job). *)
  if not (Float.equal v 0.0) then begin
    t.entries <- (i, j, v) :: t.entries;
    t.count <- t.count + 1
  end

(* Add a dense block with top-left corner (i0, j0). *)
let add_block t ~i0 ~j0 m =
  for i = 0 to La.Mat.rows m - 1 do
    for j = 0 to La.Mat.cols m - 1 do
      add t (i0 + i) (j0 + j) (La.Mat.get m i j)
    done
  done

(* Add a dense block at scattered row/column indices. *)
let add_block_scattered t ~row_idx ~col_idx m =
  if Array.length row_idx <> La.Mat.rows m || Array.length col_idx <> La.Mat.cols m then
    invalid_arg "Coo.add_block_scattered: index length mismatch";
  for i = 0 to La.Mat.rows m - 1 do
    for j = 0 to La.Mat.cols m - 1 do
      add t row_idx.(i) col_idx.(j) (La.Mat.get m i j)
    done
  done

let add_column t ~j ~row_idx (v : La.Vec.t) =
  if Array.length row_idx <> Array.length v then invalid_arg "Coo.add_column: length mismatch";
  Array.iteri (fun k i -> add t i j v.(k)) row_idx

let iter t f = List.iter (fun (i, j, v) -> f i j v) t.entries
