(* Incomplete Cholesky factorization with zero fill-in, IC(0)
   (thesis §2.2.2, "ICCG"): A ~ L L' where L is restricted to the sparsity
   pattern of the lower triangle of A. Applying the preconditioner
   M^{-1} = (L L')^{-1} costs one forward and one backward sparse
   substitution. *)

exception Breakdown of int

type t = {
  n : int;
  (* Lower-triangular factor stored by rows: column indices ascending, the
     diagonal entry last in each row. *)
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let factor a =
  let n = Csr.rows a in
  if Csr.cols a <> n then invalid_arg "Ic0.factor: matrix not square";
  (* Collect the lower-triangular pattern (including diagonal) per row. *)
  let rows : (int * float) list array = Array.make n [] in
  Csr.iter a (fun i j v -> if j <= i then rows.(i) <- (j, v) :: rows.(i));
  let rows = Array.map (fun l -> Array.of_list (List.sort compare l)) rows in
  (* l_rows.(i) mirrors rows.(i) with computed factor values. *)
  let l_rows = Array.map (fun r -> Array.map (fun (j, _) -> (j, 0.0)) r) rows in
  let find_in_row i j =
    (* Binary search for column j in the (sorted) factored row i. *)
    let r = l_rows.(i) in
    let lo = ref 0 and hi = ref (Array.length r - 1) and found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c, v = r.(mid) in
      if c = j then begin
        found := Some v;
        lo := !hi + 1
      end
      else if c < j then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  for i = 0 to n - 1 do
    let pattern = rows.(i) in
    Array.iteri
      (fun idx (j, aij) ->
        (* sum over k < j present in both row i and row j of L *)
        let s = ref 0.0 in
        Array.iteri
          (fun idx' (k, lik) ->
            if idx' < idx && k < j then
              match find_in_row j k with Some ljk -> s := !s +. (lik *. ljk) | None -> ())
          l_rows.(i);
        if j < i then begin
          let ljj =
            match find_in_row j j with
            | Some v -> v
            | None -> raise (Breakdown j)
          in
          l_rows.(i).(idx) <- (j, (aij -. !s) /. ljj)
        end
        else begin
          (* diagonal *)
          let d = aij -. !s in
          if d <= 0.0 then raise (Breakdown i);
          l_rows.(i).(idx) <- (i, sqrt d)
        end)
      pattern
  done;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Array.length l_rows.(i)
  done;
  let total = row_ptr.(n) in
  let col_idx = Array.make total 0 and values = Array.make total 0.0 in
  for i = 0 to n - 1 do
    Array.iteri
      (fun k (j, v) ->
        col_idx.(row_ptr.(i) + k) <- j;
        values.(row_ptr.(i) + k) <- v)
      l_rows.(i)
  done;
  { n; row_ptr; col_idx; values }

(* Solve L y = b (forward substitution; diagonal is the last entry per row). *)
let solve_lower t (b : La.Vec.t) : La.Vec.t =
  let y = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    let acc = ref b.(i) in
    let last = t.row_ptr.(i + 1) - 1 in
    for k = t.row_ptr.(i) to last - 1 do
      acc := !acc -. (t.values.(k) *. y.(t.col_idx.(k)))
    done;
    y.(i) <- !acc /. t.values.(last)
  done;
  y

(* Solve L' x = y (backward substitution using the row-stored L). *)
let solve_upper_t t (y : La.Vec.t) : La.Vec.t =
  let x = Array.copy y in
  for i = t.n - 1 downto 0 do
    let last = t.row_ptr.(i + 1) - 1 in
    x.(i) <- x.(i) /. t.values.(last);
    let xi = x.(i) in
    for k = t.row_ptr.(i) to last - 1 do
      x.(t.col_idx.(k)) <- x.(t.col_idx.(k)) -. (t.values.(k) *. xi)
    done
  done;
  x

(* Apply M^{-1} = (L L')^{-1}. *)
let apply t b = solve_upper_t t (solve_lower t b)
