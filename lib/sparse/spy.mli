(** ASCII sparsity-pattern ("spy") plots, the text analogue of the MATLAB
    spy figures in the thesis. *)

(** Render the pattern onto a character grid of at most [width] columns.
    Darker glyphs mean denser bins; the trailing line reports nnz. *)
val render : ?width:int -> Csr.t -> string

val print : ?width:int -> Csr.t -> unit
