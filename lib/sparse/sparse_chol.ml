(* Sparse Cholesky factorization with fill-in, for SPD CSR matrices.

   The thesis's first candidate for the finite-difference solve (§2.2.2):
   "the obvious method is Cholesky factorization ... the 3D grid structure
   of the connections makes it possible to use a sparse Cholesky method
   requiring only O(n^2 log n) operations for the factorization and
   O(n^{4/3} log n) nonzero entries in L". This module implements the
   up-looking row algorithm under a caller-supplied fill-reducing
   permutation (see Fdsolver.Ordering for the grid nested dissection that
   realizes those bounds), so the thesis's complexity discussion becomes a
   measurable experiment — and the factorization doubles as a direct
   substrate solver whose one-time cost amortizes over the n extraction
   solves.

   Row i of L solves the sparse triangular system
   L[0..i-1] x = A[i, 0..i-1]' and l_ii = sqrt(a_ii - sum_j x_j^2); the
   forward substitution visits fill columns in ascending order through a
   min-heap, and each finished row publishes its entries into per-column
   lists so later rows can consume column j of L directly. *)

exception Not_positive_definite of int

type t = {
  n : int;
  perm : int array;  (* position in elimination order -> original index *)
  iperm : int array;  (* original index -> elimination position *)
  (* L in elimination order, by rows; columns ascending, diagonal last. *)
  rows_idx : int array array;
  rows_val : float array array;
}

(* Binary min-heap of column indices. *)
module Heap = struct
  type h = { mutable data : int array; mutable size : int }

  let create () = { data = Array.make 16 0; size = 0 }

  let push h x =
    if h.size = Array.length h.data then begin
      let d = Array.make (2 * h.size) 0 in
      Array.blit h.data 0 d 0 h.size;
      h.data <- d
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.data.(!i) <- x;
    while !i > 0 && h.data.((!i - 1) / 2) > h.data.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.data.(l) < h.data.(!smallest) then smallest := l;
      if r < h.size && h.data.(r) < h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
    done;
    top

  let is_empty h = h.size = 0
end

let factor ?perm (a : Csr.t) =
  let n = Csr.rows a in
  if Csr.cols a <> n then invalid_arg "Sparse_chol.factor: matrix not square";
  let perm = match perm with Some p -> Array.copy p | None -> Array.init n Fun.id in
  if Array.length perm <> n then invalid_arg "Sparse_chol.factor: permutation length mismatch";
  let iperm = Array.make n (-1) in
  Array.iteri
    (fun nw old ->
      if old < 0 || old >= n || iperm.(old) >= 0 then
        invalid_arg "Sparse_chol.factor: not a permutation";
      iperm.(old) <- nw)
    perm;
  (* Lower-triangle pattern of the permuted A, by rows in elimination order. *)
  let a_rows : (int * float) list array = Array.make n [] in
  Csr.iter a (fun i j v ->
      let pi = iperm.(i) and pj = iperm.(j) in
      if pj <= pi then a_rows.(pi) <- (pj, v) :: a_rows.(pi));
  let rows_idx = Array.make n [||] and rows_val = Array.make n [||] in
  (* col_entries.(j): the (row k, l_kj) pairs of finished rows k > j. *)
  let col_entries : (int * float) list array = Array.make n [] in
  let w = Array.make n 0.0 in
  let in_pattern = Array.make n false in
  for i = 0 to n - 1 do
    let heap = Heap.create () in
    let scatter j v =
      if not in_pattern.(j) then begin
        in_pattern.(j) <- true;
        w.(j) <- 0.0;
        if j < i then Heap.push heap j
      end;
      w.(j) <- w.(j) +. v
    in
    List.iter (fun (j, v) -> scatter j v) a_rows.(i);
    if not in_pattern.(i) then scatter i 0.0;
    let row_rev = ref [] in
    let sum_sq = ref 0.0 in
    while not (Heap.is_empty heap) do
      let j = Heap.pop heap in
      let idxj = rows_idx.(j) in
      let ljj = rows_val.(j).(Array.length idxj - 1) in
      let lij = w.(j) /. ljj in
      in_pattern.(j) <- false;
      row_rev := (j, lij) :: !row_rev;
      sum_sq := !sum_sq +. (lij *. lij);
      (* Forward substitution: subtract lij * (column j of L) from w. *)
      List.iter
        (fun (k, lkj) ->
          if not in_pattern.(k) then begin
            in_pattern.(k) <- true;
            w.(k) <- 0.0;
            if k < i then Heap.push heap k
          end;
          w.(k) <- w.(k) -. (lij *. lkj))
        col_entries.(j)
    done;
    let dii = w.(i) -. !sum_sq in
    in_pattern.(i) <- false;
    if dii <= 0.0 then raise (Not_positive_definite i);
    let entries = List.rev !row_rev in
    let k = List.length entries in
    let idx = Array.make (k + 1) 0 and vals = Array.make (k + 1) 0.0 in
    List.iteri
      (fun p (j, v) ->
        idx.(p) <- j;
        vals.(p) <- v)
      entries;
    idx.(k) <- i;
    vals.(k) <- sqrt dii;
    rows_idx.(i) <- idx;
    rows_val.(i) <- vals;
    List.iter (fun (j, v) -> col_entries.(j) <- (i, v) :: col_entries.(j)) entries
  done;
  { n; perm; iperm; rows_idx; rows_val }

let nnz_l t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.rows_idx

(* Solve A x = b given the factorization: permute, forward- and
   back-substitute, unpermute. *)
let solve t (b : La.Vec.t) : La.Vec.t =
  if Array.length b <> t.n then invalid_arg "Sparse_chol.solve: dimension mismatch";
  let bp = Array.init t.n (fun i -> b.(t.perm.(i))) in
  (* L y = bp *)
  let y = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    let idx = t.rows_idx.(i) and vals = t.rows_val.(i) in
    let last = Array.length idx - 1 in
    let acc = ref bp.(i) in
    for k = 0 to last - 1 do
      acc := !acc -. (vals.(k) *. y.(idx.(k)))
    done;
    y.(i) <- !acc /. vals.(last)
  done;
  (* L' x = y *)
  let x = Array.copy y in
  for i = t.n - 1 downto 0 do
    let idx = t.rows_idx.(i) and vals = t.rows_val.(i) in
    let last = Array.length idx - 1 in
    x.(i) <- x.(i) /. vals.(last);
    let xi = x.(i) in
    for k = 0 to last - 1 do
      x.(idx.(k)) <- x.(idx.(k)) -. (vals.(k) *. xi)
    done
  done;
  Array.init t.n (fun old -> x.(t.iperm.(old)))
