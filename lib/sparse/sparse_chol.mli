(** Sparse Cholesky factorization with fill-in (up-looking rows), under an
    optional fill-reducing permutation — the direct-solve alternative the
    thesis weighs for the finite-difference system (§2.2.2). *)

type t

exception Not_positive_definite of int

(** [factor ?perm a] factors the SPD matrix [a] with rows eliminated in
    [perm] order (identity by default). *)
val factor : ?perm:int array -> Csr.t -> t

(** Nonzeros in the factor L (fill-in measurement). *)
val nnz_l : t -> int

(** Solve [a x = b]. *)
val solve : t -> La.Vec.t -> La.Vec.t
