(* ASCII "spy" plots of sparsity patterns, standing in for the MATLAB spy
   plots of thesis Figures 3-9/3-10 and 4-9/4-11. The matrix is binned onto a
   character grid; each cell's glyph encodes the fraction of its entries that
   are nonzero. *)

let shades = [| ' '; '.'; ':'; '+'; '*'; '#' |]

let render ?(width = 64) m =
  let rows = Csr.rows m and cols = Csr.cols m in
  if rows = 0 || cols = 0 then "(empty)\n"
  else begin
    let w = min width cols in
    (* Keep cells roughly square in character-aspect terms (chars are about
       twice as tall as wide). *)
    let h = max 1 (min (width / 2) rows) in
    let counts = Array.make_matrix h w 0 in
    Csr.iter m (fun i j _ ->
        let bi = min (h - 1) (i * h / rows) and bj = min (w - 1) (j * w / cols) in
        counts.(bi).(bj) <- counts.(bi).(bj) + 1);
    let cell_entries =
      float_of_int rows /. float_of_int h *. (float_of_int cols /. float_of_int w)
    in
    let buf = Buffer.create ((h + 2) * (w + 3)) in
    Buffer.add_char buf '+';
    for _ = 1 to w do
      Buffer.add_char buf '-'
    done;
    Buffer.add_string buf "+\n";
    for i = 0 to h - 1 do
      Buffer.add_char buf '|';
      for j = 0 to w - 1 do
        let frac = float_of_int counts.(i).(j) /. cell_entries in
        let level =
          if counts.(i).(j) = 0 then 0
          else max 1 (min (Array.length shades - 1) (int_of_float (frac *. float_of_int (Array.length shades - 1)) + 1))
        in
        Buffer.add_char buf shades.(min level (Array.length shades - 1))
      done;
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_char buf '+';
    for _ = 1 to w do
      Buffer.add_char buf '-'
    done;
    Buffer.add_string buf "+\n";
    Buffer.add_string buf (Printf.sprintf "nz = %d (%dx%d, sparsity %.1f)\n" (Csr.nnz m) rows cols (Csr.sparsity_factor m));
    Buffer.contents buf
  end

let print ?width m =
  print_string (render ?width m)
[@@lint.allow no_stdout_in_lib
  "Spy.print is an explicit stdout renderer for interactive use; bin/bench call it on purpose"]
