module Profile = Substrate.Profile
(* Eigenvalues of the surface current-density-to-potential operator for a
   layered substrate (thesis §2.3.1, eqs. (2.34)-(2.36)).

   The cosine modes f_mn(x, y) = cos(m pi x / a) cos(n pi y / b) are
   eigenfunctions of the operator A taking top-surface current density to
   top-surface potential. The thesis derives the eigenvalues by gluing
   exponential solutions across layer interfaces with the coefficient
   recursion (2.34); that recursion overflows in floating point for thick
   layers (the e^{2 gamma (d - d_k)} factors), so we use the equivalent and
   numerically robust surface-admittance form familiar from transmission-line
   analysis:

     Y_top = sigma gamma (Y_below + sigma gamma tanh(gamma t))
                        / (sigma gamma + Y_below tanh(gamma t))

   propagated from the bottom boundary condition (Y = infinity for a grounded
   backplane, Y = 0 floating) up through the layers; lambda_mn = 1 / Y_top.
   For a single grounded layer this reproduces the classical
   lambda = tanh(gamma d) / (sigma gamma), which is also what (2.35) gives
   with (zeta, xi) = (1, -1). *)

let gamma (profile : Profile.t) ~m ~n =
  let mm = float_of_int m /. profile.Profile.a and nn = float_of_int n /. profile.Profile.b in
  Float.pi *. sqrt ((mm *. mm) +. (nn *. nn))

(* Propagate the surface admittance through one layer of thickness t and
   conductivity sigma at transverse wavenumber gamma. *)
let propagate_layer ~sigma ~gamma ~t y_below =
  let sg = sigma *. gamma in
  let th = tanh (gamma *. t) in
  (* Exact comparisons: Float.infinity is the sentinel for a grounded
     backplane, and th is 0.0 only for a zero-thickness layer. *)
  if Float.equal y_below Float.infinity then
    if Float.equal th 0.0 then Float.infinity else sg /. th
  else sg *. (y_below +. (sg *. th)) /. (sg +. (y_below *. th))

(* Large finite stand-in for the infinite lambda_00 of a floating backplane
   (thesis: "A_00 = infinity ... impossible to push a uniform current into
   the top of the substrate"). *)
let floating_dc_lambda = 1e12

let lambda (profile : Profile.t) ~m ~n =
  let g = gamma profile ~m ~n in
  (* Layers are stored top-first; the admittance recursion runs bottom-up. *)
  let bottom_up = List.rev profile.Profile.layers in
  (* g is exactly 0.0 only for the (0,0) DC mode (gamma is pi*sqrt(...) of
     non-negative terms), so exact equality selects precisely that mode. *)
  if Float.equal g 0.0 then
    (* DC mode: plain series resistance of the stack (thesis eq. (2.36)),
       infinite without a backplane contact. *)
    match profile.Profile.backplane with
    | Profile.Floating -> floating_dc_lambda
    | Profile.Grounded ->
      List.fold_left (fun acc l -> acc +. (l.Profile.thickness /. l.Profile.conductivity)) 0.0 bottom_up
  else begin
    let y0 =
      match profile.Profile.backplane with
      | Profile.Grounded -> Float.infinity
      | Profile.Floating -> 0.0
    in
    let y =
      List.fold_left
        (fun y l -> propagate_layer ~sigma:l.Profile.conductivity ~gamma:g ~t:l.Profile.thickness y)
        y0 bottom_up
    in
    1.0 /. y
  end

(* All eigenvalues for modes (m, n) with 0 <= m, n < p, laid out m-fastest to
   match the 2-D DCT's flat indexing. *)
let table profile ~p =
  Array.init (p * p) (fun k -> lambda profile ~m:(k mod p) ~n:(k / p))
