module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
(* Eigenfunction-based (surface-variable) substrate solver
   (thesis §2.3.1, Fig 2-6).

   The current-density-to-potential operator is applied by zero-padding the
   contact-panel densities onto the full panel grid, taking a 2-D DCT into
   the cosine eigenbasis, scaling by the eigenvalues, and transforming back —
   exactly the pipeline of Fig 2-6. Because the orthonormal DCT is
   orthogonal and the eigenvalues positive, the restricted operator A_cc is
   symmetric positive definite, and given contact voltages the panel current
   densities are found by conjugate gradients on

       A_cc rho = F v          (F expands contact voltages to panels)

   after which contact currents are I = panel_area * F' rho and therefore
   G = panel_area * F' A_cc^{-1} F — symmetric, as §2.4 requires. *)

(* Preconditioner for the contact-panel system (thesis §2.3.1,
   '"Fast-solver" preconditioner?'): invert the *full-surface* operator by
   reversing every arrow of Fig 2-6 — zero-padding in place of the
   non-invertible "lifting" step — then restrict back to the contact panels.
   The thesis found this unpromising because the preconditioner disagrees
   with the true operator on the (large) non-contact surface; the
   reproduction confirms it. *)
type preconditioner = No_preconditioner | Fast_inverse

type t = {
  profile : Profile.t;
  panel : Panel.t;
  lambdas : float array;  (* mode eigenvalues, m-fastest *)
  precond : preconditioner;
  tol : float;
  max_iter : int;
  stats : La.Krylov.stats;
  health : Substrate.Health.t;
}

(* Galerkin correction for piecewise-constant panels (the precorrected-DCT
   operator of Costa/Chou/Silveira that the thesis's solver family uses):
   the cosine-mode coefficient of a uniform panel is its center sample times
   sinc(m pi / 2P), so the exact panel-averaged operator is the DCT
   conjugation with eigenvalues damped by sinc^2 in each direction. *)
let sinc t = if Float.abs t < 1e-12 then 1.0 else sin t /. t

let create ?(tol = 1e-9) ?(max_iter = 2000) ?(precond = No_preconditioner) ?(galerkin = false) profile
    layout ~panels_per_side =
  if not (Float.equal profile.Profile.a profile.Profile.b) then
    invalid_arg "Eig_solver.create: square surface required";
  if not (Float.equal profile.Profile.a layout.Geometry.Layout.size) then
    invalid_arg "Eig_solver.create: layout and profile surface extents differ";
  let panel = Panel.create layout ~panels_per_side in
  let p = panels_per_side in
  let lambdas = Eigenvalues.table profile ~p in
  let lambdas =
    if galerkin then
      Array.mapi
        (fun k lambda ->
          let m = k mod p and n = k / p in
          let sm = sinc (Float.pi *. float_of_int m /. (2.0 *. float_of_int p)) in
          let sn = sinc (Float.pi *. float_of_int n /. (2.0 *. float_of_int p)) in
          lambda *. sm *. sm *. sn *. sn)
        lambdas
    else lambdas
  in
  {
    profile;
    panel;
    lambdas;
    precond;
    tol;
    max_iter;
    stats = La.Krylov.make_stats ();
    health = Substrate.Health.create ();
  }

(* Escalation handle: same panel tables and eigenvalue table, tighter CG
   settings, private stats/health. Cheap — nothing is re-discretized — so a
   retry ladder can stack several of these. *)
let with_tolerance ?tol ?max_iter t =
  {
    t with
    tol = Option.value tol ~default:t.tol;
    max_iter = Option.value max_iter ~default:t.max_iter;
    stats = La.Krylov.make_stats ();
    health = Substrate.Health.create ();
  }

let panel_count t = t.panel |> Panel.n_dofs
let stats t = t.stats

(* Apply the full-surface operator A: panel current densities (full grid) to
   panel potentials (full grid). *)
let apply_operator t (density : float array) : float array =
  let p = int_of_float (sqrt (float_of_int (Array.length t.lambdas))) in
  let hat = Transforms.Dct.dct_ii_2d ~nx:p ~ny:p density in
  let scaled = Array.mapi (fun k v -> t.lambdas.(k) *. v) hat in
  Transforms.Dct.dct_iii_2d ~nx:p ~ny:p scaled

(* The restricted SPD operator A_cc on packed contact-panel dofs. *)
let apply_restricted t (rho : La.Vec.t) : La.Vec.t =
  Panel.gather t.panel (apply_operator t (Panel.scatter t.panel rho))

(* Apply the inverse of the full-surface operator, restricted: the
   fast-solver preconditioner candidate. *)
let apply_inverse_restricted t (r : La.Vec.t) : La.Vec.t =
  let p = int_of_float (sqrt (float_of_int (Array.length t.lambdas))) in
  let hat = Transforms.Dct.dct_ii_2d ~nx:p ~ny:p (Panel.scatter t.panel r) in
  let scaled = Array.mapi (fun k v -> v /. t.lambdas.(k)) hat in
  Panel.gather t.panel (Transforms.Dct.dct_iii_2d ~nx:p ~ny:p scaled)

(* One black-box solve: contact voltages to contact currents. [stats]
   designates the iteration-stats record to update — the solver's own by
   default; batched solves pass a private record per right-hand side so
   concurrent CG runs never share mutable state. *)
let solve_into ~stats t (v : La.Vec.t) : La.Vec.t =
  let rhs = Panel.expand_contacts t.panel v in
  let precond =
    match t.precond with
    | No_preconditioner -> None
    | Fast_inverse -> Some (apply_inverse_restricted t)
  in
  let t0 = Substrate.Health.now () in
  let result =
    La.Krylov.cg ?precond ~apply:(apply_restricted t) ~tol:t.tol ~max_iter:t.max_iter ~stats rhs
  in
  let wall = Substrate.Health.now () -. t0 in
  if result.La.Krylov.breakdown then
    Logs.warn (fun m ->
        m
          "eigenfunction solve: CG breakdown on a non-positive-definite direction (true residual \
           %.2e after %d iterations%s%s)"
          result.La.Krylov.residual_norm result.La.Krylov.iterations
          (if result.La.Krylov.converged then ", accepted at relaxed threshold" else "")
          (if result.La.Krylov.residual_mismatch then ", recurrence residual off by >10x" else ""))
  else if not result.La.Krylov.converged then
    Logs.warn (fun m ->
        m "eigenfunction solve: CG not converged (true residual %.2e after %d iterations%s)"
          result.La.Krylov.residual_norm result.La.Krylov.iterations
          (if result.La.Krylov.residual_mismatch then ", recurrence residual off by >10x" else ""));
  Blackbox.report_solve t.health
    {
      Substrate.Health.converged = result.La.Krylov.converged;
      breakdown = result.La.Krylov.breakdown;
      residual = result.La.Krylov.residual_norm;
      iterations = result.La.Krylov.iterations;
      wall_s = wall;
      finite = true;  (* the box wrapper completes the NaN/Inf scan *)
    };
  La.Vec.scale (Panel.panel_area t.panel) (Panel.sum_per_contact t.panel result.La.Krylov.x)

let solve t v = solve_into ~stats:t.stats t v

(* Batched solves across a domain pool. Everything a CG run touches is
   either immutable after [create] (panel tables, eigenvalue table, cached
   DCT plans — pre-built below so no domain hits the plan cache's write
   path) or cloned per right-hand side (CG work vectors are allocated inside
   [Krylov.cg]; iteration stats get a private record each, merged into
   [t.stats] once the batch completes). Responses land in input order, so
   the result is bit-identical to the sequential loop. *)
let solve_batch ?(jobs = Parallel.Pool.default_jobs ()) t (vs : La.Vec.t array) : La.Vec.t array =
  if jobs <= 1 || Array.length vs <= 1 then Array.map (solve t) vs
  else begin
    let p = int_of_float (sqrt (float_of_int (Array.length t.lambdas))) in
    ignore (Transforms.Plan.get p);
    let stats = Array.init (Array.length vs) (fun _ -> La.Krylov.make_stats ()) in
    let out =
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.map_chunks pool
            (fun i -> solve_into ~stats:stats.(i) t vs.(i))
            (Array.init (Array.length vs) Fun.id))
    in
    Array.iter (fun s -> La.Krylov.merge_stats ~into:t.stats s) stats;
    out
  end

let blackbox t =
  Blackbox.make_batch ~health:t.health
    ~n:(Panel.n_contacts t.panel)
    ~batch:(fun ~jobs vs -> solve_batch ~jobs t vs)
    (solve t)
