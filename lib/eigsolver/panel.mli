(** Panel discretization of the substrate surface (thesis Fig 2-5). *)

type t

exception Contact_without_panels of int

(** [create layout ~panels_per_side] assigns each contact the panels whose
    centers it covers. Raises [Contact_without_panels] if a contact is too
    small for the grid and [Invalid_argument] if contacts overlap. *)
val create : Geometry.Layout.t -> panels_per_side:int -> t

val panel_width : t -> float
val panel_area : t -> float

(** Number of contact-owned panels = unknowns of the surface solve. *)
val n_dofs : t -> int

(** Scatter packed contact-panel values onto the full p x p grid. *)
val scatter : t -> La.Vec.t -> float array

(** Gather the contact-panel values of a full grid. *)
val gather : t -> float array -> La.Vec.t

(** Expand one value per contact to all of that contact's panels. *)
val expand_contacts : t -> La.Vec.t -> La.Vec.t

(** Sum packed values per contact. *)
val sum_per_contact : t -> La.Vec.t -> La.Vec.t

val n_contacts : t -> int
