module Layout = Geometry.Layout
module Contact = Geometry.Contact
(* Discretization of the substrate surface into square panels
   (thesis Fig 2-5): the surface is divided into a p x p grid; each contact
   owns the panels whose centers it covers. Current density is uniform on a
   panel; potential is sampled at panel centers. *)

type t = {
  p : int;  (* panels per side *)
  size : float;  (* surface extent (square surface assumed) *)
  n_contacts : int;
  contact_panels : int array array;  (* per contact, owned flat panel indices *)
  panel_owner : int array;  (* flat panel index -> contact id or -1 *)
  contact_dofs : int array array;  (* per contact, indices into the packed dof vector *)
  dof_panels : int array;  (* packed dof -> flat panel index *)
}

exception Contact_without_panels of int

let panel_width t = t.size /. float_of_int t.p
let panel_area t = panel_width t *. panel_width t
let n_dofs t = Array.length t.dof_panels

let create (layout : Layout.t) ~panels_per_side =
  let p = panels_per_side in
  if p <= 0 then invalid_arg "Panel.create: panels_per_side must be positive";
  let size = layout.Layout.size in
  let w = size /. float_of_int p in
  let owner = Array.make (p * p) (-1) in
  let contact_panels =
    Array.mapi
      (fun id c ->
        (* Panels whose centers lie inside the contact. Restrict the scan to
           the contact's bounding cells. *)
        let gx0 = max 0 (int_of_float (c.Contact.x0 /. w) - 1) in
        let gx1 = min (p - 1) (int_of_float (c.Contact.x1 /. w) + 1) in
        let gy0 = max 0 (int_of_float (c.Contact.y0 /. w) - 1) in
        let gy1 = min (p - 1) (int_of_float (c.Contact.y1 /. w) + 1) in
        let mine = ref [] in
        for iy = gy0 to gy1 do
          for ix = gx0 to gx1 do
            let x = (float_of_int ix +. 0.5) *. w and y = (float_of_int iy +. 0.5) *. w in
            if Contact.contains c ~x ~y then begin
              let k = ix + (p * iy) in
              if owner.(k) >= 0 then
                invalid_arg
                  (Printf.sprintf "Panel.create: panel %d claimed by contacts %d and %d" k owner.(k) id);
              owner.(k) <- id;
              mine := k :: !mine
            end
          done
        done;
        if !mine = [] then raise (Contact_without_panels id);
        Array.of_list (List.rev !mine))
      layout.Layout.contacts
  in
  (* Pack all contact panels into a dof vector, in contact order. *)
  let dof_panels = Array.concat (Array.to_list contact_panels) in
  let contact_dofs =
    let next = ref 0 in
    Array.map
      (fun panels ->
        let ds = Array.init (Array.length panels) (fun k -> !next + k) in
        next := !next + Array.length panels;
        ds)
      contact_panels
  in
  { p; size; n_contacts = Array.length layout.Layout.contacts; contact_panels; panel_owner = owner; contact_dofs; dof_panels }

(* Scatter a packed dof vector onto the full panel grid (zeros elsewhere). *)
let scatter t (x : La.Vec.t) : float array =
  if Array.length x <> n_dofs t then invalid_arg "Panel.scatter: dof length mismatch";
  let grid = Array.make (t.p * t.p) 0.0 in
  Array.iteri (fun dof panel -> grid.(panel) <- x.(dof)) t.dof_panels;
  grid

(* Gather the contact-panel values of a full grid into a packed dof vector. *)
let gather t (grid : float array) : La.Vec.t =
  if Array.length grid <> t.p * t.p then invalid_arg "Panel.gather: grid length mismatch";
  Array.map (fun panel -> grid.(panel)) t.dof_panels

(* Expand contact values to the packed dof vector (each contact's value on
   all its panels). *)
let expand_contacts t (v : La.Vec.t) : La.Vec.t =
  if Array.length v <> t.n_contacts then invalid_arg "Panel.expand_contacts: contact count mismatch";
  let out = Array.make (n_dofs t) 0.0 in
  Array.iteri (fun c dofs -> Array.iter (fun d -> out.(d) <- v.(c)) dofs) t.contact_dofs;
  out

(* Sum packed dof values per contact (e.g. panel currents to contact
   currents). *)
let sum_per_contact t (x : La.Vec.t) : La.Vec.t =
  if Array.length x <> n_dofs t then invalid_arg "Panel.sum_per_contact: dof length mismatch";
  Array.map (fun dofs -> Array.fold_left (fun acc d -> acc +. x.(d)) 0.0 dofs) t.contact_dofs

let n_contacts t = t.n_contacts
