(** Eigenvalues of the layered-substrate current-density-to-potential
    operator for the cosine modes (thesis §2.3.1). *)

(** Transverse wavenumber [pi * sqrt((m/a)^2 + (n/b)^2)] of mode (m, n). *)
val gamma : Substrate.Profile.t -> m:int -> n:int -> float

(** One step of the surface-admittance recursion through a layer. *)
val propagate_layer : sigma:float -> gamma:float -> t:float -> float -> float

(** The large finite value standing in for the infinite DC eigenvalue of a
    floating backplane. *)
val floating_dc_lambda : float

(** Eigenvalue of mode (m, n); strictly positive. *)
val lambda : Substrate.Profile.t -> m:int -> n:int -> float

(** Eigenvalues for all modes 0 <= m, n < p, m-fastest flat layout. *)
val table : Substrate.Profile.t -> p:int -> float array
