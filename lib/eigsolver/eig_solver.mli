(** Eigenfunction-based (surface-variable) substrate solver
    (thesis §2.3.1, Fig 2-6). *)

type t

(** CG preconditioner for the contact-panel system: [Fast_inverse] is the
    zero-padded full-surface inverse the thesis evaluates (and finds
    unpromising) in §2.3.1. *)
type preconditioner = No_preconditioner | Fast_inverse

(** [create profile layout ~panels_per_side] discretizes the surface into
    panels and tabulates the mode eigenvalues. The layout and profile must
    share a square surface. [galerkin] applies the exact piecewise-constant
    panel averaging — sinc^2 damping per direction, the precorrected-DCT
    operator; the default is the point-sampled modes used for all recorded
    experiments (see DESIGN.md "Substitutions"). *)
val create :
  ?tol:float ->
  ?max_iter:int ->
  ?precond:preconditioner ->
  ?galerkin:bool ->
  Substrate.Profile.t ->
  Geometry.Layout.t ->
  panels_per_side:int ->
  t

(** [with_tolerance ?tol ?max_iter t] is [t] with tighter (or looser) CG
    settings, sharing the discretization and eigenvalue tables but with
    private iteration stats and health — the cheap escalation step for a
    {!Substrate.Resilient} fallback ladder. *)
val with_tolerance : ?tol:float -> ?max_iter:int -> t -> t

(** Apply the restricted inverse of the full-surface operator (the
    fast-solver preconditioner candidate). *)
val apply_inverse_restricted : t -> La.Vec.t -> La.Vec.t

(** Number of contact-panel unknowns. *)
val panel_count : t -> int

(** CG iteration statistics across all solves so far (Table 2.2). *)
val stats : t -> La.Krylov.stats

(** Apply the full current-density-to-potential operator on the panel grid
    (zero-padding / DCT / eigenvalue scaling / inverse DCT of Fig 2-6). *)
val apply_operator : t -> float array -> float array

(** The restricted SPD operator A_cc on packed contact-panel dofs. *)
val apply_restricted : t -> La.Vec.t -> La.Vec.t

(** One black-box solve: contact voltages to contact currents. *)
val solve : t -> La.Vec.t -> La.Vec.t

(** Batched solves across a domain pool of [jobs] total domains (default
    {!Parallel.Pool.default_jobs}). All per-solve mutable state is private
    to each right-hand side (CG work vectors, iteration stats — merged into
    [stats t] at the end); shared tables (panels, eigenvalues, DCT plans)
    are immutable. Responses are returned in input order and are
    bit-identical to the sequential loop. *)
val solve_batch : ?jobs:int -> t -> La.Vec.t array -> La.Vec.t array

(** Wrap as a counted black box whose batch implementation is
    [solve_batch]. The box's health record carries one report per solve
    (convergence, residual, iterations, CG breakdowns, wall time). *)
val blackbox : t -> Substrate.Blackbox.t
