(** Rectangular substrate contacts (perfect conductors on the top surface). *)

type t = { x0 : float; y0 : float; x1 : float; y1 : float }

val make : x0:float -> y0:float -> x1:float -> y1:float -> t
val width : t -> float
val height : t -> float
val area : t -> float
val centroid : t -> float * float
val contains : t -> x:float -> y:float -> bool

(** Whether the contact lies entirely inside the given box. *)
val inside : t -> x0:float -> y0:float -> x1:float -> y1:float -> bool

val pp : Format.formatter -> t -> unit
