(** Multilevel quadtree of surface squares with the interactive / local
    square relations of the thesis (§3.2, §4.2). *)

type square = {
  level : int;
  ix : int;
  iy : int;
  contacts : int array;  (** contact ids inside this square, ascending *)
}

type t

exception Contact_crosses_boundary of int

(** Number of squares per side at a level: [2^level]. *)
val side_count : int -> int

(** Flat index of square (ix, iy) within its level. *)
val index : level:int -> ix:int -> iy:int -> int

(** [create ~max_level layout] assigns contacts to finest-level squares.
    With [check] (default), raises [Contact_crosses_boundary id] if a
    contact does not fit inside its finest-level square. *)
val create : ?check:bool -> max_level:int -> Layout.t -> t

val square : t -> level:int -> ix:int -> iy:int -> square
val squares_at_level : t -> int -> square array
val contacts_of : t -> level:int -> ix:int -> iy:int -> int array
val square_bounds : t -> level:int -> ix:int -> iy:int -> float * float * float * float
val square_center : t -> level:int -> ix:int -> iy:int -> float * float
val parent_coords : ix:int -> iy:int -> int * int
val children_coords : ix:int -> iy:int -> (int * int) list

(** The square itself plus its same-level neighbors (at most 9 squares). *)
val local_squares : level:int -> ix:int -> iy:int -> (int * int) list

(** Same-level squares at distance >= 2 whose parents neighbor this square's
    parent (at most 27 squares); empty below level 2. *)
val interactive_squares : level:int -> ix:int -> iy:int -> (int * int) list

(** Sorted union of contact ids over a list of same-level squares. *)
val region_contacts : t -> level:int -> (int * int) list -> int array

(** Deepest usable subdivision level for a layout: all contacts must fit in
    single finest-level squares, preferring the shallowest level where no
    square holds more than [target] contacts. *)
val suggest_max_level : ?limit:int -> ?target:int -> Layout.t -> int

val max_level : t -> int
val surface_size : t -> float
