(* Multilevel subdivision of the substrate surface into squares
   (thesis §3.2): level l partitions the surface into 2^l x 2^l squares.
   Contacts are assigned to finest-level squares and must not cross square
   boundaries. The interactive / local square relations of §4.2 (Fig 4-4)
   are computed here. *)

type square = {
  level : int;
  ix : int;
  iy : int;
  contacts : int array;  (* contact ids inside this square, ascending *)
}

type t = {
  size : float;
  max_level : int;
  levels : square array array;  (* levels.(l).(iy * 2^l + ix) *)
  contact_count : int;
}

let side_count level = 1 lsl level
let index ~level ~ix ~iy = (iy * side_count level) + ix

let square_bounds t ~level ~ix ~iy =
  let side = t.size /. float_of_int (side_count level) in
  (float_of_int ix *. side, float_of_int iy *. side, float_of_int (ix + 1) *. side, float_of_int (iy + 1) *. side)

let square_center t ~level ~ix ~iy =
  let x0, y0, x1, y1 = square_bounds t ~level ~ix ~iy in
  (0.5 *. (x0 +. x1), 0.5 *. (y0 +. y1))

exception Contact_crosses_boundary of int

let create ?(check = true) ~max_level (layout : Layout.t) =
  if max_level < 0 then invalid_arg "Quadtree.create: negative max_level";
  let n = side_count max_level in
  let size = layout.Layout.size in
  let side = size /. float_of_int n in
  (* Assign each contact to the finest square containing its centroid. *)
  let buckets = Array.make (n * n) [] in
  Array.iteri
    (fun id c ->
      let cx, cy = Contact.centroid c in
      let ix = min (n - 1) (max 0 (int_of_float (cx /. side))) in
      let iy = min (n - 1) (max 0 (int_of_float (cy /. side))) in
      if check then begin
        let x0 = float_of_int ix *. side and y0 = float_of_int iy *. side in
        if not (Contact.inside c ~x0 ~y0 ~x1:(x0 +. side) ~y1:(y0 +. side)) then
          raise (Contact_crosses_boundary id)
      end;
      buckets.((iy * n) + ix) <- id :: buckets.((iy * n) + ix))
    layout.Layout.contacts;
  let finest =
    Array.init (n * n) (fun k ->
        {
          level = max_level;
          ix = k mod n;
          iy = k / n;
          contacts = Array.of_list (List.sort compare buckets.(k));
        })
  in
  (* Coarser levels aggregate their four children's contacts. *)
  let levels = Array.make (max_level + 1) [||] in
  levels.(max_level) <- finest;
  for l = max_level - 1 downto 0 do
    let nl = side_count l in
    levels.(l) <-
      Array.init (nl * nl) (fun k ->
          let ix = k mod nl and iy = k / nl in
          let child cx cy = levels.(l + 1).(index ~level:(l + 1) ~ix:cx ~iy:cy).contacts in
          let all =
            Array.concat
              [
                child (2 * ix) (2 * iy);
                child ((2 * ix) + 1) (2 * iy);
                child (2 * ix) ((2 * iy) + 1);
                child ((2 * ix) + 1) ((2 * iy) + 1);
              ]
          in
          Array.sort compare all;
          { level = l; ix; iy; contacts = all })
  done;
  { size; max_level; levels; contact_count = Array.length layout.Layout.contacts }

let square t ~level ~ix ~iy = t.levels.(level).(index ~level ~ix ~iy)
let squares_at_level t level = t.levels.(level)
let contacts_of t ~level ~ix ~iy = (square t ~level ~ix ~iy).contacts

let parent_coords ~ix ~iy = (ix / 2, iy / 2)

let children_coords ~ix ~iy =
  [ (2 * ix, 2 * iy); ((2 * ix) + 1, 2 * iy); (2 * ix, (2 * iy) + 1); ((2 * ix) + 1, (2 * iy) + 1) ]

(* Local squares L_s: the square itself and its (up to 8) same-level
   neighbors. *)
let local_squares ~level ~ix ~iy =
  let n = side_count level in
  let acc = ref [] in
  for dy = 1 downto -1 do
    for dx = 1 downto -1 do
      let jx = ix + dx and jy = iy + dy in
      if jx >= 0 && jx < n && jy >= 0 && jy < n then acc := (jx, jy) :: !acc
    done
  done;
  !acc

(* Interactive squares I_s: same-level squares separated from s by at least
   one square whose parents are neighbors of s's parent (thesis Fig 4-4). *)
let interactive_squares ~level ~ix ~iy =
  if level < 2 then []
  else begin
    let n = side_count level in
    let px, py = parent_coords ~ix ~iy in
    let acc = ref [] in
    List.iter
      (fun (qx, qy) ->
        List.iter
          (fun (cx, cy) ->
            if max (abs (cx - ix)) (abs (cy - iy)) >= 2 then acc := (cx, cy) :: !acc)
          (children_coords ~ix:qx ~iy:qy))
      (local_squares ~level:(level - 1) ~ix:px ~iy:py);
    ignore n;
    List.rev !acc
  end

(* Union of contact ids over a list of same-level squares, ascending. *)
let region_contacts t ~level coords =
  let all = List.concat_map (fun (ix, iy) -> Array.to_list (contacts_of t ~level ~ix ~iy)) coords in
  let arr = Array.of_list all in
  Array.sort compare arr;
  arr

(* Pick a subdivision depth: the deepest level (up to [limit]) at which all
   contacts still fit inside single squares, backed off to the shallowest
   such level where no square holds more than [target] contacts. *)
let suggest_max_level ?(limit = 9) ?(target = 8) (layout : Layout.t) =
  let fits level =
    try
      ignore (create ~check:true ~max_level:level layout);
      true
    with Contact_crosses_boundary _ -> false
  in
  let rec deepest l = if l <= 0 then 0 else if fits l then l else deepest (l - 1) in
  let l_fit = deepest limit in
  let max_count level =
    let t = create ~check:false ~max_level:level layout in
    Array.fold_left (fun acc s -> max acc (Array.length s.contacts)) 0 t.levels.(level)
  in
  let rec smallest l = if l >= l_fit then l_fit else if max_count l <= target then l else smallest (l + 1) in
  smallest 2

let max_level t = t.max_level
let surface_size t = t.size
