(** Contact layout generators reproducing the thesis's example layouts. *)

type t = { size : float; contacts : Contact.t array; name : string }

val n_contacts : t -> int

(** MD5 over the geometry alone (surface size and contact rectangles, bit
    patterns in contact order; the display name does not participate).
    Keys compatibility checks between a layout and persisted state
    (checkpoints, shard manifests) derived from it. *)
val digest : t -> Digest.t

(** [restrict t ~ids ~name] is the sub-layout holding contacts [ids]
    (ascending global ids) at their original positions on the same
    surface; contact [k] of the result is contact [ids.(k)] of [t].
    @raise Invalid_argument on an out-of-range id. *)
val restrict : t -> ids:int array -> name:string -> t

(** Fig 3-6 (Examples 1a/1b, low-rank Example 1): regular grid of same-size
    contacts. [fill] is the fraction of each cell's linear extent covered. *)
val regular_grid : ?size:float -> ?fill:float -> per_side:int -> unit -> t

(** Fig 3-7 (Example 2): same-size contacts, irregular placement with many
    large coherent gaps ([gap_fraction] of cells removed in rectangular
    blocks) and per-cell jitter. *)
val irregular :
  ?size:float -> ?fill:float -> ?gap_fraction:float -> ?jitter:float -> per_side:int -> La.Rng.t -> unit -> t

(** Fig 3-8 (wavelet Example 3 / low-rank Example 2 / Example 4): rows of
    alternating large and small contacts. *)
val alternating : ?size:float -> ?large_fill:float -> ?small_fill:float -> per_side:int -> unit -> t

(** Fig 4-8 (low-rank Example 3): small squares, long thin runs, and guard
    rings, each built from cell-sized rectangles. Requires [per_side >= 16]. *)
val mixed_shapes : ?size:float -> per_side:int -> unit -> t

(** Fig 4-10 (Example 5): blocks of dense small contacts alternating with
    sparse large contacts; [per_side = 128] gives roughly the thesis's 10240
    contacts. *)
val large_mixed :
  ?size:float -> ?small_fill:float -> ?large_fill:float -> per_side:int -> La.Rng.t -> unit -> t

(** Fig 4-1: the 6-contact intuition example. Returns the layout and the
    index sets of the source square (contacts 1-2) and destination square
    (contacts 3-6). *)
val two_square_example : ?size:float -> unit -> t * int array * int array

(** ASCII rendering of the layout. *)
val render : ?width:int -> t -> string
