(* Polynomial moments of contact-supported voltage functions
   (thesis §3.2.1).

   The (a, b) moment of a voltage function sigma over the contact area C_s in
   a square s, about a center (cx, cy), is

     mu_{a,b,s}(sigma) = integral over C_s of (x - cx)^a (y - cy)^b sigma dA.

   For piecewise-constant sigma on rectangular contacts these integrals are
   analytic (products of one-dimensional power integrals). The wavelet basis
   requires all moments of order <= p to vanish; p = 2 gives the thesis's 6
   constraints per square. *)

(* Exponent pairs (a, b) with a + b <= p, in a fixed order. *)
let exponents p =
  let acc = ref [] in
  for order = 0 to p do
    for a = 0 to order do
      acc := (a, order - a) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let count p = (p + 1) * (p + 2) / 2

(* integral of (t - c)^a dt over [t0, t1] *)
let power_integral ~c ~a t0 t1 =
  (((t1 -. c) ** float_of_int (a + 1)) -. ((t0 -. c) ** float_of_int (a + 1))) /. float_of_int (a + 1)

(* The (a, b) moment of the characteristic function of one rectangular
   contact about (cx, cy). *)
let contact_moment ~cx ~cy (c : Contact.t) ~a ~b =
  power_integral ~c:cx ~a c.Contact.x0 c.Contact.x1 *. power_integral ~c:cy ~a:b c.Contact.y0 c.Contact.y1

(* Moments matrix M_s of thesis §3.4.1: row (a, b), column i holds the
   (a, b) moment of the characteristic function of the i-th listed contact,
   about the given center. *)
let matrix ~p ~center (contacts : Contact.t array) =
  let cx, cy = center in
  let exps = exponents p in
  La.Mat.init (Array.length exps) (Array.length contacts) (fun r i ->
      let a, b = exps.(r) in
      contact_moment ~cx ~cy contacts.(i) ~a ~b)

let binomial n k =
  let rec go acc i = if i > k then acc else go (acc * (n - i + 1) / i) (i + 1) in
  if k < 0 || k > n then 0 else go 1 1

(* Change-of-center matrix (thesis §3.4.2): if M_old holds moments about
   center c1 and the new center is c2 = c1 - (dx, dy), i.e. (dx, dy) is the
   offset of the old center relative to the new one, then
   M_new = shift * M_old, since
   (x - c2)^a = sum_k C(a,k) (x - c1)^k dx^(a-k). *)
let shift_matrix ~p ~dx ~dy =
  let exps = exponents p in
  let d = Array.length exps in
  La.Mat.init d d (fun r c ->
      let a, b = exps.(r) and k, l = exps.(c) in
      if k <= a && l <= b then
        float_of_int (binomial a k * binomial b l) *. (dx ** float_of_int (a - k)) *. (dy ** float_of_int (b - l))
      else 0.0)

(* Moments of a voltage vector (one value per listed contact): M_s v. *)
let of_vector ~p ~center contacts (v : La.Vec.t) = La.Mat.gemv (matrix ~p ~center contacts) v
