(** Polynomial moments of contact-supported voltage functions
    (thesis §3.2.1). *)

(** Exponent pairs (a, b) with a + b <= p, in the fixed row order used by
    [matrix]. *)
val exponents : int -> (int * int) array

(** [(p+1)(p+2)/2], the number of moments of order <= p. *)
val count : int -> int

(** The (a, b) moment of one rectangular contact's characteristic function
    about center (cx, cy) — analytic. *)
val contact_moment : cx:float -> cy:float -> Contact.t -> a:int -> b:int -> float

(** Moments matrix M_s: rows are exponent pairs, columns are contacts. *)
val matrix : p:int -> center:float * float -> Contact.t array -> La.Mat.t

val binomial : int -> int -> int

(** Change-of-center matrix: [M_about_new_center = shift_matrix * M_old] when
    the old center sits at offset (dx, dy) from the new one. *)
val shift_matrix : p:int -> dx:float -> dy:float -> La.Mat.t

(** Moments of the voltage function associated with a coefficient vector. *)
val of_vector : p:int -> center:float * float -> Contact.t array -> La.Vec.t -> La.Vec.t
