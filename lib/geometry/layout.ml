(* Contact layout generators for every example the thesis evaluates on.

   All layouts live on a square surface [0, size] x [0, size] and are aligned
   to a cell grid so that every contact fits inside a finest-level quadtree
   square (the thesis's standing assumption, §3.2). *)

type t = { size : float; contacts : Contact.t array; name : string }

let n_contacts t = Array.length t.contacts

(* MD5 of the geometry alone — surface size and contact rectangles as
   IEEE-754 bit patterns, in contact order; the display name does not
   participate. Two layouts digest equal iff a solver would see the same
   problem, so the digest keys checkpoint/manifest compatibility checks. *)
let digest t =
  let b = Buffer.create (16 + (32 * Array.length t.contacts)) in
  let add f = Buffer.add_int64_le b (Int64.bits_of_float f) in
  add t.size;
  Buffer.add_int64_le b (Int64.of_int (Array.length t.contacts));
  Array.iter
    (fun (c : Contact.t) ->
      add c.x0;
      add c.y0;
      add c.x1;
      add c.y1)
    t.contacts;
  Digest.bytes (Buffer.to_bytes b)

(* The sub-layout holding the contacts with the given ids (ascending),
   on the same surface. Positions are preserved, so geometric structure —
   quadtree membership, separations — is unchanged; only the contact
   numbering is compacted. *)
let restrict t ~ids ~name =
  Array.iter
    (fun i ->
      if i < 0 || i >= Array.length t.contacts then
        invalid_arg (Printf.sprintf "Layout.restrict: contact id %d out of range" i))
    ids;
  { t with contacts = Array.map (fun i -> t.contacts.(i)) ids; name }

(* A contact centered in grid cell (i, j) of a per_side x per_side division,
   occupying [fill] of the cell's linear extent. *)
let cell_contact ~size ~per_side ~fill i j =
  let cell = size /. float_of_int per_side in
  let margin = 0.5 *. (1.0 -. fill) *. cell in
  Contact.make
    ~x0:((float_of_int i *. cell) +. margin)
    ~y0:((float_of_int j *. cell) +. margin)
    ~x1:((float_of_int (i + 1) *. cell) -. margin)
    ~y1:((float_of_int (j + 1) *. cell) -. margin)

(* Thesis Fig 3-6 / Example 1: a regular per_side x per_side grid of
   same-size square contacts. *)
let regular_grid ?(size = 128.0) ?(fill = 0.5) ~per_side () =
  let contacts =
    Array.init (per_side * per_side) (fun k ->
        cell_contact ~size ~per_side ~fill (k mod per_side) (k / per_side))
  in
  { size; contacts; name = Printf.sprintf "regular %dx%d" per_side per_side }

(* Thesis Fig 3-7 / Example 2: same-size contacts, irregular placement with
   many large gaps. The gaps are coherent rectangular blocks of removed
   cells (as in the thesis's figure) and the remaining contacts are
   jittered inside their cells, so the *local* contact density stays
   uniform away from gap boundaries — the regime where geometric
   moment-matching still works. Salt-and-pepper removal would instead vary
   each contact's shielding by its grounded neighbors and defeat any
   geometry-only basis (see DESIGN.md). *)
let irregular ?(size = 128.0) ?(fill = 0.4) ?(gap_fraction = 0.3) ?(jitter = 0.25) ~per_side rng () =
  let cell = size /. float_of_int per_side in
  let side = fill *. cell in
  let removed = Array.make_matrix per_side per_side false in
  (* Carve rectangular gaps until roughly [gap_fraction] of cells are gone. *)
  let target = int_of_float (gap_fraction *. float_of_int (per_side * per_side)) in
  let count = ref 0 in
  let attempts = ref 0 in
  while !count < target && !attempts < 100 do
    incr attempts;
    let w = 2 + La.Rng.int rng (max 1 (per_side / 3)) in
    let h = 2 + La.Rng.int rng (max 1 (per_side / 3)) in
    let i0 = La.Rng.int rng (max 1 (per_side - w)) in
    let j0 = La.Rng.int rng (max 1 (per_side - h)) in
    for j = j0 to min (per_side - 1) (j0 + h - 1) do
      for i = i0 to min (per_side - 1) (i0 + w - 1) do
        if not removed.(i).(j) then begin
          removed.(i).(j) <- true;
          incr count
        end
      done
    done
  done;
  let contacts = ref [] in
  for j = 0 to per_side - 1 do
    for i = 0 to per_side - 1 do
      if not removed.(i).(j) then begin
        let slack = (cell -. side) *. jitter in
        let base = 0.5 *. (cell -. side -. slack) in
        let ox = base +. (La.Rng.float rng *. slack) and oy = base +. (La.Rng.float rng *. slack) in
        let x0 = (float_of_int i *. cell) +. ox and y0 = (float_of_int j *. cell) +. oy in
        contacts := Contact.make ~x0 ~y0 ~x1:(x0 +. side) ~y1:(y0 +. side) :: !contacts
      end
    done
  done;
  let contacts = Array.of_list (List.rev !contacts) in
  { size; contacts; name = Printf.sprintf "irregular %d cells, %d contacts" (per_side * per_side) (Array.length contacts) }

(* Thesis Fig 3-8 / low-rank Example 2: contacts of alternating sizes
   (rows alternate between large and small contacts). *)
let alternating ?(size = 128.0) ?(large_fill = 0.75) ?(small_fill = 0.3) ~per_side () =
  let contacts =
    Array.init (per_side * per_side) (fun k ->
        let i = k mod per_side and j = k / per_side in
        let fill = if j mod 2 = 0 then large_fill else small_fill in
        cell_contact ~size ~per_side ~fill i j)
  in
  { size; contacts; name = Printf.sprintf "alternating %dx%d" per_side per_side }

(* Thesis Fig 4-8 / low-rank Example 3: very irregularly shaped contacts —
   small squares, long thin runs, and guard rings — all built from cell-sized
   rectangles so each piece fits in a finest-level square. *)
let mixed_shapes ?(size = 128.0) ~per_side () =
  if per_side < 16 then invalid_arg "Layout.mixed_shapes: per_side must be at least 16";
  let cell = size /. float_of_int per_side in
  let contacts = ref [] in
  let add c = contacts := c :: !contacts in
  let occupied = Array.make_matrix per_side per_side false in
  let strip i j w h =
    (* A thin strip inside cell (i, j): w, h are fractions of the cell. *)
    occupied.(i).(j) <- true;
    let cx = (float_of_int i +. 0.5) *. cell and cy = (float_of_int j +. 0.5) *. cell in
    add
      (Contact.make
         ~x0:(cx -. (0.5 *. w *. cell))
         ~y0:(cy -. (0.5 *. h *. cell))
         ~x1:(cx +. (0.5 *. w *. cell))
         ~y1:(cy +. (0.5 *. h *. cell)))
  in
  (* A ring: the border cells of a square block get thin strips. *)
  let ring i0 j0 extent =
    for d = 0 to extent - 1 do
      strip (i0 + d) j0 0.9 0.3;
      strip (i0 + d) (j0 + extent - 1) 0.9 0.3;
      if d > 0 && d < extent - 1 then begin
        strip i0 (j0 + d) 0.3 0.9;
        strip (i0 + extent - 1) (j0 + d) 0.3 0.9
      end
    done
  in
  (* A long horizontal run of thin contacts. *)
  let long_run i0 j len = for d = 0 to len - 1 do strip (i0 + d) j 0.95 0.25 done in
  let q = per_side / 4 in
  ring q q (q / 2 * 2);
  ring (2 * q) (2 * q) (q / 2 * 2);
  long_run (q / 2) (per_side - 1 - (q / 2)) (per_side / 2);
  long_run (q / 2) (q / 2) (per_side / 3);
  (* Fill part of the remaining cells with small squares. *)
  for j = 0 to per_side - 1 do
    for i = 0 to per_side - 1 do
      if (not occupied.(i).(j)) && (i + (2 * j)) mod 4 = 0 then begin
        occupied.(i).(j) <- true;
        add (cell_contact ~size ~per_side ~fill:0.4 i j)
      end
    done
  done;
  let contacts = Array.of_list (List.rev !contacts) in
  { size; contacts; name = Printf.sprintf "mixed shapes, %d pieces" (Array.length contacts) }

(* Thesis Fig 4-10 / Example 5: a large population of big and small contacts
   arranged in blocks, 10240 contacts at per_side = 128 with density tuned to
   the figure; smaller values reproduce the same structure scaled down. *)
let large_mixed ?(size = 128.0) ?(small_fill = 0.5) ?(large_fill = 0.9) ~per_side rng () =
  let contacts = ref [] in
  let block = 8 in
  for j = 0 to per_side - 1 do
    for i = 0 to per_side - 1 do
      let bi = i / block and bj = j / block in
      (* Alternate blocks of dense small contacts and sparse large contacts. *)
      if (bi + bj) mod 2 = 0 then begin
        if La.Rng.float rng < 0.8 then
          contacts := cell_contact ~size ~per_side ~fill:small_fill i j :: !contacts
      end
      else if i mod 2 = 0 && j mod 2 = 0 && La.Rng.float rng < 0.9 then
        contacts := cell_contact ~size ~per_side ~fill:large_fill i j :: !contacts
    done
  done;
  let contacts = Array.of_list (List.rev !contacts) in
  { size; contacts; name = Printf.sprintf "large mixed, %d contacts" (Array.length contacts) }

(* The 6-contact layout of thesis Fig 4-1: two contacts of different sizes in
   a source square, four equal contacts in a well-separated destination
   square. Returns the layout plus the index sets (s, d). *)
let two_square_example ?(size = 64.0) () =
  let contacts =
    [|
      (* Source square s: small contact (1) and large contact (2), area ratio 2.25. *)
      Contact.make ~x0:2.0 ~y0:10.0 ~x1:6.0 ~y1:14.0;
      Contact.make ~x0:9.0 ~y0:9.0 ~x1:15.0 ~y1:15.0;
      (* Destination square d: four equal contacts far to the right. *)
      Contact.make ~x0:42.0 ~y0:10.0 ~x1:46.0 ~y1:14.0;
      Contact.make ~x0:50.0 ~y0:10.0 ~x1:54.0 ~y1:14.0;
      Contact.make ~x0:42.0 ~y0:2.0 ~x1:46.0 ~y1:6.0;
      Contact.make ~x0:50.0 ~y0:2.0 ~x1:54.0 ~y1:6.0;
    |]
  in
  ({ size; contacts; name = "fig 4-1 two-square example" }, [| 0; 1 |], [| 2; 3; 4; 5 |])

(* ASCII rendering of a layout (the text analogue of Figs 3-6..3-8, 4-8,
   4-10). *)
let render ?(width = 64) t =
  let h = width / 2 in
  let grid = Array.make_matrix h width ' ' in
  Array.iter
    (fun c ->
      let to_gx x = min (width - 1) (max 0 (int_of_float (x /. t.size *. float_of_int width))) in
      let to_gy y = min (h - 1) (max 0 (int_of_float (y /. t.size *. float_of_int h))) in
      for gy = to_gy c.Contact.y0 to to_gy (c.Contact.y1 -. 1e-9) do
        for gx = to_gx c.Contact.x0 to to_gx (c.Contact.x1 -. 1e-9) do
          grid.(gy).(gx) <- '#'
        done
      done)
    t.contacts;
  let buf = Buffer.create ((h + 2) * (width + 3)) in
  Buffer.add_string buf (Printf.sprintf "%s (%d contacts)\n" t.name (Array.length t.contacts));
  Buffer.add_char buf '+';
  for _ = 1 to width do Buffer.add_char buf '-' done;
  Buffer.add_string buf "+\n";
  for gy = h - 1 downto 0 do
    Buffer.add_char buf '|';
    Array.iter (Buffer.add_char buf) grid.(gy);
    Buffer.add_string buf "|\n"
  done;
  Buffer.add_char buf '+';
  for _ = 1 to width do Buffer.add_char buf '-' done;
  Buffer.add_string buf "+\n";
  Buffer.contents buf
