(* Rectangular substrate contacts on the top surface.

   Every contact is an axis-aligned rectangle, assumed perfectly conducting
   (uniform voltage). Large or irregular shapes (long runs, guard rings) are
   represented as collections of rectangles each small enough to fit inside a
   finest-level quadtree square, exactly as the thesis does ("Right now they
   need to be broken up into many small contacts so that each fits in a
   finest-level square", §5.2). *)

type t = { x0 : float; y0 : float; x1 : float; y1 : float }

let make ~x0 ~y0 ~x1 ~y1 =
  if x1 <= x0 || y1 <= y0 then invalid_arg "Contact.make: degenerate rectangle";
  { x0; y0; x1; y1 }

let width c = c.x1 -. c.x0
let height c = c.y1 -. c.y0
let area c = width c *. height c
let centroid c = (0.5 *. (c.x0 +. c.x1), 0.5 *. (c.y0 +. c.y1))

let contains c ~x ~y = x >= c.x0 && x <= c.x1 && y >= c.y0 && y <= c.y1

(* Is the contact entirely inside the axis-aligned box? *)
let inside c ~x0 ~y0 ~x1 ~y1 =
  c.x0 >= x0 -. 1e-12 && c.x1 <= x1 +. 1e-12 && c.y0 >= y0 -. 1e-12 && c.y1 <= y1 +. 1e-12

let pp ppf c = Fmt.pf ppf "[%.4f,%.4f]x[%.4f,%.4f]" c.x0 c.x1 c.y0 c.y1
