(** The sparsified conductance representation [G ~ Q G_w Q'].

    Application goes through the operator interface: {!op} turns a
    representation into a {!Subcouple_op.t} (three sparse matvecs per
    apply, pool-parallel batches), and {!save}/{!load} persist it as an
    operator artifact so a later process can serve it without a solver. *)

type t = {
  n : int;
  q : Sparsemat.Csr.t;
  gw : Sparsemat.Csr.t;
  solves : int;  (** black-box solves spent building the representation *)
}

val make : q:Sparsemat.Csr.t -> gw:Sparsemat.Csr.t -> solves:int -> t

(** Apply to a whole block of right-hand sides with each of the three CSR
    products fused across the block (one matrix sweep per product);
    [jobs > 1] splits the block into contiguous chunks on the Domain
    pool. Responses are bit-identical to per-column {!op} application,
    for every [jobs]. This is the [batch] implementation behind {!op}. *)
val apply_batch : t -> jobs:int -> La.Vec.t array -> La.Vec.t array

(** The representation as a first-class operator. [storage_floats] is
    {!storage_floats}; [solves_spent] reports the (fixed) build cost. *)
val op : t -> Subcouple_op.t

(** Densify (for error measurement against an exact G). *)
val to_dense : t -> La.Mat.t

(** Drop small entries of G_w to make it roughly [target] times sparser
    (binary-searched threshold, thesis §3.7). *)
val threshold : t -> target:float -> t

val sparsity_gw : t -> float
val sparsity_q : t -> float
val nnz_gw : t -> int

(** Nonzeros stored across both factors — the thesis's storage currency. *)
val storage_floats : t -> int

(** Largest deviation of Q'Q from the identity. *)
val orthogonality_defect : t -> float

(** {2 Persistence}

    Conversion to and from {!Subcouple_op.Artifact} payloads, plus
    file-level convenience wrappers. [kind] and [source] record
    provenance (extraction method, layout, solver) in the artifact. *)

val to_artifact : ?kind:string -> ?source:string -> t -> Subcouple_op.Artifact.payload
val of_artifact : Subcouple_op.Artifact.payload -> t

(** Write the representation to an artifact file (".sca").
    @raise Subcouple_op.Artifact.Error on filesystem failure. *)
val save : ?kind:string -> ?source:string -> t -> path:string -> unit

(** Read a representation back from an artifact file. The result applies
    bit-identically to the representation that was saved.
    @raise Subcouple_op.Artifact.Error if the file is missing, torn,
    corrupt, or from an unsupported format version. *)
val load : path:string -> t
