(** The sparsified conductance representation [G ~ Q G_w Q']. *)

type t = {
  n : int;
  q : Sparsemat.Csr.t;
  gw : Sparsemat.Csr.t;
  solves : int;  (** black-box solves spent building the representation *)
}

val make : q:Sparsemat.Csr.t -> gw:Sparsemat.Csr.t -> solves:int -> t

(** Apply the represented operator: three sparse matrix-vector products. *)
val apply : t -> La.Vec.t -> La.Vec.t

(** Densify (for error measurement against an exact G). *)
val to_dense : t -> La.Mat.t

(** Selected columns of the represented operator. *)
val columns : t -> int array -> La.Vec.t array

(** Drop small entries of G_w to make it roughly [target] times sparser
    (binary-searched threshold, thesis §3.7). *)
val threshold : t -> target:float -> t

val sparsity_gw : t -> float
val sparsity_q : t -> float
val nnz_gw : t -> int

(** Largest deviation of Q'Q from the identity. *)
val orthogonality_defect : t -> float
