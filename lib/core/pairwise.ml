module Quadtree = Geometry.Quadtree
module Mat = La.Mat
module Vec = La.Vec

(* IES3-style pairwise low-rank baseline (thesis §4.5).

   The SVD-based sparsification methods that preceded the thesis (IES3,
   H-matrices) compress each interactive-pair block G(d, s) with its own
   truncated SVD. Two contrasts with the thesis's method, both of which this
   module exists to measure:

   - it requires constant-time access to individual entries of G (here: the
     dense matrix itself) — exactly what a black-box substrate solver cannot
     provide; and
   - the "important vectors" differ for every (source, destination) pair
     rather than forming one global change of basis, so the storage carries
     a per-pair cost that the thesis's multipole-like representation shares
     across destinations.

   The hierarchy of blocks is the standard one: interactive pairs on every
   level >= 2 plus explicit finest-level local blocks. *)

type block = {
  src : int array;  (* source contacts *)
  dst : int array;  (* destination contacts *)
  u : Mat.t;  (* |dst| x k *)
  sv : Mat.t;  (* k x |src|: diag(sigma) V' *)
}

type local_block = {
  l_src : int array;
  l_region : int array;  (* destination: the 3x3 neighborhood's contacts *)
  dense : Mat.t;  (* |l_region| x |l_src| *)
}

type t = { n : int; blocks : block list; local : local_block list }

let keep_rule ~sigma_rel_tol ~max_rank (s : float array) =
  if Array.length s = 0 then 0
  else begin
    let s1 = s.(0) in
    let k = ref 0 in
    Array.iteri (fun i sigma -> if i < max_rank && sigma >= sigma_rel_tol *. s1 && sigma > 0.0 then incr k) s;
    !k
  end

(* Build from a quadtree and the dense G (entry access required — the
   baseline's defining limitation). *)
let build ?(sigma_rel_tol = 0.01) ?(max_rank = 6) tree (g : Mat.t) =
  let n = Mat.rows g in
  let max_level = Quadtree.max_level tree in
  let blocks = ref [] in
  for level = 2 to max_level do
    let nsq = Quadtree.side_count level in
    for iy = 0 to nsq - 1 do
      for ix = 0 to nsq - 1 do
        let src = Quadtree.contacts_of tree ~level ~ix ~iy in
        if Array.length src > 0 then
          List.iter
            (fun (jx, jy) ->
              let dst = Quadtree.contacts_of tree ~level ~ix:jx ~iy:jy in
              if Array.length dst > 0 then begin
                let block = Mat.select g ~row_idx:dst ~col_idx:src in
                let f = La.Svd.decomp block in
                let k = keep_rule ~sigma_rel_tol ~max_rank f.La.Svd.s in
                if k > 0 then begin
                  let u = Mat.sub_matrix f.La.Svd.u ~row:0 ~col:0 ~rows:(Array.length dst) ~cols:k in
                  let v = Mat.sub_matrix f.La.Svd.v ~row:0 ~col:0 ~rows:(Array.length src) ~cols:k in
                  let sv = Mat.init k (Array.length src) (fun r c -> f.La.Svd.s.(r) *. Mat.get v c r) in
                  blocks := { src; dst; u; sv } :: !blocks
                end
              end)
            (Quadtree.interactive_squares ~level ~ix ~iy)
      done
    done
  done;
  (* Finest-level local blocks, dense. *)
  let local = ref [] in
  let nsq = Quadtree.side_count max_level in
  for iy = 0 to nsq - 1 do
    for ix = 0 to nsq - 1 do
      let l_src = Quadtree.contacts_of tree ~level:max_level ~ix ~iy in
      if Array.length l_src > 0 then begin
        let l_region =
          Quadtree.region_contacts tree ~level:max_level
            (Quadtree.local_squares ~level:max_level ~ix ~iy)
        in
        local := { l_src; l_region; dense = Mat.select g ~row_idx:l_region ~col_idx:l_src } :: !local
      end
    done
  done;
  { n; blocks = !blocks; local = !local }

let apply t (x : Vec.t) : Vec.t =
  if Array.length x <> t.n then invalid_arg "Pairwise.apply: dimension mismatch";
  let out = Array.make t.n 0.0 in
  List.iter
    (fun b ->
      let xs = Regions.gather b.src x in
      let contrib = Mat.gemv b.u (Mat.gemv b.sv xs) in
      Regions.scatter_add b.dst contrib out)
    t.blocks;
  List.iter
    (fun lb -> Regions.scatter_add lb.l_region (Mat.gemv lb.dense (Regions.gather lb.l_src x)) out)
    t.local;
  out

(* Stored floats: the thesis's storage comparison currency. A factored pair
   costs k (|dst| + |src|); a dense local block |region| * |src|. *)
let storage_floats t =
  let pair_cost =
    List.fold_left
      (fun acc b -> acc + (Mat.cols b.u * (Array.length b.dst + Array.length b.src)))
      0 t.blocks
  in
  List.fold_left (fun acc lb -> acc + (Mat.rows lb.dense * Mat.cols lb.dense)) pair_cost t.local

let block_count t = List.length t.blocks

(* The baseline as an operator. Truncated per-block SVDs do not preserve
   the symmetry of G, so [symmetric] is false; [solves_spent] is 0 — the
   baseline is built from entry access, never from black-box solves. *)
let op t =
  Subcouple_op.make ~pure:true ~storage_floats:(storage_floats t)
    ~describe:
      {
        Subcouple_op.kind = "pairwise";
        source =
          Printf.sprintf "IES3 pairwise truncated-SVD baseline (%d low-rank blocks)"
            (List.length t.blocks);
        symmetric = false;
      }
    ~n:t.n (apply t)

module _ : Subcouple_op.S with type repr = t = struct
  type repr = t

  let op = op
end

(* Densify (for error measurement). *)
let to_dense t =
  let g = Mat.create t.n t.n in
  let e = Array.make t.n 0.0 in
  for j = 0 to t.n - 1 do
    e.(j) <- 1.0;
    Mat.set_col g j (apply t e);
    e.(j) <- 0.0
  done;
  g
