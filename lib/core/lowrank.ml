module Quadtree = Geometry.Quadtree
module Mat = La.Mat
module Csr = Sparsemat.Csr
module Coo = Sparsemat.Coo

(* Phase 2 of the low-rank method (thesis §4.4): the fine-to-coarse sweep.

   Starting from the row bases of phase 1 (U_s = V_s slow-decaying,
   T_s = W_s fast-decaying on the finest level), each coarser square
   recombines its children's slow-decaying vectors: the SVD of the
   interaction G(I_p, p) X_p — evaluated through the phase-1 representation,
   with no further black-box solves — splits the recombination into a few
   more slow-decaying vectors U_p (large singular values) and many
   fast-decaying ones T_p (eq. (4.27)). The T vectors of all levels plus the
   level-2 U vectors form the orthogonal Q, and G_w keeps only interactions
   between basis vectors in mutually local squares (same conservative
   cross-level rule as the wavelet method) plus the coarse U interactions
   with everything. *)

type phase2_square = {
  coords : int * int;
  level : int;
  contacts : int array;
  u : Mat.t;  (* slow-decaying, n_s x u_s *)
  t : Mat.t;  (* fast-decaying, n_s x t_s *)
  mutable t_offset : int;
  mutable u_offset : int;  (* level 2 only; -1 elsewhere *)
}

type t = {
  rb : Rowbasis.t;
  tree : Quadtree.t;
  n : int;
  max_level : int;
  squares : (int * int * int, phase2_square) Hashtbl.t;
  level_order : (int * int) list array;  (* nonempty squares per level, Morton *)
}

let find t ~level ~ix ~iy = Hashtbl.find_opt t.squares (level, ix, iy)
let rowbasis t = t.rb

let keep_rule ~sigma_rel_tol ~max_rank (s : float array) =
  if Array.length s = 0 then 0
  else begin
    let s1 = s.(0) in
    let k = ref 0 in
    Array.iteri (fun i sigma -> if i < max_rank && sigma >= sigma_rel_tol *. s1 && sigma > 0.0 then incr k) s;
    !k
  end

(* ------------------------------------------------------------------ *)
(* Fine-to-coarse sweep. *)

let build ?(sigma_rel_tol = 0.01) ?(max_rank = 6) rb =
  Trace.with_span "lowrank.phase2_sweep" @@ fun () ->
  let tree = Rowbasis.tree rb in
  let max_level = Quadtree.max_level tree in
  let n = Quadtree.squares_at_level tree 0 |> fun a -> Array.length a.(0).Quadtree.contacts in
  let squares : (int * int * int, phase2_square) Hashtbl.t = Hashtbl.create 256 in
  let level_order = Array.make (max_level + 1) [] in
  (* Finest level: U = V, T = W (thesis §4.4.2). *)
  let nonempty level =
    Array.to_list (Quadtree.squares_at_level tree level)
    |> List.filter_map (fun (sq : Quadtree.square) ->
           if Array.length sq.Quadtree.contacts > 0 then Some (sq.Quadtree.ix, sq.Quadtree.iy) else None)
  in
  List.iter
    (fun (ix, iy) ->
      match Rowbasis.find rb ~level:max_level ~ix ~iy with
      | None -> ()
      | Some d ->
        let w = match d.Rowbasis.w with Some w -> w | None -> Mat.create (Array.length d.Rowbasis.contacts) 0 in
        (* With no contacts in the interactive region there was nothing to
           discriminate fast- from slow-decaying vectors against (the
           thesis's "very irregular contact layouts" caveat, §4.3.3):
           conservatively keep the whole space slow-decaying so coarser
           levels, which do see far contacts, make the split. *)
        let inter_empty =
          List.for_all
            (fun (jx, jy) ->
              Array.length (Quadtree.contacts_of tree ~level:max_level ~ix:jx ~iy:jy) = 0)
            (Quadtree.interactive_squares ~level:max_level ~ix ~iy)
        in
        let u, t =
          if inter_empty then (Mat.hcat d.Rowbasis.v w, Mat.create (Array.length d.Rowbasis.contacts) 0)
          else (d.Rowbasis.v, w)
        in
        Hashtbl.replace squares (max_level, ix, iy)
          { coords = (ix, iy); level = max_level; contacts = d.Rowbasis.contacts; u; t; t_offset = -1; u_offset = -1 };
        level_order.(max_level) <- (ix, iy) :: level_order.(max_level))
    (nonempty max_level);
  (* Coarser levels down to 2. *)
  for level = max_level - 1 downto 2 do
    List.iter
      (fun (ix, iy) ->
        match Rowbasis.find rb ~level ~ix ~iy with
        | None -> ()
        | Some pd ->
          let contacts = pd.Rowbasis.contacts in
          (* Collect the children's slow-decaying vectors in parent
             coordinates. *)
          let cols = ref [] in
          List.iter
            (fun (cx, cy) ->
              match Hashtbl.find_opt squares (level + 1, cx, cy) with
              | None -> ()
              | Some child ->
                for j = 0 to Mat.cols child.u - 1 do
                  cols := Regions.embed ~within:contacts ~sub:child.contacts (Mat.col child.u j) :: !cols
                done)
            (Quadtree.children_coords ~ix ~iy);
          let entry =
            match List.rev !cols with
            | [] ->
              { coords = (ix, iy); level; contacts; u = Mat.create (Array.length contacts) 0;
                t = Mat.create (Array.length contacts) 0; t_offset = -1; u_offset = -1 }
            | cols_list ->
              let x = Mat.of_cols cols_list in
              let k_cols = Mat.cols x in
              (* Interaction of the recombined vectors with the interactive
                 region, through the phase-1 representation. *)
              let inter =
                List.filter_map
                  (fun (jx, jy) -> Rowbasis.find rb ~level ~ix:jx ~iy:jy)
                  (Quadtree.interactive_squares ~level ~ix ~iy)
              in
              let inter_rows = List.fold_left (fun acc d -> acc + Array.length d.Rowbasis.contacts) 0 inter in
              if inter_rows = 0 then
                (* No interactive contacts to discriminate against: keep all
                   recombined vectors slow-decaying (conservative). *)
                { coords = (ix, iy); level; contacts; u = x;
                  t = Mat.create (Array.length contacts) 0; t_offset = -1; u_offset = -1 }
              else begin
                let b = Mat.create (max inter_rows k_cols) k_cols in
                (* Padding rows of zeros (when inter_rows < k_cols) leave
                   singular values and right vectors unchanged but keep the
                   SVD's right factor full. *)
                for j = 0 to k_cols - 1 do
                  let xj = Mat.col x j in
                  let row0 = ref 0 in
                  List.iter
                    (fun d ->
                      let block = Rowbasis.interaction_block rb ~src:pd ~dst:d xj in
                      Array.iteri (fun r v -> Mat.set b (!row0 + r) j v) block;
                      row0 := !row0 + Array.length d.Rowbasis.contacts)
                    inter
                done;
                let f = La.Svd.decomp b in
                let k = keep_rule ~sigma_rel_tol ~max_rank f.La.Svd.s in
                let vfull = f.La.Svd.v in
                let u_coeff = Mat.sub_matrix vfull ~row:0 ~col:0 ~rows:k_cols ~cols:k in
                let t_coeff = Mat.sub_matrix vfull ~row:0 ~col:k ~rows:k_cols ~cols:(k_cols - k) in
                { coords = (ix, iy); level; contacts; u = Mat.mul x u_coeff; t = Mat.mul x t_coeff;
                  t_offset = -1; u_offset = -1 }
              end
          in
          Hashtbl.replace squares (level, ix, iy) entry;
          level_order.(level) <- (ix, iy) :: level_order.(level))
      (nonempty level)
  done;
  (* Morton ordering and Q column offsets: level-2 U first, then T by level
     coarse to fine. *)
  Array.iteri
    (fun l sqs ->
      level_order.(l) <-
        List.sort
          (fun (ax, ay) (bx, by) -> compare (Wavelet.morton ~ix:ax ~iy:ay) (Wavelet.morton ~ix:bx ~iy:by))
          sqs)
    level_order;
  let next = ref 0 in
  List.iter
    (fun (ix, iy) ->
      let sq = Hashtbl.find squares (2, ix, iy) in
      sq.u_offset <- !next;
      next := !next + Mat.cols sq.u)
    level_order.(2);
  for level = 2 to max_level do
    List.iter
      (fun (ix, iy) ->
        let sq = Hashtbl.find squares (level, ix, iy) in
        sq.t_offset <- !next;
        next := !next + Mat.cols sq.t)
      level_order.(level)
  done;
  if !next <> n then
    invalid_arg (Printf.sprintf "Lowrank.build: basis has %d columns for %d contacts" !next n);
  { rb; tree; n; max_level; squares; level_order }

(* ------------------------------------------------------------------ *)
(* The sparse orthogonal Q. *)

let q_matrix t =
  let coo = Coo.create t.n t.n in
  Hashtbl.iter
    (fun _ (sq : phase2_square) ->
      for j = 0 to Mat.cols sq.t - 1 do
        Coo.add_column coo ~j:(sq.t_offset + j) ~row_idx:sq.contacts (Mat.col sq.t j)
      done;
      if sq.u_offset >= 0 then
        for j = 0 to Mat.cols sq.u - 1 do
          Coo.add_column coo ~j:(sq.u_offset + j) ~row_idx:sq.contacts (Mat.col sq.u j)
        done)
    t.squares;
  Csr.of_coo coo

(* ------------------------------------------------------------------ *)
(* Local responses: approximately apply G restricted to the 3x3
   neighborhood of a square, recursing through children (interactive parts
   from the pair formula, finest-level local blocks explicit). *)

let rec local_response t ~level ~ix ~iy (x : Mat.t) : int array * Mat.t =
  let d =
    match Rowbasis.find t.rb ~level ~ix ~iy with
    | Some d -> d
    | None -> invalid_arg "Lowrank.local_response: empty square"
  in
  if level = t.max_level then (d.Rowbasis.l_region, Mat.mul (Option.get d.Rowbasis.g_local) x)
  else begin
    let region = Quadtree.region_contacts t.tree ~level (Quadtree.local_squares ~level ~ix ~iy) in
    let out = Mat.create (Array.length region) (Mat.cols x) in
    let add_block sub block =
      let pos = Regions.positions ~within:region sub in
      for r = 0 to Mat.rows block - 1 do
        for j = 0 to Mat.cols block - 1 do
          Mat.update out pos.(r) j (fun v -> v +. Mat.get block r j)
        done
      done
    in
    List.iter
      (fun (cx, cy) ->
        match Rowbasis.find t.rb ~level:(level + 1) ~ix:cx ~iy:cy with
        | None -> ()
        | Some cd ->
          let x_c = Regions.restrict_rows ~within:d.Rowbasis.contacts ~sub:cd.Rowbasis.contacts x in
          let reg_c, resp_c = local_response t ~level:(level + 1) ~ix:cx ~iy:cy x_c in
          add_block reg_c resp_c;
          List.iter
            (fun (jx, jy) ->
              match Rowbasis.find t.rb ~level:(level + 1) ~ix:jx ~iy:jy with
              | None -> ()
              | Some dd ->
                let block =
                  Mat.of_cols
                    (List.init (Mat.cols x_c) (fun j ->
                         Rowbasis.interaction_block t.rb ~src:cd ~dst:dd (Mat.col x_c j)))
                in
                add_block dd.Rowbasis.contacts block)
            (Quadtree.interactive_squares ~level:(level + 1) ~ix:cx ~iy:cy))
      (Quadtree.children_coords ~ix ~iy);
    (region, out)
  end

(* Squares at level la >= lb whose level-lb ancestor is local to (ix, iy). *)
let kept_targets t ~level ~ix ~iy ~level' =
  let shiftn = level' - level in
  List.concat_map
    (fun (jx, jy) ->
      let acc = ref [] in
      for cy = jy lsl shiftn to ((jy + 1) lsl shiftn) - 1 do
        for cx = jx lsl shiftn to ((jx + 1) lsl shiftn) - 1 do
          match find t ~level:level' ~ix:cx ~iy:cy with Some sq -> acc := sq :: !acc | None -> ()
        done
      done;
      !acc)
    (Quadtree.local_squares ~level ~ix ~iy)

(* ------------------------------------------------------------------ *)
(* Fill G_w and assemble the representation. *)

let representation t =
  Trace.with_span "lowrank.fill_gw" @@ fun () ->
  let entries : (int * int, float) Hashtbl.t = Hashtbl.create (t.n * 8) in
  let set i j v =
    (* Exact-zero drop: keep structurally absent entries out of G_w. *)
    if not (Float.equal v 0.0) then begin
      Hashtbl.replace entries (i, j) v;
      Hashtbl.replace entries (j, i) v
    end
  in
  (* T-T interactions between mutually local squares (cross-level rule as in
     the wavelet method). *)
  for level = 2 to t.max_level do
    List.iter
      (fun (ix, iy) ->
        let b = Hashtbl.find t.squares (level, ix, iy) in
        if Mat.cols b.t > 0 then begin
          let region, resp = local_response t ~level ~ix ~iy b.t in
          for level' = level to t.max_level do
            List.iter
              (fun (a : phase2_square) ->
                if Mat.cols a.t > 0 then begin
                  let resp_a = Regions.restrict_rows ~within:region ~sub:a.contacts resp in
                  let block = Mat.mul (Mat.transpose a.t) resp_a in
                  for i = 0 to Mat.rows block - 1 do
                    for j = 0 to Mat.cols block - 1 do
                      set (a.t_offset + i) (b.t_offset + j) (Mat.get block i j)
                    done
                  done
                end)
              (kept_targets t ~level ~ix ~iy ~level')
          done
        end)
      t.level_order.(level)
  done;
  (* Level-2 U interactions with everything, through the full phase-1
     operator. *)
  let apply_rb = Subcouple_op.apply (Rowbasis.op t.rb) in
  List.iter
    (fun (ix, iy) ->
      let s = Hashtbl.find t.squares (2, ix, iy) in
      for j = 0 to Mat.cols s.u - 1 do
        let y = apply_rb (Regions.scatter ~n:t.n s.contacts (Mat.col s.u j)) in
        let col = s.u_offset + j in
        Hashtbl.iter
          (fun _ (a : phase2_square) ->
            let y_a = Regions.gather a.contacts y in
            let coeffs_t = Mat.gemv_t a.t y_a in
            Array.iteri (fun i v -> set (a.t_offset + i) col v) coeffs_t;
            if a.u_offset >= 0 then begin
              let coeffs_u = Mat.gemv_t a.u y_a in
              Array.iteri (fun i v -> set (a.u_offset + i) col v) coeffs_u
            end)
          t.squares
      done)
    t.level_order.(2);
  let coo = Coo.create t.n t.n in
  Hashtbl.iter (fun (i, j) v -> Coo.add coo i j v) entries;
  Repr.make ~q:(q_matrix t) ~gw:(Csr.of_coo coo) ~solves:(Rowbasis.solves t.rb)

(* ------------------------------------------------------------------ *)
(* Whole pipeline: phase 1 + phase 2 from a layout and a black box. *)

let extract ?max_level ?sigma_rel_tol ?max_rank ?seed ?symmetric_refinement ?samples_per_square ?jobs
    ?checkpoint layout blackbox =
  let max_level =
    match max_level with
    | Some l -> l
    | None -> max 2 (Quadtree.suggest_max_level ~target:8 layout)
  in
  let tree = Quadtree.create ~max_level layout in
  (* All black-box solves happen in phase 1, so the checkpoint lives
     there; phase 2 is deterministic post-processing. *)
  let rb =
    Rowbasis.build ?sigma_rel_tol ?max_rank ?seed ?symmetric_refinement ?samples_per_square ?jobs
      ?checkpoint tree layout blackbox
  in
  let t = build ?sigma_rel_tol ?max_rank rb in
  representation t
