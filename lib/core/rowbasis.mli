(** Phase 1 of the low-rank method (thesis §4.3): the multilevel row-basis
    representation of G, built with O(log n) black-box solves, and its
    O(n log n) application. *)

type square_data = {
  coords : int * int;
  level : int;
  contacts : int array;
  v : La.Mat.t;  (** row basis V_s, orthonormal columns *)
  gpv : La.Mat.t;  (** responses G(P_s, s) V_s over [p_region] *)
  p_region : int array;  (** contacts of the interactive + local region *)
  w : La.Mat.t option;  (** finest level: orthonormal complement of V_s *)
  g_local : La.Mat.t option;  (** finest level: G(L_s, s) over [l_region] *)
  l_region : int array;
}

type t

(** [build tree layout blackbox] runs the coarse-to-fine sweep of §4.3.4.
    [sigma_rel_tol] and [max_rank] set the singular-value keep rule
    (defaults 1/100 and 6, the thesis's §4.6 settings). [seed] fixes the
    random sample vectors. [symmetric_refinement:false] disables the
    (4.16)/(4.24) refinements — the "stronger assumption" ablation of
    §4.3.1. [samples_per_square] uses more than one random sample vector
    per square (the thesis's own mitigation for layouts whose interactive
    regions hold few contacts, §4.3.3). [jobs] (default 1) batches each
    stage's independent black-box solves through
    {!Substrate.Blackbox.apply_batch}; random draws stay sequential, so the
    representation is bit-identical for any [jobs]. [checkpoint] persists
    each completed solve stage and replays finished stages on resume (see
    {!Substrate.Checkpoint}). The quadtree must have [max_level >= 2]. *)
val build :
  ?sigma_rel_tol:float ->
  ?max_rank:int ->
  ?seed:int ->
  ?symmetric_refinement:bool ->
  ?samples_per_square:int ->
  ?jobs:int ->
  ?checkpoint:Substrate.Checkpoint.t ->
  Geometry.Quadtree.t ->
  Geometry.Layout.t ->
  Substrate.Blackbox.t ->
  t

val find : t -> level:int -> ix:int -> iy:int -> square_data option
val tree : t -> Geometry.Quadtree.t

(** Black-box solves consumed while building. *)
val solves : t -> int

(** Floats stored by the representation (V_s, G(P_s, s) V_s, finest-level
    complements and local blocks) — the Table 4.2 storage currency. *)
val storage_floats : t -> int

(** The phase-1 representation as a first-class operator: O(n log n)
    application of the §4.3.2 pseudocode. *)
val op : t -> Subcouple_op.t

(** The approximate interaction block G(dst, src) applied to a vector in
    src coordinates (pair formula (4.16)); used by phase 2. *)
val interaction_block : t -> src:square_data -> dst:square_data -> La.Vec.t -> La.Vec.t
