(** IES3-style pairwise truncated-SVD baseline (thesis §4.5): per
    interactive-pair low-rank blocks built from *entry access* to the dense
    G — the capability a black-box substrate solver does not provide. Used
    to measure the storage cost of per-pair importance vectors against the
    thesis's shared, multipole-like row bases. *)

type t

(** [build tree g] compresses every interactive-pair block of the dense [g]
    with a truncated SVD (keep rule sigma >= sigma_1 / 100, at most
    [max_rank]); finest-level local blocks stay dense. *)
val build : ?sigma_rel_tol:float -> ?max_rank:int -> Geometry.Quadtree.t -> La.Mat.t -> t

(** The compressed baseline as a first-class operator (application sums
    the per-pair low-rank and finest-level dense block contributions). *)
val op : t -> Subcouple_op.t

(** Floats stored by the representation. *)
val storage_floats : t -> int

val block_count : t -> int
val to_dense : t -> La.Mat.t
