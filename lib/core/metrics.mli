(** Accuracy and efficiency metrics as the thesis reports them. *)

type error_stats = {
  max_rel_error : float;
  frac_above_10pct : float;
  mean_rel_error : float;
  entries : int;  (** finite-relative-error entries measured *)
}

(** Entrywise relative error over full dense matrices. *)
val error_dense : exact:La.Mat.t -> approx:La.Mat.t -> error_stats

(** Entrywise relative error over matching column samples. *)
val error_sampled : exact_columns:La.Vec.t array -> approx_columns:La.Vec.t array -> error_stats

(** Evenly spaced sample of column indices. *)
val sample_indices : n:int -> count:int -> int array

(** n / solves — how many times fewer black-box calls than naive
    extraction. *)
val solve_reduction : n:int -> solves:int -> float

val pp_error : Format.formatter -> error_stats -> unit

(** A-posteriori stochastic error estimate: relative 2-norm residual of an
    approximate operator against the exact one on random Gaussian probes
    (thesis §5.2's error-analysis direction). [extra_solves] is how many
    solves the probes cost on the exact side (0 when it is not a live
    solver). *)
type probe_estimate = {
  mean_rel_residual : float;
  max_rel_residual : float;
  probes : int;
  extra_solves : int;
}

val estimate_apply_error :
  ?probes:int ->
  ?seed:int ->
  exact:Subcouple_op.t ->
  approx:Subcouple_op.t ->
  unit ->
  probe_estimate
