(* Method dispatch for sharded extraction: the closure Substrate.Shard.run
   drives, instantiated with the real extractors.

   Each shard extracts the principal submatrix G(C_s, C_s): the chosen
   method (wavelet or low-rank) runs unchanged on the shard's sub-layout —
   contacts at their original surface positions, so quadtree structure and
   separations are preserved — against the global solver restricted to the
   shard's coordinates. Composing the shards block-diagonally
   (Subcouple_op.of_manifest) drops the cross-shard coupling blocks; the
   spatial decay the whole method rests on is what makes those blocks the
   cheap part to lose, and the shard level is the knob trading accuracy
   for fault-domain granularity.

   Every shard gets its own Resilient wrapper so failures exhaust a ladder
   before the shard is quarantined, numbered from the shard's run-global
   [first_index] so index-addressed fault injection (Chaos) is stable
   across sharded, unsharded and resumed runs. *)

module Shard = Substrate.Shard
module Resilient = Substrate.Resilient
module Layout = Geometry.Layout

type method_ = [ `Lowrank | `Wavelet ]

let method_name = function `Lowrank -> "lowrank" | `Wavelet -> "wavelet"

let extract_one ~method_ ~jobs ~policy ~fallbacks ~source ~layout ~box ~shard ~first_index
    ~checkpoint =
  let contacts = shard.Shard.contacts in
  let where =
    Printf.sprintf "shard %d: level %d (%d,%d), %d contacts" shard.Shard.shard_id
      shard.Shard.level shard.Shard.ix shard.Shard.iy (Array.length contacts)
  in
  let sub_layout =
    Layout.restrict layout ~ids:contacts
      ~name:(Printf.sprintf "%s [%s]" layout.Layout.name where)
  in
  let restricted = Shard.restricted_box ~contacts box in
  let fallbacks =
    List.map
      (fun (name, lb) -> (name, lazy (Shard.restricted_box ~contacts (Lazy.force lb))))
      fallbacks
  in
  let bb = Resilient.blackbox (Resilient.create ~policy ~fallbacks ~first_index restricted) in
  let repr =
    match method_ with
    | `Wavelet -> Wavelet.extract ~jobs ~checkpoint (Wavelet.create ~p:2 sub_layout) bb
    | `Lowrank -> Lowrank.extract ~jobs ~checkpoint sub_layout bb
  in
  Repr.to_artifact ~kind:(method_name method_) ~source:(Printf.sprintf "%s; %s" source where) repr

let extract ?(jobs = 1) ?(policy = Resilient.default_policy) ?(fallbacks = [])
    ?(source = "sharded extraction") ~method_ ~shard_level ~dir layout box =
  let plan = Shard.plan ~shard_level layout in
  Shard.run ~source ~dir
    ~extract:(fun ~shard ~first_index ~checkpoint ->
      extract_one ~method_ ~jobs ~policy ~fallbacks ~source ~layout ~box ~shard ~first_index
        ~checkpoint)
    plan
