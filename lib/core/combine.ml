(* Combine-solves (thesis §3.5): several basis vectors, supported in
   same-level squares spaced at least three squares apart, are summed into a
   single voltage vector; one black-box application then yields the current
   response of every constituent in its own neighborhood, because the
   neighborhoods of distinct constituents do not overlap (Fig 3-5).

   This is the mechanism that takes the number of solves from n to
   O(log n). *)


(* Partition same-level square coordinates into the 9 groups
   (ix mod 3, iy mod 3). Squares within a group are >= 3 apart in both
   coordinates, so their 3x3 neighborhoods are disjoint. *)
let groups_of_squares coords =
  let groups = Array.make 9 [] in
  List.iter (fun (ix, iy) -> groups.((3 * (iy mod 3)) + (ix mod 3)) <- (ix, iy) :: groups.((3 * (iy mod 3)) + (ix mod 3))) coords;
  Array.map List.rev groups

(* Partition child-square coordinates into the 36 groups
   (parent ix mod 3, parent iy mod 3, child position within parent): within
   a group, every constituent has a distinct parent and those parents are
   >= 3 apart, so per-parent neighborhood responses stay separable even when
   the summed vectors live in the parents (the splitting method of §4.3.3
   applies G to remainders supported in whole parent squares). *)
let groups_of_children coords =
  let groups = Array.make 36 [] in
  List.iter
    (fun (ix, iy) ->
      let px = ix / 2 and py = iy / 2 in
      let child = (2 * (iy land 1)) + (ix land 1) in
      let key = (9 * child) + (3 * (py mod 3)) + (px mod 3) in
      groups.(key) <- (ix, iy) :: groups.(key))
    coords;
  Array.map List.rev groups

(* Sanity predicate used in tests: all pairs in a group are separated by at
   least [gap] squares in x or y. *)
let well_separated ~gap coords =
  let rec check = function
    | [] -> true
    | (x, y) :: rest ->
      List.for_all (fun (x', y') -> abs (x - x') >= gap || abs (y - y') >= gap) rest && check rest
  in
  check coords

(* Sum the (global, zero-extended) vectors of one combined solve; [None]
   for empty input. Split out from [solve_sum] so extraction loops can
   first collect the summed right-hand sides of many groups and then solve
   them as one (possibly parallel) batch. *)
let sum_vectors (vectors : La.Vec.t list) : La.Vec.t option =
  match vectors with
  | [] -> None
  | v :: rest ->
    let sum = La.Vec.copy v in
    List.iter (fun w -> La.Vec.add_inplace sum w) rest;
    Some sum

(* Run one combined solve: sum the given vectors and apply the black box
   once. Empty input performs no solve. *)
let solve_sum blackbox (vectors : La.Vec.t list) : La.Vec.t option =
  Option.map (Substrate.Blackbox.apply blackbox) (sum_vectors vectors)
