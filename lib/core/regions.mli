(** Index bookkeeping between sorted contact-id regions. *)

(** Positions of each element of the second array within the first; both
    sorted ascending, subset required. *)
val positions : within:int array -> int array -> int array

val gather : int array -> La.Vec.t -> La.Vec.t
val scatter : n:int -> int array -> La.Vec.t -> La.Vec.t
val scatter_add : int array -> La.Vec.t -> La.Vec.t -> unit

(** Restrict matrix rows indexed by [within] to the subset [sub]. *)
val restrict_rows : within:int array -> sub:int array -> La.Mat.t -> La.Mat.t

(** Embed a vector over [sub] into the coordinates of [within]. *)
val embed : within:int array -> sub:int array -> La.Vec.t -> La.Vec.t
