(* The sparsified conductance representation G ~ Q G_w Q'
   (thesis eq. (3.1)): an orthogonal sparse change of basis Q and a sparse
   transformed matrix G_w. Applying the representation costs three sparse
   matrix-vector products. *)

module Csr = Sparsemat.Csr

type t = {
  n : int;
  q : Csr.t;  (* n x n, orthonormal columns *)
  gw : Csr.t;  (* n x n, symmetric *)
  solves : int;  (* black-box solves spent building the representation *)
}

let make ~q ~gw ~solves =
  if Csr.rows q <> Csr.cols q || Csr.rows gw <> Csr.cols gw || Csr.rows q <> Csr.rows gw then
    invalid_arg "Repr.make: Q and G_w must be square of equal size";
  { n = Csr.rows q; q; gw; solves }

(* G v ~ Q (G_w (Q' v)). *)
let apply t (v : La.Vec.t) : La.Vec.t = Csr.gemv t.q (Csr.gemv t.gw (Csr.gemv_t t.q v))

(* Fused batched application: each of the three CSR products runs fused
   across the whole block ([Csr.apply_batch]), so each factor is swept
   once per block instead of once per column. [jobs > 1] splits the block
   into at most [jobs] contiguous chunks mapped on the Domain pool.
   Neither fusion nor chunking reorders any per-column arithmetic, so
   every response is bit-identical to [apply] — for every [jobs]. *)
let apply_batch t ~jobs (vs : La.Vec.t array) : La.Vec.t array =
  let fused (chunk : La.Vec.t array) =
    Csr.apply_batch t.q (Csr.apply_batch t.gw (Csr.apply_batch_t t.q chunk))
  in
  let m = Array.length vs in
  if jobs <= 1 || m <= 1 then fused vs
  else begin
    let chunks = min jobs m in
    let parts =
      Array.init chunks (fun c ->
          let lo = c * m / chunks and hi = (c + 1) * m / chunks in
          Array.sub vs lo (hi - lo))
    in
    Array.concat (Array.to_list (Parallel.Pool.map_array ~jobs fused parts))
  end

(* Densify Q G_w Q' column by column (for error measurement). *)
let to_dense t =
  let g = La.Mat.create t.n t.n in
  let e = Array.make t.n 0.0 in
  for j = 0 to t.n - 1 do
    e.(j) <- 1.0;
    La.Mat.set_col g j (apply t e);
    e.(j) <- 0.0
  done;
  g

(* Thresholding (thesis §3.7): drop small entries of G_w so its nonzero
   count falls by roughly [target]; the threshold is found by binary
   search. *)
let threshold t ~target =
  let cut = Csr.threshold_for_sparsity t.gw ~target in
  { t with gw = Csr.drop_below t.gw cut }

let sparsity_gw t = Csr.sparsity_factor t.gw
let sparsity_q t = Csr.sparsity_factor t.q
let nnz_gw t = Csr.nnz t.gw
let storage_floats t = Csr.nnz t.q + Csr.nnz t.gw

(* The representation as an operator. Batches go through the fused
   three-sweep [apply_batch] (pool-chunked for [jobs > 1]); [solves_spent]
   reports the (fixed) build cost — the extract-once/apply-many split in
   one number. *)
let op t =
  Subcouple_op.make
    ~batch:(fun ~jobs vs -> apply_batch t ~jobs vs)
    ~pure:true ~storage_floats:(storage_floats t)
    ~solves_spent:(fun () -> t.solves)
    ~describe:
      {
        Subcouple_op.kind = "repr";
        source = Printf.sprintf "sparsified representation Q G_w Q' (n = %d)" t.n;
        symmetric = true;
      }
    ~n:t.n (apply t)

module _ : Subcouple_op.S with type repr = t = struct
  type repr = t

  let op = op
end

(* --- persistence ------------------------------------------------------- *)

module Artifact = Subcouple_op.Artifact

let to_artifact ?(kind = "repr") ?(source = "") t =
  { Artifact.n = t.n; solves = t.solves; kind; source; q = t.q; gw = t.gw }

let of_artifact (a : Artifact.payload) = make ~q:a.Artifact.q ~gw:a.Artifact.gw ~solves:a.Artifact.solves
let save ?kind ?source t ~path = Artifact.save ~path (to_artifact ?kind ?source t)
let load ~path = of_artifact (Artifact.load ~path)

(* Q' Q should be the identity; returns the largest deviation (testing). *)
let orthogonality_defect t =
  let qt = Csr.transpose t.q in
  let worst = ref 0.0 in
  let e = Array.make t.n 0.0 in
  for j = 0 to t.n - 1 do
    e.(j) <- 1.0;
    let col = Csr.gemv qt (Csr.gemv t.q e) in
    e.(j) <- 0.0;
    Array.iteri
      (fun i x ->
        let expected = if i = j then 1.0 else 0.0 in
        worst := Float.max !worst (Float.abs (x -. expected)))
      col
  done;
  !worst
