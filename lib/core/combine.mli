(** Combine-solves machinery (thesis §3.5): grouping of square-supported
    vectors so that one black-box application serves many squares. *)

(** Partition same-level square coordinates into 9 groups by
    (ix mod 3, iy mod 3); within a group, squares are >= 3 apart. *)
val groups_of_squares : (int * int) list -> (int * int) list array

(** Partition child-square coordinates into 36 groups by parent phase mod 3
    and child position, so each group has distinct, >= 3-apart parents
    (for the splitting method of §4.3.3 whose summed vectors live in parent
    squares). *)
val groups_of_children : (int * int) list -> (int * int) list array

(** All pairs separated by at least [gap] in x or y. *)
val well_separated : gap:int -> (int * int) list -> bool

(** Sum the vectors of one combined solve; [None] for empty input. Used by
    extraction loops that collect the right-hand sides of many groups and
    solve them as one (possibly parallel) batch. *)
val sum_vectors : La.Vec.t list -> La.Vec.t option

(** Sum the vectors and apply the black box once; [None] for empty input. *)
val solve_sum : Substrate.Blackbox.t -> La.Vec.t list -> La.Vec.t option
