(* Index bookkeeping between contact regions.

   The sparsification algorithms constantly move vectors between coordinate
   systems: a square's own contacts, its local / interactive regions, and the
   global contact numbering. Regions are always sorted ascending arrays of
   global contact ids; this module maps between them. *)

(* Positions of each element of [sub] within the sorted array [within].
   Both must be sorted ascending and [sub] must be a subset. *)
let positions ~within sub =
  let n = Array.length within in
  let out = Array.make (Array.length sub) 0 in
  let i = ref 0 in
  Array.iteri
    (fun k x ->
      while !i < n && within.(!i) < x do
        incr i
      done;
      if !i >= n || within.(!i) <> x then
        invalid_arg (Printf.sprintf "Regions.positions: id %d not present in region" x);
      out.(k) <- !i)
    sub;
  out

(* Gather entries of a global vector at the region's contacts. *)
let gather region (v : La.Vec.t) : La.Vec.t = Array.map (fun id -> v.(id)) region

(* Scatter a region vector into a global vector of dimension [n]
   (zeros elsewhere). *)
let scatter ~n region (x : La.Vec.t) : La.Vec.t =
  let out = Array.make n 0.0 in
  Array.iteri (fun k id -> out.(id) <- x.(k)) region;
  out

(* Add a region vector into an existing global accumulator. *)
let scatter_add region (x : La.Vec.t) (acc : La.Vec.t) =
  Array.iteri (fun k id -> acc.(id) <- acc.(id) +. x.(k)) region

(* Restrict the rows of a matrix (rows indexed by [within]) to the subset
   [sub]. *)
let restrict_rows ~within ~sub m = La.Mat.select_rows m (positions ~within sub)

(* Embed a vector over [sub] into a vector over [within]. *)
let embed ~within ~sub (x : La.Vec.t) : La.Vec.t =
  let out = Array.make (Array.length within) 0.0 in
  let pos = positions ~within sub in
  Array.iteri (fun k p -> out.(p) <- x.(k)) pos;
  out
