module Quadtree = Geometry.Quadtree
module Layout = Geometry.Layout
module Moments = Geometry.Moments
module Blackbox = Substrate.Blackbox
module Mat = La.Mat
module Vec = La.Vec
module Csr = Sparsemat.Csr
module Coo = Sparsemat.Coo

(* Wavelet sparsification of the substrate conductance matrix (thesis
   Chapter 3).

   The change of basis Q is built from geometry alone. On the finest level,
   each square's voltage space splits into vectors whose contact-area
   moments up to order p vanish (W_s — fast-decaying current response) and
   an orthonormal complement (V_s); coarser levels recombine the children's
   V bases under the same moment criterion (eqs. (3.14)-(3.16), implemented
   with rank-revealing QR of the transposed moment matrices, which yields
   the same orthonormal split the thesis obtains from an SVD). The root's
   non-vanishing V vectors complete the basis (eq. (3.10)).

   The transformed matrix G_ws = Q' G Q is extracted with the
   combine-solves technique of §3.5: only interactions between basis
   vectors in non-well-separated squares are assumed nonzero (for vectors
   on levels l <= l', the level-l ancestor of the finer square must be the
   same as or a neighbor of the coarser square), and same-level vectors in
   squares >= 3 apart share one black-box solve. *)

type square_basis = {
  coords : int * int;
  level : int;
  contacts : int array;  (* global contact ids, ascending *)
  v : Mat.t;  (* slow-decaying basis, n_s x v_s *)
  w : Mat.t;  (* vanishing-moments basis, n_s x w_s *)
  mv : Mat.t;  (* moments of the V columns about the square center *)
  mutable w_offset : int;  (* first Q column of this square's W vectors *)
  (* Factored form (thesis §3.4.3): coarser squares store only the small
     recombination (T | R) of their children's V columns, in [children]
     order; finest squares apply [v w] directly. *)
  trans : Mat.t option;  (* (T | R), sum-of-children-v x (v_s + w_s) *)
  children : (int * int) list;  (* nonempty children contributing V columns *)
}

type t = {
  tree : Quadtree.t;
  layout : Layout.t;
  p : int;  (* moment order *)
  bases : (int * int * int, square_basis) Hashtbl.t;
  level_squares : (int * int) list array;  (* nonempty squares per level, Morton order *)
  root : square_basis;
  n : int;
}

let find t ~level ~ix ~iy = Hashtbl.find_opt t.bases (level, ix, iy)
let tree t = t.tree
let n_contacts t = t.n
let moment_order t = t.p

(* Morton (quadrant-hierarchical) index for the within-level ordering of the
   basis columns (thesis §3.7.1). *)
let morton ~ix ~iy =
  let rec weave acc bit x y =
    if x = 0 && y = 0 then acc
    else
      weave
        (acc lor ((x land 1) lsl (2 * bit)) lor ((y land 1) lsl ((2 * bit) + 1)))
        (bit + 1) (x lsr 1) (y lsr 1)
  in
  weave 0 0 ix iy

let create ?(p = 2) ?max_level layout =
  let max_level =
    match max_level with Some l -> l | None -> Quadtree.suggest_max_level ~target:16 layout
  in
  let tree = Quadtree.create ~max_level layout in
  let contacts_arr = layout.Layout.contacts in
  let bases : (int * int * int, square_basis) Hashtbl.t = Hashtbl.create 256 in
  let level_squares = Array.make (max_level + 1) [] in
  (* Finest level: split each square's space by its moment matrix
     (eq. (3.14)): V spans the row space of M_s, W its null space. *)
  let finest = max_level in
  Array.iter
    (fun (sq : Quadtree.square) ->
      if Array.length sq.Quadtree.contacts > 0 then begin
        let ix = sq.Quadtree.ix and iy = sq.Quadtree.iy in
        let contacts = sq.Quadtree.contacts in
        let center = Quadtree.square_center tree ~level:finest ~ix ~iy in
        let m = Moments.matrix ~p ~center (Array.map (fun id -> contacts_arr.(id)) contacts) in
        let v, w = La.Qr.range_split (Mat.transpose m) in
        Hashtbl.replace bases (finest, ix, iy)
          { coords = (ix, iy); level = finest; contacts; v; w; mv = Mat.mul m v; w_offset = -1;
            trans = None; children = [] };
        level_squares.(finest) <- (ix, iy) :: level_squares.(finest)
      end)
    (Quadtree.squares_at_level tree finest);
  (* Coarser levels: recombine the children's V bases (eq. (3.16)), reusing
     the children's stored moments shifted to the parent center (§3.4.2). *)
  for level = finest - 1 downto 0 do
    Array.iter
      (fun (sq : Quadtree.square) ->
        if Array.length sq.Quadtree.contacts > 0 then begin
          let ix = sq.Quadtree.ix and iy = sq.Quadtree.iy in
          let contacts = sq.Quadtree.contacts in
          let center = Quadtree.square_center tree ~level ~ix ~iy in
          let children =
            List.filter_map
              (fun (cx, cy) -> Hashtbl.find_opt bases (level + 1, cx, cy))
              (Quadtree.children_coords ~ix ~iy)
          in
          let embedded = ref [] and shifted = ref [] in
          List.iter
            (fun (child : square_basis) ->
              if Mat.cols child.v > 0 then begin
                let cx, cy = child.coords in
                let ccenter = Quadtree.square_center tree ~level:(level + 1) ~ix:cx ~iy:cy in
                let shift =
                  Moments.shift_matrix ~p ~dx:(fst ccenter -. fst center) ~dy:(snd ccenter -. snd center)
                in
                for j = 0 to Mat.cols child.v - 1 do
                  embedded :=
                    Regions.embed ~within:contacts ~sub:child.contacts (Mat.col child.v j) :: !embedded
                done;
                shifted := Mat.mul shift child.mv :: !shifted
              end)
            children;
          let x = Mat.of_cols (List.rev !embedded) in
          let a = Mat.hcat_list (List.rev !shifted) in
          let tmat, rmat = La.Qr.range_split (Mat.transpose a) in
          let contributing =
            List.filter_map
              (fun (child : square_basis) -> if Mat.cols child.v > 0 then Some child.coords else None)
              children
          in
          Hashtbl.replace bases (level, ix, iy)
            {
              coords = (ix, iy);
              level;
              contacts;
              v = Mat.mul x tmat;
              w = Mat.mul x rmat;
              mv = Mat.mul a tmat;
              w_offset = -1;
              trans = Some (Mat.hcat tmat rmat);
              children = contributing;
            };
          level_squares.(level) <- (ix, iy) :: level_squares.(level)
        end)
      (Quadtree.squares_at_level tree level)
  done;
  (* Order squares within each level quadrant-hierarchically and assign Q
     column offsets: root V first, then W level by level. *)
  Array.iteri
    (fun l sqs ->
      level_squares.(l) <-
        List.sort (fun (ax, ay) (bx, by) -> compare (morton ~ix:ax ~iy:ay) (morton ~ix:bx ~iy:by)) sqs)
    level_squares;
  let root =
    match Hashtbl.find_opt bases (0, 0, 0) with
    | Some r -> r
    | None -> invalid_arg "Wavelet.create: empty layout"
  in
  let next = ref (Mat.cols root.v) in
  Array.iteri
    (fun level sqs ->
      List.iter
        (fun (ix, iy) ->
          let b = Hashtbl.find bases (level, ix, iy) in
          b.w_offset <- !next;
          next := !next + Mat.cols b.w)
        sqs)
    level_squares;
  let n = Layout.n_contacts layout in
  if !next <> n then
    invalid_arg (Printf.sprintf "Wavelet.create: basis has %d columns for %d contacts" !next n);
  { tree; layout; p; bases; level_squares; root; n }

(* The sparse orthogonal change-of-basis matrix. *)
let q_matrix t =
  let coo = Coo.create t.n t.n in
  for j = 0 to Mat.cols t.root.v - 1 do
    Coo.add_column coo ~j ~row_idx:t.root.contacts (Mat.col t.root.v j)
  done;
  Hashtbl.iter
    (fun _ (b : square_basis) ->
      for j = 0 to Mat.cols b.w - 1 do
        Coo.add_column coo ~j:(b.w_offset + j) ~row_idx:b.contacts (Mat.col b.w j)
      done)
    t.bases;
  Csr.of_coo coo

(* Squares at level l' >= l whose level-l ancestor is [s] itself or one of
   its neighbors: the pairs whose interactions are kept (§3.5). *)
let kept_targets t ~level ~ix ~iy ~level' =
  let shiftn = level' - level in
  List.concat_map
    (fun (jx, jy) ->
      let acc = ref [] in
      for cy = jy lsl shiftn to ((jy + 1) lsl shiftn) - 1 do
        for cx = jx lsl shiftn to ((jx + 1) lsl shiftn) - 1 do
          match find t ~level:level' ~ix:cx ~iy:cy with
          | Some b when Mat.cols b.w > 0 -> acc := b :: !acc
          | _ -> ()
        done
      done;
      !acc)
    (Quadtree.local_squares ~level ~ix ~iy)

(* Extract G_ws = Q' G Q restricted to the kept interaction pattern, using
   combine-solves (§3.5). [combine] can be disabled to measure the solve
   reduction it buys. [jobs] batches the independent solves of each stage
   through [Blackbox.apply_batch]; right-hand sides are assembled
   sequentially and projections run sequentially in the same order as the
   one-solve-at-a-time loop, so the result is bit-identical for any
   [jobs].

   [checkpoint] persists each completed solve stage (the root batch, then
   one batch per level): the stage order is deterministic, so a resumed
   extraction replays finished stages from the file and repeats no
   completed solve. *)
let extract ?(combine = true) ?(jobs = 1) ?checkpoint t blackbox =
  let blackbox =
    match checkpoint with
    | Some ck -> Substrate.Checkpoint.wrap ck blackbox
    | None -> blackbox
  in
  let entries : (int * int, float) Hashtbl.t = Hashtbl.create (t.n * 8) in
  let set i j v =
    Hashtbl.replace entries (i, j) v;
    Hashtbl.replace entries (j, i) v
  in
  (* Project a global response vector onto all of a square's W columns. *)
  let project_w (b : square_basis) (y : Vec.t) ~col =
    let y_local = Regions.gather b.contacts y in
    let coeffs = Mat.gemv_t b.w y_local in
    Array.iteri (fun m' c -> set (b.w_offset + m') col c) coeffs
  in
  (* Step 1: responses to the root's V columns give every entry involving a
     non-vanishing basis vector (eqs. (3.21)-(3.23)). *)
  Trace.with_span "wavelet.root_projection" (fun () ->
      let root_cols = Mat.cols t.root.v in
      let root_ys =
        Blackbox.apply_batch ~jobs blackbox
          (Array.init root_cols (fun j ->
               Regions.scatter ~n:t.n t.root.contacts (Mat.col t.root.v j)))
      in
      Array.iteri
        (fun j y ->
          for j' = 0 to root_cols - 1 do
            let v = Vec.dot (Regions.gather t.root.contacts y) (Mat.col t.root.v j') in
            set j' j v
          done;
          Hashtbl.iter (fun _ b -> if Mat.cols b.w > 0 then project_w b y ~col:j) t.bases)
        root_ys);
  (* Step 2: per level, combine same-level W vectors from squares >= 3
     apart into shared solves and extract their kept interactions. *)
  let max_level = Quadtree.max_level t.tree in
  for level = 0 to max_level do
    let squares =
      List.filter_map
        (fun (ix, iy) ->
          match find t ~level ~ix ~iy with
          | Some b when Mat.cols b.w > 0 -> Some b
          | _ -> None)
        t.level_squares.(level)
    in
    if squares <> [] then Trace.with_span "wavelet.level_combine" (fun () ->
      let max_m = List.fold_left (fun acc b -> max acc (Mat.cols b.w)) 0 squares in
      let groups =
        if combine then
          Combine.groups_of_squares (List.map (fun b -> b.coords) squares)
          |> Array.to_list
          |> List.filter (fun g -> g <> [])
        else List.map (fun b -> [ b.coords ]) squares
      in
      (* Every (column index, group) pair is an independent combined solve:
         collect their summed right-hand sides in loop order, solve as one
         batch, then project each response in the same order. *)
      let tasks = ref [] in
      for m = 0 to max_m - 1 do
        List.iter
          (fun group ->
            let members =
              List.filter_map
                (fun (ix, iy) ->
                  match find t ~level ~ix ~iy with
                  | Some b when Mat.cols b.w > m -> Some b
                  | _ -> None)
                group
            in
            let vectors =
              List.map (fun b -> Regions.scatter ~n:t.n b.contacts (Mat.col b.w m)) members
            in
            match Combine.sum_vectors vectors with
            | None -> ()
            | Some sum -> tasks := (m, members, sum) :: !tasks)
          groups
      done;
      let tasks = Array.of_list (List.rev !tasks) in
      let ys = Blackbox.apply_batch ~jobs blackbox (Array.map (fun (_, _, sum) -> sum) tasks) in
      Array.iteri
        (fun k (m, members, _) ->
          let y = ys.(k) in
          List.iter
            (fun (b : square_basis) ->
              let ix, iy = b.coords in
              let col = b.w_offset + m in
              for level' = level to max_level do
                List.iter (fun target -> project_w target y ~col) (kept_targets t ~level ~ix ~iy ~level')
              done)
            members)
        tasks)
  done;
  let coo = Coo.create t.n t.n in
  Hashtbl.iter (fun (i, j) v -> Coo.add coo i j v) entries;
  Repr.make ~q:(q_matrix t) ~gw:(Csr.of_coo coo) ~solves:(Blackbox.solve_count blackbox)

(* Exact change of basis Q' G Q from a known dense G (for validation and
   for the thesis's comparison against simply thresholding G itself). *)
let change_basis_dense t g =
  let qd = Csr.to_dense (q_matrix t) in
  Mat.mul (Mat.transpose qd) (Mat.mul g qd)

(* ------------------------------------------------------------------ *)
(* Factored application of Q (thesis §3.4.3): instead of the explicit
   O(n log n)-nonzero matrix, apply the per-square finest [V W] blocks and
   the coarser (T | R) recombinations level by level — O(n) stored floats
   and O(n) work. *)

(* Analysis: y = Q' x. Each square's V-coefficients flow upward; its
   W-coefficients land at the square's Q columns. *)
let apply_qt_factored t (x : Vec.t) : Vec.t =
  if Array.length x <> t.n then invalid_arg "Wavelet.apply_qt_factored: dimension mismatch";
  let out = Array.make t.n 0.0 in
  let vcoefs : (int * int * int, Vec.t) Hashtbl.t = Hashtbl.create 64 in
  let max_level = Quadtree.max_level t.tree in
  for level = max_level downto 0 do
    List.iter
      (fun (ix, iy) ->
        let b = Hashtbl.find t.bases (level, ix, iy) in
        let vc, wc =
          match b.trans with
          | None ->
            (* finest level: project onto the explicit [v w] *)
            let x_s = Regions.gather b.contacts x in
            (Mat.gemv_t b.v x_s, Mat.gemv_t b.w x_s)
          | Some tr ->
            let c =
              Array.concat
                (List.map (fun (cx, cy) -> Hashtbl.find vcoefs (level + 1, cx, cy)) b.children)
            in
            let both = Mat.gemv_t tr c in
            let nv = Mat.cols b.v in
            (Array.sub both 0 nv, Array.sub both nv (Array.length both - nv))
        in
        Hashtbl.replace vcoefs (level, ix, iy) vc;
        Array.iteri (fun m c -> out.(b.w_offset + m) <- c) wc)
      t.level_squares.(level)
  done;
  Array.iteri (fun j c -> out.(j) <- c) (Hashtbl.find vcoefs (0, 0, 0));
  out

(* Synthesis: x = Q z. V-coefficients flow downward from the root; each
   square adds its own W-coefficients from z. *)
let apply_q_factored t (z : Vec.t) : Vec.t =
  if Array.length z <> t.n then invalid_arg "Wavelet.apply_q_factored: dimension mismatch";
  let out = Array.make t.n 0.0 in
  let vcoefs : (int * int * int, Vec.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace vcoefs (0, 0, 0) (Array.sub z 0 (Mat.cols t.root.v));
  let max_level = Quadtree.max_level t.tree in
  for level = 0 to max_level do
    List.iter
      (fun (ix, iy) ->
        let b = Hashtbl.find t.bases (level, ix, iy) in
        let vc = Hashtbl.find vcoefs (level, ix, iy) in
        let wc = Array.init (Mat.cols b.w) (fun m -> z.(b.w_offset + m)) in
        match b.trans with
        | None ->
          let x_s = Vec.add (Mat.gemv b.v vc) (Mat.gemv b.w wc) in
          Regions.scatter_add b.contacts x_s out
        | Some tr ->
          let both = Array.append vc wc in
          let c = Mat.gemv tr both in
          let pos = ref 0 in
          List.iter
            (fun (cx, cy) ->
              let child = Hashtbl.find t.bases (level + 1, cx, cy) in
              let k = Mat.cols child.v in
              Hashtbl.replace vcoefs (level + 1, cx, cy) (Array.sub c !pos k);
              pos := !pos + k)
            b.children)
      t.level_squares.(level)
  done;
  out

let factored_storage_floats t =
  Hashtbl.fold
    (fun _ (b : square_basis) acc ->
      match b.trans with
      | None -> acc + (Mat.rows b.v * (Mat.cols b.v + Mat.cols b.w))
      | Some tr -> acc + (Mat.rows tr * Mat.cols tr))
    t.bases 0

(* The factored basis as operators: synthesis Q and analysis Q'. Each
   application allocates its own coefficient tables, and the basis itself
   is only read, so batches run on the Domain pool. Both operators report
   the storage of the shared factored form [Q = Q^(L) ... Q^(1)]. *)
let basis_op t ~kind ~direction app =
  Subcouple_op.make ~pure:true ~storage_floats:(factored_storage_floats t)
    ~describe:
      {
        Subcouple_op.kind;
        source = Printf.sprintf "factored wavelet basis, %s (p = %d)" direction t.p;
        symmetric = false;
      }
    ~n:t.n (app t)

let q_op t = basis_op t ~kind:"wavelet-q" ~direction:"synthesis x = Q z" apply_q_factored
let qt_op t = basis_op t ~kind:"wavelet-qt" ~direction:"analysis z = Q' x" apply_qt_factored
