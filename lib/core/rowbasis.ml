module Quadtree = Geometry.Quadtree
module Layout = Geometry.Layout
module Blackbox = Substrate.Blackbox
module Mat = La.Mat
module Vec = La.Vec

(* Phase 1 of the low-rank method (thesis §4.3): the multilevel row-basis
   representation.

   For every square s on levels 2..L, a small orthonormal "row basis" V_s
   (at most [max_rank] columns) approximately spans the row space of the
   interaction block G(I_s, s), together with the responses G(P_s, s) V_s
   on s's local-plus-interactive region P_s. The bases are found by random
   sampling (one random sample vector per square, shared between that
   square's interactive neighbors) and an SVD (eq. (4.19)); the responses
   on finer levels are obtained with the splitting method (eq. (4.22)),
   whose raw combine-solves output is refined through the symmetric
   identity (4.24). On the finest level the local interactions are stored
   explicitly via (4.26).

   The representation alone already supports an O(n log n) application of
   G (thesis §4.3.2, with the symmetry refinement (4.16)); phase 2
   (Lowrank) turns it into the wavelet-structured Q G_w Q' form. *)

type square_data = {
  coords : int * int;
  level : int;
  contacts : int array;  (* global contact ids, ascending *)
  v : Mat.t;  (* row basis, n_s x k_s *)
  gpv : Mat.t;  (* responses G(P_s, s) V_s, |P_s| x k_s *)
  p_region : int array;  (* contacts of I_s + L_s *)
  (* finest level only: *)
  w : Mat.t option;  (* orthogonal complement of V_s *)
  g_local : Mat.t option;  (* G(L_s, s) approximation, |L_s| x n_s *)
  l_region : int array;
}

type t = {
  tree : Quadtree.t;
  layout : Layout.t;
  n : int;
  max_level : int;
  data : (int * int * int, square_data) Hashtbl.t;
  symmetric_refinement : bool;
  solves : int;
}

let find t ~level ~ix ~iy = Hashtbl.find_opt t.data (level, ix, iy)
let tree t = t.tree
let solves t = t.solves

(* Keep rule for singular values (thesis §4.6): sigma >= sigma_1 / 100,
   capped at [max_rank] (= 6, matching the p = 2 moment count). *)
let keep_rule ~sigma_rel_tol ~max_rank (s : float array) =
  if Array.length s = 0 then 0
  else begin
    let s1 = s.(0) in
    let k = ref 0 in
    Array.iteri (fun i sigma -> if i < max_rank && sigma >= sigma_rel_tol *. s1 && sigma > 0.0 then incr k) s;
    !k
  end

let nonempty_squares tree level =
  Array.to_list (Quadtree.squares_at_level tree level)
  |> List.filter_map (fun (sq : Quadtree.square) ->
         if Array.length sq.Quadtree.contacts > 0 then Some (sq.Quadtree.ix, sq.Quadtree.iy) else None)

(* --------------------------------------------------------------------- *)
(* Context carried through the build. *)

type ctx = {
  c_tree : Quadtree.t;
  c_n : int;
  c_bb : Blackbox.t;
  c_data : (int * int * int, square_data) Hashtbl.t;
  c_refine : bool;
  c_sigma_rel_tol : float;
  c_max_rank : int;
  c_jobs : int;  (* parallelism for batched black-box solves *)
}

let get ctx ~level ~ix ~iy = Hashtbl.find_opt ctx.c_data (level, ix, iy)

let p_region_of ctx ~level ~ix ~iy =
  Quadtree.region_contacts ctx.c_tree ~level
    (Quadtree.local_squares ~level ~ix ~iy @ Quadtree.interactive_squares ~level ~ix ~iy)

(* Restrict a stored response matrix (rows over d.p_region) to the rows of a
   contact subset. *)
let gpv_rows (d : square_data) sub = Regions.restrict_rows ~within:d.p_region ~sub d.gpv

(* --------------------------------------------------------------------- *)
(* Splitting method (thesis §4.3.3, Fig 4-7): responses G(P_s, s) X_s for
   per-square column sets X_s at [level], using the parent-level row bases
   and combine-solves on the V_p-orthogonal remainders. *)

let split_responses ctx ~level ~(vectors : (int * int) -> Mat.t option) =
  Trace.with_span "rowbasis.split_responses" @@ fun () ->
  let squares = nonempty_squares ctx.c_tree level in
  let out : (int * int, Mat.t) Hashtbl.t = Hashtbl.create 64 in
  (* Prepare per-square decompositions. *)
  let prepared =
    List.filter_map
      (fun (ix, iy) ->
        match vectors (ix, iy) with
        | None -> None
        | Some x when Mat.cols x = 0 ->
          let region = p_region_of ctx ~level ~ix ~iy in
          Hashtbl.replace out (ix, iy) (Mat.create (Array.length region) 0);
          None
        | Some x ->
          let px, py = Quadtree.parent_coords ~ix ~iy in
          let p =
            match get ctx ~level:(level - 1) ~ix:px ~iy:py with
            | Some p -> p
            | None -> invalid_arg "Rowbasis.split_responses: missing parent data"
          in
          let contacts = Quadtree.contacts_of ctx.c_tree ~level ~ix ~iy in
          (* Embed x into parent coordinates and split against the parent's
             row basis: emb = r + o with r in span(V_p). *)
          let emb =
            Mat.of_cols
              (List.init (Mat.cols x) (fun j ->
                   Regions.embed ~within:p.contacts ~sub:contacts (Mat.col x j)))
          in
          let alpha = Mat.mul (Mat.transpose p.v) emb in
          (* k_p x k *)
          let o = Mat.sub emb (Mat.mul p.v alpha) in
          Some ((ix, iy), contacts, p, emb, alpha, o))
      squares
  in
  let max_cols = List.fold_left (fun acc (_, _, _, _, _, o) -> max acc (Mat.cols o)) 0 prepared in
  (* Combine-solves over the 36 child groups. *)
  let groups = Combine.groups_of_children (List.map (fun (c, _, _, _, _, _) -> c) prepared) in
  let member_of = Hashtbl.create 64 in
  List.iter (fun ((c, _, _, _, _, _) as entry) -> Hashtbl.replace member_of c entry) prepared;
  (* Initialize output matrices. *)
  List.iter
    (fun ((ix, iy), _, _, _, _, o) ->
      let region = p_region_of ctx ~level ~ix ~iy in
      ignore region;
      Hashtbl.replace out (ix, iy) (Mat.create (Array.length region) (Mat.cols o)))
    prepared;
  (* Every (column index, group) pair is one independent combined solve:
     collect the summed right-hand sides in loop order, solve them as one
     batch, then unpack each response in the same order. *)
  let tasks = ref [] in
  for m = 0 to max_cols - 1 do
    Array.iter
      (fun group ->
        let members =
          List.filter_map
            (fun c ->
              match Hashtbl.find_opt member_of c with
              | Some ((_, _, p, _, _, o) as entry) when Mat.cols o > m ->
                ignore p;
                Some entry
              | _ -> None)
            group
        in
        let summed =
          List.map
            (fun (_, _, p, _, _, o) -> Regions.scatter ~n:ctx.c_n p.contacts (Mat.col o m))
            members
        in
        match Combine.sum_vectors summed with
        | None -> ()
        | Some sum -> tasks := (m, members, sum) :: !tasks)
      groups
  done;
  let tasks = Array.of_list (List.rev !tasks) in
  let ys = Blackbox.apply_batch ~jobs:ctx.c_jobs ctx.c_bb (Array.map (fun (_, _, sum) -> sum) tasks) in
  Array.iteri
    (fun k (m, members, _) ->
      let y = ys.(k) in
      List.iter
            (fun ((ix, iy), _, p, emb, alpha, o) ->
              ignore emb;
              let region = p_region_of ctx ~level ~ix ~iy in
              let resp = Array.make (Array.length region) 0.0 in
              (* Row-basis part from the parent: (G(P_p, p) V_p) alpha,
                 restricted to P_s. *)
              let parent_part = Mat.gemv p.gpv (Mat.col alpha m) in
              let parent_on_region =
                Regions.gather (Regions.positions ~within:p.p_region region) parent_part
              in
              Vec.add_inplace resp parent_on_region;
              (* Remainder part: refined combine-solves output per local
                 square q of the parent (eq. (4.24)). *)
              let px, py = Quadtree.parent_coords ~ix ~iy in
              List.iter
                (fun (qx, qy) ->
                  match get ctx ~level:(level - 1) ~ix:qx ~iy:qy with
                  | None -> ()
                  | Some q ->
                    let raw = Regions.gather q.contacts y in
                    let refined =
                      if ctx.c_refine && Mat.cols q.v > 0 then begin
                        (* V_q ((G(p,q) V_q))' o + (I - V_q V_q') raw *)
                        let gpq_vq = gpv_rows q p.contacts in
                        let coeff = Mat.gemv_t gpq_vq (Mat.col o m) in
                        let term1 = Mat.gemv q.v coeff in
                        let proj = Mat.gemv q.v (Mat.gemv_t q.v raw) in
                        Vec.add term1 (Vec.sub raw proj)
                      end
                      else raw
                    in
                    (* Accumulate at q's contacts within P_s (q's contacts
                       may extend beyond P_s only when... they cannot:
                       L_p refines into P_s exactly). *)
                    let pos = Regions.positions ~within:region q.contacts in
                    Array.iteri (fun k pos_k -> resp.(pos_k) <- resp.(pos_k) +. refined.(k)) pos)
                (Quadtree.local_squares ~level:(level - 1) ~ix:px ~iy:py);
              let matrix = Hashtbl.find out (ix, iy) in
              Mat.set_col matrix m resp)
        members)
    tasks;
  out

(* --------------------------------------------------------------------- *)
(* Build the representation. *)

let build ?(sigma_rel_tol = 0.01) ?(max_rank = 6) ?(seed = 20020524) ?(symmetric_refinement = true)
    ?(samples_per_square = 1) ?(jobs = 1) ?checkpoint tree layout blackbox =
  if samples_per_square < 1 then invalid_arg "Rowbasis.build: samples_per_square must be positive";
  (* Every solve below goes through [apply_batch] in a deterministic stage
     order (level-2 samples, level-2 responses, then per level one sample
     and one response stage, finally the complements), so each batch is one
     resumable checkpoint stage. *)
  let blackbox =
    match checkpoint with
    | Some ck -> Substrate.Checkpoint.wrap ck blackbox
    | None -> blackbox
  in
  let max_level = Quadtree.max_level tree in
  if max_level < 2 then invalid_arg "Rowbasis.build: max_level must be at least 2";
  let n = Layout.n_contacts layout in
  let rng = La.Rng.create seed in
  let ctx =
    {
      c_tree = tree;
      c_n = n;
      c_bb = blackbox;
      c_data = Hashtbl.create 256;
      c_refine = symmetric_refinement;
      c_sigma_rel_tol = sigma_rel_tol;
      c_max_rank = max_rank;
      c_jobs = max 1 jobs;
    }
  in
  (* Build the row basis of one square from the sample responses of its
     interactive squares. [sample_of coords] gives (response over the
     sampled square's P region, that P region). *)
  let basis_from_samples ~level ~ix ~iy ~contacts sample_of =
    (* Each interactive square may contribute several sample-response
       columns ([samples_per_square] > 1 is the thesis's own mitigation for
       sparse interactive regions, §4.3.3). *)
    let cols =
      List.concat_map
        (fun (jx, jy) ->
          match sample_of (jx, jy) with
          | None -> []
          | Some (resp, region) ->
            let restricted = Regions.restrict_rows ~within:region ~sub:contacts resp in
            List.init (Mat.cols restricted) (Mat.col restricted))
        (Quadtree.interactive_squares ~level ~ix ~iy)
    in
    match cols with
    | [] -> Mat.create (Array.length contacts) 0
    | _ ->
      let s = Mat.of_cols cols in
      let f = La.Svd.decomp s in
      let k = keep_rule ~sigma_rel_tol:ctx.c_sigma_rel_tol ~max_rank:ctx.c_max_rank f.La.Svd.s in
      Mat.sub_matrix f.La.Svd.u ~row:0 ~col:0 ~rows:(Array.length contacts) ~cols:k
  in
  (* ---- Level 2: direct solves, batched. The random sample vectors are
     drawn sequentially (preserving the rng stream) before the solves are
     issued as one batch. ---- *)
  let level2 = nonempty_squares tree 2 in
  let samples2 : (int * int, Mat.t) Hashtbl.t = Hashtbl.create 16 in
  let sample_rhs =
    List.concat_map
      (fun (ix, iy) ->
        let contacts = Quadtree.contacts_of tree ~level:2 ~ix ~iy in
        let k = min samples_per_square (Array.length contacts) in
        List.init k (fun _ ->
            let m_s = La.Rng.gaussian_array rng (Array.length contacts) in
            Regions.scatter ~n contacts m_s))
      level2
  in
  let sample_ys =
    Trace.with_span "rowbasis.level2_samples" (fun () ->
        Blackbox.apply_batch ~jobs:ctx.c_jobs blackbox (Array.of_list sample_rhs))
  in
  (* [sample_rhs] holds each square's vectors consecutively, in square
     order; regroup the responses the same way. *)
  let idx = ref 0 in
  List.iter
    (fun (ix, iy) ->
      let contacts = Quadtree.contacts_of tree ~level:2 ~ix ~iy in
      let k = min samples_per_square (Array.length contacts) in
      let ys = List.init k (fun j -> sample_ys.(!idx + j)) in
      idx := !idx + k;
      Hashtbl.replace samples2 (ix, iy) (Mat.of_cols ys))
    level2;
  let gpv_tasks = ref [] in
  let level2_entries =
    List.map
      (fun (ix, iy) ->
        let contacts = Quadtree.contacts_of tree ~level:2 ~ix ~iy in
        let v =
          basis_from_samples ~level:2 ~ix ~iy ~contacts (fun c ->
              match Hashtbl.find_opt samples2 c with
              | None -> None
              | Some y -> Some (y, Array.init n Fun.id))
        in
        let p_region = p_region_of ctx ~level:2 ~ix ~iy in
        let gpv = Mat.create (Array.length p_region) (Mat.cols v) in
        for j = 0 to Mat.cols v - 1 do
          gpv_tasks := (gpv, j, p_region, Regions.scatter ~n contacts (Mat.col v j)) :: !gpv_tasks
        done;
        ((ix, iy), contacts, v, gpv, p_region))
      level2
  in
  let gpv_tasks = Array.of_list (List.rev !gpv_tasks) in
  let gpv_ys =
    Trace.with_span "rowbasis.level2_responses" (fun () ->
        Blackbox.apply_batch ~jobs:ctx.c_jobs blackbox
          (Array.map (fun (_, _, _, rhs) -> rhs) gpv_tasks))
  in
  Array.iteri
    (fun k (gpv, j, p_region, _) -> Mat.set_col gpv j (Regions.gather p_region gpv_ys.(k)))
    gpv_tasks;
  List.iter
    (fun ((ix, iy), contacts, v, gpv, p_region) ->
      Hashtbl.replace ctx.c_data (2, ix, iy)
        { coords = (ix, iy); level = 2; contacts; v; gpv; p_region; w = None; g_local = None; l_region = [||] })
    level2_entries;
  (* ---- Levels 3..max: sampling and responses via the splitting method. ---- *)
  for level = 3 to max_level do
    let squares = nonempty_squares tree level in
    (* Per-square random sample vectors. *)
    let sample_vectors : (int * int, Mat.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (ix, iy) ->
        let contacts = Quadtree.contacts_of tree ~level ~ix ~iy in
        let k = min samples_per_square (Array.length contacts) in
        Hashtbl.replace sample_vectors (ix, iy)
          (Mat.of_cols (List.init k (fun _ -> La.Rng.gaussian_array rng (Array.length contacts)))))
      squares;
    let sample_resps =
      Trace.with_span "rowbasis.level_sampling" (fun () ->
          split_responses ctx ~level ~vectors:(Hashtbl.find_opt sample_vectors))
    in
    (* Row bases from the sampled responses. *)
    let bases : (int * int, Mat.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (ix, iy) ->
        let contacts = Quadtree.contacts_of tree ~level ~ix ~iy in
        let v =
          basis_from_samples ~level ~ix ~iy ~contacts (fun (jx, jy) ->
              match Hashtbl.find_opt sample_resps (jx, jy) with
              | None -> None
              | Some resp when Mat.cols resp = 0 -> None
              | Some resp -> Some (resp, p_region_of ctx ~level ~ix:jx ~iy:jy))
        in
        Hashtbl.replace bases (ix, iy) v)
      squares;
    (* Responses to the row bases, again via splitting. *)
    let gpvs =
      Trace.with_span "rowbasis.level_responses" (fun () ->
          split_responses ctx ~level ~vectors:(Hashtbl.find_opt bases))
    in
    List.iter
      (fun (ix, iy) ->
        let contacts = Quadtree.contacts_of tree ~level ~ix ~iy in
        let v = Hashtbl.find bases (ix, iy) in
        let gpv = Hashtbl.find gpvs (ix, iy) in
        Hashtbl.replace ctx.c_data (level, ix, iy)
          {
            coords = (ix, iy);
            level;
            contacts;
            v;
            gpv;
            p_region = p_region_of ctx ~level ~ix ~iy;
            w = None;
            g_local = None;
            l_region = [||];
          })
      squares
  done;
  (* ---- Finest level: explicit local interactions (eq. (4.26)). ---- *)
  let finest = nonempty_squares tree max_level in
  let complements : (int * int, Mat.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ix, iy) ->
      let d = Hashtbl.find ctx.c_data (max_level, ix, iy) in
      let w =
        if Mat.cols d.v = 0 then Mat.identity (Array.length d.contacts) else La.Qr.complement d.v
      in
      Hashtbl.replace complements (ix, iy) w)
    finest;
  (* Responses to the complements: splitting method on deep trees, direct
     solves when the finest level is level 2 itself. *)
  let w_resps : (int * int, Mat.t * int array) Hashtbl.t = Hashtbl.create 64 in
  if max_level = 2 then begin
    let w_tasks = ref [] in
    List.iter
      (fun (ix, iy) ->
        let d = Hashtbl.find ctx.c_data (2, ix, iy) in
        let w = Hashtbl.find complements (ix, iy) in
        let resp = Mat.create (Array.length d.p_region) (Mat.cols w) in
        for j = 0 to Mat.cols w - 1 do
          w_tasks := (resp, j, d.p_region, Regions.scatter ~n d.contacts (Mat.col w j)) :: !w_tasks
        done;
        Hashtbl.replace w_resps (ix, iy) (resp, d.p_region))
      finest;
    let w_tasks = Array.of_list (List.rev !w_tasks) in
    let w_ys =
      Trace.with_span "rowbasis.finest_complements" (fun () ->
          Blackbox.apply_batch ~jobs:ctx.c_jobs blackbox
            (Array.map (fun (_, _, _, rhs) -> rhs) w_tasks))
    in
    Array.iteri
      (fun k (resp, j, p_region, _) -> Mat.set_col resp j (Regions.gather p_region w_ys.(k)))
      w_tasks
  end
  else begin
    let resps =
      Trace.with_span "rowbasis.finest_complements" (fun () ->
          split_responses ctx ~level:max_level ~vectors:(Hashtbl.find_opt complements))
    in
    List.iter
      (fun (ix, iy) ->
        Hashtbl.replace w_resps (ix, iy)
          (Hashtbl.find resps (ix, iy), p_region_of ctx ~level:max_level ~ix ~iy))
      finest
  end;
  List.iter
    (fun (ix, iy) ->
      let d = Hashtbl.find ctx.c_data (max_level, ix, iy) in
      let w = Hashtbl.find complements (ix, iy) in
      let l_region =
        Quadtree.region_contacts tree ~level:max_level (Quadtree.local_squares ~level:max_level ~ix ~iy)
      in
      let resp, region = Hashtbl.find w_resps (ix, iy) in
      let glw = Regions.restrict_rows ~within:region ~sub:l_region resp in
      let glv = Regions.restrict_rows ~within:d.p_region ~sub:l_region d.gpv in
      (* G(L_s, s) ~ (G(L_s,s) V) V' + (G(L_s,s) W) W'. *)
      let g_local = Mat.add (Mat.mul glv (Mat.transpose d.v)) (Mat.mul glw (Mat.transpose w)) in
      Hashtbl.replace ctx.c_data (max_level, ix, iy)
        { d with w = Some w; g_local = Some g_local; l_region })
    finest;
  {
    tree;
    layout;
    n;
    max_level;
    data = ctx.c_data;
    symmetric_refinement;
    solves = Blackbox.solve_count blackbox;
  }

(* --------------------------------------------------------------------- *)
(* Apply the represented operator (thesis §4.3.2). *)

let apply t (v : Vec.t) : Vec.t =
  if Array.length v <> t.n then invalid_arg "Rowbasis.apply: dimension mismatch";
  let out = Array.make t.n 0.0 in
  for level = 2 to t.max_level do
    Hashtbl.iter
      (fun (l, ix, iy) (src : square_data) ->
        if l = level then begin
          let v_s = Regions.gather src.contacts v in
          let alpha = Mat.gemv_t src.v v_s in
          let resid = Vec.sub v_s (Mat.gemv src.v alpha) in
          List.iter
            (fun (jx, jy) ->
              match find t ~level ~ix:jx ~iy:jy with
              | None -> ()
              | Some dst ->
                let term1 = Mat.gemv (gpv_rows src dst.contacts) alpha in
                let contribution =
                  if t.symmetric_refinement && Mat.cols dst.v > 0 then begin
                    let gsd_vd = gpv_rows dst src.contacts in
                    Vec.add term1 (Mat.gemv dst.v (Mat.gemv_t gsd_vd resid))
                  end
                  else term1
                in
                Regions.scatter_add dst.contacts contribution out)
            (Quadtree.interactive_squares ~level ~ix ~iy)
        end)
      t.data
  done;
  (* Finest-level local blocks. *)
  Hashtbl.iter
    (fun (l, _, _) (src : square_data) ->
      if l = t.max_level then
        match src.g_local with
        | None -> ()
        | Some g_local ->
          let v_s = Regions.gather src.contacts v in
          Regions.scatter_add src.l_region (Mat.gemv g_local v_s) out)
    t.data;
  out

(* Floats stored by the representation: per square the basis V_s and the
   responses G(P_s, s) V_s, plus the finest level's complement W_s and
   local block. This is the storage the thesis compares against the
   pairwise baseline (Table 4.2). *)
let storage_floats t =
  let size m = Mat.rows m * Mat.cols m in
  Hashtbl.fold
    (fun _ (d : square_data) acc ->
      acc + size d.v + size d.gpv
      + (match d.w with Some w -> size w | None -> 0)
      + (match d.g_local with Some g -> size g | None -> 0))
    t.data 0

(* Phase 1 as an operator. The read-only traversal of [data] is shared by
   parallel batch applications; each right-hand side accumulates into its
   own output vector, so batches stay bit-identical for every [jobs].
   Without the (4.16)/(4.24) symmetric refinement the approximation is not
   symmetric, and even with it symmetry is approximate — [symmetric] is
   reported false. *)
let op t =
  Subcouple_op.make ~pure:true ~storage_floats:(storage_floats t)
    ~solves_spent:(fun () -> t.solves)
    ~describe:
      {
        Subcouple_op.kind = "rowbasis";
        source =
          Printf.sprintf "multilevel row-basis representation (phase 1, levels 2..%d)" t.max_level;
        symmetric = false;
      }
    ~n:t.n (apply t)

module _ : Subcouple_op.S with type repr = t = struct
  type repr = t

  let op = op
end

(* Expose the pair formula for phase 2. *)
let interaction_block t ~(src : square_data) ~(dst : square_data) (x : Vec.t) : Vec.t =
  let alpha = Mat.gemv_t src.v x in
  let resid = Vec.sub x (Mat.gemv src.v alpha) in
  let ctx_refine = t.symmetric_refinement in
  let term1 = Mat.gemv (gpv_rows src dst.contacts) alpha in
  if ctx_refine && Mat.cols dst.v > 0 then begin
    let gsd_vd = gpv_rows dst src.contacts in
    Vec.add term1 (Mat.gemv dst.v (Mat.gemv_t gsd_vd resid))
  end
  else term1
