(* Accuracy and efficiency metrics in the form the thesis reports
   (§3.7, §4.6): entrywise relative error against the exact G, the fraction
   of entries off by more than 10%, sparsity factors, and the
   solve-reduction factor. *)

type error_stats = {
  max_rel_error : float;
  frac_above_10pct : float;
  mean_rel_error : float;
  entries : int;
}

let error_of_columns ~exact_cols ~approx_cols =
  (* Columns are (index, exact, approx) aligned lists of equal-length
     vectors. *)
  let max_err = ref 0.0 and sum = ref 0.0 and above = ref 0 and count = ref 0 in
  List.iter2
    (fun (e : La.Vec.t) (a : La.Vec.t) ->
      Array.iteri
        (fun i x ->
          let err = Float.abs (a.(i) -. x) /. Float.abs x in
          if Float.is_finite err then begin
            max_err := Float.max !max_err err;
            sum := !sum +. err;
            if err > 0.10 then incr above;
            incr count
          end)
        e)
    exact_cols approx_cols;
  {
    max_rel_error = !max_err;
    frac_above_10pct = (if !count = 0 then 0.0 else float_of_int !above /. float_of_int !count);
    mean_rel_error = (if !count = 0 then 0.0 else !sum /. float_of_int !count);
    entries = !count;
  }

(* Entrywise relative error of a dense approximation against the exact
   dense G (thesis: error(i,j) = |approx - exact| / |exact|). *)
let error_dense ~exact ~approx =
  let n = La.Mat.cols exact in
  let exact_cols = List.init n (La.Mat.col exact) in
  let approx_cols = List.init n (La.Mat.col approx) in
  error_of_columns ~exact_cols ~approx_cols

(* Error over a sample of columns (thesis Table 4.3 uses a 10% column
   sample on the large examples). *)
let error_sampled ~exact_columns ~approx_columns =
  error_of_columns ~exact_cols:(Array.to_list exact_columns) ~approx_cols:(Array.to_list approx_columns)

(* Evenly spaced sample of [count] column indices out of [n]. *)
let sample_indices ~n ~count =
  let count = max 1 (min n count) in
  Array.init count (fun k -> k * n / count)

(* Solve-reduction factor (thesis §4.6): naive extraction needs n solves. *)
let solve_reduction ~n ~solves = if solves = 0 then infinity else float_of_int n /. float_of_int solves

let pp_error ppf e =
  Fmt.pf ppf "max rel err %.2g%%, >10%%: %.2g%%, mean %.2g%%"
    (100.0 *. e.max_rel_error) (100.0 *. e.frac_above_10pct) (100.0 *. e.mean_rel_error)

(* A-posteriori stochastic error estimate (the error-analysis direction of
   thesis §5.2): compare an approximate operator against the exact one on a
   few random probe vectors. For symmetric operators the relative 2-norm
   error on Gaussian probes concentrates around the relative spectral
   error, so a handful of probes gives a cheap certificate without
   extracting G. Both sides are plain operators — the exact one is usually
   [Substrate.Blackbox.op], but a dense reference works identically. *)

type probe_estimate = {
  mean_rel_residual : float;
  max_rel_residual : float;
  probes : int;
  extra_solves : int;
}

let estimate_apply_error ?(probes = 5) ?(seed = 99) ~exact ~approx () =
  let n = Subcouple_op.n exact in
  if Subcouple_op.n approx <> n then
    invalid_arg
      (Printf.sprintf "Metrics.estimate_apply_error: exact operator has n = %d, approximate %d" n
         (Subcouple_op.n approx));
  let rng = La.Rng.create seed in
  let before = Subcouple_op.solves_spent exact in
  let sum = ref 0.0 and worst = ref 0.0 in
  for _ = 1 to probes do
    let v = La.Rng.gaussian_array rng n in
    let reference = Subcouple_op.apply exact v in
    let candidate = Subcouple_op.apply approx v in
    let err = La.Vec.norm2 (La.Vec.sub candidate reference) /. La.Vec.norm2 reference in
    sum := !sum +. err;
    worst := Float.max !worst err
  done;
  {
    mean_rel_residual = !sum /. float_of_int probes;
    max_rel_residual = !worst;
    probes;
    extra_solves = Subcouple_op.solves_spent exact - before;
  }
