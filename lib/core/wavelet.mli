(** Wavelet sparsification of the conductance matrix (thesis Chapter 3):
    a multilevel vanishing-moments change of basis Q and the combine-solves
    extraction of G_ws = Q' G Q. *)

type square_basis = {
  coords : int * int;
  level : int;
  contacts : int array;
  v : La.Mat.t;  (** slow-decaying (non-vanishing moments) basis *)
  w : La.Mat.t;  (** vanishing-moments basis *)
  mv : La.Mat.t;  (** moments of the V columns about the square center *)
  mutable w_offset : int;  (** first Q column of this square's W vectors *)
  trans : La.Mat.t option;
      (** coarser squares: the small (T | R) recombination of the children's
          V columns (thesis §3.4.3's factored form) *)
  children : (int * int) list;  (** children contributing V columns, in order *)
}

type t

(** Build the multilevel basis for a layout. [p] is the moment order
    (default 2, the thesis's choice, 6 constraints per square);
    [max_level] defaults to [Quadtree.suggest_max_level ~target:16]. *)
val create : ?p:int -> ?max_level:int -> Geometry.Layout.t -> t

val find : t -> level:int -> ix:int -> iy:int -> square_basis option
val tree : t -> Geometry.Quadtree.t
val n_contacts : t -> int
val moment_order : t -> int

(** Morton (quadrant-hierarchical) square ordering index. *)
val morton : ix:int -> iy:int -> int

(** The sparse orthogonal change-of-basis matrix Q. *)
val q_matrix : t -> Sparsemat.Csr.t

(** Extract the sparsified representation G ~ Q G_ws Q' with combine-solves
    (§3.5); set [combine:false] to spend one solve per basis vector
    instead. [jobs] (default 1) batches each stage's independent solves
    through {!Substrate.Blackbox.apply_batch}; the result is bit-identical
    for any [jobs]. [checkpoint] persists each completed solve stage and
    replays finished stages on resume (see {!Substrate.Checkpoint}). *)
val extract :
  ?combine:bool -> ?jobs:int -> ?checkpoint:Substrate.Checkpoint.t -> t -> Substrate.Blackbox.t -> Repr.t

(** Exact Q' G Q from a known dense G (validation). *)
val change_basis_dense : t -> La.Mat.t -> La.Mat.t

(** The basis as operators, applied through the factored
    [Q = Q^(L) ... Q^(1)] form of thesis §3.4.3: O(n) work and O(n) stored
    floats, against O(n log n) for the explicit sparse Q. {!q_op} is
    synthesis [x = Q z], {!qt_op} analysis [z = Q' x]; both report the
    storage of the shared factored form. *)
val q_op : t -> Subcouple_op.t

val qt_op : t -> Subcouple_op.t

(** Floats stored by the factored form (finest [V W] blocks plus the
    coarser (T | R) blocks). *)
val factored_storage_floats : t -> int
