(** Sharded extraction with the real extractors: the method-dispatch layer
    over {!Substrate.Shard.run}.

    Each shard extracts the principal submatrix [G(C_s, C_s)] — the chosen
    method runs unchanged on the shard's sub-layout against the global
    solver restricted to the shard's coordinates — and the manifest's
    block-diagonal composition ({!Subcouple_op.of_manifest}) drops the
    cross-shard coupling blocks, the part spatial decay makes cheap to
    lose. The shard level trades accuracy for fault-domain granularity:
    level 0 is one shard (no coupling dropped), each further level
    quarters the blast radius of a crash or a stubborn region. *)

type method_ = [ `Lowrank | `Wavelet ]

val method_name : method_ -> string

(** One shard's extraction: the closure {!Substrate.Shard.run} drives.
    [fallbacks] is the {e full-dimension} escalation ladder; each rung is
    restricted to the shard's coordinates on demand (and built at most
    once across shards, the laziness is shared). Exposed for harnesses
    that drive {!Substrate.Shard.run} with extra instrumentation. *)
val extract_one :
  method_:method_ ->
  jobs:int ->
  policy:Substrate.Resilient.policy ->
  fallbacks:(string * Substrate.Blackbox.t Lazy.t) list ->
  source:string ->
  layout:Geometry.Layout.t ->
  box:Substrate.Blackbox.t ->
  shard:Substrate.Shard.planned ->
  first_index:int ->
  checkpoint:Substrate.Checkpoint.t ->
  Subcouple_op.Artifact.payload

(** [extract ~method_ ~shard_level ~dir layout box] plans the shards of
    [layout] at [shard_level] and drives them to completion inside [dir],
    resuming whatever a previous run left there (see
    {!Substrate.Shard.run} for the crash-safety contract). [policy]
    (default {!Substrate.Resilient.default_policy}) and [fallbacks]
    (default none) wrap every shard's solves in a per-shard resilience
    ladder — a shard that exhausts it is quarantined, not fatal.
    @raise Substrate.Shard.Mismatch if [dir] holds state for a different
    layout or plan. *)
val extract :
  ?jobs:int ->
  ?policy:Substrate.Resilient.policy ->
  ?fallbacks:(string * Substrate.Blackbox.t Lazy.t) list ->
  ?source:string ->
  method_:method_ ->
  shard_level:int ->
  dir:string ->
  Geometry.Layout.t ->
  Substrate.Blackbox.t ->
  Subcouple_op.Artifact.Manifest.t * Substrate.Shard.progress
