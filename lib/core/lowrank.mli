(** Phase 2 of the low-rank method (thesis §4.4): fine-to-coarse sweep from
    the row-basis representation to the wavelet-structured Q G_w Q' form,
    plus the whole-pipeline driver. *)

type phase2_square = {
  coords : int * int;
  level : int;
  contacts : int array;
  u : La.Mat.t;  (** slow-decaying basis *)
  t : La.Mat.t;  (** fast-decaying basis *)
  mutable t_offset : int;
  mutable u_offset : int;
}

type t

(** Fine-to-coarse sweep over a phase-1 representation; no further
    black-box solves. Keep rule defaults are the thesis's (sigma_1/100,
    at most 6). *)
val build : ?sigma_rel_tol:float -> ?max_rank:int -> Rowbasis.t -> t

val find : t -> level:int -> ix:int -> iy:int -> phase2_square option
val rowbasis : t -> Rowbasis.t

(** The sparse orthogonal change-of-basis matrix. *)
val q_matrix : t -> Sparsemat.Csr.t

(** Fill G_w from the row-basis representation and assemble Q G_w Q'. *)
val representation : t -> Repr.t

(** Whole pipeline: build the quadtree (default depth
    [suggest_max_level ~target:8]), run both phases, return the sparsified
    representation. [jobs] (default 1) batches phase 1's independent
    black-box solves; the result is bit-identical for any [jobs].
    [checkpoint] persists phase 1's completed solve stages and replays
    them on resume (phase 2 issues no solves). *)
val extract :
  ?max_level:int ->
  ?sigma_rel_tol:float ->
  ?max_rank:int ->
  ?seed:int ->
  ?symmetric_refinement:bool ->
  ?samples_per_square:int ->
  ?jobs:int ->
  ?checkpoint:Substrate.Checkpoint.t ->
  Geometry.Layout.t ->
  Substrate.Blackbox.t ->
  Repr.t
