(** Process-wide, Domain-safe tracing and metrics.

    Three instruments, all cheap enough to leave in production code:

    - {b spans} ({!with_span}): named, nested, monotonic-clock-timed
      intervals ("one CG solve", "one pool chunk", "the root projection
      stage");
    - {b counters} ({!counter} / {!incr}): monotonically increasing event
      tallies ("CG breakdowns", "checkpoint replay hits");
    - {b distributions} ({!dist} / {!observe}): streams of sampled values
      ("CG iterations per solve", "batch sizes", "pool queue wait").

    Tracing is {e disabled by default}. When disabled, every instrument is
    a single [Atomic.get] and a branch — no allocation, no clock read — so
    instrumented hot paths cost nothing measurable. Instrumentation must
    never change results: spans only time; they carry no data dependency.

    Concurrency model (the same shape as [Krylov.merge_stats]): each domain
    appends events to its own buffer obtained through [Domain.DLS] — no
    mutex, no contention on the hot path. A global registry (the only
    mutexed structure, touched once per domain) keeps every buffer alive so
    {!events}, {!summary} and the exporters can merge them after the
    parallel section. Merging while other domains are still recording is
    safe but may miss their latest events; dump after joining workers.

    Exporters: {!write_chrome} emits Chrome [trace_event] JSON — load it in
    [about:tracing] or {{:https://ui.perfetto.dev}Perfetto} — and
    {!summary} / {!pp_summary} aggregate spans and distributions into
    count/total/mean/max rows with deterministic (name-sorted) order. *)

(** {1 Global switch} *)

val enabled : unit -> bool

(** Turn recording on or off. Off (the default) is the zero-cost path. *)
val set_enabled : bool -> unit

(** Drop every recorded event and zero every counter. Buffers stay
    registered, so domains that already traced keep working. Call only
    while no other domain is recording. *)
val reset : unit -> unit

(** The monotonic clock used for spans, in nanoseconds. Exposed so callers
    can time an interval that does not fit a lexical scope (e.g. the pool's
    enqueue-to-dequeue wait). *)
val now_ns : unit -> int64

(** {1 Recording} *)

(** [with_span name f] runs [f], recording a span covering its execution
    (exceptional exits included) on the calling domain. Spans on one domain
    nest lexically; the recorded depth says how deep. *)
val with_span : string -> (unit -> 'a) -> 'a

type counter

(** Counters and distributions are cheap handles; create them once at
    module level and reuse. Two handles with the same name aggregate
    together. *)
val counter : string -> counter

val incr : ?by:int -> counter -> unit

type dist

val dist : string -> dist

(** Record one sample of the distribution on the calling domain. *)
val observe : dist -> float -> unit

(** {1 Inspection and export} *)

(** One merged event, as recorded. [kind] is [`Span] (with [dur_ns]) or
    [`Value] (with [value]); [domain] is the recording domain's id;
    [depth] is the span-nesting depth at record time. *)
type event = {
  name : string;
  kind : [ `Span | `Value ];
  domain : int;
  t0_ns : int64;
  dur_ns : int64;
  value : float;
  depth : int;
}

(** Snapshot of every recorded event across all domains, sorted by
    (start time, domain, name) — a deterministic order for any merge. *)
val events : unit -> event list

(** Total recorded events across all domains (0 while disabled: the no-op
    regression tests assert on this). *)
val event_count : unit -> int

(** Aggregate row: [count] events named [name]; [total]/[mean]/[max]/[min]
    are seconds for spans and raw sample values for distributions. *)
type agg = {
  agg_name : string;
  count : int;
  total : float;
  mean : float;
  max : float;
  min : float;
}

type summary = {
  spans : agg list;  (** name-sorted *)
  dists : agg list;  (** name-sorted *)
  counters : (string * int) list;  (** name-sorted *)
}

val summary : unit -> summary

(** Render the aggregate summary as an aligned table. *)
val pp_summary : Format.formatter -> summary -> unit

(** Write the merged events as Chrome [trace_event] JSON
    ([{"traceEvents": [...]}]); spans become complete (["ph":"X"]) events,
    distribution samples become counter (["ph":"C"]) events, [tid] is the
    recording domain. Timestamps are microseconds relative to the earliest
    recorded event. *)
val write_chrome : out_channel -> unit

(** {!write_chrome} into a string. *)
val chrome_string : unit -> string
