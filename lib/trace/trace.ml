(* Tracing and metrics. See trace.mli for the model.

   Hot-path discipline: every recording entry point first reads one
   [Atomic] and branches away when tracing is off — no closure, no clock
   read, no allocation on the disabled path. When on, a domain only ever
   appends to its own buffer (reached through [Domain.DLS]), so recording
   never takes a lock; the single mutex below guards only the registry of
   buffers and counter cells, touched once per domain / per handle. *)

(* One recorded event. A flat record (rather than a variant per kind)
   keeps pushes to a single allocation. *)
type ev = {
  ev_name : string;
  ev_span : bool;  (* true: span with duration; false: distribution sample *)
  ev_t0 : int64;  (* ns, monotonic *)
  ev_dur : int64;  (* ns; 0 for samples *)
  ev_value : float;  (* sample value; 0 for spans *)
  ev_depth : int;  (* span-nesting depth on the recording domain *)
}

let dummy_ev =
  { ev_name = ""; ev_span = false; ev_t0 = 0L; ev_dur = 0L; ev_value = 0.0; ev_depth = 0 }

type buffer = {
  buf_domain : int;
  mutable buf_events : ev array;
  mutable buf_len : int;
  mutable buf_depth : int;  (* live span nesting; transient, not merged *)
}

let enabled_flag = Atomic.make false
let registry_mutex = Mutex.create ()

(* Every buffer ever handed out, including those of joined domains: events
   must survive the worker that recorded them, exactly like the per-domain
   [Krylov.stats] records merged after a batch. Mutated only under
   [registry_mutex]; the buffers inside are single-writer (their owning
   domain) by construction. *)
let registered_buffers : buffer list ref = ref []

(* Counter cells by name, so equally-named handles share one cell. The
   cells are [Atomic]; only the list spine needs the registry mutex. *)
let registered_counters : (string * int Atomic.t) list ref = ref []

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let buf =
        {
          buf_domain = (Domain.self () :> int);
          buf_events = Array.make 256 dummy_ev;
          buf_len = 0;
          buf_depth = 0;
        }
      in
      Mutex.protect registry_mutex (fun () -> registered_buffers := buf :: !registered_buffers);
      buf)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let now_ns () = Monotonic_clock.now ()

let reset () =
  Mutex.protect registry_mutex (fun () ->
      List.iter (fun b -> b.buf_len <- 0) !registered_buffers;
      List.iter (fun (_, c) -> Atomic.set c 0) !registered_counters)

(* ------------------------------------------------------------------ *)
(* Recording *)

let push buf e =
  let cap = Array.length buf.buf_events in
  if buf.buf_len = cap then begin
    let bigger = Array.make (2 * cap) dummy_ev in
    Array.blit buf.buf_events 0 bigger 0 cap;
    buf.buf_events <- bigger
  end;
  buf.buf_events.(buf.buf_len) <- e;
  buf.buf_len <- buf.buf_len + 1

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let buf = Domain.DLS.get buffer_key in
    let depth = buf.buf_depth in
    buf.buf_depth <- depth + 1;
    let t0 = Monotonic_clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Monotonic_clock.now () in
        buf.buf_depth <- depth;
        push buf
          {
            ev_name = name;
            ev_span = true;
            ev_t0 = t0;
            ev_dur = Int64.sub t1 t0;
            ev_value = 0.0;
            ev_depth = depth;
          })
      f
  end

type counter = int Atomic.t

let counter name =
  Mutex.protect registry_mutex (fun () ->
      match List.assoc_opt name !registered_counters with
      | Some cell -> cell
      | None ->
        let cell = Atomic.make 0 in
        registered_counters := (name, cell) :: !registered_counters;
        cell)

let incr ?(by = 1) cell =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add cell by)

type dist = string

let dist name : dist = name

let observe (name : dist) value =
  if Atomic.get enabled_flag then begin
    let buf = Domain.DLS.get buffer_key in
    push buf
      {
        ev_name = name;
        ev_span = false;
        ev_t0 = Monotonic_clock.now ();
        ev_dur = 0L;
        ev_value = value;
        ev_depth = buf.buf_depth;
      }
  end

(* ------------------------------------------------------------------ *)
(* Merging *)

type event = {
  name : string;
  kind : [ `Span | `Value ];
  domain : int;
  t0_ns : int64;
  dur_ns : int64;
  value : float;
  depth : int;
}

(* Snapshot under the registry mutex: buffer lengths are read once, so a
   domain recording concurrently can at worst be missed, never torn. The
   sort key (t0, domain, name, dur) is total for any one run, making the
   merged order independent of registration order. *)
let events () =
  let snap =
    Mutex.protect registry_mutex (fun () ->
        List.map (fun b -> (b.buf_domain, Array.sub b.buf_events 0 b.buf_len)) !registered_buffers)
  in
  let all =
    List.concat_map
      (fun (domain, evs) ->
        Array.to_list
          (Array.map
             (fun e ->
               {
                 name = e.ev_name;
                 kind = (if e.ev_span then `Span else `Value);
                 domain;
                 t0_ns = e.ev_t0;
                 dur_ns = e.ev_dur;
                 value = e.ev_value;
                 depth = e.ev_depth;
               })
             evs))
      snap
  in
  List.sort
    (fun a b ->
      let c = Int64.compare a.t0_ns b.t0_ns in
      if c <> 0 then c
      else
        let c = Int.compare a.domain b.domain in
        if c <> 0 then c
        else
          let c = String.compare a.name b.name in
          if c <> 0 then c else Int64.compare b.dur_ns a.dur_ns)
    all

let event_count () =
  Mutex.protect registry_mutex (fun () ->
      List.fold_left (fun acc b -> acc + b.buf_len) 0 !registered_buffers)

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type agg = {
  agg_name : string;
  count : int;
  total : float;
  mean : float;
  max : float;
  min : float;
}

type summary = {
  spans : agg list;
  dists : agg list;
  counters : (string * int) list;
}

let aggregate rows =
  let tbl : (string, int ref * float ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt tbl name with
      | Some (n, sum, mx, mn) ->
        Stdlib.incr n;
        sum := !sum +. v;
        if v > !mx then mx := v;
        if v < !mn then mn := v
      | None -> Hashtbl.add tbl name (ref 1, ref v, ref v, ref v))
    rows;
  Hashtbl.fold
    (fun agg_name (n, sum, mx, mn) acc ->
      {
        agg_name;
        count = !n;
        total = !sum;
        mean = !sum /. float_of_int !n;
        max = !mx;
        min = !mn;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.agg_name b.agg_name)

let summary () =
  let evs = events () in
  let span_rows =
    List.filter_map
      (fun e ->
        match e.kind with
        | `Span -> Some (e.name, Int64.to_float e.dur_ns *. 1e-9)
        | `Value -> None)
      evs
  in
  let dist_rows =
    List.filter_map
      (fun e -> match e.kind with `Value -> Some (e.name, e.value) | `Span -> None)
      evs
  in
  let counters =
    Mutex.protect registry_mutex (fun () ->
        List.map (fun (name, cell) -> (name, Atomic.get cell)) !registered_counters)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { spans = aggregate span_rows; dists = aggregate dist_rows; counters }

let pp_summary ppf s =
  let header kind = Format.fprintf ppf "%-40s %8s %12s %12s %12s@," kind "count" "total" "mean" "max" in
  let row a = Format.fprintf ppf "%-40s %8d %12.6g %12.6g %12.6g@," a.agg_name a.count a.total a.mean a.max in
  Format.fprintf ppf "@[<v>";
  if s.spans <> [] then begin
    header "span (seconds)";
    List.iter row s.spans
  end;
  if s.dists <> [] then begin
    header "distribution (values)";
    List.iter row s.dists
  end;
  if s.counters <> [] then begin
    Format.fprintf ppf "%-40s %8s@," "counter" "value";
    List.iter (fun (name, v) -> Format.fprintf ppf "%-40s %8d@," name v) s.counters
  end;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_string () =
  let evs = events () in
  let t_min = List.fold_left (fun acc e -> Int64.min acc e.t0_ns) Int64.max_int evs in
  let us_of ns = Int64.to_float (Int64.sub ns t_min) /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      (match e.kind with
      | `Span ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"subcouple\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"depth\":%d}}"
             (json_escape e.name) (us_of e.t0_ns)
             (Int64.to_float e.dur_ns /. 1e3)
             e.domain e.depth)
      | `Value ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"subcouple\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"value\":%.17g}}"
             (json_escape e.name) (us_of e.t0_ns) e.domain e.value)))
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_chrome oc = output_string oc (chrome_string ())
