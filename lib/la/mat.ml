(* Dense matrices in row-major order.

   Sizes in this project are modest (moment matrices are 6 x n_s, sampled
   interactions a few hundred rows by <= 27 columns, exact conductance
   matrices up to a few thousand square for validation), so a straightforward
   row-major layout with cache-friendly inner loops is sufficient. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let update m i j f = m.data.((i * m.cols) + j) <- f m.data.((i * m.cols) + j)
let copy m = { m with data = Array.copy m.data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length a.(0) in
    Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows") a;
    init rows cols (fun i j -> a.(i).(j))
  end

let to_arrays m = Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i (v : Vec.t) =
  if Array.length v <> m.cols then invalid_arg "Mat.set_row: dimension mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let set_col m j (v : Vec.t) =
  if Array.length v <> m.rows then invalid_arg "Mat.set_col: dimension mismatch";
  for i = 0 to m.rows - 1 do
    set m i j v.(i)
  done

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map f m = { m with data = Array.map f m.data }
let scale alpha m = map (fun x -> alpha *. x) m

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

(* C = A * B with the k-loop outside j so the inner loop walks rows of B. *)
let mul a b =
  if a.cols <> b.rows then
    invalid_arg (Printf.sprintf "Mat.mul: dimension mismatch (%dx%d * %dx%d)" a.rows a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      (* Exact-zero skip: purely a work-saving test, any nonzero must multiply. *)
      if not (Float.equal aik 0.0) then
        for j = 0 to b.cols - 1 do
          c.data.((i * b.cols) + j) <- c.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

(* y = A * x *)
let gemv a (x : Vec.t) : Vec.t =
  if a.cols <> Array.length x then invalid_arg "Mat.gemv: dimension mismatch";
  let y = Array.make a.rows 0.0 in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let acc = ref 0.0 in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (Array.unsafe_get a.data (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set y i !acc
  done;
  y
[@@lint.hotpath "length x = cols checked on entry; base + j < rows * cols by the loop bounds"]

(* y = A' * x without forming the transpose *)
let gemv_t a (x : Vec.t) : Vec.t =
  if a.rows <> Array.length x then invalid_arg "Mat.gemv_t: dimension mismatch";
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let xi = Array.unsafe_get x i in
    (* Exact-zero skip, as in [mul]. *)
    if not (Float.equal xi 0.0) then
      for j = 0 to a.cols - 1 do
        Array.unsafe_set y j (Array.unsafe_get y j +. (Array.unsafe_get a.data (base + j) *. xi))
      done
  done;
  y
[@@lint.hotpath "length x = rows checked on entry; base + j < rows * cols by the loop bounds"]

let sub_matrix m ~row ~col ~rows ~cols =
  if row < 0 || col < 0 || row + rows > m.rows || col + cols > m.cols then
    invalid_arg "Mat.sub_matrix: out of bounds";
  init rows cols (fun i j -> get m (row + i) (col + j))

(* Select arbitrary rows/columns by index; used to slice interaction blocks
   G(d, s) out of a conductance matrix. *)
let select m ~row_idx ~col_idx =
  init (Array.length row_idx) (Array.length col_idx) (fun i j -> get m row_idx.(i) col_idx.(j))

let select_cols m col_idx =
  init m.rows (Array.length col_idx) (fun i j -> get m i col_idx.(j))

let select_rows m row_idx =
  init (Array.length row_idx) m.cols (fun i j -> get m row_idx.(i) j)

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Mat.hcat: row mismatch";
  init a.rows (a.cols + b.cols) (fun i j -> if j < a.cols then get a i j else get b i (j - a.cols))

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: col mismatch";
  init (a.rows + b.rows) a.cols (fun i j -> if i < a.rows then get a i j else get b (i - a.rows) j)

let hcat_list = function
  | [] -> invalid_arg "Mat.hcat_list: empty"
  | m :: rest -> List.fold_left hcat m rest

let of_cols = function
  | [] -> invalid_arg "Mat.of_cols: empty"
  | (c0 : Vec.t) :: _ as cs ->
    let rows = Array.length c0 in
    let cs = Array.of_list cs in
    init rows (Array.length cs) (fun i j -> cs.(j).(i))

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)
let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.data

let is_symmetric ?(tol = 1e-10) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

let approx_equal ?(tol = 1e-10) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs (sub a b) <= tol

let random rng rows cols = init rows cols (fun _ _ -> Rng.gaussian rng)

let pp ppf m =
  Fmt.pf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Fmt.pf ppf "|";
    for j = 0 to m.cols - 1 do
      Fmt.pf ppf " %9.4f" (get m i j)
    done;
    Fmt.pf ppf " |@,"
  done;
  Fmt.pf ppf "@]"
