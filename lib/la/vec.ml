(* Dense vectors as bare float arrays, with the handful of BLAS-1 style
   operations the solvers and sparsification algorithms need. *)

type t = float array

let create n = Array.make n 0.0
let copy = Array.copy
let init = Array.init
let dim (v : t) = Array.length v

let check_same_dim a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let dot a b =
  check_same_dim a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc
[@@lint.hotpath "equal lengths checked on entry; i bounded by the loop"]

(* y <- y + alpha * x, in place. *)
let axpy ~alpha x y =
  check_same_dim x y "axpy";
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i (Array.unsafe_get y i +. (alpha *. Array.unsafe_get x i))
  done
[@@lint.hotpath "equal lengths checked on entry; i bounded by the loop"]

let scale alpha v = Array.map (fun x -> alpha *. x) v

let scale_inplace alpha v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- alpha *. v.(i)
  done

let add a b =
  check_same_dim a b "add";
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_same_dim a b "sub";
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let add_inplace a b =
  check_same_dim a b "add_inplace";
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) +. b.(i)
  done

let fill v x = Array.fill v 0 (Array.length v) x
let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v

let sum v = Array.fold_left ( +. ) 0.0 v

let normalize v =
  let n = norm2 v in
  (* Exact zero is the right test: norm2 is 0.0 iff every entry is ±0.0,
     and any positive norm, however tiny, is a valid scale factor. *)
  if Float.equal n 0.0 then copy v else scale (1.0 /. n) v

let approx_equal ?(tol = 1e-10) a b =
  dim a = dim b
  &&
  let rec loop i = i >= dim a || (Float.abs (a.(i) -. b.(i)) <= tol && loop (i + 1)) in
  loop 0

let pp ppf v =
  Fmt.pf ppf "[@[%a@]]" Fmt.(array ~sep:(any ";@ ") (float_dfrac 6)) v
