(** Preconditioned conjugate gradient for SPD operators given as black boxes. *)

type result = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  breakdown : bool;
      (** The recurrence met a non-positive-definite direction (p' A p <= 0)
          and stopped; [converged] then only holds at a 10x relaxed
          threshold. Distinct from plain non-convergence: it means the
          operator (or preconditioner) is not SPD along the Krylov space,
          and more iterations would not have helped. *)
  residual_norm : float;
      (** The trustworthy residual: on ordinary convergence this is the
          recurrence residual that crossed the threshold; after a breakdown
          or a max-iteration exit it is the {e true} residual
          [||b - A x||], recomputed with one extra operator application on
          that exit path only (the recurrence value can drift arbitrarily
          far once the iteration misbehaves). *)
  recurrence_residual : float;
      (** The residual the PCG recurrence tracked at exit. Equal to
          [residual_norm] on ordinary convergence. *)
  residual_mismatch : bool;
      (** The recurrence and true residuals disagree by more than 10x:
          the recurrence lost accuracy and per-iteration numbers should
          be distrusted. Always [false] on ordinary convergence. *)
}

(** Accumulates per-solve iteration counts across many solves, for the
    preconditioner-effectiveness experiments (thesis Table 2.1), plus the
    number of solves that ended in a CG breakdown. *)
type stats = {
  mutable solves : int;
  mutable total_iterations : int;
  mutable breakdowns : int;
}

val make_stats : unit -> stats
val average_iterations : stats -> float

(** [merge_stats ~into s] folds [s] into [into]. Parallel batched solves
    give each concurrent solve its own stats record and merge afterwards,
    so no two domains ever share one. *)
val merge_stats : into:stats -> stats -> unit

(** [cg ~apply b] solves [A x = b] where [apply v = A v].
    [precond] applies an SPD preconditioner inverse M^{-1}.
    Converges when the 2-norm residual falls below [tol * ||b||].

    The iterate and residual live in unboxed {!Bvec} storage; the search
    direction stays a [float array] because it crosses the black-box
    boundary every iteration, and the callbacks keep their [float array]
    signatures. The array passed to [apply] is the solver's working
    direction vector: read-only, and only valid for the duration of the
    call — [apply] must not retain or mutate it. Symmetrically, [cg]
    consumes each [apply] result before the next call, so a callback may
    reuse its own output buffer. Results are bit-identical to
    {!cg_boxed}. *)
val cg :
  ?precond:(Vec.t -> Vec.t) ->
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Vec.t ->
  ?stats:stats ->
  apply:(Vec.t -> Vec.t) ->
  Vec.t ->
  result

(** The original float-array implementation of the same recurrence, kept
    as the bit-identity reference for {!cg} (asserted in test/test_la.ml)
    and as the boxed baseline of the [kernels] bench experiment. Fresh
    arrays per call, no trace instrumentation. *)
val cg_boxed :
  ?precond:(Vec.t -> Vec.t) ->
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Vec.t ->
  ?stats:stats ->
  apply:(Vec.t -> Vec.t) ->
  Vec.t ->
  result
