(** Tridiagonal solver (Thomas algorithm), used per Fourier mode by the fast
    Poisson preconditioner. *)

(** [solve ~lower ~diag ~upper ~rhs] solves the tridiagonal system. All four
    arrays have length n; [lower.(0)] and [upper.(n-1)] are ignored. *)
val solve : lower:float array -> diag:float array -> upper:float array -> rhs:float array -> float array

(** Multiply the tridiagonal matrix by a vector (for testing). *)
val apply : lower:float array -> diag:float array -> upper:float array -> Vec.t -> Vec.t
