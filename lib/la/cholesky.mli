(** Dense Cholesky factorization for symmetric positive-definite matrices. *)

exception Not_positive_definite of int

(** [factor a] returns lower-triangular [l] with [a = l * l']. Raises
    [Not_positive_definite i] at the first non-positive pivot. *)
val factor : Mat.t -> Mat.t

val solve_lower : Mat.t -> Vec.t -> Vec.t
val solve_upper_t : Mat.t -> Vec.t -> Vec.t

(** Solve [a x = b] given the Cholesky factor of [a]. *)
val solve_factored : Mat.t -> Vec.t -> Vec.t

(** Solve [a x = b] for SPD [a]. *)
val solve : Mat.t -> Vec.t -> Vec.t

(** Dense inverse of an SPD matrix (small matrices / tests only). *)
val inverse : Mat.t -> Mat.t
