(* Tridiagonal system solver (Thomas algorithm).

   The fast Poisson preconditioner (thesis §2.2.2) reduces the 3-D grid
   Laplacian, after a 2-D DCT in x and y, to one tridiagonal system in z per
   Fourier mode; each is solved here in O(nz). *)

(* Solve the system with subdiagonal [lower], diagonal [diag], superdiagonal
   [upper] and right-hand side [rhs]. [lower.(i)] couples row i to i-1
   (lower.(0) unused); [upper.(i)] couples row i to i+1 (last entry unused). *)
let solve ~lower ~diag ~upper ~rhs =
  let n = Array.length diag in
  if Array.length lower <> n || Array.length upper <> n || Array.length rhs <> n then
    invalid_arg "Tridiag.solve: dimension mismatch";
  if n = 0 then [||]
  else begin
    let c' = Array.make n 0.0 and d' = Array.make n 0.0 in
    (* Exact-zero pivot checks: the elimination only divides, so any nonzero
       pivot is arithmetically usable; near-zero accuracy loss is the
       caller's conditioning problem, not a reason to refuse the solve. *)
    if Float.equal diag.(0) 0.0 then invalid_arg "Tridiag.solve: zero pivot";
    c'.(0) <- upper.(0) /. diag.(0);
    d'.(0) <- rhs.(0) /. diag.(0);
    for i = 1 to n - 1 do
      let m = diag.(i) -. (lower.(i) *. c'.(i - 1)) in
      if Float.equal m 0.0 then invalid_arg "Tridiag.solve: zero pivot";
      c'.(i) <- upper.(i) /. m;
      d'.(i) <- (rhs.(i) -. (lower.(i) *. d'.(i - 1))) /. m
    done;
    let x = Array.make n 0.0 in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  end

(* Dense application, for testing: y = T x. *)
let apply ~lower ~diag ~upper (x : Vec.t) : Vec.t =
  let n = Array.length diag in
  Array.init n (fun i ->
      let v = diag.(i) *. x.(i) in
      let v = if i > 0 then v +. (lower.(i) *. x.(i - 1)) else v in
      if i < n - 1 then v +. (upper.(i) *. x.(i + 1)) else v)
