(* Dense Cholesky factorization and triangular solves, for symmetric
   positive-definite systems: small direct solves in tests and the exact
   reference solutions the iterative solvers are checked against. *)

exception Not_positive_definite of int

(* Lower-triangular L with A = L L'. *)
let factor a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Cholesky.factor: matrix not square";
  let l = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then raise (Not_positive_definite i);
        Mat.set l i i (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done;
  l

(* Solve L y = b by forward substitution. *)
let solve_lower l (b : Vec.t) : Vec.t =
  let n = Mat.rows l in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Mat.get l i k *. y.(k))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  y

(* Solve L' x = y by back substitution. *)
let solve_upper_t l (y : Vec.t) : Vec.t =
  let n = Mat.rows l in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !acc /. Mat.get l i i
  done;
  x

let solve_factored l b = solve_upper_t l (solve_lower l b)

let solve a b = solve_factored (factor a) b

(* Inverse via n solves; only for small matrices in tests. *)
let inverse a =
  let n = Mat.rows a in
  let l = factor a in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    Mat.set_col inv j (solve_factored l e)
  done;
  inv
