(** Unboxed vector kernels on [Bigarray.Array1] float64 C-layout storage.

    The storage convention for the hot-kernel layer: buffers live outside
    the OCaml heap (GC never scans or moves them) and inner loops run
    bounds-check-free under audited [@@lint.hotpath] scopes. Public module
    boundaries in the rest of the repo stay on {!Vec.t} ([float array]);
    cross into [Bvec] storage through the explicit shims
    ({!of_array}/{!to_array}/{!blit_from_array}/{!blit_to_array}) or,
    copy-free, through the mixed-operand kernels ([*_a] variants) that read
    one side directly from a float array.

    Every kernel performs its floating-point operations in exactly the
    same order as the boxed {!Vec} counterpart, so results are
    bit-identical — test/test_la.ml asserts this across sizes. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Zero-initialized, matching [Vec.create] (Bigarray leaves fresh buffers
    uninitialized; this fills them). *)
val create : int -> t

val dim : t -> int
val get : t -> int -> float
val set : t -> int -> float -> unit
val fill : t -> float -> unit

(** {1 Boundary shims} *)

val of_array : float array -> t
val to_array : t -> float array

(** [blit_from_array a v] copies [a] into [v]; dimensions must match. *)
val blit_from_array : float array -> t -> unit

(** [blit_to_array v a] copies [v] into [a]; dimensions must match. *)
val blit_to_array : t -> float array -> unit

val copy : t -> t

(** [blit src dst] copies [src] into [dst]; dimensions must match. *)
val blit : t -> t -> unit

(** {1 BLAS-1 kernels}

    The [*_a] variants take one operand as a plain [float array] — the
    shape of a black-box [apply] result — avoiding a conversion copy. *)

val dot : t -> t -> float
val dot_a : t -> float array -> float

(** [axpy ~alpha x y] does [y <- y + alpha * x] in place. *)
val axpy : alpha:float -> t -> t -> unit

val axpy_a : alpha:float -> float array -> t -> unit
val scale_inplace : float -> t -> unit

(** [xpby ~beta z p] does [p <- z + beta * p] in place — the CG direction
    update, component order identical to the boxed loop. *)
val xpby : beta:float -> t -> t -> unit

val xpby_a : beta:float -> float array -> t -> unit

(** [xpby_into_array ~beta z p] does [p <- z + beta * p] with the
    direction [p] as a plain array (the boundary-crossing side). *)
val xpby_into_array : beta:float -> t -> float array -> unit

(** [sub_arrays_into a b dst] does [dst <- a - b]. *)
val sub_arrays_into : float array -> float array -> t -> unit

val norm2 : t -> float
