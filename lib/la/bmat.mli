(** Dense row-major matrix kernels on [Bigarray.Array2] float64 C-layout
    storage — the matrix side of the hot-kernel layer (see {!Bvec}).

    [gemv]/[gemv_t] accumulate in exactly the same operation order as the
    boxed {!Mat} kernels, so products are bit-identical; convert a matrix
    once with {!of_mat} and reuse the handle for repeated products. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

(** Zero-initialized. *)
val create : int -> int -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val of_mat : Mat.t -> t
val to_mat : t -> Mat.t

(** [gemv m x = m * x], bit-identical to [Mat.gemv]. *)
val gemv : t -> Vec.t -> Vec.t

(** [gemv_t m x = m' * x] without forming the transpose, bit-identical to
    [Mat.gemv_t] (including its exact-zero input skip). *)
val gemv_t : t -> Vec.t -> Vec.t
