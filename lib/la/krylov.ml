(* Preconditioned conjugate gradient.

   Both substrate solvers are Krylov methods on a symmetric positive
   (semi-)definite operator given as a black box (thesis §2.2.2): the
   finite-difference grid Laplacian with a fast-Poisson or incomplete-Cholesky
   preconditioner, and the eigenfunction solver's contact-panel operator.
   The implementation is the standard PCG recurrence that only needs
   applications of M^{-1}, not M^{-1/2} (Golub & Van Loan §11.5).

   [cg] keeps the iterate x and residual r in unboxed [Bvec] storage and
   the search direction p as a plain float array: p is the one vector
   that crosses the black-box boundary every iteration (it is the
   argument of [apply]), so keeping it boxed makes that crossing free —
   no per-iteration conversion copy — while the mixed-operand [Bvec]
   kernels ([axpy_a], [xpby_into_array]) read it in place. Relative to
   the boxed reference the per-iteration work drops three vector passes
   and one allocation: with no preconditioner z is r (the identity
   "preconditioner" of the boxed recurrence was a per-iteration
   [Vec.copy]; [dot r z] = [dot r r] and [z.(i) + beta * p.(i)] =
   [r.(i) + beta * p.(i)] on the alias), and the residual-norm and rz
   reductions collapse into ONE dot product since
   [norm2 r = sqrt (dot r r)] exactly. Every kernel call preserves the
   boxed operation order, so results are bit-identical to [cg_boxed] —
   the original float-array implementation, kept as the reference for
   the equivalence tests in test/test_la.ml and the kernels bench. *)

type result = {
  x : Vec.t;
  iterations : int;
  converged : bool;
  breakdown : bool;
  residual_norm : float;
  recurrence_residual : float;
  residual_mismatch : bool;
}

type stats = {
  mutable solves : int;
  mutable total_iterations : int;
  mutable breakdowns : int;
}

let make_stats () = { solves = 0; total_iterations = 0; breakdowns = 0 }

let average_iterations s =
  if s.solves = 0 then 0.0 else float_of_int s.total_iterations /. float_of_int s.solves

(* Fold one stats record into another. Parallel batched solves give each
   concurrent solve its own stats record (the fields are plain mutable ints)
   and merge them back on the caller once the batch completes. *)
let merge_stats ~into s =
  into.solves <- into.solves + s.solves;
  into.total_iterations <- into.total_iterations + s.total_iterations;
  into.breakdowns <- into.breakdowns + s.breakdowns

let cg_span = "krylov.cg"
let iterations_dist = Trace.dist "krylov.iterations"
let breakdown_counter = Trace.counter "krylov.breakdowns"
let mismatch_counter = Trace.counter "krylov.residual_mismatches"

let cg ?precond ?(tol = 1e-9) ?(max_iter = 10_000) ?x0 ?stats ~apply b =
  Trace.with_span cg_span (fun () ->
  let n = Array.length b in
  let x = match x0 with Some x -> Bvec.of_array x | None -> Bvec.create n in
  let r = Bvec.create n in
  (* [apply] receives the solver's working direction vector directly
     (exactly as the boxed reference always did): it is read-only and
     only valid for the duration of the call. Results of [apply] are
     consumed before the next call, so callbacks may reuse their own
     output buffer (see the .mli contract). *)
  Bvec.sub_arrays_into b (apply (Bvec.to_array x)) r;
  let bnorm = Vec.norm2 b in
  let threshold = if bnorm > 0.0 then tol *. bnorm else 1e-300 in
  (* With a preconditioner, z crosses the boundary as a fresh array (the
     callback may retain it, as the boxed reference allowed); without one,
     z aliases r and the rz reduction doubles as the residual norm. *)
  let z0 = match precond with Some f -> Some (f (Bvec.to_array r)) | None -> None in
  let p = match z0 with Some z -> Vec.copy z | None -> Bvec.to_array r in
  let rz = ref (match z0 with Some z -> Bvec.dot_a r z | None -> Bvec.dot r r) in
  let iterations = ref 0 in
  let rnorm = ref (match z0 with Some _ -> Bvec.norm2 r | None -> sqrt !rz) in
  let converged = ref (!rnorm <= threshold) in
  let breakdown = ref false in
  while (not !converged) && (not !breakdown) && !iterations < max_iter do
    incr iterations;
    let ap = apply p in
    let pap = Vec.dot p ap in
    if pap <= 0.0 then
      (* Operator not positive definite along p (or exact convergence in
         exact arithmetic). The direction cannot be used — repeating it
         would divide by ~0 and every further iteration would reuse the
         same bad p — so stop immediately and flag the breakdown. The
         stale iterate is accepted only at a 10x relaxed threshold
         (decided below against the *true* residual, recomputed on this
         exit path), and callers can now see that this happened instead
         of mistaking it for ordinary convergence. *)
      breakdown := true
    else begin
      let alpha = !rz /. pap in
      Bvec.axpy_a ~alpha p x;
      Bvec.axpy_a ~alpha:(-.alpha) ap r;
      match precond with
      | Some f ->
        rnorm := Bvec.norm2 r;
        if !rnorm <= threshold then converged := true
        else begin
          let z = f (Bvec.to_array r) in
          let rz' = Bvec.dot_a r z in
          let beta = rz' /. !rz in
          rz := rz';
          for i = 0 to n - 1 do
            p.(i) <- z.(i) +. (beta *. p.(i))
          done
        end
      | None ->
        (* One reduction serves both exits: [sqrt d] is bitwise
           [norm2 r], and [d] is the [dot r z] of the boxed recurrence
           (z = copy of r). The boxed reference sweeps r three times
           here (norm2, copy, dot); this sweeps once. *)
        let d = Bvec.dot r r in
        rnorm := sqrt d;
        if !rnorm <= threshold then converged := true
        else begin
          let beta = d /. !rz in
          rz := d;
          Bvec.xpby_into_array ~beta r p
        end
    end
  done;
  (* Exit diagnostics. On the happy path the recurrence residual just
     crossed the threshold and is trusted as-is. After a breakdown or a
     max-iteration exit the recurrence value can drift arbitrarily far
     from ||b - A x|| (the recurrence keeps subtracting alpha*Ap from a
     stale r), so recompute the true residual — one extra apply, on the
     failure path only — and report *that* as [residual_norm]. A >10x
     disagreement between the two is flagged: it means the recurrence
     itself lost accuracy and iteration counts should be distrusted. *)
  let recurrence_residual = !rnorm in
  let residual_norm, residual_mismatch =
    if !converged && not !breakdown then (recurrence_residual, false)
    else begin
      let true_norm = Vec.norm2 (Vec.sub b (apply (Bvec.to_array x))) in
      let mismatch =
        true_norm > 10.0 *. recurrence_residual || recurrence_residual > 10.0 *. true_norm
      in
      (true_norm, mismatch)
    end
  in
  (* The relaxed breakdown acceptance now judges the trustworthy number. *)
  if !breakdown then converged := residual_norm <= threshold *. 10.0;
  (match stats with
  | Some s ->
    s.solves <- s.solves + 1;
    s.total_iterations <- s.total_iterations + !iterations;
    if !breakdown then s.breakdowns <- s.breakdowns + 1
  | None -> ());
  Trace.observe iterations_dist (float_of_int !iterations);
  if !breakdown then Trace.incr breakdown_counter;
  if residual_mismatch then Trace.incr mismatch_counter;
  {
    x = Bvec.to_array x;
    iterations = !iterations;
    converged = !converged;
    breakdown = !breakdown;
    residual_norm;
    recurrence_residual;
    residual_mismatch;
  })

(* The original boxed implementation, byte for byte the same recurrence on
   plain float arrays. Kept as the reference the Bigarray [cg] must match
   bitwise (test/test_la.ml) and as the baseline side of the kernels bench.
   Not trace-instrumented: bench comparisons against [cg] should measure
   storage, not span overhead. *)
let cg_boxed ?precond ?(tol = 1e-9) ?(max_iter = 10_000) ?x0 ?stats ~apply b =
  let n = Array.length b in
  let precond = match precond with Some p -> p | None -> Vec.copy in
  let x = match x0 with Some x -> Vec.copy x | None -> Vec.create n in
  let r = Vec.sub b (apply x) in
  let bnorm = Vec.norm2 b in
  let threshold = if bnorm > 0.0 then tol *. bnorm else 1e-300 in
  let z = precond r in
  let p = Vec.copy z in
  let rz = ref (Vec.dot r z) in
  let iterations = ref 0 in
  let rnorm = ref (Vec.norm2 r) in
  let converged = ref (!rnorm <= threshold) in
  let breakdown = ref false in
  while (not !converged) && (not !breakdown) && !iterations < max_iter do
    incr iterations;
    let ap = apply p in
    let pap = Vec.dot p ap in
    if pap <= 0.0 then breakdown := true
    else begin
      let alpha = !rz /. pap in
      Vec.axpy ~alpha p x;
      Vec.axpy ~alpha:(-.alpha) ap r;
      rnorm := Vec.norm2 r;
      if !rnorm <= threshold then converged := true
      else begin
        let z = precond r in
        let rz' = Vec.dot r z in
        let beta = rz' /. !rz in
        rz := rz';
        for i = 0 to n - 1 do
          p.(i) <- z.(i) +. (beta *. p.(i))
        done
      end
    end
  done;
  let recurrence_residual = !rnorm in
  let residual_norm, residual_mismatch =
    if !converged && not !breakdown then (recurrence_residual, false)
    else begin
      let true_norm = Vec.norm2 (Vec.sub b (apply x)) in
      let mismatch =
        true_norm > 10.0 *. recurrence_residual || recurrence_residual > 10.0 *. true_norm
      in
      (true_norm, mismatch)
    end
  in
  if !breakdown then converged := residual_norm <= threshold *. 10.0;
  (match stats with
  | Some s ->
    s.solves <- s.solves + 1;
    s.total_iterations <- s.total_iterations + !iterations;
    if !breakdown then s.breakdowns <- s.breakdowns + 1
  | None -> ());
  {
    x;
    iterations = !iterations;
    converged = !converged;
    breakdown = !breakdown;
    residual_norm;
    recurrence_residual;
    residual_mismatch;
  }
