(* Dense row-major matrix kernels on Bigarray storage.

   The Array2 counterpart of [Bvec]: float64 C-layout storage kept off the
   OCaml heap, bounds-check-free inner loops under [@@lint.hotpath], and
   bit-identical accumulation order against the boxed [Mat] kernels
   (per-row left-to-right in [gemv]; per-input-row scatter with the same
   exact-zero skip in [gemv_t]). Boundaries stay on [Mat.t]/[Vec.t];
   convert once with [of_mat] and keep the [Bmat.t] for repeated
   products. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

let create rows cols : t =
  if rows < 0 || cols < 0 then invalid_arg "Bmat.create: negative dimension";
  let m = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout rows cols in
  Bigarray.Array2.fill m 0.0;
  m

let rows (m : t) = Bigarray.Array2.dim1 m
let cols (m : t) = Bigarray.Array2.dim2 m
let get (m : t) i j = Bigarray.Array2.get m i j
let set (m : t) i j x = Bigarray.Array2.set m i j x

let of_mat (a : Mat.t) : t =
  let r = Mat.rows a and c = Mat.cols a in
  let m = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      Bigarray.Array2.unsafe_set m i j (Mat.get a i j)
    done
  done;
  m
[@@lint.hotpath "i, j bounded by the loops over Mat.rows/Mat.cols = dim1/dim2"]

let to_mat (m : t) : Mat.t = Mat.init (rows m) (cols m) (fun i j -> get m i j)

(* y = A * x: per-row accumulator, left-to-right — same order as
   [Mat.gemv]. *)
let gemv (m : t) (x : Vec.t) : Vec.t =
  if cols m <> Array.length x then invalid_arg "Bmat.gemv: dimension mismatch";
  let r = rows m and c = cols m in
  let y = Array.make r 0.0 in
  for i = 0 to r - 1 do
    let acc = ref 0.0 in
    for j = 0 to c - 1 do
      acc := !acc +. (Bigarray.Array2.unsafe_get m i j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set y i !acc
  done;
  y
[@@lint.hotpath "length x = cols checked on entry; i, j bounded by the loops"]

(* y = A' * x without forming the transpose; exact-zero skip as in
   [Mat.gemv_t] (pure work saving — and it preserves -0.0 outputs that a
   [+. 0.0 *. a] would flip to +0.0). *)
let gemv_t (m : t) (x : Vec.t) : Vec.t =
  if rows m <> Array.length x then invalid_arg "Bmat.gemv_t: dimension mismatch";
  let r = rows m and c = cols m in
  let y = Array.make c 0.0 in
  for i = 0 to r - 1 do
    let xi = Array.unsafe_get x i in
    if not (Float.equal xi 0.0) then
      for j = 0 to c - 1 do
        Array.unsafe_set y j (Array.unsafe_get y j +. (Bigarray.Array2.unsafe_get m i j *. xi))
      done
  done;
  y
[@@lint.hotpath "length x = rows checked on entry; i, j bounded by the loops"]
