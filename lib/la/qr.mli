(** Householder QR factorization with optional rank-revealing column pivoting. *)

type t = {
  q : Mat.t;  (** Full m x m orthogonal factor. *)
  r : Mat.t;  (** m x n upper-triangular (trapezoidal) factor. *)
  perm : int array;  (** Column permutation: [a perm = q r]. Identity if unpivoted. *)
  rank : int;  (** Numerical rank detected from the diagonal of [r]. *)
}

(** [decomp ?pivot ?tol a] factors [a] (with column pivoting when [pivot]).
    [tol] is the relative threshold on diagonal entries of R used for rank
    detection. *)
val decomp : ?pivot:bool -> ?tol:float -> Mat.t -> t

(** Rebuild the original matrix from a factorization (for testing). *)
val reconstruct : t -> Mat.t

(** [range_split a] returns orthonormal bases [(range, complement)] of the
    column space of [a] and of its orthogonal complement in R^m. This is the
    V/W split of thesis eq. (3.14) when applied to the transposed moments
    matrix. *)
val range_split : ?tol:float -> Mat.t -> Mat.t * Mat.t

(** Orthonormal basis of the orthogonal complement of the columns of [a]. *)
val complement : ?tol:float -> Mat.t -> Mat.t
