(* Deterministic splitmix64 RNG with Gaussian sampling.

   All random choices in the library (sample vectors for the low-rank method,
   randomized layouts, test inputs) go through this module so that every run
   is reproducible from a seed. *)

type t = { mutable state : int64; mutable cached_gaussian : float option }

let create seed = { state = Int64.of_int seed; cached_gaussian = None }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, 1): use the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

(* Standard normal via Box-Muller; one draw is cached. *)
let gaussian t =
  match t.cached_gaussian with
  | Some g ->
    t.cached_gaussian <- None;
    g
  | None ->
    let rec draw () =
      let u1 = float t in
      if u1 <= 1e-300 then draw () else u1
    in
    let u1 = draw () and u2 = float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.cached_gaussian <- Some (r *. sin theta);
    r *. cos theta

let gaussian_array t n = Array.init n (fun _ -> gaussian t)
