(* Unboxed vector kernels on Bigarray storage.

   The kernel layer of the raw-speed pass: float64 C-layout
   [Bigarray.Array1] buffers are GC-quiet (the payload lives outside the
   OCaml heap, so major collections never scan or move it) and admit
   bounds-check-free inner loops. Every public boundary in the repo stays
   on [Vec.t] (= [float array]); callers that migrate a hot loop onto
   [Bvec.t] cross the boundary through the explicit conversion shims below
   ([of_array]/[to_array]/[blit_*]) and through the mixed-operand kernels
   ([dot_a], [axpy_a], ...) that read one side directly from a float array
   without a copy.

   Every kernel accumulates in exactly the same operation order as its
   boxed [Vec] counterpart, so results are bit-identical — the equivalence
   tests in test/test_la.ml and the probe-digest machinery both rely on
   this. Inner loops use [Bigarray.Array1.unsafe_get]/[unsafe_set] under
   [@@lint.hotpath]; each kernel validates dimensions up front. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let dim (v : t) = Bigarray.Array1.dim v

let create n : t =
  (* Array1.create leaves the buffer uninitialized; zero-fill to match
     [Vec.create]. *)
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill v 0.0;
  v

let get (v : t) i = Bigarray.Array1.get v i
let set (v : t) i x = Bigarray.Array1.set v i x
let fill (v : t) x = Bigarray.Array1.fill v x

let check_same_dim_bb (a : t) (b : t) name =
  if dim a <> dim b then
    invalid_arg (Printf.sprintf "Bvec.%s: dimension mismatch (%d vs %d)" name (dim a) (dim b))

let check_same_dim_ba (a : t) (b : float array) name =
  if dim a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Bvec.%s: dimension mismatch (%d vs %d)" name (dim a) (Array.length b))

(* --- boundary shims --------------------------------------------------- *)

let of_array (a : float array) : t =
  let n = Array.length a in
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set v i (Array.unsafe_get a i)
  done;
  v
[@@lint.hotpath "i ranges over 0 .. n - 1 with n = length a = dim v by construction"]

let to_array (v : t) : float array =
  let n = dim v in
  let a = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set a i (Bigarray.Array1.unsafe_get v i)
  done;
  a
[@@lint.hotpath "i ranges over 0 .. n - 1 with n = dim v = length a by construction"]

let blit_from_array (a : float array) (v : t) =
  check_same_dim_ba v a "blit_from_array";
  for i = 0 to dim v - 1 do
    Bigarray.Array1.unsafe_set v i (Array.unsafe_get a i)
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

let blit_to_array (v : t) (a : float array) =
  check_same_dim_ba v a "blit_to_array";
  for i = 0 to dim v - 1 do
    Array.unsafe_set a i (Bigarray.Array1.unsafe_get v i)
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

let copy (v : t) : t =
  let w = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (dim v) in
  Bigarray.Array1.blit v w;
  w

let blit (src : t) (dst : t) =
  check_same_dim_bb src dst "blit";
  Bigarray.Array1.blit src dst

(* --- BLAS-1 kernels --------------------------------------------------- *)

let dot (a : t) (b : t) =
  check_same_dim_bb a b "dot";
  let acc = ref 0.0 in
  for i = 0 to dim a - 1 do
    acc := !acc +. (Bigarray.Array1.unsafe_get a i *. Bigarray.Array1.unsafe_get b i)
  done;
  !acc
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

(* Mixed-operand dot: the [a] side stays a plain float array (e.g. the
   result of a boxed [apply] callback), no copy. Same accumulation order
   as [Vec.dot]. *)
let dot_a (a : t) (b : float array) =
  check_same_dim_ba a b "dot_a";
  let acc = ref 0.0 in
  for i = 0 to dim a - 1 do
    acc := !acc +. (Bigarray.Array1.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

(* y <- y + alpha * x, in place. *)
let axpy ~alpha (x : t) (y : t) =
  check_same_dim_bb x y "axpy";
  for i = 0 to dim x - 1 do
    Bigarray.Array1.unsafe_set y i
      (Bigarray.Array1.unsafe_get y i +. (alpha *. Bigarray.Array1.unsafe_get x i))
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

let axpy_a ~alpha (x : float array) (y : t) =
  check_same_dim_ba y x "axpy_a";
  for i = 0 to dim y - 1 do
    Bigarray.Array1.unsafe_set y i
      (Bigarray.Array1.unsafe_get y i +. (alpha *. Array.unsafe_get x i))
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

let scale_inplace alpha (v : t) =
  for i = 0 to dim v - 1 do
    Bigarray.Array1.unsafe_set v i (alpha *. Bigarray.Array1.unsafe_get v i)
  done
[@@lint.hotpath "i bounded by the loop over dim v"]

(* p <- z + beta * p: the CG direction update, with [z] on either side of
   the storage boundary. Same per-component expression as the boxed loop
   [p.(i) <- z.(i) +. (beta *. p.(i))]. *)
let xpby ~beta (z : t) (p : t) =
  check_same_dim_bb z p "xpby";
  for i = 0 to dim p - 1 do
    Bigarray.Array1.unsafe_set p i
      (Bigarray.Array1.unsafe_get z i +. (beta *. Bigarray.Array1.unsafe_get p i))
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

let xpby_a ~beta (z : float array) (p : t) =
  check_same_dim_ba p z "xpby_a";
  for i = 0 to dim p - 1 do
    Bigarray.Array1.unsafe_set p i
      (Array.unsafe_get z i +. (beta *. Bigarray.Array1.unsafe_get p i))
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

(* p <- z + beta * p with the direction [p] on the boxed side — the shape
   of a CG whose direction vector crosses the black-box boundary every
   iteration and therefore stays a float array. *)
let xpby_into_array ~beta (z : t) (p : float array) =
  check_same_dim_ba z p "xpby_into_array";
  for i = 0 to dim z - 1 do
    Array.unsafe_set p i (Bigarray.Array1.unsafe_get z i +. (beta *. Array.unsafe_get p i))
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

(* dst <- a - b, both plain arrays (residual initialization). *)
let sub_arrays_into (a : float array) (b : float array) (dst : t) =
  check_same_dim_ba dst a "sub_arrays_into";
  check_same_dim_ba dst b "sub_arrays_into";
  for i = 0 to dim dst - 1 do
    Bigarray.Array1.unsafe_set dst i (Array.unsafe_get a i -. Array.unsafe_get b i)
  done
[@@lint.hotpath "equal dimensions checked on entry; i bounded by the loop"]

let norm2 (v : t) = sqrt (dot v v)
