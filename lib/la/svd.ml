(* Singular value decomposition by one-sided Jacobi rotations.

   The sparsification algorithms need thin SVDs of small or tall-thin
   matrices: sampled interaction blocks (n_s x <= 27), moment products
   (6 x <= 24) and the fine-to-coarse recombination matrices
   G(I_p, p) X_p (tall x <= 24). One-sided Jacobi (Hestenes) orthogonalizes
   the columns of a working copy B of A by plane rotations, accumulating them
   into V, so that at convergence B = U Sigma and A = U Sigma V'. It is slow
   for large square matrices but backward-stable and exact enough here, and
   it delivers the full right factor V including the directions of (near-)zero
   singular values, which the algorithms rely on. *)

type t = { u : Mat.t; s : float array; v : Mat.t }

let max_sweeps = 60

(* Core: A is m x n with m >= n assumed beneficial but not required.
   Returns (u : m x n with zero columns where sigma ~ 0, s : n, v : n x n). *)
let decomp_tall a =
  let m = Mat.rows a and n = Mat.cols a in
  let b = Mat.copy a in
  let v = Mat.identity n in
  let eps = 1e-15 in
  let off_threshold norm = eps *. norm in
  let fro = Mat.frobenius a in
  let converged = ref false in
  let sweep = ref 0 in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        (* Gram entries of the column pair (p, q). *)
        let app = ref 0.0 and aqq = ref 0.0 and apq = ref 0.0 in
        for i = 0 to m - 1 do
          let bip = Mat.get b i p and biq = Mat.get b i q in
          app := !app +. (bip *. bip);
          aqq := !aqq +. (biq *. biq);
          apq := !apq +. (bip *. biq)
        done;
        if Float.abs !apq > off_threshold (sqrt (!app *. !aqq)) && Float.abs !apq > eps *. fro *. fro
        then begin
          converged := false;
          (* Jacobi rotation zeroing the (p,q) Gram entry. *)
          let tau = (!aqq -. !app) /. (2.0 *. !apq) in
          let t =
            if tau >= 0.0 then 1.0 /. (tau +. sqrt (1.0 +. (tau *. tau)))
            else 1.0 /. (tau -. sqrt (1.0 +. (tau *. tau)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          for i = 0 to m - 1 do
            let bip = Mat.get b i p and biq = Mat.get b i q in
            Mat.set b i p ((c *. bip) -. (s *. biq));
            Mat.set b i q ((s *. bip) +. (c *. biq))
          done;
          for i = 0 to n - 1 do
            let vip = Mat.get v i p and viq = Mat.get v i q in
            Mat.set v i p ((c *. vip) -. (s *. viq));
            Mat.set v i q ((s *. vip) +. (c *. viq))
          done
        end
      done
    done
  done;
  (* Column norms of B are the singular values. *)
  let s = Array.init n (fun j -> Vec.norm2 (Mat.col b j)) in
  (* Sort singular values descending, permuting the columns of B and V. *)
  let order = Array.init n (fun j -> j) in
  Array.sort (fun i j -> Float.compare s.(j) s.(i)) order;
  let s_sorted = Array.map (fun j -> s.(j)) order in
  let u = Mat.create m n in
  let v_sorted = Mat.create n n in
  let smax = if n = 0 then 0.0 else s_sorted.(0) in
  Array.iteri
    (fun jnew jold ->
      Mat.set_col v_sorted jnew (Mat.col v jold);
      let sigma = s.(jold) in
      if sigma > 1e-14 *. Float.max smax 1e-300 && sigma > 0.0 then
        Mat.set_col u jnew (Vec.scale (1.0 /. sigma) (Mat.col b jold)))
    order;
  { u; s = s_sorted; v = v_sorted }

(* For wide matrices, factor the transpose and swap factors. Note the
   returned [u] then has full row dimension m x m and [v] is n x m (thin). *)
let decomp a =
  if Mat.rows a >= Mat.cols a then decomp_tall a
  else begin
    let { u; s; v } = decomp_tall (Mat.transpose a) in
    { u = v; s; v = u }
  end

let rank ?(tol = 1e-10) { s; _ } =
  if Array.length s = 0 then 0
  else begin
    let smax = s.(0) in
    let r = ref 0 in
    Array.iter (fun sigma -> if sigma > tol *. Float.max smax 1e-300 then incr r) s;
    !r
  end

let reconstruct { u; s; v } =
  let k = Array.length s in
  let us = Mat.init (Mat.rows u) k (fun i j -> Mat.get u i j *. s.(j)) in
  Mat.mul us (Mat.transpose (Mat.sub_matrix v ~row:0 ~col:0 ~rows:(Mat.rows v) ~cols:k))

(* Truncate to the leading singular values passing [keep]. *)
let truncate { u; s; v } ~keep =
  let k = ref 0 in
  Array.iteri (fun i sigma -> if keep i sigma then incr k else ()) s;
  let k = !k in
  {
    u = Mat.sub_matrix u ~row:0 ~col:0 ~rows:(Mat.rows u) ~cols:k;
    s = Array.sub s 0 k;
    v = Mat.sub_matrix v ~row:0 ~col:0 ~rows:(Mat.rows v) ~cols:k;
  }
