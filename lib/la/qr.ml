(* Householder QR factorization with optional column pivoting.

   The wavelet basis construction (thesis eq. (3.14)-(3.16)) needs, for a
   moments matrix M, an orthonormal basis of the row space of M and of its
   orthogonal complement. The thesis obtains these from an SVD; a
   rank-revealing QR of M' yields the same split: if M' P = Q R with rank r,
   the first r columns of the full Q span range(M') and the rest span its
   complement, i.e. the null space of M. *)

type t = { q : Mat.t; r : Mat.t; perm : int array; rank : int }

(* Apply the Householder reflector defined by [v] (of length m - k, acting on
   rows k..m-1) to column j of [a]. *)
let apply_reflector a v k j =
  let m = Mat.rows a in
  let dot = ref 0.0 in
  for i = k to m - 1 do
    dot := !dot +. (v.(i - k) *. Mat.get a i j)
  done;
  let s = 2.0 *. !dot in
  for i = k to m - 1 do
    Mat.update a i j (fun x -> x -. (s *. v.(i - k)))
  done

let col_norm2_from a j k =
  let m = Mat.rows a in
  let acc = ref 0.0 in
  for i = k to m - 1 do
    let x = Mat.get a i j in
    acc := !acc +. (x *. x)
  done;
  !acc

let swap_cols a j1 j2 =
  if j1 <> j2 then
    for i = 0 to Mat.rows a - 1 do
      let t = Mat.get a i j1 in
      Mat.set a i j1 (Mat.get a i j2);
      Mat.set a i j2 t
    done

(* Full decomposition: A P = Q R with Q an m x m orthogonal matrix.
   [pivot] enables greedy column pivoting (largest remaining column norm
   first), which makes the diagonal of R rank-revealing. [tol] is the
   relative threshold on |R_kk| below which columns count as dependent. *)
let decomp ?(pivot = false) ?(tol = 1e-12) a0 =
  let m = Mat.rows a0 and n = Mat.cols a0 in
  let a = Mat.copy a0 in
  let q = Mat.identity m in
  let perm = Array.init n (fun j -> j) in
  let steps = min m n in
  let reflectors = ref [] in
  let rank = ref 0 in
  let r00 = ref 0.0 in
  (try
     for k = 0 to steps - 1 do
       if pivot then begin
         (* Greedy pivot: move the column with the largest trailing norm to k. *)
         let best = ref k and best_norm = ref (col_norm2_from a k k) in
         for j = k + 1 to n - 1 do
           let nj = col_norm2_from a j k in
           if nj > !best_norm then begin
             best := j;
             best_norm := nj
           end
         done;
         swap_cols a k !best;
         let t = perm.(k) in
         perm.(k) <- perm.(!best);
         perm.(!best) <- t
       end;
       let alpha = sqrt (col_norm2_from a k k) in
       if k = 0 then r00 := alpha;
       if alpha <= tol *. Float.max !r00 1e-300 then raise Exit;
       let x0 = Mat.get a k k in
       let sign = if x0 >= 0.0 then 1.0 else -1.0 in
       let v = Array.init (m - k) (fun i -> Mat.get a (k + i) k) in
       v.(0) <- v.(0) +. (sign *. alpha);
       let vnorm = Vec.norm2 v in
       if vnorm > 0.0 then begin
         Vec.scale_inplace (1.0 /. vnorm) v;
         for j = k to n - 1 do
           apply_reflector a v k j
         done;
         reflectors := (k, v) :: !reflectors
       end;
       (* Clean the annihilated subdiagonal entries exactly. *)
       for i = k + 1 to m - 1 do
         Mat.set a i k 0.0
       done;
       incr rank
     done
   with Exit -> ());
  (* Accumulate Q = H_0 H_1 ... H_{s-1} by applying reflectors to I in
     reverse order. *)
  List.iter
    (fun (k, v) ->
      for j = 0 to m - 1 do
        apply_reflector q v k j
      done)
    !reflectors;
  (* q currently holds (H_{s-1} ... H_0)' applied column-wise; since each H is
     symmetric, applying them in the recorded (reverse) order to I builds
     H_0 ... H_{s-1} = Q directly. *)
  { q; r = a; perm; rank = !rank }

let reconstruct { q; r; perm; _ } =
  let qr = Mat.mul q r in
  (* Undo the column permutation: column perm.(j) of the result is column j of QR. *)
  let n = Mat.cols r in
  let out = Mat.create (Mat.rows qr) n in
  for j = 0 to n - 1 do
    Mat.set_col out perm.(j) (Mat.col qr j)
  done;
  out

(* Split R^m into an orthonormal basis of range(A) and of its orthogonal
   complement, where A is m x n. Returns (range_basis, complement_basis). *)
let range_split ?(tol = 1e-10) a =
  let { q; rank; _ } = decomp ~pivot:true ~tol a in
  let m = Mat.rows a in
  let range = if rank = 0 then Mat.create m 0 else Mat.sub_matrix q ~row:0 ~col:0 ~rows:m ~cols:rank in
  let compl =
    if rank = m then Mat.create m 0 else Mat.sub_matrix q ~row:0 ~col:rank ~rows:m ~cols:(m - rank)
  in
  (range, compl)

(* Orthonormal basis for the orthogonal complement of the column span of A. *)
let complement ?tol a = snd (range_split ?tol a)
