(** Singular value decomposition by one-sided Jacobi rotations.

    For a matrix [a] of size m x n, [decomp a = { u; s; v }] satisfies
    [a = u * diag s * v'] with singular values sorted descending. When
    [m >= n], [u] is m x n and [v] is the *full* n x n right factor,
    including the directions of (near-)zero singular values — the
    sparsification algorithms split those columns into "slow-decaying" and
    "fast-decaying" bases (thesis eqs. (3.15), (4.19), (4.27)). Columns of [u]
    whose singular value is numerically zero are left as zero vectors. When
    [m < n] the transpose is factored, so [u] is the full m x m factor and
    [v] is n x m. *)

type t = { u : Mat.t; s : float array; v : Mat.t }

val decomp : Mat.t -> t

(** Number of singular values above [tol] relative to the largest. *)
val rank : ?tol:float -> t -> int

(** Rebuild [u * diag s * v'] (for testing). *)
val reconstruct : t -> Mat.t

(** Keep only the singular triplets for which [keep index sigma] holds; the
    predicate is applied to the descending-sorted values, and the kept set
    must be a prefix for the result to be meaningful. *)
val truncate : t -> keep:(int -> float -> bool) -> t
