(** Dense row-major matrices. *)

type t

val create : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val update : t -> int -> int -> (float -> float) -> unit
val copy : t -> t
val identity : int -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val set_row : t -> int -> Vec.t -> unit
val set_col : t -> int -> Vec.t -> unit
val transpose : t -> t
val map : (float -> float) -> t -> t
val scale : float -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

(** Matrix product. *)
val mul : t -> t -> t

(** [gemv a x] is [a * x]. *)
val gemv : t -> Vec.t -> Vec.t

(** [gemv_t a x] is [transpose a * x], computed without forming the transpose. *)
val gemv_t : t -> Vec.t -> Vec.t

val sub_matrix : t -> row:int -> col:int -> rows:int -> cols:int -> t

(** [select m ~row_idx ~col_idx] extracts the submatrix [m(row_idx, col_idx)],
    the MATLAB-style slicing the thesis uses for interaction blocks G(d, s). *)
val select : t -> row_idx:int array -> col_idx:int array -> t

val select_cols : t -> int array -> t
val select_rows : t -> int array -> t
val hcat : t -> t -> t
val vcat : t -> t -> t
val hcat_list : t list -> t

(** Build a matrix from a non-empty list of equal-length column vectors. *)
val of_cols : Vec.t list -> t

val frobenius : t -> float
val max_abs : t -> float
val is_symmetric : ?tol:float -> t -> bool
val approx_equal : ?tol:float -> t -> t -> bool
val random : Rng.t -> int -> int -> t
val pp : Format.formatter -> t -> unit
