(** Dense vectors (plain [float array]) with BLAS-1 style operations. *)

type t = float array

val create : int -> t
val copy : t -> t
val init : int -> (int -> float) -> t
val dim : t -> int
val dot : t -> t -> float

(** [axpy ~alpha x y] performs [y <- y + alpha * x] in place. *)
val axpy : alpha:float -> t -> t -> unit

val scale : float -> t -> t
val scale_inplace : float -> t -> unit
val add : t -> t -> t
val sub : t -> t -> t
val add_inplace : t -> t -> unit
val fill : t -> float -> unit
val norm2 : t -> float
val norm_inf : t -> float
val sum : t -> float

(** Unit 2-norm copy; the zero vector is returned unchanged. *)
val normalize : t -> t

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
