(** Deterministic splitmix64 random number generator.

    Used for the low-rank method's random sample vectors (thesis §4.3.3,
    "We actually choose the sample vector ... randomly") and for randomized
    tests, with reproducibility from a fixed seed. *)

type t

(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)
val create : int -> t

(** Uniform draw in [0, 1). *)
val float : t -> float

(** [int t bound] draws uniformly from [0, bound). *)
val int : t -> int -> int

(** Standard normal draw (Box-Muller). *)
val gaussian : t -> float

(** [gaussian_array t n] is an array of [n] independent standard normals. *)
val gaussian_array : t -> int -> float array
