(** Iterative radix-2 complex FFT on separate re/im arrays. *)

val is_power_of_two : int -> bool

(** In-place forward DFT, kernel exp(-2 pi i k n / N). Length must be a power
    of two. *)
val forward : float array -> float array -> unit

(** In-place inverse DFT including the 1/N scaling. *)
val inverse : float array -> float array -> unit

(** Direct O(n^2) DFT for testing; [sign = -1] matches [forward]. *)
val dft_naive : sign:int -> float array -> float array -> float array * float array
