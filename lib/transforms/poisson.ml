(* Fast direct solver for the layered grid-of-resistors Laplacian with
   uniform boundary conditions on each face (thesis §2.2.2,
   "Fast-solver preconditioners").

   The substrate grid is nx x ny x nz, cell-centered, spacing h. In-plane
   resistors in z-plane k have conductance sigma.(k) * h; vertical resistors
   crossing between planes combine the two half-lengths in series
   (thesis eq. (2.8) with the boundary halfway, p = 1/2). Sidewalls are
   Neumann. The top face carries a uniform Dirichlet coupling scaled by
   [top_fraction] (p = 1 pure Dirichlet, p = 0 pure Neumann, and the
   area-weighted intermediate choices of Table 2.1); the bottom face is
   Dirichlet when [bottom_contact] (grounded backplane) and Neumann
   otherwise.

   Because the in-plane coupling in plane k is sigma.(k) * h * (Lx + Ly) with
   the same Neumann Laplacians in every plane, a 2-D DCT-II per plane
   decouples the system into one tridiagonal solve in z per (kx, ky) mode. *)

type t = {
  nx : int;
  ny : int;
  nz : int;
  h : float;
  sigma : float array;  (* per z-plane conductivity, plane 0 = top *)
  gz : float array;  (* vertical resistor conductances, length nz - 1 *)
  g_top : float;  (* extra diagonal on plane 0 from the top Dirichlet coupling *)
  g_bottom : float;  (* extra diagonal on plane nz-1 from a backplane contact *)
}

let index t ~ix ~iy ~iz = ix + (t.nx * (iy + (t.ny * iz)))
let size t = t.nx * t.ny * t.nz

(* Series combination of two half-length resistors with conductances
   2 sigma_a h and 2 sigma_b h. *)
let series_conductance h sigma_a sigma_b =
  2.0 *. h *. sigma_a *. sigma_b /. (sigma_a +. sigma_b)

let create ?gz ~nx ~ny ~nz ~h ~sigma ~top_fraction ~bottom_contact () =
  if Array.length sigma <> nz then invalid_arg "Poisson.create: sigma must have one entry per z-plane";
  if nx <= 0 || ny <= 0 || nz <= 0 then invalid_arg "Poisson.create: empty grid";
  if top_fraction < 0.0 || top_fraction > 1.0 then
    invalid_arg "Poisson.create: top_fraction must be in [0, 1]";
  let gz =
    match gz with
    | Some g ->
      if Array.length g <> nz - 1 then invalid_arg "Poisson.create: gz must have nz - 1 entries";
      g
    | None -> Array.init (nz - 1) (fun k -> series_conductance h sigma.(k) sigma.(k + 1))
  in
  (* The eliminated Dirichlet node sits a full spacing h above the top plane
     (first placement choice of Fig 2-4), giving a length-h resistor in the
     top conductivity. *)
  let g_top = top_fraction *. sigma.(0) *. h in
  (* A backplane contact is on the bottom face, half a spacing below the last
     plane: a half-length resistor. *)
  let g_bottom = if bottom_contact then 2.0 *. sigma.(nz - 1) *. h else 0.0 in
  { nx; ny; nz; h; sigma; gz; g_top; g_bottom }

(* Apply the model operator M (for testing and for preconditioner
   verification): node currents from node voltages. *)
let apply t (v : float array) : float array =
  if Array.length v <> size t then invalid_arg "Poisson.apply: dimension mismatch";
  let out = Array.make (size t) 0.0 in
  let { nx; ny; nz; h; sigma; gz; g_top; g_bottom } = t in
  for iz = 0 to nz - 1 do
    let g_plane = sigma.(iz) *. h in
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let i = index t ~ix ~iy ~iz in
        let acc = ref 0.0 in
        let couple g j = acc := !acc +. (g *. (v.(i) -. v.(j))) in
        if ix > 0 then couple g_plane (index t ~ix:(ix - 1) ~iy ~iz);
        if ix < nx - 1 then couple g_plane (index t ~ix:(ix + 1) ~iy ~iz);
        if iy > 0 then couple g_plane (index t ~ix ~iy:(iy - 1) ~iz);
        if iy < ny - 1 then couple g_plane (index t ~ix ~iy:(iy + 1) ~iz);
        if iz > 0 then couple gz.(iz - 1) (index t ~ix ~iy ~iz:(iz - 1));
        if iz < nz - 1 then couple gz.(iz) (index t ~ix ~iy ~iz:(iz + 1));
        if iz = 0 then acc := !acc +. (g_top *. v.(i));
        if iz = nz - 1 then acc := !acc +. (g_bottom *. v.(i));
        out.(i) <- !acc
      done
    done
  done;
  out

(* Direct solve M x = b via DCT in x, y and tridiagonal solves in z.
   When the operator is singular (pure Neumann everywhere), the (0,0) mode is
   regularized with a small diagonal shift; the result is then a valid
   preconditioner though not an exact solve. *)
let solve t (b : float array) : float array =
  if Array.length b <> size t then invalid_arg "Poisson.solve: dimension mismatch";
  let { nx; ny; nz; h; sigma; gz; g_top; g_bottom } = t in
  let plane = nx * ny in
  (* Forward 2-D DCT of every z-plane. *)
  let hat = Array.make (size t) 0.0 in
  for iz = 0 to nz - 1 do
    let slice = Array.sub b (iz * plane) plane in
    let s = Dct.dct_ii_2d ~nx ~ny slice in
    Array.blit s 0 hat (iz * plane) plane
  done;
  (* Exact test: boundary conductances are 0.0 only when the caller asked
     for pure-Neumann walls, which is the one genuinely singular case. *)
  let singular = Float.equal g_top 0.0 && Float.equal g_bottom 0.0 in
  (* One tridiagonal system in z per (kx, ky) mode. *)
  let lower = Array.make nz 0.0 and diag = Array.make nz 0.0 in
  let upper = Array.make nz 0.0 and rhs = Array.make nz 0.0 in
  for ky = 0 to ny - 1 do
    let ly = Dct.neumann_laplacian_eigenvalue ~n:ny ~k:ky in
    for kx = 0 to nx - 1 do
      let lx = Dct.neumann_laplacian_eigenvalue ~n:nx ~k:kx in
      for iz = 0 to nz - 1 do
        let d = ref (sigma.(iz) *. h *. (lx +. ly)) in
        if iz > 0 then begin
          d := !d +. gz.(iz - 1);
          lower.(iz) <- -.gz.(iz - 1)
        end
        else lower.(iz) <- 0.0;
        if iz < nz - 1 then begin
          d := !d +. gz.(iz);
          upper.(iz) <- -.gz.(iz)
        end
        else upper.(iz) <- 0.0;
        if iz = 0 then d := !d +. g_top;
        if iz = nz - 1 then d := !d +. g_bottom;
        if singular && kx = 0 && ky = 0 then d := !d +. (1e-12 *. sigma.(iz) *. h);
        diag.(iz) <- !d;
        rhs.(iz) <- hat.((iz * plane) + (ky * nx) + kx)
      done;
      let x = La.Tridiag.solve ~lower ~diag ~upper ~rhs in
      for iz = 0 to nz - 1 do
        hat.((iz * plane) + (ky * nx) + kx) <- x.(iz)
      done
    done
  done;
  (* Inverse 2-D DCT of every z-plane. *)
  let out = Array.make (size t) 0.0 in
  for iz = 0 to nz - 1 do
    let slice = Array.sub hat (iz * plane) plane in
    let s = Dct.dct_iii_2d ~nx ~ny slice in
    Array.blit s 0 out (iz * plane) plane
  done;
  out
