(* Precomputed FFT/DCT plans.

   The substrate solvers apply thousands of DCTs of the same length (every
   PCG iteration transforms every grid plane), so the bit-reversal
   permutation, the per-stage twiddle factors and the DCT boundary twist are
   computed once per length and cached. *)

type t = {
  n : int;
  rev : int array;  (* bit-reversal permutation *)
  (* Twiddles for each butterfly stage: stage s handles blocks of length
     2^(s+1) and needs 2^s factors exp(-i pi k / 2^s). *)
  stage_wr : float array array;
  stage_wi : float array array;
  (* DCT-II twist factors exp(-i pi k / 2n). *)
  twist_c : float array;
  twist_s : float array;
}

let create n =
  if not (Fft.is_power_of_two n) then invalid_arg "Plan.create: length must be a power of two";
  let bits =
    let rec go b m = if m = 1 then b else go (b + 1) (m lsr 1) in
    go 0 n
  in
  let rev = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    rev.(i) <- !r
  done;
  let stage_wr = Array.make bits [||] and stage_wi = Array.make bits [||] in
  for s = 0 to bits - 1 do
    let half = 1 lsl s in
    stage_wr.(s) <- Array.init half (fun k -> cos (-.Float.pi *. float_of_int k /. float_of_int half));
    stage_wi.(s) <- Array.init half (fun k -> sin (-.Float.pi *. float_of_int k /. float_of_int half))
  done;
  let twist_c = Array.init n (fun k -> cos (Float.pi *. float_of_int k /. float_of_int (2 * n))) in
  let twist_s = Array.init n (fun k -> sin (Float.pi *. float_of_int k /. float_of_int (2 * n))) in
  { n; rev; stage_wr; stage_wi; twist_c; twist_s }

(* Cache plans per length; substrate grids use at most a handful of sizes.
   The cache is consulted from every domain of a parallel batched solve, so
   lookups are serialized; a plan is immutable once built and safe to share. *)
let cache : (int, t) Hashtbl.t =
  Hashtbl.create 8
[@@lint.allow domain_safety
  "every access goes through Mutex.protect cache_mutex in [get]; plans are immutable once built"]

let cache_mutex = Mutex.create ()

let get n =
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt cache n with
      | Some p -> p
      | None ->
        let p = create n in
        Hashtbl.replace cache n p;
        p)

(* In-place FFT using the plan's tables; [sign] as in Fft.transform. *)
let fft t ~sign (re : float array) (im : float array) =
  let n = t.n in
  (* Bit-reversal permutation. *)
  for i = 0 to n - 1 do
    let j = t.rev.(i) in
    if i < j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(j);
      im.(i) <- im.(j);
      re.(j) <- tr;
      im.(j) <- ti
    end
  done;
  let stages = Array.length t.stage_wr in
  for s = 0 to stages - 1 do
    let half = 1 lsl s in
    let len = half * 2 in
    let wr = t.stage_wr.(s) and wi = t.stage_wi.(s) in
    let i = ref 0 in
    while !i < n do
      for k = 0 to half - 1 do
        let a = !i + k and b = !i + k + half in
        let twr = wr.(k) and twi = if sign < 0 then wi.(k) else -.wi.(k) in
        let tr = (twr *. re.(b)) -. (twi *. im.(b)) in
        let ti = (twr *. im.(b)) +. (twi *. re.(b)) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti
      done;
      i := !i + len
    done
  done

(* Unnormalized DCT-II via the plan (Makhoul's even/odd permutation). The
   scratch arrays must be caller-provided of length n; the result lands in
   [out] (which may alias the input). *)
let dct2_raw t (x : float array) (re : float array) (im : float array) (out : float array) =
  let n = t.n in
  let half = (n + 1) / 2 in
  Array.fill im 0 n 0.0;
  for j = 0 to half - 1 do
    re.(j) <- x.(2 * j)
  done;
  for j = 0 to (n / 2) - 1 do
    re.(n - 1 - j) <- x.((2 * j) + 1)
  done;
  fft t ~sign:(-1) re im;
  for k = 0 to n - 1 do
    out.(k) <- (re.(k) *. t.twist_c.(k)) +. (im.(k) *. t.twist_s.(k))
  done

(* Exact inverse of [dct2_raw]. *)
let idct2_raw t (c : float array) (re : float array) (im : float array) (out : float array) =
  let n = t.n in
  re.(0) <- c.(0);
  im.(0) <- 0.0;
  (* Rebuild the spectrum V_k = (c_k - i c_{n-k}) exp(+i pi k / 2n). *)
  for k = 1 to n - 1 do
    let wr = c.(k) and wi = -.c.(n - k) in
    re.(k) <- (wr *. t.twist_c.(k)) -. (wi *. t.twist_s.(k));
    im.(k) <- (wr *. t.twist_s.(k)) +. (wi *. t.twist_c.(k))
  done;
  fft t ~sign:1 re im;
  let inv = 1.0 /. float_of_int n in
  let half = (n + 1) / 2 in
  for j = 0 to half - 1 do
    out.(2 * j) <- re.(j) *. inv
  done;
  for j = 0 to (n / 2) - 1 do
    out.((2 * j) + 1) <- re.(n - 1 - j) *. inv
  done
