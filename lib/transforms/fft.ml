(* Iterative radix-2 complex FFT (decimation in time).

   Complex data is carried as separate re/im arrays to avoid boxing. Only
   power-of-two lengths are supported; the DCT module falls back to a direct
   O(n^2) transform for other lengths. *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Bit-reversal permutation applied in place. *)
let bit_reverse re im =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

(* In-place FFT; [sign] is -1 for the forward transform (exp(-2 pi i k n / N))
   and +1 for the inverse (without the 1/N scaling). *)
let transform ~sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.transform: re/im length mismatch";
  if not (is_power_of_two n) then invalid_arg "Fft.transform: length must be a power of two";
  if n > 1 then begin
    bit_reverse re im;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let theta = float_of_int sign *. 2.0 *. Float.pi /. float_of_int !len in
      let wr0 = cos theta and wi0 = sin theta in
      let i = ref 0 in
      while !i < n do
        let wr = ref 1.0 and wi = ref 0.0 in
        for k = 0 to half - 1 do
          let a = !i + k and b = !i + k + half in
          let tr = (!wr *. re.(b)) -. (!wi *. im.(b)) in
          let ti = (!wr *. im.(b)) +. (!wi *. re.(b)) in
          re.(b) <- re.(a) -. tr;
          im.(b) <- im.(a) -. ti;
          re.(a) <- re.(a) +. tr;
          im.(a) <- im.(a) +. ti;
          let wr' = (!wr *. wr0) -. (!wi *. wi0) in
          wi := (!wr *. wi0) +. (!wi *. wr0);
          wr := wr'
        done;
        i := !i + !len
      done;
      len := !len * 2
    done
  end

let forward re im = transform ~sign:(-1) re im

let inverse re im =
  transform ~sign:1 re im;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done

(* Direct O(n^2) DFT for testing the FFT against. *)
let dft_naive ~sign re im =
  let n = Array.length re in
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    for j = 0 to n - 1 do
      let theta = float_of_int sign *. 2.0 *. Float.pi *. float_of_int (k * j) /. float_of_int n in
      let c = cos theta and s = sin theta in
      out_re.(k) <- out_re.(k) +. (re.(j) *. c) -. (im.(j) *. s);
      out_im.(k) <- out_im.(k) +. (re.(j) *. s) +. (im.(j) *. c)
    done
  done;
  (out_re, out_im)
