(** Precomputed FFT/DCT plans: bit-reversal permutation, per-stage twiddle
    factors and the DCT-II boundary twist for one power-of-two length,
    computed once and cached per length behind a mutex. *)

type t

val create : int -> t
(** Build a plan for a power-of-two length (raises [Invalid_argument]
    otherwise). Prefer {!get}, which caches. *)

val get : int -> t
(** The shared plan for this length; thread-safe, builds on first use. *)

val fft : t -> sign:int -> float array -> float array -> unit
(** In-place FFT of (re, im) using the plan's tables; [sign] as in
    [Fft.transform]. *)

val dct2_raw : t -> float array -> float array -> float array -> float array -> unit
(** [dct2_raw t x re im out]: unnormalized DCT-II of [x] into [out]
    (which may alias [x]); [re]/[im] are caller-provided scratch of the
    plan's length. *)

val idct2_raw : t -> float array -> float array -> float array -> float array -> unit
(** Exact inverse of {!dct2_raw}, same calling convention. *)
