(** Orthonormal DCT-II / DCT-III transforms, 1-D and 2-D.

    The orthonormal scaling makes the transform matrix orthogonal, so
    [dct_iii] is both the inverse and the transpose of [dct_ii]; operators
    conjugated by these transforms stay symmetric. Power-of-two lengths run
    in O(n log n) via the FFT; other lengths use the direct O(n^2) sum. *)

(** Orthonormal DCT-II: [y_k = s_k sum_n x_n cos(pi (n + 1/2) k / N)]. *)
val dct_ii : float array -> float array

(** Inverse (= transpose) of [dct_ii]. *)
val dct_iii : float array -> float array

(** 2-D separable transforms on flat row-major data, x fastest
    (index [ix + nx * iy]). *)
val dct_ii_2d : nx:int -> ny:int -> float array -> float array

val dct_iii_2d : nx:int -> ny:int -> float array -> float array

(** Eigenvalue [2 - 2 cos(pi k / n)] of the 1-D cell-centered Neumann
    Laplacian for DCT-II mode [k]; the diagonal the fast Poisson solver uses. *)
val neumann_laplacian_eigenvalue : n:int -> k:int -> float
