(** Fast direct solver for the layered grid-of-resistors Laplacian with
    uniform per-face boundary conditions, used as the fast-solver
    preconditioner of thesis §2.2.2 (Table 2.1). *)

type t

(** [create ~nx ~ny ~nz ~h ~sigma ~top_fraction ~bottom_contact] builds the
    model operator for an [nx * ny * nz] cell-centered grid with spacing [h]
    and per-z-plane conductivities [sigma] (plane 0 is the top surface).
    [top_fraction] scales the uniform Dirichlet coupling on the top face:
    1.0 is the pure-Dirichlet preconditioner, 0.0 pure-Neumann, and the
    contact-area fraction gives the area-weighted preconditioner.
    [bottom_contact] adds a grounded backplane on the bottom face.
    [gz] overrides the vertical resistor conductances (length nz - 1), e.g.
    to match a grid whose vertical resistors were integrated through
    sub-grid layers. *)
val create :
  ?gz:float array ->
  nx:int ->
  ny:int ->
  nz:int ->
  h:float ->
  sigma:float array ->
  top_fraction:float ->
  bottom_contact:bool ->
  unit ->
  t

val index : t -> ix:int -> iy:int -> iz:int -> int
val size : t -> int

(** Apply the model operator (node voltages to node currents). *)
val apply : t -> float array -> float array

(** Direct O(n log n) solve of the model system via 2-D DCT + tridiagonal
    solves. Exact when the operator is nonsingular; with all-Neumann faces the
    constant mode is regularized, giving a usable preconditioner. *)
val solve : t -> float array -> float array

(** Series conductance of a vertical resistor crossing a layer boundary
    halfway between planes (thesis eq. (2.8) with p = 1/2). *)
val series_conductance : float -> float -> float -> float
