(* Orthonormal discrete cosine transforms (DCT-II and its inverse DCT-III).

   The DCT-II basis vectors cos(pi (n + 1/2) k / N) are the eigenvectors of
   the 1-D cell-centered Neumann Laplacian, which is what makes the fast
   Poisson solver (thesis §2.2.2) and the eigenfunction substrate solver
   (§2.3.1, Fig 2-6) work: both conjugate their operators by the 2-D DCT.

   The orthonormal scaling s_0 = sqrt(1/N), s_k = sqrt(2/N) makes the
   transform matrix orthogonal, so DCT-III = inverse = transpose — keeping
   operators of the form C' Lambda C exactly symmetric in floating point
   structure. Power-of-two lengths run through cached FFT plans
   (O(n log n), precomputed twiddles); other lengths fall back to the
   direct O(n^2) sum. *)

(* Unnormalized DCT-II: c_k = sum_n x_n cos(pi (2n+1) k / (2N)). *)
let dct2_raw_naive x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc :=
          !acc
          +. (x.(j) *. cos (Float.pi *. float_of_int ((2 * j) + 1) *. float_of_int k /. float_of_int (2 * n)))
      done;
      !acc)

let dct2_raw x =
  let n = Array.length x in
  if Fft.is_power_of_two n then begin
    let plan = Plan.get n in
    let re = Array.make n 0.0 and im = Array.make n 0.0 and out = Array.make n 0.0 in
    Plan.dct2_raw plan x re im out;
    out
  end
  else dct2_raw_naive x

(* Exact inverse of [dct2_raw]:
   x_n = (1/N) c_0 + (2/N) sum_{k>=1} c_k cos(pi (2n+1) k / (2N)). *)
let idct2_raw_naive c =
  let n = Array.length c in
  Array.init n (fun j ->
      let acc = ref (c.(0) /. float_of_int n) in
      for k = 1 to n - 1 do
        acc :=
          !acc
          +. (2.0 /. float_of_int n *. c.(k)
             *. cos (Float.pi *. float_of_int ((2 * j) + 1) *. float_of_int k /. float_of_int (2 * n)))
      done;
      !acc)

let idct2_raw c =
  let n = Array.length c in
  if Fft.is_power_of_two n then begin
    let plan = Plan.get n in
    let re = Array.make n 0.0 and im = Array.make n 0.0 and out = Array.make n 0.0 in
    Plan.idct2_raw plan c re im out;
    out
  end
  else idct2_raw_naive c

let ortho_scale n k = if k = 0 then sqrt (1.0 /. float_of_int n) else sqrt (2.0 /. float_of_int n)

(* Orthonormal DCT-II. *)
let dct_ii x =
  let n = Array.length x in
  let c = dct2_raw x in
  Array.mapi (fun k v -> ortho_scale n k *. v) c

(* Orthonormal DCT-III (inverse and transpose of [dct_ii]). *)
let dct_iii y =
  let n = Array.length y in
  let c = Array.mapi (fun k v -> v /. ortho_scale n k) y in
  idct2_raw c

(* ------------------------------------------------------------------ *)
(* 2-D transforms on flat row-major arrays with x fastest:
   index = ix + nx * iy. Scratch buffers are allocated once per call and
   reused across all rows and columns. *)

let check_2d ~nx ~ny a name =
  if Array.length a <> nx * ny then
    invalid_arg (Printf.sprintf "Dct.%s: expected %d*%d elements, got %d" name nx ny (Array.length a))

type direction = Forward | Inverse

let transform_2d_fast dir ~nx ~ny a =
  let plan_x = Plan.get nx and plan_y = Plan.get ny in
  let out = Array.copy a in
  let nmax = max nx ny in
  let re = Array.make nmax 0.0 and im = Array.make nmax 0.0 in
  let buf = Array.make nmax 0.0 and res = Array.make nmax 0.0 in
  let run plan len =
    match dir with
    | Forward ->
      Plan.dct2_raw plan buf re im res;
      let s0 = sqrt (1.0 /. float_of_int len) and s = sqrt (2.0 /. float_of_int len) in
      res.(0) <- res.(0) *. s0;
      for k = 1 to len - 1 do
        res.(k) <- res.(k) *. s
      done
    | Inverse ->
      let s0 = sqrt (float_of_int len) and s = sqrt (float_of_int len /. 2.0) in
      buf.(0) <- buf.(0) *. s0;
      for k = 1 to len - 1 do
        buf.(k) <- buf.(k) *. s
      done;
      Plan.idct2_raw plan buf re im res
  in
  (* Along x: contiguous rows. *)
  for iy = 0 to ny - 1 do
    Array.blit out (iy * nx) buf 0 nx;
    run plan_x nx;
    Array.blit res 0 out (iy * nx) nx
  done;
  (* Along y: strided columns. *)
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      buf.(iy) <- out.((iy * nx) + ix)
    done;
    run plan_y ny;
    for iy = 0 to ny - 1 do
      out.((iy * nx) + ix) <- res.(iy)
    done
  done;
  out

let transform_2d_slow f1d ~nx ~ny a =
  let out = Array.copy a in
  let rowbuf = Array.make nx 0.0 in
  for iy = 0 to ny - 1 do
    Array.blit out (iy * nx) rowbuf 0 nx;
    let t = f1d rowbuf in
    Array.blit t 0 out (iy * nx) nx
  done;
  let colbuf = Array.make ny 0.0 in
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      colbuf.(iy) <- out.((iy * nx) + ix)
    done;
    let t = f1d colbuf in
    for iy = 0 to ny - 1 do
      out.((iy * nx) + ix) <- t.(iy)
    done
  done;
  out

let dct_ii_2d ~nx ~ny a =
  check_2d ~nx ~ny a "dct_ii_2d";
  if Fft.is_power_of_two nx && Fft.is_power_of_two ny then transform_2d_fast Forward ~nx ~ny a
  else transform_2d_slow dct_ii ~nx ~ny a

let dct_iii_2d ~nx ~ny a =
  check_2d ~nx ~ny a "dct_iii_2d";
  if Fft.is_power_of_two nx && Fft.is_power_of_two ny then transform_2d_fast Inverse ~nx ~ny a
  else transform_2d_slow dct_iii ~nx ~ny a

(* Eigenvalue of the 1-D cell-centered Neumann Laplacian
   (stencil [1,-1] / [-1,2,-1] / [-1,1]) for DCT-II mode k of n. *)
let neumann_laplacian_eigenvalue ~n ~k =
  2.0 -. (2.0 *. cos (Float.pi *. float_of_int k /. float_of_int n))
