(** Retry / escalation policies around a black-box solver.

    A resilient box re-runs failing solves up to [max_attempts] times:
    attempt 2 retries the primary (so transient faults recover
    bit-identically to a clean run — a different solver would produce
    different bits for the same right-hand side), and attempts 3 and later
    walk an optional ladder of lazily-built fallback boxes (tighter
    tolerance, different preconditioner, direct solver), parking on the
    last rung. A {e hard} failure is {!Blackbox.Solve_failed} (non-finite
    response); a {e soft} failure is a response whose solve report says
    the iteration did not converge.

    On exhaustion, [Fail] raises a typed {!Blackbox.Solve_failed} naming
    the logical solve index; [Degrade] records the failure (see
    {!failures}) and substitutes the best finite iterate seen (zeros if
    every attempt was hard), flagging the solve as non-converged in the
    wrapper's health record — extraction completes with an explicit
    quality report instead of dying mid-run. *)

type on_exhausted = Fail | Degrade

type policy = {
  max_attempts : int;  (** total attempts per solve, including the first *)
  retry_non_converged : bool;  (** treat a non-converged report as a failure *)
  on_exhausted : on_exhausted;
}

(** 3 attempts, retry on non-convergence, raise on exhaustion. *)
val default_policy : policy

(** 1 attempt, hard failures only: any fault raises immediately. *)
val fail_fast : policy

(** {!default_policy} with [Degrade] on exhaustion. *)
val degrade : policy

type failure = {
  solve_index : int;
  attempts : int;
  degraded : bool;  (** [false]: raised; [true]: substituted an iterate *)
  reason : string;  (** per-attempt diagnostics, oldest first *)
}

type t

(** [first_index] (default 0) is the logical index the wrapper assigns its
    first solve. A sharded extraction numbers each shard's solves from the
    run-global count of solves issued before it, so fault sites addressed
    by index (chaos, kill schedules) stay stable whether the run is sharded
    or not. *)
val create :
  ?policy:policy ->
  ?fallbacks:(string * Blackbox.t Lazy.t) list ->
  ?first_index:int ->
  Blackbox.t ->
  t

(** The wrapped box. Batches assign logical solve indices [base + position]
    (base = solves issued so far), so fault sites, error messages and
    results are identical for every [jobs] value. Built with
    [~count_total:false]: only real attempts on the underlying solvers
    reach {!Blackbox.total_solve_count}. *)
val blackbox : t -> Blackbox.t

(** Attempts beyond the first, summed over all solves. *)
val retries : t -> int

(** Solves that exhausted every attempt, in solve order. *)
val failures : t -> failure list

(** Number of degraded (substituted) solves. *)
val degraded_count : t -> int

val pp_failure : Format.formatter -> failure -> unit
