(* Layered substrate profiles (thesis Fig 1-1).

   The substrate is a block [0,a] x [0,b] x [-d, 0] of Ohmic material made of
   horizontal layers, each with its own conductivity, contacts on the top
   surface z = 0 and optionally a grounded backplane contact covering the
   bottom. *)

type layer = { thickness : float; conductivity : float }

type backplane = Grounded | Floating

type t = {
  a : float;  (* x extent of the surface *)
  b : float;  (* y extent of the surface *)
  layers : layer list;  (* top layer first *)
  backplane : backplane;
}

(* Validation names the offending field (and layer index) so that a
   scenario config routed through here reports exactly what to fix; the
   [not (x > 0)] form also rejects NaN, which [x <= 0] would admit. *)
let make ~a ~b ~layers ~backplane =
  let bad field value =
    invalid_arg
      (Printf.sprintf "Profile.make: %s = %g (must be positive and finite)" field value)
  in
  if not (a > 0.0 && a < Float.infinity) then bad "surface extent a" a;
  if not (b > 0.0 && b < Float.infinity) then bad "surface extent b" b;
  if layers = [] then invalid_arg "Profile.make: layers is empty (need at least one layer)";
  List.iteri
    (fun i l ->
      if not (l.thickness > 0.0 && l.thickness < Float.infinity) then
        bad (Printf.sprintf "layers.(%d).thickness" i) l.thickness;
      if not (l.conductivity > 0.0 && l.conductivity < Float.infinity) then
        bad (Printf.sprintf "layers.(%d).conductivity" i) l.conductivity)
    layers;
  { a; b; layers; backplane }

let depth t = List.fold_left (fun acc l -> acc +. l.thickness) 0.0 t.layers

(* Conductivity at depth [z] below the surface (z in [0, depth]). *)
let conductivity_at t ~z =
  let rec go z = function
    | [] -> (List.nth t.layers (List.length t.layers - 1)).conductivity
    | l :: rest -> if z <= l.thickness then l.conductivity else go (z -. l.thickness) rest
  in
  go (Float.max 0.0 z) t.layers

(* Average resistivity over a depth interval, for vertical grid resistors
   that may straddle layer boundaries: 1 / conductance is the integral of
   1 / sigma over the interval. *)
let integrated_resistivity t ~z0 ~z1 =
  if z1 <= z0 then invalid_arg "Profile.integrated_resistivity: empty interval";
  let rec go acc depth_done = function
    | [] -> acc +. (Float.max 0.0 (z1 -. Float.max z0 depth_done) /. (List.nth t.layers (List.length t.layers - 1)).conductivity)
    | l :: rest ->
      let top = depth_done and bottom = depth_done +. l.thickness in
      let overlap = Float.max 0.0 (Float.min z1 bottom -. Float.max z0 top) in
      let acc = acc +. (overlap /. l.conductivity) in
      if bottom >= z1 then acc else go acc bottom rest
  in
  go 0.0 0.0 t.layers

(* The standard two-layer test substrate of thesis §3.7: 128 x 128 surface,
   depth 40, top layer of thickness 0.5 with conductivity 1, bulk at 100x
   that, plus a thin resistive layer (conductivity 0.1) adjacent to a
   grounded backplane to emulate the floating-backplane case with an
   integral-equation solver that requires a groundplane. *)
let thesis_default ?(size = 128.0) () =
  make ~a:size ~b:size
    ~layers:
      [
        { thickness = 0.5; conductivity = 1.0 };
        { thickness = 38.5; conductivity = 100.0 };
        { thickness = 1.0; conductivity = 0.1 };
      ]
    ~backplane:Grounded

(* A grid-friendly variant for the finite-difference solver: the same
   high-conductivity-bulk structure but with layer boundaries representable
   on a coarse vertical grid. *)
let fd_friendly ?(size = 128.0) ?(depth_units = 40.0) () =
  make ~a:size ~b:size
    ~layers:
      [
        { thickness = depth_units *. 0.05; conductivity = 1.0 };
        { thickness = depth_units *. 0.85; conductivity = 100.0 };
        { thickness = depth_units *. 0.10; conductivity = 0.1 };
      ]
    ~backplane:Grounded
