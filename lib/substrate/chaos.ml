(* Deterministic fault injection for black-box solves.

   A seeded wrapper box that corrupts chosen solves, used to test the
   failure-reporting and retry machinery and to prove that wavelet /
   row-basis / low-rank extraction either recovers or fails loudly.

   Fault sites are addressed by the *logical* solve index: the position of
   the right-hand side within the extraction's fixed stage order (batch
   base + position within batch). That makes the injected faults identical
   for every [jobs] value, with or without a retry wrapper in front:

   - standalone, the wrapper numbers solves itself from an atomic counter
     (batches reserve a contiguous range, so position base+i is stable);
   - under [Resilient], every attempt runs inside
     [Blackbox.with_context ~index ~attempt] and the wrapper reads the
     index (and the attempt, so a [Transient] fault can hit attempt 1 only)
     from there instead.

   All injections are idempotent per (index, attempt): repeating a solve
   reproduces the same outcome bit-for-bit, so retried extractions stay
   deterministic. *)

type fault =
  | Transient  (* NaN response on attempt 1 only; retries succeed cleanly *)
  | Nan_response  (* NaN response on every attempt (hard fault) *)
  | Perturb of float  (* multiply each component by 1 + eps*N(0,1), seeded per index *)
  | Non_convergence  (* correct response, but reported as non-converged on attempt 1 *)
  | Kill  (* SIGKILL the process at the fault site: a crash no handler can soften *)

type state = {
  inner : Blackbox.t;
  fault : fault;
  every : int;
  offset : int;
  seed : int;
  n : int;
  next_index : int Atomic.t;  (* standalone numbering when no context is set *)
  injected : int Atomic.t;
}

type t = { state : state; box : Blackbox.t }

let is_site st index = index >= st.offset && (index - st.offset) mod st.every = 0

let nan_response n = Array.make n Float.nan

let perturb st ~index eps y =
  (* Private generator per solve index: the draw is a pure function of
     (seed, index), independent of scheduling or other injections. *)
  let rng = La.Rng.create (st.seed lxor ((index + 1) * 0x9E3779B9)) in
  Array.map (fun x -> x *. (1.0 +. (eps *. La.Rng.gaussian rng))) y

let solve_at st ~index ~attempt v =
  if not (is_site st index) then Blackbox.apply st.inner v
  else
    match st.fault with
    | Transient ->
      if attempt = 1 then begin
        (* Skip the inner solve entirely: the retry's clean solve is then
           the first and only inner solve at this site, so recovery is
           bit-identical to a fault-free run. *)
        Atomic.incr st.injected;
        nan_response st.n
      end
      else Blackbox.apply st.inner v
    | Nan_response ->
      Atomic.incr st.injected;
      nan_response st.n
    | Perturb eps ->
      Atomic.incr st.injected;
      perturb st ~index eps (Blackbox.apply st.inner v)
    | Kill ->
      (* The kill-anywhere harness: die before the inner solve runs, as
         SIGKILL — no OCaml handler, no finalizer, no atexit. Whatever the
         checkpoint/manifest machinery had already fsync'd is all a resume
         gets. The self-signal is delivered synchronously, so the raise
         below is unreachable; it only pacifies the type checker. *)
      Atomic.incr st.injected;
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      assert false
    | Non_convergence ->
      let y = Blackbox.apply st.inner v in
      if attempt = 1 then begin
        Atomic.incr st.injected;
        (* Fake the solver outcome: overwrite whatever report the inner
           solve deposited with a non-converged one, so a retry policy
           treats this solve as a soft failure. *)
        Blackbox.set_pending_report
          { Health.ok with converged = false; residual = 1.0; iterations = 0 }
      end;
      y

let identity ~fallback_index =
  match Blackbox.context () with
  | Some (index, attempt) -> (index, attempt)
  | None -> (fallback_index (), 1)

let create ?(seed = 0) ?(offset = 0) ~every ~fault inner =
  if every <= 0 then invalid_arg "Chaos.create: every must be positive";
  if offset < 0 then invalid_arg "Chaos.create: offset must be non-negative";
  let st =
    {
      inner;
      fault;
      every;
      offset;
      seed;
      n = Blackbox.n inner;
      next_index = Atomic.make 0;
      injected = Atomic.make 0;
    }
  in
  let solve v =
    let index, attempt =
      identity ~fallback_index:(fun () -> Atomic.fetch_and_add st.next_index 1)
    in
    solve_at st ~index ~attempt v
  in
  let batch ~jobs vs =
    let base = Atomic.fetch_and_add st.next_index (Array.length vs) in
    let one i =
      let index, attempt = identity ~fallback_index:(fun () -> base + i) in
      solve_at st ~index ~attempt vs.(i)
    in
    if jobs <= 1 || Array.length vs <= 1 then Array.init (Array.length vs) one
    else
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.map_chunks pool one (Array.init (Array.length vs) Fun.id))
  in
  { state = st; box = Blackbox.make_batch ~count_total:false ~n:st.n ~batch solve }

let box t = t.box
let injected t = Atomic.get t.state.injected

(* A deterministic, seeded kill schedule for the kill-anywhere harness:
   [points] distinct logical solve indices in [0, max_index), sorted
   ascending, a pure function of the seed. The harness runs one extraction
   per point with [Kill] sited at that index, resumes each, and compares
   probe digests against an uninterrupted run. *)
let kill_schedule ~seed ~points ~max_index =
  if points <= 0 then invalid_arg "Chaos.kill_schedule: points must be positive";
  if max_index < points then invalid_arg "Chaos.kill_schedule: max_index must be >= points";
  let rng = La.Rng.create (seed lxor 0x5EED) in
  let chosen = Hashtbl.create points in
  while Hashtbl.length chosen < points do
    let i = La.Rng.int rng max_index in
    if not (Hashtbl.mem chosen i) then Hashtbl.add chosen i ()
  done;
  let a = Array.of_seq (Seq.map fst (Hashtbl.to_seq chosen)) in
  Array.sort Int.compare a;
  a
