(** Layered substrate profiles (thesis Fig 1-1). *)

type layer = { thickness : float; conductivity : float }
type backplane = Grounded | Floating

type t = {
  a : float;
  b : float;
  layers : layer list;  (** top layer first *)
  backplane : backplane;
}

(** @raise Invalid_argument naming the offending field (and layer index)
    on a nonpositive/non-finite extent, thickness or conductivity, or an
    empty layer list. *)
val make : a:float -> b:float -> layers:layer list -> backplane:backplane -> t

(** Total substrate thickness. *)
val depth : t -> float

(** Conductivity at depth [z] below the top surface. *)
val conductivity_at : t -> z:float -> float

(** Integral of 1/sigma over the depth interval [z0, z1]; the reciprocal
    (scaled by area/length) is the conductance of a vertical resistor that may
    straddle layer boundaries. *)
val integrated_resistivity : t -> z0:float -> z1:float -> float

(** The thesis §3.7 test substrate: 128 x 128 x 40, conductivities
    1 / 100 / 0.1 with interfaces at depths 0.5 and 39, grounded backplane
    (the resistive bottom layer emulates a floating backplane). *)
val thesis_default : ?size:float -> unit -> t

(** Same structure with layer boundaries representable on a coarse vertical
    finite-difference grid. *)
val fd_friendly : ?size:float -> ?depth_units:float -> unit -> t
