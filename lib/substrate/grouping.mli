(** Compound electrical contacts: geometric pieces tied into electrical
    nodes, addressing thesis §5.2's "extremely large or long contacts".
    With S the piece-to-group incidence, the electrical conductance is
    [G_elec = S' G_pieces S]. *)

type t

(** [of_group_ids a] where [a.(piece) = group]; group ids must be dense
    0..n_groups-1 with no empty group. *)
val of_group_ids : int array -> t

(** Each piece its own group. *)
val identity : int -> t

val n_pieces : t -> int
val n_groups : t -> int
val members : t -> int -> int array

(** Group voltages to piece voltages (apply S). *)
val expand : t -> La.Vec.t -> La.Vec.t

(** Piece currents summed per group (apply S'). *)
val reduce : t -> La.Vec.t -> La.Vec.t

(** Lift a piece-level application of G to the electrical level. *)
val lift : t -> (La.Vec.t -> La.Vec.t) -> La.Vec.t -> La.Vec.t

(** The electrical-level black box S' G S. *)
val wrap_blackbox : t -> Blackbox.t -> Blackbox.t
