(* The black-box substrate solver interface (thesis §1.2, §2.1).

   A solver is nothing but a map from the vector of n contact voltages to the
   vector of n contact currents — the application of the dense conductance
   matrix G. The sparsification algorithms interact with the substrate only
   through this interface, which is the thesis's central constraint: no
   access to individual entries of G, no analytic kernel. Every application
   is counted so the solve-reduction factors of Tables 4.1 and 4.3 can be
   reported. *)

type t = {
  n : int;  (* number of contacts *)
  solve : La.Vec.t -> La.Vec.t;
  counter : int ref;
}

let make ~n solve =
  let counter = ref 0 in
  let counted v =
    if Array.length v <> n then
      invalid_arg (Printf.sprintf "Blackbox: expected %d contact voltages, got %d" n (Array.length v));
    incr counter;
    solve v
  in
  { n; solve = counted; counter }

let n t = t.n
let apply t v = t.solve v
let solve_count t = !(t.counter)
let reset_count t = t.counter := 0

(* Wrap an explicitly known conductance matrix. Used to test the
   sparsification algorithms against exact arithmetic, and to re-serve an
   extracted G cheaply. *)
let of_dense g =
  if La.Mat.rows g <> La.Mat.cols g then invalid_arg "Blackbox.of_dense: G must be square";
  make ~n:(La.Mat.rows g) (La.Mat.gemv g)

(* The naive extraction the thesis improves on: one solve per contact,
   G(:, i) = G e_i (thesis §1.2). *)
let extract_dense t =
  let g = La.Mat.create t.n t.n in
  let e = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    e.(i) <- 1.0;
    La.Mat.set_col g i (apply t e);
    e.(i) <- 0.0
  done;
  g

(* Extract a sample of columns (for error estimation on large examples,
   thesis Table 4.3: "a 10% sample of the columns of the actual G"). *)
let extract_columns t indices =
  let e = Array.make t.n 0.0 in
  Array.map
    (fun i ->
      e.(i) <- 1.0;
      let col = apply t e in
      e.(i) <- 0.0;
      col)
    indices
