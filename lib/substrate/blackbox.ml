(* The black-box substrate solver interface (thesis §1.2, §2.1).

   A solver is nothing but a map from the vector of n contact voltages to the
   vector of n contact currents — the application of the dense conductance
   matrix G. The sparsification algorithms interact with the substrate only
   through this interface, which is the thesis's central constraint: no
   access to individual entries of G, no analytic kernel. Every application
   is counted so the solve-reduction factors of Tables 4.1 and 4.3 can be
   reported.

   Batching: the right-hand sides inside each extraction stage are
   independent, so a solver may additionally expose a multi-RHS [batch]
   implementation that runs them on several domains ([jobs] is the total
   parallelism). The solve counter is an [Atomic] so it stays exact when a
   batch implementation (or a caller) applies the box concurrently, and
   batch results land in input order, making parallel extraction
   bit-identical to sequential.

   Failure model: every response is scanned for NaN/Inf; a non-finite
   response raises [Solve_failed] with the offending RHS index rather than
   flowing garbage into a representation. Solve quality (convergence,
   residual, iterations, wall time) is aggregated per box in a [Health.t];
   solvers that know their own convergence publish a report per solve via
   [report_solve], other boxes get a synthesized report from the wrapper. *)

exception Solve_failed of { index : int; reason : string }

let () =
  Printexc.register_printer (function
    | Solve_failed { index; reason } ->
      Some (Printf.sprintf "Substrate.Blackbox.Solve_failed(solve %d: %s)" index reason)
    | _ -> None)

type t = {
  n : int;  (* number of contacts *)
  solve : La.Vec.t -> La.Vec.t;
  batch : jobs:int -> La.Vec.t array -> La.Vec.t array;
  counter : int Atomic.t;
  health : Health.t;
}

(* Process-wide tally across every black box, for harnesses that want the
   total solve cost of a whole experiment without threading each box
   through. Atomic for the same reason as the per-box counter. Wrapper
   boxes (resilience, fault injection, checkpointing) opt out with
   [~count_total:false] so only real underlying solves are tallied. *)
let total = Atomic.make 0
let total_solve_count () = Atomic.get total

let solve_span = "blackbox.solve"
let batch_span = "blackbox.batch"
let batch_size_dist = Trace.dist "blackbox.batch_size"
let solves_counter = Trace.counter "blackbox.solves"

(* --- domain-local side channels -------------------------------------------

   The [t] record's solve signature (vec -> vec) cannot carry metadata, and
   changing it would break every solver; instead two domain-local slots pass
   information "around" a solve in the same domain:

   - the pending/last report slot: a solver deposits its per-solve report
     with [report_solve] just before returning; the wrapper picks it up,
     completes the finite scan, and leaves it in [last_report] for callers
     (the retry policy reads it to detect soft failures). Works on pool
     domains too, because the wrapper's [counted] closure runs on the same
     domain as the solve itself.

   - the solve context: a retry policy runs each attempt under
     [with_context ~index ~attempt], giving downstream wrappers (fault
     injection, error messages) the logical solve index independent of how
     many attempts or jobs are in flight — the key to deterministic fault
     sites. *)

let pending_key : Health.report option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let last_key : Health.report option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let context_key : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_pending_report r = Domain.DLS.get pending_key := Some r

let take_pending () =
  let slot = Domain.DLS.get pending_key in
  let r = !slot in
  slot := None;
  r

let report_solve health r =
  Health.record health r;
  set_pending_report r

let last_report () = !(Domain.DLS.get last_key)

let with_context ~index ~attempt f =
  let slot = Domain.DLS.get context_key in
  let saved = !slot in
  slot := Some (index, attempt);
  Fun.protect ~finally:(fun () -> slot := saved) f

let context () = !(Domain.DLS.get context_key)

(* -------------------------------------------------------------------------- *)

let check_length n v =
  if Array.length v <> n then
    invalid_arg (Printf.sprintf "Blackbox: expected %d contact voltages, got %d" n (Array.length v))

let all_finite v =
  let ok = ref true in
  for i = 0 to Array.length v - 1 do
    if not (Float.is_finite v.(i)) then ok := false
  done;
  !ok

let non_finite_reason v =
  let k = ref (-1) in
  (try
     Array.iteri (fun i x -> if not (Float.is_finite x) then begin k := i; raise Exit end) v
   with Exit -> ());
  if !k < 0 then
    (* Reachable when a caller flags a response as non-finite but the
       vector scans clean (e.g. fault injection repaired it, or the report
       and the response disagree). Indexing v.(!k) here used to raise
       Invalid_argument — the diagnostic itself crashed and masked the
       real failure. *)
    Printf.sprintf "non-finite response reported, but a re-scan found all %d components finite"
      (Array.length v)
  else Printf.sprintf "non-finite response (first bad component %d = %h)" !k v.(!k)

(* [make_batch ~n ~batch solve] wraps a solver that also supplies a
   (possibly parallel) multi-RHS implementation. The wrappers validate,
   count, scan responses for NaN/Inf and keep the health record; [batch]
   itself must return one response per RHS, in order.

   [?health]: a solver that publishes its own per-solve reports (via
   [report_solve]) passes the same [Health.t] here so the wrapper does not
   synthesize duplicates. *)
let make_batch ?health ?(count_total = true) ~n ~batch solve =
  let external_reports = Option.is_some health in
  let health = match health with Some h -> h | None -> Health.create () in
  let counter = Atomic.make 0 in
  let fail ~ordinal v =
    Health.record_non_finite health;
    let index = match context () with Some (i, _) -> i | None -> ordinal in
    raise (Solve_failed { index; reason = non_finite_reason v })
  in
  let counted v =
    check_length n v;
    let ordinal = Atomic.fetch_and_add counter 1 in
    if count_total then Atomic.incr total;
    ignore (take_pending ());  (* discard any stale report from a prior solve *)
    (* Wrapper boxes (count_total = false) delegate to an inner counted
       box; tallying them too would double-count, exactly as for [total]. *)
    if count_total then Trace.incr solves_counter;
    let t0 = Health.now () in
    let y = Trace.with_span solve_span (fun () -> solve v) in
    let wall = Health.now () -. t0 in
    let finite = all_finite y in
    let report =
      match take_pending () with
      | Some r -> { r with Health.finite }
      | None -> { Health.ok with wall_s = wall; finite }
    in
    Domain.DLS.get last_key := Some report;
    if not external_reports then Health.record health report;
    if not finite then fail ~ordinal y;
    y
  in
  let counted_batch ~jobs vs =
    Array.iter (check_length n) vs;
    let base = Atomic.fetch_and_add counter (Array.length vs) in
    if count_total then ignore (Atomic.fetch_and_add total (Array.length vs));
    if count_total then begin
      Trace.incr ~by:(Array.length vs) solves_counter;
      Trace.observe batch_size_dist (float_of_int (Array.length vs))
    end;
    let t0 = Health.now () in
    let out = Trace.with_span batch_span (fun () -> batch ~jobs vs) in
    let wall = Health.now () -. t0 in
    if Array.length out <> Array.length vs then
      invalid_arg "Blackbox: batch implementation returned a wrong-sized result";
    Health.record_batch health ~solves:(if external_reports then 0 else Array.length vs) ~wall_s:wall;
    Array.iteri (fun i y -> if not (all_finite y) then fail ~ordinal:(base + i) y) out;
    out
  in
  { n; solve = counted; batch = counted_batch; counter; health }

(* Solvers without a native batch run the right-hand sides sequentially:
   an arbitrary solve closure may hold mutable scratch state, so the black
   box never parallelizes it behind the solver's back. *)
let make ?health ?count_total ~n solve =
  make_batch ?health ?count_total ~n ~batch:(fun ~jobs:_ vs -> Array.map solve vs) solve

let n t = t.n
let apply t v = t.solve v

(* [apply_batch ~jobs t vs] solves all right-hand sides and returns the
   responses in input order. [jobs] (default 1) is forwarded to the
   solver's batch implementation; solvers constructed with [make] stay
   sequential regardless. *)
let apply_batch ?(jobs = 1) t vs = t.batch ~jobs vs

let solve_count t = Atomic.get t.counter
let reset_count t = Atomic.set t.counter 0
let health t = t.health

(* The canonical exact operator: the box viewed through the one interface
   every apply path shares. Applications still go through the counted,
   validated, NaN-scanned wrappers, and [solves_spent] reads the live
   counter — probing this operator is visible as solve cost. *)
let op t =
  Subcouple_op.make
    ~batch:(fun ~jobs vs -> t.batch ~jobs vs)
    ~solves_spent:(fun () -> Atomic.get t.counter)
    ~describe:
      {
        Subcouple_op.kind = "blackbox";
        source = Printf.sprintf "black-box substrate solver (%d contacts)" t.n;
        symmetric = true;
      }
    ~n:t.n t.solve

module _ : Subcouple_op.S with type repr = t = struct
  type repr = t

  let op = op
end

(* Wrap an explicitly known conductance matrix. Used to test the
   sparsification algorithms against exact arithmetic, and to re-serve an
   extracted G cheaply. gemv is pure, so the batch runs on a pool. *)
let of_dense g =
  if La.Mat.rows g <> La.Mat.cols g then invalid_arg "Blackbox.of_dense: G must be square";
  make_batch ~n:(La.Mat.rows g)
    ~batch:(fun ~jobs vs ->
      if jobs <= 1 || Array.length vs <= 1 then Array.map (La.Mat.gemv g) vs
      else Parallel.Pool.with_pool ~jobs (fun pool -> Parallel.Pool.map_chunks pool (La.Mat.gemv g) vs))
    (La.Mat.gemv g)

(* One fresh unit vector per right-hand side: a shared buffer would race
   under batching, and even sequentially it aliases if a solver retains its
   argument. *)
let unit_vector n i =
  let e = Array.make n 0.0 in
  e.(i) <- 1.0;
  e

(* The naive extraction the thesis improves on: one solve per contact,
   G(:, i) = G e_i (thesis §1.2). Each response is written into its
   pre-assigned column, so any [jobs] produces the same matrix. *)
let extract_dense ?jobs t =
  let cols = apply_batch ?jobs t (Array.init t.n (unit_vector t.n)) in
  let g = La.Mat.create t.n t.n in
  Array.iteri (fun i col -> La.Mat.set_col g i col) cols;
  g

(* Extract a sample of columns (for error estimation on large examples,
   thesis Table 4.3: "a 10% sample of the columns of the actual G"). *)
let extract_columns ?jobs t indices =
  Array.iter
    (fun i ->
      if i < 0 || i >= t.n then
        invalid_arg
          (Printf.sprintf "Blackbox.extract_columns: column index %d out of range [0, %d)" i t.n))
    indices;
  apply_batch ?jobs t (Array.map (unit_vector t.n) indices)
