(* The black-box substrate solver interface (thesis §1.2, §2.1).

   A solver is nothing but a map from the vector of n contact voltages to the
   vector of n contact currents — the application of the dense conductance
   matrix G. The sparsification algorithms interact with the substrate only
   through this interface, which is the thesis's central constraint: no
   access to individual entries of G, no analytic kernel. Every application
   is counted so the solve-reduction factors of Tables 4.1 and 4.3 can be
   reported.

   Batching: the right-hand sides inside each extraction stage are
   independent, so a solver may additionally expose a multi-RHS [batch]
   implementation that runs them on several domains ([jobs] is the total
   parallelism). The solve counter is an [Atomic] so it stays exact when a
   batch implementation (or a caller) applies the box concurrently, and
   batch results land in input order, making parallel extraction
   bit-identical to sequential. *)

type t = {
  n : int;  (* number of contacts *)
  solve : La.Vec.t -> La.Vec.t;
  batch : jobs:int -> La.Vec.t array -> La.Vec.t array;
  counter : int Atomic.t;
}

(* Process-wide tally across every black box, for harnesses that want the
   total solve cost of a whole experiment without threading each box
   through. Atomic for the same reason as the per-box counter. *)
let total = Atomic.make 0
let total_solve_count () = Atomic.get total

let check_length n v =
  if Array.length v <> n then
    invalid_arg (Printf.sprintf "Blackbox: expected %d contact voltages, got %d" n (Array.length v))

(* [make_batch ~n ~batch solve] wraps a solver that also supplies a
   (possibly parallel) multi-RHS implementation. The wrappers validate and
   count; [batch] itself must return one response per RHS, in order. *)
let make_batch ~n ~batch solve =
  let counter = Atomic.make 0 in
  let counted v =
    check_length n v;
    Atomic.incr counter;
    Atomic.incr total;
    solve v
  in
  let counted_batch ~jobs vs =
    Array.iter (check_length n) vs;
    ignore (Atomic.fetch_and_add counter (Array.length vs));
    ignore (Atomic.fetch_and_add total (Array.length vs));
    let out = batch ~jobs vs in
    if Array.length out <> Array.length vs then
      invalid_arg "Blackbox: batch implementation returned a wrong-sized result";
    out
  in
  { n; solve = counted; batch = counted_batch; counter }

(* Solvers without a native batch run the right-hand sides sequentially:
   an arbitrary solve closure may hold mutable scratch state, so the black
   box never parallelizes it behind the solver's back. *)
let make ~n solve = make_batch ~n ~batch:(fun ~jobs:_ vs -> Array.map solve vs) solve

let n t = t.n
let apply t v = t.solve v

(* [apply_batch ~jobs t vs] solves all right-hand sides and returns the
   responses in input order. [jobs] (default 1) is forwarded to the
   solver's batch implementation; solvers constructed with [make] stay
   sequential regardless. *)
let apply_batch ?(jobs = 1) t vs = t.batch ~jobs vs

let solve_count t = Atomic.get t.counter
let reset_count t = Atomic.set t.counter 0

(* Wrap an explicitly known conductance matrix. Used to test the
   sparsification algorithms against exact arithmetic, and to re-serve an
   extracted G cheaply. gemv is pure, so the batch runs on a pool. *)
let of_dense g =
  if La.Mat.rows g <> La.Mat.cols g then invalid_arg "Blackbox.of_dense: G must be square";
  make_batch ~n:(La.Mat.rows g)
    ~batch:(fun ~jobs vs ->
      if jobs <= 1 || Array.length vs <= 1 then Array.map (La.Mat.gemv g) vs
      else Parallel.Pool.with_pool ~jobs (fun pool -> Parallel.Pool.map_chunks pool (La.Mat.gemv g) vs))
    (La.Mat.gemv g)

(* One fresh unit vector per right-hand side: a shared buffer would race
   under batching, and even sequentially it aliases if a solver retains its
   argument. *)
let unit_vector n i =
  let e = Array.make n 0.0 in
  e.(i) <- 1.0;
  e

(* The naive extraction the thesis improves on: one solve per contact,
   G(:, i) = G e_i (thesis §1.2). Each response is written into its
   pre-assigned column, so any [jobs] produces the same matrix. *)
let extract_dense ?jobs t =
  let cols = apply_batch ?jobs t (Array.init t.n (unit_vector t.n)) in
  let g = La.Mat.create t.n t.n in
  Array.iteri (fun i col -> La.Mat.set_col g i col) cols;
  g

(* Extract a sample of columns (for error estimation on large examples,
   thesis Table 4.3: "a 10% sample of the columns of the actual G"). *)
let extract_columns ?jobs t indices =
  apply_batch ?jobs t (Array.map (unit_vector t.n) indices)
