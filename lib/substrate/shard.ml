(* Sharded, crash-safe extraction: quadtree regions as fault domains.

   A shard is one nonempty quadtree square at a chosen level; its unit of
   work is extracting the principal submatrix G(C_s, C_s) over the shard's
   contacts, through a black box restricted to those coordinates. Each
   shard owns its own checkpoint file (solve-stage granularity, as in
   unsharded runs) and persists its own single-operator artifact; a
   versioned, checksummed manifest (Subcouple_op.Artifact.Manifest) ties
   the shards together. The manifest is rewritten — atomically and
   durably — after every shard transition, so the run can be SIGKILLed at
   any solve and resumed:

   - a shard whose artifact is on disk and matches the manifest's digest
     is skipped (its recorded solves count as cached);
   - a shard with a checkpoint but no artifact replays the persisted
     stages and solves only the remainder;
   - a torn or bit-rotted shard artifact fails its digest check and is
     re-extracted (its checkpoint still shortcuts the redo);
   - a torn manifest is rebuilt by scanning the self-checksummed shard
     artifacts against the deterministic plan;
   - a shard that exhausts its resilience ladder (Blackbox.Solve_failed)
     is quarantined — recorded with the failure reason instead of
     aborting the run — and retried on the next resume.

   Solve numbering is run-global: shard k's first logical solve index is
   the total solves recorded by complete shards before it in plan order.
   The plan is a pure function of (layout, shard_level) and skipped shards
   contribute their recorded counts, so index-addressed fault injection
   (Chaos) hits the same sites whether the run is fresh, resumed, or
   unsharded per-shard. Quarantined shards contribute no solves to the
   numbering: their attempt counts are not recorded, and a retry on
   resume re-attempts from the same base index. *)

module Manifest = Subcouple_op.Artifact.Manifest

exception Mismatch of string

let () =
  Printexc.register_printer (function
    | Mismatch m -> Some (Printf.sprintf "Substrate.Shard.Mismatch(%s)" m)
    | _ -> None)

type planned = {
  shard_id : int;
  level : int;
  ix : int;
  iy : int;
  contacts : int array;  (* global contact ids, strictly ascending *)
}

type plan = {
  n : int;
  geometry_digest : string;
  shards : planned array;
}

(* Nonempty squares at [shard_level], in the deterministic row-major order
   of [Quadtree.squares_at_level]; contacts are assigned by centroid
   ([~check:false] — a shard boundary crossing a contact is harmless here,
   the shard just owns the whole contact). *)
let plan ~shard_level layout =
  if shard_level < 0 then invalid_arg "Shard.plan: shard_level must be non-negative";
  let qt = Geometry.Quadtree.create ~check:false ~max_level:shard_level layout in
  let shards =
    Geometry.Quadtree.squares_at_level qt shard_level
    |> Array.to_list
    |> List.filter (fun (s : Geometry.Quadtree.square) -> Array.length s.contacts > 0)
    |> List.mapi (fun i (s : Geometry.Quadtree.square) ->
           { shard_id = i; level = s.level; ix = s.ix; iy = s.iy; contacts = s.contacts })
    |> Array.of_list
  in
  {
    n = Geometry.Layout.n_contacts layout;
    geometry_digest = Geometry.Layout.digest layout;
    shards;
  }

(* The black box over the shard's coordinates: scatter the shard vector
   into the full dimension, solve globally, gather the shard rows back.
   Exactly the principal submatrix G(C_s, C_s) of the full operator —
   solver responses are untouched, only indexed. *)
let restricted_box ~contacts inner =
  let n = Blackbox.n inner in
  let k = Array.length contacts in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "Shard.restricted_box: contact id %d out of range" i))
    contacts;
  let scatter v =
    let full = Array.make n 0.0 in
    Array.iteri (fun j i -> full.(i) <- v.(j)) contacts;
    full
  in
  let gather y = Array.map (fun i -> y.(i)) contacts in
  Blackbox.make_batch ~count_total:false ~n:k
    ~batch:(fun ~jobs vs -> Array.map gather (Blackbox.apply_batch ~jobs inner (Array.map scatter vs)))
    (fun v -> gather (Blackbox.apply inner (scatter v)))

(* --- the run driver ----------------------------------------------------- *)

type progress = {
  planned : int;
  extracted : int;  (* shards extracted (or re-extracted) this run *)
  skipped : int;  (* complete shards verified against the manifest and skipped *)
  recovered : int;  (* complete entries rebuilt by scanning a torn manifest's shards *)
  quarantined : int;  (* quarantined entries in the final manifest *)
  cached_solves : int;  (* solves served from prior runs: skipped shards + checkpoint replays *)
  live_solves : int;  (* solves issued against the solver this run (completed shards) *)
  total_solves : int;  (* solves recorded across all complete shards *)
}

let manifest_file = "manifest.scm"
let shard_basename id = Printf.sprintf "shard-%04d.sca" id
let checkpoint_basename id = Printf.sprintf "shard-%04d.ckpt" id
let manifest_path dir = Filename.concat dir manifest_file

let extract_span = "shard.extract"
let skipped_counter = Trace.counter "shard.skipped"
let extracted_counter = Trace.counter "shard.extracted"
let quarantined_counter = Trace.counter "shard.quarantined"
let recovered_counter = Trace.counter "shard.recovered"

let src = Logs.Src.create "substrate.shard" ~doc:"Sharded extraction fault domains"

module Log = (val Logs.src_log src : Logs.LOG)

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* Entries from a previous run, keyed by shard id. A loadable manifest must
   agree with the plan (dimension, geometry digest, shard count, regions) —
   anything else is a different run and refusing beats silently mixing
   shards. A torn manifest degrades to a scan: every planned shard whose
   self-checksummed artifact loads and matches its region is recovered as
   Complete; quarantine records are lost, so those shards simply retry. *)
let previous_entries ~dir (p : plan) =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then (Hashtbl.create 1, 0)
  else
    match Manifest.load ~path with
    | m ->
      if m.Manifest.n <> p.n || not (String.equal m.Manifest.geometry_digest p.geometry_digest)
      then
        raise
          (Mismatch
             (Printf.sprintf "%s was written for a different layout (geometry digest mismatch)"
                path));
      if m.Manifest.total_shards <> Array.length p.shards then
        raise
          (Mismatch
             (Printf.sprintf "%s plans %d shards, this run plans %d (shard level changed?)" path
                m.Manifest.total_shards (Array.length p.shards)));
      let tbl = Hashtbl.create (Array.length m.Manifest.entries) in
      Array.iter
        (fun (e : Manifest.entry) ->
          let pl = p.shards.(e.shard_id) in
          if e.level <> pl.level || e.ix <> pl.ix || e.iy <> pl.iy || e.contacts <> pl.contacts
          then
            raise
              (Mismatch
                 (Printf.sprintf "%s: shard %d covers a different region than planned" path
                    e.shard_id));
          Hashtbl.replace tbl e.shard_id e)
        m.Manifest.entries;
      (tbl, 0)
    | exception Subcouple_op.Artifact.Error { error; _ } ->
      Log.warn (fun f ->
          f "manifest %s is unreadable (%s); rebuilding from shard artifacts" path
            (Subcouple_op.Artifact.error_message error));
      let tbl = Hashtbl.create (Array.length p.shards) in
      let recovered = ref 0 in
      Array.iter
        (fun s ->
          let file = shard_basename s.shard_id in
          let sca = Filename.concat dir file in
          if Sys.file_exists sca then
            match Subcouple_op.Artifact.load ~path:sca with
            | payload when payload.Subcouple_op.Artifact.n = Array.length s.contacts ->
              incr recovered;
              Trace.incr recovered_counter;
              Hashtbl.replace tbl s.shard_id
                {
                  Manifest.shard_id = s.shard_id;
                  level = s.level;
                  ix = s.ix;
                  iy = s.iy;
                  contacts = s.contacts;
                  file;
                  file_digest = Digest.file sca;
                  solves = payload.Subcouple_op.Artifact.solves;
                  status = Manifest.Complete;
                }
            | _ -> ()  (* wrong dimension: not this plan's shard; re-extract *)
            | exception Subcouple_op.Artifact.Error _ -> ()  (* torn shard: re-extract *))
        p.shards;
      (tbl, !recovered)

(* A shard-owned checkpoint whose very first write was torn (file shorter
   than the magic) raises Corrupt; inside the shard directory that can
   only be our own interrupted creation, so start it over. *)
let shard_checkpoint path =
  match Checkpoint.create path with
  | ck -> ck
  | exception Checkpoint.Corrupt _ ->
    Sys.remove path;
    Checkpoint.create path

let run ?(source = "sharded extraction") ~dir ~extract (p : plan) =
  ensure_dir dir;
  let prev, recovered = previous_entries ~dir p in
  let total = Array.length p.shards in
  let entries : Manifest.entry option array = Array.make total None in
  let manifest () =
    {
      Manifest.n = p.n;
      total_shards = total;
      geometry_digest = p.geometry_digest;
      source;
      entries =
        Array.of_list (List.filter_map Fun.id (Array.to_list entries));
    }
  in
  let save_manifest () = Manifest.save ~path:(manifest_path dir) (manifest ()) in
  let extracted = ref 0
  and skipped = ref 0
  and quarantined = ref 0
  and cached = ref 0
  and live = ref 0
  and first_index = ref 0 in
  Array.iter
    (fun shard ->
      let id = shard.shard_id in
      let file = shard_basename id in
      let sca_path = Filename.concat dir file in
      let reusable =
        match Hashtbl.find_opt prev id with
        | Some e when Manifest.is_complete e ->
          (* Trust nothing but bytes: the artifact must still hash to what
             the manifest recorded. A torn, missing or swapped file sends
             the shard back through extraction. *)
          if Sys.file_exists sca_path && String.equal (Digest.file sca_path) e.file_digest then
            Some e
          else begin
            Log.warn (fun f -> f "shard %d artifact %s is damaged or missing; re-extracting" id file);
            None
          end
        | _ -> None
      in
      match reusable with
      | Some e ->
        entries.(id) <- Some e;
        incr skipped;
        Trace.incr skipped_counter;
        cached := !cached + e.Manifest.solves;
        first_index := !first_index + e.Manifest.solves
      | None ->
        let ck = shard_checkpoint (Filename.concat dir (checkpoint_basename id)) in
        (match
           Trace.with_span extract_span (fun () ->
               extract ~shard ~first_index:!first_index ~checkpoint:ck)
         with
        | payload ->
          Checkpoint.close ck;
          Subcouple_op.Artifact.save ~path:sca_path payload;
          (* The artifact supersedes the checkpoint; drop it so a later
             resume never replays stale stages into a fresh re-extraction.
             Unlink unconditionally and swallow only ENOENT: the
             exists-then-remove spelling races with a concurrent resume
             that already removed (or is removing) the same file. *)
          let ck_path = Filename.concat dir (checkpoint_basename id) in
          (try Unix.unlink ck_path with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
          let solves = payload.Subcouple_op.Artifact.solves in
          entries.(id) <-
            Some
              {
                Manifest.shard_id = id;
                level = shard.level;
                ix = shard.ix;
                iy = shard.iy;
                contacts = shard.contacts;
                file;
                file_digest = Digest.file sca_path;
                solves;
                status = Manifest.Complete;
              };
          save_manifest ();
          incr extracted;
          Trace.incr extracted_counter;
          let replayed = Checkpoint.cached_solves ck in
          cached := !cached + replayed;
          live := !live + (solves - replayed);
          first_index := !first_index + solves
        | exception Blackbox.Solve_failed { index; reason } ->
          Checkpoint.close ck;
          Log.warn (fun f -> f "shard %d quarantined (solve %d: %s)" id index reason);
          entries.(id) <-
            Some
              {
                Manifest.shard_id = id;
                level = shard.level;
                ix = shard.ix;
                iy = shard.iy;
                contacts = shard.contacts;
                file = "";
                file_digest = "";
                solves = 0;
                status =
                  Manifest.Quarantined (Printf.sprintf "solve %d: %s" index reason);
              };
          save_manifest ();
          incr quarantined;
          Trace.incr quarantined_counter))
    p.shards;
  save_manifest ();
  let m = manifest () in
  let total_solves =
    List.fold_left (fun acc (e : Manifest.entry) -> acc + e.solves) 0 (Manifest.complete m)
  in
  ( m,
    {
      planned = total;
      extracted = !extracted;
      skipped = !skipped;
      recovered;
      quarantined = !quarantined;
      cached_solves = !cached;
      live_solves = !live;
      total_solves;
    } )
