(** Checkpointed extraction: persist completed solve stages to a versioned,
    checksummed file and resume after a crash or {!Blackbox.Solve_failed}
    without repeating any finished solve.

    The extraction drivers issue every solve through
    [Blackbox.apply_batch] in a deterministic stage order, so each batch is
    one checkpoint stage: {!wrap} memoizes stages onto disk keyed by their
    position and a digest of their right-hand sides. Resuming with the
    same layout/solver replays completed stages bit-identically from the
    file; a checkpoint from a different run raises {!Mismatch}. A torn
    tail (crash mid-append) is truncated away on load. *)

(** The file is not a checkpoint (bad magic / wrong version). *)
exception Corrupt of string

(** A replayed stage's right-hand sides differ from what was recorded. *)
exception Mismatch of { stage : int; message : string }

type t

(** [create path] opens or resumes a checkpoint file. Loads every intact
    completed stage, truncates any torn tail, and opens the file for
    appending. One [t] drives one extraction run. *)
val create : string -> t

(** Wrap a box so every [apply]/[apply_batch] becomes a checkpointed
    stage. Built with [~count_total:false], so replayed stages do not
    inflate {!Blackbox.total_solve_count} (the inner box never ran them);
    the wrapper's own [solve_count] still counts logical solves, keeping
    reported extraction solve counts identical to an uninterrupted run. *)
val wrap : t -> Blackbox.t -> Blackbox.t

val path : t -> string

(** Completed stages found in the file at {!create} time. *)
val stages_on_disk : t -> int

(** Stages served from the file so far in this run. *)
val hits : t -> int

(** Right-hand sides served from the file so far in this run (solves that
    were {e not} repeated). *)
val cached_solves : t -> int

(** Close the append channel. Further live stages still solve, but are no
    longer persisted. *)
val close : t -> unit
