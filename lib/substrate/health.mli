(** Per-solve quality reports and their thread-safe aggregation.

    Every black box owns a [t]; solvers (or the box wrapper itself, for
    solvers that report nothing) record one {!report} per solve. All
    recording goes through a mutex, so batched solves may report from any
    pool domain. *)

type report = {
  converged : bool;
  breakdown : bool;  (** CG stopped on a non-positive-definite direction *)
  residual : float;  (** final residual 2-norm (absolute) *)
  iterations : int;
  wall_s : float;
  finite : bool;  (** response passed the NaN/Inf scan *)
}

(** A clean placeholder report (converged, finite, zero cost) — the wrapper
    synthesizes from it when a solver publishes nothing. *)
val ok : report

type t

type summary = {
  s_solves : int;
  s_batches : int;
  s_non_converged : int;
  s_breakdowns : int;
  s_non_finite : int;
  s_total_iterations : int;
  s_solve_wall_s : float;  (** summed per-solve wall time (solver-reported) *)
  s_batch_wall_s : float;  (** summed wall time inside [apply_batch] *)
  s_worst_residual : float;
  s_last : report option;
}

val create : unit -> t

(** Wall clock, for timing solves. *)
val now : unit -> float

val record : t -> report -> unit

(** Record one batch event. [solves] is 0 when the per-solve reports are
    recorded separately by the solver. *)
val record_batch : t -> solves:int -> wall_s:float -> unit

(** Count one non-finite response (recorded in addition to the per-solve
    report, which a failing solver may never have published). *)
val record_non_finite : t -> unit

val summary : t -> summary

(** No non-convergence, no CG breakdowns, no non-finite responses. *)
val healthy : summary -> bool

val pp_summary : Format.formatter -> summary -> unit
