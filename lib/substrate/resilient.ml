(* Retry / escalation policies around a black-box solver.

   Wraps a primary box (and an optional ladder of lazily-built fallback
   boxes — tighter tolerance, different preconditioner, direct solver) with
   a bounded-attempt solve loop:

   - a *hard* failure is a [Blackbox.Solve_failed] (non-finite response);
   - a *soft* failure is a finite response whose solve report says the
     iteration did not converge (read from [Blackbox.last_report ()], which
     works because the attempt runs on this domain).

   Either kind advances to the next attempt: the primary again first (which
   recovers transient faults bit-identically — the retry re-runs the very
   same solver), then down the fallback ladder from attempt 3 on.
   Fallbacks are [Lazy.t] because building one can be expensive (a direct
   factorization, a re-planned eigenbasis); a ladder that is never needed
   costs nothing.

   When attempts are exhausted the policy either raises a typed
   [Solve_failed] naming the logical solve index ([Fail]) or records the
   failure and substitutes the best finite iterate seen — lowest reported
   residual, or zeros if every attempt was hard ([Degrade]). Degraded
   solves are never silent: they are pushed onto [failures] and flagged in
   the box's health record.

   Every attempt runs under [Blackbox.with_context ~index ~attempt], giving
   inner wrappers (fault injection) and error messages a stable logical
   solve index independent of retries and scheduling. Batches assign
   index = base + position, so the numbering is identical for every [jobs]
   value. *)

let src = Logs.Src.create "substrate.resilient" ~doc:"Black-box solve retry/escalation"

module Log = (val Logs.src_log src : Logs.LOG)

type on_exhausted = Fail | Degrade

type policy = {
  max_attempts : int;  (* total attempts per solve, including the first *)
  retry_non_converged : bool;  (* treat a non-converged report as a failure *)
  on_exhausted : on_exhausted;
}

let default_policy = { max_attempts = 3; retry_non_converged = true; on_exhausted = Fail }
let fail_fast = { max_attempts = 1; retry_non_converged = false; on_exhausted = Fail }
let degrade = { default_policy with on_exhausted = Degrade }

type failure = {
  solve_index : int;
  attempts : int;
  degraded : bool;  (* false: raised Solve_failed; true: substituted an iterate *)
  reason : string;
}

type t = {
  policy : policy;
  primary : Blackbox.t;
  fallbacks : (string * Blackbox.t Lazy.t) array;
  n : int;
  next_index : int Atomic.t;
  retries : int Atomic.t;
  mutex : Mutex.t;
  mutable failures : failure list;  (* most recent first *)
}

let create ?(policy = default_policy) ?(fallbacks = []) ?(first_index = 0) primary =
  if policy.max_attempts < 1 then invalid_arg "Resilient.create: max_attempts must be >= 1";
  if first_index < 0 then invalid_arg "Resilient.create: first_index must be non-negative";
  {
    policy;
    primary;
    fallbacks = Array.of_list fallbacks;
    n = Blackbox.n primary;
    next_index = Atomic.make first_index;
    retries = Atomic.make 0;
    mutex = Mutex.create ();
    failures = [];
  }

(* Attempt k (1-based): the primary twice, then the fallback ladder,
   parking on its last rung. Attempt 2 retrying the primary is what keeps
   transient-fault recovery bit-identical to a clean run — escalating to a
   fallback (tighter tolerance, different preconditioner) would solve the
   same right-hand side to different bits. The ladder is for faults that
   survive a plain retry. With no fallbacks every attempt retries the
   primary. *)
let box_for t k =
  if k <= 2 || Array.length t.fallbacks = 0 then ("primary", t.primary)
  else begin
    let i = min (k - 3) (Array.length t.fallbacks - 1) in
    let name, lazy_box = t.fallbacks.(i) in
    (name, Lazy.force lazy_box)
  end

let record_failure t f =
  Mutex.protect t.mutex (fun () -> t.failures <- f :: t.failures)

let attempt_span = "resilient.attempt"
let retry_counter = Trace.counter "resilient.retries"
let degraded_counter = Trace.counter "resilient.degraded"

let describe_soft (r : Health.report) =
  Printf.sprintf "not converged (residual %.3e after %d iterations%s)" r.residual r.iterations
    (if r.breakdown then ", CG breakdown" else "")

let solve_indexed t index v =
  (* [best] is the lowest-residual finite iterate across soft failures;
     hard failures contribute nothing. *)
  let rec attempt k ~best ~log_lines =
    let label, box = box_for t k in
    match
      Blackbox.with_context ~index ~attempt:k (fun () ->
          Trace.with_span attempt_span (fun () -> Blackbox.apply box v))
    with
    | y ->
      let report = Blackbox.last_report () in
      let soft =
        t.policy.retry_non_converged
        && match report with Some r -> not r.converged | None -> false
      in
      if not soft then begin
        if k > 1 then
          Log.info (fun m -> m "solve %d recovered on attempt %d (%s)" index k label);
        y
      end
      else begin
        let r = Option.get report in
        let line = Printf.sprintf "attempt %d (%s): %s" k label (describe_soft r) in
        let best =
          match best with
          | Some (_, res) when res <= r.residual -> best
          | _ -> Some (y, r.residual)
        in
        next k ~best ~log_lines:(line :: log_lines)
      end
    | exception Blackbox.Solve_failed f ->
      let line = Printf.sprintf "attempt %d (%s): %s" k label f.reason in
      next k ~best ~log_lines:(line :: log_lines)
  and next k ~best ~log_lines =
    if k < t.policy.max_attempts then begin
      Atomic.incr t.retries;
      Trace.incr retry_counter;
      attempt (k + 1) ~best ~log_lines
    end
    else exhausted ~best ~log_lines
  and exhausted ~best ~log_lines =
    let reason = String.concat "; " (List.rev log_lines) in
    match t.policy.on_exhausted with
    | Fail ->
      record_failure t
        { solve_index = index; attempts = t.policy.max_attempts; degraded = false; reason };
      raise
        (Blackbox.Solve_failed
           {
             index;
             reason =
               Printf.sprintf "failed after %d attempt(s): %s" t.policy.max_attempts reason;
           })
    | Degrade ->
      record_failure t
        { solve_index = index; attempts = t.policy.max_attempts; degraded = true; reason };
      Log.warn (fun m ->
          m "solve %d degraded after %d attempt(s): %s" index t.policy.max_attempts reason);
      Trace.incr degraded_counter;
      (* Flag the substitution in the wrapper box's health record: the
         synthesized report below is what [make_batch] picks up. *)
      Blackbox.set_pending_report
        { Health.ok with converged = false; residual = Float.infinity };
      (match best with
      | Some (y, _) -> y
      | None -> Array.make t.n 0.0)
  in
  attempt 1 ~best:None ~log_lines:[]

let blackbox t =
  let solve v = solve_indexed t (Atomic.fetch_and_add t.next_index 1) v in
  let batch ~jobs vs =
    let base = Atomic.fetch_and_add t.next_index (Array.length vs) in
    let one i = solve_indexed t (base + i) vs.(i) in
    if jobs <= 1 || Array.length vs <= 1 then Array.init (Array.length vs) one
    else
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.map_chunks pool one (Array.init (Array.length vs) Fun.id))
  in
  Blackbox.make_batch ~count_total:false ~n:t.n ~batch solve

let retries t = Atomic.get t.retries
let failures t = Mutex.protect t.mutex (fun () -> List.rev t.failures)
let degraded_count t =
  Mutex.protect t.mutex (fun () ->
      List.fold_left (fun acc f -> if f.degraded then acc + 1 else acc) 0 t.failures)

let pp_failure ppf f =
  Format.fprintf ppf "solve %d (%s after %d attempt(s)): %s" f.solve_index
    (if f.degraded then "degraded" else "failed")
    f.attempts f.reason
