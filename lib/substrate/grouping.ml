(* Compound electrical contacts (thesis §5.2: "is it possible to handle
   extremely large or long contacts efficiently? Right now they need to be
   broken up into many small contacts so that each fits in a finest-level
   square").

   The geometric pieces stay small — the sparsification algorithms operate
   on them unchanged — but a grouping ties pieces into electrical nodes:
   with S the 0/1 piece-to-group incidence matrix, the electrical
   conductance matrix is G_elec = S' G_pieces S (same voltage on every
   piece of a group; group current is the sum over its pieces). Both the
   exact black box and a sparsified representation lift through the same
   two maps, so a guard ring of twelve strips becomes one circuit node at
   zero extra extraction cost. *)

type t = {
  n_pieces : int;
  n_groups : int;
  group_of : int array;  (* piece -> group *)
  members : int array array;  (* group -> pieces *)
}

let of_group_ids group_of =
  let n_pieces = Array.length group_of in
  if n_pieces = 0 then invalid_arg "Grouping.of_group_ids: empty";
  let n_groups = 1 + Array.fold_left max (-1) group_of in
  let counts = Array.make n_groups 0 in
  Array.iter
    (fun g ->
      if g < 0 then invalid_arg "Grouping.of_group_ids: negative group id";
      counts.(g) <- counts.(g) + 1)
    group_of;
  Array.iteri
    (fun g c -> if c = 0 then invalid_arg (Printf.sprintf "Grouping.of_group_ids: empty group %d" g))
    counts;
  let members = Array.map (fun c -> Array.make c 0) counts in
  let next = Array.make n_groups 0 in
  Array.iteri
    (fun piece g ->
      members.(g).(next.(g)) <- piece;
      next.(g) <- next.(g) + 1)
    group_of;
  { n_pieces; n_groups; group_of; members }

let identity n = of_group_ids (Array.init n Fun.id)

let n_pieces t = t.n_pieces
let n_groups t = t.n_groups
let members t g = t.members.(g)

(* S v: group voltages to piece voltages. *)
let expand t (v : La.Vec.t) : La.Vec.t =
  if Array.length v <> t.n_groups then invalid_arg "Grouping.expand: group count mismatch";
  Array.map (fun g -> v.(g)) t.group_of

(* S' i: piece currents summed per group. *)
let reduce t (i : La.Vec.t) : La.Vec.t =
  if Array.length i <> t.n_pieces then invalid_arg "Grouping.reduce: piece count mismatch";
  let out = Array.make t.n_groups 0.0 in
  Array.iteri (fun piece g -> out.(g) <- out.(g) +. i.(piece)) t.group_of;
  out

(* Lift any piece-level application of G to the electrical level. *)
let lift t apply (v : La.Vec.t) : La.Vec.t = reduce t (apply (expand t v))

(* The electrical-level black box S' G S. *)
let wrap_blackbox t bb =
  if Blackbox.n bb <> t.n_pieces then invalid_arg "Grouping.wrap_blackbox: piece count mismatch";
  Blackbox.make ~n:t.n_groups (lift t (Blackbox.apply bb))
