(* Checkpointed extraction: persist completed solve stages, resume after a
   crash or Solve_failed without repeating any finished solve.

   The wavelet and low-rank drivers issue every solve through
   [Blackbox.apply_batch] in a deterministic stage order (root projection,
   per-level combine solves, samples, split responses, ...). That makes
   apply_batch calls the natural checkpoint grain: [wrap] memoizes each
   *stage* (one batch) onto disk, keyed by its position in the run and a
   digest of its right-hand sides. On resume, stages replay from the file
   in order — the digest check catches a checkpoint from a different
   layout, solver or seed — and the first stage beyond the file runs live
   and is appended.

   File format (version in the magic string):

     "SUBCKPT1\n"
     repeat: Marshal(checksum : Digest.t, payload : string)
       where payload = Marshal(stage_digest : string,
                               responses : float array array)

   Records are self-delimiting (Marshal framing) and individually
   checksummed; loading stops at the first truncated or corrupt record and
   the file is truncated back to the last good byte, so a crash mid-append
   costs at most the interrupted stage. *)

exception Corrupt of string
exception Mismatch of { stage : int; message : string }

let () =
  Printexc.register_printer (function
    | Corrupt m -> Some (Printf.sprintf "Substrate.Checkpoint.Corrupt(%s)" m)
    | Mismatch { stage; message } ->
      Some (Printf.sprintf "Substrate.Checkpoint.Mismatch(stage %d: %s)" stage message)
    | _ -> None)

let magic = "SUBCKPT1\n"

type entry = { stage_digest : string; responses : La.Vec.t array }

type t = {
  path : string;
  mutex : Mutex.t;
  completed : entry array;  (* loaded at create, replayed in order *)
  mutable cursor : int;  (* next stage index *)
  mutable hits : int;  (* stages served from the file *)
  mutable cached_solves : int;  (* right-hand sides served from the file *)
  mutable oc : out_channel option;  (* append channel, opened at create *)
}

(* Read entries until EOF, a truncated record or a checksum failure.
   Returns the good entries and the byte offset just past the last one. *)
let load_entries path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len = 0 then (* an empty file is a fresh checkpoint *)
        ([], 0)
      else if len < String.length magic then
        (* A non-empty file too short to even hold the magic is not a
           checkpoint. Treating it as fresh used to truncate and overwrite
           it — a mistyped --checkpoint path destroyed an arbitrary small
           file. Refuse instead, like any other bad-magic file. *)
        raise
          (Corrupt
             (Printf.sprintf
                "%s: not a checkpoint file (%d bytes, shorter than the magic; refusing to \
                 overwrite)"
                path len))
      else begin
        let header = really_input_string ic (String.length magic) in
        if header <> magic then
          raise
            (Corrupt
               (Printf.sprintf "%s: not a checkpoint file (bad magic %S)" path header));
        let entries = ref [] in
        let good = ref (pos_in ic) in
        (* Expected ends of a torn tail: [End_of_file] (record cut mid-read),
           [Failure] (Marshal rejects a truncated/corrupt object) and [Exit]
           (our own checksum mismatch above). Anything else — Sys_error on a
           failing disk, allocation failure, a programmer error — must
           propagate rather than be mistaken for "end of checkpoint". *)
        (try
           while pos_in ic < len do
             let checksum, payload = (Marshal.from_channel ic : Digest.t * string) in
             if Digest.string payload <> checksum then raise Exit;
             let stage_digest, responses =
               (Marshal.from_string payload 0 : string * La.Vec.t array)
             in
             entries := { stage_digest; responses } :: !entries;
             good := pos_in ic
           done
         with End_of_file | Failure _ | Exit -> ());
        (List.rev !entries, !good)
      end)

(* Push a flushed append to stable storage. Without the fsync a power loss
   can forget records the process already counted as persisted — a resume
   would then re-run solves it believes are on disk. *)
let sync oc =
  Subcouple_op.Io_retry.restart (fun () -> Unix.fsync (Unix.descr_of_out_channel oc))

(* Make the checkpoint file's directory entry itself durable (matters for
   the very first append after creating the file). Best-effort: some
   filesystems refuse to open a directory for reading. *)
let fsync_dir path =
  match
    Subcouple_op.Io_retry.restart (fun () ->
        Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0)
  with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> Subcouple_op.Io_retry.restart (fun () -> Unix.fsync fd))
  | exception Unix.Unix_error _ -> ()

let create path =
  let entries, good_len =
    if Sys.file_exists path then load_entries path else ([], 0)
  in
  (* Drop any torn tail so the append channel starts at a record boundary. *)
  if Sys.file_exists path && (Unix.stat path).Unix.st_size > good_len then
    Unix.truncate path good_len;
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
  in
  fsync_dir path;
  if good_len = 0 then begin
    output_string oc magic;
    flush oc;
    sync oc
  end;
  {
    path;
    mutex = Mutex.create ();
    completed = Array.of_list entries;
    cursor = 0;
    hits = 0;
    cached_solves = 0;
    oc = Some oc;
  }

let digest_stage ~stage rhs = Digest.to_hex (Digest.string (Marshal.to_string (stage, rhs) []))

let replay_span = "checkpoint.stage.replay"
let solve_span = "checkpoint.stage.solve"
let replay_counter = Trace.counter "checkpoint.replay_hits"

let append t ~stage_digest responses =
  match t.oc with
  | None -> ()  (* closed: keep solving, stop persisting *)
  | Some oc ->
    let payload = Marshal.to_string (stage_digest, responses) [] in
    Marshal.to_channel oc (Digest.string payload, payload) [];
    flush oc;
    sync oc

(* Serve stage [cursor] from the file if present (digest must match),
   otherwise run [solve] and append the result. The mutex serializes
   stages; extraction drivers issue them sequentially anyway. *)
let stage t ~rhs solve =
  Mutex.protect t.mutex (fun () ->
      let stage = t.cursor in
      let stage_digest = digest_stage ~stage rhs in
      if stage < Array.length t.completed then
        Trace.with_span replay_span (fun () ->
            let e = t.completed.(stage) in
            if e.stage_digest <> stage_digest then
              raise
                (Mismatch
                   {
                     stage;
                     message =
                       Printf.sprintf
                         "%s was written by a different run (layout/solver/seed changed?)" t.path;
                   });
            t.cursor <- stage + 1;
            t.hits <- t.hits + 1;
            t.cached_solves <- t.cached_solves + Array.length e.responses;
            Trace.incr replay_counter;
            e.responses)
      else
        Trace.with_span solve_span (fun () ->
            let responses = solve () in
            append t ~stage_digest responses;
            t.cursor <- stage + 1;
            responses))

(* Wrap a box so every apply/apply_batch becomes a checkpointed stage.
   [~count_total:false]: replayed stages must not inflate the process-wide
   solve tally (the inner box never ran them). *)
let wrap t inner =
  Blackbox.make_batch ~count_total:false ~n:(Blackbox.n inner)
    ~batch:(fun ~jobs vs -> stage t ~rhs:vs (fun () -> Blackbox.apply_batch ~jobs inner vs))
    (fun v -> (stage t ~rhs:[| v |] (fun () -> [| Blackbox.apply inner v |])).(0))

let path t = t.path
let stages_on_disk t = Array.length t.completed
let hits t = t.hits
let cached_solves t = t.cached_solves

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        close_out_noerr oc;
        t.oc <- None)
