(** Sharded, crash-safe extraction: quadtree regions as independent fault
    domains.

    A shard is one nonempty quadtree square at a chosen level. Its unit of
    work is extracting the principal submatrix [G(C_s, C_s)] over the
    shard's contacts through {!restricted_box}; each shard owns its own
    checkpoint file and persists its own single-operator artifact, and a
    versioned, checksummed manifest ({!Subcouple_op.Artifact.Manifest})
    ties the shards together. {!run} streams shards to disk — peak memory
    is per-shard — and rewrites the manifest atomically and durably after
    every shard transition, so a run can be SIGKILLed at any solve and
    resumed:

    - complete shards whose artifact still matches the manifest's digest
      are skipped;
    - an interrupted shard replays its checkpoint and solves only the
      remainder;
    - a torn or bit-rotted shard artifact is re-extracted;
    - a torn manifest is rebuilt by scanning the self-checksummed shard
      artifacts against the deterministic plan;
    - a shard that exhausts its resilience ladder ({!Blackbox.Solve_failed})
      is {e quarantined} — recorded with the failure reason instead of
      aborting — and retried on the next resume.

    Solve numbering is run-global: shard [k]'s first logical index is the
    sum of solves recorded by complete shards before it in plan order, so
    index-addressed fault injection ({!Chaos}) hits the same sites whether
    the run is fresh or resumed. *)

(** A persisted shard manifest resumes only against the identical plan. *)
exception Mismatch of string

type planned = {
  shard_id : int;  (** position in the plan, also the artifact file number *)
  level : int;  (** quadtree level of the region *)
  ix : int;  (** region x index at [level] *)
  iy : int;  (** region y index at [level] *)
  contacts : int array;  (** global contact ids, strictly ascending *)
}

type plan = {
  n : int;  (** global operator dimension *)
  geometry_digest : string;  (** {!Geometry.Layout.digest} of the layout *)
  shards : planned array;  (** nonempty regions, deterministic order *)
}

(** The deterministic shard plan: nonempty quadtree squares at
    [shard_level], contacts assigned by centroid, in the row-major square
    order. A pure function of (layout, shard_level).
    @raise Invalid_argument if [shard_level < 0]. *)
val plan : shard_level:int -> Geometry.Layout.t -> plan

(** [restricted_box ~contacts inner] is the black box over the shard's
    coordinates: scatter into the full dimension, solve with [inner],
    gather the shard rows back — exactly the principal submatrix
    [G(C_s, C_s)]. Built with [~count_total:false]; only [inner]'s solves
    reach {!Blackbox.total_solve_count}.
    @raise Invalid_argument on an out-of-range contact id. *)
val restricted_box : contacts:int array -> Blackbox.t -> Blackbox.t

type progress = {
  planned : int;
  extracted : int;  (** shards extracted (or re-extracted) this run *)
  skipped : int;  (** complete shards verified against the manifest and skipped *)
  recovered : int;  (** complete entries rebuilt by scanning a torn manifest's shards *)
  quarantined : int;  (** quarantined entries in the final manifest *)
  cached_solves : int;  (** solves served from prior runs: skipped shards + checkpoint replays *)
  live_solves : int;  (** solves issued against the solver this run (completed shards) *)
  total_solves : int;  (** solves recorded across all complete shards *)
}

(** Name of the manifest inside a shard directory (["manifest.scm"]). *)
val manifest_file : string

(** ["shard-%04d.sca"], relative to the shard directory. *)
val shard_basename : int -> string

(** ["shard-%04d.ckpt"], relative to the shard directory. *)
val checkpoint_basename : int -> string

(** [Filename.concat dir manifest_file]. *)
val manifest_path : string -> string

(** [run ~dir ~extract plan] drives the plan to completion inside [dir]
    (created if missing), resuming from whatever state a previous run left
    there. [extract ~shard ~first_index ~checkpoint] performs one shard's
    extraction — [first_index] is the shard's run-global base solve index
    and [checkpoint] its open per-shard checkpoint (closed by the driver) —
    and returns the shard's artifact payload. A
    {!Blackbox.Solve_failed} escaping [extract] quarantines the shard;
    any other exception aborts the run (the manifest still holds every
    shard finished so far). Returns the final manifest and the run's
    progress counters.
    @raise Mismatch if [dir] holds a manifest for a different layout or
    plan. *)
val run :
  ?source:string ->
  dir:string ->
  extract:
    (shard:planned ->
    first_index:int ->
    checkpoint:Checkpoint.t ->
    Subcouple_op.Artifact.payload) ->
  plan ->
  Subcouple_op.Artifact.Manifest.t * progress
