(** Deterministic fault injection for black-box solves: the test harness for
    the failure-reporting and retry machinery.

    A chaos box wraps an inner box and corrupts the solves whose logical
    index [i] satisfies [i >= offset && (i - offset) mod every = 0]. The
    logical index is the right-hand side's position in the extraction's
    fixed stage order (batch base + position), so fault sites are identical
    for every [jobs] value and with or without a {!Resilient} wrapper in
    front (which passes the index through {!Blackbox.with_context}).
    Injections are idempotent per (index, attempt): repeating a solve
    reproduces the same outcome bit-for-bit. *)

type fault =
  | Transient
      (** NaN response on attempt 1 only, produced {e without} running the
          inner solve; a retry solves cleanly, so recovery under a retry
          policy is bit-identical to a fault-free run. *)
  | Nan_response  (** NaN response on every attempt (hard, persistent fault). *)
  | Perturb of float
      (** Multiply each response component by [1 + eps * N(0,1)], with the
          noise a pure function of (seed, solve index). *)
  | Non_convergence
      (** Correct response, but the solve report is replaced by a
          non-converged one on attempt 1 (soft failure). *)
  | Kill
      (** SIGKILL the process at the fault site, before the inner solve
          runs: the crash no handler, finalizer or atexit can soften. Used
          by the kill-anywhere harness to prove that resume recovers from
          whatever the checkpoint/manifest machinery had already fsync'd. *)

type t

(** [create ~every ~fault inner] builds the injector. [offset] (default 0)
    shifts the fault sites; [seed] (default 0) keys the [Perturb] noise. *)
val create : ?seed:int -> ?offset:int -> every:int -> fault:fault -> Blackbox.t -> t

(** The wrapped box (built with [~count_total:false]: only real inner
    solves reach {!Blackbox.total_solve_count}). *)
val box : t -> Blackbox.t

(** Number of faults injected so far. *)
val injected : t -> int

(** [kill_schedule ~seed ~points ~max_index] draws [points] distinct
    logical solve indices in [\[0, max_index)], sorted ascending — a pure
    function of [seed]. The kill-anywhere harness sites one {!Kill} fault
    at each point in turn.
    @raise Invalid_argument if [points <= 0] or [max_index < points]. *)
val kill_schedule : seed:int -> points:int -> max_index:int -> int array
