(** Black-box substrate solver: contact voltages to contact currents, with
    solve counting, NaN/Inf detection and per-box solve-quality aggregation.
    The sparsification algorithms touch G only through this interface.

    The solve counter is an [Atomic], so it stays exact when a batch
    implementation applies the box from several domains concurrently. *)

type t

(** Raised by {!apply} / {!apply_batch} when a response contains NaN/Inf
    (and by resilience wrappers when every attempt at a solve failed).
    [index] is the logical solve index: the position within the batch plus
    the box's solve count at batch start — deterministic for a fixed
    extraction, independent of [jobs]. *)
exception Solve_failed of { index : int; reason : string }

(** [make ~n solve] wraps a solver for [n] contacts. Applications are counted
    and argument length is validated. Batched applications run the
    right-hand sides sequentially (an arbitrary closure may hold mutable
    scratch state, so it is never parallelized behind the solver's back).

    [?health]: pass the solver's own {!Health.t} if it publishes per-solve
    reports via {!report_solve}; otherwise the box synthesizes a report per
    solve (wall time + finite scan only). [?count_total] (default [true]):
    wrapper boxes that delegate to an inner box pass [false] so
    {!total_solve_count} counts only real underlying solves. *)
val make : ?health:Health.t -> ?count_total:bool -> n:int -> (La.Vec.t -> La.Vec.t) -> t

(** [make_batch ~n ~batch solve] additionally supplies a multi-RHS
    implementation, called as [batch ~jobs vs]; it must return one response
    per right-hand side, in input order. A solver whose per-solve state is
    cloned per domain (e.g. {!Eigsolver.Eig_solver.blackbox}) uses this to
    run independent solves in parallel. *)
val make_batch :
  ?health:Health.t ->
  ?count_total:bool ->
  n:int ->
  batch:(jobs:int -> La.Vec.t array -> La.Vec.t array) ->
  (La.Vec.t -> La.Vec.t) ->
  t

val n : t -> int

(** Solve one right-hand side.
    @raise Solve_failed if the response contains non-finite values. *)
val apply : t -> La.Vec.t -> La.Vec.t

(** [apply_batch ~jobs t vs] solves every right-hand side and returns the
    responses in input order; each RHS counts as one solve. [jobs]
    (default 1 = sequential) is the total parallelism forwarded to the
    solver's batch implementation.
    @raise Solve_failed on the first non-finite response (by batch
    position), after the whole batch has run. *)
val apply_batch : ?jobs:int -> t -> La.Vec.t array -> La.Vec.t array

val solve_count : t -> int
val reset_count : t -> unit

(** The box as the canonical exact {!Subcouple_op.t}: the reference
    operator every sparsified representation is measured against.
    Applications remain counted, validated and NaN-scanned;
    [Subcouple_op.solves_spent] reads the live solve counter. *)
val op : t -> Subcouple_op.t

(** The box's aggregated solve-quality record: convergence failures, CG
    breakdowns, non-finite responses, iteration and wall-time totals. *)
val health : t -> Health.t

(** The diagnostic attached to {!Solve_failed} for a response [v]: names
    the first non-finite component, or states explicitly that a re-scan
    found every component finite (a response can be {e reported} bad by a
    wrapper while scanning clean — the diagnostic must not crash then). *)
val non_finite_reason : La.Vec.t -> string

(** Process-wide solve tally across every black box ever constructed (never
    reset). Benchmarks diff it around an experiment to report total solve
    cost; wrapper boxes built with [~count_total:false] do not contribute,
    so the tally counts real underlying solves only. *)
val total_solve_count : unit -> int

(** Wrap a dense conductance matrix as a black box. Its batch
    implementation is parallel (gemv is pure). *)
val of_dense : La.Mat.t -> t

(** Naive extraction: n solves, one per contact (thesis §1.2). Responses are
    written into pre-assigned columns, so the result is bit-identical for
    every [jobs]. *)
val extract_dense : ?jobs:int -> t -> La.Mat.t

(** Extract the given columns of G (for sampled error estimates on large
    examples). One fresh unit vector per column — nothing is shared across
    solves.
    @raise Invalid_argument naming any out-of-range index, before any
    solve runs. *)
val extract_columns : ?jobs:int -> t -> int array -> La.Vec.t array

(** {2 Solve-quality side channels}

    The solve signature ([vec -> vec]) cannot carry metadata, so per-solve
    quality flows through domain-local slots. All of these are transparent
    to code that ignores them. *)

(** A solver calls [report_solve health r] just before returning a
    response: [r] is aggregated into [health] and deposited for the box
    wrapper, which completes its [finite] field and exposes it via
    {!last_report}. Must be called on the domain performing the solve
    (batch implementations already satisfy this). *)
val report_solve : Health.t -> Health.report -> unit

(** Deposit a report for the wrapper {e without} aggregating it anywhere —
    used by fault injection to fake a solver outcome. *)
val set_pending_report : Health.report -> unit

(** The report of the most recent {!apply} on the current domain (finite
    scan included). Retry policies read it to detect soft failures. *)
val last_report : unit -> Health.report option

(** [with_context ~index ~attempt f] runs [f] with the current domain's
    solve context set: [index] is the logical solve index and [attempt]
    the 1-based attempt number. Retry policies set it around each attempt
    so wrapped boxes (fault injection, error reporting) see stable solve
    identities regardless of retries or scheduling. *)
val with_context : index:int -> attempt:int -> (unit -> 'a) -> 'a

(** The current domain's solve context, if any. *)
val context : unit -> (int * int) option
