(** Black-box substrate solver: contact voltages to contact currents, with
    solve counting. The sparsification algorithms touch G only through this
    interface.

    The solve counter is an [Atomic], so it stays exact when a batch
    implementation applies the box from several domains concurrently. *)

type t

(** [make ~n solve] wraps a solver for [n] contacts. Applications are counted
    and argument length is validated. Batched applications run the
    right-hand sides sequentially (an arbitrary closure may hold mutable
    scratch state, so it is never parallelized behind the solver's back). *)
val make : n:int -> (La.Vec.t -> La.Vec.t) -> t

(** [make_batch ~n ~batch solve] additionally supplies a multi-RHS
    implementation, called as [batch ~jobs vs]; it must return one response
    per right-hand side, in input order. A solver whose per-solve state is
    cloned per domain (e.g. {!Eigsolver.Eig_solver.blackbox}) uses this to
    run independent solves in parallel. *)
val make_batch :
  n:int -> batch:(jobs:int -> La.Vec.t array -> La.Vec.t array) -> (La.Vec.t -> La.Vec.t) -> t

val n : t -> int
val apply : t -> La.Vec.t -> La.Vec.t

(** [apply_batch ~jobs t vs] solves every right-hand side and returns the
    responses in input order; each RHS counts as one solve. [jobs]
    (default 1 = sequential) is the total parallelism forwarded to the
    solver's batch implementation. *)
val apply_batch : ?jobs:int -> t -> La.Vec.t array -> La.Vec.t array

val solve_count : t -> int
val reset_count : t -> unit

(** Process-wide solve tally across every black box ever constructed (never
    reset). Benchmarks diff it around an experiment to report total solve
    cost. *)
val total_solve_count : unit -> int

(** Wrap a dense conductance matrix as a black box. Its batch
    implementation is parallel (gemv is pure). *)
val of_dense : La.Mat.t -> t

(** Naive extraction: n solves, one per contact (thesis §1.2). Responses are
    written into pre-assigned columns, so the result is bit-identical for
    every [jobs]. *)
val extract_dense : ?jobs:int -> t -> La.Mat.t

(** Extract the given columns of G (for sampled error estimates on large
    examples). One fresh unit vector per column — nothing is shared across
    solves. *)
val extract_columns : ?jobs:int -> t -> int array -> La.Vec.t array
