(** Black-box substrate solver: contact voltages to contact currents, with
    solve counting. The sparsification algorithms touch G only through this
    interface. *)

type t

(** [make ~n solve] wraps a solver for [n] contacts. Applications are counted
    and argument length is validated. *)
val make : n:int -> (La.Vec.t -> La.Vec.t) -> t

val n : t -> int
val apply : t -> La.Vec.t -> La.Vec.t
val solve_count : t -> int
val reset_count : t -> unit

(** Wrap a dense conductance matrix as a black box. *)
val of_dense : La.Mat.t -> t

(** Naive extraction: n solves, one per contact (thesis §1.2). *)
val extract_dense : t -> La.Mat.t

(** Extract the given columns of G (for sampled error estimates on large
    examples). *)
val extract_columns : t -> int array -> La.Vec.t array
