(* Per-solve quality reports and their thread-safe aggregation.

   A black-box solve can go wrong in three distinct ways that a caller
   needs to tell apart: the Krylov iteration ran out of budget
   (non-convergence — the iterate is stale but usually finite), the CG
   recurrence broke down on a non-SPD direction (more iterations would
   not have helped), or the response contains NaN/Inf (garbage that must
   never be folded into a representation). Solvers publish one [report]
   per solve; a [t] aggregates them under a mutex so batched solves can
   record from any pool domain. *)

type report = {
  converged : bool;
  breakdown : bool;  (* CG met a non-positive-definite direction *)
  residual : float;  (* final 2-norm residual (absolute) *)
  iterations : int;
  wall_s : float;
  finite : bool;  (* response passed the NaN/Inf scan *)
}

let ok = { converged = true; breakdown = false; residual = 0.0; iterations = 0; wall_s = 0.0; finite = true }

type t = {
  mutex : Mutex.t;
  mutable solves : int;
  mutable batches : int;
  mutable non_converged : int;
  mutable breakdowns : int;
  mutable non_finite : int;
  mutable total_iterations : int;
  mutable solve_wall_s : float;
  mutable batch_wall_s : float;
  mutable worst_residual : float;
  mutable last : report option;
}

type summary = {
  s_solves : int;
  s_batches : int;
  s_non_converged : int;
  s_breakdowns : int;
  s_non_finite : int;
  s_total_iterations : int;
  s_solve_wall_s : float;
  s_batch_wall_s : float;
  s_worst_residual : float;
  s_last : report option;
}

let create () =
  {
    mutex = Mutex.create ();
    solves = 0;
    batches = 0;
    non_converged = 0;
    breakdowns = 0;
    non_finite = 0;
    total_iterations = 0;
    solve_wall_s = 0.0;
    batch_wall_s = 0.0;
    worst_residual = 0.0;
    last = None;
  }

let now () = Unix.gettimeofday ()

let record t r =
  Mutex.protect t.mutex (fun () ->
      t.solves <- t.solves + 1;
      if not r.converged then t.non_converged <- t.non_converged + 1;
      if r.breakdown then t.breakdowns <- t.breakdowns + 1;
      if not r.finite then t.non_finite <- t.non_finite + 1;
      t.total_iterations <- t.total_iterations + r.iterations;
      t.solve_wall_s <- t.solve_wall_s +. r.wall_s;
      if r.residual > t.worst_residual then t.worst_residual <- r.residual;
      t.last <- Some r)

(* One batch event: [solves] is 0 for boxes whose solver already records a
   per-solve report (the batch wall clock is still worth keeping — it is
   what the resilience-overhead benchmark measures). *)
let record_batch t ~solves ~wall_s =
  Mutex.protect t.mutex (fun () ->
      t.batches <- t.batches + 1;
      t.solves <- t.solves + solves;
      t.batch_wall_s <- t.batch_wall_s +. wall_s)

let record_non_finite t =
  Mutex.protect t.mutex (fun () -> t.non_finite <- t.non_finite + 1)

let summary t =
  Mutex.protect t.mutex (fun () ->
      {
        s_solves = t.solves;
        s_batches = t.batches;
        s_non_converged = t.non_converged;
        s_breakdowns = t.breakdowns;
        s_non_finite = t.non_finite;
        s_total_iterations = t.total_iterations;
        s_solve_wall_s = t.solve_wall_s;
        s_batch_wall_s = t.batch_wall_s;
        s_worst_residual = t.worst_residual;
        s_last = t.last;
      })

let healthy s = s.s_non_converged = 0 && s.s_breakdowns = 0 && s.s_non_finite = 0

let pp_summary ppf s =
  Format.fprintf ppf
    "solves=%d batches=%d non_converged=%d breakdowns=%d non_finite=%d iterations=%d wall=%.3fs worst_residual=%.3e"
    s.s_solves s.s_batches s.s_non_converged s.s_breakdowns s.s_non_finite s.s_total_iterations
    (if s.s_solve_wall_s > 0.0 then s.s_solve_wall_s else s.s_batch_wall_s)
    s.s_worst_residual
