(* A fixed-size domain worker pool over the OCaml 5 stdlib (Domain + Mutex +
   Condition only; no domainslib).

   The substrate extraction pipelines issue many independent
   one-right-hand-side solves (one per contact, per basis vector, per random
   sample); the pool runs them on [jobs] domains while keeping results
   bit-for-bit deterministic: every work item writes into a pre-assigned
   slot, so the schedule never influences the output.

   The pool holds [jobs - 1] persistent worker domains; the caller of
   [parallel_for] / [map_chunks] drains the same queue, so [jobs] domains in
   total make progress. With [jobs <= 1] no domains are spawned and every
   operation degrades to a plain sequential loop on the calling domain. *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (* signalled when tasks are enqueued or on shutdown *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work_available pool.mutex
    done;
    if Queue.is_empty pool.queue && pool.stop then Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  if jobs > 1 then pool.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* One parallel_for / map_chunks invocation: a batch of chunk tasks plus a
   completion count and the first exception raised by any chunk. The caller
   both enqueues and drains, then re-raises the recorded exception via
   [Printexc.raise_with_backtrace] once every chunk has finished, so no
   chunk is lost and the pool stays usable after a failure. The exception
   value crosses domains intact — a [Blackbox.Solve_failed] keeps its
   index/diagnostics payload and its backtrace points at the failing solve,
   not at the pool join. *)
type batch_state = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable remaining : int;
  mutable error : (exn * Printexc.raw_backtrace) option;
}

let chunk_span = "pool.chunk"
let queue_wait_dist = Trace.dist "pool.queue_wait_s"

let run_chunks pool (chunks : task array) =
  let nchunks = Array.length chunks in
  if nchunks = 0 then ()
  else if Array.length pool.workers = 0 || nchunks = 1 then Array.iter (fun c -> c ()) chunks
  else begin
    let state =
      { b_mutex = Mutex.create (); b_done = Condition.create (); remaining = nchunks; error = None }
    in
    (* One timestamp for the whole batch: every chunk is enqueued together
       below, so dequeue-time minus this is each chunk's queue wait. 0L
       (tracing off at enqueue) suppresses the observation — a toggle
       between enqueue and run must not fabricate a huge wait. *)
    let enqueued_ns = if Trace.enabled () then Trace.now_ns () else 0L in
    let run_traced chunk =
      if not (Trace.enabled ()) then chunk ()
      else begin
        if enqueued_ns <> 0L then
          Trace.observe queue_wait_dist
            (Int64.to_float (Int64.sub (Trace.now_ns ()) enqueued_ns) *. 1e-9);
        Trace.with_span chunk_span chunk
      end
    in
    let guarded chunk () =
      (try run_traced chunk
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock state.b_mutex;
         (* Keep only the first failure; comparing with [is_none] avoids
            running the polymorphic equality over an exception value. *)
         if Option.is_none state.error then state.error <- Some (e, bt);
         Mutex.unlock state.b_mutex);
      Mutex.lock state.b_mutex;
      state.remaining <- state.remaining - 1;
      if state.remaining = 0 then Condition.broadcast state.b_done;
      Mutex.unlock state.b_mutex
    in
    Mutex.lock pool.mutex;
    Array.iter (fun chunk -> Queue.add (guarded chunk) pool.queue) chunks;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    (* The caller helps drain the shared queue (its tasks may belong to this
       batch or, under nesting, to another); once the queue is empty it
       waits for the last worker to finish this batch. *)
    let rec drain () =
      Mutex.lock pool.mutex;
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        drain ()
      | None ->
        Mutex.unlock pool.mutex;
        Mutex.lock state.b_mutex;
        while state.remaining > 0 do
          Condition.wait state.b_done state.b_mutex
        done;
        Mutex.unlock state.b_mutex
    in
    drain ();
    match state.error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* Split [0, n) into contiguous chunks. The default aims at a few chunks per
   domain for load balance; chunk boundaries never affect results because
   every index writes only its own slot. *)
let chunk_ranges ?chunk ~jobs n =
  if n <= 0 then []
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + (4 * jobs) - 1) / (4 * jobs))
    in
    let rec go lo acc = if lo >= n then List.rev acc else go (lo + chunk) ((lo, min n (lo + chunk)) :: acc) in
    go 0 []
  end

let parallel_for ?chunk t n body =
  if n <= 0 then ()
  else if t.jobs <= 1 then
    for i = 0 to n - 1 do
      body i
    done
  else begin
    let ranges = chunk_ranges ?chunk ~jobs:t.jobs n in
    let chunks =
      List.map
        (fun (lo, hi) () ->
          for i = lo to hi - 1 do
            body i
          done)
        ranges
    in
    run_chunks t (Array.of_list chunks)
  end

let map_chunks ?chunk t f (input : 'a array) : 'b array =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?chunk t n (fun i -> out.(i) <- Some (f input.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

(* One-shot map: spin a pool up for a single batch. Callers with [jobs]
   as a knob rather than a pool in hand (operator batch implementations)
   use this; with [jobs <= 1] or a single element no domain is spawned. *)
let map_array ?(jobs = 1) f (input : 'a array) : 'b array =
  if jobs <= 1 || Array.length input <= 1 then Array.map f input
  else with_pool ~jobs (fun pool -> map_chunks pool f input)
