(** A fixed-size domain worker pool (pure stdlib: [Domain], [Mutex],
    [Condition] — no domainslib). Results are deterministic by
    construction: every work item writes only its pre-assigned slot, so the
    schedule never influences the output.

    A pool of size [jobs] keeps [jobs - 1] persistent worker domains; the
    calling domain participates in every operation, so [jobs] domains make
    progress in total. With [jobs <= 1] no domains are spawned and all
    operations run sequentially on the caller. *)

type t

(** Parallelism to use by default: [Domain.recommended_domain_count () - 1]
    (leaving one unit of hardware parallelism for the rest of the system),
    floored at 1. *)
val default_jobs : unit -> int

(** [create ~jobs ()] spawns the worker domains. [jobs] defaults to
    [default_jobs ()] and is floored at 1. *)
val create : ?jobs:int -> unit -> t

(** The pool's parallelism (total domains making progress, caller
    included). *)
val jobs : t -> int

(** Join the worker domains. The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, including on exceptions. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [parallel_for pool n body] runs [body i] for every [i] in [0 .. n - 1],
    split into contiguous index chunks ([chunk] overrides the automatic
    chunk size) executed across the pool. The body must only write state
    owned by its own index. If any body raises, the first exception
    (with its backtrace) is re-raised on the caller after all chunks have
    finished; the pool remains usable. *)
val parallel_for : ?chunk:int -> t -> int -> (int -> unit) -> unit

(** [map_chunks pool f input] maps [f] over [input] across the pool,
    returning results in input order (slot [i] holds [f input.(i)]
    regardless of schedule). Exception behavior as for [parallel_for]. *)
val map_chunks : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_array ~jobs f input] maps [f] over [input] with a pool created
    (and shut down) for this one call; [jobs <= 1] (the default) or a
    single-element input runs sequentially with no domain spawned.
    Results are in input order, bit-identical for every [jobs]. *)
val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
