(* Serving counters and latency distributions.

   lib/trace records every event for later export — right for a bounded
   CLI run, wrong for a daemon that must hold steady-state memory over
   millions of requests. This module keeps only aggregates: O(distinct
   names) space no matter how many requests pass through. Rendering uses
   the exact column layout of [Trace.pp_summary] (name-sorted, so the
   "stats" response is deterministic for a given request history), and
   request handlers still open real [Trace] spans so a traced serve run
   exports per-request timelines like every other instrumented path. *)

type dist_state = {
  mutable d_count : int;
  mutable d_total : float;
  mutable d_max : float;
  mutable d_min : float;
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  dists : (string, dist_state) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); counters = Hashtbl.create 32; dists = Hashtbl.create 32 }

let incr ?(by = 1) t name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let observe t name value =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.dists name with
      | Some d ->
        d.d_count <- d.d_count + 1;
        d.d_total <- d.d_total +. value;
        if value > d.d_max then d.d_max <- value;
        if value < d.d_min then d.d_min <- value
      | None ->
        Hashtbl.add t.dists name { d_count = 1; d_total = value; d_max = value; d_min = value })

let counter_value t name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Snapshot both tables under the lock, render outside it. [extra] lets
   the server append point-in-time gauges (resident cache bytes, live
   connections) that are not events. *)
let snapshot t =
  Mutex.protect t.mutex (fun () ->
      ( List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters),
        List.map
          (fun (k, d) -> (k, (d.d_count, d.d_total, d.d_max, d.d_min)))
          (sorted_bindings t.dists) ))

let render ?(extra = []) t =
  let counters, dists = snapshot t in
  let counters =
    List.sort (fun (a, _) (b, _) -> String.compare a b) (counters @ extra)
  in
  let b = Buffer.create 1024 in
  if dists <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-40s %8s %12s %12s %12s\n" "distribution (values)" "count" "total" "mean"
         "max");
    List.iter
      (fun (name, (count, total, mx, _)) ->
        Buffer.add_string b
          (Printf.sprintf "%-40s %8d %12.6g %12.6g %12.6g\n" name count total
             (total /. float_of_int count)
             mx))
      dists
  end;
  if counters <> [] then begin
    Buffer.add_string b (Printf.sprintf "%-40s %8s\n" "counter" "value");
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-40s %8d\n" name v))
      counters
  end;
  Buffer.contents b

(* The machine-readable face of the same snapshot: counters verbatim,
   distributions expanded into .count/.mean/.max, name-sorted. *)
let pairs ?(extra = []) t =
  let counters, dists = snapshot t in
  let rows =
    List.map (fun (name, v) -> (name, float_of_int v)) (counters @ extra)
    @ List.concat_map
        (fun (name, (count, total, mx, mn)) ->
          [
            (name ^ ".count", float_of_int count);
            (name ^ ".mean", total /. float_of_int count);
            (name ^ ".max", mx);
            (name ^ ".min", mn);
          ])
        dists
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows
