(* The operator-serving daemon.

   Architecture: one accept loop (select over the listening socket and a
   self-pipe, so [stop] can wake it from any thread or a signal handler),
   one thread per connection framing requests off the socket, and one
   batcher thread that coalesces concurrent single matvecs into fused
   [Subcouple_op.apply_batch] runs across the Domain pool.

   Coalescing preserves bit-identity: the fused CSR sweeps behind
   [Subcouple_op.of_payload] process each right-hand side independently
   in per-column arithmetic order, so an answer computed in a batch of 40
   strangers' requests is bit-identical to the same request applied
   alone. That is the invariant the serve CI job and the bench
   experiment's parity checks enforce; batching changes wall-clock only.

   Shutdown discipline: [stop] (idempotent, callable from a signal
   handler or another thread) closes the listener, wakes the batcher
   (which drains and fails any still-queued cells), shuts down every live
   connection socket, and joins all threads before [run] returns — no
   request thread outlives the daemon. A SIGKILLed daemon leaves only the
   artifact files it never mutates, so a restart against the same root
   serves identical answers from a cold cache. *)

module Op = Subcouple_op
module Artifact = Subcouple_op.Artifact
module Io_retry = Subcouple_op.Io_retry
module Repr = Sparsify.Repr

let src = Logs.Src.create "serve.server" ~doc:"Operator-serving daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type listen = [ `Unix of string | `Tcp of string * int ]

(* One waiting coalesced request: the connection thread parks on the
   cell's condition until the batcher (or shutdown) fills the result. *)
type cell = {
  c_mutex : Mutex.t;
  c_cond : Condition.t;
  mutable c_result : (float array, string) result option;
}

type pending = { p_key : string; p_op : Op.t; p_v : float array; p_cell : cell }

type t = {
  cache : Cache.t;
  jobs : int;
  stats : Stats.t;
  listen_fd : Unix.file_descr;
  sock_path : string option;  (* unix-domain socket file to unlink on stop *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  queue : pending Queue.t;
  conns_mutex : Mutex.t;
  mutable conns : (int * Unix.file_descr * Thread.t) list;
  mutable next_conn_id : int;
}

let span_request = "serve.request"
let span_batch = "serve.batch"

(* --- construction ------------------------------------------------------ *)

let open_listener listen =
  match listen with
  | `Unix path ->
    (* A SIGKILLed daemon leaves its socket file behind; a stale *socket*
       is ours to reclaim, anything else under that name is not. *)
    (match Unix.stat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> invalid_arg (Printf.sprintf "socket path %s exists and is not a socket" path)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Some path)
  | `Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> invalid_arg (Printf.sprintf "cannot resolve host %s" host))
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    (fd, None)

let create ?max_bytes ?(jobs = 1) ~root ~listen () =
  if jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  (* A peer closing mid-response must surface as EPIPE, not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stats = Stats.create () in
  let cache = Cache.create ?max_bytes ~root ~stats () in
  let listen_fd, sock_path = open_listener listen in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  {
    cache;
    jobs;
    stats;
    listen_fd;
    sock_path;
    stop_r;
    stop_w;
    stopping = Atomic.make false;
    q_mutex = Mutex.create ();
    q_cond = Condition.create ();
    queue = Queue.create ();
    conns_mutex = Mutex.create ();
    conns = [];
    next_conn_id = 0;
  }

let address t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_UNIX path -> `Unix path
  | Unix.ADDR_INET (addr, port) -> `Tcp (Unix.string_of_inet_addr addr, port)

let stats t = t.stats

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* One byte down the self-pipe wakes the accept loop's select; the
       byte's value is irrelevant. Restart on EINTR — this may run inside
       a signal handler's window. *)
    Io_retry.write_all t.stop_w (Bytes.make 1 '!') 0 1;
    (* Wake the batcher so it can drain and exit. *)
    Mutex.protect t.q_mutex (fun () -> Condition.broadcast t.q_cond)
  end

(* --- the coalescing batcher -------------------------------------------- *)

let fulfill cell result =
  Mutex.protect cell.c_mutex (fun () ->
      cell.c_result <- Some result;
      Condition.signal cell.c_cond)

let await cell =
  Mutex.lock cell.c_mutex;
  while Option.is_none cell.c_result do
    Condition.wait cell.c_cond cell.c_mutex
  done;
  let r = cell.c_result in
  Mutex.unlock cell.c_mutex;
  Option.get r

(* Split a drained batch into per-operator groups, preserving arrival
   order inside each group (not that order changes answers — per-column
   arithmetic is order-free across a batch — but deterministic request
   handling is easier to reason about). *)
let group_by_key items =
  let groups = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun p ->
      match Hashtbl.find_opt groups p.p_key with
      | Some l -> l := p :: !l
      | None ->
        Hashtbl.add groups p.p_key (ref [ p ]);
        order := p.p_key :: !order)
    items;
  List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order

let run_group t group =
  let items = Array.of_list group in
  let op = items.(0).p_op in
  let vs = Array.map (fun p -> p.p_v) items in
  Stats.observe t.stats "batch.size" (float_of_int (Array.length vs));
  match Trace.with_span span_batch (fun () -> Op.apply_batch ~jobs:t.jobs op vs) with
  | outs -> Array.iteri (fun i p -> fulfill p.p_cell (Ok outs.(i))) items
  | exception e ->
    (* The batcher outlives any single bad batch: a failure (wrong-length
       vector that slipped validation, allocation failure on a huge
       batch) answers every waiting request with the error instead of
       wedging their connection threads forever. *)
    (let msg = Printexc.to_string e in
     Array.iter (fun p -> fulfill p.p_cell (Error msg)) items)
      [@lint.allow no_catch_all
        "batcher thread: any exception must fail the waiting cells, not leak upward and wedge \
         every parked connection"]

let batcher_loop t =
  let drain () =
    Mutex.lock t.q_mutex;
    while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
      Condition.wait t.q_cond t.q_mutex
    done;
    let items = List.rev (Queue.fold (fun acc p -> p :: acc) [] t.queue) in
    Queue.clear t.queue;
    Mutex.unlock t.q_mutex;
    items
  in
  let rec loop () =
    match drain () with
    | [] -> ()  (* stopping, queue empty: done *)
    | items ->
      Stats.observe t.stats "batch.queue_depth" (float_of_int (List.length items));
      List.iter (run_group t) (group_by_key items);
      loop ()
  in
  loop ();
  (* Shutdown race: requests enqueued after the final drain would park
     forever; fail them. *)
  Mutex.protect t.q_mutex (fun () ->
      Queue.iter (fun p -> fulfill p.p_cell (Error "server shutting down")) t.queue;
      Queue.clear t.queue)

let enqueue t ~key ~op v =
  let cell = { c_mutex = Mutex.create (); c_cond = Condition.create (); c_result = None } in
  Mutex.protect t.q_mutex (fun () ->
      Queue.push { p_key = key; p_op = op; p_v = v; p_cell = cell } t.queue;
      Condition.signal t.q_cond);
  await cell

(* --- request handling -------------------------------------------------- *)

let degraded_of_health = function
  | Op.Full -> None
  | Op.Degraded { quarantined; pending; masked_contacts } ->
    Some
      {
        Protocol.masked = masked_contacts;
        quarantined_shards = List.length quarantined;
        pending_shards = pending;
      }

let matvec t (entry : Cache.entry) ~coalesce v =
  if Array.length v <> Op.n entry.op then
    Error
      (Printf.sprintf "expected a vector of %d components, got %d" (Op.n entry.op)
         (Array.length v))
  else if coalesce then begin
    Stats.incr t.stats "batch.coalesced";
    enqueue t ~key:entry.digest ~op:entry.op v
  end
  else begin
    Stats.incr t.stats "batch.direct";
    match Op.apply_batch ~jobs:t.jobs entry.op [| v |] with
    | outs -> Ok outs.(0)
    | exception Invalid_argument msg -> Error msg
  end

let unit_vector n i =
  let e = Array.make n 0.0 in
  e.(i) <- 1.0;
  e

(* Answer one request. Artifact/cache failures are caught here and turned
   into [Error_r] — the connection survives a request for a missing or
   corrupt artifact. *)
let handle t req =
  let fetch name = Cache.get t.cache name in
  let vectors_of entry = function
    | Ok y -> Protocol.Vectors { vs = [| y |]; degraded = degraded_of_health entry.Cache.health }
    | Error msg -> Protocol.Error_r msg
  in
  match req with
  | Protocol.Info { artifact } ->
    Stats.incr t.stats "requests.info";
    let entry = fetch artifact in
    let meta = Op.describe entry.Cache.op in
    Protocol.Info_r
      {
        n = Op.n entry.Cache.op;
        kind = meta.Op.kind;
        source = meta.Op.source;
        solves = Op.solves_spent entry.Cache.op;
        storage_floats = Op.storage_floats entry.Cache.op;
        degraded = degraded_of_health entry.Cache.health;
      }
  | Protocol.Apply { artifact; v; coalesce } ->
    Stats.incr t.stats "requests.apply";
    let entry = fetch artifact in
    vectors_of entry (matvec t entry ~coalesce v)
  | Protocol.Apply_batch { artifact; vs } ->
    Stats.incr t.stats "requests.apply_batch";
    let entry = fetch artifact in
    Stats.incr ~by:(Array.length vs) t.stats "batch.direct";
    (match Op.apply_batch ~jobs:t.jobs entry.Cache.op vs with
    | outs -> Protocol.Vectors { vs = outs; degraded = degraded_of_health entry.Cache.health }
    | exception Invalid_argument msg -> Protocol.Error_r msg)
  | Protocol.Column { artifact; index; coalesce } ->
    Stats.incr t.stats "requests.column";
    let entry = fetch artifact in
    let n = Op.n entry.Cache.op in
    if index < 0 || index >= n then
      Protocol.Error_r (Printf.sprintf "column index %d out of range [0, %d)" index n)
    else vectors_of entry (matvec t entry ~coalesce (unit_vector n index))
  | Protocol.Threshold { artifact; target } ->
    Stats.incr t.stats "requests.threshold";
    let entry = fetch artifact in
    (match entry.Cache.payload with
    | None -> Protocol.Error_r "threshold applies to single-operator artifacts, not shard manifests"
    | Some p ->
      let repr = Repr.of_artifact p in
      let nnz_before = Repr.nnz_gw repr in
      (match Repr.threshold repr ~target with
      | sparser ->
        Protocol.Threshold_r
          {
            nnz_before;
            nnz_after = Repr.nnz_gw sparser;
            storage_floats = Repr.storage_floats sparser;
          }
      | exception Invalid_argument msg -> Protocol.Error_r msg))
  | Protocol.Stats ->
    Stats.incr t.stats "requests.stats";
    let entries, bytes = Cache.resident t.cache in
    let extra =
      [
        ("cache.resident_entries", entries);
        ("cache.resident_bytes", bytes);
        ("cache.max_bytes", Cache.max_bytes t.cache);
        ("serve.jobs", t.jobs);
      ]
    in
    Protocol.Stats_r { table = Stats.render ~extra t.stats; pairs = Stats.pairs ~extra t.stats }
  | Protocol.Shutdown ->
    Stats.incr t.stats "requests.shutdown";
    Protocol.Shutting_down

let opcode_name = function
  | Protocol.Info _ -> "info"
  | Protocol.Apply _ -> "apply"
  | Protocol.Apply_batch _ -> "apply_batch"
  | Protocol.Column _ -> "column"
  | Protocol.Threshold _ -> "threshold"
  | Protocol.Stats -> "stats"
  | Protocol.Shutdown -> "shutdown"

let handle_timed t req =
  let t0 = Trace.now_ns () in
  let resp =
    match Trace.with_span span_request (fun () -> handle t req) with
    | resp -> resp
    | exception Cache.Rejected msg -> Protocol.Error_r msg
    | exception Artifact.Error { path; error } ->
      Protocol.Error_r (Printf.sprintf "%s: %s" path (Artifact.error_message error))
    | exception Unix.Unix_error (e, fn, arg) ->
      Protocol.Error_r (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
    | exception Sys_error msg -> Protocol.Error_r msg
  in
  let dt_s = Int64.to_float (Int64.sub (Trace.now_ns ()) t0) *. 1e-9 in
  Stats.observe t.stats (Printf.sprintf "latency_s.%s" (opcode_name req)) dt_s;
  (match resp with
  | Protocol.Error_r _ -> Stats.incr t.stats "requests.errors"
  | _ -> ());
  resp

(* One connection: frame requests until the peer closes (or shutdown
   closes the socket under us), answering each in order. *)
let connection_loop t fd =
  let rec loop () =
    match Protocol.read_request fd with
    | req ->
      let resp = handle_timed t req in
      Protocol.write_response fd resp;
      (match resp with
      | Protocol.Shutting_down -> stop t
      | _ -> loop ())
    | exception End_of_file -> ()
    | exception Protocol.Error msg ->
      (* Framing is broken (hostile length, malformed opcode): answer if
         the pipe still works, then drop the connection — there is no
         trustworthy record boundary to resynchronize on. *)
      (try Protocol.write_response fd (Protocol.Error_r msg)
       with Unix.Unix_error _ | Protocol.Error _ -> ());
      Stats.incr t.stats "requests.errors"
    | exception Unix.Unix_error _ -> ()
  in
  loop ()

let forget_conn t id =
  Mutex.protect t.conns_mutex (fun () ->
      t.conns <- List.filter (fun (cid, _, _) -> cid <> id) t.conns)

let spawn_connection t fd =
  Mutex.protect t.conns_mutex (fun () ->
      let id = t.next_conn_id in
      t.next_conn_id <- id + 1;
      Stats.incr t.stats "connections.accepted";
      let thread =
        Thread.create
          (fun () ->
            Fun.protect
              ~finally:(fun () ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                (* During shutdown [run] owns the list and joins us. *)
                if not (Atomic.get t.stopping) then forget_conn t id)
              (fun () -> connection_loop t fd))
          ()
      in
      t.conns <- (id, fd, thread) :: t.conns)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      let ready, _, _ =
        Io_retry.restart (fun () -> Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0))
      in
      if not (List.mem t.stop_r ready) then begin
        if List.mem t.listen_fd ready then (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> spawn_connection t fd
          | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ());
        loop ()
      end
    end
  in
  loop ()

let run t =
  let batcher = Thread.create batcher_loop t in
  Log.info (fun f -> f "serving %s (jobs %d, cache budget %d bytes)" (Cache.root t.cache) t.jobs
      (Cache.max_bytes t.cache));
  accept_loop t;
  (* Stop sequence: no new connections, wake and drain the batcher, shut
     down live sockets so their read loops see EOF, join everything. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.sock_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.protect t.q_mutex (fun () -> Condition.broadcast t.q_cond);
  Thread.join batcher;
  let conns = Mutex.protect t.conns_mutex (fun () -> t.conns) in
  List.iter
    (fun (_, fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, _, thread) -> Thread.join thread) conns;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Log.info (fun f -> f "serve loop stopped")
