(* Load-on-demand artifact cache, keyed by content digest, LRU-evicted
   against a byte budget.

   Requests name artifacts by root-relative path; the cache resolves the
   name, fingerprints the file (MD5 of its exact bytes — the same digest
   discipline the shard manifests pin their artifacts with), and keeps
   the decoded operator resident keyed by that digest. Keying by content
   rather than by path means two names for the same bytes share one
   resident operator, and an artifact overwritten in place (re-extraction
   into the same file) is re-loaded instead of served stale: the path ->
   digest memo is validated against the file's (dev, ino, mtime, size)
   stat signature and re-fingerprinted whenever the signature moves.

   Residency accounting uses the operator's own storage_floats (8 bytes a
   float, the thesis's storage currency) plus a fixed per-entry overhead.
   Eviction drops least-recently-used entries until the budget holds; a
   single entry larger than the whole budget is still admitted (the
   alternative is refusing to serve it at all) and simply evicts
   everything else.

   Name policy (the filesystem end of the trust boundary): names must be
   relative, must not contain ".." components, and resolve strictly under
   the serving root. Violations raise [Rejected] before any filesystem
   access. *)

module Artifact = Subcouple_op.Artifact

exception Rejected of string

type entry = {
  digest : string;
  path : string;
  op : Subcouple_op.t;
  health : Subcouple_op.health;
  payload : Artifact.payload option;  (* Some for .sca operators, None for manifests *)
  bytes : int;
}

type node = { e : entry; mutable last_use : int }

(* (dev, ino, mtime, size): enough to catch in-place rewrites, renames
   over the name, and truncation without hashing the file every request. *)
type stat_sig = { sg_dev : int; sg_ino : int; sg_mtime : float; sg_size : int }

type t = {
  root : string;
  max_bytes : int;
  stats : Stats.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable resident_bytes : int;
  entries : (string, node) Hashtbl.t;  (* digest -> node *)
  paths : (string, stat_sig * string) Hashtbl.t;  (* resolved path -> (sig, digest) *)
}

let default_max_bytes = 256 * 1024 * 1024

(* Decoded CSR indices, hashtable slots, closures: call it 4 KiB per
   entry beyond the float payload. *)
let entry_overhead_bytes = 4096

let create ?(max_bytes = default_max_bytes) ~root ~stats () =
  if max_bytes <= 0 then invalid_arg "Cache.create: byte budget must be positive";
  {
    root;
    max_bytes;
    stats;
    mutex = Mutex.create ();
    tick = 0;
    resident_bytes = 0;
    entries = Hashtbl.create 16;
    paths = Hashtbl.create 16;
  }

let resolve t name =
  if String.length name = 0 then raise (Rejected "empty artifact name");
  if String.length name > Protocol.max_name_bytes then
    raise (Rejected "artifact name too long");
  if not (Filename.is_relative name) then
    raise (Rejected (Printf.sprintf "artifact name %S is absolute; names are root-relative" name));
  let parts = String.split_on_char '/' name in
  if List.exists (fun p -> String.equal p "..") parts then
    raise (Rejected (Printf.sprintf "artifact name %S escapes the serving root" name));
  Filename.concat t.root name

let stat_sig path =
  let st = Unix.stat path in
  {
    sg_dev = st.Unix.st_dev;
    sg_ino = st.Unix.st_ino;
    sg_mtime = st.Unix.st_mtime;
    sg_size = st.Unix.st_size;
  }

let sig_equal a b =
  a.sg_dev = b.sg_dev && a.sg_ino = b.sg_ino
  && Float.equal a.sg_mtime b.sg_mtime (* stat timestamps compare for identity, not arithmetic *)
  && a.sg_size = b.sg_size

let load_entry path digest =
  match Artifact.load_any ~path with
  | `Operator p ->
    let op = Subcouple_op.of_payload p in
    {
      digest;
      path;
      op;
      health = Subcouple_op.Full;
      payload = Some p;
      bytes = (8 * Subcouple_op.storage_floats op) + entry_overhead_bytes;
    }
  | `Manifest m ->
    let op, health = Subcouple_op.of_manifest ~dir:(Filename.dirname path) m in
    {
      digest;
      path;
      op;
      health;
      payload = None;
      bytes = (8 * Subcouple_op.storage_floats op) + entry_overhead_bytes;
    }

let evict_lru t ~keep =
  let victim =
    Hashtbl.fold
      (fun digest node acc ->
        if String.equal digest keep then acc
        else
          match acc with
          | Some (_, best) when best.last_use <= node.last_use -> acc
          | _ -> Some (digest, node))
      t.entries None
  in
  match victim with
  | None -> false
  | Some (digest, node) ->
    Hashtbl.remove t.entries digest;
    t.resident_bytes <- t.resident_bytes - node.e.bytes;
    Stats.incr t.stats "cache.evictions";
    true

let get t name =
  let path = resolve t name in
  Mutex.protect t.mutex (fun () ->
      t.tick <- t.tick + 1;
      let current_sig = stat_sig path in
      let digest =
        match Hashtbl.find_opt t.paths path with
        | Some (cached_sig, digest) when sig_equal cached_sig current_sig -> digest
        | _ ->
          let digest = Digest.file path in
          Hashtbl.replace t.paths path (current_sig, digest);
          digest
      in
      match Hashtbl.find_opt t.entries digest with
      | Some node ->
        node.last_use <- t.tick;
        Stats.incr t.stats "cache.hits";
        node.e
      | None ->
        Stats.incr t.stats "cache.misses";
        let e = load_entry path digest in
        Hashtbl.replace t.entries digest { e; last_use = t.tick };
        t.resident_bytes <- t.resident_bytes + e.bytes;
        while t.resident_bytes > t.max_bytes && evict_lru t ~keep:digest do
          ()
        done;
        e)

let resident t =
  Mutex.protect t.mutex (fun () -> (Hashtbl.length t.entries, t.resident_bytes))

let max_bytes t = t.max_bytes
let root t = t.root
