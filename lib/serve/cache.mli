(** Load-on-demand artifact cache: operators resident in memory, keyed by
    content digest, LRU-evicted against a byte budget.

    Artifact names are root-relative paths; resolution validates them
    against the trust boundary (no absolute names, no [..] components)
    before touching the filesystem, raising {!Rejected} on violation. The
    resident key is the MD5 of the file's exact bytes — two names for the
    same bytes share one entry, and a file rewritten in place is detected
    by its stat signature and re-fingerprinted, never served stale.

    Residency is charged at [8 * storage_floats + overhead] bytes per
    entry; inserting past the budget evicts least-recently-used entries
    until it holds (an entry alone bigger than the whole budget is still
    admitted). All operations are mutex-protected and safe from any
    connection thread; loads happen under the lock, so a miss briefly
    serializes other cache traffic — by design, so two concurrent
    requests for one cold artifact decode it once, not twice. *)

(** An artifact name that violates the trust boundary (absolute, [..],
    empty, oversized). Raised before any filesystem access. *)
exception Rejected of string

type entry = {
  digest : string;  (** MD5 of the artifact file bytes *)
  path : string;  (** resolved filesystem path *)
  op : Subcouple_op.t;
  health : Subcouple_op.health;  (** [Full] for single-operator artifacts *)
  payload : Subcouple_op.Artifact.payload option;
      (** the decoded payload for [.sca] operators (threshold queries need
          the factors); [None] for manifest compositions *)
  bytes : int;  (** residency charge *)
}

type t

(** [create ~root ~stats ()] serves artifacts under directory [root],
    recording hit/miss/eviction counters into [stats]. [max_bytes]
    defaults to 256 MiB.
    @raise Invalid_argument on a non-positive budget. *)
val create : ?max_bytes:int -> root:string -> stats:Stats.t -> unit -> t

(** Resolve a name to its resident operator, loading (and evicting) as
    needed.
    @raise Rejected on a name-policy violation.
    @raise Subcouple_op.Artifact.Error if the file is missing, torn,
    corrupt, or a shard artifact fails its manifest digest pin.
    @raise Unix.Unix_error / Sys_error on filesystem failure. *)
val get : t -> string -> entry

(** Point-in-time (entry count, resident bytes). *)
val resident : t -> int * int

val max_bytes : t -> int
val root : t -> string
