(** Blocking client for the serve protocol: one socket, one in-flight
    request at a time. For concurrent load, hold one client per thread —
    the server interleaves and coalesces across connections.

    Every call raises {!Server_error} when the daemon answers with an
    error response, [Unix.Unix_error] / [End_of_file] on transport
    failure, and [Protocol.Error] on a malformed reply. *)

exception Server_error of string

type t

(** Connect to a serving daemon.
    @raise Unix.Unix_error if the connection fails.
    @raise Invalid_argument on an unresolvable TCP host. *)
val connect : [ `Unix of string | `Tcp of string * int ] -> t

(** Idempotent. *)
val close : t -> unit

(** Connect, run, close (also on exception). *)
val with_connection : [ `Unix of string | `Tcp of string * int ] -> (t -> 'a) -> 'a

type info = {
  n : int;
  kind : string;
  source : string;
  solves : int;
  storage_floats : int;
  degraded : Protocol.degraded option;
}

val info : t -> artifact:string -> info

(** One matvec. [coalesce] (default [true]) lets the server batch it with
    concurrent strangers' requests — answers are bit-identical either
    way. Returns the response vector and the degradation report, if the
    artifact is a manifest with missing shards. *)
val apply : ?coalesce:bool -> t -> artifact:string -> float array -> float array * Protocol.degraded option

(** A pre-formed batch, applied fused server-side; responses in input
    order. *)
val apply_batch :
  t -> artifact:string -> float array array -> float array array * Protocol.degraded option

(** Column [index] of the operator (a unit-vector matvec server-side). *)
val column :
  ?coalesce:bool -> t -> artifact:string -> int -> float array * Protocol.degraded option

type threshold_result = { nnz_before : int; nnz_after : int; storage_floats : int }

(** Preview sparsifying an operator artifact to [target] times fewer
    G_w nonzeros (server-side, nothing persisted). Manifests are
    refused. *)
val threshold : t -> artifact:string -> target:float -> threshold_result

(** The daemon's counters: the rendered table (same deterministic layout
    as [--trace-summary]) and the machine-readable rows behind it. *)
val stats : t -> string * (string * float) list

(** Ask the daemon to stop; returns once it acknowledges. *)
val shutdown : t -> unit
