(** The operator-serving daemon.

    One accept loop, one thread per connection, and a batcher thread that
    coalesces concurrent single matvecs into fused
    [Subcouple_op.apply_batch] runs across the Domain pool. Coalescing
    never changes answers: the fused sweeps process each right-hand side
    in per-column arithmetic order, so a coalesced response is
    bit-identical to the same request applied alone — batching changes
    wall-clock only.

    Every request runs under a [lib/trace] span and feeds the bounded
    {!Stats} aggregates; the [Stats] request renders them in the same
    deterministic layout as [--trace-summary].

    The daemon never mutates artifacts, so a kill at any point leaves
    the serving root intact: a restarted daemon serves bit-identical
    answers from a cold cache. *)

type t

type listen = [ `Unix of string | `Tcp of string * int ]

(** [create ~root ~listen ()] binds the listening socket (unlinking a
    stale Unix-domain socket file left by a killed predecessor) but does
    not accept yet. [max_bytes] is the cache budget (default 256 MiB);
    [jobs] (default 1) is the Domain-pool width for batched applies.
    Installs a [SIGPIPE] ignore — a peer closing mid-response must
    surface as an error on that connection, not kill the daemon.
    @raise Unix.Unix_error if the bind fails.
    @raise Invalid_argument on [jobs < 1], a non-positive budget, an
    unresolvable TCP host, or a Unix socket path occupied by a
    non-socket. *)
val create : ?max_bytes:int -> ?jobs:int -> root:string -> listen:listen -> unit -> t

(** The bound address — for [`Tcp (host, 0)], the port the kernel
    picked. *)
val address : t -> listen

val stats : t -> Stats.t

(** Serve until {!stop}. Blocks; run it on a dedicated thread if the
    caller needs to keep working. On return every connection thread has
    been joined and every daemon-owned descriptor closed. *)
val run : t -> unit

(** Initiate shutdown: idempotent, safe from any thread and from a signal
    handler. Wakes the accept loop, drains the batcher (failing any
    still-queued requests with an error response), and shuts down live
    connections; {!run} returns once all of that completes. *)
val stop : t -> unit
