(** Bounded serving metrics: counters and value distributions aggregated
    in place (O(distinct names) memory — a daemon cannot afford
    [lib/trace]'s keep-every-event model over millions of requests).
    All operations are mutex-protected and safe from any thread. *)

type t

val create : unit -> t

(** Bump counter [name] by [by] (default 1), creating it at 0 first. *)
val incr : ?by:int -> t -> string -> unit

(** Fold one sample into distribution [name] (count/total/max/min). *)
val observe : t -> string -> float -> unit

(** Current value of a counter (0 if never bumped). *)
val counter_value : t -> string -> int

(** Render the aggregates in {!Trace.pp_summary}'s column layout,
    name-sorted (deterministic for a given request history). [extra]
    appends point-in-time gauges to the counter section. *)
val render : ?extra:(string * int) list -> t -> string

(** The same snapshot as machine-readable (name, value) rows: counters
    verbatim, each distribution expanded into [.count]/[.mean]/[.max]/
    [.min]. Name-sorted. *)
val pairs : ?extra:(string * int) list -> t -> (string * float) list
