(* Blocking client for the serve protocol: one socket, one in-flight
   request. Concurrency comes from holding several clients (the bench
   runs one per thread); the server interleaves and coalesces across
   connections. *)

exception Server_error of string

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect target =
  let domain, addr =
    match target with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      let a =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> invalid_arg (Printf.sprintf "cannot resolve host %s" host))
      in
      (Unix.PF_INET, Unix.ADDR_INET (a, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd addr with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection target f =
  let t = connect target in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let roundtrip t req =
  if t.closed then invalid_arg "Client: connection is closed";
  Protocol.write_request t.fd req;
  match Protocol.read_response t.fd with
  | Protocol.Error_r msg -> raise (Server_error msg)
  | resp -> resp

let unexpected what = raise (Server_error ("unexpected response to " ^ what))

type info = {
  n : int;
  kind : string;
  source : string;
  solves : int;
  storage_floats : int;
  degraded : Protocol.degraded option;
}

let info t ~artifact =
  match roundtrip t (Protocol.Info { artifact }) with
  | Protocol.Info_r { n; kind; source; solves; storage_floats; degraded } ->
    { n; kind; source; solves; storage_floats; degraded }
  | _ -> unexpected "info"

let one_vector what = function
  | Protocol.Vectors { vs = [| y |]; degraded } -> (y, degraded)
  | _ -> unexpected what

let apply ?(coalesce = true) t ~artifact v =
  one_vector "apply" (roundtrip t (Protocol.Apply { artifact; v; coalesce }))

let apply_batch t ~artifact vs =
  match roundtrip t (Protocol.Apply_batch { artifact; vs }) with
  | Protocol.Vectors { vs = outs; degraded } ->
    if Array.length outs <> Array.length vs then unexpected "apply_batch" else (outs, degraded)
  | _ -> unexpected "apply_batch"

let column ?(coalesce = true) t ~artifact index =
  one_vector "column" (roundtrip t (Protocol.Column { artifact; index; coalesce }))

type threshold_result = { nnz_before : int; nnz_after : int; storage_floats : int }

let threshold t ~artifact ~target =
  match roundtrip t (Protocol.Threshold { artifact; target }) with
  | Protocol.Threshold_r { nnz_before; nnz_after; storage_floats } ->
    { nnz_before; nnz_after; storage_floats }
  | _ -> unexpected "threshold"

let stats t =
  match roundtrip t Protocol.Stats with
  | Protocol.Stats_r { table; pairs } -> (table, pairs)
  | _ -> unexpected "stats"

let shutdown t =
  match roundtrip t Protocol.Shutdown with
  | Protocol.Shutting_down -> ()
  | _ -> unexpected "shutdown"
