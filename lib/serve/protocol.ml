(* The serve wire protocol: length-prefixed binary frames.

   Framing: every message is an 8-byte little-endian payload length
   followed by exactly that many payload bytes. The payload's first byte
   is the opcode; integers travel as little-endian int64, floats by their
   IEEE-754 bit pattern (the serve digest-parity guarantee depends on
   responses crossing the socket bit-exactly), strings and arrays with an
   explicit element count. The same reader discipline as the artifact
   loader applies: every length is checked against the bytes actually
   present before anything is allocated, so a hostile or torn frame is
   rejected with a typed error instead of a huge allocation or an index
   out of bounds. Frames above [max_frame_bytes] are refused outright.

   All socket transfers restart on EINTR (Io_retry): the daemon fields
   signals as part of normal operation. *)

module Io_retry = Subcouple_op.Io_retry

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* One frame never legitimately exceeds this: the largest payloads are
   vector batches, and a 1 GiB frame already holds a batch of 1024
   full-length vectors at the thesis's largest problem size. *)
let max_frame_bytes = 1 lsl 30

(* Artifact names are root-relative path fragments; keep them short enough
   that an error message echoing one stays printable. *)
let max_name_bytes = 4096

type degraded = {
  masked : int array;  (** globally masked contact ids, ascending *)
  quarantined_shards : int;
  pending_shards : int;
}

type request =
  | Info of { artifact : string }
  | Apply of { artifact : string; v : float array; coalesce : bool }
  | Apply_batch of { artifact : string; vs : float array array }
  | Column of { artifact : string; index : int; coalesce : bool }
  | Threshold of { artifact : string; target : float }
  | Stats
  | Shutdown

type response =
  | Vectors of { vs : float array array; degraded : degraded option }
  | Info_r of {
      n : int;
      kind : string;
      source : string;
      solves : int;
      storage_floats : int;
      degraded : degraded option;
    }
  | Threshold_r of { nnz_before : int; nnz_after : int; storage_floats : int }
  | Stats_r of { table : string; pairs : (string * float) list }
  | Shutting_down
  | Error_r of string

(* --- encoding ---------------------------------------------------------- *)

let add_int b i = Buffer.add_int64_le b (Int64.of_int i)
let add_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)
let add_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let add_string_field b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_int_array b a =
  add_int b (Array.length a);
  Array.iter (add_int b) a

let add_float_array b a =
  add_int b (Array.length a);
  Array.iter (add_float b) a

let add_vectors b vs =
  add_int b (Array.length vs);
  Array.iter (add_float_array b) vs

let add_degraded b = function
  | None -> add_bool b false
  | Some d ->
    add_bool b true;
    add_int_array b d.masked;
    add_int b d.quarantined_shards;
    add_int b d.pending_shards

let encode_request r =
  let b = Buffer.create 256 in
  (match r with
  | Info { artifact } ->
    Buffer.add_char b 'I';
    add_string_field b artifact
  | Apply { artifact; v; coalesce } ->
    Buffer.add_char b 'A';
    add_string_field b artifact;
    add_bool b coalesce;
    add_float_array b v
  | Apply_batch { artifact; vs } ->
    Buffer.add_char b 'B';
    add_string_field b artifact;
    add_vectors b vs
  | Column { artifact; index; coalesce } ->
    Buffer.add_char b 'C';
    add_string_field b artifact;
    add_bool b coalesce;
    add_int b index
  | Threshold { artifact; target } ->
    Buffer.add_char b 'T';
    add_string_field b artifact;
    add_float b target
  | Stats -> Buffer.add_char b 'S'
  | Shutdown -> Buffer.add_char b 'Q');
  Buffer.contents b

let encode_response r =
  let b = Buffer.create 256 in
  (match r with
  | Vectors { vs; degraded } ->
    Buffer.add_char b 'v';
    add_degraded b degraded;
    add_vectors b vs
  | Info_r { n; kind; source; solves; storage_floats; degraded } ->
    Buffer.add_char b 'i';
    add_int b n;
    add_string_field b kind;
    add_string_field b source;
    add_int b solves;
    add_int b storage_floats;
    add_degraded b degraded
  | Threshold_r { nnz_before; nnz_after; storage_floats } ->
    Buffer.add_char b 't';
    add_int b nnz_before;
    add_int b nnz_after;
    add_int b storage_floats
  | Stats_r { table; pairs } ->
    Buffer.add_char b 's';
    add_string_field b table;
    add_int b (List.length pairs);
    List.iter
      (fun (name, value) ->
        add_string_field b name;
        add_float b value)
      pairs
  | Shutting_down -> Buffer.add_char b 'q'
  | Error_r msg ->
    Buffer.add_char b 'e';
    add_string_field b msg);
  Buffer.contents b

(* --- decoding ---------------------------------------------------------- *)

type reader = { s : string; mutable pos : int }

let need r k what =
  if r.pos + k > String.length r.s then
    fail "frame ends inside %s (offset %d, wanted %d more bytes)" what r.pos k

let read_byte r what =
  need r 1 what;
  let c = String.get r.s r.pos in
  r.pos <- r.pos + 1;
  c

let read_bool r what =
  match read_byte r what with
  | '\000' -> false
  | '\001' -> true
  | c -> fail "%s is not a boolean (byte %d)" what (Char.code c)

let read_int r what =
  need r 8 what;
  let v64 = String.get_int64_le r.s r.pos in
  r.pos <- r.pos + 8;
  let v = Int64.to_int v64 in
  if not (Int64.equal (Int64.of_int v) v64) then fail "%s does not fit a native int (%Ld)" what v64;
  v

let read_float r what =
  need r 8 what;
  let v = Int64.float_of_bits (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let read_length r what =
  let v = read_int r what in
  if v < 0 then fail "negative %s (%d)" what v;
  (* Every element occupies at least one payload byte, which caps hostile
     element counts before any allocation happens. *)
  if v > String.length r.s - r.pos then fail "%s (%d) exceeds the remaining frame" what v;
  v

let read_string_field r what =
  let len = read_length r (what ^ " length") in
  need r len what;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let read_name r =
  let s = read_string_field r "artifact name" in
  if String.length s > max_name_bytes then fail "artifact name longer than %d bytes" max_name_bytes;
  s

let read_int_array r what =
  let len = read_length r (what ^ " length") in
  need r (8 * len) what;
  Array.init len (fun _ -> read_int r what)

let read_float_array r what =
  let len = read_length r (what ^ " length") in
  need r (8 * len) what;
  Array.init len (fun _ -> read_float r what)

let read_vectors r what =
  let count = read_length r (what ^ " count") in
  Array.init count (fun i -> read_float_array r (Printf.sprintf "%s %d" what i))

let read_degraded r =
  if read_bool r "degraded flag" then begin
    (* Sequence the reads with lets: field expressions in a record
       literal evaluate in unspecified order, and these consume bytes. *)
    let masked = read_int_array r "masked contacts" in
    let quarantined_shards = read_int r "quarantined shard count" in
    let pending_shards = read_int r "pending shard count" in
    Some { masked; quarantined_shards; pending_shards }
  end
  else None

let finish r v =
  if r.pos <> String.length r.s then
    fail "%d trailing bytes after the message" (String.length r.s - r.pos);
  v

let decode_request s =
  let r = { s; pos = 0 } in
  let req =
    match read_byte r "opcode" with
    | 'I' -> Info { artifact = read_name r }
    | 'A' ->
      let artifact = read_name r in
      let coalesce = read_bool r "coalesce flag" in
      Apply { artifact; v = read_float_array r "vector"; coalesce }
    | 'B' ->
      let artifact = read_name r in
      Apply_batch { artifact; vs = read_vectors r "batch vector" }
    | 'C' ->
      let artifact = read_name r in
      let coalesce = read_bool r "coalesce flag" in
      Column { artifact; index = read_int r "column index"; coalesce }
    | 'T' ->
      let artifact = read_name r in
      Threshold { artifact; target = read_float r "threshold target" }
    | 'S' -> Stats
    | 'Q' -> Shutdown
    | c -> fail "unknown request opcode %C" c
  in
  finish r req

let decode_response s =
  let r = { s; pos = 0 } in
  let resp =
    match read_byte r "opcode" with
    | 'v' ->
      let degraded = read_degraded r in
      Vectors { vs = read_vectors r "response vector"; degraded }
    | 'i' ->
      let n = read_int r "dimension" in
      let kind = read_string_field r "kind" in
      let source = read_string_field r "source" in
      let solves = read_int r "solve count" in
      let storage_floats = read_int r "storage floats" in
      Info_r { n; kind; source; solves; storage_floats; degraded = read_degraded r }
    | 't' ->
      let nnz_before = read_int r "nnz before" in
      let nnz_after = read_int r "nnz after" in
      Threshold_r { nnz_before; nnz_after; storage_floats = read_int r "storage floats" }
    | 's' ->
      let table = read_string_field r "stats table" in
      let count = read_length r "stats pair count" in
      let pairs =
        List.init count (fun _ ->
            let name = read_string_field r "stats name" in
            (name, read_float r "stats value"))
      in
      Stats_r { table; pairs }
    | 'q' -> Shutting_down
    | 'e' -> Error_r (read_string_field r "error message")
    | c -> fail "unknown response opcode %C" c
  in
  finish r resp

(* --- frame transport --------------------------------------------------- *)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then fail "frame of %d bytes exceeds the %d limit" len max_frame_bytes;
  let b = Bytes.create (8 + len) in
  Bytes.set_int64_le b 0 (Int64.of_int len);
  Bytes.blit_string payload 0 b 8 len;
  Io_retry.write_all fd b 0 (8 + len)

(* @raise End_of_file on a clean close before any header byte. A close
   mid-frame raises it too — both sides treat any EOF as "peer gone". *)
let read_frame fd =
  let header = Bytes.create 8 in
  Io_retry.really_read fd header 0 8;
  let len64 = Bytes.get_int64_le header 0 in
  let len = Int64.to_int len64 in
  if len < 0 || not (Int64.equal (Int64.of_int len) len64) then
    fail "implausible frame length %Ld" len64;
  if len > max_frame_bytes then fail "frame of %d bytes exceeds the %d limit" len max_frame_bytes;
  let payload = Bytes.create len in
  Io_retry.really_read fd payload 0 len;
  Bytes.to_string payload

let write_request fd r = write_frame fd (encode_request r)
let write_response fd r = write_frame fd (encode_response r)
let read_request fd = decode_request (read_frame fd)
let read_response fd = decode_response (read_frame fd)
