(** The serve wire protocol: length-prefixed binary frames.

    Every message is an 8-byte little-endian payload length followed by
    the payload; the payload's first byte is the opcode. Integers are
    little-endian int64, floats travel by their IEEE-754 bit pattern —
    responses cross the socket bit-exactly, which is what the serve
    digest-parity guarantee rests on.

    Decoding is defensive (the socket end of the trust boundary): every
    length is validated against the bytes present before allocation, and
    frames above {!max_frame_bytes} are refused. Malformed input raises
    {!Error}; it never escapes as an allocation failure or an index out
    of bounds. *)

exception Error of string

(** Hard per-frame size cap (1 GiB), enforced on both send and receive. *)
val max_frame_bytes : int

(** Cap on artifact-name fields (4096 bytes). *)
val max_name_bytes : int

(** Degradation report attached to answers served from a manifest with
    quarantined or pending shards: the masked contact ids (rows answered
    as zeros) and the shard counts behind them. *)
type degraded = {
  masked : int array;
  quarantined_shards : int;
  pending_shards : int;
}

(** [coalesce] opts a single matvec into the server's batching queue
    (the default everywhere); [false] forces a direct apply, which the
    bench uses to measure the coalescing gain. Answers are bit-identical
    either way. *)
type request =
  | Info of { artifact : string }
  | Apply of { artifact : string; v : float array; coalesce : bool }
  | Apply_batch of { artifact : string; vs : float array array }
  | Column of { artifact : string; index : int; coalesce : bool }
  | Threshold of { artifact : string; target : float }
  | Stats
  | Shutdown

type response =
  | Vectors of { vs : float array array; degraded : degraded option }
  | Info_r of {
      n : int;
      kind : string;
      source : string;
      solves : int;
      storage_floats : int;
      degraded : degraded option;
    }
  | Threshold_r of { nnz_before : int; nnz_after : int; storage_floats : int }
  | Stats_r of { table : string; pairs : (string * float) list }
  | Shutting_down
  | Error_r of string

(** Pure payload codecs (unit-testable without a socket). Decoders
    @raise Error on malformed bytes, trailing garbage included. *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

(** Framed socket transport, EINTR-restarting.
    Readers @raise End_of_file when the peer closes and @raise Error on a
    malformed frame; all four @raise Unix.Unix_error on socket failure. *)

val write_request : Unix.file_descr -> request -> unit
val read_request : Unix.file_descr -> request
val write_response : Unix.file_descr -> response -> unit
val read_response : Unix.file_descr -> response
