(* Build per-function effect summaries and the cross-module call graph from
   [.cmt] typedtrees.

   One walk of every top-level binding collects, in source order, the
   events the typed rules consume: resolved calls, writes to module-level
   mutable state, raise sites, fsync/rename calls, in-loop allocations and
   float-typed structural comparisons. Reachability questions (what can a
   pool worker run? does this rename's function also fsync?) are then pure
   graph walks in Typed_checks, with no further typedtree traffic.

   Soundness caveats (see DESIGN.md "Typed lint"): the graph tracks calls
   whose head is a named path — first-class functions stored in records or
   passed as arguments contribute the edges of their *defining* function
   (over-approximate: the lambda's body is summarized whether or not it is
   ever invoked) but cannot be followed at an indirect call site
   (under-approximate: [root_unresolved] records the pool-callback case).
   Writes count as shared only when the target is itself a module-level
   path; mutation of state smuggled through parameters is invisible. Code
   lexically under [Mutex.protect] (and functions that call [Mutex.lock])
   is trusted wholesale: neither its writes nor its outgoing calls are
   recorded. *)

open Typedtree

type event_kind =
  | Call of string
  | Write of string
  | Raise of string
  | Fsync
  | Rename of string option
  | Alloc of string
  | Float_cmp of string

type event = { ev_loc : Location.t; ev_kind : event_kind }

type fn = {
  fn_key : string;
  fn_file : string;
  fn_loc : Location.t;
  fn_hotpath : bool;
  fn_takes_lock : bool;
  fn_events : event list;
}

type root = {
  root_file : string;
  root_loc : Location.t;
  root_pool_fn : string;
  root_encl : string;
  root_calls : string list;
  root_unresolved : bool;
}

type t = {
  fns : (string, fn) Hashtbl.t;
  roots : root list;
}

(* ------------------------------------------------------------------ *)
(* Path normalization                                                  *)
(* ------------------------------------------------------------------ *)

(* "La__Mat.gemv" -> "La.Mat.gemv"; "Subcouple_op__.Artifact.save" (an
   alias-module hop) -> "Subcouple_op.Artifact.save". Implemented as
   __ -> . followed by collapsing dot runs and edge dots. *)
let normalize_name s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  let s = Buffer.contents b in
  let n = String.length s in
  let b = Buffer.create n in
  String.iteri
    (fun j c ->
      if c = '.' && (Buffer.length b = 0 || (j + 1 < n && s.[j + 1] = '.') || j = n - 1) then ()
      else Buffer.add_char b c)
    s;
  Buffer.contents b

let normalize_path p = normalize_name (Path.name p)

(* Last [k] dot-components of a normalized name, joined back: the matching
   granularity for stdlib entry points ("Mutex.protect", "Sys.rename"). *)
let last_components k s =
  let parts = String.split_on_char '.' s in
  let n = List.length parts in
  if n <= k then s else String.concat "." (List.filteri (fun i _ -> i >= n - k) parts)

let suffix2 s = last_components 2 s
let last1 s = last_components 1 s

(* ------------------------------------------------------------------ *)
(* Classification tables                                               *)
(* ------------------------------------------------------------------ *)

let pool_entry np =
  match suffix2 np with
  | "Pool.parallel_for" -> Some "parallel_for"
  | "Pool.map_chunks" -> Some "map_chunks"
  | "Pool.map_array" -> Some "map_array"
  | _ -> None

(* Mutating stdlib entry points: when the first argument is module-level
   state, the call is a shared-state write described by the result. *)
let write_verb np =
  match String.split_on_char '.' np with
  | [ ":=" ] | [ "Stdlib"; ":=" ] -> Some "assignment (:=)"
  | [ ("incr" | "decr") as f ] | [ "Stdlib"; (("incr" | "decr") as f) ] ->
    Some (Printf.sprintf "Stdlib.%s" f)
  | _ -> (
    match suffix2 np with
    | ( "Array.set" | "Array.unsafe_set" | "Array.fill" | "Array.blit" | "Bytes.set"
      | "Bytes.unsafe_set" | "Bytes.fill" | "Hashtbl.add" | "Hashtbl.replace" | "Hashtbl.remove"
      | "Hashtbl.reset" | "Hashtbl.clear" | "Hashtbl.filter_map_inplace" | "Buffer.clear"
      | "Buffer.reset" | "Buffer.truncate" | "Queue.add" | "Queue.push" | "Queue.pop"
      | "Queue.take" | "Queue.clear" | "Queue.transfer" | "Stack.push" | "Stack.pop"
      | "Stack.clear" | "Array1.set" | "Array1.unsafe_set" | "Array2.set" | "Array2.unsafe_set"
      | "Genarray.set" ) as s ->
      Some s
    | s when String.length s > 11 && String.equal (String.sub s 0 11) "Buffer.add_" -> Some s
    | _ -> None)

(* Calls that allocate on every invocation — flagged only inside the loops
   of [@@lint.hotpath] functions. Keyed on the last two components. *)
let allocating_call np =
  let s2 = suffix2 np and s1 = last1 np in
  match s2 with
  | "Array.make" | "Array.init" | "Array.create_float" | "Array.make_matrix" | "Array.append"
  | "Array.concat" | "Array.sub" | "Array.copy" | "Array.of_list" | "Array.to_list"
  | "Array.map" | "Array.mapi" | "Array.map2" | "List.init" | "List.map" | "List.mapi"
  | "List.rev_map" | "List.append" | "List.concat" | "List.filter" | "List.filter_map"
  | "List.rev" | "List.sort" | "String.make" | "String.init" | "String.sub" | "String.concat"
  | "String.cat" | "String.map" | "Bytes.create" | "Bytes.make" | "Bytes.init" | "Bytes.sub"
  | "Bytes.copy" | "Bytes.of_string" | "Bytes.to_string" | "Bytes.cat" | "Printf.sprintf"
  | "Format.asprintf" | "Buffer.create" | "Buffer.contents" | "Buffer.to_bytes"
  | "Hashtbl.create" | "Hashtbl.copy" | "Digest.string" | "Digest.bytes" ->
    Some ("call to " ^ s2)
  | _ -> (
    match s1 with
    | "@" | "^" | "^^" -> Some (Printf.sprintf "call to (%s)" s1)
    | _ -> None)

let raising_head np =
  match String.split_on_char '.' np with
  | [ "raise" ] | [ "Stdlib"; "raise" ] | [ "raise_notrace" ] | [ "Stdlib"; "raise_notrace" ] ->
    Some `Raise
  | [ "failwith" ] | [ "Stdlib"; "failwith" ] -> Some (`Named "Failure")
  | [ "invalid_arg" ] | [ "Stdlib"; "invalid_arg" ] -> Some (`Named "Invalid_argument")
  | _ -> None

let structural_cmp np =
  match String.split_on_char '.' np with
  | [ (("=" | "<>" | "==" | "!=" | "compare") as op) ]
  | [ "Stdlib"; (("=" | "<>" | "==" | "!=" | "compare") as op) ] ->
    Some op
  | _ -> None

let poly_box np =
  match String.split_on_char '.' np with
  | [ (("min" | "max" | "compare") as f) ] | [ "Stdlib"; (("min" | "max" | "compare") as f) ]
    ->
    Some f
  | _ -> None

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> String.equal (Path.name p) "float"
  | _ -> false

let is_arrow_ty ty = match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let hotpath_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt "lint.hotpath")
    attrs

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)
(* ------------------------------------------------------------------ *)

type out_acc = {
  mutable o_roots : root list;
  mutable o_synths : fn list;  (* summaries of inline pool callbacks *)
  mutable o_synth_count : int;
}

type ctx = {
  c_file : string;
  c_toplevel : (string, string) Hashtbl.t;  (* Ident.unique_name -> key *)
  c_encl : string;  (* enclosing summary key, for root messages *)
  c_out : out_acc;
  mutable c_lambdas : (string * expression) list;  (* let-bound local lambdas *)
  mutable c_loop : int;
  mutable c_protected : int;
  mutable c_try : int;
  mutable c_lock : bool;
  mutable c_events : event list;  (* reversed *)
}

let emit ctx loc kind = ctx.c_events <- { ev_loc = loc; ev_kind = kind } :: ctx.c_events

(* Resolve an identifier path to a summary key: module-level values of the
   current unit by Ident, everything dotted by normalization. Plain local
   idents (parameters, lets) resolve to nothing. *)
let resolve_ident ctx (p : Path.t) =
  match p with
  | Path.Pident id -> Hashtbl.find_opt ctx.c_toplevel (Ident.unique_name id)
  | Path.Pdot _ -> Some (normalize_path p)
  | _ -> None

(* Is this expression a module-level location a write to which is shared
   across domains? Returns its printable key. *)
let rec shared_target ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> resolve_ident ctx p
  | Texp_field (inner, _, lbl) ->
    Option.map (fun k -> k ^ "." ^ lbl.Types.lbl_name) (shared_target ctx inner)
  | _ -> None

let string_lit (e : expression) =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
  | _ -> None

let rec case_catches (p : Typedtree.computation Typedtree.general_pattern) =
  match p.pat_desc with
  | Tpat_exception _ -> true
  | Tpat_or (a, b, _) -> case_catches a || case_catches b
  | _ -> false

let pat_ident (p : pattern) =
  match p.pat_desc with Tpat_var (id, _) -> Some id | _ -> None

let rec iterator ctx =
  let open Tast_iterator in
  let rec expr self (e : expression) =
    let loc = e.exp_loc in
    let in_loop = ctx.c_loop > 0 in
    match e.exp_desc with
    | Texp_for (_, _, lo, hi, _, body) ->
      self.expr self lo;
      self.expr self hi;
      ctx.c_loop <- ctx.c_loop + 1;
      self.expr self body;
      ctx.c_loop <- ctx.c_loop - 1
    | Texp_while (cond, body) ->
      self.expr self cond;
      ctx.c_loop <- ctx.c_loop + 1;
      self.expr self body;
      ctx.c_loop <- ctx.c_loop - 1
    | Texp_try (body, cases) ->
      ctx.c_try <- ctx.c_try + 1;
      self.expr self body;
      ctx.c_try <- ctx.c_try - 1;
      List.iter (fun c -> self.case self c) cases
    | Texp_match (scrut, cases, _) ->
      let catches = List.exists (fun c -> case_catches c.c_lhs) cases in
      if catches then ctx.c_try <- ctx.c_try + 1;
      self.expr self scrut;
      if catches then ctx.c_try <- ctx.c_try - 1;
      List.iter (fun c -> self.case self c) cases
    | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          (match (pat_ident vb.vb_pat, vb.vb_expr.exp_desc) with
          | Some id, Texp_function _ ->
            ctx.c_lambdas <- (Ident.unique_name id, vb.vb_expr) :: ctx.c_lambdas
          | _ -> ());
          self.value_binding self vb)
        vbs;
      self.expr self body
    | Texp_function _ ->
      if in_loop then emit ctx loc (Alloc "closure created per iteration");
      default_iterator.expr self e
    | Texp_setfield (target, _, lbl, value) ->
      (match shared_target ctx target with
      | Some key when ctx.c_protected = 0 ->
        emit ctx loc
          (Write (Printf.sprintf "field mutation %s.%s <- ..." key lbl.Types.lbl_name))
      | _ -> ());
      self.expr self target;
      self.expr self value
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      let np = normalize_path p in
      let pos_args = List.filter_map (fun (_, a) -> a) args in
      (* Record the edge first: reachability only needs the head name.
         Code under Mutex.protect is trusted wholesale — no edges out. *)
      (if ctx.c_protected = 0 then
         match resolve_ident ctx p with Some k -> emit ctx loc (Call k) | None -> ());
      (match suffix2 np with
      | "Mutex.lock" -> ctx.c_lock <- true
      | "Unix.fsync" -> emit ctx loc Fsync
      | "Sys.rename" | "Unix.rename" ->
        emit ctx loc (Rename (match pos_args with [ _; dst ] -> string_lit dst | _ -> None))
      | _ -> ());
      (match write_verb np with
      | Some verb when ctx.c_protected = 0 -> (
        match pos_args with
        | target :: _ -> (
          match shared_target ctx target with
          | Some key -> emit ctx loc (Write (Printf.sprintf "%s on %s" verb key))
          | None -> ())
        | [] -> ())
      | _ -> ());
      (match raising_head np with
      | Some `Raise when ctx.c_try = 0 -> (
        match pos_args with
        | { exp_desc = Texp_construct (_, cd, _); _ } :: _ ->
          emit ctx loc (Raise cd.Types.cstr_name)
        | _ -> () (* re-raise of a caught exception value: sanctioned *))
      | Some (`Named exn) when ctx.c_try = 0 -> emit ctx loc (Raise exn)
      | _ -> ());
      (match structural_cmp np with
      | Some op
        when List.length pos_args = 2 && List.exists (fun a -> is_float_ty a.exp_type) pos_args
        ->
        emit ctx loc (Float_cmp op)
      | _ -> ());
      if in_loop then begin
        (match allocating_call np with Some what -> emit ctx loc (Alloc what) | None -> ());
        (match poly_box np with
        | Some f when List.exists (fun a -> is_float_ty a.exp_type) pos_args ->
          emit ctx loc (Alloc (Printf.sprintf "polymorphic %s boxes its float arguments" f))
        | _ -> ());
        if is_arrow_ty e.exp_type then
          emit ctx loc (Alloc "partial application allocates a closure")
      end;
      (match pool_entry np with
      | Some pool_fn -> record_root loc pool_fn args
      | None -> ());
      let protect = String.equal (suffix2 np) "Mutex.protect" in
      List.iter
        (fun (_, a) ->
          match a with
          | None -> ()
          | Some a ->
            if protect && is_arrow_ty a.exp_type then begin
              ctx.c_protected <- ctx.c_protected + 1;
              self.expr self a;
              ctx.c_protected <- ctx.c_protected - 1
            end
            else self.expr self a)
        args
    | Texp_tuple elts ->
      if in_loop then
        emit ctx loc
          (Alloc
             (if List.exists (fun x -> is_float_ty x.exp_type) elts then
                "tuple boxes its float components"
              else "tuple allocation"));
      default_iterator.expr self e
    | Texp_construct (_, cd, cargs) ->
      if in_loop && cargs <> [] then
        emit ctx loc
          (Alloc
             (if List.exists (fun x -> is_float_ty x.exp_type) cargs then
                Printf.sprintf "constructor %s boxes a float argument" cd.Types.cstr_name
              else Printf.sprintf "constructor %s allocation" cd.Types.cstr_name));
      default_iterator.expr self e
    | Texp_record _ ->
      if in_loop then emit ctx loc (Alloc "record allocation");
      default_iterator.expr self e
    | Texp_array (_ :: _) ->
      if in_loop then emit ctx loc (Alloc "array literal allocation");
      default_iterator.expr self e
    | Texp_lazy _ ->
      if in_loop then emit ctx loc (Alloc "lazy block allocation");
      default_iterator.expr self e
    | Texp_ident (p, _, _) ->
      (* A bare reference to a same-graph function still creates an edge:
         the value can be called wherever it flows (e.g. [List.iter f xs]).
         Over-approximate, like the lambda-summarization rule. *)
      if is_arrow_ty e.exp_type && ctx.c_protected = 0 then (
        match resolve_ident ctx p with Some k -> emit ctx loc (Call k) | None -> ())
    | _ -> default_iterator.expr self e
  (* Resolve a pool callback argument to summary-entry keys. *)
  and record_root loc pool_fn args =
    let callbacks =
      List.filter_map
        (fun (_, a) ->
          match a with Some a when is_arrow_ty a.exp_type -> Some a | _ -> None)
        args
    in
    let calls = ref [] and unresolved = ref false in
    List.iter
      (fun (cb : expression) ->
        match cb.exp_desc with
        | Texp_function _ -> calls := synth_callback cb :: !calls
        | Texp_ident (Path.Pident id, _, _)
          when List.mem_assoc (Ident.unique_name id) ctx.c_lambdas ->
          calls := synth_callback (List.assoc (Ident.unique_name id) ctx.c_lambdas) :: !calls
        | Texp_ident (p, _, _) -> (
          match resolve_ident ctx p with
          | Some k -> calls := k :: !calls
          | None -> unresolved := true)
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
          (* partial application: the head function is the entry point *)
          match resolve_ident ctx p with
          | Some k -> calls := k :: !calls
          | None -> unresolved := true)
        | _ -> unresolved := true)
      callbacks;
    if callbacks = [] then unresolved := true;
    ctx.c_out.o_roots <-
      {
        root_file = ctx.c_file;
        root_loc = loc;
        root_pool_fn = pool_fn;
        root_encl = ctx.c_encl;
        root_calls = List.rev !calls;
        root_unresolved = !unresolved;
      }
      :: ctx.c_out.o_roots
  (* Summarize an inline callback as its own anonymous graph node. *)
  and synth_callback (cb : expression) =
    ctx.c_out.o_synth_count <- ctx.c_out.o_synth_count + 1;
    let key =
      Printf.sprintf "<callback#%d@%s:%d>" ctx.c_out.o_synth_count ctx.c_file
        cb.exp_loc.Location.loc_start.Lexing.pos_lnum
    in
    let sub =
      {
        c_file = ctx.c_file;
        c_toplevel = ctx.c_toplevel;
        c_encl = key;
        c_out = ctx.c_out;
        c_lambdas = ctx.c_lambdas;
        c_loop = 0;
        c_protected = 0;
        c_try = 0;
        c_lock = false;
        c_events = [];
      }
    in
    let it = iterator sub in
    it.Tast_iterator.expr it cb;
    ctx.c_out.o_synths <-
      {
        fn_key = key;
        fn_file = ctx.c_file;
        fn_loc = cb.exp_loc;
        fn_hotpath = false;
        fn_takes_lock = sub.c_lock;
        fn_events = List.rev sub.c_events;
      }
      :: ctx.c_out.o_synths;
    key
  in
  { default_iterator with expr }

(* ------------------------------------------------------------------ *)
(* Top-level structure traversal                                       *)
(* ------------------------------------------------------------------ *)

let rec module_structure_of (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> Some s
  | Tmod_constraint (inner, _, _, _) -> module_structure_of inner
  | _ -> None

(* Enumerate top-level value bindings with their dotted key prefix,
   descending into (possibly nested) plain submodules. *)
let rec iter_toplevel prefix (s : structure) f =
  List.iter
    (fun (si : structure_item) ->
      match si.str_desc with
      | Tstr_value (_, vbs) -> List.iter (fun vb -> f prefix vb) vbs
      | Tstr_module mb -> iter_module prefix f mb
      | Tstr_recmodule mbs -> List.iter (iter_module prefix f) mbs
      | _ -> ())
    s.str_items

and iter_module prefix f (mb : module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id -> (
    match module_structure_of mb.mb_expr with
    | Some sub -> iter_toplevel (prefix ^ "." ^ Ident.name id) sub f
    | None -> ())

let build units =
  let fns : (string, fn) Hashtbl.t = Hashtbl.create 256 in
  let out = { o_roots = []; o_synths = []; o_synth_count = 0 } in
  (* Pass A: name every top-level value so same-unit calls resolve. *)
  let toplevels = Hashtbl.create (max 1 (List.length units)) in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let prefix = normalize_name u.Cmt_loader.ci_modname in
      let tbl = Hashtbl.create 64 in
      iter_toplevel prefix u.Cmt_loader.ci_structure (fun pfx vb ->
          match pat_ident vb.vb_pat with
          | Some id -> Hashtbl.replace tbl (Ident.unique_name id) (pfx ^ "." ^ Ident.name id)
          | None -> ());
      Hashtbl.replace toplevels u.Cmt_loader.ci_source tbl)
    units;
  (* Pass B: summarize every binding (anonymous ones — [let () = ...] —
     included: nobody calls them, but their pool call sites, renames and
     float comparisons still matter). *)
  let anon = ref 0 in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let prefix = normalize_name u.Cmt_loader.ci_modname in
      let tbl = Hashtbl.find toplevels u.Cmt_loader.ci_source in
      iter_toplevel prefix u.Cmt_loader.ci_structure (fun pfx vb ->
          let key =
            match pat_ident vb.vb_pat with
            | Some id -> pfx ^ "." ^ Ident.name id
            | None ->
              incr anon;
              Printf.sprintf "%s.<toplevel#%d>" pfx !anon
          in
          let ctx =
            {
              c_file = u.Cmt_loader.ci_source;
              c_toplevel = tbl;
              c_encl = key;
              c_out = out;
              c_lambdas = [];
              c_loop = 0;
              c_protected = 0;
              c_try = 0;
              c_lock = false;
              c_events = [];
            }
          in
          let it = iterator ctx in
          it.Tast_iterator.expr it vb.vb_expr;
          let summary =
            {
              fn_key = key;
              fn_file = u.Cmt_loader.ci_source;
              fn_loc = vb.vb_loc;
              fn_hotpath = hotpath_attr vb.vb_attributes;
              fn_takes_lock = ctx.c_lock;
              fn_events = List.rev ctx.c_events;
            }
          in
          match Hashtbl.find_opt fns key with
          | None -> Hashtbl.replace fns key summary
          | Some prev ->
            (* Top-level shadowing: merge conservatively. *)
            Hashtbl.replace fns key
              {
                prev with
                fn_hotpath = prev.fn_hotpath || summary.fn_hotpath;
                fn_takes_lock = prev.fn_takes_lock && summary.fn_takes_lock;
                fn_events = prev.fn_events @ summary.fn_events;
              }))
    units;
  List.iter (fun s -> Hashtbl.replace fns s.fn_key s) out.o_synths;
  { fns; roots = List.rev out.o_roots }
