(* Findings and the rule catalogue for subcouple-lint.

   A finding is one diagnostic: a rule violated at a file:line:col, with a
   message describing the site and a per-rule fix hint. The executable in
   bin/lint_main.ml prints findings and exits non-zero if any unsuppressed
   one remains; see DESIGN.md "Static analysis" for the catalogue. *)

type rule =
  | Domain_safety
  | Float_eq
  | No_catch_all
  | No_unsafe
  | No_stdout_in_lib
  | Mli_coverage
  | Suppression
  | Parse_error
  (* Typed rules: computed over .cmt typedtrees by Typed_checks, not over
     the Parsetree. See DESIGN.md "Typed lint". *)
  | Pool_escape
  | Hotpath_alloc
  | Crash_safety
  | Float_eq_typed

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  severity : severity;
  ident : string option;
      (* for [Domain_safety]: the top-level binding name, matched against
         the lint/domain_safety.allow allowlist *)
  message : string;
}

let all_rules =
  [
    Domain_safety;
    Float_eq;
    No_catch_all;
    No_unsafe;
    No_stdout_in_lib;
    Mli_coverage;
    Suppression;
    Parse_error;
    Pool_escape;
    Hotpath_alloc;
    Crash_safety;
    Float_eq_typed;
  ]

let rule_id = function
  | Domain_safety -> "domain_safety"
  | Float_eq -> "float_eq"
  | No_catch_all -> "no_catch_all"
  | No_unsafe -> "no_unsafe"
  | No_stdout_in_lib -> "no_stdout_in_lib"
  | Mli_coverage -> "mli_coverage"
  | Suppression -> "suppression"
  | Parse_error -> "parse_error"
  | Pool_escape -> "pool_escape"
  | Hotpath_alloc -> "hotpath_alloc"
  | Crash_safety -> "crash_safety"
  | Float_eq_typed -> "float_eq_typed"

let rule_of_id id = List.find_opt (fun r -> String.equal (rule_id r) id) all_rules

let description = function
  | Domain_safety ->
    "top-level mutable state (ref, Hashtbl, array, ...) in a library reachable from Parallel.Pool"
  | Float_eq -> "structural =/<>/compare on float operands"
  | No_catch_all -> "try ... with handler that swallows every exception"
  | No_unsafe -> "Array.unsafe_* / Bytes.unsafe_* / Obj.magic outside an annotated hot path"
  | No_stdout_in_lib -> "direct stdout output from library code"
  | Mli_coverage -> "library module without an .mli interface"
  | Suppression -> "malformed or unjustified suppression, or stale allowlist entry"
  | Parse_error -> "file does not parse"
  | Pool_escape ->
    "write to unprotected shared state, or unsanctioned exception, reachable (across modules) \
     from a Parallel.Pool callback"
  | Hotpath_alloc ->
    "allocation inside the loops of a [@@lint.hotpath] function (allocating call, closure, \
     boxed float, partial application)"
  | Crash_safety ->
    "Sys.rename/Unix.rename into an artifact/checkpoint path without an fsync of the file \
     before and of the directory after"
  | Float_eq_typed -> "structural =/<>/compare where an operand's inferred type is float"

let hint = function
  | Domain_safety ->
    "guard it with a Mutex/Atomic/Domain.DLS and record that in [@@lint.allow domain_safety \
     \"...\"] or lint/domain_safety.allow"
  | Float_eq -> "use Float.equal for intentional exact equality, or compare against a tolerance"
  | No_catch_all -> "match the exception cases you expect and let programmer errors propagate"
  | No_unsafe -> "use the bounds-checked accessor, or annotate the binding with [@@lint.hotpath \"...\"]"
  | No_stdout_in_lib -> "go through Logs (or return the string and print from bin/)"
  | Mli_coverage -> "add a .mli making the module's public surface explicit"
  | Suppression -> "suppressions need a one-line justification: [@lint.allow <rule> \"why\"]"
  | Parse_error -> "fix the syntax error; the linter parses with the compiler's own parser"
  | Pool_escape ->
    "protect the state with Atomic/Mutex.protect/Domain.DLS or raise a sanctioned typed error; \
     else [@lint.allow pool_escape \"why\"] at the site"
  | Hotpath_alloc -> "hoist the allocation out of the loop, or drop the [@@lint.hotpath] claim"
  | Crash_safety ->
    "Unix.fsync the written file before the rename and its directory after (DESIGN.md \
     \"crash-safety protocol\")"
  | Float_eq_typed ->
    "use Float.equal for intentional exact equality, or compare against a tolerance"

let severity_id = function Error -> "error" | Warning -> "warning"

let v ?(severity = Error) ?ident ~file ~line ~col rule message =
  { file; line; col; rule; severity; ident; message }

(* Stable report order: file, then position. *)
let compare_by_location a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: %s[%s] %s (hint: %s)" f.file f.line f.col (severity_id f.severity)
    (rule_id f.rule) f.message (hint f.rule)

let to_string f = Format.asprintf "%a" pp f
