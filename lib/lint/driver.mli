(** The subcouple-lint driver. Produces findings; printing and the exit
    code live in bin/lint_main.ml. *)

type report = {
  findings : Finding.t list;  (** unsuppressed findings, sorted by location *)
  suppressed : int;  (** findings silenced by attributes or the allowlist *)
  files : int;  (** implementation files checked *)
}

val lint_file : ?in_lib:bool -> ?domain_safety:bool -> ?check_mli:bool -> string -> report
(** Lint a single .ml file. The flags default to [false] so fixture tests
    can exercise one rule at a time; [lint_paths] derives them from the
    file's location instead. *)

val lint_paths : ?allowlist:string -> root:string -> string list -> report
(** Lint every .ml under the given paths (files or directories, relative to
    [root]). Files under lib/ get the no_stdout_in_lib and mli_coverage
    rules; files in {!Dune_deps.pool_reachable_dirs} get domain_safety,
    with [allowlist] (if given) applied as the checked allowlist — stale
    and malformed entries are reported as findings. *)
