(** The subcouple-lint driver. Produces findings; printing and the exit
    code live in bin/lint_main.ml. *)

type report = {
  findings : Finding.t list;  (** unsuppressed findings, sorted by location *)
  suppressed : int;  (** findings silenced by attributes or the allowlist *)
  files : int;  (** implementation files checked *)
}

val lint_file : ?in_lib:bool -> ?domain_safety:bool -> ?check_mli:bool -> string -> report
(** Lint a single .ml file. The flags default to [false] so fixture tests
    can exercise one rule at a time; [lint_paths] derives them from the
    file's location instead. *)

val lint_typed : cmt_root:string -> paths:string list -> report
(** Run only the typed rules ({!Typed_checks}): read every [.cmt] under
    [cmt_root] whose recorded source lies under one of [paths], build the
    call graph, and report. No suppressions are applied — fixture tests
    want the raw findings; [lint_paths] layers the inline suppressions on
    top. [files] counts typed units, and unreadable [.cmt]s surface as
    [Parse_error] findings. *)

val lint_paths : ?allowlist:string -> ?typed:string -> root:string -> string list -> report
(** Lint every .ml under the given paths (files or directories, relative to
    [root]). Files under lib/ get the no_stdout_in_lib and mli_coverage
    rules; files in {!Dune_deps.pool_reachable_dirs} get domain_safety,
    with [allowlist] (if given) applied as the checked allowlist — stale
    and malformed entries are reported as findings.

    [typed], when given, is a directory holding the build's [.cmt] files
    (e.g. [_build/default]); the typed rules then run over them and their
    findings — filtered through the same per-file inline
    [\[@lint.allow\]] attributes — are merged into the report. *)
