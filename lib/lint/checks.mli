(** Syntactic Parsetree checks for the subcouple-lint rules.

    All rules are heuristics over the untyped AST (the linter never runs the
    type checker); see DESIGN.md "Static analysis" for exactly what each rule
    does and does not catch. *)

val check :
  file:string -> in_lib:bool -> domain_safety:bool -> Parsetree.structure -> Finding.t list
(** Run every expression-level rule over one parsed implementation.
    [in_lib] enables no_stdout_in_lib; [domain_safety] enables the
    module-level mutable-state scan. Findings come back in source order and
    are NOT yet filtered by suppressions — that is {!Driver}'s job. *)

val floaty : Parsetree.expression -> bool
(** Exposed for tests: the float_eq operand heuristic. *)

val mutable_ctor : Longident.t -> string option
(** Exposed for tests: constructors of shared mutable state recognized by
    the domain_safety rule ([Atomic.make]/[Mutex.create]/... deliberately
    excluded — they are the sanctioned protection primitives). *)
