(* The four typed rules over the call graph. Everything here is pure graph
   walking: the typedtree work already happened in Callgraph.build. *)

open Callgraph

let sanctioned_exceptions =
  [ "Invalid_argument"; "Failure"; "Assert_failure"; "Not_found"; "Exit"; "Solve_failed" ]

let loc_file fallback (loc : Location.t) =
  let f = loc.Location.loc_start.Lexing.pos_fname in
  if String.equal f "" then fallback else f

let loc_line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let loc_col (loc : Location.t) =
  loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol

let finding rule ~fallback_file (loc : Location.t) message =
  Finding.v ~file:(loc_file fallback_file loc) ~line:(loc_line loc) ~col:(loc_col loc) rule
    message

(* ------------------------------------------------------------------ *)
(* pool_escape                                                         *)
(* ------------------------------------------------------------------ *)

(* Breadth-first over Call edges from one root entry. [f] sees each
   reachable summary with the call chain (entry first) that got there.
   Functions that take a lock themselves are trusted wholesale and not
   descended into. *)
let reachable g entry f =
  let visited = Hashtbl.create 64 in
  let q = Queue.create () in
  Queue.add (entry, [ entry ]) q;
  while not (Queue.is_empty q) do
    let key, chain = Queue.pop q in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key ();
      match Hashtbl.find_opt g.fns key with
      | None -> ()
      | Some fn when fn.fn_takes_lock -> ()
      | Some fn ->
        f fn chain;
        List.iter
          (fun ev ->
            match ev.ev_kind with
            | Call callee when not (Hashtbl.mem visited callee) ->
              Queue.add (callee, callee :: chain) q
            | _ -> ())
          fn.fn_events
    end
  done

let chain_str chain =
  (* chain is innermost-first; print root-to-leaf and keep it short *)
  let parts = List.rev chain in
  let parts =
    if List.length parts <= 4 then parts
    else
      match parts with
      | a :: b :: rest -> [ a; b; "..."; List.nth rest (List.length rest - 1) ]
      | _ -> parts
  in
  String.concat " -> " parts

let pool_escape g =
  let acc = ref [] in
  List.iter
    (fun root ->
      let where =
        Printf.sprintf "Pool.%s callback at %s:%d (in %s)" root.root_pool_fn root.root_file
          (loc_line root.root_loc) root.root_encl
      in
      List.iter
        (fun entry ->
          reachable g entry (fun fn chain ->
              List.iter
                (fun ev ->
                  match ev.ev_kind with
                  | Write what ->
                    acc :=
                      finding Finding.Pool_escape ~fallback_file:fn.fn_file ev.ev_loc
                        (Printf.sprintf
                           "%s: unprotected shared-state write (%s) reachable from %s via %s"
                           fn.fn_key what where (chain_str chain))
                      :: !acc
                  | Raise exn when not (List.mem exn sanctioned_exceptions) ->
                    acc :=
                      finding Finding.Pool_escape ~fallback_file:fn.fn_file ev.ev_loc
                        (Printf.sprintf
                           "%s: exception %s escapes the worker, reachable from %s via %s"
                           fn.fn_key exn where (chain_str chain))
                      :: !acc
                  | _ -> ())
                fn.fn_events))
        root.root_calls)
    g.roots;
  !acc

(* ------------------------------------------------------------------ *)
(* hotpath_alloc                                                       *)
(* ------------------------------------------------------------------ *)

let hotpath_alloc g =
  Hashtbl.fold
    (fun _ fn acc ->
      if not fn.fn_hotpath then acc
      else
        List.fold_left
          (fun acc ev ->
            match ev.ev_kind with
            | Alloc what ->
              finding Finding.Hotpath_alloc ~fallback_file:fn.fn_file ev.ev_loc
                (Printf.sprintf "%s inside a loop of %s, which is declared [@@lint.hotpath]"
                   what fn.fn_key)
              :: acc
            | _ -> acc)
          acc fn.fn_events)
    g.fns []

(* ------------------------------------------------------------------ *)
(* crash_safety                                                        *)
(* ------------------------------------------------------------------ *)

(* A destination is in scope when it names (or may name — non-literal
   destinations are conservatively included) an artifact or checkpoint. *)
let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  go 0

let dest_in_scope = function
  | None -> true
  | Some d ->
    let d = String.lowercase_ascii d in
    contains ~needle:".sca" d || contains ~needle:".scm" d || contains ~needle:"ckpt" d
    || contains ~needle:"checkpoint" d

(* Fixpoint: a function is fsync-capable when it fsyncs directly or calls
   a capable one (the [fsync_dir]-helper pattern). *)
let fsync_capable g =
  let cap = Hashtbl.create 64 in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key fn ->
        if not (Hashtbl.mem cap key) then
          let is_cap =
            List.exists
              (fun ev ->
                match ev.ev_kind with
                | Fsync -> true
                | Call callee -> Hashtbl.mem cap callee
                | _ -> false)
              fn.fn_events
          in
          if is_cap then begin
            Hashtbl.replace cap key ();
            changed := true
          end)
      g.fns
  done;
  cap

let crash_safety g =
  let cap = fsync_capable g in
  let syncs_at ev =
    match ev.ev_kind with Fsync -> true | Call k -> Hashtbl.mem cap k | _ -> false
  in
  Hashtbl.fold
    (fun _ fn acc ->
      List.fold_left
        (fun acc ev ->
          match ev.ev_kind with
          | Rename dst when dest_in_scope dst ->
            let pos = ev.ev_loc.Location.loc_start.Lexing.pos_cnum in
            let before =
              List.exists
                (fun e -> e.ev_loc.Location.loc_start.Lexing.pos_cnum < pos && syncs_at e)
                fn.fn_events
            and after =
              List.exists
                (fun e -> e.ev_loc.Location.loc_start.Lexing.pos_cnum > pos && syncs_at e)
                fn.fn_events
            in
            if before && after then acc
            else
              let what =
                match dst with Some d -> Printf.sprintf "rename to %S" d | None -> "rename"
              in
              let missing =
                match (before, after) with
                | false, false -> "no fsync of the written file before it, no directory fsync after it"
                | false, true -> "no fsync of the written file before it"
                | true, false -> "no directory fsync after it"
                | true, true -> assert false
              in
              finding Finding.Crash_safety ~fallback_file:fn.fn_file ev.ev_loc
                (Printf.sprintf "%s in %s has %s" what fn.fn_key missing)
              :: acc
          | _ -> acc)
        acc fn.fn_events)
    g.fns []

(* ------------------------------------------------------------------ *)
(* float_eq_typed                                                      *)
(* ------------------------------------------------------------------ *)

let float_eq_typed g =
  Hashtbl.fold
    (fun _ fn acc ->
      List.fold_left
        (fun acc ev ->
          match ev.ev_kind with
          | Float_cmp op ->
            finding Finding.Float_eq_typed ~fallback_file:fn.fn_file ev.ev_loc
              (Printf.sprintf
                 "structural (%s) where an operand's inferred type is float (in %s)" op
                 fn.fn_key)
            :: acc
          | _ -> acc)
        acc fn.fn_events)
    g.fns []

(* ------------------------------------------------------------------ *)

let run g =
  let all = pool_escape g @ hotpath_alloc g @ crash_safety g @ float_eq_typed g in
  (* Several pool roots can reach the same event: keep one finding per
     (location, rule). *)
  let seen = Hashtbl.create 64 in
  let uniq =
    List.filter
      (fun (f : Finding.t) ->
        let key = (f.Finding.file, f.Finding.line, f.Finding.col, Finding.rule_id f.Finding.rule) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      all
  in
  List.sort Finding.compare_by_location uniq
