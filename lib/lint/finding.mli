(** Findings and the rule catalogue for subcouple-lint. *)

type rule =
  | Domain_safety  (** top-level mutable state in pool-reachable libraries *)
  | Float_eq  (** structural =/<>/compare on float operands *)
  | No_catch_all  (** [try ... with _ ->] or handler that drops the exception *)
  | No_unsafe  (** unsafe accessors outside annotated hot paths *)
  | No_stdout_in_lib  (** stdout printing from lib/ *)
  | Mli_coverage  (** lib/ module without an .mli *)
  | Suppression  (** malformed/unjustified suppression or stale allowlist entry *)
  | Parse_error  (** file does not parse *)
  | Pool_escape
      (** typed: unprotected shared-state write or unsanctioned exception
          reachable (across modules) from a Pool callback *)
  | Hotpath_alloc  (** typed: allocation inside the loops of a [\[@@lint.hotpath\]] function *)
  | Crash_safety
      (** typed: rename into an artifact/checkpoint path not bracketed by
          file-then-directory fsyncs *)
  | Float_eq_typed  (** typed: =/<>/compare where an operand's inferred type is float *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  severity : severity;
  ident : string option;
  message : string;
}

val all_rules : rule list
val rule_id : rule -> string
val rule_of_id : string -> rule option
val description : rule -> string
val hint : rule -> string
val severity_id : severity -> string

val v :
  ?severity:severity -> ?ident:string -> file:string -> line:int -> col:int -> rule -> string -> t

val compare_by_location : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
