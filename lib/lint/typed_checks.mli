(** The four typed rules, computed over a {!Callgraph.t}.

    - [pool_escape] — walk the call graph from every [Parallel.Pool]
      callback; flag unprotected writes to module-level mutable state and
      raises of unsanctioned exceptions anywhere in the reachable set,
      across module boundaries.
    - [hotpath_alloc] — flag allocations recorded inside the loops of
      functions carrying [\[@@lint.hotpath\]].
    - [crash_safety] — every rename into an artifact/checkpoint path must
      see an fsync (directly or through a transitively fsync-capable
      callee) lexically before it, and one after it for the directory
      entry.
    - [float_eq_typed] — structural [=]/[<>]/[==]/[!=]/[compare] where an
      operand's inferred type is [float].

    Suppression ([\[@lint.allow <rule> "why"\]]) is applied by the caller
    ({!Driver}), which owns the per-file source text. *)

val sanctioned_exceptions : string list
(** Exception constructors a pool worker may raise: programmer errors and
    the typed solver errors the pool's join logic rethrows. *)

val run : Callgraph.t -> Finding.t list
(** All findings from the four rules, deduplicated by location and sorted
    with {!Finding.compare_by_location}. *)
