(* The Parsetree checks behind subcouple-lint's per-file rules.

   Everything here is purely syntactic: the linter runs the compiler's own
   parser ([Parse.implementation]) but not its type checker, so rules that
   sound type-dependent (float_eq most of all) are heuristics over what the
   source literally says. The heuristics are tuned to this codebase: a
   comparison is "floaty" when one operand is a float literal, a float
   arithmetic expression, or a [Float.*]/[float_of_int]/[sqrt]-style call.
   That catches every real site found in lib/ while never flagging integer
   code; comparisons of two opaque float-typed variables are out of reach
   of this pass and are handled by the typed driver's [float_eq_typed]
   rule (see [Typed_checks]), which reads the inferred operand types from
   the .cmt typedtree. *)

open Parsetree

let flatten (lid : Longident.t) =
  match lid with Longident.Lapply _ -> [] | _ -> Longident.flatten lid

let loc_pos (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ------------------------------------------------------------------ *)
(* float_eq                                                            *)
(* ------------------------------------------------------------------ *)

let float_arith = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_returning_stdlib =
  [
    "float_of_int"; "float_of_string"; "sqrt"; "exp"; "expm1"; "log"; "log10"; "log1p"; "sin";
    "cos"; "tan"; "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "abs_float";
    "mod_float"; "ceil"; "floor"; "copysign"; "ldexp"; "frexp"; "infinity"; "nan"; "max_float";
    "min_float"; "epsilon_float";
  ]

(* Float.* members that do NOT yield a float. *)
let float_module_non_float =
  [
    "equal"; "compare"; "is_nan"; "is_finite"; "is_integer"; "sign_bit"; "to_int"; "to_string";
    "of_string"; "of_string_opt"; "hash"; "classify_float";
  ]

let float_head lid =
  match flatten lid with
  | [ x ] -> List.mem x float_arith || List.mem x float_returning_stdlib
  | [ "Float"; m ] -> not (List.mem m float_module_non_float)
  | [ "Stdlib"; x ] -> List.mem x float_arith || List.mem x float_returning_stdlib
  | _ -> false

let rec is_float_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, [])
  | Ptyp_constr ({ txt = Longident.Ldot (Longident.Lident "Stdlib", "float"); _ }, []) ->
    true
  | Ptyp_alias (t, _) -> is_float_type t
  | _ -> false

let rec floaty (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (e', t) -> is_float_type t || floaty e'
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    float_head txt || (List.mem (flatten txt) [ [ "min" ]; [ "max" ] ] && List.exists (fun (_, a) -> floaty a) args)
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", m); _ } ->
    not (List.mem m float_module_non_float)
  | Pexp_ident { txt = Longident.Lident x; _ } -> List.mem x [ "infinity"; "nan"; "max_float"; "min_float"; "epsilon_float" ]
  | _ -> false

let structural_eq lid =
  match flatten lid with [ ("=" | "<>" | "==" | "!=") as op ] -> Some op | _ -> None

let poly_compare lid =
  match flatten lid with [ "compare" ] | [ "Stdlib"; "compare" ] -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* no_unsafe / no_stdout_in_lib                                        *)
(* ------------------------------------------------------------------ *)

let unsafe_prefixed m = String.length m >= 7 && String.equal (String.sub m 0 7) "unsafe_"

let unsafe_ident lid =
  match flatten lid with
  | [ ("Array" | "Bytes" | "String" | "Bigarray"); m ] -> unsafe_prefixed m
  (* Bigarray accessors, fully qualified ([Bigarray.Array1.unsafe_get])
     or through an opened/aliased [Bigarray] ([Array1.unsafe_get]). *)
  | [ "Bigarray"; ("Array0" | "Array1" | "Array2" | "Array3" | "Genarray"); m ]
  | [ ("Array0" | "Array1" | "Array2" | "Array3" | "Genarray"); m ] ->
    unsafe_prefixed m
  | [ "Obj"; "magic" ] -> true
  | _ -> false

let stdout_ident lid =
  match flatten lid with
  | [ ("print_endline" | "print_string" | "print_newline" | "print_int" | "print_float"
      | "print_char" | "print_bytes") ] ->
    true
  | [ "Printf"; "printf" ] | [ "Format"; "printf" ] | [ "Format"; "print_string" ]
  | [ "Format"; "print_newline" ] ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* no_catch_all                                                        *)
(* ------------------------------------------------------------------ *)

let rec pattern_contains_any (p : pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> pattern_contains_any a || pattern_contains_any b
  | Ppat_alias (p, _) -> pattern_contains_any p
  | _ -> false

let expr_uses_var name (e : expression) =
  let found = ref false in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when String.equal x name -> found := true
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  iter.expr iter e;
  !found

(* A handler case is a catch-all when its pattern matches every exception
   ([_], possibly through or/alias) or binds the exception to a variable
   the body never mentions (so it can neither inspect nor re-raise it). *)
let catch_all_case (c : case) =
  match c.pc_lhs.ppat_desc with
  | Ppat_var { txt = name; _ } when not (expr_uses_var name c.pc_rhs) ->
    Some (Printf.sprintf "handler binds %s but never inspects or re-raises it" name)
  | _ when pattern_contains_any c.pc_lhs -> Some "catch-all handler swallows every exception"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* domain_safety                                                       *)
(* ------------------------------------------------------------------ *)

(* Constructors of shared mutable state. [Atomic.make], [Mutex.create],
   [Condition.create], [Semaphore.*] and [Domain.DLS.new_key] are the
   sanctioned primitives and are deliberately absent: they ARE the
   protection the rule asks for. *)
let mutable_ctor lid =
  match flatten lid with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "a ref cell"
  | [ "Hashtbl"; ("create" | "copy" | "of_seq") ] -> Some "a Hashtbl"
  | [ "Array"; ("make" | "create_float" | "init" | "make_matrix" | "of_list" | "copy" | "append" | "concat" | "sub") ]
    ->
    Some "an array"
  | [ "Bytes"; ("create" | "make" | "init" | "of_string") ] -> Some "a Bytes buffer"
  | [ "Buffer"; "create" ] -> Some "a Buffer"
  | [ "Queue"; ("create" | "copy") ] -> Some "a Queue"
  | [ "Stack"; ("create" | "copy") ] -> Some "a Stack"
  | [ "Random"; "State"; ("make" | "make_self_init") ] -> Some "a Random.State"
  | _ -> None

let rec pat_ident (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pat_ident p
  | _ -> None

(* Scan the right-hand side of a module-level binding for mutable-state
   constructors, without descending into function bodies: state created
   inside a function is per-call and therefore not shared. *)
let scan_module_binding ~flag vb =
  let ident = pat_ident vb.pvb_pat in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | Pexp_array (_ :: _) -> flag ?ident e.pexp_loc "an array literal"
          | Pexp_lazy _ -> flag ?ident e.pexp_loc "a lazy block (Lazy.force is racy under domains)"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            match mutable_ctor txt with
            | Some what -> flag ?ident e.pexp_loc what
            | None -> List.iter (fun (_, a) -> self.expr self a) args)
          | _ -> default_iterator.expr self e);
    }
  in
  iter.expr iter vb.pvb_expr

(* Walk only module-level structure items (including nested modules). *)
let rec scan_structure_state ~flag items =
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter (scan_module_binding ~flag) vbs
      | Pstr_module { pmb_expr; _ } -> scan_module_expr_state ~flag pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module_expr_state ~flag mb.pmb_expr) mbs
      | Pstr_include { pincl_mod; _ } -> scan_module_expr_state ~flag pincl_mod
      | _ -> ())
    items

and scan_module_expr_state ~flag me =
  match me.pmod_desc with
  | Pmod_structure s -> scan_structure_state ~flag s
  | Pmod_constraint (me, _) -> scan_module_expr_state ~flag me
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let check ~file ~in_lib ~domain_safety structure =
  let findings = ref [] in
  let add ?ident ~loc rule message =
    let line, col = loc_pos loc in
    findings := Finding.v ?ident ~file ~line ~col rule message :: !findings
  in
  if domain_safety then
    scan_structure_state
      ~flag:(fun ?ident loc what ->
        let name = Option.value ident ~default:"_" in
        add ?ident ~loc Finding.Domain_safety
          (Printf.sprintf "top-level binding %s creates %s shared across domains" name what))
      structure;
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_try (_, cases) ->
            List.iter
              (fun c ->
                match catch_all_case c with
                | Some msg -> add ~loc:c.pc_lhs.ppat_loc Finding.No_catch_all msg
                | None -> ())
              cases
          | Pexp_match (_, cases) ->
            (* [match ... with exception _ ->] is a try in disguise. *)
            List.iter
              (fun c ->
                match c.pc_lhs.ppat_desc with
                | Ppat_exception p when pattern_contains_any p ->
                  add ~loc:p.ppat_loc Finding.No_catch_all
                    "catch-all exception case swallows every exception"
                | _ -> ())
              cases
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, [ (_, a); (_, b) ])
            when Option.is_some (structural_eq txt) && (floaty a || floaty b) -> (
            match structural_eq txt with
            | Some op ->
              add ~loc:pexp_loc Finding.Float_eq
                (Printf.sprintf "structural (%s) on float operands" op)
            | None -> ())
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args)
            when poly_compare txt && List.exists (fun (_, x) -> floaty x) args ->
            add ~loc:pexp_loc Finding.Float_eq "polymorphic compare on float operands"
          | Pexp_ident { txt; loc } when unsafe_ident txt ->
            add ~loc Finding.No_unsafe
              (Printf.sprintf "unchecked access %s" (String.concat "." (flatten txt)))
          | Pexp_ident { txt; loc } when in_lib && stdout_ident txt ->
            add ~loc Finding.No_stdout_in_lib
              (Printf.sprintf "%s writes to stdout from library code"
                 (String.concat "." (flatten txt)))
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  iter.structure iter structure;
  List.rev !findings
