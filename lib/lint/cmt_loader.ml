(* Find and read the [.cmt] typedtrees the typed rules run on.

   The walk descends into dot-directories on purpose: dune keeps object
   files under [.<lib>.objs/byte] and [.<exe>.eobjs/byte]. Only units whose
   recorded source file is an [.ml] under the requested paths are kept, so
   generated alias modules ([la.ml-gen]) and out-of-scope trees (tests,
   vendored code) drop out naturally. *)

type unit_info = {
  ci_source : string;
  ci_modname : string;
  ci_structure : Typedtree.structure;
}

let read_file path =
  match Cmt_format.read_cmt path with
  | exception Sys_error msg -> Error msg
  | exception Cmt_format.Error (Not_a_typedtree msg) -> Error msg
  | exception End_of_file -> Error "truncated .cmt file"
  | exception Failure msg ->
    (* input_value on a foreign-compiler or corrupted file. *)
    Error msg
  | cmt -> (
    match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation str, Some src when Filename.check_suffix src ".ml" ->
      Ok (Some { ci_source = src; ci_modname = cmt.Cmt_format.cmt_modname; ci_structure = str })
    | _ -> Ok None)

(* Deterministic recursive walk collecting .cmt files. Unlike the source
   walk in [Driver], dot-directories are descended (that is where dune puts
   them); _build is still skipped in case [cmt_root] is the source root. *)
let rec walk acc path =
  if Sys.file_exists path && Sys.is_directory path then begin
    if String.equal (Filename.basename path) "_build" then acc
    else begin
      let entries = Sys.readdir path in
      Array.sort compare entries;
      Array.fold_left (fun acc e -> walk acc (Filename.concat path e)) acc entries
    end
  end
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let under_any paths file =
  List.exists
    (fun p ->
      String.equal p file
      ||
      let prefix = if Filename.check_suffix p "/" then p else p ^ "/" in
      String.length file > String.length prefix
      && String.equal (String.sub file 0 (String.length prefix)) prefix)
    paths

let load ~cmt_root ~paths =
  let cmts = List.sort_uniq compare (walk [] cmt_root) in
  let seen = Hashtbl.create 64 in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun cmt ->
      match read_file cmt with
      | Ok None -> ()
      | Ok (Some u) ->
        if under_any paths u.ci_source && not (Hashtbl.mem seen u.ci_source) then begin
          Hashtbl.replace seen u.ci_source ();
          units := u :: !units
        end
      | Error msg ->
        errors :=
          Finding.v ~file:cmt ~line:1 ~col:0 Finding.Parse_error
            (Printf.sprintf "unreadable .cmt: %s" msg)
          :: !errors)
    cmts;
  ( List.sort (fun a b -> String.compare a.ci_source b.ci_source) !units,
    List.rev !errors )
