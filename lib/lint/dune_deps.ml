(* Which library directories can execute inside the Domain pool?

   The domain_safety rule only applies to code that parallel workers can
   reach. Rather than hard-coding a directory list, we read the dune files:
   a library is *pool-running* when it (transitively) depends on the
   [parallel] library — its code creates or runs pool tasks — and a library
   is *pool-reachable* when a pool-running library can call into it, i.e.
   it is in the transitive dependency closure of the pool-running set.
   Everything pool-reachable gets the domain_safety scan.

   dune files are read with a minimal s-expression parser (atoms, lists,
   [;] line comments, double-quoted strings) — enough for the [(name ...)]
   and [(libraries ...)] fields we consume. *)

type sexp = Atom of string | List of sexp list

exception Malformed of string

let parse_sexps (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | Some ';' ->
      while !pos < n && s.[!pos] <> '\n' do
        incr pos
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom_char = function
    | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' -> false
    | _ -> true
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Malformed "unexpected end of input")
    | Some '(' ->
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> incr pos
        | None -> raise (Malformed "unclosed (")
        | Some _ ->
          items := parse_one () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some '"' ->
      incr pos;
      let b = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> raise (Malformed "unclosed string")
        | Some '"' -> incr pos
        | Some '\\' when !pos + 1 < n ->
          Buffer.add_char b s.[!pos + 1];
          pos := !pos + 2;
          loop ()
        | Some c ->
          Buffer.add_char b c;
          incr pos;
          loop ()
      in
      loop ();
      Atom (Buffer.contents b)
    | Some ')' -> raise (Malformed "unexpected )")
    | Some _ ->
      let start = !pos in
      while !pos < n && atom_char s.[!pos] do
        incr pos
      done;
      Atom (String.sub s start (!pos - start))
  in
  let out = ref [] in
  let rec loop () =
    skip_ws ();
    if !pos < n then begin
      out := parse_one () :: !out;
      loop ()
    end
  in
  loop ();
  List.rev !out

type lib = { name : string; dir : string; deps : string list }

let field name = function
  | List (Atom f :: rest) when String.equal f name -> Some rest
  | _ -> None

let atoms l = List.filter_map (function Atom a -> Some a | List _ -> None) l

(* Extract every (library ...) stanza's name, dir and dune-visible deps. *)
let libs_of_dune ~dir content =
  match parse_sexps content with
  | exception Malformed _ -> []
  | sexps ->
    List.filter_map
      (function
        | List (Atom "library" :: fields) ->
          let name =
            List.find_map (fun f -> Option.map atoms (field "name" f)) fields
            |> Option.map (function n :: _ -> n | [] -> "")
          in
          let deps =
            List.find_map (fun f -> Option.map atoms (field "libraries" f)) fields
            |> Option.value ~default:[]
          in
          Option.map (fun name -> { name; dir; deps }) name
        | _ -> None)
      sexps

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* All libraries found in immediate subdirectories of [root]/lib. *)
let scan_libs ~root =
  let lib_root = Filename.concat root "lib" in
  if not (Sys.file_exists lib_root && Sys.is_directory lib_root) then []
  else
    let subdirs = Sys.readdir lib_root in
    Array.sort compare subdirs;
    Array.to_list subdirs
    |> List.concat_map (fun sub ->
           let dir = Filename.concat lib_root sub in
           let dune = Filename.concat dir "dune" in
           if Sys.file_exists dune && Sys.is_directory dir then
             libs_of_dune ~dir:(Filename.concat "lib" sub) (read_file dune)
           else [])

let closure ~libs seeds =
  let by_name = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace by_name l.name l) libs;
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt by_name name with
      | Some l -> List.iter visit l.deps
      | None -> () (* external library: out of scope *)
    end
  in
  List.iter visit seeds;
  seen

let pool_reachable_dirs ?(pool_lib = "parallel") ~root () =
  let libs = scan_libs ~root in
  if not (List.exists (fun l -> String.equal l.name pool_lib) libs) then
    (* No pool in this tree (e.g. a fixture corpus): be conservative and
       treat every library as pool-reachable. *)
    List.map (fun l -> l.dir) libs
  else begin
    (* Pool-running: transitively depends on the pool. *)
    let running =
      let rec grow acc =
        let acc' =
          List.filter
            (fun l ->
              (not (List.mem l.name acc))
              && List.exists (fun d -> List.mem d acc) l.deps)
            libs
          |> List.map (fun l -> l.name)
          |> List.append acc
        in
        if List.length acc' = List.length acc then acc else grow acc'
      in
      grow [ pool_lib ]
    in
    (* Pool-reachable: dependency closure of the pool-running set. *)
    let reach = closure ~libs running in
    List.filter_map (fun l -> if Hashtbl.mem reach l.name then Some l.dir else None) libs
  end
