(* Which library directories can execute inside the Domain pool?

   The domain_safety rule only applies to code that parallel workers can
   reach. Rather than hard-coding a directory list, we read the dune files:
   a library is *pool-running* when it (transitively) depends on the
   [parallel] library — its code creates or runs pool tasks — and a library
   is *pool-reachable* when a pool-running library can call into it, i.e.
   it is in the transitive dependency closure of the pool-running set.
   Everything pool-reachable gets the domain_safety scan.

   dune files are read with a minimal s-expression parser (atoms, lists,
   [;] line comments, double-quoted strings) — enough for the [(name ...)]
   and [(libraries ...)] fields we consume. *)

type sexp = Atom of string | List of sexp list

exception Malformed of string

let parse_sexps (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | Some ';' ->
      while !pos < n && s.[!pos] <> '\n' do
        incr pos
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom_char = function
    | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' -> false
    | _ -> true
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Malformed "unexpected end of input")
    | Some '(' ->
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> incr pos
        | None -> raise (Malformed "unclosed (")
        | Some _ ->
          items := parse_one () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some '"' ->
      incr pos;
      let b = Buffer.create 16 in
      (* Dune quoted atoms use OCaml-style escapes. Decoding them as raw
         next-characters (the old behaviour) turned "a\nb" into "anb" and
         desynced \ddd / \xHH payloads — and a wrong [libraries] atom
         silently shrinks the pool-reachable scope downstream. Unknown
         escapes are kept verbatim rather than rejected: a surprising
         backslash should not throw away the whole dune file. *)
      let digit_val c = Char.code c - Char.code '0' in
      let hex_val c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> -1
      in
      let rec loop () =
        match peek () with
        | None -> raise (Malformed "unclosed string")
        | Some '"' -> incr pos
        | Some '\\' when !pos + 1 < n ->
          (match s.[!pos + 1] with
          | 'n' ->
            Buffer.add_char b '\n';
            pos := !pos + 2
          | 't' ->
            Buffer.add_char b '\t';
            pos := !pos + 2
          | 'r' ->
            Buffer.add_char b '\r';
            pos := !pos + 2
          | 'b' ->
            Buffer.add_char b '\b';
            pos := !pos + 2
          | ('\\' | '"' | '\'' | ' ') as c ->
            Buffer.add_char b c;
            pos := !pos + 2
          | '\n' ->
            (* backslash-newline continuation: swallow it and the
               continuation line's indentation *)
            pos := !pos + 2;
            while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
              incr pos
            done
          | '0' .. '9'
            when !pos + 3 < n
                 && (match (s.[!pos + 2], s.[!pos + 3]) with
                    | '0' .. '9', '0' .. '9' -> true
                    | _ -> false) ->
            let code =
              (100 * digit_val s.[!pos + 1])
              + (10 * digit_val s.[!pos + 2])
              + digit_val s.[!pos + 3]
            in
            if code > 255 then raise (Malformed "decimal escape out of range");
            Buffer.add_char b (Char.chr code);
            pos := !pos + 4
          | 'x'
            when !pos + 3 < n && hex_val s.[!pos + 2] >= 0 && hex_val s.[!pos + 3] >= 0 ->
            Buffer.add_char b (Char.chr ((16 * hex_val s.[!pos + 2]) + hex_val s.[!pos + 3]));
            pos := !pos + 4
          | c ->
            Buffer.add_char b '\\';
            Buffer.add_char b c;
            pos := !pos + 2);
          loop ()
        | Some c ->
          Buffer.add_char b c;
          incr pos;
          loop ()
      in
      loop ();
      Atom (Buffer.contents b)
    | Some ')' -> raise (Malformed "unexpected )")
    | Some _ ->
      let start = !pos in
      while !pos < n && atom_char s.[!pos] do
        incr pos
      done;
      Atom (String.sub s start (!pos - start))
  in
  let out = ref [] in
  let rec loop () =
    skip_ws ();
    if !pos < n then begin
      out := parse_one () :: !out;
      loop ()
    end
  in
  loop ();
  List.rev !out

type lib = { name : string; dir : string; deps : string list }

let field name = function
  | List (Atom f :: rest) when String.equal f name -> Some rest
  | _ -> None

let atoms l = List.filter_map (function Atom a -> Some a | List _ -> None) l

(* Extract every (library ...) stanza's name, dir and dune-visible deps.
   [None] means the dune file did not parse — the caller must treat the
   directory conservatively rather than silently dropping it. *)
let libs_of_dune ~dir content =
  match parse_sexps content with
  | exception Malformed _ -> None
  | sexps ->
    Some
      (List.filter_map
         (function
           | List (Atom "library" :: fields) ->
             let name =
               List.find_map (fun f -> Option.map atoms (field "name" f)) fields
               |> Option.map (function n :: _ -> n | [] -> "")
             in
             let deps =
               List.find_map (fun f -> Option.map atoms (field "libraries" f)) fields
               |> Option.value ~default:[]
             in
             Option.map (fun name -> { name; dir; deps }) name
           | _ -> None)
         sexps)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* All libraries found in immediate subdirectories of [root]/lib, plus the
   directories whose dune file failed to parse (their membership in the
   pool-reachable set cannot be decided, so callers must include them). *)
let scan_libs_ext ~root =
  let lib_root = Filename.concat root "lib" in
  if not (Sys.file_exists lib_root && Sys.is_directory lib_root) then ([], [])
  else begin
    let subdirs = Sys.readdir lib_root in
    Array.sort compare subdirs;
    Array.to_list subdirs
    |> List.fold_left
         (fun (libs, bad) sub ->
           let dir = Filename.concat lib_root sub in
           let dune = Filename.concat dir "dune" in
           let rel = Filename.concat "lib" sub in
           if Sys.file_exists dune && Sys.is_directory dir then
             match libs_of_dune ~dir:rel (read_file dune) with
             | Some ls -> (libs @ ls, bad)
             | None -> (libs, bad @ [ rel ])
           else (libs, bad))
         ([], [])
  end

let scan_libs ~root = fst (scan_libs_ext ~root)

let closure ~libs seeds =
  let by_name = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace by_name l.name l) libs;
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt by_name name with
      | Some l -> List.iter visit l.deps
      | None -> () (* external library: out of scope *)
    end
  in
  List.iter visit seeds;
  seen

let pool_reachable_dirs ?(pool_lib = "parallel") ~root () =
  let libs, unparsed = scan_libs_ext ~root in
  (* Directories with an unreadable dune file are always in scope: losing
     them here would silently shrink what domain_safety scans. *)
  let with_unparsed dirs = List.sort_uniq compare (dirs @ unparsed) in
  if not (List.exists (fun l -> String.equal l.name pool_lib) libs) then
    (* No pool in this tree (e.g. a fixture corpus): be conservative and
       treat every library as pool-reachable. *)
    with_unparsed (List.map (fun l -> l.dir) libs)
  else begin
    (* Pool-running: transitively depends on the pool. *)
    let running =
      let rec grow acc =
        let acc' =
          List.filter
            (fun l ->
              (not (List.mem l.name acc))
              && List.exists (fun d -> List.mem d acc) l.deps)
            libs
          |> List.map (fun l -> l.name)
          |> List.append acc
        in
        if List.length acc' = List.length acc then acc else grow acc'
      in
      grow [ pool_lib ]
    in
    (* Pool-reachable: dependency closure of the pool-running set. *)
    let reach = closure ~libs running in
    with_unparsed
      (List.filter_map (fun l -> if Hashtbl.mem reach l.name then Some l.dir else None) libs)
  end
