(** The checked domain-safety allowlist (lint/domain_safety.allow). *)

type entry = { e_file : string; e_ident : string; e_line : int; e_justification : string }

val load : string -> entry list * Finding.t list
(** Parse the allowlist; malformed lines (missing binding or justification)
    come back as [Suppression] findings. Raises [Sys_error] if the file
    cannot be read. *)

val matches : entry -> Finding.t -> bool
(** Does this entry suppress this (domain_safety) finding? *)

val stale_finding : path:string -> entry -> Finding.t
(** The [Suppression] finding reported for an entry no finding matched. *)
