(** Cross-module call graph and per-function effect summaries over [.cmt]
    typedtrees — the substrate of the typed rules in {!Typed_checks}.

    Functions are keyed by normalized [Path.t] names: dune's [Lib__Module]
    mangling and alias-module hops are folded to plain dotted paths, so
    [La__Mat.gemv], [La.Mat.gemv] and a same-library [Mat.gemv] all key as
    ["La.Mat.gemv"]. A value whose own name contains ["__"] would be
    mis-folded — none exist here, and the cost is a lost edge, not a crash. *)

type event_kind =
  | Call of string  (** normalized callee key (includes stdlib calls) *)
  | Write of string  (** unprotected write to module-level mutable state *)
  | Raise of string  (** exception constructor raised outside any [try] body *)
  | Fsync  (** direct [Unix.fsync] *)
  | Rename of string option  (** [Sys.rename]/[Unix.rename]; destination literal if known *)
  | Alloc of string  (** allocation inside a [for]/[while] loop body *)
  | Float_cmp of string  (** =/<>/==/!=/compare with a float-typed operand *)

type event = { ev_loc : Location.t; ev_kind : event_kind }

type fn = {
  fn_key : string;
  fn_file : string;
  fn_loc : Location.t;
  fn_hotpath : bool;  (** carries a [\[@@lint.hotpath\]] attribute *)
  fn_takes_lock : bool;
      (** calls [Mutex.lock] somewhere: manual lock discipline is trusted
          and the function's writes are not flagged *)
  fn_events : event list;  (** in source order *)
}

type root = {
  root_file : string;
  root_loc : Location.t;  (** the [Pool.*] call site *)
  root_pool_fn : string;  (** ["parallel_for"] / ["map_chunks"] / ["map_array"] *)
  root_encl : string;  (** key of the enclosing function, for messages *)
  root_calls : string list;  (** resolved callback entry keys *)
  root_unresolved : bool;
      (** a callback was a first-class value the analysis cannot resolve *)
}

type t = {
  fns : (string, fn) Hashtbl.t;
  roots : root list;
}

val normalize_name : string -> string
(** Fold dune module mangling: ["La__Mat.gemv"] → ["La.Mat.gemv"]. *)

val build : Cmt_loader.unit_info list -> t
