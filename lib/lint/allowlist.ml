(* The domain-safety allowlist (lint/domain_safety.allow).

   One entry per line:

     <file> <binding> <justification...>

   e.g.

     lib/sparse/spy.ml shades read-only ASCII ramp, never written after init

   Entries suppress Domain_safety findings for exactly that (file, binding)
   pair. The list is *checked*: an entry that matches no finding is stale
   and reported as a Suppression error, so the allowlist can only shrink as
   code is fixed — it cannot silently rot. *)

type entry = { e_file : string; e_ident : string; e_line : int; e_justification : string }

let parse_line ~path ~line_no line =
  let line = String.trim line in
  if String.equal line "" || line.[0] = '#' then Ok None
  else
    match String.index_opt line ' ' with
    | None ->
      Error
        (Finding.v ~file:path ~line:line_no ~col:0 Finding.Suppression
           "allowlist entry needs: <file> <binding> <justification>")
    | Some i -> (
      let e_file = String.sub line 0 i in
      let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      match String.index_opt rest ' ' with
      | None ->
        Error
          (Finding.v ~file:path ~line:line_no ~col:0 Finding.Suppression
             (Printf.sprintf "allowlist entry for %s lacks a justification" e_file))
      | Some j ->
        let e_ident = String.sub rest 0 j in
        let e_justification = String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) in
        if String.equal e_justification "" then
          Error
            (Finding.v ~file:path ~line:line_no ~col:0 Finding.Suppression
               (Printf.sprintf "allowlist entry for %s lacks a justification" e_file))
        else Ok (Some { e_file; e_ident; e_line = line_no; e_justification }))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] and malformed = ref [] in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           match parse_line ~path ~line_no:!line_no line with
           | Ok (Some e) -> entries := e :: !entries
           | Ok None -> ()
           | Error f -> malformed := f :: !malformed
         done
       with End_of_file -> ());
      (List.rev !entries, List.rev !malformed))

let matches entry (f : Finding.t) =
  f.Finding.rule = Finding.Domain_safety
  && String.equal entry.e_file f.Finding.file
  && match f.Finding.ident with Some id -> String.equal entry.e_ident id | None -> false

let stale_finding ~path entry =
  Finding.v ~file:path ~line:entry.e_line ~col:0 Finding.Suppression
    (Printf.sprintf "stale allowlist entry: no domain_safety finding matches %s %s" entry.e_file
       entry.e_ident)
