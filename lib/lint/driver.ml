(* The subcouple-lint driver: walk the tree, parse every .ml with the
   compiler's own parser, run the rule checks, then apply the two
   suppression mechanisms (inline attributes and the checked domain-safety
   allowlist). Reporting and the exit code live in bin/lint_main.ml; this
   module only produces data. *)

type report = { findings : Finding.t list; suppressed : int; files : int }

let empty = { findings = []; suppressed = 0; files = 0 }

let parse_impl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | structure -> Ok structure
      | exception Syntaxerr.Error _ ->
        let p = lexbuf.Lexing.lex_curr_p in
        Error (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol, "syntax error")
      | exception Lexer.Error (_, loc) ->
        let p = loc.Location.loc_start in
        Error (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol, "lexical error"))

(* Lint one file. [file] is the path used in findings (usually relative to
   the repo root); [path] is where to read it from. Domain-safety findings
   are returned unsuppressed unless an inline attribute covers them — the
   allowlist is applied across files by [lint_paths]. The file's parsed
   suppressions come back too so the typed pass can honour them. *)
let lint_one ~file ~path ~in_lib ~domain_safety ~check_mli () =
  match parse_impl path with
  | Error (line, col, msg) ->
    ([ Finding.v ~file ~line ~col Finding.Parse_error msg ], 0, None)
  | Ok structure ->
    let raw = Checks.check ~file ~in_lib ~domain_safety structure in
    let sup = Suppress.collect ~file structure in
    let mli_missing =
      if check_mli && not (Sys.file_exists (Filename.remove_extension path ^ ".mli")) then
        [
          Finding.v ~file ~line:1 ~col:0 Finding.Mli_coverage
            (Printf.sprintf "module %s has no .mli interface"
               (String.capitalize_ascii (Filename.remove_extension (Filename.basename path))));
        ]
      else []
    in
    let kept, suppressed =
      List.partition
        (fun f ->
          not
            (Suppress.covers sup f
            || (f.Finding.rule = Finding.No_unsafe && Suppress.in_hotpath sup f)))
        (raw @ mli_missing)
    in
    (kept @ sup.Suppress.malformed, List.length suppressed, Some sup)

let lint_file ?(in_lib = false) ?(domain_safety = false) ?(check_mli = false) path =
  let findings, suppressed, _sup =
    lint_one ~file:path ~path ~in_lib ~domain_safety ~check_mli ()
  in
  { findings = List.sort Finding.compare_by_location findings; suppressed; files = 1 }

(* Typed pass in isolation — used by fixture tests, and by [lint_paths]
   (which additionally applies the per-file inline suppressions). *)
let lint_typed ~cmt_root ~paths =
  let units, unreadable = Cmt_loader.load ~cmt_root ~paths in
  let findings = Typed_checks.run (Callgraph.build units) in
  {
    findings = List.sort Finding.compare_by_location (findings @ unreadable);
    suppressed = 0;
    files = List.length units;
  }

(* Deterministic recursive walk collecting .ml files; skips _build and
   dot-directories. *)
let rec walk acc path =
  if Sys.file_exists path && Sys.is_directory path then begin
    let base = Filename.basename path in
    if String.equal base "_build" || (String.length base > 0 && base.[0] = '.') then acc
    else begin
      let entries = Sys.readdir path in
      Array.sort compare entries;
      Array.fold_left (fun acc e -> walk acc (Filename.concat path e)) acc entries
    end
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let relativize ~root path =
  if String.equal root "." || String.equal root "" then path
  else
    let prefix = if Filename.check_suffix root "/" then root else root ^ "/" in
    if String.length path > String.length prefix
       && String.equal (String.sub path 0 (String.length prefix)) prefix
    then String.sub path (String.length prefix) (String.length path - String.length prefix)
    else path

let under dir file =
  let prefix = dir ^ "/" in
  String.length file > String.length prefix
  && String.equal (String.sub file 0 (String.length prefix)) prefix

let lint_paths ?allowlist ?typed ~root paths =
  let files =
    paths
    |> List.map (fun p -> if String.equal root "." then p else Filename.concat root p)
    |> List.fold_left walk []
    |> List.sort_uniq compare
  in
  let safety_dirs = Dune_deps.pool_reachable_dirs ~root () in
  let entries, allow_malformed =
    match allowlist with None -> ([], []) | Some path -> Allowlist.load path
  in
  let used = Hashtbl.create 8 in
  let suppressions = Hashtbl.create 64 in
  let acc =
    List.fold_left
      (fun acc path ->
        let file = relativize ~root path in
        let in_lib = under "lib" file in
        let domain_safety = List.exists (fun d -> under d file) safety_dirs in
        let findings, suppressed, sup =
          lint_one ~file ~path ~in_lib ~domain_safety ~check_mli:in_lib ()
        in
        (match sup with Some s -> Hashtbl.replace suppressions file s | None -> ());
        (* Apply the allowlist to what survived inline suppression. *)
        let findings, allowed =
          List.partition
            (fun f ->
              match List.find_opt (fun e -> Allowlist.matches e f) entries with
              | Some e ->
                Hashtbl.replace used e.Allowlist.e_line ();
                false
              | None -> true)
            findings
        in
        {
          findings = findings @ acc.findings;
          suppressed = acc.suppressed + suppressed + List.length allowed;
          files = acc.files + 1;
        })
      empty files
  in
  let stale =
    match allowlist with
    | None -> []
    | Some path ->
      List.filter_map
        (fun e ->
          if Hashtbl.mem used e.Allowlist.e_line then None
          else Some (Allowlist.stale_finding ~path e))
        entries
  in
  (* The typed pass: findings come back keyed by the compiler-recorded
     source path (repo-relative under dune), which is the same key the
     syntactic pass used — so the per-file inline [@lint.allow]s apply. *)
  let typed_findings, typed_suppressed =
    match typed with
    | None -> ([], 0)
    | Some cmt_root ->
      let r = lint_typed ~cmt_root ~paths in
      List.partition
        (fun f ->
          match Hashtbl.find_opt suppressions f.Finding.file with
          | Some sup -> not (Suppress.covers sup f)
          | None -> true)
        r.findings
      |> fun (kept, supd) -> (kept, List.length supd)
  in
  {
    acc with
    suppressed = acc.suppressed + typed_suppressed;
    findings =
      List.sort Finding.compare_by_location
        (acc.findings @ typed_findings @ allow_malformed @ stale);
  }
