(** Compute, from the dune files themselves, which lib/ directories hold
    code reachable from the Domain pool — the scope of the domain_safety
    rule. *)

type sexp = Atom of string | List of sexp list

exception Malformed of string

val parse_sexps : string -> sexp list
(** Minimal s-expression parser (atoms, lists, [;] comments, quoted
    strings with OCaml-style escapes — backslash n/t/r/b, escaped
    backslash and double-quote, decimal and hex character codes, and
    backslash-newline continuations decode as in dune; unknown escapes are
    kept verbatim). Raises {!Malformed} on unbalanced input. *)

type lib = { name : string; dir : string; deps : string list }

val scan_libs : root:string -> lib list
(** Every [(library ...)] stanza found in [root]/lib/*/dune, with [dir]
    relative to [root]. Directories whose dune file does not parse
    contribute no stanzas here — {!pool_reachable_dirs} still includes
    them. *)

val scan_libs_ext : root:string -> lib list * string list
(** Like {!scan_libs}, also returning the directories (relative to [root])
    whose dune file failed to parse. *)

val pool_reachable_dirs : ?pool_lib:string -> root:string -> unit -> string list
(** Directories (relative to [root], e.g. ["lib/la"]) whose library is in
    the dependency closure of any library that transitively depends on
    [pool_lib]. If no [pool_lib] library exists in the tree, every scanned
    library directory is returned (conservative default). Directories with
    an unparseable dune file are always included — an unreadable stanza
    must widen the domain_safety scope, never shrink it. *)
