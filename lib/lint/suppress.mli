(** Suppression scopes: [[@lint.allow <rule> "why"]] and [[@lint.hotpath "why"]]
    attributes, each covering the source lines of the item they annotate
    (a floating [[@@@lint.allow ...]] covers the whole file). *)

type scope = { s_rule : Finding.rule; s_first : int; s_last : int; s_justification : string }
type hotpath = { h_first : int; h_last : int }

type t = {
  scopes : scope list;
  hotpaths : hotpath list;
  malformed : Finding.t list;  (** suppressions without a justification, unknown rules, ... *)
}

val collect : file:string -> Parsetree.structure -> t

val covers : t -> Finding.t -> bool
(** Is the finding inside a matching [lint.allow] scope? *)

val in_hotpath : t -> Finding.t -> bool
(** Is the finding inside a [lint.hotpath] scope (no_unsafe only)? *)
