(* Suppression scopes.

   Findings are suppressed with attributes carrying a mandatory one-line
   justification:

     [@@@lint.allow mli_coverage "generated module, interface is the functor"]
     let cache = Hashtbl.create 8 [@@lint.allow domain_safety "guarded by cache_mutex"]
     (Array.unsafe_get a i [@lint.allow no_unsafe "i < n checked above"])
     let kernel a i = ... [@@lint.hotpath "bounds hoisted out of the loop"]

   A suppression covers every finding of its rule whose line falls inside
   the attributed item ([@@@...] covers the whole file). [@@lint.hotpath]
   is a dedicated scope for the no_unsafe rule: it marks a function as an
   audited hot path. A suppression without a justification string is itself
   reported as a [Suppression] finding — silence must be paid for in prose. *)

open Parsetree

type scope = { s_rule : Finding.rule; s_first : int; s_last : int; s_justification : string }
type hotpath = { h_first : int; h_last : int }
type t = { scopes : scope list; hotpaths : hotpath list; malformed : Finding.t list }

let attr_loc (attr : attribute) =
  let p = attr.attr_name.loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let payload_expr (attr : attribute) =
  match attr.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> Some e
  | _ -> None

let string_const (e : expression) =
  match e.pexp_desc with Pexp_constant (Pconst_string (s, _, _)) -> Some s | _ -> None

type parsed =
  | Allow of Finding.rule * string
  | Hotpath of string
  | Bad of string
  | Not_lint

(* Recognize [@lint.allow rule "why"] and [@lint.hotpath "why"]. *)
let parse_attr (attr : attribute) =
  match attr.attr_name.txt with
  | "lint.allow" -> (
    match payload_expr attr with
    | Some
        {
          pexp_desc =
            Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident rid; _ }; _ },
                [ (Asttypes.Nolabel, arg) ] );
          _;
        } -> (
      match (Finding.rule_of_id rid, string_const arg) with
      | Some rule, Some j when not (String.equal (String.trim j) "") -> Allow (rule, j)
      | None, _ -> Bad (Printf.sprintf "unknown rule %S in [@lint.allow]" rid)
      | Some _, _ -> Bad (Printf.sprintf "suppression of %s lacks a justification string" rid))
    | Some { pexp_desc = Pexp_ident { txt = Longident.Lident rid; _ }; _ } ->
      Bad (Printf.sprintf "suppression of %s lacks a justification string" rid)
    | _ -> Bad "malformed [@lint.allow] payload; expected: [@lint.allow <rule> \"why\"]")
  | "lint.hotpath" -> (
    match Option.bind (payload_expr attr) string_const with
    | Some j when not (String.equal (String.trim j) "") -> Hotpath j
    | _ -> Bad "[@lint.hotpath] needs a justification string: [@lint.hotpath \"why\"]")
  | _ -> Not_lint

(* Collect the scopes declared by [attrs] over source lines
   [first..last]. *)
let collect ~file structure =
  let scopes = ref [] and hotpaths = ref [] and malformed = ref [] in
  let record ~first ~last attrs =
    List.iter
      (fun attr ->
        match parse_attr attr with
        | Allow (rule, j) ->
          scopes := { s_rule = rule; s_first = first; s_last = last; s_justification = j } :: !scopes
        | Hotpath _ -> hotpaths := { h_first = first; h_last = last } :: !hotpaths
        | Bad message ->
          let line, col = attr_loc attr in
          malformed := Finding.v ~file ~line ~col Finding.Suppression message :: !malformed
        | Not_lint -> ())
      attrs
  in
  let span (loc : Location.t) =
    (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_end.Lexing.pos_lnum)
  in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      value_binding =
        (fun self vb ->
          let first, last = span vb.pvb_loc in
          record ~first ~last vb.pvb_attributes;
          default_iterator.value_binding self vb);
      expr =
        (fun self e ->
          let first, last = span e.pexp_loc in
          record ~first ~last e.pexp_attributes;
          default_iterator.expr self e);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_attribute attr -> record ~first:1 ~last:max_int [ attr ]
          | Pstr_eval (_, attrs) ->
            let first, last = span si.pstr_loc in
            record ~first ~last attrs
          | _ -> ());
          default_iterator.structure_item self si);
    }
  in
  iter.structure iter structure;
  { scopes = !scopes; hotpaths = !hotpaths; malformed = !malformed }

let covers t (f : Finding.t) =
  List.exists
    (fun s -> s.s_rule = f.Finding.rule && f.Finding.line >= s.s_first && f.Finding.line <= s.s_last)
    t.scopes

let in_hotpath t (f : Finding.t) =
  List.exists (fun h -> f.Finding.line >= h.h_first && f.Finding.line <= h.h_last) t.hotpaths
