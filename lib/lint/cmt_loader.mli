(** Loading [.cmt] typedtrees for the typed lint pass.

    dune already compiles every module with [-bin-annot]; the resulting
    [.cmt] files (under [.<lib>.objs/byte/] and [.<exe>.eobjs/byte/]) carry
    the full typedtree with inferred types and resolved [Path.t]s — exactly
    what the interprocedural rules need and the Parsetree cannot give. *)

type unit_info = {
  ci_source : string;
      (** source path as recorded by the compiler, repo-relative under dune
          (e.g. ["lib/la/bvec.ml"]) *)
  ci_modname : string;  (** compilation unit name, e.g. ["La__Bvec"] *)
  ci_structure : Typedtree.structure;
}

val read_file : string -> (unit_info option, string) result
(** Read one [.cmt]. [Ok None] for units that are not implementation
    typedtrees or have no [.ml] source (dune's generated alias modules);
    [Error msg] when the file cannot be read (foreign compiler version,
    truncation, ...). *)

val load : cmt_root:string -> paths:string list -> unit_info list * Finding.t list
(** Walk [cmt_root] for [*.cmt] files and keep the units whose recorded
    source file lies under one of [paths] (path prefixes relative to the
    repo root, e.g. [["lib"; "bin"]], or exact [.ml] paths). Units are
    deduplicated by source file and sorted by it; unreadable [.cmt]s come
    back as [Parse_error] findings. *)
