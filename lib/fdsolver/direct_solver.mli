(** Direct finite-difference substrate solver: one sparse Cholesky
    factorization under nested dissection, then two triangular
    substitutions per solve (thesis §2.2.2's direct alternative). *)

type t

val create :
  ?placement:Grid.placement -> Substrate.Profile.t -> Geometry.Layout.t -> nx:int -> nz:int -> t

val grid : t -> Grid.t

(** Nonzeros in the Cholesky factor (the fill the thesis bounds by
    O(n^{4/3} log n) for 3-D grids). *)
val factor_nnz : t -> int

val solve : t -> La.Vec.t -> La.Vec.t
val blackbox : t -> Substrate.Blackbox.t
