module Csr = Sparsemat.Csr
module Coo = Sparsemat.Coo

(* Geometric multigrid for the grid-of-resistors system (thesis §2.2.2,
   "Multigrid": "iteration counts could possibly be reduced somewhat, and
   each iteration would probably cost less than for PCG ... Dealing with
   layer boundaries properly in the coarse-grid representation would be the
   major issue").

   A V-cycle with cell-centered 2x2x2 coarsening. Coarse operators are
   Galerkin products with piecewise-constant prolongation — for a resistor
   network this is exactly node aggregation: the conductance between two
   coarse cells is the sum of the fine resistors crossing their interface
   (scaled by the 1/8 restriction weight), which carries the layered
   conductivities to every level without rediscretization — the thesis's
   "major issue" handled by construction. Smoothing is symmetric
   Gauss-Seidel (forward pre-sweep, backward post-sweep, so the V-cycle
   stays a symmetric preconditioner); the coarsest level is solved by dense
   Cholesky. *)

type dims = { nx : int; ny : int; nz : int }

type level = {
  dims : dims;
  op : Csr.t;  (* reduced operator: identity rows at fixed nodes *)
  diag : float array;
  fixed : bool array;
}

type t = {
  levels : level array;  (* levels.(0) = finest *)
  coarse_factor : La.Mat.t;
  nsmooth : int;
}

let node_of d ~ix ~iy ~iz = ix + (d.nx * (iy + (d.ny * iz)))
let node_count d = d.nx * d.ny * d.nz

(* Coarse-cell index of a fine node. *)
let parent_node fine coarse i =
  let ix = i mod fine.nx and iy = i / fine.nx mod fine.ny and iz = i / (fine.nx * fine.ny) in
  node_of coarse ~ix:(ix / 2) ~iy:(iy / 2) ~iz:(iz / 2)

let diag_of op fixed =
  let n = Csr.rows op in
  let d = Array.make n 1.0 in
  Csr.iter op (fun i j v -> if i = j then d.(i) <- v);
  Array.iteri (fun i f -> if f then d.(i) <- 1.0) fixed;
  (* Guard against singular rows (floating substrate, coarse levels). *)
  Array.mapi (fun i x -> if x <= 0.0 then 1.0 else x +. (1e-12 *. Float.abs x) +. (if fixed.(i) then 0.0 else 0.0)) d

(* Galerkin coarsening: A_c = (1/8) P' A P with piecewise-constant P, i.e.
   aggregate fine entries by coarse cell. Fixed coarse cells are those all
   of whose fine children are fixed (partially-fixed cells stay free; their
   fine fixed entries were already eliminated from the fine operator). *)
let coarsen (fine : level) =
  let cd = { nx = fine.dims.nx / 2; ny = fine.dims.ny / 2; nz = fine.dims.nz / 2 } in
  let nc = node_count cd in
  let all_fixed = Array.make nc true in
  Array.iteri
    (fun i f -> if not f then all_fixed.(parent_node fine.dims cd i) <- false)
    fine.fixed;
  let coo = Coo.create nc nc in
  Csr.iter fine.op (fun i j v ->
      if not (fine.fixed.(i) || fine.fixed.(j)) then begin
        let ii = parent_node fine.dims cd i and jj = parent_node fine.dims cd j in
        if not (all_fixed.(ii) || all_fixed.(jj)) then Coo.add coo ii jj (0.125 *. v)
      end);
  (* Identity rows for fully-fixed coarse cells and a tiny shift to keep
     the coarsest factorization defined on floating substrates. *)
  for i = 0 to nc - 1 do
    if all_fixed.(i) then Coo.add coo i i 1.0 else Coo.add coo i i 1e-12
  done;
  let op = Csr.of_coo coo in
  { dims = cd; op; diag = diag_of op all_fixed; fixed = all_fixed }

let create ?(placement = Grid.Inside) ?(max_levels = 10) ?(nsmooth = 2) profile layout ~nx ~nz =
  let grid = Grid.create ~placement profile layout ~nx ~nz in
  let fixed =
    if placement = Grid.Inside then Array.copy grid.Grid.is_contact_node
    else Array.make (Grid.node_count grid) false
  in
  let op = Grid.to_csr ~reduce:(fun i -> fixed.(i)) grid in
  let finest = { dims = { nx; ny = nx; nz }; op; diag = diag_of op fixed; fixed } in
  let rec build acc l =
    let d = l.dims in
    if List.length acc + 1 >= max_levels || d.nx < 8 || d.nz < 2 || d.nx mod 2 = 1 || d.nz mod 2 = 1
    then List.rev (l :: acc)
    else build (l :: acc) (coarsen l)
  in
  let levels = Array.of_list (build [] finest) in
  let last = levels.(Array.length levels - 1) in
  let dense = Csr.to_dense last.op in
  let n = La.Mat.rows dense in
  for i = 0 to n - 1 do
    La.Mat.update dense i i (fun x -> x +. (1e-10 *. (Float.abs x +. 1.0)))
  done;
  { levels; coarse_factor = La.Cholesky.factor dense; nsmooth }

let n_levels t = Array.length t.levels

let zero_fixed (fixed : bool array) (v : float array) =
  Array.iteri (fun i f -> if f then v.(i) <- 0.0) fixed;
  v

let apply_level (l : level) (v : float array) = zero_fixed l.fixed (Csr.gemv l.op v)

(* Gauss-Seidel sweep over the CSR rows in ascending (or descending) order;
   pre- and post-smoothing run in opposite directions so the V-cycle stays
   symmetric. *)
let gauss_seidel (l : level) ~b ~reverse (x : float array) =
  let n = Array.length x in
  let update i =
    if not l.fixed.(i) then begin
      (* x_i <- (b_i - sum_{j<>i} a_ij x_j) / a_ii, using current values. *)
      let acc = ref b.(i) in
      Csr.iter_row l.op i (fun j v -> if j <> i then acc := !acc -. (v *. x.(j)));
      x.(i) <- !acc /. l.diag.(i)
    end
  in
  if reverse then
    for i = n - 1 downto 0 do
      update i
    done
  else
    for i = 0 to n - 1 do
      update i
    done

let smooth t l ~b ~reverse x =
  for _ = 1 to t.nsmooth do
    gauss_seidel l ~b ~reverse x
  done

(* Cell-centered restriction (8-point average) and its piecewise-constant
   transpose. *)
let restrict (fine : level) (coarse : level) (v : float array) =
  let out = Array.make (node_count coarse.dims) 0.0 in
  for i = 0 to node_count fine.dims - 1 do
    let c = parent_node fine.dims coarse.dims i in
    out.(c) <- out.(c) +. (0.125 *. v.(i))
  done;
  out

let prolong (fine : level) (coarse : level) (v : float array) =
  Array.init (node_count fine.dims) (fun i -> v.(parent_node fine.dims coarse.dims i))

let rec v_cycle_at t lev ~b =
  let l = t.levels.(lev) in
  if lev = Array.length t.levels - 1 then
    zero_fixed l.fixed (La.Cholesky.solve_factored t.coarse_factor (Array.copy b |> zero_fixed l.fixed))
  else begin
    let x = Array.make (Array.length b) 0.0 in
    smooth t l ~b ~reverse:false x;
    let residual = La.Vec.sub b (apply_level l x) in
    let coarse = t.levels.(lev + 1) in
    let rc = zero_fixed coarse.fixed (restrict l coarse residual) in
    let ec = v_cycle_at t (lev + 1) ~b:rc in
    let correction = zero_fixed l.fixed (prolong l coarse ec) in
    La.Vec.add_inplace x correction;
    smooth t l ~b ~reverse:true x;
    x
  end

let v_cycle t (b : float array) = v_cycle_at t 0 ~b:(Array.copy b |> zero_fixed t.levels.(0).fixed)
