(* Fill-reducing orderings for the 3-D grid system.

   Geometric nested dissection: recursively split the box along its longest
   axis into two halves and a one-plane separator, ordering the halves first
   and the separator last. On a d-dimensional grid this realizes the
   classical O(n^{4/3} log n) fill bound the thesis quotes for the sparse
   Cholesky alternative (§2.2.2). *)

(* Permutation (elimination position -> node index) for an
   nx x ny x nz grid with node index ix + nx (iy + ny iz). *)
let nested_dissection ~nx ~ny ~nz =
  let out = Array.make (nx * ny * nz) 0 in
  let pos = ref 0 in
  let emit i =
    out.(!pos) <- i;
    incr pos
  in
  let index ~ix ~iy ~iz = ix + (nx * (iy + (ny * iz))) in
  (* Order the sub-box [x0, x1] x [y0, y1] x [z0, z1] (inclusive). *)
  let rec order x0 x1 y0 y1 z0 z1 =
    let dx = x1 - x0 + 1 and dy = y1 - y0 + 1 and dz = z1 - z0 + 1 in
    if dx <= 2 && dy <= 2 && dz <= 2 then
      for iz = z0 to z1 do
        for iy = y0 to y1 do
          for ix = x0 to x1 do
            emit (index ~ix ~iy ~iz)
          done
        done
      done
    else if dx >= dy && dx >= dz then begin
      let m = (x0 + x1) / 2 in
      order x0 (m - 1) y0 y1 z0 z1;
      order (m + 1) x1 y0 y1 z0 z1;
      for iz = z0 to z1 do
        for iy = y0 to y1 do
          emit (index ~ix:m ~iy ~iz)
        done
      done
    end
    else if dy >= dz then begin
      let m = (y0 + y1) / 2 in
      order x0 x1 y0 (m - 1) z0 z1;
      order x0 x1 (m + 1) y1 z0 z1;
      for iz = z0 to z1 do
        for ix = x0 to x1 do
          emit (index ~ix ~iy:m ~iz)
        done
      done
    end
    else begin
      let m = (z0 + z1) / 2 in
      order x0 x1 y0 y1 z0 (m - 1);
      order x0 x1 y0 y1 (m + 1) z1;
      for iy = y0 to y1 do
        for ix = x0 to x1 do
          emit (index ~ix ~iy ~iz:m)
        done
      done
    end
  in
  order 0 (nx - 1) 0 (ny - 1) 0 (nz - 1);
  assert (!pos = nx * ny * nz);
  out
