(** Grid-of-resistors finite-difference discretization of the substrate
    (thesis §2.2.1). *)

(** Placement of the contact Dirichlet nodes (thesis Fig 2-4): [Outside]
    hangs eliminated nodes above the surface; [Inside] fixes the top-plane
    nodes under each contact (the thesis's reported choice). *)
type placement = Outside | Inside

type t = {
  nx : int;
  ny : int;
  nz : int;
  h : float;
  placement : placement;
  sigma_plane : float array;
  gz : float array;
  g_backplane : float;
  g_contact : float;
  contact_nodes : int array array;
  is_contact_node : bool array;
  node_contact : int array;
}

(** [create profile layout ~nx ~nz] discretizes a square-surface substrate
    into an nx * nx * nz cell-centered grid. [nz * (a / nx)] must equal the
    substrate depth. Raises if a contact covers no grid node unless
    [allow_empty_contacts] (used by multigrid coarse levels, where small
    contacts may fall between nodes). *)
val create :
  ?placement:placement ->
  ?allow_empty_contacts:bool ->
  Substrate.Profile.t ->
  Geometry.Layout.t ->
  nx:int ->
  nz:int ->
  t

val node_count : t -> int
val index : t -> ix:int -> iy:int -> iz:int -> int

(** Apply the grid operator: node voltages to node net currents. *)
val apply : t -> float array -> float array

(** [apply_into t ~src ~dst] is {!apply} into a caller-supplied buffer —
    allocation-free and bit-identical to {!apply}; the CG driver reuses
    one output buffer per solve. [dst] must not alias [src].
    @raise Invalid_argument on a length mismatch or aliased buffers. *)
val apply_into : t -> src:float array -> dst:float array -> unit

(** Visit the resistors incident to a node; returns the extra diagonal
    conductance from eliminated attachments (backplane, Outside-placement
    contact resistors). *)
val fold_neighbors : t -> ix:int -> iy:int -> iz:int -> (neighbor:int -> g:float -> unit) -> float

(** Assemble as CSR; rows for which [reduce] holds become identity rows and
    couplings into them are dropped (Dirichlet elimination). *)
val to_csr : ?reduce:(int -> bool) -> t -> Sparsemat.Csr.t
