module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
module Contact = Geometry.Contact

(* Finite-difference substrate solver (thesis §2.2).

   Given contact voltages, the grid Laplacian system is solved with
   preconditioned conjugate gradients and the contact currents are recovered
   from Ohm's law at the contact nodes. The preconditioner choices reproduce
   the study of Table 2.1: incomplete Cholesky (ICCG), and the fast Poisson
   solver with a uniform top boundary coupling scaled by a Dirichlet
   fraction p — p = 1 pure-Dirichlet, p = 0 pure-Neumann, and p = contact
   area fraction for the area-weighted preconditioner that works best. *)

type preconditioner =
  | No_preconditioner
  | Ic0
  | Fast_poisson of float  (* Dirichlet fraction p in [0, 1] *)
  | Multigrid  (* one V-cycle per application (§2.2.2's suggested direction) *)

type t = {
  grid : Grid.t;
  precond : (float array -> float array) option;
  tol : float;
  max_iter : int;
  stats : La.Krylov.stats;
  health : Substrate.Health.t;
  n_contacts : int;
}

(* Fraction of the top surface covered by contacts — the area-weighted
   Dirichlet fraction of thesis §2.2.2. *)
let area_fraction (layout : Layout.t) =
  let total = Array.fold_left (fun acc c -> acc +. Contact.area c) 0.0 layout.Layout.contacts in
  total /. (layout.Layout.size *. layout.Layout.size)

let zero_fixed grid (v : float array) =
  (* In the Inside placement the contact nodes are not unknowns; reduced-
     system vectors carry zeros there. *)
  if grid.Grid.placement = Grid.Inside then
    Array.iter (Array.iter (fun k -> v.(k) <- 0.0)) grid.Grid.contact_nodes;
  v

let build_preconditioner ~profile ~layout ~nx ~nz grid = function
  | Multigrid ->
    let mg = Multigrid.create ~placement:grid.Grid.placement profile layout ~nx ~nz in
    Some (fun r -> zero_fixed grid (Multigrid.v_cycle mg r))
  | No_preconditioner -> None
  | Ic0 ->
    let reduce =
      if grid.Grid.placement = Grid.Inside then fun i -> grid.Grid.is_contact_node.(i) else fun _ -> false
    in
    let factor = Sparsemat.Ic0.factor (Grid.to_csr ~reduce grid) in
    Some (fun r -> zero_fixed grid (Sparsemat.Ic0.apply factor r))
  | Fast_poisson p ->
    let fast =
      Transforms.Poisson.create ~gz:grid.Grid.gz ~nx:grid.Grid.nx ~ny:grid.Grid.ny ~nz:grid.Grid.nz
        ~h:grid.Grid.h ~sigma:grid.Grid.sigma_plane ~top_fraction:p
        ~bottom_contact:(grid.Grid.g_backplane > 0.0) ()
    in
    Some (fun r -> zero_fixed grid (Transforms.Poisson.solve fast r))

let create ?placement ?(precond = Fast_poisson 1.0) ?(tol = 1e-9) ?(max_iter = 5000) profile layout ~nx ~nz =
  let grid = Grid.create ?placement profile layout ~nx ~nz in
  {
    grid;
    precond = build_preconditioner ~profile ~layout ~nx ~nz grid precond;
    tol;
    max_iter;
    stats = La.Krylov.make_stats ();
    health = Substrate.Health.create ();
    n_contacts = Array.length layout.Layout.contacts;
  }

(* Escalation handle: same grid and preconditioner, tighter CG settings,
   private stats/health — cheap, nothing is re-discretized or refactored.
   Preconditioner *changes* need a fresh [create] (or [Direct_solver]). *)
let with_tolerance ?tol ?max_iter t =
  {
    t with
    tol = Option.value tol ~default:t.tol;
    max_iter = Option.value max_iter ~default:t.max_iter;
    stats = La.Krylov.make_stats ();
    health = Substrate.Health.create ();
  }

let grid t = t.grid
let stats t = t.stats

(* Run one PCG solve with distinct logging for breakdown vs plain
   non-convergence, and publish the per-solve quality report. *)
let run_cg t ~apply b =
  let t0 = Substrate.Health.now () in
  let result = La.Krylov.cg ?precond:t.precond ~apply ~tol:t.tol ~max_iter:t.max_iter ~stats:t.stats b in
  let wall = Substrate.Health.now () -. t0 in
  if result.La.Krylov.breakdown then
    Logs.warn (fun m ->
        m "fd solve: CG breakdown on a non-positive-definite direction (true residual %.2e after %d iterations%s%s)"
          result.La.Krylov.residual_norm result.La.Krylov.iterations
          (if result.La.Krylov.converged then ", accepted at relaxed threshold" else "")
          (if result.La.Krylov.residual_mismatch then ", recurrence residual off by >10x" else ""))
  else if not result.La.Krylov.converged then
    Logs.warn (fun m ->
        m "fd solve: CG not converged (true residual %.2e after %d iterations%s)"
          result.La.Krylov.residual_norm result.La.Krylov.iterations
          (if result.La.Krylov.residual_mismatch then ", recurrence residual off by >10x" else ""));
  Blackbox.report_solve t.health
    {
      Substrate.Health.converged = result.La.Krylov.converged;
      breakdown = result.La.Krylov.breakdown;
      residual = result.La.Krylov.residual_norm;
      iterations = result.La.Krylov.iterations;
      wall_s = wall;
      finite = true;  (* the box wrapper completes the NaN/Inf scan *)
    };
  result

(* Net current out of a grid node given the full voltage field. *)
let node_current grid (v : float array) i =
  let nx = grid.Grid.nx and ny = grid.Grid.ny in
  let ix = i mod nx and iy = i / nx mod ny and iz = i / (nx * ny) in
  let acc = ref 0.0 in
  let extra =
    Grid.fold_neighbors grid ~ix ~iy ~iz (fun ~neighbor ~g -> acc := !acc +. (g *. (v.(i) -. v.(neighbor))))
  in
  !acc +. (extra *. v.(i))

let solve_inside t (u : La.Vec.t) : La.Vec.t =
  let grid = t.grid in
  let n = Grid.node_count grid in
  (* Extension of the contact voltages by zero. *)
  let v_fix = Array.make n 0.0 in
  Array.iteri (fun c nodes -> Array.iter (fun k -> v_fix.(k) <- u.(c)) nodes) grid.Grid.contact_nodes;
  (* Reduced system A_ff x = -A v_fix. *)
  let b = zero_fixed grid (Array.map (fun x -> -.x) (Grid.apply grid v_fix)) in
  (* One output buffer for the whole solve: CG consumes each apply result
     before the next call (the Krylov contract), so the closure may hand
     back the same array every iteration. *)
  let buf = Array.make n 0.0 in
  let apply v =
    Grid.apply_into grid ~src:v ~dst:buf;
    zero_fixed grid buf
  in
  let result = run_cg t ~apply b in
  let v = La.Vec.add v_fix result.La.Krylov.x in
  Array.map
    (fun nodes -> Array.fold_left (fun acc k -> acc +. node_current grid v k) 0.0 nodes)
    grid.Grid.contact_nodes

let solve_outside t (u : La.Vec.t) : La.Vec.t =
  let grid = t.grid in
  let n = Grid.node_count grid in
  (* The eliminated Dirichlet nodes above the contacts feed g_c * u into
     their top-plane neighbors. *)
  let b = Array.make n 0.0 in
  Array.iteri
    (fun c nodes -> Array.iter (fun k -> b.(k) <- grid.Grid.g_contact *. u.(c)) nodes)
    grid.Grid.contact_nodes;
  (* Same per-solve buffer reuse as [solve_inside]. *)
  let buf = Array.make n 0.0 in
  let apply v =
    Grid.apply_into grid ~src:v ~dst:buf;
    buf
  in
  let result = run_cg t ~apply b in
  let v = result.La.Krylov.x in
  (* Current through each contact's Dirichlet resistors. *)
  Array.mapi
    (fun c nodes ->
      Array.fold_left (fun acc k -> acc +. (grid.Grid.g_contact *. (u.(c) -. v.(k)))) 0.0 nodes)
    grid.Grid.contact_nodes

let solve t (u : La.Vec.t) : La.Vec.t =
  if Array.length u <> t.n_contacts then invalid_arg "Fd_solver.solve: contact count mismatch";
  match t.grid.Grid.placement with
  | Grid.Inside -> solve_inside t u
  | Grid.Outside -> solve_outside t u

let blackbox t = Blackbox.make ~health:t.health ~n:t.n_contacts (solve t)
