(** Fill-reducing orderings for the grid system. *)

(** Geometric nested dissection of an nx x ny x nz grid: a permutation from
    elimination position to node index (halves first, separators last). *)
val nested_dissection : nx:int -> ny:int -> nz:int -> int array
