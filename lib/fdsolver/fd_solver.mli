(** Finite-difference substrate solver with the preconditioner choices of
    thesis §2.2.2 (Table 2.1). *)

type preconditioner =
  | No_preconditioner
  | Ic0  (** incomplete Cholesky, zero fill-in *)
  | Fast_poisson of float
      (** fast Poisson solver with the given top-face Dirichlet fraction:
          1.0 pure-Dirichlet, 0.0 pure-Neumann, contact area fraction for
          the area-weighted preconditioner *)
  | Multigrid  (** one geometric V-cycle per application (thesis §2.2.2) *)

type t

(** Fraction of the top surface covered by contacts. *)
val area_fraction : Geometry.Layout.t -> float

(** [create profile layout ~nx ~nz] builds the grid (spacing a/nx; nz planes
    must span the substrate depth) and the chosen preconditioner. *)
val create :
  ?placement:Grid.placement ->
  ?precond:preconditioner ->
  ?tol:float ->
  ?max_iter:int ->
  Substrate.Profile.t ->
  Geometry.Layout.t ->
  nx:int ->
  nz:int ->
  t

val grid : t -> Grid.t

(** [with_tolerance ?tol ?max_iter t] is [t] with tighter (or looser) CG
    settings, sharing the grid and preconditioner but with private
    iteration stats and health — the cheap escalation step for a
    {!Substrate.Resilient} fallback ladder. Preconditioner changes need a
    fresh {!create} (or {!Direct_solver}). *)
val with_tolerance : ?tol:float -> ?max_iter:int -> t -> t

(** PCG iteration statistics across all solves (Table 2.1 reports the
    average per solve). *)
val stats : t -> La.Krylov.stats

(** One black-box solve: contact voltages to contact currents. *)
val solve : t -> La.Vec.t -> La.Vec.t

(** Wrap as a counted black box. The box's health record carries one
    report per solve (convergence, residual, iterations, CG breakdowns,
    wall time). *)
val blackbox : t -> Substrate.Blackbox.t
