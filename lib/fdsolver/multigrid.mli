(** Geometric multigrid V-cycle for the grid-of-resistors system
    (thesis §2.2.2's suggested direction), used as a CG preconditioner.
    Coarse operators are Galerkin node aggregations of the fine resistor
    network, so the layered conductivities are carried to every level — the
    coarse-grid "major issue" the thesis flags, handled by construction. *)

type t

(** [create profile layout ~nx ~nz] builds the aggregation hierarchy
    (halving until the grid is small or odd) and factors the coarsest level
    directly. *)
val create :
  ?placement:Grid.placement ->
  ?max_levels:int ->
  ?nsmooth:int ->
  Substrate.Profile.t ->
  Geometry.Layout.t ->
  nx:int ->
  nz:int ->
  t

val n_levels : t -> int

(** One V-cycle: approximately solve the reduced fine-level system. *)
val v_cycle : t -> float array -> float array
