module Profile = Substrate.Profile
module Layout = Geometry.Layout
module Contact = Geometry.Contact

(* The grid-of-resistors finite-difference discretization of the substrate
   (thesis §2.2.1, Fig 2-1).

   Nodes are cell-centered on an nx x ny x nz grid with spacing h; plane 0
   sits h/2 below the top surface. In-plane resistors in plane k have
   conductance sigma_bar(k) * h where sigma_bar averages the conductivity
   over the cell's depth extent; vertical resistors integrate resistivity
   between node planes, which reduces to the series-resistor formula (2.8)
   when a single layer boundary lies between the planes. Sidewalls are
   Neumann (resistors simply omitted); a grounded backplane adds half-length
   resistors below the bottom plane.

   Two placements of the contact Dirichlet nodes are supported (Fig 2-4):
   [Outside] hangs an eliminated Dirichlet node a full spacing above each
   top-plane contact node (the variables keep a regular 3-D grid);
   [Inside] fixes the top-plane nodes under each contact — the placement the
   thesis uses for its reported results. *)

type placement = Outside | Inside

type t = {
  nx : int;
  ny : int;
  nz : int;
  h : float;
  placement : placement;
  sigma_plane : float array;  (* depth-averaged conductivity per plane *)
  gz : float array;  (* vertical conductances between planes, length nz - 1 *)
  g_backplane : float;  (* per-node conductance to a grounded backplane, 0 if none *)
  g_contact : float;  (* Outside placement: conductance to the Dirichlet node above *)
  contact_nodes : int array array;  (* per contact, flat top-plane node indices *)
  is_contact_node : bool array;  (* flat node index -> under/on a contact *)
  node_contact : int array;  (* top-plane nodes: owning contact or -1 *)
}

let node_count t = t.nx * t.ny * t.nz
let index t ~ix ~iy ~iz = ix + (t.nx * (iy + (t.ny * iz)))

let create ?(placement = Inside) ?(allow_empty_contacts = false) (profile : Profile.t) (layout : Layout.t)
    ~nx ~nz =
  if not (Float.equal profile.Profile.a profile.Profile.b) then invalid_arg "Grid.create: square surface required";
  if not (Float.equal profile.Profile.a layout.Layout.size) then
    invalid_arg "Grid.create: layout and profile surface extents differ";
  let h = profile.Profile.a /. float_of_int nx in
  let ny = nx in
  let depth = Profile.depth profile in
  if Float.abs ((float_of_int nz *. h) -. depth) > 1e-9 *. depth then
    invalid_arg
      (Printf.sprintf "Grid.create: nz * h = %g does not match substrate depth %g" (float_of_int nz *. h) depth);
  (* Depth-averaged in-plane conductivity per plane. *)
  let sigma_plane =
    Array.init nz (fun k ->
        let z0 = float_of_int k *. h and z1 = float_of_int (k + 1) *. h in
        (* harmonic of nothing: plain average of sigma over the cell depth *)
        let steps = 16 in
        let acc = ref 0.0 in
        for s = 0 to steps - 1 do
          acc := !acc +. Profile.conductivity_at profile ~z:(z0 +. ((float_of_int s +. 0.5) /. float_of_int steps *. (z1 -. z0)))
        done;
        !acc /. float_of_int steps)
  in
  (* Vertical conductances by integrating resistivity node-to-node. *)
  let gz =
    Array.init (nz - 1) (fun k ->
        let z0 = (float_of_int k +. 0.5) *. h and z1 = (float_of_int k +. 1.5) *. h in
        h *. h /. Profile.integrated_resistivity profile ~z0 ~z1)
  in
  let g_backplane =
    match profile.Profile.backplane with
    | Profile.Floating -> 0.0
    | Profile.Grounded ->
      let z0 = (float_of_int nz -. 0.5) *. h in
      h *. h /. Profile.integrated_resistivity profile ~z0 ~z1:depth
  in
  let g_contact = sigma_plane.(0) *. h in
  (* Top-plane nodes under each contact. *)
  let node_contact = Array.make (nx * ny) (-1) in
  let contact_nodes =
    Array.mapi
      (fun id c ->
        let mine = ref [] in
        for iy = 0 to ny - 1 do
          for ix = 0 to nx - 1 do
            let x = (float_of_int ix +. 0.5) *. h and y = (float_of_int iy +. 0.5) *. h in
            if Contact.contains c ~x ~y then begin
              let k = ix + (nx * iy) in
              if node_contact.(k) >= 0 then
                invalid_arg
                  (Printf.sprintf "Grid.create: node %d claimed by contacts %d and %d" k node_contact.(k) id);
              node_contact.(k) <- id;
              mine := k :: !mine
            end
          done
        done;
        if !mine = [] && not allow_empty_contacts then
          invalid_arg (Printf.sprintf "Grid.create: contact %d too small for the grid (h = %g)" id h);
        Array.of_list (List.rev !mine))
      layout.Layout.contacts
  in
  let is_contact_node = Array.make (nx * ny * nz) false in
  Array.iter (Array.iter (fun k -> is_contact_node.(k) <- true)) contact_nodes;
  { nx; ny; nz; h; placement; sigma_plane; gz; g_backplane; g_contact; contact_nodes; is_contact_node; node_contact }

(* Iterate the resistors incident to node (ix, iy, iz): calls
   [f ~neighbor ~g] for every grid resistor, and returns the extra diagonal
   conductance from eliminated boundary attachments (backplane, and the
   Outside-placement contact resistor). *)
let fold_neighbors t ~ix ~iy ~iz f =
  let g_plane = t.sigma_plane.(iz) *. t.h in
  if ix > 0 then f ~neighbor:(index t ~ix:(ix - 1) ~iy ~iz) ~g:g_plane;
  if ix < t.nx - 1 then f ~neighbor:(index t ~ix:(ix + 1) ~iy ~iz) ~g:g_plane;
  if iy > 0 then f ~neighbor:(index t ~ix ~iy:(iy - 1) ~iz) ~g:g_plane;
  if iy < t.ny - 1 then f ~neighbor:(index t ~ix ~iy:(iy + 1) ~iz) ~g:g_plane;
  if iz > 0 then f ~neighbor:(index t ~ix ~iy ~iz:(iz - 1)) ~g:t.gz.(iz - 1);
  if iz < t.nz - 1 then f ~neighbor:(index t ~ix ~iy ~iz:(iz + 1)) ~g:t.gz.(iz);
  let extra = if iz = t.nz - 1 then t.g_backplane else 0.0 in
  let extra =
    if iz = 0 && t.placement = Outside && t.is_contact_node.(index t ~ix ~iy ~iz:0) then
      extra +. t.g_contact
    else extra
  in
  extra

(* Apply the full grid operator A (node voltages -> node net currents)
   into a caller-supplied buffer, allocation-free. This is the flattened
   hot-loop version of the [fold_neighbors] traversal: the neighbor visit
   order (ix-1, ix+1, iy-1, iy+1, iz-1, iz+1, then the extra diagonal) and
   every accumulation are identical to the closure-based loop, so results
   are bit-identical; the per-plane conductances are hoisted and the
   stencil reads use precomputed strides. [dst] must not alias [src]
   (every read of [src] would otherwise see partially written output). *)
let apply_into t ~(src : float array) ~(dst : float array) =
  let n = node_count t in
  if Array.length src <> n then invalid_arg "Grid.apply_into: dimension mismatch";
  if Array.length dst <> n then invalid_arg "Grid.apply_into: dimension mismatch";
  if src == dst then invalid_arg "Grid.apply_into: src and dst must be distinct";
  let nx = t.nx and ny = t.ny and nz = t.nz in
  let nxy = nx * ny in
  for iz = 0 to nz - 1 do
    let g_plane = Array.unsafe_get t.sigma_plane iz *. t.h in
    let g_dn = if iz > 0 then Array.unsafe_get t.gz (iz - 1) else 0.0 in
    let g_up = if iz < nz - 1 then Array.unsafe_get t.gz iz else 0.0 in
    let base_extra = if iz = nz - 1 then t.g_backplane else 0.0 in
    let outside_contacts = iz = 0 && t.placement = Outside in
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let i = ix + (nx * (iy + (ny * iz))) in
        let vi = Array.unsafe_get src i in
        let acc = ref 0.0 in
        if ix > 0 then acc := !acc +. (g_plane *. (vi -. Array.unsafe_get src (i - 1)));
        if ix < nx - 1 then acc := !acc +. (g_plane *. (vi -. Array.unsafe_get src (i + 1)));
        if iy > 0 then acc := !acc +. (g_plane *. (vi -. Array.unsafe_get src (i - nx)));
        if iy < ny - 1 then acc := !acc +. (g_plane *. (vi -. Array.unsafe_get src (i + nx)));
        if iz > 0 then acc := !acc +. (g_dn *. (vi -. Array.unsafe_get src (i - nxy)));
        if iz < nz - 1 then acc := !acc +. (g_up *. (vi -. Array.unsafe_get src (i + nxy)));
        let extra =
          if outside_contacts && Array.unsafe_get t.is_contact_node i then
            base_extra +. t.g_contact
          else base_extra
        in
        Array.unsafe_set dst i (!acc +. (extra *. vi))
      done
    done
  done
[@@lint.hotpath
  "lengths checked on entry; i and every guarded stencil offset stay inside [0, nx*ny*nz) by the \
   boundary tests"]

(* Allocating wrapper over [apply_into]. *)
let apply t (v : float array) : float array =
  let out = Array.make (node_count t) 0.0 in
  apply_into t ~src:v ~dst:out;
  out

(* Assemble the operator as a CSR matrix (for the IC(0) preconditioner and
   for dense validation on small grids). Fixed rows are replaced by identity
   when [reduce] marks them. *)
let to_csr ?(reduce = fun _ -> false) t =
  let n = node_count t in
  let coo = Sparsemat.Coo.create n n in
  for iz = 0 to t.nz - 1 do
    for iy = 0 to t.ny - 1 do
      for ix = 0 to t.nx - 1 do
        let i = index t ~ix ~iy ~iz in
        if reduce i then Sparsemat.Coo.add coo i i 1.0
        else begin
          let diag = ref 0.0 in
          let extra =
            fold_neighbors t ~ix ~iy ~iz (fun ~neighbor ~g ->
                diag := !diag +. g;
                if not (reduce neighbor) then Sparsemat.Coo.add coo i neighbor (-.g))
          in
          Sparsemat.Coo.add coo i i (!diag +. extra)
        end
      done
    done
  done;
  Sparsemat.Csr.of_coo coo
