module Blackbox = Substrate.Blackbox

(* Direct finite-difference substrate solver: sparse Cholesky under nested
   dissection (the §2.2.2 alternative to PCG).

   The factorization is computed once; each black-box solve is then two
   sparse triangular substitutions. Since extraction (naive or sparsified)
   performs many solves on the same grid, the one-time factorization cost
   amortizes — the trade the thesis weighs against the fast-solver
   preconditioned iterations, bounded by the O(n^{4/3} log n) fill of the
   3-D grid. Practical for small and medium grids; the PCG solver
   (Fd_solver) remains the choice for large ones. *)

type t = {
  grid : Grid.t;
  factor : Sparsemat.Sparse_chol.t;
  n_contacts : int;
}

let create ?placement profile layout ~nx ~nz =
  let grid = Grid.create ?placement profile layout ~nx ~nz in
  let reduce =
    if grid.Grid.placement = Grid.Inside then fun i -> grid.Grid.is_contact_node.(i)
    else fun _ -> false
  in
  let a = Grid.to_csr ~reduce grid in
  let perm = Ordering.nested_dissection ~nx:grid.Grid.nx ~ny:grid.Grid.ny ~nz:grid.Grid.nz in
  let factor = Sparsemat.Sparse_chol.factor ~perm a in
  { grid; factor; n_contacts = Array.length grid.Grid.contact_nodes }

let grid t = t.grid
let factor_nnz t = Sparsemat.Sparse_chol.nnz_l t.factor

let zero_fixed grid (v : float array) =
  if grid.Grid.placement = Grid.Inside then
    Array.iter (Array.iter (fun k -> v.(k) <- 0.0)) grid.Grid.contact_nodes;
  v

let node_current grid (v : float array) i =
  let nx = grid.Grid.nx and ny = grid.Grid.ny in
  let ix = i mod nx and iy = i / nx mod ny and iz = i / (nx * ny) in
  let acc = ref 0.0 in
  let extra =
    Grid.fold_neighbors grid ~ix ~iy ~iz (fun ~neighbor ~g -> acc := !acc +. (g *. (v.(i) -. v.(neighbor))))
  in
  !acc +. (extra *. v.(i))

let solve t (u : La.Vec.t) : La.Vec.t =
  if Array.length u <> t.n_contacts then invalid_arg "Direct_solver.solve: contact count mismatch";
  let grid = t.grid in
  let n = Grid.node_count grid in
  match grid.Grid.placement with
  | Grid.Inside ->
    let v_fix = Array.make n 0.0 in
    Array.iteri (fun c nodes -> Array.iter (fun k -> v_fix.(k) <- u.(c)) nodes) grid.Grid.contact_nodes;
    let b = zero_fixed grid (Array.map (fun x -> -.x) (Grid.apply grid v_fix)) in
    let x = zero_fixed grid (Sparsemat.Sparse_chol.solve t.factor b) in
    let v = La.Vec.add v_fix x in
    Array.map
      (fun nodes -> Array.fold_left (fun acc k -> acc +. node_current grid v k) 0.0 nodes)
      grid.Grid.contact_nodes
  | Grid.Outside ->
    let b = Array.make n 0.0 in
    Array.iteri
      (fun c nodes -> Array.iter (fun k -> b.(k) <- grid.Grid.g_contact *. u.(c)) nodes)
      grid.Grid.contact_nodes;
    let v = Sparsemat.Sparse_chol.solve t.factor b in
    Array.mapi
      (fun c nodes ->
        Array.fold_left (fun acc k -> acc +. (grid.Grid.g_contact *. (u.(c) -. v.(k)))) 0.0 nodes)
      grid.Grid.contact_nodes

let blackbox t = Blackbox.make ~n:t.n_contacts (solve t)
