(* The scenario layer: substrate problems as data.

   A scenario bundles everything a tool needs to pose a substrate
   coupling problem — the layered process stack (Substrate.Profile.t),
   the contact placement (Geometry.Layout.t, either a named generator
   with parameters or an explicit rectangle list), and a solver-stack
   hint — parsed from a small sexp-style text format (.scn) with
   line/column error diagnostics, or pulled from the registry of named
   built-in processes. The printer's output re-parses to an equal value
   (round-trip fixpoint), so scenarios can be persisted, diffed and
   regenerated mechanically.

   The CLI, the bench harness and the examples all build their problems
   through this module; the legacy --layout/--per-side/--seed flags
   resolve through {!of_legacy} onto the same registry entries, and the
   solver stacks built here are call-for-call identical to the ones the
   pre-scenario CLI constructed, so probe digests are bit-identical. *)

module Sexp = Sexp
module Profile = Substrate.Profile
module Layout = Geometry.Layout
module Contact = Geometry.Contact

(* ------------------------------------------------------------------ *)
(* Types.                                                              *)

type gen_kind = Regular | Irregular | Alternating | Mixed | Large

type generator = {
  gen : gen_kind;
  per_side : int;
  seed : int;
  fill : float option;  (* Regular/Irregular only; None = generator default *)
}

type placement = Generator of generator | Rects of Contact.t array

type solver =
  | Eig of { panels : int }
  | Fd of { nx : int; nz : int }
  | Fd_direct of { nx : int; nz : int }

type substrate = {
  profile : Profile.t;
  layer_names : string list;  (* parallel to profile.layers *)
}

type t = {
  name : string;
  description : string;
  substrate : substrate;
  fd_substrate : substrate option;
      (* optional grid-friendly override used by the fd solvers *)
  placement : placement;
  solver : solver;
}

let gen_name = function
  | Regular -> "regular"
  | Irregular -> "irregular"
  | Alternating -> "alternating"
  | Mixed -> "mixed"
  | Large -> "large"

let gen_of_name = function
  | "regular" -> Some Regular
  | "irregular" -> Some Irregular
  | "alternating" -> Some Alternating
  | "mixed" -> Some Mixed
  | "large" -> Some Large
  | _ -> None

let solver_name = function Eig _ -> "eig" | Fd _ -> "fd" | Fd_direct _ -> "fd-direct"

(* ------------------------------------------------------------------ *)
(* Equality: bit-exact on every float, so the round-trip fixpoint test
   means "the printed file reconstructs the identical problem". *)

let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let layer_equal (l1 : Profile.layer) (l2 : Profile.layer) =
  float_eq l1.Profile.thickness l2.Profile.thickness
  && float_eq l1.Profile.conductivity l2.Profile.conductivity

let profile_equal (p1 : Profile.t) (p2 : Profile.t) =
  float_eq p1.Profile.a p2.Profile.a
  && float_eq p1.Profile.b p2.Profile.b
  && List.length p1.Profile.layers = List.length p2.Profile.layers
  && List.for_all2 layer_equal p1.Profile.layers p2.Profile.layers
  && (match (p1.Profile.backplane, p2.Profile.backplane) with
     | Profile.Grounded, Profile.Grounded | Profile.Floating, Profile.Floating -> true
     | Profile.Grounded, Profile.Floating | Profile.Floating, Profile.Grounded -> false)

let substrate_equal s1 s2 =
  profile_equal s1.profile s2.profile
  && List.length s1.layer_names = List.length s2.layer_names
  && List.for_all2 String.equal s1.layer_names s2.layer_names

let contact_equal (c1 : Contact.t) (c2 : Contact.t) =
  float_eq c1.Contact.x0 c2.Contact.x0
  && float_eq c1.Contact.y0 c2.Contact.y0
  && float_eq c1.Contact.x1 c2.Contact.x1
  && float_eq c1.Contact.y1 c2.Contact.y1

let placement_equal pl1 pl2 =
  match (pl1, pl2) with
  | Generator g1, Generator g2 ->
    (match (g1.gen, g2.gen) with
    | Regular, Regular | Irregular, Irregular | Alternating, Alternating | Mixed, Mixed
    | Large, Large ->
      true
    | (Regular | Irregular | Alternating | Mixed | Large), _ -> false)
    && g1.per_side = g2.per_side && g1.seed = g2.seed
    && (match (g1.fill, g2.fill) with
       | None, None -> true
       | Some f1, Some f2 -> float_eq f1 f2
       | None, Some _ | Some _, None -> false)
  | Rects r1, Rects r2 ->
    Array.length r1 = Array.length r2
    && Array.for_all2 contact_equal r1 r2
  | Generator _, Rects _ | Rects _, Generator _ -> false

let solver_equal s1 s2 =
  match (s1, s2) with
  | Eig { panels = p1 }, Eig { panels = p2 } -> p1 = p2
  | Fd { nx = x1; nz = z1 }, Fd { nx = x2; nz = z2 }
  | Fd_direct { nx = x1; nz = z1 }, Fd_direct { nx = x2; nz = z2 } ->
    x1 = x2 && z1 = z2
  | (Eig _ | Fd _ | Fd_direct _), _ -> false

let equal t1 t2 =
  String.equal t1.name t2.name
  && String.equal t1.description t2.description
  && substrate_equal t1.substrate t2.substrate
  && (match (t1.fd_substrate, t2.fd_substrate) with
     | None, None -> true
     | Some s1, Some s2 -> substrate_equal s1 s2
     | None, Some _ | Some _, None -> false)
  && placement_equal t1.placement t2.placement
  && solver_equal t1.solver t2.solver

(* ------------------------------------------------------------------ *)
(* Printing. Floats print as the shortest decimal that parses back to
   the identical bits, so print -> parse is a fixpoint. *)

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else begin
    let bits = Int64.bits_of_float x in
    let rec go p =
      let s = Printf.sprintf "%.*g" p x in
      match float_of_string_opt s with
      | Some y when Int64.equal (Int64.bits_of_float y) bits -> s
      | Some _ | None -> if p >= 17 then Printf.sprintf "%.17g" x else go (p + 1)
    in
    go 1
  end

let print_substrate b ~key { profile; layer_names } =
  Buffer.add_string b (Printf.sprintf " (%s\n  (size %s)\n  (layers\n" key (float_repr profile.Profile.a));
  let n_layers = List.length profile.Profile.layers in
  List.iteri
    (fun i (l : Profile.layer) ->
      let name =
        match List.nth_opt layer_names i with
        | Some n -> n
        | None -> Printf.sprintf "layer%d" (i + 1)
      in
      Buffer.add_string b
        (Printf.sprintf "   (layer (name %s) (thickness %s) (conductivity %s))%s\n"
           (Sexp.print_atom name) (float_repr l.Profile.thickness)
           (float_repr l.Profile.conductivity)
           (if i = n_layers - 1 then ")" else "")))
    profile.Profile.layers;
  Buffer.add_string b
    (Printf.sprintf "  (backplane %s))\n"
       (match profile.Profile.backplane with Profile.Grounded -> "grounded" | Profile.Floating -> "floating"))

let to_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "(scenario\n";
  Buffer.add_string b (Printf.sprintf " (name %s)\n" (Sexp.print_atom t.name));
  Buffer.add_string b (Printf.sprintf " (description %s)\n" (Sexp.quote_atom t.description));
  print_substrate b ~key:"substrate" t.substrate;
  (match t.fd_substrate with
  | None -> ()
  | Some s -> print_substrate b ~key:"fd-substrate" s);
  (match t.placement with
  | Generator g ->
    Buffer.add_string b
      (Printf.sprintf " (contacts\n  (generator %s (per-side %d) (seed %d)%s))\n" (gen_name g.gen)
         g.per_side g.seed
         (match g.fill with None -> "" | Some f -> Printf.sprintf " (fill %s)" (float_repr f)))
  | Rects rects ->
    Buffer.add_string b " (contacts\n  (rects\n";
    let n = Array.length rects in
    Array.iteri
      (fun i (c : Contact.t) ->
        Buffer.add_string b
          (Printf.sprintf "   (rect %s %s %s %s)%s\n" (float_repr c.Contact.x0)
             (float_repr c.Contact.y0) (float_repr c.Contact.x1) (float_repr c.Contact.y1)
             (if i = n - 1 then "))" else "")))
      rects);
  (match t.solver with
  | Eig { panels } -> Buffer.add_string b (Printf.sprintf " (solver eig (panels %d)))\n" panels)
  | Fd { nx; nz } -> Buffer.add_string b (Printf.sprintf " (solver fd (grid %d %d)))\n" nx nz)
  | Fd_direct { nx; nz } ->
    Buffer.add_string b (Printf.sprintf " (solver fd-direct (grid %d %d)))\n" nx nz));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: sexps -> t, with every error positioned. *)

let sprintf = Printf.sprintf

(* Collect the (key ...) forms of a body, rejecting unknown and duplicate
   keys with the position of the offending form. *)
let fields ~file ~scope ~allowed body =
  List.fold_left
    (fun acc sx ->
      match sx with
      | Sexp.List (p, Sexp.Atom (_, key) :: args) ->
        if not (List.exists (String.equal key) allowed) then
          Sexp.fail ~file ~pos:p
            (sprintf "unknown field (%s ...) in (%s ...); expected one of: %s" key scope
               (String.concat ", " allowed));
        if List.mem_assoc key acc then
          Sexp.fail ~file ~pos:p (sprintf "duplicate field (%s ...) in (%s ...)" key scope);
        acc @ [ (key, (p, args)) ]
      | _ ->
        Sexp.fail ~file ~pos:(Sexp.pos_of sx)
          (sprintf "expected a (field ...) form inside (%s ...)" scope))
    [] body

let required ~file ~scope ~pos flds key =
  match List.assoc_opt key flds with
  | Some v -> v
  | None -> Sexp.fail ~file ~pos (sprintf "missing (%s ...) in (%s ...)" key scope)

let one_atom ~file ~key (pos, args) =
  match args with
  | [ Sexp.Atom (_, a) ] -> a
  | _ -> Sexp.fail ~file ~pos (sprintf "(%s ...) takes exactly one value" key)

let float_atom ~file sx =
  match sx with
  | Sexp.Atom (p, a) -> (
    match float_of_string_opt a with
    | Some x when Float.is_finite x -> (p, x)
    | Some _ -> Sexp.fail ~file ~pos:p (sprintf "number %s is not finite" a)
    | None -> Sexp.fail ~file ~pos:p (sprintf "expected a number, got %s" (Sexp.print_atom a)))
  | Sexp.List (p, _) -> Sexp.fail ~file ~pos:p "expected a number, got a list"

let float_field ~file ~key (pos, args) =
  match args with
  | [ a ] -> snd (float_atom ~file a)
  | _ -> Sexp.fail ~file ~pos (sprintf "(%s ...) takes exactly one number" key)

let int_field ~file ~key (pos, args) =
  match args with
  | [ Sexp.Atom (p, a) ] -> (
    match int_of_string_opt a with
    | Some i -> i
    | None -> Sexp.fail ~file ~pos:p (sprintf "expected an integer, got %s" (Sexp.print_atom a)))
  | _ -> Sexp.fail ~file ~pos (sprintf "(%s ...) takes exactly one integer" key)

let parse_layer ~file ~pos body =
  let flds = fields ~file ~scope:"layer" ~allowed:[ "name"; "thickness"; "conductivity" ] body in
  let name = one_atom ~file ~key:"name" (required ~file ~scope:"layer" ~pos flds "name") in
  let thickness =
    float_field ~file ~key:"thickness" (required ~file ~scope:"layer" ~pos flds "thickness")
  in
  let conductivity =
    float_field ~file ~key:"conductivity" (required ~file ~scope:"layer" ~pos flds "conductivity")
  in
  (name, { Profile.thickness; conductivity })

let parse_substrate ~file ~scope ~pos body =
  let flds = fields ~file ~scope ~allowed:[ "size"; "layers"; "backplane" ] body in
  let size_pos, size_args = required ~file ~scope ~pos flds "size" in
  let size =
    match size_args with
    | [ a ] -> snd (float_atom ~file a)
    | [ a1; a2 ] ->
      let p1, x1 = float_atom ~file a1 in
      let _, x2 = float_atom ~file a2 in
      if not (float_eq x1 x2) then
        Sexp.fail ~file ~pos:p1 "rectangular surfaces are not supported: the two (size ...) extents must be equal";
      x1
    | _ -> Sexp.fail ~file ~pos:size_pos "(size ...) takes one (square) or two equal extents"
  in
  let layers_pos, layers_args = required ~file ~scope ~pos flds "layers" in
  let named_layers =
    List.map
      (fun sx ->
        match sx with
        | Sexp.List (p, Sexp.Atom (_, "layer") :: body) -> (p, parse_layer ~file ~pos:p body)
        | _ ->
          Sexp.fail ~file ~pos:(Sexp.pos_of sx) "expected (layer (name ...) (thickness ...) (conductivity ...))")
      layers_args
  in
  if named_layers = [] then Sexp.fail ~file ~pos:layers_pos "(layers ...) needs at least one layer";
  (* Duplicate layer names are almost certainly an editing slip. *)
  List.iteri
    (fun i (p, (name, _)) ->
      List.iteri
        (fun j (_, (other, _)) ->
          if j < i && String.equal name other then
            Sexp.fail ~file ~pos:p (sprintf "duplicate layer name %s" (Sexp.print_atom name)))
        named_layers)
    named_layers;
  let bp_pos, bp_args = required ~file ~scope ~pos flds "backplane" in
  let backplane =
    match one_atom ~file ~key:"backplane" (bp_pos, bp_args) with
    | "grounded" -> Profile.Grounded
    | "floating" -> Profile.Floating
    | other ->
      Sexp.fail ~file ~pos:bp_pos
        (sprintf "unknown backplane %s; expected grounded or floating" (Sexp.print_atom other))
  in
  let layer_names = List.map (fun (_, (n, _)) -> n) named_layers in
  let layers = List.map (fun (_, (_, l)) -> l) named_layers in
  (* Profile.make owns the numeric validation (it names the offending
     field); re-raise its verdict with the file position of this form. *)
  match Profile.make ~a:size ~b:size ~layers ~backplane with
  | profile -> { profile; layer_names }
  | exception Invalid_argument message -> Sexp.fail ~file ~pos message

let parse_generator ~file ~pos args =
  match args with
  | Sexp.Atom (gp, gname) :: body ->
    let gen =
      match gen_of_name gname with
      | Some g -> g
      | None ->
        Sexp.fail ~file ~pos:gp
          (sprintf "unknown generator %s; expected one of: regular, irregular, alternating, mixed, large"
             (Sexp.print_atom gname))
    in
    let flds = fields ~file ~scope:"generator" ~allowed:[ "per-side"; "seed"; "fill" ] body in
    let per_side =
      match List.assoc_opt "per-side" flds with
      | Some f -> int_field ~file ~key:"per-side" f
      | None -> 16
    in
    if per_side < 1 then Sexp.fail ~file ~pos "(per-side ...) must be at least 1";
    let seed =
      match List.assoc_opt "seed" flds with Some f -> int_field ~file ~key:"seed" f | None -> 7
    in
    let fill =
      match List.assoc_opt "fill" flds with
      | None -> None
      | Some ((fp, _) as f) ->
        let x = float_field ~file ~key:"fill" f in
        (match gen with
        | Regular | Irregular -> ()
        | Alternating | Mixed | Large ->
          Sexp.fail ~file ~pos:fp
            (sprintf "(fill ...) only applies to the regular and irregular generators, not %s"
               (gen_name gen)));
        if not (x > 0.0 && x <= 1.0) then
          Sexp.fail ~file ~pos:fp (sprintf "(fill %s) out of range (0, 1]" (float_repr x));
        Some x
    in
    Generator { gen; per_side; seed; fill }
  | _ -> Sexp.fail ~file ~pos "expected (generator NAME (per-side N) (seed N) ...)"

let parse_rects ~file ~size args =
  let rects =
    List.map
      (fun sx ->
        match sx with
        | Sexp.List (p, Sexp.Atom (_, "rect") :: coords) -> (
          match coords with
          | [ a; b; c; d ] ->
            let _, x0 = float_atom ~file a in
            let _, y0 = float_atom ~file b in
            let _, x1 = float_atom ~file c in
            let _, y1 = float_atom ~file d in
            if not (x0 < x1 && y0 < y1) then
              Sexp.fail ~file ~pos:p "degenerate rectangle: need x0 < x1 and y0 < y1";
            if x0 < 0.0 || y0 < 0.0 || x1 > size || y1 > size then
              Sexp.fail ~file ~pos:p
                (sprintf "rectangle outside the [0, %s] surface" (float_repr size));
            Contact.make ~x0 ~y0 ~x1 ~y1
          | _ -> Sexp.fail ~file ~pos:p "(rect ...) takes exactly x0 y0 x1 y1")
        | _ -> Sexp.fail ~file ~pos:(Sexp.pos_of sx) "expected (rect x0 y0 x1 y1)")
      args
  in
  Rects (Array.of_list rects)

let parse_contacts ~file ~pos ~size args =
  match args with
  | [ Sexp.List (p, Sexp.Atom (_, "generator") :: gen_args) ] ->
    parse_generator ~file ~pos:p gen_args
  | [ Sexp.List (p, Sexp.Atom (_, "rects") :: rect_args) ] ->
    if rect_args = [] then Sexp.fail ~file ~pos:p "(rects ...) needs at least one rectangle";
    parse_rects ~file ~size rect_args
  | _ ->
    Sexp.fail ~file ~pos
      "(contacts ...) takes exactly one (generator ...) or (rects ...) form"

let parse_solver ~file ~pos args =
  match args with
  | Sexp.Atom (kp, kind) :: body -> (
    let flds = fields ~file ~scope:"solver" ~allowed:[ "panels"; "grid" ] body in
    let no_field key =
      match List.assoc_opt key flds with
      | None -> ()
      | Some (p, _) ->
        Sexp.fail ~file ~pos:p (sprintf "(%s ...) does not apply to the %s solver" key kind)
    in
    let grid ~default_nx ~default_nz =
      match List.assoc_opt "grid" flds with
      | None -> (default_nx, default_nz)
      | Some (gp, gargs) -> (
        match gargs with
        | [ Sexp.Atom (p1, a1); Sexp.Atom (p2, a2) ] -> (
          match (int_of_string_opt a1, int_of_string_opt a2) with
          | Some nx, Some nz ->
            if nx < 1 || nz < 1 then Sexp.fail ~file ~pos:gp "(grid NX NZ) needs positive counts";
            (nx, nz)
          | None, _ -> Sexp.fail ~file ~pos:p1 (sprintf "expected an integer, got %s" (Sexp.print_atom a1))
          | _, None -> Sexp.fail ~file ~pos:p2 (sprintf "expected an integer, got %s" (Sexp.print_atom a2)))
        | _ -> Sexp.fail ~file ~pos:gp "(grid ...) takes exactly NX NZ")
    in
    match kind with
    | "eig" ->
      no_field "grid";
      let panels =
        match List.assoc_opt "panels" flds with
        | Some f -> int_field ~file ~key:"panels" f
        | None -> 64
      in
      if panels < 1 then Sexp.fail ~file ~pos "(panels ...) must be positive";
      Eig { panels }
    | "fd" ->
      no_field "panels";
      let nx, nz = grid ~default_nx:64 ~default_nz:16 in
      Fd { nx; nz }
    | "fd-direct" ->
      no_field "panels";
      let nx, nz = grid ~default_nx:32 ~default_nz:8 in
      Fd_direct { nx; nz }
    | other ->
      Sexp.fail ~file ~pos:kp
        (sprintf "unknown solver %s; expected eig, fd or fd-direct" (Sexp.print_atom other)))
  | _ -> Sexp.fail ~file ~pos "expected (solver eig|fd|fd-direct ...)"

let of_string ~file text =
  let top = Sexp.parse ~file text in
  match top with
  | [ Sexp.List (pos, Sexp.Atom (_, "scenario") :: body) ] ->
    let flds =
      fields ~file ~scope:"scenario"
        ~allowed:[ "name"; "description"; "substrate"; "fd-substrate"; "contacts"; "solver" ]
        body
    in
    let name = one_atom ~file ~key:"name" (required ~file ~scope:"scenario" ~pos flds "name") in
    if String.length name = 0 then Sexp.fail ~file ~pos "(name ...) must not be empty";
    let description =
      match List.assoc_opt "description" flds with
      | Some f -> one_atom ~file ~key:"description" f
      | None -> ""
    in
    let sub_pos, sub_args = required ~file ~scope:"scenario" ~pos flds "substrate" in
    let substrate = parse_substrate ~file ~scope:"substrate" ~pos:sub_pos sub_args in
    let fd_substrate =
      match List.assoc_opt "fd-substrate" flds with
      | None -> None
      | Some (p, args) -> Some (parse_substrate ~file ~scope:"fd-substrate" ~pos:p args)
    in
    let con_pos, con_args = required ~file ~scope:"scenario" ~pos flds "contacts" in
    let placement =
      parse_contacts ~file ~pos:con_pos ~size:substrate.profile.Profile.a con_args
    in
    let solver =
      match List.assoc_opt "solver" flds with
      | Some (p, args) -> parse_solver ~file ~pos:p args
      | None -> Eig { panels = 64 }
    in
    { name; description; substrate; fd_substrate; placement; solver }
  | [ sx ] -> Sexp.fail ~file ~pos:(Sexp.pos_of sx) "expected a single (scenario ...) form"
  | [] -> Sexp.fail ~file ~pos:{ Sexp.line = 1; col = 1 } "empty scenario file"
  | _ :: sx :: _ ->
    Sexp.fail ~file ~pos:(Sexp.pos_of sx) "expected a single (scenario ...) form"

let of_file path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  of_string ~file:path text

(* ------------------------------------------------------------------ *)
(* Materialization: Layout.t and the solver escalation stack. These are
   call-for-call the constructions the pre-scenario cli_common made, so
   registry scenarios reproduce the legacy CLI paths bit-identically. *)

let layout t =
  let size = t.substrate.profile.Profile.a in
  match t.placement with
  | Rects contacts -> { Layout.size; contacts; name = t.name }
  | Generator g -> (
    let rng = La.Rng.create g.seed in
    match g.gen with
    | Regular -> Layout.regular_grid ~size ~per_side:g.per_side ~fill:(Option.value g.fill ~default:0.5) ()
    | Irregular ->
      Layout.irregular ~size ~per_side:g.per_side ~fill:(Option.value g.fill ~default:0.4) rng ()
    | Alternating -> Layout.alternating ~size ~per_side:g.per_side ()
    | Mixed -> Layout.mixed_shapes ~size ~per_side:(max 16 g.per_side) ()
    | Large -> Layout.large_mixed ~size ~per_side:g.per_side rng ())

let fd_substrate_of t = match t.fd_substrate with Some s -> s | None -> t.substrate

let solver_stack t lay =
  match t.solver with
  | Eig { panels } ->
    let profile = t.substrate.profile in
    let s = Eigsolver.Eig_solver.create profile lay ~panels_per_side:panels in
    let fallbacks =
      [
        ( "eig tol=1e-11 4x iterations",
          lazy
            (Eigsolver.Eig_solver.blackbox
               (Eigsolver.Eig_solver.with_tolerance ~tol:1e-11 ~max_iter:8000 s)) );
        ( "eig re-plan tol=1e-11 16x iterations",
          lazy
            (Eigsolver.Eig_solver.blackbox
               (Eigsolver.Eig_solver.create ~tol:1e-11 ~max_iter:32000 profile lay
                  ~panels_per_side:panels)) );
      ]
    in
    (Eigsolver.Eig_solver.blackbox s, fallbacks)
  | Fd { nx; nz } ->
    let fd_profile = (fd_substrate_of t).profile in
    let s =
      Fdsolver.Fd_solver.create
        ~precond:(Fdsolver.Fd_solver.Fast_poisson (Fdsolver.Fd_solver.area_fraction lay))
        fd_profile lay ~nx ~nz
    in
    let fallbacks =
      [
        ( "fd tol=1e-11 4x iterations",
          lazy
            (Fdsolver.Fd_solver.blackbox
               (Fdsolver.Fd_solver.with_tolerance ~tol:1e-11 ~max_iter:20000 s)) );
        ( "fd ICCG tol=1e-11",
          lazy
            (Fdsolver.Fd_solver.blackbox
               (Fdsolver.Fd_solver.create ~precond:Fdsolver.Fd_solver.Ic0 ~tol:1e-11
                  ~max_iter:20000 fd_profile lay ~nx ~nz)) );
        ( "fd direct (sparse Cholesky, coarse grid)",
          lazy
            (Fdsolver.Direct_solver.blackbox
               (Fdsolver.Direct_solver.create fd_profile lay ~nx:(max 1 (nx / 2))
                  ~nz:(max 1 (nz / 2)))) );
      ]
    in
    (Fdsolver.Fd_solver.blackbox s, fallbacks)
  | Fd_direct { nx; nz } ->
    let s = Fdsolver.Direct_solver.create (fd_substrate_of t).profile lay ~nx ~nz in
    (Fdsolver.Direct_solver.blackbox s, [])

let blackbox t lay = fst (solver_stack t lay)

(* ------------------------------------------------------------------ *)
(* Scenario surgery: the CLI override / legacy-alias hooks. *)

let with_per_side t per_side =
  match t.placement with
  | Generator g -> { t with placement = Generator { g with per_side } }
  | Rects _ ->
    invalid_arg
      (sprintf "scenario %s places explicit rectangles; --per-side does not apply" t.name)

let with_seed t seed =
  match t.placement with
  | Generator g -> { t with placement = Generator { g with seed } }
  | Rects _ ->
    invalid_arg (sprintf "scenario %s places explicit rectangles; --seed does not apply" t.name)

let with_panels t panels =
  match t.solver with
  | Eig _ -> { t with solver = Eig { panels } }
  | Fd _ | Fd_direct _ ->
    invalid_arg
      (sprintf "scenario %s uses the %s solver; --panels only applies to eig" t.name
         (solver_name t.solver))

let with_solver t kind =
  let solver =
    match kind with
    | `Eig -> (match t.solver with Eig _ as s -> s | Fd _ | Fd_direct _ -> Eig { panels = 64 })
    | `Fd -> Fd { nx = 64; nz = 16 }
    | `Fd_direct -> Fd_direct { nx = 32; nz = 8 }
  in
  { t with solver }

(* ------------------------------------------------------------------ *)
(* The registry of built-in processes and layouts. Entries are built by
   functions (not module-level values): the library is pool-reachable,
   so it keeps no module-level state, mutable or lazy. *)

(* The thesis §3.7 stack, exactly Profile.thesis_default. *)
let thesis_substrate () =
  { profile = Profile.thesis_default (); layer_names = [ "channel-stop"; "bulk"; "chuck" ] }

(* The grid-friendly stack the legacy CLI used for its fd solvers:
   layer boundaries at depths 2 and 30 sit on the h = 2 (nx = 64) grid. *)
let legacy_fd_substrate () =
  {
    profile =
      Profile.make ~a:128.0 ~b:128.0
        ~layers:
          [
            { Profile.thickness = 2.0; conductivity = 1.0 };
            { Profile.thickness = 28.0; conductivity = 100.0 };
            { Profile.thickness = 2.0; conductivity = 0.1 };
          ]
        ~backplane:Profile.Grounded;
    layer_names = [ "channel-stop"; "bulk"; "chuck" ];
  }

let legacy_entry ~name ~description ~gen ?fill () =
  {
    name;
    description;
    substrate = thesis_substrate ();
    fd_substrate = Some (legacy_fd_substrate ());
    placement = Generator { gen; per_side = 16; seed = 7; fill };
    solver = Eig { panels = 64 };
  }

(* An epitaxial process: lightly doped epi on a heavily doped wafer. *)
let epi_substrate () =
  {
    profile =
      Profile.make ~a:128.0 ~b:128.0
        ~layers:
          [
            { Profile.thickness = 2.0; conductivity = 1.0 };
            { Profile.thickness = 38.0; conductivity = 500.0 };
          ]
        ~backplane:Profile.Grounded;
    layer_names = [ "epi"; "wafer" ];
  }

(* A uniform lightly doped bulk wafer, no epi. *)
let bulk_substrate () =
  {
    profile =
      Profile.make ~a:128.0 ~b:128.0
        ~layers:[ { Profile.thickness = 40.0; conductivity = 10.0 } ]
        ~backplane:Profile.Grounded;
    layer_names = [ "wafer" ];
  }

(* Two layers over a floating backplane; depth 32 so the boundary at 4
   sits on the h = 4 (nx = 32) fd grid. *)
let floating_substrate () =
  {
    profile =
      Profile.make ~a:128.0 ~b:128.0
        ~layers:
          [
            { Profile.thickness = 4.0; conductivity = 1.0 };
            { Profile.thickness = 28.0; conductivity = 100.0 };
          ]
        ~backplane:Profile.Floating;
    layer_names = [ "surface"; "bulk" ];
  }

(* Mixed-signal SoC floorplan: a checkerboarded digital standard-cell
   block on the left two thirds, an analog island of larger well-spaced
   contacts on the right (the §1.1 motivating scenario). Cell pitch 8 on
   the 128 surface; every contact fits a level-4 quadtree square. *)
let mixed_signal_rects () =
  let acc = ref [] in
  let cell = 8.0 in
  for j = 0 to 15 do
    for i = 0 to 9 do
      if (i + j) mod 2 = 0 then begin
        let x0 = (float_of_int i *. cell) +. 2.0 and y0 = (float_of_int j *. cell) +. 2.0 in
        acc := Contact.make ~x0 ~y0 ~x1:(x0 +. 4.0) ~y1:(y0 +. 4.0) :: !acc
      end
    done
  done;
  for j = 0 to 3 do
    for i = 0 to 1 do
      let bx = float_of_int (11 + (2 * i)) and by = float_of_int ((4 * j) + 1) in
      let x0 = (bx *. cell) +. 1.5 and y0 = (by *. cell) +. 1.5 in
      acc := Contact.make ~x0 ~y0 ~x1:(x0 +. 5.0) ~y1:(y0 +. 5.0) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

(* Guard-ring floorplan: one large aggressor bottom-left, a small analog
   victim top-right wrapped in a ring of twelve 8-unit grounded strips
   (each one level-4 quadtree cell), and a row of digital fillers. The
   geometry of examples/guard_ring.ml, as data. *)
let guard_ring_rects () =
  let acc = ref [] in
  let add ~x0 ~y0 ~x1 ~y1 = acc := Contact.make ~x0 ~y0 ~x1 ~y1 :: !acc in
  add ~x0:18.0 ~y0:18.0 ~x1:28.0 ~y1:28.0;
  add ~x0:104.0 ~y0:104.0 ~x1:112.0 ~y1:112.0;
  for k = 0 to 6 do
    let x0 = 10.0 +. (float_of_int k *. 16.0) in
    add ~x0 ~y0:58.0 ~x1:(x0 +. 6.0) ~y1:64.0
  done;
  List.iter
    (fun (x0, y0, x1, y1) -> add ~x0 ~y0 ~x1 ~y1)
    [
      (96.0, 96.0, 104.0, 100.0); (104.0, 96.0, 112.0, 100.0); (112.0, 96.0, 120.0, 100.0);
      (96.0, 116.0, 104.0, 120.0); (104.0, 116.0, 112.0, 120.0); (112.0, 116.0, 120.0, 120.0);
      (96.0, 100.0, 100.0, 104.0); (96.0, 104.0, 100.0, 112.0); (96.0, 112.0, 100.0, 116.0);
      (116.0, 100.0, 120.0, 104.0); (116.0, 104.0, 120.0, 112.0); (116.0, 112.0, 120.0, 116.0);
    ];
  Array.of_list (List.rev !acc)

let builtins () =
  [
    legacy_entry ~name:"regular"
      ~description:"Thesis Fig 3-6: regular 16x16 grid of equal contacts on the thesis-default process"
      ~gen:Regular ~fill:0.5 ();
    legacy_entry ~name:"irregular"
      ~description:"Thesis Fig 3-7: jittered placement with large coherent gaps on the thesis-default process"
      ~gen:Irregular ~fill:0.4 ();
    legacy_entry ~name:"alternating"
      ~description:"Thesis Fig 3-8: rows of alternating large and small contacts on the thesis-default process"
      ~gen:Alternating ();
    legacy_entry ~name:"mixed"
      ~description:"Thesis Fig 4-8: guard rings, thin runs and small squares on the thesis-default process"
      ~gen:Mixed ();
    legacy_entry ~name:"large"
      ~description:"Thesis Fig 4-10: blocks of dense small and sparse large contacts on the thesis-default process"
      ~gen:Large ();
    legacy_entry ~name:"thesis-default"
      ~description:"The thesis-default process (0.5/38.5/1 at conductivity 1/100/0.1, grounded) under a regular grid"
      ~gen:Regular ~fill:0.5 ();
    {
      name = "epi";
      description =
        "Epitaxial process (thin epi over a heavily doped wafer) under a mixed-signal SoC floorplan";
      substrate = epi_substrate ();
      fd_substrate = None;
      placement = Rects (mixed_signal_rects ());
      solver = Eig { panels = 64 };
    };
    {
      name = "bulk";
      description = "Uniform lightly doped bulk wafer under the large mixed block layout";
      substrate = bulk_substrate ();
      fd_substrate = None;
      placement = Generator { gen = Large; per_side = 16; seed = 7; fill = None };
      solver = Eig { panels = 64 };
    };
    {
      name = "floating-backplane";
      description =
        "Two-layer stack over a floating backplane, finite-difference solver on a 32x32x8 grid";
      substrate = floating_substrate ();
      fd_substrate = None;
      placement = Generator { gen = Regular; per_side = 8; seed = 7; fill = Some 0.5 };
      solver = Fd { nx = 32; nz = 8 };
    };
    {
      name = "guard-ring-heavy";
      description =
        "Thesis-default process under a guard-ring floorplan: aggressor, ringed analog victim, digital fillers";
      substrate = thesis_substrate ();
      fd_substrate = Some (legacy_fd_substrate ());
      placement = Rects (guard_ring_rects ());
      solver = Eig { panels = 64 };
    };
  ]

let names () = List.map (fun t -> t.name) (builtins ())

let find name = List.find_opt (fun t -> String.equal t.name name) (builtins ())

let list_lines () =
  List.map (fun t -> sprintf "%-19s %s" t.name t.description) (builtins ())

(* [--scenario NAME|FILE]: a registry name wins; anything else must be a
   readable .scn file. *)
let load spec =
  match find spec with
  | Some t -> t
  | None ->
    if Sys.file_exists spec then of_file spec
    else
      invalid_arg
        (sprintf "unknown scenario %S: not a registry name (try --list-scenarios) and no such file"
           spec)

(* The legacy CLI surface (--layout/--per-side/--seed/--solver/--panels)
   as a registry alias: the defaults reproduce the registry entry
   exactly, explicit values override the corresponding scenario knobs. *)
let of_legacy ~layout:layout_name ~per_side ~seed ~solver ~panels =
  let base =
    match find layout_name with
    | Some t -> t
    | None -> invalid_arg (sprintf "unknown layout %S" layout_name)
  in
  let base = with_seed (with_per_side base per_side) seed in
  let solver =
    match solver with
    | `Eig -> Eig { panels }
    | `Fd -> Fd { nx = 64; nz = 16 }
    | `Fd_direct -> Fd_direct { nx = 32; nz = 8 }
  in
  { base with solver }
