(** The scenario layer: substrate problems as data.

    A scenario bundles a layered process stack, a contact placement and
    a solver-stack hint. Scenarios parse from a small sexp-style text
    format (.scn) with line/column diagnostics, print back to text that
    re-parses to an equal value (round-trip fixpoint), and ship as a
    registry of named built-in processes and layouts. The CLIs, the
    bench harness and the examples all pose their problems through this
    module; the legacy [--layout]/[--per-side]/[--seed] flags resolve
    through {!of_legacy} onto the same registry entries.

    Trust boundary: .scn files are data, not code — the parser accepts
    only the grammar below, validates every number (via
    [Substrate.Profile.make] for the stack), and positions every
    rejection as [file:line:col]. *)

module Sexp : module type of Sexp

type gen_kind = Regular | Irregular | Alternating | Mixed | Large

type generator = {
  gen : gen_kind;
  per_side : int;
  seed : int;
  fill : float option;  (** Regular/Irregular only; [None] = generator default *)
}

type placement = Generator of generator | Rects of Geometry.Contact.t array

type solver =
  | Eig of { panels : int }
  | Fd of { nx : int; nz : int }
  | Fd_direct of { nx : int; nz : int }

type substrate = {
  profile : Substrate.Profile.t;
  layer_names : string list;  (** parallel to [profile.layers] *)
}

type t = {
  name : string;
  description : string;
  substrate : substrate;
  fd_substrate : substrate option;
      (** optional grid-friendly override used by the fd solvers *)
  placement : placement;
  solver : solver;
}

val gen_name : gen_kind -> string
val solver_name : solver -> string

(** Structural equality, bit-exact on every float. *)
val equal : t -> t -> bool

(** Shortest decimal that parses back to the identical bits. *)
val float_repr : float -> string

(** Canonical .scn text; [of_string (to_string t)] equals [t], and
    printing the re-parse reproduces the text byte-for-byte. *)
val to_string : t -> string

(** Parse one [(scenario ...)] document.
    @raise Sexp.Error positioned at the offending form on any syntax or
    validation failure (including [Substrate.Profile.make] rejections). *)
val of_string : file:string -> string -> t

(** @raise Sexp.Error as {!of_string}; [Sys_error] if unreadable. *)
val of_file : string -> t

(** Materialize the contact layout. Generator scenarios call the
    [Geometry.Layout] generators with exactly the legacy CLI arguments,
    so layouts (and hence probe digests) are bit-identical to the
    pre-scenario paths. *)
val layout : t -> Geometry.Layout.t

(** The substrate the fd solvers discretize: [fd_substrate] if present,
    else [substrate]. *)
val fd_substrate_of : t -> substrate

(** The primary black box plus its lazy escalation ladder for
    [--resilience], built exactly as the legacy CLI built it. *)
val solver_stack :
  t ->
  Geometry.Layout.t ->
  Substrate.Blackbox.t * (string * Substrate.Blackbox.t Lazy.t) list

val blackbox : t -> Geometry.Layout.t -> Substrate.Blackbox.t

(** Scenario surgery for CLI overrides. [with_per_side]/[with_seed]
    @raise Invalid_argument on explicit-rectangle scenarios;
    [with_panels] on non-eig scenarios. *)

val with_per_side : t -> int -> t

val with_seed : t -> int -> t
val with_panels : t -> int -> t

(** Replace the solver kind, keeping an eig panel count but resetting fd
    grids to their kind defaults (64x16 for fd, 32x8 for fd-direct). *)
val with_solver : t -> [ `Eig | `Fd | `Fd_direct ] -> t

(** The registry of built-in scenarios: the five legacy layouts (plus
    the [thesis-default] process alias) and the epi, bulk,
    floating-backplane and guard-ring-heavy processes. *)
val builtins : unit -> t list

val names : unit -> string list
val find : string -> t option

(** One [name  description] line per registry entry, for
    [--list-scenarios]. *)
val list_lines : unit -> string list

(** Resolve [--scenario NAME|FILE]: registry name first, else a .scn
    path. @raise Invalid_argument when neither matches;
    @raise Sexp.Error on a file that fails to parse. *)
val load : string -> t

(** The legacy CLI surface as a registry alias: [of_legacy
    ~layout:"regular" ~per_side:16 ~seed:7 ~solver:`Eig ~panels:64]
    equals the registry entry; explicit values override the scenario's
    knobs. @raise Invalid_argument on an unknown layout name. *)
val of_legacy :
  layout:string ->
  per_side:int ->
  seed:int ->
  solver:[ `Eig | `Fd | `Fd_direct ] ->
  panels:int ->
  t
