(** Positioned s-expressions for the scenario config format: atoms,
    lists, [;] line comments and double-quoted strings with OCaml-style
    escapes, each node carrying the 1-based line/column where it starts. *)

type pos = { line : int; col : int }

type t = Atom of pos * string | List of pos * t list

(** Raised by {!parse} and by scenario validation; render it with
    {!format_error} as [file:line:col: message]. *)
exception
  Error of {
    file : string;
    line : int;
    col : int;
    message : string;
  }

val fail : file:string -> pos:pos -> string -> 'a

val format_error : file:string -> line:int -> col:int -> message:string -> string

val pos_of : t -> pos

(** Parse a whole document into its top-level forms.
    @raise Error with [file] and the offending position on malformed input. *)
val parse : file:string -> string -> t list

val atom_needs_quoting : string -> bool

(** Quote an atom as a double-quoted string literal that {!parse} decodes
    back to the same bytes. *)
val quote_atom : string -> string

(** [a] verbatim if it can stand as a bare atom, [quote_atom a] otherwise. *)
val print_atom : string -> string
