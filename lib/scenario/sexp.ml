(* Positioned s-expressions for the scenario config format.

   The lexer is the escape-correct machinery of lib/lint/dune_deps.ml
   (atoms, lists, [;] line comments, double-quoted strings with
   OCaml-style escapes) extended with line/column tracking so every
   parse and validation error can name the exact spot in the .scn file
   that caused it. Unknown escapes are kept verbatim rather than
   rejected: a surprising backslash should not throw away the file. *)

type pos = { line : int; col : int }

type t = Atom of pos * string | List of pos * t list

exception
  Error of {
    file : string;
    line : int;
    col : int;
    message : string;
  }

let fail ~file ~pos message = raise (Error { file; line = pos.line; col = pos.col; message })

let format_error ~file ~line ~col ~message =
  Printf.sprintf "%s:%d:%d: %s" file line col message

let pos_of = function Atom (p, _) -> p | List (p, _) -> p

let parse ~file (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let here () = { line = !line; col = !col } in
  let err ?at message =
    let p = match at with Some p -> p | None -> here () in
    fail ~file ~pos:p message
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  (* Every byte consumed goes through [advance], keeping line/col honest. *)
  let advance () =
    (if !pos < n then
       match s.[!pos] with
       | '\n' ->
         incr line;
         col := 1
       | _ -> incr col);
    incr pos
  in
  let advance_k k =
    for _ = 1 to k do
      advance ()
    done
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while !pos < n && not (Char.equal s.[!pos] '\n') do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom_char = function
    | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' -> false
    | _ -> true
  in
  let digit_val c = Char.code c - Char.code '0' in
  let hex_val c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> -1
  in
  let rec parse_one () =
    skip_ws ();
    let start = here () in
    match peek () with
    | None -> err "unexpected end of input"
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> err ~at:start "unclosed ("
        | Some _ ->
          items := parse_one () :: !items;
          loop ()
      in
      loop ();
      List (start, List.rev !items)
    | Some '"' ->
      advance ();
      let b = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> err ~at:start "unclosed string"
        | Some '"' -> advance ()
        | Some '\\' when !pos + 1 < n ->
          (match s.[!pos + 1] with
          | 'n' ->
            Buffer.add_char b '\n';
            advance_k 2
          | 't' ->
            Buffer.add_char b '\t';
            advance_k 2
          | 'r' ->
            Buffer.add_char b '\r';
            advance_k 2
          | 'b' ->
            Buffer.add_char b '\b';
            advance_k 2
          | ('\\' | '"' | '\'' | ' ') as c ->
            Buffer.add_char b c;
            advance_k 2
          | '\n' ->
            (* backslash-newline continuation: swallow it and the
               continuation line's indentation *)
            advance_k 2;
            while
              !pos < n && (Char.equal s.[!pos] ' ' || Char.equal s.[!pos] '\t')
            do
              advance ()
            done
          | '0' .. '9'
            when !pos + 3 < n
                 && (match (s.[!pos + 2], s.[!pos + 3]) with
                    | '0' .. '9', '0' .. '9' -> true
                    | _ -> false) ->
            let code =
              (100 * digit_val s.[!pos + 1])
              + (10 * digit_val s.[!pos + 2])
              + digit_val s.[!pos + 3]
            in
            if code > 255 then err "decimal escape out of range";
            Buffer.add_char b (Char.chr code);
            advance_k 4
          | 'x' when !pos + 3 < n && hex_val s.[!pos + 2] >= 0 && hex_val s.[!pos + 3] >= 0 ->
            Buffer.add_char b (Char.chr ((16 * hex_val s.[!pos + 2]) + hex_val s.[!pos + 3]));
            advance_k 4
          | c ->
            Buffer.add_char b '\\';
            Buffer.add_char b c;
            advance_k 2);
          loop ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
      in
      loop ();
      Atom (start, Buffer.contents b)
    | Some ')' -> err "unexpected )"
    | Some _ ->
      let b = Buffer.create 16 in
      while !pos < n && atom_char s.[!pos] do
        Buffer.add_char b s.[!pos];
        advance ()
      done;
      Atom (start, Buffer.contents b)
  in
  let out = ref [] in
  let rec loop () =
    skip_ws ();
    if !pos < n then begin
      out := parse_one () :: !out;
      loop ()
    end
  in
  loop ();
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let atom_needs_quoting a =
  String.length a = 0
  || String.exists
       (function
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' | '\\' -> true
         | c -> Char.code c < 32 || Char.code c > 126)
       a

(* Quote an atom as a double-quoted string literal that [parse] decodes
   back to the same bytes. *)
let quote_atom a =
  let b = Buffer.create (String.length a + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string b (Printf.sprintf "\\%03d" (Char.code c))
      | c -> Buffer.add_char b c)
    a;
  Buffer.add_char b '"';
  Buffer.contents b

let print_atom a = if atom_needs_quoting a then quote_atom a else a
