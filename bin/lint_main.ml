(* subcouple-lint: the repo's static analysis pass.

   Usage: subcouple-lint [--allowlist FILE] [--root DIR] [--typed]
                         [--cmt-dir DIR] [--format text|json] PATH...

   Parses every .ml under the given paths with the compiler's parser, runs
   the rule catalogue (see DESIGN.md "Static analysis"), prints findings as
   file:line:col diagnostics (or a JSON report with --format json) and
   exits 1 if any unsuppressed finding remains. With --typed the
   interprocedural rules (see DESIGN.md "Typed lint") also run, over the
   .cmt files beneath --cmt-dir. Wired into the build as `dune build
   @lint`. *)

let usage =
  "subcouple-lint [--allowlist FILE] [--root DIR] [--typed] [--cmt-dir DIR] [--format \
   text|json] PATH..."

(* Hand-rolled JSON so the tool keeps zero dependencies. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json (report : Lint.Driver.report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"files\":%d,\"suppressed\":%d,\"findings\":[" report.Lint.Driver.files
       report.Lint.Driver.suppressed);
  List.iteri
    (fun i (f : Lint.Finding.t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\"}"
           (json_escape f.Lint.Finding.file)
           f.Lint.Finding.line f.Lint.Finding.col
           (Lint.Finding.rule_id f.Lint.Finding.rule)
           (Lint.Finding.severity_id f.Lint.Finding.severity)
           (json_escape f.Lint.Finding.message)
           (json_escape (Lint.Finding.hint f.Lint.Finding.rule))))
    report.Lint.Driver.findings;
  if report.Lint.Driver.findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "]}\n";
  print_string (Buffer.contents buf)

let () =
  let allowlist = ref None
  and root = ref "."
  and paths = ref []
  and list_rules = ref false
  and typed = ref false
  and cmt_dir = ref "_build/default"
  and format = ref "text" in
  let spec =
    [
      ( "--allowlist",
        Arg.String (fun s -> allowlist := Some s),
        "FILE checked domain-safety allowlist" );
      ("--root", Arg.Set_string root, "DIR repo root paths are relative to (default .)");
      ("--typed", Arg.Set typed, " also run the typed interprocedural rules over .cmt files");
      ( "--cmt-dir",
        Arg.Set_string cmt_dir,
        "DIR where to look for .cmt files, relative to --root (default _build/default)" );
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " output format (default text)" );
      ("--rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%-18s %s\n    hint: %s\n" (Lint.Finding.rule_id r)
          (Lint.Finding.description r) (Lint.Finding.hint r))
      Lint.Finding.all_rules;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps in
  let typed =
    if not !typed then None
    else if Filename.is_relative !cmt_dir && not (String.equal !root ".") then
      Some (Filename.concat !root !cmt_dir)
    else Some !cmt_dir
  in
  let report = Lint.Driver.lint_paths ?allowlist:!allowlist ?typed ~root:!root paths in
  let n = List.length report.Lint.Driver.findings in
  if String.equal !format "json" then print_json report
  else begin
    List.iter (fun f -> print_endline (Lint.Finding.to_string f)) report.Lint.Driver.findings;
    Printf.printf "subcouple-lint: %d file(s) checked, %d finding(s), %d suppressed\n"
      report.Lint.Driver.files n report.Lint.Driver.suppressed
  end;
  exit (if n > 0 then 1 else 0)
