(* subcouple-lint: the repo's static analysis pass.

   Usage: subcouple-lint [--allowlist FILE] [--root DIR] PATH...

   Parses every .ml under the given paths with the compiler's parser, runs
   the rule catalogue (see DESIGN.md "Static analysis"), prints findings as
   file:line:col diagnostics and exits 1 if any unsuppressed finding
   remains. Wired into the build as `dune build @lint`. *)

let usage = "subcouple-lint [--allowlist FILE] [--root DIR] PATH..."

let () =
  let allowlist = ref None and root = ref "." and paths = ref [] and list_rules = ref false in
  let spec =
    [
      ( "--allowlist",
        Arg.String (fun s -> allowlist := Some s),
        "FILE checked domain-safety allowlist" );
      ("--root", Arg.Set_string root, "DIR repo root paths are relative to (default .)");
      ("--rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%-18s %s\n    hint: %s\n" (Lint.Finding.rule_id r)
          (Lint.Finding.description r) (Lint.Finding.hint r))
      Lint.Finding.all_rules;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps in
  let report = Lint.Driver.lint_paths ?allowlist:!allowlist ~root:!root paths in
  List.iter (fun f -> print_endline (Lint.Finding.to_string f)) report.Lint.Driver.findings;
  let n = List.length report.Lint.Driver.findings in
  Printf.printf "subcouple-lint: %d file(s) checked, %d finding(s), %d suppressed\n"
    report.Lint.Driver.files n report.Lint.Driver.suppressed;
  exit (if n > 0 then 1 else 0)
