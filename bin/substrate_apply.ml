(* substrate_apply: serve a persisted operator artifact — no solver.

     substrate_apply info g.sca                     what the artifact holds
     substrate_apply apply g.sca --column 3         one column of G
     substrate_apply apply g.sca --digest --jobs 4  probe-digest parity check

   This is the other half of the extract-once/apply-many split: the
   expensive black-box solves happened in substrate_extract, which wrote
   the compressed representation to a checksummed .sca file; this tool
   loads it in a fresh process (no eigenfunction or finite-difference
   solver is even constructed) and serves matvecs, column queries and
   further thresholding through the same operator interface. Applications
   are bit-identical to the in-memory representation that was saved, for
   every --jobs value. *)

module Op = Subcouple_op
module Artifact = Subcouple_op.Artifact
open Sparsify
open Cmdliner
open Cli_common

(* Dispatch on the container family: a single-operator artifact (.sca) or
   a shard manifest (.scm, with its shard artifacts alongside). Every
   typed load failure becomes one line on stderr and a rejected-artifact
   exit. *)
let load_or_exit path =
  match Artifact.load_any ~path with
  | loaded -> loaded
  | exception Artifact.Error { path; error } ->
    Printf.eprintf "%s: %s\n" path (Artifact.error_message error);
    exit exit_bad_artifact

let compose_or_exit ~dir m =
  match Op.of_manifest ~dir m with
  | composed -> composed
  | exception Artifact.Error { path; error } ->
    Printf.eprintf "%s: %s\n" path (Artifact.error_message error);
    exit exit_bad_artifact

let print_health health =
  match health with
  | Op.Full -> ()
  | Op.Degraded _ -> Printf.printf "health: %s\n" (Fmt.str "%a" Op.pp_health health)

let artifact_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:
          "Operator artifact (.sca) written by substrate_extract --output, or a shard manifest \
           written by substrate_extract --shards (served as the block-diagonal composition of its \
           complete shards).")

(* ------------------------------------------------------------------ *)
(* info *)

let run_info_manifest path (m : Artifact.Manifest.t) =
  Printf.printf "manifest: %s (format M1, checksum verified)\n" path;
  if not (String.equal m.Artifact.Manifest.source "") then
    Printf.printf "source: %s\n" m.Artifact.Manifest.source;
  Printf.printf "n: %d contacts\n" m.Artifact.Manifest.n;
  let complete = Artifact.Manifest.complete m in
  let quarantined = Artifact.Manifest.quarantined m in
  Printf.printf "shards: %d planned, %d complete, %d quarantined, %d pending\n"
    m.Artifact.Manifest.total_shards (List.length complete) (List.length quarantined)
    (m.Artifact.Manifest.total_shards - Array.length m.Artifact.Manifest.entries);
  Array.iter
    (fun (e : Artifact.Manifest.entry) ->
      Printf.printf "  shard %d: level %d (%d,%d), %d contacts, %s\n"
        e.Artifact.Manifest.shard_id e.Artifact.Manifest.level e.Artifact.Manifest.ix
        e.Artifact.Manifest.iy
        (Array.length e.Artifact.Manifest.contacts)
        (match e.Artifact.Manifest.status with
        | Artifact.Manifest.Complete ->
          Printf.sprintf "complete (%s, %d solves)" e.Artifact.Manifest.file
            e.Artifact.Manifest.solves
        | Artifact.Manifest.Quarantined reason -> Printf.sprintf "quarantined: %s" reason))
    m.Artifact.Manifest.entries;
  (* Composing verifies every shard artifact against its recorded digest. *)
  let op, health = compose_or_exit ~dir:(Filename.dirname path) m in
  Printf.printf "health: %s\n" (Fmt.str "%a" Op.pp_health health);
  Printf.printf "storage: %d floats (dense G would store %d)\n" (Op.storage_floats op)
    (m.Artifact.Manifest.n * m.Artifact.Manifest.n);
  Printf.printf "solves spent extracting: %d (%.1fx reduction over naive)\n" (Op.solves_spent op)
    (Metrics.solve_reduction ~n:m.Artifact.Manifest.n ~solves:(max 1 (Op.solves_spent op)));
  exit_ok

let run_info path =
  match load_or_exit path with
  | `Manifest m -> run_info_manifest path m
  | `Operator a ->
  let repr = Repr.of_artifact a in
  Printf.printf "artifact: %s (format A1, checksum verified)\n" path;
  Printf.printf "kind: %s\n" (if String.equal a.Artifact.kind "" then "(unset)" else a.Artifact.kind);
  if not (String.equal a.Artifact.source "") then Printf.printf "source: %s\n" a.Artifact.source;
  Printf.printf "n: %d contacts\n" a.Artifact.n;
  Printf.printf "solves spent extracting: %d (%.1fx reduction over naive)\n" a.Artifact.solves
    (Metrics.solve_reduction ~n:a.Artifact.n ~solves:a.Artifact.solves);
  Printf.printf "Q: %d nonzeros, sparsity factor %.1f\n" (Sparsemat.Csr.nnz a.Artifact.q)
    (Repr.sparsity_q repr);
  Printf.printf "G_w: %d nonzeros, sparsity factor %.1f\n" (Repr.nnz_gw repr)
    (Repr.sparsity_gw repr);
  Printf.printf "storage: %d floats (dense G would store %d)\n" (Repr.storage_floats repr)
    (a.Artifact.n * a.Artifact.n);
  exit_ok

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Describe an operator artifact: provenance, size, sparsity, build cost.")
    Term.(const run_info $ artifact_arg)

(* ------------------------------------------------------------------ *)
(* apply *)

let print_vector ~label v =
  Printf.printf "%s\n" label;
  let n = Array.length v in
  Array.iteri (fun i c -> if i < 32 then Printf.printf "  I[%d] = %+.5f\n" i c) v;
  if n > 32 then Printf.printf "  ... (%d more)\n" (n - 32);
  Printf.printf "  |I|_2 = %.6g\n" (La.Vec.norm2 v)

let run_apply path jobs threshold columns probes seed digest trace trace_summary =
  trace_setup ~trace ~trace_summary;
  let jobs = resolve_jobs jobs in
  match load_or_exit path with
  | `Manifest _ when threshold > 1.0 ->
    Printf.eprintf "--threshold applies to single-operator artifacts, not shard manifests\n";
    exit_user_error
  | loaded ->
  let op, health =
    match loaded with
    | `Manifest m ->
      let op, health = compose_or_exit ~dir:(Filename.dirname path) m in
      print_health health;
      (op, health)
    | `Operator a ->
      let repr = Repr.of_artifact a in
      let repr = if threshold > 1.0 then Repr.threshold repr ~target:threshold else repr in
      if threshold > 1.0 then
        Printf.printf "thresholded G_w to %d nonzeros (sparsity factor %.1f)\n" (Repr.nnz_gw repr)
          (Repr.sparsity_gw repr);
      (Repr.op repr, Op.Full)
  in
  (* A degraded composition answers masked rows with zeros. That must
     never be silent: every answer served below carries a warning naming
     the masked contacts. *)
  let warn_degraded ~context =
    match Op.degraded_warning ~context health with
    | Some w -> Printf.eprintf "warning: %s\n" w
    | None -> ()
  in
  let code =
    match columns with
    | _ :: _ -> (
      match Op.columns ~jobs op (Array.of_list columns) with
      | cols ->
        let masked = Op.masked_of_health health in
        List.iteri
          (fun k j ->
            warn_degraded ~context:(Printf.sprintf "column %d" j);
            if Array.exists (fun m -> m = j) masked then
              Printf.eprintf "warning: contact %d is itself masked; column %d is all zeros\n" j j;
            print_vector ~label:(Printf.sprintf "column %d of G (unit voltage on contact %d):" j j)
              cols.(k))
          columns;
        exit_ok
      | exception Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit_user_error)
    | [] ->
      let vs = probe_vectors ~n:(Op.n op) ~probes ~seed in
      let responses = Op.apply_batch ~jobs op vs in
      warn_degraded ~context:(Printf.sprintf "%d probe response(s)" (Array.length vs));
      if digest then
        print_endline (probe_digest_line ~probes ~seed ~jobs op)
      else begin
        Printf.printf "applied the operator to %d probe vector(s) (seed %d, jobs %d)\n"
          (Array.length vs) seed jobs;
        Array.iteri
          (fun i r -> Printf.printf "  probe %d: |G v|_2 = %.6g\n" i (La.Vec.norm2 r))
          responses
      end;
      exit_ok
  in
  trace_finish ~trace ~trace_summary;
  code

let columns_arg =
  Arg.(
    value & opt_all int []
    & info [ "column"; "c" ] ~docv:"I"
        ~doc:"Serve column $(docv) of G (repeatable). Without columns, probe vectors are applied.")

let threshold_arg =
  Arg.(
    value & opt float 1.0
    & info [ "threshold"; "t" ] ~docv:"X"
        ~doc:"Threshold the loaded G_w to roughly X times fewer nonzeros before serving (1 = off).")

let probes_arg =
  Arg.(
    value & opt int default_probes
    & info [ "probes" ] ~docv:"K" ~doc:"Number of deterministic probe vectors to apply.")

let probe_seed_arg =
  Arg.(
    value & opt int default_probe_seed
    & info [ "probe-seed" ] ~docv:"SEED" ~doc:"Seed for the deterministic probe vectors.")

let digest_arg =
  Arg.(
    value & flag
    & info [ "digest" ]
        ~doc:
          "Print the probe-response digest instead of norms. Matches substrate_extract \
           --probe-digest when the artifact round-tripped bit-exactly.")

let apply_cmd =
  Cmd.v
    (Cmd.info "apply"
       ~doc:
         "Apply a persisted operator: matvecs, column queries and thresholding, solver-free.")
    Term.(
      const run_apply $ artifact_arg $ jobs_arg $ threshold_arg $ columns_arg $ probes_arg
      $ probe_seed_arg $ digest_arg $ trace_arg $ trace_summary_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Serve matvecs from a persisted substrate operator artifact (no solver needed)." in
  let info = Cmd.info "substrate_apply" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ info_cmd; apply_cmd ]))
