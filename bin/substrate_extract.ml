(* substrate_extract: command-line front end for the substrate coupling
   extraction and sparsification library.

     substrate_extract layouts                        render the built-in layouts
     substrate_extract extract --layout alternating   extract a sparsified model
     substrate_extract extract -o g.sca               ... and persist the operator
     substrate_extract solve --layout regular -c 0    one black-box solve

   The extract command reports the thesis's metrics (sparsity, solve
   reduction, and — with --verify — entrywise error against the exact G).
   With --output FILE.sca the compressed operator is written as a
   checksummed artifact that substrate_apply serves in a fresh process,
   without any solver. *)

module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
open Sparsify
open Cmdliner
open Cli_common

(* ------------------------------------------------------------------ *)
(* layouts *)

let run_layouts per_side seed =
  List.iter
    (fun name ->
      let t =
        Scenario.of_legacy ~layout:name ~per_side:(Option.value per_side ~default:16)
          ~seed:(Option.value seed ~default:7) ~solver:`Eig ~panels:64
      in
      print_string (Layout.render ~width:64 (Scenario.layout t)))
    layout_names;
  exit_ok

let layouts_cmd =
  Cmd.v
    (Cmd.info "layouts" ~doc:"Render the built-in contact layouts as ASCII.")
    Term.(const run_layouts $ per_side_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* scenarios: list / print / check the registry and .scn files *)

let scenario_error_message = function
  | Scenario.Sexp.Error { file; line; col; message } ->
    Some (Scenario.Sexp.format_error ~file ~line ~col ~message)
  | Sys_error msg -> Some msg
  | Invalid_argument msg -> Some msg
  | _ -> None

(* Parse a checked-in file and hold it to the registry contract: the
   print -> parse round trip must be a fixpoint, and a file that names a
   registry scenario must agree with the registry entry. *)
let check_scenario_file path =
  match Scenario.of_file path with
  | exception e -> (
    match scenario_error_message e with Some m -> Error m | None -> raise e)
  | t -> (
    let printed = Scenario.to_string t in
    match Scenario.of_string ~file:(path ^ " (reprinted)") printed with
    | exception e -> (
      match scenario_error_message e with
      | Some m -> Error (Printf.sprintf "%s: reprint does not parse: %s" path m)
      | None -> raise e)
    | t2 ->
      if not (Scenario.equal t t2) then
        Error (Printf.sprintf "%s: print -> parse round trip is not a fixpoint" path)
      else if not (String.equal printed (Scenario.to_string t2)) then
        Error (Printf.sprintf "%s: second print differs from the first" path)
      else
        (match Scenario.find t.Scenario.name with
        | Some reg when not (Scenario.equal reg t) ->
          Error
            (Printf.sprintf "%s: diverges from the registry entry %s (regenerate with: \
                             substrate_extract scenarios --print %s)"
               path t.Scenario.name t.Scenario.name)
        | Some _ | None -> Ok t))

let run_scenarios print_name check_opts files =
  let checks = check_opts @ files in
  match (print_name, checks) with
  | Some name, _ -> (
    match Scenario.load name with
    | exception e -> (
      match scenario_error_message e with
      | Some m ->
        Printf.eprintf "%s\n" m;
        exit_user_error
      | None -> raise e)
    | t ->
      print_string (Scenario.to_string t);
      exit_ok)
  | None, [] ->
    List.iter print_endline (Scenario.list_lines ());
    exit_ok
  | None, checks ->
    let failures =
      List.filter_map
        (fun path ->
          match check_scenario_file path with
          | Ok t ->
            Printf.printf "ok %s (%s, %d contacts)\n" path t.Scenario.name
              (Layout.n_contacts (Scenario.layout t));
            None
          | Error m ->
            Printf.printf "FAIL %s\n" m;
            Some path)
        checks
    in
    if failures = [] then exit_ok else exit_user_error

let print_scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "print" ] ~docv:"NAME|FILE"
        ~doc:"Print the canonical .scn text of a scenario (checked-in files are regenerated this way).")

let check_scenario_arg =
  Arg.(
    value & opt_all string []
    & info [ "check" ] ~docv:"FILE"
        ~doc:
          "Parse $(docv), verify the print -> parse round-trip fixpoint and (for registry names) \
           agreement with the built-in entry. Repeatable; any failure exits 1.")

let scenario_files_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Additional .scn files to check (same as --check).")

let scenarios_cmd =
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:"List the scenario registry, print canonical .scn text, or check .scn files.")
    Term.(const run_scenarios $ print_scenario_arg $ check_scenario_arg $ scenario_files_arg)

(* ------------------------------------------------------------------ *)
(* extract *)

(* --chaos FAULT[:EVERY[:OFFSET[:SEED]]] (testing only). *)
let parse_chaos spec =
  let fail () =
    invalid_arg
      (Printf.sprintf "--chaos %S: expected FAULT[:EVERY[:OFFSET[:SEED]]] with FAULT one of \
                       transient, nan, nonconv, perturb, kill" spec)
  in
  let fault_of = function
    | "transient" -> Substrate.Chaos.Transient
    | "nan" -> Substrate.Chaos.Nan_response
    | "nonconv" -> Substrate.Chaos.Non_convergence
    | "perturb" -> Substrate.Chaos.Perturb 1e-6
    | "kill" -> Substrate.Chaos.Kill
    | _ -> fail ()
  in
  let int_of s = match int_of_string_opt s with Some i -> i | None -> fail () in
  match String.split_on_char ':' spec with
  | [ f ] -> (fault_of f, 7, 0, 0)
  | [ f; e ] -> (fault_of f, int_of e, 0, 0)
  | [ f; e; o ] -> (fault_of f, int_of e, int_of o, 0)
  | [ f; e; o; s ] -> (fault_of f, int_of e, int_of o, int_of s)
  | _ -> fail ()

let policy_of_resilience mode max_attempts =
  match mode with
  | `Off -> None
  | `Retry -> Some { Substrate.Resilient.default_policy with max_attempts }
  | `Degrade -> Some { Substrate.Resilient.degrade with max_attempts }
  | `Fail_fast -> Some Substrate.Resilient.fail_fast

let method_name = function `Lowrank -> "lowrank" | `Wavelet -> "wavelet"

(* --output FILE.sca persists the operator artifact; any other value keeps
   the Matrix Market export of the two factors. *)
let write_output repr ~problem ~layout ~method_ ~threshold path =
  if Filename.check_suffix path ".sca" then begin
    let source =
      problem_source problem
        ~extra:(if threshold > 1.0 then Printf.sprintf " --threshold %g" threshold else "")
    in
    Repr.save repr ~kind:(method_name method_) ~source ~path;
    Printf.printf "wrote %s (operator artifact: n = %d, %d + %d stored nonzeros)\n" path
      repr.Repr.n (Sparsemat.Csr.nnz repr.Repr.q) (Repr.nnz_gw repr)
  end
  else begin
    let write suffix m comment =
      let file = path ^ suffix in
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Sparsemat.Csr.to_matrix_market ~comment m oc);
      Printf.printf "wrote %s\n" file
    in
    write ".q.mtx" repr.Repr.q (Printf.sprintf "change of basis Q for %s" layout.Layout.name);
    write ".gw.mtx" repr.Repr.gw
      (Printf.sprintf "transformed G_w for %s (G ~ Q G_w Q')" layout.Layout.name)
  end

(* --shards LEVEL: the crash-safe multi-shard path. Each nonempty quadtree
   region at LEVEL is an independent fault domain with its own checkpoint
   and artifact inside --output DIR, tied together by a versioned manifest;
   the run streams shards to disk and a re-run with --resume skips what is
   already there. Incompatible with the single-artifact options. *)
let run_sharded problem ~jobs ~method_ ~output ~probe_digest ~resilience ~max_attempts ~chaos
    ~trace ~trace_summary ~shard_level ~resume =
  let layout = layout_of_problem problem in
  let n = Layout.n_contacts layout in
  Printf.printf "layout: %s (%d contacts)\n%!" layout.Layout.name n;
  if jobs > 1 then Printf.printf "jobs: %d (batched solves run on a domain pool)\n%!" jobs;
  match output with
  | None ->
    Printf.eprintf "--shards needs --output DIR: the directory for shard artifacts and manifest\n";
    exit_user_error
  | Some dir when Filename.check_suffix dir ".sca" ->
    Printf.eprintf "--shards writes a directory of shard artifacts; --output must not be a .sca file\n";
    exit_user_error
  | Some dir ->
    if Sys.file_exists (Substrate.Shard.manifest_path dir) && not resume then begin
      Printf.eprintf "%s already holds a shard manifest; pass --resume to continue that run\n"
        (Substrate.Shard.manifest_path dir);
      exit_user_error
    end
    else begin
      let base_bb, fallbacks = solver_stack problem layout in
      let chaos_t =
        Option.map
          (fun spec ->
            let fault, every, offset, seed = parse_chaos spec in
            Printf.printf "chaos: injecting faults at every %d-th solve (offset %d)\n%!" every
              offset;
            Substrate.Chaos.create ~seed ~offset ~every ~fault base_bb)
          chaos
      in
      let bb = match chaos_t with Some c -> Substrate.Chaos.box c | None -> base_bb in
      (* Sharding always numbers solves through a Resilient wrapper (the
         run-global indices the chaos/kill machinery addresses); with
         --resilience off that wrapper is fail-fast with no ladder. *)
      let policy =
        match policy_of_resilience resilience max_attempts with
        | Some p -> p
        | None -> Substrate.Resilient.fail_fast
      in
      let fallbacks =
        match resilience with `Off | `Fail_fast -> [] | `Retry | `Degrade -> fallbacks
      in
      let source =
        problem_source problem
          ~extra:(Printf.sprintf " --method %s --shards %d" (method_name method_) shard_level)
      in
      match
        Sharded.extract ~jobs ~policy ~fallbacks ~source ~method_ ~shard_level ~dir layout bb
      with
      | exception Substrate.Shard.Mismatch message ->
        Printf.eprintf "%s\n" message;
        exit_user_error
      | m, prog ->
        Printf.printf "shards: %d planned, %d skipped, %d extracted, %d recovered, %d quarantined\n"
          prog.Substrate.Shard.planned prog.Substrate.Shard.skipped prog.Substrate.Shard.extracted
          prog.Substrate.Shard.recovered prog.Substrate.Shard.quarantined;
        Printf.printf "solves: total=%d cached=%d live=%d\n" prog.Substrate.Shard.total_solves
          prog.Substrate.Shard.cached_solves prog.Substrate.Shard.live_solves;
        (match chaos_t with
        | Some c -> Printf.printf "chaos: %d fault(s) injected\n" (Substrate.Chaos.injected c)
        | None -> ());
        List.iter
          (fun (e : Subcouple_op.Artifact.Manifest.entry) ->
            match e.Subcouple_op.Artifact.Manifest.status with
            | Subcouple_op.Artifact.Manifest.Quarantined reason ->
              Printf.printf "  quarantined shard %d: %s\n" e.Subcouple_op.Artifact.Manifest.shard_id
                reason
            | Subcouple_op.Artifact.Manifest.Complete -> ())
          (Array.to_list m.Subcouple_op.Artifact.Manifest.entries);
        (* Compose from disk — exactly what substrate_apply will serve. *)
        (match Subcouple_op.of_manifest ~dir m with
        | exception Subcouple_op.Artifact.Error { path; error } ->
          Printf.eprintf "%s: %s\n" path (Subcouple_op.Artifact.error_message error);
          trace_finish ~trace ~trace_summary;
          exit_bad_artifact
        | op, health ->
          Printf.printf "health: %s\n" (Fmt.str "%a" Subcouple_op.pp_health health);
          if probe_digest then print_endline (probe_digest_line ~jobs op);
          let solver_health = Substrate.Health.summary (Blackbox.health base_bb) in
          Printf.printf "solver health: %s%s\n"
            (Fmt.str "%a" Substrate.Health.pp_summary solver_health)
            (if Substrate.Health.healthy solver_health then "" else "  [CHECK QUALITY]");
          trace_finish ~trace ~trace_summary;
          exit_ok)
    end

let run_extract problem_res jobs method_ threshold verify estimate spy output probe_digest
    resilience max_attempts checkpoint chaos shards resume trace trace_summary =
  with_problem problem_res @@ fun problem ->
  trace_setup ~trace ~trace_summary;
  match shards with
  | Some shard_level ->
    let jobs = resolve_jobs jobs in
    let incompatible =
      List.filter_map Fun.id
        [
          (if threshold > 1.0 then Some "--threshold" else None);
          (if verify then Some "--verify" else None);
          (if estimate then Some "--estimate" else None);
          (if spy then Some "--spy" else None);
          (if Option.is_some checkpoint then Some "--checkpoint" else None);
        ]
    in
    if incompatible <> [] then begin
      Printf.eprintf "--shards is incompatible with %s (shards have their own checkpoints; \
                      post-processing applies to single artifacts)\n"
        (String.concat ", " incompatible);
      exit_user_error
    end
    else
      run_sharded problem ~jobs ~method_ ~output ~probe_digest ~resilience ~max_attempts ~chaos
        ~trace ~trace_summary ~shard_level ~resume
  | None ->
  let layout = layout_of_problem problem in
  let n = Layout.n_contacts layout in
  let jobs = resolve_jobs jobs in
  Printf.printf "layout: %s (%d contacts)\n%!" layout.Layout.name n;
  if jobs > 1 then Printf.printf "jobs: %d (batched solves run on a domain pool)\n%!" jobs;
  let base_bb, fallbacks = solver_stack problem layout in
  (* Wrapper stack, inside out: solver -> fault injection -> retry policy ->
     checkpoint -> extraction. *)
  let chaos_t =
    Option.map
      (fun spec ->
        let fault, every, offset, seed = parse_chaos spec in
        Printf.printf "chaos: injecting faults at every %d-th solve (offset %d)\n%!" every offset;
        Substrate.Chaos.create ~seed ~offset ~every ~fault base_bb)
      chaos
  in
  let bb = match chaos_t with Some c -> Substrate.Chaos.box c | None -> base_bb in
  let resilient_t =
    Option.map
      (fun policy -> Substrate.Resilient.create ~policy ~fallbacks bb)
      (policy_of_resilience resilience max_attempts)
  in
  let bb = match resilient_t with Some r -> Substrate.Resilient.blackbox r | None -> bb in
  match Option.map Substrate.Checkpoint.create checkpoint with
  | exception Substrate.Checkpoint.Corrupt message ->
    (* A mistyped --checkpoint path must not clobber the file it names. *)
    Printf.eprintf "checkpoint: %s\n" message;
    exit_user_error
  | ck ->
  (match ck with
  | Some ck when Substrate.Checkpoint.stages_on_disk ck > 0 ->
    Printf.printf "checkpoint: %s holds %d completed stage(s)\n%!" (Substrate.Checkpoint.path ck)
      (Substrate.Checkpoint.stages_on_disk ck)
  | _ -> ());
  let finish_checkpoint () =
    match ck with
    | None -> ()
    | Some ck ->
      if Substrate.Checkpoint.hits ck > 0 then
        Printf.printf "checkpoint: replayed %d stage(s), %d solve(s) not repeated\n"
          (Substrate.Checkpoint.hits ck)
          (Substrate.Checkpoint.cached_solves ck);
      Substrate.Checkpoint.close ck
  in
  let report_resilience () =
    (match chaos_t with
    | Some c -> Printf.printf "chaos: %d fault(s) injected\n" (Substrate.Chaos.injected c)
    | None -> ());
    match resilient_t with
    | None -> ()
    | Some r ->
      Printf.printf "resilience: %d retried attempt(s), %d degraded solve(s)\n"
        (Substrate.Resilient.retries r) (Substrate.Resilient.degraded_count r);
      List.iteri
        (fun i f ->
          if i < 5 then Printf.printf "  %s\n" (Fmt.str "%a" Substrate.Resilient.pp_failure f))
        (Substrate.Resilient.failures r)
  in
  match
    (match method_ with
    | `Lowrank -> Lowrank.extract ~jobs ?checkpoint:ck layout bb
    | `Wavelet -> Wavelet.extract ~jobs ?checkpoint:ck (Wavelet.create ~p:2 layout) bb)
  with
  | exception Blackbox.Solve_failed { index; reason } ->
    (* Completed stages are already on disk: a later run with the same
       --checkpoint resumes where this one failed. *)
    finish_checkpoint ();
    report_resilience ();
    trace_finish ~trace ~trace_summary;
    Printf.eprintf "extraction failed at solve %d: %s\n" index reason;
    exit_solve_failed
  | repr ->
  let repr = if threshold > 1.0 then Repr.threshold repr ~target:threshold else repr in
  Printf.printf "solves: %d (%.1fx reduction over naive)\n" repr.Repr.solves
    (Metrics.solve_reduction ~n ~solves:repr.Repr.solves);
  Printf.printf "G_w: %d nonzeros, sparsity factor %.1f\n" (Repr.nnz_gw repr) (Repr.sparsity_gw repr);
  Printf.printf "Q: sparsity factor %.1f\n" (Repr.sparsity_q repr);
  if spy then Sparsemat.Spy.print ~width:64 repr.Repr.gw;
  if estimate then begin
    let est = Metrics.estimate_apply_error ~exact:(Blackbox.op bb) ~approx:(Repr.op repr) () in
    Printf.printf "probe estimate (%d probes, %d extra solves): mean rel residual %.2e, max %.2e\n"
      est.Metrics.probes est.Metrics.extra_solves est.Metrics.mean_rel_residual
      est.Metrics.max_rel_residual
  end;
  if verify then begin
    Printf.printf "verifying against exact G (%d naive solves)...\n%!" n;
    let exact_bb = blackbox_of problem layout in
    let g = Blackbox.extract_dense ~jobs exact_bb in
    let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
    Printf.printf "entrywise error: %s\n" (Fmt.str "%a" Metrics.pp_error err)
  end;
  (* The digest covers exactly what --output persists (post-threshold), so
     a fresh-process substrate_apply of the artifact must reproduce it. *)
  if probe_digest then print_endline (probe_digest_line ~jobs (Repr.op repr));
  Option.iter (write_output repr ~problem ~layout ~method_ ~threshold) output;
  finish_checkpoint ();
  report_resilience ();
  let health = Substrate.Health.summary (Blackbox.health base_bb) in
  Printf.printf "solver health: %s%s\n"
    (Fmt.str "%a" Substrate.Health.pp_summary health)
    (if Substrate.Health.healthy health then "" else "  [CHECK QUALITY]");
  trace_finish ~trace ~trace_summary;
  exit_ok

let method_arg =
  Arg.(
    value
    & opt (enum [ ("lowrank", `Lowrank); ("wavelet", `Wavelet) ]) `Lowrank
    & info [ "method"; "m" ] ~docv:"M"
        ~doc:"Sparsification method: lowrank (Chapter 4) or wavelet (Chapter 3).")

let threshold_arg =
  Arg.(
    value & opt float 1.0
    & info [ "threshold"; "t" ] ~docv:"X"
        ~doc:"Threshold G_w to roughly X times fewer nonzeros (1 = off).")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Extract the exact G naively and report entrywise error.")

let estimate_arg =
  Arg.(
    value & flag
    & info [ "estimate" ] ~doc:"Cheap a-posteriori error estimate from a few random probe solves.")

let spy_arg = Arg.(value & flag & info [ "spy" ] ~doc:"Print an ASCII spy plot of G_w.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE"
        ~doc:
          "Persist the extracted operator. FILE.sca writes a checksummed operator artifact (servable \
           by substrate_apply without a solver); any other value writes Q and G_w as Matrix Market \
           files FILE.q.mtx / FILE.gw.mtx.")

let probe_digest_arg =
  Arg.(
    value & flag
    & info [ "probe-digest" ]
        ~doc:
          "Print a hex digest of the representation's responses to deterministic probe vectors. \
           substrate_apply prints the same digest for an artifact that round-tripped bit-exactly.")

let resilience_arg =
  Arg.(
    value
    & opt
        (enum [ ("off", `Off); ("retry", `Retry); ("degrade", `Degrade); ("fail-fast", `Fail_fast) ])
        `Off
    & info [ "resilience" ] ~docv:"MODE"
        ~doc:
          "Solve failure policy: off (failures propagate), retry (re-solve up to --max-attempts \
           times, escalating through tighter tolerances / better preconditioners / a direct \
           fallback, then fail), degrade (as retry, but substitute the best-effort iterate and \
           record the failure instead of failing), fail-fast (any fault aborts immediately).")

let max_attempts_arg =
  Arg.(
    value & opt int 3
    & info [ "max-attempts" ] ~docv:"N" ~doc:"Attempts per solve under --resilience retry/degrade.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Persist completed solve stages to $(docv) and resume from it: an interrupted extraction \
           re-run with the same parameters repeats no finished solve.")

let chaos_arg =
  (* Testing hook: kept out of the main option listing. *)
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC" ~docs:"TESTING (INTERNAL)"
        ~doc:
          "Inject deterministic solver faults (testing only): \
           FAULT[:EVERY[:OFFSET[:SEED]]] with FAULT one of transient, nan, nonconv, perturb, \
           kill (SIGKILL the process at the fault site).")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"LEVEL"
        ~doc:
          "Crash-safe sharded extraction: split the layout into the nonempty quadtree regions at \
           $(docv), each an independent fault domain with its own checkpoint and artifact inside \
           --output DIR, tied together by a checksummed manifest (servable by substrate_apply). A \
           shard whose solves exhaust the resilience ladder is quarantined instead of aborting \
           the run.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Continue an interrupted --shards run: complete shards are skipped, a half-done shard \
           replays its checkpoint, quarantined shards are retried.")

let extract_cmd =
  Cmd.v
    (Cmd.info "extract" ~doc:"Extract a sparsified conductance representation G ~ Q G_w Q'.")
    Term.(
      const run_extract $ problem_term $ jobs_arg $ method_arg $ threshold_arg $ verify_arg
      $ estimate_arg $ spy_arg $ output_arg $ probe_digest_arg $ resilience_arg $ max_attempts_arg
      $ checkpoint_arg $ chaos_arg $ shards_arg $ resume_arg $ trace_arg $ trace_summary_arg)

(* ------------------------------------------------------------------ *)
(* solve *)

let run_solve problem_res contact =
  with_problem problem_res @@ fun problem ->
  let layout = layout_of_problem problem in
  let n = Layout.n_contacts layout in
  if contact < 0 || contact >= n then begin
    Printf.eprintf "contact index %d out of range (0..%d)\n" contact (n - 1);
    exit_user_error
  end
  else begin
    let bb = blackbox_of problem layout in
    let v = Array.make n 0.0 in
    v.(contact) <- 1.0;
    let currents = Blackbox.apply bb v in
    Printf.printf "currents with 1 V on contact %d (all others grounded):\n" contact;
    Array.iteri
      (fun i c -> if i < 32 || i = contact then Printf.printf "  I[%d] = %+.5f\n" i c)
      currents;
    if n > 32 then Printf.printf "  ... (%d more)\n" (n - 32);
    Printf.printf "sum of currents: %+.5f (current escaping through the backplane)\n"
      (La.Vec.sum currents);
    exit_ok
  end

let contact_arg =
  Arg.(value & opt int 0 & info [ "contact"; "c" ] ~docv:"I" ~doc:"Contact to drive with 1 V.")

let solve_cmd =
  Cmd.v
    (Cmd.info "solve" ~doc:"Run one black-box substrate solve and print contact currents.")
    Term.(const run_solve $ problem_term $ contact_arg)

(* ------------------------------------------------------------------ *)

(* Top level: subcommands, plus --list-scenarios as a bare flag. *)
let list_scenarios_arg =
  Arg.(
    value & flag
    & info [ "list-scenarios" ]
        ~doc:"Print the scenario registry (name and one-line description per entry) and exit.")

let default_term =
  let run list_scenarios =
    if list_scenarios then begin
      List.iter print_endline (Scenario.list_lines ());
      `Ok exit_ok
    end
    else `Help (`Pager, None)
  in
  Term.(ret (const run $ list_scenarios_arg))

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let doc = "Substrate coupling extraction and sparsification (Kanapka/Phillips/White, DAC 2000)." in
  let info = Cmd.info "substrate_extract" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group ~default:default_term info [ layouts_cmd; scenarios_cmd; extract_cmd; solve_cmd ]))
