(* Shared CLI plumbing for the substrate tools (substrate_extract,
   substrate_apply): the typed problem configuration with its cmdliner
   terms, the solver escalation stacks, consistent exit codes, and the
   deterministic probe-digest machinery both binaries use to prove that a
   served artifact applies bit-identically to the representation that was
   extracted. *)

module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Exit codes, shared across the tools so scripts and CI can dispatch on
   them: 0 success, 1 user error, 2 operational failure — a black-box
   solve failed during extraction, or an operator artifact / shard
   manifest was rejected (missing, torn, corrupt, or wrong version).
   cmdliner reserves 123-125. *)

let exit_ok = 0
let exit_user_error = 1
let exit_solve_failed = 2
let exit_bad_artifact = 2

(* ------------------------------------------------------------------ *)
(* Problem configuration: a Scenario.t, resolved either from
   --scenario NAME|FILE or from the legacy --layout/--per-side/--seed
   aliases (which route through the same registry). *)

type problem = Scenario.t

let layout_names = [ "regular"; "irregular"; "alternating"; "mixed"; "large" ]

let layout_of_problem = Scenario.layout

let scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME|FILE"
        ~doc:
          "Problem definition: a registry name (see --list-scenarios) or a .scn config file. \
           --per-side, --seed, --solver and --panels override the scenario's knobs; --layout is \
           the legacy alias for the five registry layouts and is mutually exclusive with \
           --scenario.")

let layout_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun n -> (n, n)) layout_names))) None
    & info [ "layout"; "l" ] ~docv:"NAME"
        ~doc:
          "Contact layout: regular, irregular, alternating, mixed, large (legacy alias for \
           --scenario NAME).")

let per_side_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "per-side" ] ~docv:"N" ~doc:"Cells per side of the layout grid (default 16).")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for generated layouts (default 7).")

let panels_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "panels" ] ~docv:"P"
        ~doc:"Surface panels per side for the eigenfunction solver (default 64).")

let solver_arg =
  Arg.(
    value
    & opt (some (enum [ ("eig", `Eig); ("fd", `Fd); ("fd-direct", `Fd_direct) ])) None
    & info [ "solver" ] ~docv:"S"
        ~doc:
          "Substrate solver: eig (eigenfunction/DCT), fd (finite difference, PCG), or fd-direct \
           (finite difference, sparse Cholesky). Default: the scenario's hint (eig for the \
           legacy layouts).")

(* Resolve the flags to a scenario, reporting config errors as data (a
   cmdliner term must not raise). *)
let resolve_problem scenario layout per_side seed solver panels : (problem, string) result =
  match
    match scenario with
    | Some spec ->
      if Option.is_some layout then
        invalid_arg "--scenario and --layout are mutually exclusive (the latter is a registry alias)";
      let t = Scenario.load spec in
      let t = match per_side with Some n -> Scenario.with_per_side t n | None -> t in
      let t = match seed with Some s -> Scenario.with_seed t s | None -> t in
      let t = match solver with Some k -> Scenario.with_solver t k | None -> t in
      let t = match panels with Some p -> Scenario.with_panels t p | None -> t in
      t
    | None ->
      Scenario.of_legacy
        ~layout:(Option.value layout ~default:"regular")
        ~per_side:(Option.value per_side ~default:16)
        ~seed:(Option.value seed ~default:7)
        ~solver:(Option.value solver ~default:`Eig)
        ~panels:(Option.value panels ~default:64)
  with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg
  | exception Sys_error msg -> Error msg
  | exception Scenario.Sexp.Error { file; line; col; message } ->
    Error (Scenario.Sexp.format_error ~file ~line ~col ~message)

let problem_term =
  Term.(
    const resolve_problem $ scenario_arg $ layout_arg $ per_side_arg $ seed_arg $ solver_arg
    $ panels_arg)

(* Unwrap a resolved problem, mapping config errors to exit code 1. *)
let with_problem problem_res f =
  match problem_res with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit_user_error
  | Ok p -> f p

(* ------------------------------------------------------------------ *)
(* Parallelism. *)

(* ------------------------------------------------------------------ *)
(* Tracing. Both binaries expose the same two flags: --trace FILE writes
   Chrome trace_event JSON (about:tracing / ui.perfetto.dev) covering the
   pool, Krylov, black-box and extraction-phase spans; --trace-summary
   prints the aggregate span/distribution/counter table. Either flag turns
   recording on; without them the instrumentation stays on its disabled
   (single atomic load) path. Tracing never changes results: probe digests
   are bit-identical with tracing on or off, for every --jobs. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans, counters and value distributions for the whole run and write them to \
           $(docv) as Chrome trace_event JSON (loadable in about:tracing or ui.perfetto.dev). \
           Results are bit-identical with or without tracing.")

let trace_summary_arg =
  Arg.(
    value & flag
    & info [ "trace-summary" ]
        ~doc:
          "Record traces and print an aggregate summary (per span: count, total, mean, max \
           seconds; plus distributions and counters) when the command finishes.")

let trace_setup ~trace ~trace_summary =
  if Option.is_some trace || trace_summary then Trace.set_enabled true

let trace_finish ~trace ~trace_summary =
  (match trace with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Trace.write_chrome oc);
    Printf.printf "wrote %s (%d trace events; load in about:tracing or ui.perfetto.dev)\n" path
      (Trace.event_count ()));
  if trace_summary then Format.printf "%a@?" Trace.pp_summary (Trace.summary ())

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for batched applications (1 = sequential, 0 = auto: one less than the \
           recommended domain count). Results are bit-identical for every value.")

let resolve_jobs jobs = if jobs <= 0 then Parallel.Pool.default_jobs () else jobs

(* ------------------------------------------------------------------ *)
(* Solver construction: the scenario owns the escalation ladder. *)

let solver_stack = Scenario.solver_stack
let blackbox_of = Scenario.blackbox

(* The canonical CLI spelling of a problem, recorded in artifacts. *)
let problem_source ?(extra = "") p =
  Printf.sprintf "substrate_extract --scenario %s --solver %s%s" p.Scenario.name
    (Scenario.solver_name p.Scenario.solver) extra

(* ------------------------------------------------------------------ *)
(* Probe digests: the cross-process parity check.

   Both binaries generate the same deterministic Gaussian probe vectors
   (fixed seed), apply an operator to them, and hash the exact IEEE-754
   bit patterns of the responses. If substrate_extract's digest of the
   in-memory representation equals substrate_apply's digest of the loaded
   artifact — in a different process, at any --jobs — the round trip is
   bit-exact. *)

let default_probes = 5
let default_probe_seed = 1234

let probe_vectors ~n ~probes ~seed =
  let rng = La.Rng.create seed in
  (* Explicit loop: the draws must consume the generator in index order. *)
  let vs = Array.make probes [||] in
  for i = 0 to probes - 1 do
    vs.(i) <- La.Rng.gaussian_array rng n
  done;
  vs

(* Hash the exact bit patterns (lengths included), so two digests agree
   iff every response component is identical to the last bit. *)
let response_digest (responses : La.Vec.t array) =
  let b = Buffer.create 4096 in
  Buffer.add_int64_le b (Int64.of_int (Array.length responses));
  Array.iter
    (fun v ->
      Buffer.add_int64_le b (Int64.of_int (Array.length v));
      Array.iter (fun x -> Buffer.add_int64_le b (Int64.bits_of_float x)) v)
    responses;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The digest line from responses already in hand: substrate_serve's
   client hashes what came over the socket instead of applying locally,
   so equality with substrate_apply --digest proves socket transport is
   bit-exact too. *)
let probe_digest_line_of_responses ?(probes = default_probes) ?(seed = default_probe_seed) ~n
    responses =
  Printf.sprintf "probe digest: %s (%d probes, seed %d, n %d)" (response_digest responses) probes
    seed n

let probe_digest_line ?(probes = default_probes) ?(seed = default_probe_seed) ~jobs op =
  let n = Subcouple_op.n op in
  let responses = Subcouple_op.apply_batch ~jobs op (probe_vectors ~n ~probes ~seed) in
  probe_digest_line_of_responses ~probes ~seed ~n responses
