(* Shared CLI plumbing for the substrate tools (substrate_extract,
   substrate_apply): the typed problem configuration with its cmdliner
   terms, the solver escalation stacks, consistent exit codes, and the
   deterministic probe-digest machinery both binaries use to prove that a
   served artifact applies bit-identically to the representation that was
   extracted. *)

module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Exit codes, shared across the tools so scripts and CI can dispatch on
   them: 0 success, 1 user error, 2 operational failure — a black-box
   solve failed during extraction, or an operator artifact / shard
   manifest was rejected (missing, torn, corrupt, or wrong version).
   cmdliner reserves 123-125. *)

let exit_ok = 0
let exit_user_error = 1
let exit_solve_failed = 2
let exit_bad_artifact = 2

(* ------------------------------------------------------------------ *)
(* Problem configuration: which layout and which solver. *)

type problem = {
  layout_name : string;
  per_side : int;
  seed : int;
  solver : [ `Eig | `Fd | `Fd_direct ];
  panels : int;
}

let layout_names = [ "regular"; "irregular"; "alternating"; "mixed"; "large" ]

let make_layout name per_side seed =
  let rng = La.Rng.create seed in
  match name with
  | "regular" -> Layout.regular_grid ~size:128.0 ~per_side ~fill:0.5 ()
  | "irregular" -> Layout.irregular ~size:128.0 ~per_side ~fill:0.4 rng ()
  | "alternating" -> Layout.alternating ~size:128.0 ~per_side ()
  | "mixed" -> Layout.mixed_shapes ~size:128.0 ~per_side:(max 16 per_side) ()
  | "large" -> Layout.large_mixed ~size:128.0 ~per_side rng ()
  | other -> invalid_arg (Printf.sprintf "unknown layout %S" other)

let layout_of_problem p = make_layout p.layout_name p.per_side p.seed

let layout_arg =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) layout_names)) "regular"
    & info [ "layout"; "l" ] ~docv:"NAME"
        ~doc:"Contact layout: regular, irregular, alternating, mixed, large.")

let per_side_arg =
  Arg.(value & opt int 16 & info [ "per-side" ] ~docv:"N" ~doc:"Cells per side of the layout grid.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for generated layouts.")

let panels_arg =
  Arg.(
    value & opt int 64
    & info [ "panels" ] ~docv:"P" ~doc:"Surface panels per side for the eigenfunction solver.")

let solver_arg =
  Arg.(
    value
    & opt (enum [ ("eig", `Eig); ("fd", `Fd); ("fd-direct", `Fd_direct) ]) `Eig
    & info [ "solver" ] ~docv:"S"
        ~doc:
          "Substrate solver: eig (eigenfunction/DCT), fd (finite difference, PCG), or fd-direct \
           (finite difference, sparse Cholesky).")

let problem_term =
  let pack layout_name per_side seed solver panels = { layout_name; per_side; seed; solver; panels } in
  Term.(const pack $ layout_arg $ per_side_arg $ seed_arg $ solver_arg $ panels_arg)

(* ------------------------------------------------------------------ *)
(* Parallelism. *)

(* ------------------------------------------------------------------ *)
(* Tracing. Both binaries expose the same two flags: --trace FILE writes
   Chrome trace_event JSON (about:tracing / ui.perfetto.dev) covering the
   pool, Krylov, black-box and extraction-phase spans; --trace-summary
   prints the aggregate span/distribution/counter table. Either flag turns
   recording on; without them the instrumentation stays on its disabled
   (single atomic load) path. Tracing never changes results: probe digests
   are bit-identical with tracing on or off, for every --jobs. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans, counters and value distributions for the whole run and write them to \
           $(docv) as Chrome trace_event JSON (loadable in about:tracing or ui.perfetto.dev). \
           Results are bit-identical with or without tracing.")

let trace_summary_arg =
  Arg.(
    value & flag
    & info [ "trace-summary" ]
        ~doc:
          "Record traces and print an aggregate summary (per span: count, total, mean, max \
           seconds; plus distributions and counters) when the command finishes.")

let trace_setup ~trace ~trace_summary =
  if Option.is_some trace || trace_summary then Trace.set_enabled true

let trace_finish ~trace ~trace_summary =
  (match trace with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Trace.write_chrome oc);
    Printf.printf "wrote %s (%d trace events; load in about:tracing or ui.perfetto.dev)\n" path
      (Trace.event_count ()));
  if trace_summary then Format.printf "%a@?" Trace.pp_summary (Trace.summary ())

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for batched applications (1 = sequential, 0 = auto: one less than the \
           recommended domain count). Results are bit-identical for every value.")

let resolve_jobs jobs = if jobs <= 0 then Parallel.Pool.default_jobs () else jobs

(* ------------------------------------------------------------------ *)
(* Solver construction. *)

(* A grid-friendly layered profile: h = 2 at nx = 64. *)
let fd_profile () =
  Profile.make ~a:128.0 ~b:128.0
    ~layers:
      [
        { Profile.thickness = 2.0; conductivity = 1.0 };
        { Profile.thickness = 28.0; conductivity = 100.0 };
        { Profile.thickness = 2.0; conductivity = 0.1 };
      ]
    ~backplane:Profile.Grounded

(* The primary box plus its escalation ladder for --resilience: each rung is
   lazy, so a ladder that is never climbed costs nothing (a re-plan or a
   direct factorization is expensive). *)
let solver_stack p layout =
  let profile = Profile.thesis_default () in
  match p.solver with
  | `Eig ->
    let s = Eigsolver.Eig_solver.create profile layout ~panels_per_side:p.panels in
    let fallbacks =
      [
        ( "eig tol=1e-11 4x iterations",
          lazy
            (Eigsolver.Eig_solver.blackbox
               (Eigsolver.Eig_solver.with_tolerance ~tol:1e-11 ~max_iter:8000 s)) );
        ( "eig re-plan tol=1e-11 16x iterations",
          lazy
            (Eigsolver.Eig_solver.blackbox
               (Eigsolver.Eig_solver.create ~tol:1e-11 ~max_iter:32000 profile layout
                  ~panels_per_side:p.panels)) );
      ]
    in
    (Eigsolver.Eig_solver.blackbox s, fallbacks)
  | `Fd ->
    let fd_profile = fd_profile () in
    let s =
      Fdsolver.Fd_solver.create
        ~precond:(Fdsolver.Fd_solver.Fast_poisson (Fdsolver.Fd_solver.area_fraction layout))
        fd_profile layout ~nx:64 ~nz:16
    in
    let fallbacks =
      [
        ( "fd tol=1e-11 4x iterations",
          lazy
            (Fdsolver.Fd_solver.blackbox
               (Fdsolver.Fd_solver.with_tolerance ~tol:1e-11 ~max_iter:20000 s)) );
        ( "fd ICCG tol=1e-11",
          lazy
            (Fdsolver.Fd_solver.blackbox
               (Fdsolver.Fd_solver.create ~precond:Fdsolver.Fd_solver.Ic0 ~tol:1e-11 ~max_iter:20000
                  fd_profile layout ~nx:64 ~nz:16)) );
        ( "fd direct (sparse Cholesky, coarse grid)",
          lazy
            (Fdsolver.Direct_solver.blackbox
               (Fdsolver.Direct_solver.create fd_profile layout ~nx:32 ~nz:8)) );
      ]
    in
    (Fdsolver.Fd_solver.blackbox s, fallbacks)
  | `Fd_direct ->
    let s = Fdsolver.Direct_solver.create (fd_profile ()) layout ~nx:32 ~nz:8 in
    (Fdsolver.Direct_solver.blackbox s, [])

let blackbox_of p layout = fst (solver_stack p layout)

(* ------------------------------------------------------------------ *)
(* Probe digests: the cross-process parity check.

   Both binaries generate the same deterministic Gaussian probe vectors
   (fixed seed), apply an operator to them, and hash the exact IEEE-754
   bit patterns of the responses. If substrate_extract's digest of the
   in-memory representation equals substrate_apply's digest of the loaded
   artifact — in a different process, at any --jobs — the round trip is
   bit-exact. *)

let default_probes = 5
let default_probe_seed = 1234

let probe_vectors ~n ~probes ~seed =
  let rng = La.Rng.create seed in
  (* Explicit loop: the draws must consume the generator in index order. *)
  let vs = Array.make probes [||] in
  for i = 0 to probes - 1 do
    vs.(i) <- La.Rng.gaussian_array rng n
  done;
  vs

(* Hash the exact bit patterns (lengths included), so two digests agree
   iff every response component is identical to the last bit. *)
let response_digest (responses : La.Vec.t array) =
  let b = Buffer.create 4096 in
  Buffer.add_int64_le b (Int64.of_int (Array.length responses));
  Array.iter
    (fun v ->
      Buffer.add_int64_le b (Int64.of_int (Array.length v));
      Array.iter (fun x -> Buffer.add_int64_le b (Int64.bits_of_float x)) v)
    responses;
  Digest.to_hex (Digest.string (Buffer.contents b))

let probe_digest_line ?(probes = default_probes) ?(seed = default_probe_seed) ~jobs op =
  let n = Subcouple_op.n op in
  let responses = Subcouple_op.apply_batch ~jobs op (probe_vectors ~n ~probes ~seed) in
  Printf.sprintf "probe digest: %s (%d probes, seed %d, n %d)" (response_digest responses) probes
    seed n
