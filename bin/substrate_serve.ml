(* substrate_serve: the operator-serving daemon and its client CLI.

     substrate_serve serve --root DIR --socket /tmp/sub.sock --jobs 4
     substrate_serve info g.sca --socket /tmp/sub.sock
     substrate_serve apply g.sca --digest --socket /tmp/sub.sock
     substrate_serve stats --socket /tmp/sub.sock
     substrate_serve shutdown --socket /tmp/sub.sock

   The daemon keeps decoded operators resident (LRU against a byte
   budget), coalesces concurrent matvecs into fused batches on the Domain
   pool, and answers over a length-prefixed binary protocol on a Unix or
   TCP socket. Served answers are bit-identical to substrate_apply
   against the same artifact, at every --jobs, coalesced or not — the
   `apply --digest` subcommand proves it end to end by hashing the probe
   responses exactly as substrate_apply does, except the vectors traveled
   through the daemon. *)

module Op = Subcouple_op
open Cmdliner
open Cli_common

(* ------------------------------------------------------------------ *)
(* Endpoint selection, shared by the daemon and every client command. *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix-domain socket path for the daemon.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "TCP endpoint for the daemon (mutually exclusive with --socket). The daemon prints the \
           bound port, so PORT 0 picks a free one.")

let resolve_endpoint socket tcp =
  match (socket, tcp) with
  | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
  | Some path, None -> Ok (`Unix path)
  | None, Some spec -> (
    match String.rindex_opt spec ':' with
    | None -> Error (Printf.sprintf "--tcp %s: expected HOST:PORT" spec)
    | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> Ok (`Tcp (host, p))
      | _ -> Error (Printf.sprintf "--tcp %s: bad port %S" spec port)))
  | None, None -> Error "an endpoint is required: --socket PATH or --tcp HOST:PORT"

let with_endpoint socket tcp f =
  match resolve_endpoint socket tcp with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit_user_error
  | Ok ep -> f ep

(* Client transport/protocol failures all map to the operational exit. *)
let with_client socket tcp f =
  with_endpoint socket tcp (fun ep ->
      match Serve.Client.with_connection ep f with
      | code -> code
      | exception Serve.Client.Server_error msg ->
        Printf.eprintf "server error: %s\n" msg;
        exit_bad_artifact
      | exception Serve.Protocol.Error msg ->
        Printf.eprintf "protocol error: %s\n" msg;
        exit_bad_artifact
      | exception End_of_file ->
        Printf.eprintf "connection closed by the daemon\n";
        exit_bad_artifact
      | exception Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "%s: %s\n" fn (Unix.error_message e);
        exit_bad_artifact)

let artifact_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NAME"
        ~doc:
          "Artifact name, relative to the daemon's serving root (an .sca operator or .scm shard \
           manifest).")

(* The client-side face of the per-request degradation report: same
   message the local tools print, built from what came over the wire. *)
let warn_degraded ~context = function
  | None -> ()
  | Some { Serve.Protocol.masked; quarantined_shards; pending_shards } ->
    let k = Array.length masked in
    Printf.eprintf "warning: degraded %s: %d masked contact%s %s served as zeros (%d quarantined \
                    shard%s, %d pending)\n"
      context k
      (if k = 1 then "" else "s")
      (Op.format_indices masked) quarantined_shards
      (if quarantined_shards = 1 then "" else "s")
      pending_shards

(* ------------------------------------------------------------------ *)
(* serve: the daemon itself. *)

let run_serve socket tcp root cache_mb jobs =
  with_endpoint socket tcp (fun listen ->
      let jobs = resolve_jobs jobs in
      match
        Serve.Server.create ~max_bytes:(cache_mb * 1024 * 1024) ~jobs ~root ~listen ()
      with
      | exception Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit_user_error
      | exception Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "%s(%s): %s\n" fn arg (Unix.error_message e);
        exit_user_error
      | t ->
        List.iter
          (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve.Server.stop t)))
          [ Sys.sigint; Sys.sigterm ];
        (match Serve.Server.address t with
        | `Unix path -> Printf.printf "serving %s on unix socket %s (jobs %d)\n%!" root path jobs
        | `Tcp (host, port) ->
          Printf.printf "serving %s on tcp %s:%d (jobs %d)\n%!" root host port jobs);
        Serve.Server.run t;
        exit_ok)

let root_arg =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Serving root: artifact names resolve under this directory, and never outside it.")

let cache_mb_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:"Resident-operator cache budget in MiB; least-recently-used artifacts are evicted.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the serving daemon: resident-operator cache, coalesced batched matvecs, one trace \
          span per request.")
    Term.(const run_serve $ socket_arg $ tcp_arg $ root_arg $ cache_mb_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* info *)

let run_info artifact socket tcp =
  with_client socket tcp (fun c ->
      let i = Serve.Client.info c ~artifact in
      Printf.printf "artifact: %s (served)\n" artifact;
      Printf.printf "kind: %s\n" (if String.equal i.Serve.Client.kind "" then "(unset)" else i.Serve.Client.kind);
      if not (String.equal i.Serve.Client.source "") then
        Printf.printf "source: %s\n" i.Serve.Client.source;
      Printf.printf "n: %d contacts\n" i.Serve.Client.n;
      Printf.printf "solves spent extracting: %d\n" i.Serve.Client.solves;
      Printf.printf "storage: %d floats (dense G would store %d)\n" i.Serve.Client.storage_floats
        (i.Serve.Client.n * i.Serve.Client.n);
      (match i.Serve.Client.degraded with
      | None -> ()
      | Some d ->
        Printf.printf "health: degraded (%d masked contact(s), %d quarantined shard(s), %d \
                       pending)\n"
          (Array.length d.Serve.Protocol.masked)
          d.Serve.Protocol.quarantined_shards d.Serve.Protocol.pending_shards);
      exit_ok)

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a served artifact: provenance, size, build cost, health.")
    Term.(const run_info $ artifact_arg $ socket_arg $ tcp_arg)

(* ------------------------------------------------------------------ *)
(* apply *)

let print_vector ~label v =
  Printf.printf "%s\n" label;
  let n = Array.length v in
  Array.iteri (fun i c -> if i < 32 then Printf.printf "  I[%d] = %+.5f\n" i c) v;
  if n > 32 then Printf.printf "  ... (%d more)\n" (n - 32);
  Printf.printf "  |I|_2 = %.6g\n" (La.Vec.norm2 v)

let run_apply artifact socket tcp probes seed digest singles =
  with_client socket tcp (fun c ->
      let i = Serve.Client.info c ~artifact in
      let n = i.Serve.Client.n in
      let vs = probe_vectors ~n ~probes ~seed in
      let responses, degraded =
        if singles then begin
          (* One coalescible request per probe — exercises the daemon's
             batching queue; answers are bit-identical to the one-shot
             batch either way. *)
          let degraded = ref None in
          let outs =
            Array.map
              (fun v ->
                let y, d = Serve.Client.apply c ~artifact v in
                (match d with Some _ -> degraded := d | None -> ());
                y)
              vs
          in
          (outs, !degraded)
        end
        else Serve.Client.apply_batch c ~artifact vs
      in
      warn_degraded ~context:(Printf.sprintf "%d probe response(s)" (Array.length vs)) degraded;
      if digest then print_endline (probe_digest_line_of_responses ~probes ~seed ~n responses)
      else begin
        Printf.printf "applied the served operator to %d probe vector(s) (seed %d%s)\n"
          (Array.length vs) seed
          (if singles then ", one request per probe" else ", one batched request");
        Array.iteri
          (fun i r -> Printf.printf "  probe %d: |G v|_2 = %.6g\n" i (La.Vec.norm2 r))
          responses
      end;
      exit_ok)

let probes_arg =
  Arg.(
    value & opt int default_probes
    & info [ "probes" ] ~docv:"K" ~doc:"Number of deterministic probe vectors to apply.")

let probe_seed_arg =
  Arg.(
    value & opt int default_probe_seed
    & info [ "probe-seed" ] ~docv:"SEED" ~doc:"Seed for the deterministic probe vectors.")

let digest_arg =
  Arg.(
    value & flag
    & info [ "digest" ]
        ~doc:
          "Print the probe-response digest instead of norms. Matches substrate_apply --digest \
           against the same artifact when the daemon serves bit-identically.")

let singles_arg =
  Arg.(
    value & flag
    & info [ "singles" ]
        ~doc:
          "Send one coalescible request per probe instead of a single batched request (same \
           answers, different server path).")

let apply_cmd =
  Cmd.v
    (Cmd.info "apply"
       ~doc:"Apply a served operator to deterministic probe vectors over the socket.")
    Term.(
      const run_apply $ artifact_arg $ socket_arg $ tcp_arg $ probes_arg $ probe_seed_arg
      $ digest_arg $ singles_arg)

(* ------------------------------------------------------------------ *)
(* column *)

let run_column artifact socket tcp columns =
  with_client socket tcp (fun c ->
      if columns = [] then begin
        Printf.eprintf "at least one --column is required\n";
        exit_user_error
      end
      else begin
        List.iter
          (fun j ->
            let v, degraded = Serve.Client.column c ~artifact j in
            warn_degraded ~context:(Printf.sprintf "column %d" j) degraded;
            (match degraded with
            | Some d when Array.exists (fun m -> m = j) d.Serve.Protocol.masked ->
              Printf.eprintf "warning: contact %d is itself masked; column %d is all zeros\n" j j
            | _ -> ());
            print_vector ~label:(Printf.sprintf "column %d of G (unit voltage on contact %d):" j j)
              v)
          columns;
        exit_ok
      end)

let columns_arg =
  Arg.(
    value & opt_all int []
    & info [ "column"; "c" ] ~docv:"I" ~doc:"Serve column $(docv) of G (repeatable).")

let column_cmd =
  Cmd.v
    (Cmd.info "column" ~doc:"Serve columns of a served operator over the socket.")
    Term.(const run_column $ artifact_arg $ socket_arg $ tcp_arg $ columns_arg)

(* ------------------------------------------------------------------ *)
(* threshold *)

let run_threshold artifact socket tcp target =
  with_client socket tcp (fun c ->
      let r = Serve.Client.threshold c ~artifact ~target in
      Printf.printf "thresholded G_w: %d -> %d nonzeros (target %gx); storage %d floats\n"
        r.Serve.Client.nnz_before r.Serve.Client.nnz_after target r.Serve.Client.storage_floats;
      exit_ok)

let target_arg =
  Arg.(
    value & opt float 2.0
    & info [ "target"; "t" ] ~docv:"X"
        ~doc:"Preview thresholding the served G_w to roughly X times fewer nonzeros.")

let threshold_cmd =
  Cmd.v
    (Cmd.info "threshold"
       ~doc:"Preview sparsifying a served operator artifact (server-side, nothing persisted).")
    Term.(const run_threshold $ artifact_arg $ socket_arg $ tcp_arg $ target_arg)

(* ------------------------------------------------------------------ *)
(* stats / shutdown *)

let run_stats socket tcp =
  with_client socket tcp (fun c ->
      let table, _ = Serve.Client.stats c in
      print_string table;
      exit_ok)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print the daemon's counters and latency distributions (same deterministic layout as \
          --trace-summary).")
    Term.(const run_stats $ socket_arg $ tcp_arg)

let run_shutdown socket tcp =
  with_client socket tcp (fun c ->
      Serve.Client.shutdown c;
      Printf.printf "daemon acknowledged shutdown\n";
      exit_ok)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to stop.")
    Term.(const run_shutdown $ socket_arg $ tcp_arg)

(* ------------------------------------------------------------------ *)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  let doc = "Serve substrate operator artifacts from a resident-cache daemon over a socket." in
  let info = Cmd.info "substrate_serve" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ serve_cmd; info_cmd; apply_cmd; column_cmd; threshold_cmd; stats_cmd; shutdown_cmd ]))
