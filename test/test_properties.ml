(* Property-based tests of the sparsification pipeline on randomized
   layouts and operators.

   Accuracy properties need a physical conductance matrix, but the
   *structural* invariants — orthogonality of Q, vanishing moments, basis
   dimension telescoping, representation consistency — must hold for any
   aligned layout and any SPD operator. Randomizing over both is what
   catches geometry corner cases (empty squares, single-contact squares,
   clusters) that hand-picked examples miss. *)

open La
module Blackbox = Substrate.Blackbox
module Quadtree = Geometry.Quadtree
module Layout = Geometry.Layout
module Contact = Geometry.Contact
open Sparsify

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random aligned layout: a random nonempty subset of the cells of an
   8 x 8 grid over a 128-unit surface, each holding one centered contact of
   random (aligned-safe) size. Always fits the quadtree to level 3. *)
let layout_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* density = float_range 0.15 0.9 in
    return
      (let rng = Rng.create seed in
       let cell = 16.0 in
       let contacts = ref [] in
       for j = 0 to 7 do
         for i = 0 to 7 do
           if Rng.float rng < density then begin
             let fill = 0.25 +. (0.5 *. Rng.float rng) in
             let side = fill *. cell in
             let cx = (float_of_int i +. 0.5) *. cell and cy = (float_of_int j +. 0.5) *. cell in
             contacts :=
               Contact.make
                 ~x0:(cx -. (side /. 2.0))
                 ~y0:(cy -. (side /. 2.0))
                 ~x1:(cx +. (side /. 2.0))
                 ~y1:(cy +. (side /. 2.0))
               :: !contacts
           end
         done
       done;
       (* Guarantee nonempty. *)
       if !contacts = [] then
         contacts := [ Contact.make ~x0:60.0 ~y0:60.0 ~x1:68.0 ~y1:68.0 ];
       { Layout.size = 128.0; contacts = Array.of_list !contacts; name = "random" }))

(* A synthetic SPD "conductance-like" matrix over a layout: smooth distance
   kernel plus diagonal dominance. Structural invariants must hold for it
   even though it is not a real substrate. *)
let synthetic_g (layout : Layout.t) =
  let n = Layout.n_contacts layout in
  let centers = Array.map Contact.centroid layout.Layout.contacts in
  Mat.init n n (fun i j ->
      if i = j then 10.0 +. Contact.area layout.Layout.contacts.(i)
      else begin
        let xi, yi = centers.(i) and xj, yj = centers.(j) in
        let d = sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0)) in
        -1.0 /. (1.0 +. (0.5 *. d))
      end)

let orthogonal ?(tol = 1e-8) q =
  let qd = Sparsemat.Csr.to_dense q in
  Mat.max_abs (Mat.sub (Mat.mul (Mat.transpose qd) qd) (Mat.identity (Mat.cols qd))) < tol

let prop_wavelet_q_orthogonal =
  qtest "wavelet Q orthogonal on random layouts" layout_gen (fun layout ->
      let basis = Wavelet.create ~p:2 ~max_level:3 layout in
      orthogonal (Wavelet.q_matrix basis))

let prop_wavelet_moments_vanish =
  qtest "wavelet moments vanish on random layouts" layout_gen (fun layout ->
      let basis = Wavelet.create ~p:2 ~max_level:3 layout in
      let tree = Wavelet.tree basis in
      let ok = ref true in
      for level = 0 to 3 do
        let nsq = Quadtree.side_count level in
        for iy = 0 to nsq - 1 do
          for ix = 0 to nsq - 1 do
            match Wavelet.find basis ~level ~ix ~iy with
            | None -> ()
            | Some b ->
              let center = Quadtree.square_center tree ~level ~ix ~iy in
              let contacts = Array.map (fun id -> layout.Layout.contacts.(id)) b.Wavelet.contacts in
              for j = 0 to Mat.cols b.Wavelet.w - 1 do
                let m = Geometry.Moments.of_vector ~p:2 ~center contacts (Mat.col b.Wavelet.w j) in
                if Vec.norm_inf m > 1e-7 then ok := false
              done
          done
        done
      done;
      !ok)

let prop_wavelet_factored_matches =
  qtest ~count:15 "factored transform on random layouts" layout_gen (fun layout ->
      let basis = Wavelet.create ~p:2 ~max_level:3 layout in
      let n = Layout.n_contacts layout in
      let q = Sparsemat.Csr.to_dense (Wavelet.q_matrix basis) in
      let x = Rng.gaussian_array (Rng.create 77) n in
      Vec.approx_equal ~tol:1e-8 (Subcouple_op.apply (Wavelet.qt_op basis) x) (Mat.gemv_t q x)
      && Vec.approx_equal ~tol:1e-8 (Subcouple_op.apply (Wavelet.q_op basis) x) (Mat.gemv q x))

let prop_lowrank_structural =
  qtest ~count:15 "low-rank structure on random layouts + synthetic G" layout_gen (fun layout ->
      let g = synthetic_g layout in
      let repr = Lowrank.extract ~max_level:3 layout (Blackbox.of_dense g) in
      let n = Layout.n_contacts layout in
      repr.Repr.n = n && orthogonal repr.Repr.q
      &&
      (* The represented operator is symmetric (G_w symmetric by
         construction). *)
      Mat.is_symmetric ~tol:1e-6 (Sparsemat.Csr.to_dense repr.Repr.gw))

let prop_wavelet_extraction_consistent =
  qtest ~count:10 "wavelet extraction consistent on synthetic G" layout_gen (fun layout ->
      (* Extraction through combine-solves must agree with the exact Q'GQ on
         the kept pattern, whatever the (symmetric) operator. *)
      let g = synthetic_g layout in
      let basis = Wavelet.create ~p:2 ~max_level:3 layout in
      let repr = Wavelet.extract basis (Blackbox.of_dense g) in
      let gw_exact = Wavelet.change_basis_dense basis g in
      let ok = ref true in
      Sparsemat.Csr.iter repr.Repr.gw (fun i j v ->
          (* Combine-solves contamination is bounded by the dropped-entry
             magnitudes; on the synthetic kernel these are small but not
             zero, so compare loosely. *)
          if Float.abs (v -. Mat.get gw_exact i j) > 0.05 *. (1.0 +. Float.abs (Mat.get gw_exact i j))
          then ok := false);
      !ok)

let prop_grouping_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 30 in
      let* groups = int_range 1 (max 1 (n / 2)) in
      let* ids = list_repeat n (int_range 0 (groups - 1)) in
      return (n, Array.of_list ids))
  in
  qtest "grouping reduce/expand adjoint" gen (fun (n, ids) ->
      (* Make ids dense: remap to 0..k-1. *)
      let seen = Hashtbl.create 8 in
      let next = ref 0 in
      let dense =
        Array.map
          (fun g ->
            match Hashtbl.find_opt seen g with
            | Some d -> d
            | None ->
              let d = !next in
              incr next;
              Hashtbl.add seen g d;
              d)
          ids
      in
      let grouping = Substrate.Grouping.of_group_ids dense in
      let rng = Rng.create (n * 31) in
      let v = Rng.gaussian_array rng (Substrate.Grouping.n_groups grouping) in
      let i = Rng.gaussian_array rng n in
      Float.abs
        (Vec.dot (Substrate.Grouping.expand grouping v) i
        -. Vec.dot v (Substrate.Grouping.reduce grouping i))
      < 1e-9)

let () =
  Alcotest.run "properties"
    [
      ( "randomized",
        [
          prop_wavelet_q_orthogonal;
          prop_wavelet_moments_vanish;
          prop_wavelet_factored_matches;
          prop_lowrank_structural;
          prop_wavelet_extraction_consistent;
          prop_grouping_roundtrip;
        ] );
    ]
