(* Tests for the dense linear-algebra substrate. *)

open La

let rng = Rng.create 42

let check_float = Alcotest.(check (float 1e-9))

let mat_small_gen =
  (* Random well-scaled matrices up to 8x8 for property tests. *)
  QCheck2.Gen.(
    let* m = int_range 1 8 in
    let* n = int_range 1 8 in
    let* entries = list_repeat (m * n) (float_range (-10.0) 10.0) in
    let entries = Array.of_list entries in
    return (Mat.init m n (fun i j -> entries.((i * n) + j))))

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_dot () =
  check_float "dot" 32.0 (Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy ~alpha:2.0 [| 3.0; 4.0 |] y;
  Alcotest.(check bool) "axpy" true (Vec.approx_equal y [| 7.0; 9.0 |])

let test_vec_norms () =
  check_float "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |]);
  check_float "norm_inf" 4.0 (Vec.norm_inf [| 3.0; -4.0 |]);
  check_float "sum" (-1.0) (Vec.sum [| 3.0; -4.0 |])

let test_vec_normalize () =
  let v = Vec.normalize [| 3.0; 4.0 |] in
  check_float "unit norm" 1.0 (Vec.norm2 v);
  let z = Vec.normalize [| 0.0; 0.0 |] in
  check_float "zero stays zero" 0.0 (Vec.norm2 z)

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

(* ------------------------------------------------------------------ *)
(* Mat *)

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  Alcotest.(check bool) "product" true
    (Mat.approx_equal c (Mat.of_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]))

let test_mat_gemv () =
  let a = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  Alcotest.(check bool) "gemv" true (Vec.approx_equal (Mat.gemv a [| 1.0; 1.0; 1.0 |]) [| 6.0; 15.0 |]);
  Alcotest.(check bool) "gemv_t" true
    (Vec.approx_equal (Mat.gemv_t a [| 1.0; 1.0 |]) [| 5.0; 7.0; 9.0 |])

let test_mat_select () =
  let a = Mat.init 4 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let s = Mat.select a ~row_idx:[| 3; 1 |] ~col_idx:[| 0; 2 |] in
  Alcotest.(check bool) "select" true
    (Mat.approx_equal s (Mat.of_arrays [| [| 30.0; 32.0 |]; [| 10.0; 12.0 |] |]))

let test_mat_cat () =
  let a = Mat.of_arrays [| [| 1.0 |]; [| 2.0 |] |] in
  let b = Mat.of_arrays [| [| 3.0 |]; [| 4.0 |] |] in
  let h = Mat.hcat a b in
  Alcotest.(check int) "hcat cols" 2 (Mat.cols h);
  let v = Mat.vcat a b in
  Alcotest.(check int) "vcat rows" 4 (Mat.rows v);
  Alcotest.(check bool) "vcat content" true
    (Vec.approx_equal (Mat.col v 0) [| 1.0; 2.0; 3.0; 4.0 |])

let test_mat_of_cols () =
  let m = Mat.of_cols [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  Alcotest.(check bool) "of_cols" true
    (Mat.approx_equal m (Mat.of_arrays [| [| 1.0; 3.0 |]; [| 2.0; 4.0 |] |]))

let prop_transpose_involution =
  qtest "transpose involution" mat_small_gen (fun a ->
      Mat.approx_equal a (Mat.transpose (Mat.transpose a)))

let prop_gemv_matches_mul =
  qtest "gemv agrees with mul" mat_small_gen (fun a ->
      let x = Vec.init (Mat.cols a) (fun i -> float_of_int (i + 1)) in
      let as_mat = Mat.mul a (Mat.of_cols [ x ]) in
      Vec.approx_equal ~tol:1e-8 (Mat.gemv a x) (Mat.col as_mat 0))

let prop_gemv_t_matches_transpose =
  qtest "gemv_t agrees with explicit transpose" mat_small_gen (fun a ->
      let x = Vec.init (Mat.rows a) (fun i -> float_of_int (i + 1)) in
      Vec.approx_equal ~tol:1e-8 (Mat.gemv_t a x) (Mat.gemv (Mat.transpose a) x))

(* ------------------------------------------------------------------ *)
(* QR *)

let is_orthogonal ?(tol = 1e-8) q =
  Mat.approx_equal ~tol (Mat.mul (Mat.transpose q) q) (Mat.identity (Mat.cols q))

let test_qr_reconstruct () =
  let a = Mat.random rng 7 4 in
  let f = Qr.decomp a in
  Alcotest.(check bool) "Q orthogonal" true (is_orthogonal f.Qr.q);
  Alcotest.(check bool) "A = QR" true (Mat.approx_equal ~tol:1e-8 a (Qr.reconstruct f))

let test_qr_pivoted_reconstruct () =
  let a = Mat.random rng 5 8 in
  let f = Qr.decomp ~pivot:true a in
  Alcotest.(check bool) "A = QR P'" true (Mat.approx_equal ~tol:1e-8 a (Qr.reconstruct f))

let test_qr_rank_detection () =
  (* Rank-2 matrix: third column is the sum of the first two. *)
  let c1 = [| 1.0; 0.0; 2.0; 1.0 |] and c2 = [| 0.0; 1.0; 1.0; 3.0 |] in
  let a = Mat.of_cols [ c1; c2; Vec.add c1 c2 ] in
  let f = Qr.decomp ~pivot:true ~tol:1e-10 a in
  Alcotest.(check int) "rank 2" 2 f.Qr.rank

let test_qr_range_split () =
  let c1 = [| 1.0; 0.0; 2.0; 1.0 |] and c2 = [| 0.0; 1.0; 1.0; 3.0 |] in
  let a = Mat.of_cols [ c1; c2; Vec.add c1 c2 ] in
  let range, compl = Qr.range_split a in
  Alcotest.(check int) "range dim" 2 (Mat.cols range);
  Alcotest.(check int) "complement dim" 2 (Mat.cols compl);
  (* Complement columns must be orthogonal to the original columns. *)
  let inner = Mat.mul (Mat.transpose compl) a in
  Alcotest.(check bool) "complement orthogonal to A" true (Mat.max_abs inner < 1e-8);
  (* Together they form an orthonormal basis of R^4. *)
  Alcotest.(check bool) "full basis orthogonal" true (is_orthogonal (Mat.hcat range compl))

let prop_qr_roundtrip =
  qtest "pivoted QR reconstructs" mat_small_gen (fun a ->
      Mat.approx_equal ~tol:1e-7 a (Qr.reconstruct (Qr.decomp ~pivot:true a)))

let prop_qr_q_orthogonal =
  qtest "QR Q orthogonal" mat_small_gen (fun a -> is_orthogonal ~tol:1e-7 (Qr.decomp a).Qr.q)

(* ------------------------------------------------------------------ *)
(* SVD *)

let test_svd_known () =
  (* diag(3, 2) has singular values 3, 2. *)
  let a = Mat.of_arrays [| [| 0.0; 2.0 |]; [| 3.0; 0.0 |] |] in
  let { Svd.s; _ } = Svd.decomp a in
  check_float "sigma1" 3.0 s.(0);
  check_float "sigma2" 2.0 s.(1)

let test_svd_reconstruct_tall () =
  let a = Mat.random rng 9 4 in
  let f = Svd.decomp a in
  Alcotest.(check bool) "reconstruct" true (Mat.approx_equal ~tol:1e-7 a (Svd.reconstruct f));
  Alcotest.(check bool) "V orthogonal" true (is_orthogonal f.Svd.v);
  Alcotest.(check bool) "U columns orthonormal" true (is_orthogonal f.Svd.u)

let test_svd_reconstruct_wide () =
  let a = Mat.random rng 3 7 in
  let f = Svd.decomp a in
  Alcotest.(check bool) "reconstruct" true (Mat.approx_equal ~tol:1e-7 a (Svd.reconstruct f));
  Alcotest.(check bool) "U full orthogonal" true (is_orthogonal f.Svd.u)

let test_svd_rank_deficient () =
  (* Outer product has rank 1; V must still be a full orthogonal basis. *)
  let u = [| 1.0; 2.0; 3.0 |] and v = [| 4.0; 5.0 |] in
  let a = Mat.init 3 2 (fun i j -> u.(i) *. v.(j)) in
  let f = Svd.decomp a in
  Alcotest.(check int) "rank 1" 1 (Svd.rank f);
  Alcotest.(check bool) "V orthogonal despite rank deficiency" true (is_orthogonal f.Svd.v);
  check_float "sigma2 ~ 0" 0.0 f.Svd.s.(1)

let test_svd_truncate () =
  let a = Mat.random rng 6 4 in
  let f = Svd.decomp a in
  let t = Svd.truncate f ~keep:(fun i _ -> i < 2) in
  Alcotest.(check int) "kept" 2 (Array.length t.Svd.s);
  Alcotest.(check int) "u cols" 2 (Mat.cols t.Svd.u)

let test_svd_zero_matrix () =
  let f = Svd.decomp (Mat.create 4 3) in
  Alcotest.(check int) "rank 0" 0 (Svd.rank f);
  Alcotest.(check bool) "V still orthogonal" true (is_orthogonal f.Svd.v);
  Alcotest.(check (float 0.0)) "sigma 0" 0.0 f.Svd.s.(0)

let test_svd_duplicate_columns () =
  (* Repeated columns force exact rank deficiency; Jacobi must terminate and
     V stay orthogonal. *)
  let c = [| 1.0; -2.0; 0.5; 3.0 |] in
  let a = Mat.of_cols [ c; c; c ] in
  let f = Svd.decomp a in
  Alcotest.(check int) "rank 1" 1 (Svd.rank f);
  Alcotest.(check bool) "reconstructs" true (Mat.approx_equal ~tol:1e-8 a (Svd.reconstruct f));
  Alcotest.(check bool) "V orthogonal" true (is_orthogonal f.Svd.v)

let test_qr_zero_matrix () =
  let f = Qr.decomp ~pivot:true (Mat.create 3 2) in
  Alcotest.(check int) "rank 0" 0 f.Qr.rank;
  let range, compl = Qr.range_split (Mat.create 3 2) in
  Alcotest.(check int) "empty range" 0 (Mat.cols range);
  Alcotest.(check int) "full complement" 3 (Mat.cols compl)

let prop_svd_values_descending =
  qtest "singular values sorted descending" mat_small_gen (fun a ->
      let { Svd.s; _ } = Svd.decomp a in
      let ok = ref true in
      for i = 0 to Array.length s - 2 do
        if s.(i) < s.(i + 1) -. 1e-12 then ok := false
      done;
      !ok)

let prop_svd_reconstructs =
  qtest "SVD reconstructs A" mat_small_gen (fun a ->
      Mat.approx_equal ~tol:1e-6 a (Svd.reconstruct (Svd.decomp a)))

let prop_svd_frobenius =
  qtest "Frobenius norm = sqrt(sum sigma^2)" mat_small_gen (fun a ->
      let { Svd.s; _ } = Svd.decomp a in
      let fro2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 s in
      Float.abs (sqrt fro2 -. Mat.frobenius a) < 1e-7 *. (1.0 +. Mat.frobenius a))

(* ------------------------------------------------------------------ *)
(* Cholesky *)

let spd_of rng n =
  let b = Mat.random rng n (n + 2) in
  Mat.add (Mat.mul b (Mat.transpose b)) (Mat.scale 0.1 (Mat.identity n))

let test_cholesky_factor () =
  let a = spd_of rng 6 in
  let l = Cholesky.factor a in
  Alcotest.(check bool) "L L' = A" true (Mat.approx_equal ~tol:1e-8 a (Mat.mul l (Mat.transpose l)))

let test_cholesky_solve () =
  let a = spd_of rng 6 in
  let x_true = Vec.init 6 (fun i -> float_of_int (i - 3)) in
  let b = Mat.gemv a x_true in
  let x = Cholesky.solve a b in
  Alcotest.(check bool) "solution" true (Vec.approx_equal ~tol:1e-7 x x_true)

let test_cholesky_inverse () =
  let a = spd_of rng 4 in
  let inv = Cholesky.inverse a in
  Alcotest.(check bool) "A A^{-1} = I" true
    (Mat.approx_equal ~tol:1e-7 (Mat.mul a inv) (Mat.identity 4))

let test_cholesky_rejects_indefinite () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "indefinite" (Cholesky.Not_positive_definite 1) (fun () ->
      ignore (Cholesky.factor a))

(* ------------------------------------------------------------------ *)
(* Tridiag *)

let test_tridiag_solve () =
  let lower = [| 0.0; -1.0; -1.0; -1.0 |] in
  let diag = [| 2.0; 2.0; 2.0; 2.0 |] in
  let upper = [| -1.0; -1.0; -1.0; 0.0 |] in
  let x_true = [| 1.0; -2.0; 3.0; 0.5 |] in
  let rhs = Tridiag.apply ~lower ~diag ~upper x_true in
  let x = Tridiag.solve ~lower ~diag ~upper ~rhs in
  Alcotest.(check bool) "roundtrip" true (Vec.approx_equal ~tol:1e-10 x x_true)

let prop_tridiag_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 20 in
      let* d = list_repeat n (float_range 3.0 6.0) in
      let* l = list_repeat n (float_range (-1.0) 1.0) in
      let* u = list_repeat n (float_range (-1.0) 1.0) in
      let* x = list_repeat n (float_range (-5.0) 5.0) in
      return (Array.of_list d, Array.of_list l, Array.of_list u, Array.of_list x))
  in
  qtest "tridiag solve roundtrip (diagonally dominant)" gen (fun (diag, lower, upper, x) ->
      let rhs = Tridiag.apply ~lower ~diag ~upper x in
      let x' = Tridiag.solve ~lower ~diag ~upper ~rhs in
      Vec.approx_equal ~tol:1e-8 x x')

(* ------------------------------------------------------------------ *)
(* Krylov *)

let test_cg_dense_spd () =
  let a = spd_of rng 20 in
  let x_true = Vec.init 20 (fun i -> sin (float_of_int i)) in
  let b = Mat.gemv a x_true in
  let r = Krylov.cg ~apply:(Mat.gemv a) ~tol:1e-12 b in
  Alcotest.(check bool) "converged" true r.Krylov.converged;
  Alcotest.(check bool) "solution" true (Vec.approx_equal ~tol:1e-6 r.Krylov.x x_true)

let test_cg_preconditioned_faster () =
  (* Ill-conditioned diagonal system: Jacobi preconditioning solves it in
     one iteration while plain CG needs many. *)
  let n = 50 in
  let d = Array.init n (fun i -> 1.0 +. (float_of_int i *. 100.0)) in
  let apply v = Array.mapi (fun i x -> d.(i) *. x) v in
  let precond v = Array.mapi (fun i x -> x /. d.(i)) v in
  let b = Array.make n 1.0 in
  let plain = Krylov.cg ~apply ~tol:1e-10 b in
  let pre = Krylov.cg ~apply ~precond ~tol:1e-10 b in
  Alcotest.(check bool) "both converged" true (plain.Krylov.converged && pre.Krylov.converged);
  Alcotest.(check bool) "preconditioning reduces iterations" true
    (pre.Krylov.iterations < plain.Krylov.iterations)

let test_cg_zero_rhs () =
  let r = Krylov.cg ~apply:(fun v -> v) (Vec.create 5) in
  Alcotest.(check bool) "zero solution" true (Vec.approx_equal r.Krylov.x (Vec.create 5));
  Alcotest.(check int) "no iterations" 0 r.Krylov.iterations

let test_cg_stats () =
  let stats = Krylov.make_stats () in
  let a = spd_of rng 10 in
  let b = Array.make 10 1.0 in
  ignore (Krylov.cg ~apply:(Mat.gemv a) ~stats b);
  ignore (Krylov.cg ~apply:(Mat.gemv a) ~stats b);
  Alcotest.(check int) "two solves" 2 stats.Krylov.solves;
  Alcotest.(check bool) "avg iterations positive" true (Krylov.average_iterations stats > 0.0)

(* ------------------------------------------------------------------ *)
(* Bigarray kernels: bit-identity against the boxed references *)

let float_bits_equal x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let vec_bits_equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i = i >= Array.length a || (float_bits_equal a.(i) b.(i) && loop (i + 1)) in
  loop 0

let vec_pair_gen =
  QCheck2.Gen.(
    let* n = int_range 1 64 in
    let* a = list_repeat n (float_range (-10.0) 10.0) in
    let* b = list_repeat n (float_range (-10.0) 10.0) in
    return (Array.of_list a, Array.of_list b))

let prop_bvec_dot =
  qtest "Bvec.dot/dot_a bit-identical to Vec.dot" vec_pair_gen (fun (a, b) ->
      let want = Vec.dot a b in
      float_bits_equal want (Bvec.dot (Bvec.of_array a) (Bvec.of_array b))
      && float_bits_equal want (Bvec.dot_a (Bvec.of_array a) b)
      && float_bits_equal (Vec.norm2 a) (Bvec.norm2 (Bvec.of_array a)))

let prop_bvec_updates =
  let gen =
    QCheck2.Gen.(
      let* pair = vec_pair_gen in
      let* alpha = float_range (-3.0) 3.0 in
      return (pair, alpha))
  in
  qtest "Bvec axpy/xpby/sub bit-identical to boxed loops" gen (fun ((a, b), alpha) ->
      let n = Array.length a in
      (* axpy *)
      let y_ref = Vec.copy b in
      Vec.axpy ~alpha a y_ref;
      let y_big = Bvec.of_array b in
      Bvec.axpy ~alpha (Bvec.of_array a) y_big;
      let y_big_a = Bvec.of_array b in
      Bvec.axpy_a ~alpha a y_big_a;
      (* xpby: p <- z + beta * p, boxed reference loop from the CG body *)
      let p_ref = Vec.copy b in
      for i = 0 to n - 1 do
        p_ref.(i) <- a.(i) +. (alpha *. p_ref.(i))
      done;
      let p_big = Bvec.of_array b in
      Bvec.xpby ~beta:alpha (Bvec.of_array a) p_big;
      let p_big_a = Bvec.of_array b in
      Bvec.xpby_a ~beta:alpha a p_big_a;
      (* sub_arrays_into vs Vec.sub *)
      let d_big = Bvec.create n in
      Bvec.sub_arrays_into a b d_big;
      vec_bits_equal y_ref (Bvec.to_array y_big)
      && vec_bits_equal y_ref (Bvec.to_array y_big_a)
      && vec_bits_equal p_ref (Bvec.to_array p_big)
      && vec_bits_equal p_ref (Bvec.to_array p_big_a)
      && vec_bits_equal (Vec.sub a b) (Bvec.to_array d_big)
      && vec_bits_equal a (Bvec.to_array (Bvec.of_array a)))

let mat_vec_gen =
  (* Matrix plus conforming vectors; some exact zeros in the row vector to
     exercise the gemv_t skip. *)
  QCheck2.Gen.(
    let* m = mat_small_gen in
    let* x = list_repeat (Mat.cols m) (float_range (-5.0) 5.0) in
    let* xr = list_repeat (Mat.rows m) (float_range (-5.0) 5.0) in
    let* mask = list_repeat (Mat.rows m) bool in
    let xr = List.map2 (fun v keep -> if keep then v else 0.0) xr mask in
    return (m, Array.of_list x, Array.of_list xr))

let prop_bmat_gemv =
  qtest "Bmat gemv/gemv_t bit-identical to Mat" mat_vec_gen (fun (m, x, xr) ->
      let bm = Bmat.of_mat m in
      vec_bits_equal (Mat.gemv m x) (Bmat.gemv bm x)
      && vec_bits_equal (Mat.gemv_t m xr) (Bmat.gemv_t bm xr)
      && Mat.approx_equal ~tol:0.0 m (Bmat.to_mat bm))

(* Full-result equality of the two CG implementations. *)
let cg_results_equal (a : Krylov.result) (b : Krylov.result) =
  vec_bits_equal a.Krylov.x b.Krylov.x
  && a.Krylov.iterations = b.Krylov.iterations
  && a.Krylov.converged = b.Krylov.converged
  && a.Krylov.breakdown = b.Krylov.breakdown
  && float_bits_equal a.Krylov.residual_norm b.Krylov.residual_norm
  && float_bits_equal a.Krylov.recurrence_residual b.Krylov.recurrence_residual
  && a.Krylov.residual_mismatch = b.Krylov.residual_mismatch

let spd_system_gen =
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    let* entries = list_repeat (n * n) (float_range (-2.0) 2.0) in
    let* b = list_repeat n (float_range (-5.0) 5.0) in
    let* x0 = list_repeat n (float_range (-1.0) 1.0) in
    let c = Mat.init n n (fun i j -> List.nth entries ((i * n) + j)) in
    (* A = C'C + n I: SPD by construction. *)
    let a = Mat.mul (Mat.transpose c) c in
    let a = Mat.add a (Mat.scale (float_of_int n) (Mat.identity n)) in
    return (a, Array.of_list b, Array.of_list x0))

let prop_cg_matches_boxed =
  qtest ~count:60 "cg bit-identical to cg_boxed (plain, precond, x0)" spd_system_gen
    (fun (a, b, x0) ->
      let apply = Mat.gemv a in
      let jacobi v = Array.mapi (fun i x -> x /. Mat.get a i i) v in
      cg_results_equal (Krylov.cg ~apply b) (Krylov.cg_boxed ~apply b)
      && cg_results_equal (Krylov.cg ~apply ~precond:jacobi b)
           (Krylov.cg_boxed ~apply ~precond:jacobi b)
      && cg_results_equal (Krylov.cg ~apply ~x0 b) (Krylov.cg_boxed ~apply ~x0 b)
      && cg_results_equal
           (Krylov.cg ~apply ~max_iter:2 b)
           (Krylov.cg_boxed ~apply ~max_iter:2 b))

let test_cg_matches_boxed_breakdown () =
  (* Negative-definite operator: p'Ap < 0 on the first iteration, the
     breakdown path recomputes the true residual — both implementations
     must agree on every field. *)
  let apply v = Array.map (fun x -> -.x) v in
  let b = Array.init 9 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check bool) "breakdown results identical" true
    (cg_results_equal (Krylov.cg ~apply b) (Krylov.cg_boxed ~apply b));
  Alcotest.(check bool) "breakdown flagged" true (Krylov.cg ~apply b).Krylov.breakdown

let test_cg_scratch_not_retained () =
  (* The .mli contract: the array handed to [apply] is a reused scratch
     buffer, and the callback may reuse its own output buffer. A callback
     doing both (like the FD solver's apply_into closure) must still see
     bit-identical results. *)
  let a = spd_of rng 16 in
  let b = Array.init 16 (fun i -> cos (float_of_int i)) in
  let out = Array.make 16 0.0 in
  let reusing v =
    let y = Mat.gemv a v in
    Array.blit y 0 out 0 16;
    out
  in
  Alcotest.(check bool) "buffer-reusing apply matches fresh-array apply" true
    (cg_results_equal (Krylov.cg ~apply:reusing b) (Krylov.cg ~apply:(Mat.gemv a) b))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.gaussian_array (Rng.create 7) 10 in
  let b = Rng.gaussian_array (Rng.create 7) 10 in
  Alcotest.(check bool) "same seed, same stream" true (Vec.approx_equal a b)

let test_rng_float_range () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_gaussian_moments () =
  let xs = Rng.gaussian_array (Rng.create 3) 20000 in
  let mean = Vec.sum xs /. 20000.0 in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. 20000.0 in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance ~ 1" true (Float.abs (var -. 1.0) < 0.05)

let () =
  Alcotest.run "la"
    [
      ( "vec",
        [
          Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "norms" `Quick test_vec_norms;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "dimension mismatch raises" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "gemv" `Quick test_mat_gemv;
          Alcotest.test_case "select" `Quick test_mat_select;
          Alcotest.test_case "hcat/vcat" `Quick test_mat_cat;
          Alcotest.test_case "of_cols" `Quick test_mat_of_cols;
          prop_transpose_involution;
          prop_gemv_matches_mul;
          prop_gemv_t_matches_transpose;
        ] );
      ( "qr",
        [
          Alcotest.test_case "reconstruct" `Quick test_qr_reconstruct;
          Alcotest.test_case "pivoted reconstruct" `Quick test_qr_pivoted_reconstruct;
          Alcotest.test_case "rank detection" `Quick test_qr_rank_detection;
          Alcotest.test_case "range split" `Quick test_qr_range_split;
          Alcotest.test_case "zero matrix" `Quick test_qr_zero_matrix;
          prop_qr_roundtrip;
          prop_qr_q_orthogonal;
        ] );
      ( "svd",
        [
          Alcotest.test_case "known values" `Quick test_svd_known;
          Alcotest.test_case "reconstruct tall" `Quick test_svd_reconstruct_tall;
          Alcotest.test_case "reconstruct wide" `Quick test_svd_reconstruct_wide;
          Alcotest.test_case "rank deficient" `Quick test_svd_rank_deficient;
          Alcotest.test_case "truncate" `Quick test_svd_truncate;
          Alcotest.test_case "zero matrix" `Quick test_svd_zero_matrix;
          Alcotest.test_case "duplicate columns" `Quick test_svd_duplicate_columns;
          prop_svd_values_descending;
          prop_svd_reconstructs;
          prop_svd_frobenius;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "factor" `Quick test_cholesky_factor;
          Alcotest.test_case "solve" `Quick test_cholesky_solve;
          Alcotest.test_case "inverse" `Quick test_cholesky_inverse;
          Alcotest.test_case "rejects indefinite" `Quick test_cholesky_rejects_indefinite;
        ] );
      ( "tridiag",
        [ Alcotest.test_case "solve" `Quick test_tridiag_solve; prop_tridiag_roundtrip ] );
      ( "krylov",
        [
          Alcotest.test_case "dense SPD" `Quick test_cg_dense_spd;
          Alcotest.test_case "preconditioning helps" `Quick test_cg_preconditioned_faster;
          Alcotest.test_case "zero rhs" `Quick test_cg_zero_rhs;
          Alcotest.test_case "stats accumulate" `Quick test_cg_stats;
        ] );
      ( "kernels",
        [
          prop_bvec_dot;
          prop_bvec_updates;
          prop_bmat_gemv;
          prop_cg_matches_boxed;
          Alcotest.test_case "cg breakdown path matches boxed" `Quick
            test_cg_matches_boxed_breakdown;
          Alcotest.test_case "cg tolerates buffer-reusing apply" `Quick
            test_cg_scratch_not_retained;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        ] );
    ]
