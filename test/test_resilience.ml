(* Tests for the resilience stack (lib/substrate): structured solve-quality
   reports, typed Solve_failed, deterministic chaos injection, the
   retry/escalation wrapper, checkpointed extraction, and the CG breakdown
   flag. The load-bearing guarantee throughout: fault sites and recovered
   results are bit-identical for every jobs value. *)

open La
module Blackbox = Substrate.Blackbox
module Health = Substrate.Health
module Chaos = Substrate.Chaos
module Resilient = Substrate.Resilient
module Checkpoint = Substrate.Checkpoint
open Sparsify

let rng = Rng.create 314159

let bitwise_equal_mat a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get a i j))
             (Int64.bits_of_float (Mat.get b i j)))
      then ok := false
    done
  done;
  !ok

(* A random diagonally-dominant dense matrix; of_dense boxes over it solve
   instantly, so the tests exercise the wrappers, not the solvers. *)
let dense_g n =
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set g i j (Rng.gaussian rng)
    done;
    Mat.set g i i (Mat.get g i i +. 10.0)
  done;
  g

(* ------------------------------------------------------------------ *)
(* Chaos determinism *)

let test_chaos_deterministic () =
  (* Perturbation noise is a pure function of (seed, solve index); the
     corrupted matrix must be bit-identical across jobs values, and a
     different seed must corrupt differently. *)
  let g = dense_g 24 in
  let extract ~seed ~jobs =
    let chaos = Chaos.create ~seed ~every:3 ~fault:(Chaos.Perturb 1e-4) (Blackbox.of_dense g) in
    Blackbox.extract_dense ~jobs (Chaos.box chaos)
  in
  let a = extract ~seed:7 ~jobs:1 in
  let b = extract ~seed:7 ~jobs:4 in
  Alcotest.(check bool) "same seed, jobs 1 vs 4" true (bitwise_equal_mat a b);
  let c = extract ~seed:8 ~jobs:1 in
  Alcotest.(check bool) "different seed differs" false (bitwise_equal_mat a c);
  Alcotest.(check bool) "perturbation corrupts" false (bitwise_equal_mat a g)

let test_chaos_transient_skips_inner () =
  (* A transient fault fakes the failure without running the inner solve,
     so the retry's clean solve is the first real one at that site. *)
  let g = dense_g 20 in
  let inner = Blackbox.of_dense g in
  let chaos = Chaos.create ~every:4 ~fault:Chaos.Transient inner in
  let res = Resilient.create (Chaos.box chaos) in
  let out = Blackbox.extract_dense (Resilient.blackbox res) in
  Alcotest.(check bool) "recovered exactly" true (bitwise_equal_mat g out);
  Alcotest.(check int) "faults at 0,4,8,12,16" 5 (Chaos.injected chaos);
  Alcotest.(check int) "one retry per fault" 5 (Resilient.retries res);
  Alcotest.(check int) "inner solves = 20 (faulted attempts never reached it)" 20
    (Blackbox.solve_count inner)

(* ------------------------------------------------------------------ *)
(* Retry recovery: bit-identical to the fault-free run *)

let faulty_box g =
  let chaos = Chaos.create ~every:7 ~fault:Chaos.Transient (Blackbox.of_dense g) in
  Resilient.blackbox (Resilient.create (Chaos.box chaos))

let test_retry_recovers_wavelet () =
  let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:8 () in
  let g = dense_g (Geometry.Layout.n_contacts layout) in
  let wav = Wavelet.create ~p:2 layout in
  let clean = Repr.to_dense (Wavelet.extract wav (Blackbox.of_dense g)) in
  List.iter
    (fun jobs ->
      let faulted = Repr.to_dense (Wavelet.extract ~jobs wav (faulty_box g)) in
      Alcotest.(check bool) (Printf.sprintf "jobs=%d" jobs) true (bitwise_equal_mat clean faulted))
    [ 1; 4 ]

let test_retry_recovers_lowrank () =
  let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:8 () in
  let g = dense_g (Geometry.Layout.n_contacts layout) in
  let clean = Repr.to_dense (Lowrank.extract ~seed:5 layout (Blackbox.of_dense g)) in
  List.iter
    (fun jobs ->
      let faulted = Repr.to_dense (Lowrank.extract ~seed:5 ~jobs layout (faulty_box g)) in
      Alcotest.(check bool) (Printf.sprintf "jobs=%d" jobs) true (bitwise_equal_mat clean faulted))
    [ 1; 4 ]

let test_fallback_ladder () =
  (* A persistent hard fault on the primary: attempt 2 retries the primary
     (still faulted), attempt 3 escalates to the clean fallback and
     recovers. The fallback must stay unbuilt until it is needed. *)
  let g = dense_g 10 in
  let chaos = Chaos.create ~every:5 ~fault:Chaos.Nan_response (Blackbox.of_dense g) in
  let built = ref false in
  let fallback =
    lazy
      (built := true;
       Blackbox.of_dense g)
  in
  let res = Resilient.create ~fallbacks:[ ("clean", fallback) ] (Chaos.box chaos) in
  let out = Blackbox.extract_dense (Resilient.blackbox res) in
  Alcotest.(check bool) "recovered via the fallback" true (bitwise_equal_mat g out);
  Alcotest.(check bool) "fallback was built" true !built;
  Alcotest.(check int) "two retries per fault site (0 and 5)" 4 (Resilient.retries res);
  Alcotest.(check int) "no exhausted solves" 0 (List.length (Resilient.failures res))

(* ------------------------------------------------------------------ *)
(* Typed failures *)

let test_fail_fast_names_index () =
  (* With retries disabled every fault is fatal, and the exception names
     the logical solve index. Sequentially the first fault site (offset 3)
     fails; under a pool any fault site may be recorded first, but all sit
     at offset 3 mod 7. *)
  let g = dense_g 32 in
  let run jobs =
    let chaos = Chaos.create ~offset:3 ~every:7 ~fault:Chaos.Transient (Blackbox.of_dense g) in
    let res = Resilient.create ~policy:Resilient.fail_fast (Chaos.box chaos) in
    Blackbox.extract_dense ~jobs (Resilient.blackbox res)
  in
  (match run 1 with
  | _ -> Alcotest.fail "expected Solve_failed (jobs=1)"
  | exception Blackbox.Solve_failed { index; reason } ->
    Alcotest.(check int) "first fault site" 3 index;
    Alcotest.(check bool) "reason mentions attempts" true
      (String.length reason > 0 && index mod 7 = 3));
  match run 4 with
  | _ -> Alcotest.fail "expected Solve_failed (jobs=4)"
  | exception Blackbox.Solve_failed { index; _ } ->
    (* The payload crossed the pool's domain boundary intact. *)
    Alcotest.(check int) "a fault site" 3 (index mod 7)

let test_nan_injection_names_rhs () =
  (* A NaN response without any resilient wrapper: the box's own finite
     scan raises, naming the offending right-hand side. *)
  let g = dense_g 12 in
  let chaos = Chaos.create ~offset:5 ~every:1000 ~fault:Chaos.Nan_response (Blackbox.of_dense g) in
  let vs = Array.init 12 (fun _ -> Rng.gaussian_array rng 12) in
  match Blackbox.apply_batch (Chaos.box chaos) vs with
  | _ -> Alcotest.fail "expected Solve_failed"
  | exception Blackbox.Solve_failed { index; reason } ->
    Alcotest.(check int) "rhs index" 5 index;
    Alcotest.(check bool) "reason mentions non-finite" true
      (String.length reason > 0)

let test_degrade_completes () =
  (* Persistent NaN faults with a Degrade policy: extraction completes,
     substituting zeros (no finite iterate ever appeared) and recording
     every exhausted solve. *)
  let g = dense_g 16 in
  let chaos = Chaos.create ~every:5 ~fault:Chaos.Nan_response (Blackbox.of_dense g) in
  let res = Resilient.create ~policy:Resilient.degrade (Chaos.box chaos) in
  let out = Blackbox.extract_dense (Resilient.blackbox res) in
  Alcotest.(check int) "degraded solves at 0,5,10,15" 4 (Resilient.degraded_count res);
  Alcotest.(check int) "failures recorded" 4 (List.length (Resilient.failures res));
  List.iter
    (fun (f : Resilient.failure) ->
      Alcotest.(check bool) "degraded flag" true f.degraded;
      Alcotest.(check int) "fault site" 0 (f.solve_index mod 5))
    (Resilient.failures res);
  (* Substituted columns are all-zero; untouched columns match G. *)
  for i = 0 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "col 1 row %d intact" i)
      true
      (Float.equal (Mat.get out i 1) (Mat.get g i 1));
    Alcotest.(check (float 0.0)) (Printf.sprintf "col 5 row %d zeroed" i) 0.0 (Mat.get out i 5)
  done

(* ------------------------------------------------------------------ *)
(* Checkpoint: kill and resume without repeating solves *)

let test_checkpoint_resume () =
  let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:8 () in
  let g = dense_g (Geometry.Layout.n_contacts layout) in
  let wav = Wavelet.create ~p:2 layout in
  (* Reference run: the fault-free representation and its solve budget. *)
  let clean_inner = Blackbox.of_dense g in
  let clean = Repr.to_dense (Wavelet.extract wav clean_inner) in
  let total_solves = Blackbox.solve_count clean_inner in
  Alcotest.(check bool) "reference run solved something" true (total_solves > 0);
  let path = Filename.temp_file "substrate_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* Crash run: a persistent NaN late in the solve sequence kills the
         extraction (no resilience), after earlier stages have persisted. *)
      let crash_at = (2 * total_solves) / 3 in
      let ck1 = Checkpoint.create path in
      let chaos =
        Chaos.create ~offset:crash_at ~every:100000 ~fault:Chaos.Nan_response (Blackbox.of_dense g)
      in
      (match Wavelet.extract ~checkpoint:ck1 wav (Chaos.box chaos) with
      | _ -> Alcotest.fail "expected the crash run to fail"
      | exception Blackbox.Solve_failed _ -> ());
      Checkpoint.close ck1;
      (* Resume with a clean box: completed stages replay from disk; only
         the remainder hits the solver. *)
      let ck2 = Checkpoint.create path in
      Alcotest.(check bool) "stages persisted before the crash" true
        (Checkpoint.stages_on_disk ck2 > 0);
      let resume_inner = Blackbox.of_dense g in
      let resumed = Repr.to_dense (Wavelet.extract ~checkpoint:ck2 wav resume_inner) in
      Checkpoint.close ck2;
      Alcotest.(check bool) "resume is bit-identical to uninterrupted" true
        (bitwise_equal_mat clean resumed);
      Alcotest.(check bool) "some solves were not repeated" true (Checkpoint.cached_solves ck2 > 0);
      Alcotest.(check int) "resume ran exactly the missing solves"
        (total_solves - Checkpoint.cached_solves ck2)
        (Blackbox.solve_count resume_inner))

let test_checkpoint_resume_lowrank () =
  (* The same kill-and-resume contract for the low-rank extractor, at
     jobs 1 and 4: the fault site, the persisted stages and the resumed
     result are all independent of the parallelism. *)
  let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:8 () in
  let g = dense_g (Geometry.Layout.n_contacts layout) in
  let clean_inner = Blackbox.of_dense g in
  let clean = Repr.to_dense (Lowrank.extract ~seed:5 layout clean_inner) in
  let total_solves = Blackbox.solve_count clean_inner in
  Alcotest.(check bool) "reference run solved something" true (total_solves > 0);
  List.iter
    (fun jobs ->
      let path = Filename.temp_file "substrate_ckpt" ".bin" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let crash_at = (2 * total_solves) / 3 in
          let ck1 = Checkpoint.create path in
          let chaos =
            Chaos.create ~offset:crash_at ~every:100000 ~fault:Chaos.Nan_response
              (Blackbox.of_dense g)
          in
          (match Lowrank.extract ~seed:5 ~jobs ~checkpoint:ck1 layout (Chaos.box chaos) with
          | _ -> Alcotest.fail "expected the crash run to fail"
          | exception Blackbox.Solve_failed _ -> ());
          Checkpoint.close ck1;
          let ck2 = Checkpoint.create path in
          Alcotest.(check bool) "stages persisted before the crash" true
            (Checkpoint.stages_on_disk ck2 > 0);
          let resume_inner = Blackbox.of_dense g in
          let resumed =
            Repr.to_dense (Lowrank.extract ~seed:5 ~jobs ~checkpoint:ck2 layout resume_inner)
          in
          Checkpoint.close ck2;
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: resume is bit-identical to uninterrupted" jobs)
            true (bitwise_equal_mat clean resumed);
          Alcotest.(check bool) "some solves were not repeated" true
            (Checkpoint.cached_solves ck2 > 0);
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d: resume ran exactly the missing solves" jobs)
            (total_solves - Checkpoint.cached_solves ck2)
            (Blackbox.solve_count resume_inner)))
    [ 1; 4 ]

let test_checkpoint_mismatch () =
  (* A checkpoint written by a different run (different RHSs) is rejected. *)
  let path = Filename.temp_file "substrate_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let g = dense_g 8 in
      let ck1 = Checkpoint.create path in
      let b1 = Checkpoint.wrap ck1 (Blackbox.of_dense g) in
      ignore (Blackbox.apply_batch b1 (Array.init 3 (fun _ -> Rng.gaussian_array rng 8)));
      Checkpoint.close ck1;
      let ck2 = Checkpoint.create path in
      Alcotest.(check int) "one stage on disk" 1 (Checkpoint.stages_on_disk ck2);
      let b2 = Checkpoint.wrap ck2 (Blackbox.of_dense g) in
      (match Blackbox.apply_batch b2 (Array.init 3 (fun _ -> Rng.gaussian_array rng 8)) with
      | _ -> Alcotest.fail "expected Mismatch"
      | exception Checkpoint.Mismatch { stage; _ } -> Alcotest.(check int) "stage 0" 0 stage);
      Checkpoint.close ck2)

(* ------------------------------------------------------------------ *)
(* Satellites: index validation, CG breakdown flag, health aggregation *)

let test_extract_columns_validates () =
  let g = dense_g 8 in
  let bb = Blackbox.of_dense g in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match Blackbox.extract_columns bb [| 0; 99; 3 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the bad index" true (contains_sub msg "99"));
  Alcotest.(check int) "no solve ran" 0 (Blackbox.solve_count bb)

let test_cg_breakdown_flag () =
  (* An indefinite operator: p' A p = 0 on the very first direction. CG
     must stop immediately and say so, not loop to max_iter. *)
  let apply v = [| v.(0); -.v.(1) |] in
  let stats = Krylov.make_stats () in
  let r = Krylov.cg ~stats ~apply [| 1.0; 1.0 |] in
  Alcotest.(check bool) "breakdown flagged" true r.Krylov.breakdown;
  Alcotest.(check bool) "stopped early" true (r.Krylov.iterations <= 1);
  Alcotest.(check int) "stats count breakdowns" 1 stats.Krylov.breakdowns;
  (* A well-behaved SPD solve must not set the flag. *)
  let ok = Krylov.cg ~apply:(fun v -> [| 2.0 *. v.(0); 3.0 *. v.(1) |]) [| 1.0; 1.0 |] in
  Alcotest.(check bool) "no breakdown on SPD" false ok.Krylov.breakdown;
  Alcotest.(check bool) "converged on SPD" true ok.Krylov.converged

let test_health_aggregation () =
  let g = dense_g 8 in
  let bb = Blackbox.of_dense g in
  ignore (Blackbox.extract_dense bb);
  let s = Health.summary (Blackbox.health bb) in
  Alcotest.(check int) "solves" 8 s.Health.s_solves;
  Alcotest.(check int) "non-finite" 0 s.Health.s_non_finite;
  Alcotest.(check bool) "healthy" true (Health.healthy s);
  (* A solver publishing a non-converged report flips the health verdict
     and surfaces through last_report. *)
  let health = Health.create () in
  let bb2 =
    Blackbox.make ~health ~n:8 (fun v ->
        Blackbox.report_solve health { Health.ok with converged = false; residual = 1.0 };
        Mat.gemv g v)
  in
  ignore (Blackbox.apply bb2 (Array.make 8 1.0));
  let s2 = Health.summary (Blackbox.health bb2) in
  Alcotest.(check int) "non-converged recorded" 1 s2.Health.s_non_converged;
  Alcotest.(check bool) "unhealthy" false (Health.healthy s2);
  match Blackbox.last_report () with
  | None -> Alcotest.fail "expected a last report"
  | Some r ->
    Alcotest.(check bool) "last report non-converged" false r.Health.converged;
    Alcotest.(check bool) "finite scan completed" true r.Health.finite

let () =
  Alcotest.run "resilience"
    [
      ( "chaos",
        [
          Alcotest.test_case "deterministic across seeds and jobs" `Quick test_chaos_deterministic;
          Alcotest.test_case "transient skips the inner solve" `Quick test_chaos_transient_skips_inner;
        ] );
      ( "retry",
        [
          Alcotest.test_case "wavelet recovers bit-identically" `Quick test_retry_recovers_wavelet;
          Alcotest.test_case "lowrank recovers bit-identically" `Quick test_retry_recovers_lowrank;
          Alcotest.test_case "ladder retries primary then escalates" `Quick test_fallback_ladder;
          Alcotest.test_case "fail-fast names the solve index" `Quick test_fail_fast_names_index;
          Alcotest.test_case "nan injection names the rhs" `Quick test_nan_injection_names_rhs;
          Alcotest.test_case "degrade completes with a report" `Quick test_degrade_completes;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill and resume repeats no solve" `Quick test_checkpoint_resume;
          Alcotest.test_case "lowrank kill and resume, jobs 1 and 4" `Quick
            test_checkpoint_resume_lowrank;
          Alcotest.test_case "foreign checkpoint rejected" `Quick test_checkpoint_mismatch;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "extract_columns validates indices" `Quick test_extract_columns_validates;
          Alcotest.test_case "cg breakdown flag" `Quick test_cg_breakdown_flag;
          Alcotest.test_case "health aggregation" `Quick test_health_aggregation;
        ] );
    ]
