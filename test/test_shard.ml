(* Tests for sharded crash-safe extraction: the shard plan, the manifest
   container (roundtrip + every corruption mode, mirroring the operator
   artifact tests), the run driver's resume/quarantine/recovery paths, and
   the block-diagonal composition with its health report. The load-bearing
   guarantee throughout: a resumed or recovered run is bit-identical to an
   uninterrupted one, and never repeats a persisted solve. *)

open La
module Blackbox = Substrate.Blackbox
module Chaos = Substrate.Chaos
module Resilient = Substrate.Resilient
module Shard = Substrate.Shard
module Artifact = Subcouple_op.Artifact
module Manifest = Artifact.Manifest
open Sparsify

let rng = Rng.create 271828

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.equal (String.sub s i k) sub || go (i + 1)) in
  go 0

let bitwise_equal_mat a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get a i j))
             (Int64.bits_of_float (Mat.get b i j)))
      then ok := false
    done
  done;
  !ok

(* A random diagonally-dominant dense matrix; of_dense boxes over it solve
   instantly, so the tests exercise the shard machinery, not the solvers. *)
let dense_g n =
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set g i j (Rng.gaussian rng)
    done;
    Mat.set g i i (Mat.get g i i +. 10.0)
  done;
  g

let with_temp_dir f =
  let dir = Filename.temp_file "test_shard" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let with_temp f =
  let path = Filename.temp_file "test_shard" ".scm" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* The shared fixture: one layout, one reference matrix, shards at level 1. *)
let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:8 ()
let n = Geometry.Layout.n_contacts layout
let g = dense_g n
let box () = Blackbox.of_dense g
let shard_level = 1
let the_plan = Shard.plan ~shard_level layout

let to_dense op =
  let k = Subcouple_op.n op in
  let d = Mat.init k k (fun _ _ -> 0.0) in
  for j = 0 to k - 1 do
    let e = Array.make k 0.0 in
    e.(j) <- 1.0;
    Mat.set_col d j (Subcouple_op.apply op e)
  done;
  d

(* ------------------------------------------------------------------ *)
(* The plan *)

let test_plan_partitions () =
  let p = the_plan in
  Alcotest.(check int) "plan dimension" n p.Shard.n;
  Alcotest.(check bool) "more than one shard" true (Array.length p.Shard.shards > 1);
  let seen = Array.make n 0 in
  Array.iteri
    (fun i s ->
      Alcotest.(check int) "ids are positional" i s.Shard.shard_id;
      Alcotest.(check bool) "shard is nonempty" true (Array.length s.Shard.contacts > 0);
      let prev = ref (-1) in
      Array.iter
        (fun c ->
          Alcotest.(check bool) "strictly ascending" true (c > !prev);
          prev := c;
          seen.(c) <- seen.(c) + 1)
        s.Shard.contacts)
    p.Shard.shards;
  Array.iteri
    (fun c k -> Alcotest.(check int) (Printf.sprintf "contact %d claimed once" c) 1 k)
    seen;
  (* Pure function of (layout, level). *)
  let q = Shard.plan ~shard_level layout in
  Alcotest.(check bool) "plan is deterministic" true (p = q)

let test_restricted_box_is_principal_submatrix () =
  let s = the_plan.Shard.shards.(0) in
  let contacts = s.Shard.contacts in
  let k = Array.length contacts in
  let restricted = Shard.restricted_box ~contacts (box ()) in
  let sub = Blackbox.extract_dense restricted in
  let expected = Mat.select g ~row_idx:contacts ~col_idx:contacts in
  Alcotest.(check int) "dimension" k (Mat.rows sub);
  Alcotest.(check bool) "G(C_s, C_s) exactly" true (bitwise_equal_mat expected sub)

(* ------------------------------------------------------------------ *)
(* Manifest container: roundtrip *)

let sample_manifest () =
  {
    Manifest.n = 7;
    total_shards = 3;
    geometry_digest = Digest.string "geometry";
    source = "test manifest";
    entries =
      [|
        {
          Manifest.shard_id = 0;
          level = 1;
          ix = 0;
          iy = 1;
          contacts = [| 0; 2; 4 |];
          file = "shard-0000.sca";
          file_digest = Digest.string "shard zero";
          solves = 12;
          status = Manifest.Complete;
        };
        {
          Manifest.shard_id = 2;
          level = 1;
          ix = 1;
          iy = 1;
          contacts = [| 3; 6 |];
          file = "";
          file_digest = "";
          solves = 0;
          status = Manifest.Quarantined "solve 14: nan response";
        };
      |];
  }

let test_manifest_roundtrip () =
  with_temp (fun path ->
      let m = sample_manifest () in
      Manifest.save ~path m;
      let l = Manifest.load ~path in
      Alcotest.(check bool) "roundtrip is exact" true (m = l);
      Alcotest.(check int) "one complete" 1 (List.length (Manifest.complete l));
      Alcotest.(check int) "one quarantined" 1 (List.length (Manifest.quarantined l)))

let test_load_any_dispatch () =
  with_temp (fun path ->
      Manifest.save ~path (sample_manifest ());
      (match Artifact.load_any ~path with
      | `Manifest m -> Alcotest.(check int) "manifest dimension" 7 m.Manifest.n
      | `Operator _ -> Alcotest.fail "manifest dispatched as operator");
      Repr.save (Lowrank.extract layout (box ())) ~path;
      (match Artifact.load_any ~path with
      | `Operator p -> Alcotest.(check int) "operator dimension" n p.Artifact.n
      | `Manifest _ -> Alcotest.fail "operator dispatched as manifest");
      (* The manifest loader names the cross-family mistake precisely. *)
      match Manifest.load ~path with
      | _ -> Alcotest.fail "operator artifact loaded as manifest"
      | exception Artifact.Error { error = Artifact.Not_an_artifact _; _ } -> ())

(* ------------------------------------------------------------------ *)
(* Manifest container: every corruption mode maps to its typed error,
   mirroring the operator-artifact corruption tests in test_op.ml. *)

let check_rejects name path pred =
  match Manifest.load ~path with
  | _ -> Alcotest.fail (name ^ ": corrupt manifest loaded successfully")
  | exception Artifact.Error { error; _ } ->
    Alcotest.(check bool) (name ^ ": " ^ Artifact.error_message error) true (pred error)

let with_corrupted corrupt pred name () =
  with_temp (fun path ->
      Manifest.save ~path (sample_manifest ());
      write_file path (corrupt (read_file path));
      check_rejects name path pred)

let test_truncated_header =
  with_corrupted
    (fun s -> String.sub s 0 20)
    (function Artifact.Truncated _ -> true | _ -> false)
    "truncated header"

let test_truncated_payload =
  with_corrupted
    (fun s -> String.sub s 0 (String.length s - 5))
    (function Artifact.Truncated _ -> true | _ -> false)
    "truncated payload"

let test_flipped_byte =
  with_corrupted
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 0x01));
      Bytes.to_string b)
    (function Artifact.Checksum_mismatch -> true | _ -> false)
    "flipped payload byte"

let test_wrong_version =
  with_corrupted
    (fun s -> String.sub s 0 6 ^ "Z9" ^ String.sub s 8 (String.length s - 8))
    (function Artifact.Unsupported_version v -> String.equal v "Z9" | _ -> false)
    "wrong format version"

let test_not_a_manifest =
  with_corrupted
    (fun _ -> "this is not a shard manifest at all")
    (function Artifact.Not_an_artifact _ -> true | _ -> false)
    "foreign file"

let test_empty_file =
  with_corrupted
    (fun _ -> "")
    (function Artifact.Not_an_artifact _ -> true | _ -> false)
    "empty file"

let test_trailing_garbage =
  with_corrupted
    (fun s -> s ^ "xyz")
    (function Artifact.Malformed _ -> true | _ -> false)
    "trailing garbage"

let test_missing_file () =
  check_rejects "missing file" "/nonexistent/manifest.scm"
    (function Artifact.Io _ -> true | _ -> false)

let test_overlapping_contacts_rejected () =
  (* Semantic validation beyond the container: two shards claiming the same
     contact are refused even though the frame checksum is intact. *)
  with_temp (fun path ->
      let m = sample_manifest () in
      let e = m.Manifest.entries.(1) in
      let m =
        { m with Manifest.entries = [| m.Manifest.entries.(0); { e with contacts = [| 2; 6 |] } |] }
      in
      match Manifest.save ~path m with
      | _ -> Alcotest.fail "overlapping shards saved successfully"
      | exception Artifact.Error { error = Artifact.Malformed _; _ } -> ())

(* ------------------------------------------------------------------ *)
(* End-to-end sharded extraction and composition *)

let extract_into dir =
  Sharded.extract ~method_:`Lowrank ~shard_level ~dir layout (box ())

let test_sharded_extract_completes () =
  with_temp_dir (fun dir ->
      let m, prog = extract_into dir in
      let total = Array.length the_plan.Shard.shards in
      Alcotest.(check int) "all shards planned" total prog.Shard.planned;
      Alcotest.(check int) "all shards extracted" total prog.Shard.extracted;
      Alcotest.(check int) "nothing skipped" 0 prog.Shard.skipped;
      Alcotest.(check int) "nothing quarantined" 0 prog.Shard.quarantined;
      Alcotest.(check int) "fresh run has no cached solves" 0 prog.Shard.cached_solves;
      Alcotest.(check int) "live solves account for everything" prog.Shard.total_solves
        prog.Shard.live_solves;
      Alcotest.(check bool) "manifest persisted" true (Sys.file_exists (Shard.manifest_path dir));
      Array.iter
        (fun (e : Manifest.entry) ->
          Alcotest.(check bool) "entry complete" true (Manifest.is_complete e);
          Alcotest.(check bool) "shard artifact persisted" true
            (Sys.file_exists (Filename.concat dir e.Manifest.file));
          Alcotest.(check bool) "checkpoint cleaned up" true
            (not (Sys.file_exists (Filename.concat dir (Shard.checkpoint_basename e.Manifest.shard_id)))))
        m.Manifest.entries;
      let op, health = Subcouple_op.of_manifest ~dir m in
      (match health with
      | Subcouple_op.Full -> ()
      | Subcouple_op.Degraded _ -> Alcotest.fail "complete manifest reported degraded");
      (* The composition is exactly the block-diagonal of standalone
         per-shard extractions: same method, same sub-layout, same
         restricted box — the shard machinery must not change the math. *)
      let expected = Mat.init n n (fun _ _ -> 0.0) in
      Array.iter
        (fun s ->
          let contacts = s.Shard.contacts in
          let sub_layout =
            Geometry.Layout.restrict layout ~ids:contacts ~name:"reference shard"
          in
          let block =
            Repr.to_dense
              (Lowrank.extract sub_layout (Shard.restricted_box ~contacts (box ())))
          in
          Array.iteri
            (fun bi i ->
              Array.iteri (fun bj j -> Mat.set expected i j (Mat.get block bi bj)) contacts)
            contacts)
        the_plan.Shard.shards;
      Alcotest.(check bool) "composition = block-diagonal of per-shard extractions" true
        (bitwise_equal_mat expected (to_dense op)))

exception Boom

let test_resume_skips_complete_shards () =
  with_temp_dir (fun ref_dir ->
      let ref_m, ref_prog = extract_into ref_dir in
      let ref_op, _ = Subcouple_op.of_manifest ~dir:ref_dir ref_m in
      let ref_dense = to_dense ref_op in
      with_temp_dir (fun dir ->
          (* Crash between shards: the driver's extract closure dies before
             shard [crash_at] runs. Everything already finished must be on
             disk and skipped by the resume. *)
          let total = Array.length the_plan.Shard.shards in
          let crash_at = total - 1 in
          (match
             Shard.run ~dir
               ~extract:(fun ~shard ~first_index ~checkpoint ->
                 if shard.Shard.shard_id = crash_at then raise Boom;
                 Sharded.extract_one ~method_:`Lowrank ~jobs:1
                   ~policy:Resilient.default_policy ~fallbacks:[] ~source:"test" ~layout
                   ~box:(box ()) ~shard ~first_index ~checkpoint)
               the_plan
           with
          | _ -> Alcotest.fail "expected the crash run to die"
          | exception Boom -> ());
          let m, prog = extract_into dir in
          Alcotest.(check int) "crashed shards extracted on resume" (total - crash_at)
            prog.Shard.extracted;
          Alcotest.(check int) "finished shards skipped" crash_at prog.Shard.skipped;
          Alcotest.(check int) "no shard lost" total (Array.length m.Manifest.entries);
          Alcotest.(check int) "skipped solves served from cache"
            (prog.Shard.total_solves - prog.Shard.live_solves)
            prog.Shard.cached_solves;
          Alcotest.(check int) "same total solve budget as uninterrupted"
            ref_prog.Shard.total_solves prog.Shard.total_solves;
          let op, _ = Subcouple_op.of_manifest ~dir m in
          Alcotest.(check bool) "resume is bit-identical to uninterrupted" true
            (bitwise_equal_mat ref_dense (to_dense op))))

let test_resume_replays_checkpoint_mid_shard () =
  with_temp_dir (fun ref_dir ->
      let ref_m, ref_prog = extract_into ref_dir in
      let ref_op, _ = Subcouple_op.of_manifest ~dir:ref_dir ref_m in
      let ref_dense = to_dense ref_op in
      with_temp_dir (fun dir ->
          (* Crash inside shard 0, after some of its stages have persisted:
             a fuse on the inner box dies one solve short of finishing the
             shard, past every checkpointed batch but the last. *)
          let shard0_solves =
            (List.hd (Manifest.complete ref_m)).Manifest.solves
          in
          Alcotest.(check bool) "shard 0 is big enough to interrupt" true (shard0_solves > 2);
          let fuse = ref (shard0_solves - 1) in
          let exploding =
            let inner = box () in
            Blackbox.make_batch ~count_total:false ~n
              ~batch:(fun ~jobs:_ vs ->
                Array.map
                  (fun v ->
                    decr fuse;
                    if !fuse < 0 then raise Boom;
                    Blackbox.apply inner v)
                  vs)
              (fun v ->
                decr fuse;
                if !fuse < 0 then raise Boom;
                Blackbox.apply inner v)
          in
          (match
             Shard.run ~dir
               ~extract:(fun ~shard ~first_index ~checkpoint ->
                 Sharded.extract_one ~method_:`Lowrank ~jobs:1
                   ~policy:Resilient.default_policy ~fallbacks:[] ~source:"test" ~layout
                   ~box:exploding ~shard ~first_index ~checkpoint)
               the_plan
           with
          | _ -> Alcotest.fail "expected the fused run to die"
          | exception Boom -> ());
          Alcotest.(check bool) "interrupted shard left its checkpoint" true
            (Sys.file_exists (Filename.concat dir (Shard.checkpoint_basename 0)));
          let m, prog = extract_into dir in
          Alcotest.(check bool) "checkpointed stages were replayed, not re-solved" true
            (prog.Shard.cached_solves > 0);
          Alcotest.(check int) "cached + live = total"
            prog.Shard.total_solves
            (prog.Shard.cached_solves + prog.Shard.live_solves);
          Alcotest.(check int) "same total solve budget as uninterrupted"
            ref_prog.Shard.total_solves prog.Shard.total_solves;
          Alcotest.(check bool) "checkpoint dropped once the artifact superseded it" true
            (not (Sys.file_exists (Filename.concat dir (Shard.checkpoint_basename 0))));
          let op, _ = Subcouple_op.of_manifest ~dir m in
          Alcotest.(check bool) "mid-shard resume is bit-identical" true
            (bitwise_equal_mat ref_dense (to_dense op))))

let test_quarantine_and_degraded_compose () =
  with_temp_dir (fun ref_dir ->
      let ref_m, _ = extract_into ref_dir in
      let ref_op, _ = Subcouple_op.of_manifest ~dir:ref_dir ref_m in
      with_temp_dir (fun dir ->
          (* A persistent hard fault pinned (by run-global index) to the
             last shard's first solve; fail-fast, no ladder: the shard is
             quarantined, the run completes. *)
          let total = Array.length the_plan.Shard.shards in
          let last = total - 1 in
          let faulted_first =
            List.fold_left
              (fun acc (e : Manifest.entry) -> if e.shard_id < last then acc + e.solves else acc)
              0
              (Manifest.complete ref_m)
          in
          let chaos =
            Chaos.create ~offset:faulted_first ~every:1_000_000 ~fault:Chaos.Nan_response (box ())
          in
          let m, prog =
            Sharded.extract ~policy:Resilient.fail_fast ~method_:`Lowrank ~shard_level ~dir
              layout (Chaos.box chaos)
          in
          Alcotest.(check int) "one shard quarantined" 1 prog.Shard.quarantined;
          Alcotest.(check int) "the rest completed" (total - 1) prog.Shard.extracted;
          let q =
            match Manifest.quarantined m with
            | [ e ] -> e
            | _ -> Alcotest.fail "expected exactly one quarantined entry"
          in
          Alcotest.(check int) "the faulted shard" last q.Manifest.shard_id;
          let reason =
            match q.Manifest.status with
            | Manifest.Quarantined r -> r
            | Manifest.Complete -> Alcotest.fail "quarantined entry marked complete"
          in
          Alcotest.(check bool) "reason names the solve index" true
            (contains reason (Printf.sprintf "solve %d" faulted_first));
          let op, health = Subcouple_op.of_manifest ~dir m in
          let masked =
            match health with
            | Subcouple_op.Degraded { quarantined = [ (id, _) ]; pending = 0; masked_contacts } ->
              Alcotest.(check int) "health names the shard" last id;
              masked_contacts
            | _ -> Alcotest.fail "expected a degraded report naming one shard"
          in
          Alcotest.(check bool) "masked contacts are the shard's" true
            (masked = the_plan.Shard.shards.(last).Shard.contacts);
          (* Unmasked rows bit-identical to the full composition; masked
             rows answer zero. *)
          let is_masked = Array.make n false in
          Array.iter (fun c -> is_masked.(c) <- true) masked;
          let v = Rng.gaussian_array rng n in
          let full = Subcouple_op.apply ref_op v in
          let deg = Subcouple_op.apply op v in
          Array.iteri
            (fun i fi ->
              if is_masked.(i) then
                Alcotest.(check (float 0.0)) (Printf.sprintf "masked row %d is zero" i) 0.0 deg.(i)
              else
                Alcotest.(check bool) (Printf.sprintf "row %d bit-identical" i) true
                  (Int64.equal (Int64.bits_of_float fi) (Int64.bits_of_float deg.(i))))
            full;
          (* A clean resume retries the quarantined shard and converges to
             the uninterrupted result. *)
          let m2, prog2 = extract_into dir in
          Alcotest.(check int) "quarantined shard retried" 1 prog2.Shard.extracted;
          Alcotest.(check int) "nothing quarantined after retry" 0 prog2.Shard.quarantined;
          let op2, health2 = Subcouple_op.of_manifest ~dir m2 in
          (match health2 with
          | Subcouple_op.Full -> ()
          | Subcouple_op.Degraded _ -> Alcotest.fail "retried manifest still degraded");
          Alcotest.(check bool) "retried composition is bit-identical" true
            (bitwise_equal_mat (to_dense ref_op) (to_dense op2))))

let test_torn_shard_artifact_reextracted () =
  with_temp_dir (fun dir ->
      let m1, _ = extract_into dir in
      let op1, _ = Subcouple_op.of_manifest ~dir m1 in
      let d1 = to_dense op1 in
      let victim = Filename.concat dir (Shard.shard_basename 0) in
      let bytes = read_file victim in
      write_file victim (String.sub bytes 0 (String.length bytes / 2));
      (* The digest pin catches the torn file; only that shard re-runs. *)
      let m2, prog = extract_into dir in
      Alcotest.(check int) "torn shard re-extracted" 1 prog.Shard.extracted;
      Alcotest.(check int) "others skipped" (prog.Shard.planned - 1) prog.Shard.skipped;
      let op2, _ = Subcouple_op.of_manifest ~dir m2 in
      Alcotest.(check bool) "re-extraction is bit-identical" true
        (bitwise_equal_mat d1 (to_dense op2)))

let test_torn_manifest_recovered_by_scan () =
  with_temp_dir (fun dir ->
      let m1, _ = extract_into dir in
      let op1, _ = Subcouple_op.of_manifest ~dir m1 in
      let d1 = to_dense op1 in
      let path = Shard.manifest_path dir in
      let bytes = read_file path in
      write_file path (String.sub bytes 0 (String.length bytes / 2));
      let m2, prog = extract_into dir in
      Alcotest.(check int) "every shard recovered from its artifact" prog.Shard.planned
        prog.Shard.recovered;
      Alcotest.(check int) "recovered shards skipped, not re-run" prog.Shard.planned
        prog.Shard.skipped;
      Alcotest.(check int) "no solver work at all" 0 prog.Shard.live_solves;
      let op2, _ = Subcouple_op.of_manifest ~dir m2 in
      Alcotest.(check bool) "recovered composition is bit-identical" true
        (bitwise_equal_mat d1 (to_dense op2)))

let test_mismatched_plan_refused () =
  with_temp_dir (fun dir ->
      let _ = extract_into dir in
      (* Different shard level: a different plan shape. *)
      (match Sharded.extract ~method_:`Lowrank ~shard_level:2 ~dir layout (box ()) with
      | _ -> Alcotest.fail "level-2 resume over a level-1 manifest succeeded"
      | exception Shard.Mismatch _ -> ());
      (* Same contact count, different geometry: the digest catches it. *)
      let other = Geometry.Layout.alternating ~size:64.0 ~per_side:8 () in
      match Sharded.extract ~method_:`Lowrank ~shard_level ~dir other (Blackbox.of_dense g) with
      | _ -> Alcotest.fail "resume over a different layout succeeded"
      | exception Shard.Mismatch _ -> ())

(* ------------------------------------------------------------------ *)
(* Kill schedule *)

let test_kill_schedule_deterministic () =
  let a = Chaos.kill_schedule ~seed:42 ~points:5 ~max_index:100 in
  let b = Chaos.kill_schedule ~seed:42 ~points:5 ~max_index:100 in
  Alcotest.(check bool) "pure function of the seed" true (a = b);
  Alcotest.(check int) "requested points" 5 (Array.length a);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "in range" true (x >= 0 && x < 100);
      if i > 0 then Alcotest.(check bool) "sorted, distinct" true (x > a.(i - 1)))
    a;
  let c = Chaos.kill_schedule ~seed:43 ~points:5 ~max_index:100 in
  Alcotest.(check bool) "different seed differs" false (a = c)

let () =
  Alcotest.run "shard"
    [
      ( "plan",
        [
          Alcotest.test_case "partitions the contacts" `Quick test_plan_partitions;
          Alcotest.test_case "restricted box is the principal submatrix" `Quick
            test_restricted_box_is_principal_submatrix;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "load_any dispatches on family" `Quick test_load_any_dispatch;
          Alcotest.test_case "truncated header" `Quick test_truncated_header;
          Alcotest.test_case "truncated payload" `Quick test_truncated_payload;
          Alcotest.test_case "flipped payload byte" `Quick test_flipped_byte;
          Alcotest.test_case "wrong format version" `Quick test_wrong_version;
          Alcotest.test_case "foreign file" `Quick test_not_a_manifest;
          Alcotest.test_case "empty file" `Quick test_empty_file;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "overlapping shards rejected" `Quick
            test_overlapping_contacts_rejected;
        ] );
      ( "extract and resume",
        [
          Alcotest.test_case "fresh run completes and composes" `Quick
            test_sharded_extract_completes;
          Alcotest.test_case "resume skips complete shards" `Quick
            test_resume_skips_complete_shards;
          Alcotest.test_case "resume replays a mid-shard checkpoint" `Quick
            test_resume_replays_checkpoint_mid_shard;
          Alcotest.test_case "quarantine, degraded compose, retry" `Quick
            test_quarantine_and_degraded_compose;
          Alcotest.test_case "torn shard artifact re-extracted" `Quick
            test_torn_shard_artifact_reextracted;
          Alcotest.test_case "torn manifest recovered by scan" `Quick
            test_torn_manifest_recovered_by_scan;
          Alcotest.test_case "mismatched plan refused" `Quick test_mismatched_plan_refused;
        ] );
      ( "kill schedule",
        [
          Alcotest.test_case "deterministic, sorted, in range" `Quick
            test_kill_schedule_deterministic;
        ] );
    ]
