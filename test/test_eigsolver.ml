(* Tests for the eigenfunction (surface-variable) substrate solver. *)

open La
module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
open Eigsolver

let rng = Rng.create 77

let uniform_profile ?(backplane = Profile.Grounded) ?(size = 16.0) ?(depth = 4.0) ?(sigma = 2.0) () =
  Profile.make ~a:size ~b:size ~layers:[ { Profile.thickness = depth; conductivity = sigma } ] ~backplane

(* ------------------------------------------------------------------ *)
(* Eigenvalues *)

let test_lambda_uniform_grounded () =
  (* Single grounded layer: lambda = tanh(gamma d) / (sigma gamma). *)
  let p = uniform_profile () in
  List.iter
    (fun (m, n) ->
      let g = Eigenvalues.gamma p ~m ~n in
      let expected = tanh (g *. 4.0) /. (2.0 *. g) in
      Alcotest.(check (float 1e-10))
        (Printf.sprintf "mode (%d,%d)" m n)
        expected
        (Eigenvalues.lambda p ~m ~n))
    [ (1, 0); (0, 1); (3, 2); (10, 10) ]

let test_lambda_uniform_floating () =
  (* Floating backplane: lambda = coth(gamma d) / (sigma gamma). *)
  let p = uniform_profile ~backplane:Profile.Floating () in
  let m = 2 and n = 1 in
  let g = Eigenvalues.gamma p ~m ~n in
  Alcotest.(check (float 1e-10)) "coth form" (1.0 /. (tanh (g *. 4.0) *. 2.0 *. g)) (Eigenvalues.lambda p ~m ~n)

let test_lambda_dc () =
  (* DC mode of a grounded stack: series resistance sum t_k / sigma_k. *)
  let p =
    Profile.make ~a:8.0 ~b:8.0
      ~layers:[ { Profile.thickness = 1.0; conductivity = 2.0 }; { Profile.thickness = 3.0; conductivity = 0.5 } ]
      ~backplane:Profile.Grounded
  in
  Alcotest.(check (float 1e-12)) "series" ((1.0 /. 2.0) +. (3.0 /. 0.5)) (Eigenvalues.lambda p ~m:0 ~n:0);
  (* Floating DC mode is the huge stand-in. *)
  let pf = uniform_profile ~backplane:Profile.Floating () in
  Alcotest.(check (float 1.0)) "floating dc" Eigenvalues.floating_dc_lambda (Eigenvalues.lambda pf ~m:0 ~n:0)

let test_lambda_two_layer_matches_coefficient_recursion () =
  (* Cross-check the admittance recursion against the thesis's coefficient
     recursion (2.34)-(2.35) computed directly (safe here because the layers
     are thin enough not to overflow). *)
  let sigma1 = 3.0 and sigma2 = 0.7 in
  let t1 = 0.4 and t2 = 0.8 in
  let p =
    Profile.make ~a:4.0 ~b:4.0
      ~layers:[ { Profile.thickness = t1; conductivity = sigma1 }; { Profile.thickness = t2; conductivity = sigma2 } ]
      ~backplane:Profile.Grounded
  in
  let m = 2 and n = 3 in
  let g = Eigenvalues.gamma p ~m ~n in
  let d = t1 +. t2 in
  (* Bottom layer (sigma2): grounded start (zeta, xi) = (1, -1). Interface at
     height t2 above the bottom, i.e. d - d_k = t2. *)
  let zeta1 = 1.0 and xi1 = -1.0 in
  let ratio = sigma2 /. sigma1 in
  let e = exp (g *. t2) in
  let zeta2 = (0.5 *. (1.0 +. ratio) *. zeta1) +. (0.5 *. (1.0 -. ratio) /. (e *. e) *. xi1) in
  let xi2 = (0.5 *. (1.0 -. ratio) *. e *. e *. zeta1) +. (0.5 *. (1.0 +. ratio) *. xi1) in
  let ed = exp (g *. d) in
  let expected = ((zeta2 *. ed) +. (xi2 /. ed)) /. (sigma1 *. g *. ((zeta2 *. ed) -. (xi2 /. ed))) in
  Alcotest.(check (float 1e-10)) "matches (2.35)" expected (Eigenvalues.lambda p ~m ~n)

let test_lambda_positive_decreasing () =
  let p = Profile.thesis_default () in
  let prev = ref Float.infinity in
  for m = 0 to 40 do
    let l = Eigenvalues.lambda p ~m ~n:m in
    Alcotest.(check bool) "positive" true (l > 0.0);
    Alcotest.(check bool) "decreasing along diagonal" true (l <= !prev +. 1e-15);
    prev := l
  done

let test_lambda_no_overflow_thick_layers () =
  (* The raw coefficient recursion overflows here; the admittance form must
     not. *)
  let p = Profile.thesis_default () in
  let l = Eigenvalues.lambda p ~m:127 ~n:127 in
  Alcotest.(check bool) "finite" true (Float.is_finite l && l > 0.0)

(* ------------------------------------------------------------------ *)
(* Panel *)

let small_layout () = Geometry.Layout.regular_grid ~size:16.0 ~per_side:4 ~fill:0.5 ()

let test_panel_assignment () =
  let pan = Panel.create (small_layout ()) ~panels_per_side:16 in
  Alcotest.(check int) "16 contacts" 16 (Panel.n_contacts pan);
  (* Each contact spans 2 units = 2 panels of width 1. *)
  Alcotest.(check int) "4 panels per contact" (16 * 4) (Panel.n_dofs pan)

let test_panel_too_coarse () =
  Alcotest.check_raises "no panels" (Panel.Contact_without_panels 0) (fun () ->
      ignore (Panel.create (small_layout ()) ~panels_per_side:2))

let test_panel_scatter_gather () =
  let pan = Panel.create (small_layout ()) ~panels_per_side:16 in
  let x = Rng.gaussian_array rng (Panel.n_dofs pan) in
  Alcotest.(check bool) "gather . scatter = id" true
    (Vec.approx_equal x (Panel.gather pan (Panel.scatter pan x)))

let test_panel_expand_sum () =
  let pan = Panel.create (small_layout ()) ~panels_per_side:16 in
  let v = Vec.init 16 (fun i -> float_of_int i) in
  let expanded = Panel.expand_contacts pan v in
  (* Summing the expansion multiplies by the panel count per contact. *)
  let sums = Panel.sum_per_contact pan expanded in
  Alcotest.(check bool) "sum = 4 v" true (Vec.approx_equal sums (Vec.scale 4.0 v))

(* ------------------------------------------------------------------ *)
(* Solver *)

let make_solver ?(profile = uniform_profile ()) ?(layout = small_layout ()) ?(pps = 16) () =
  Eig_solver.create profile layout ~panels_per_side:pps

let test_operator_symmetric () =
  let s = make_solver () in
  let n = Eig_solver.panel_count s in
  let x = Rng.gaussian_array rng n and y = Rng.gaussian_array rng n in
  Alcotest.(check (float 1e-9)) "self-adjoint"
    (Vec.dot (Eig_solver.apply_restricted s x) y)
    (Vec.dot x (Eig_solver.apply_restricted s y))

let test_operator_positive () =
  let s = make_solver () in
  let n = Eig_solver.panel_count s in
  for _ = 1 to 5 do
    let x = Rng.gaussian_array rng n in
    Alcotest.(check bool) "positive" true (Vec.dot x (Eig_solver.apply_restricted s x) > 0.0)
  done

let test_g_symmetric_and_signs () =
  let s = make_solver () in
  let bb = Eig_solver.blackbox s in
  let g = Blackbox.extract_dense bb in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric ~tol:1e-6 g);
  (* Diagonal positive, off-diagonal negative (thesis §2.4). *)
  for i = 0 to Mat.rows g - 1 do
    Alcotest.(check bool) "diag > 0" true (Mat.get g i i > 0.0);
    for j = 0 to Mat.cols g - 1 do
      if i <> j then Alcotest.(check bool) "offdiag < 0" true (Mat.get g i j < 1e-12)
    done
  done

let test_g_diagonally_dominant () =
  (* Grounded backplane: strict diagonal dominance — some current escapes
     through the backplane (thesis §2.4). *)
  let s = make_solver () in
  let g = Blackbox.extract_dense (Eig_solver.blackbox s) in
  for i = 0 to Mat.rows g - 1 do
    let off = ref 0.0 in
    for j = 0 to Mat.cols g - 1 do
      if i <> j then off := !off +. Float.abs (Mat.get g i j)
    done;
    Alcotest.(check bool) "strictly dominant" true (Mat.get g i i > !off)
  done

let test_g_matches_dense_reference () =
  (* Build A_cc densely, compute G = area * F' A_cc^{-1} F by Cholesky, and
     compare with the black-box CG path. *)
  let layout = Geometry.Layout.regular_grid ~size:16.0 ~per_side:2 ~fill:0.5 () in
  let s = make_solver ~layout () in
  let nd = Eig_solver.panel_count s in
  let a_cc =
    Mat.init nd nd (fun i j ->
        let e = Array.make nd 0.0 in
        e.(j) <- 1.0;
        (Eig_solver.apply_restricted s e).(i))
  in
  let pan = Panel.create layout ~panels_per_side:16 in
  let n = 4 in
  let g_ref =
    Mat.init n n (fun i j ->
        let ej = Array.make n 0.0 in
        ej.(j) <- 1.0;
        let rho = Cholesky.solve a_cc (Panel.expand_contacts pan ej) in
        (Panel.sum_per_contact pan rho).(i) *. Panel.panel_area pan)
  in
  let g = Blackbox.extract_dense (Eig_solver.blackbox s) in
  Alcotest.(check bool) "matches dense" true (Mat.approx_equal ~tol:1e-5 g g_ref)

let test_single_full_contact_dc_resistance () =
  (* One contact covering the whole surface of a uniform grounded slab:
     G = sigma * area / depth exactly (only the DC mode is excited). *)
  let size = 16.0 and depth = 4.0 and sigma = 2.0 in
  let layout =
    {
      Geometry.Layout.size;
      contacts = [| Geometry.Contact.make ~x0:0.0 ~y0:0.0 ~x1:size ~y1:size |];
      name = "full";
    }
  in
  let profile = uniform_profile ~size ~depth ~sigma () in
  let s = Eig_solver.create profile layout ~panels_per_side:8 in
  let i = Eig_solver.solve s [| 1.0 |] in
  Alcotest.(check (float 1e-6)) "slab resistance" (sigma *. size *. size /. depth) i.(0)

let test_coupling_decays_with_distance () =
  let layout = Geometry.Layout.regular_grid ~size:32.0 ~per_side:8 ~fill:0.5 () in
  let profile = uniform_profile ~size:32.0 ~depth:8.0 () in
  let s = Eig_solver.create profile layout ~panels_per_side:32 in
  let g = Blackbox.extract_dense (Eig_solver.blackbox s) in
  (* Coupling from contact 0 (corner) to its row neighbors decreases. *)
  let c01 = Float.abs (Mat.get g 0 1) in
  let c03 = Float.abs (Mat.get g 0 3) in
  let c07 = Float.abs (Mat.get g 0 7) in
  Alcotest.(check bool) "monotone decay" true (c01 > c03 && c03 > c07)

let test_floating_backplane_row_sums () =
  (* With no backplane contact, all injected current must leave through the
     other contacts: G 1 = 0 up to the large-but-finite DC stand-in
     (thesis §2.4: "E G_ij = 0 for all j"). *)
  let profile = uniform_profile ~backplane:Profile.Floating () in
  let s = make_solver ~profile () in
  let g = Blackbox.extract_dense (Eig_solver.blackbox s) in
  let ones = Array.make 16 1.0 in
  let sums = Mat.gemv g ones in
  let scale = Mat.max_abs g in
  Alcotest.(check bool)
    (Printf.sprintf "row sums %.2e of scale %.2e" (Vec.norm_inf sums) scale)
    true
    (Vec.norm_inf sums < 1e-6 *. scale)

let test_grounded_backplane_loses_current () =
  (* Grounded backplane: G 1 > 0 strictly (current escapes downward). *)
  let s = make_solver () in
  let g = Blackbox.extract_dense (Eig_solver.blackbox s) in
  let sums = Mat.gemv g (Array.make 16 1.0) in
  Array.iter (fun x -> Alcotest.(check bool) "positive row sum" true (x > 0.0)) sums

let test_galerkin_correction () =
  (* The precorrected-DCT (Galerkin) operator damps the short-range modes:
     the diagonal self-conductance shrinks while the physics stays sane
     (symmetric, diagonally dominant, same DC behavior). *)
  let point = make_solver () in
  let galerkin =
    Eig_solver.create ~galerkin:true (uniform_profile ()) (small_layout ()) ~panels_per_side:16
  in
  let g_p = Blackbox.extract_dense (Eig_solver.blackbox point) in
  let g_g = Blackbox.extract_dense (Eig_solver.blackbox galerkin) in
  Alcotest.(check bool) "galerkin symmetric" true (Mat.is_symmetric ~tol:1e-6 g_g);
  Alcotest.(check bool) "same magnitude" true
    (Float.abs (Mat.get g_g 0 0 -. Mat.get g_p 0 0) < 0.5 *. Mat.get g_p 0 0);
  (* Damping the potential operator's high (local) modes means less
     potential per unit current, i.e. MORE conductance: G ~ A^{-1}. *)
  Alcotest.(check bool) "diagonal increases" true (Mat.get g_g 0 0 > Mat.get g_p 0 0)

let test_fast_inverse_preconditioner () =
  (* §2.3.1's zero-padded inverse: must not change the answer; iterations
     should not increase. *)
  let s_plain = make_solver () in
  let s_pre =
    Eig_solver.create ~precond:Eig_solver.Fast_inverse (uniform_profile ()) (small_layout ())
      ~panels_per_side:16
  in
  let u = Vec.init 16 (fun i -> float_of_int (i mod 3) -. 1.0) in
  let a = Eig_solver.solve s_plain u and b = Eig_solver.solve s_pre u in
  Alcotest.(check bool) "same currents" true (Vec.norm2 (Vec.sub a b) < 1e-6 *. Vec.norm2 a);
  let i_plain = Krylov.average_iterations (Eig_solver.stats s_plain) in
  let i_pre = Krylov.average_iterations (Eig_solver.stats s_pre) in
  Alcotest.(check bool)
    (Printf.sprintf "iterations %.0f <= %.0f" i_pre i_plain)
    true (i_pre <= i_plain)

let test_blackbox_counts () =
  let s = make_solver () in
  let bb = Eig_solver.blackbox s in
  ignore (Blackbox.apply bb (Array.make 16 1.0));
  ignore (Blackbox.apply bb (Array.make 16 0.5));
  Alcotest.(check int) "two solves" 2 (Blackbox.solve_count bb);
  Blackbox.reset_count bb;
  Alcotest.(check int) "reset" 0 (Blackbox.solve_count bb)

let test_blackbox_rejects_bad_length () =
  let s = make_solver () in
  let bb = Eig_solver.blackbox s in
  Alcotest.check_raises "bad length"
    (Invalid_argument "Blackbox: expected 16 contact voltages, got 3") (fun () ->
      ignore (Blackbox.apply bb (Array.make 3 1.0)))

(* ------------------------------------------------------------------ *)
(* Grouping (compound contacts, thesis §5.2) *)

module Grouping = Substrate.Grouping

let test_grouping_validation () =
  Alcotest.(check bool) "empty group rejected" true
    (try
       ignore (Grouping.of_group_ids [| 0; 2 |]);
       false
     with Invalid_argument _ -> true);
  let g = Grouping.of_group_ids [| 0; 1; 0; 1; 1 |] in
  Alcotest.(check int) "pieces" 5 (Grouping.n_pieces g);
  Alcotest.(check int) "groups" 2 (Grouping.n_groups g);
  Alcotest.(check bool) "members" true (Grouping.members g 0 = [| 0; 2 |])

let test_grouping_expand_reduce () =
  let g = Grouping.of_group_ids [| 0; 1; 0; 2 |] in
  Alcotest.(check bool) "expand" true
    (Vec.approx_equal (Grouping.expand g [| 5.0; 6.0; 7.0 |]) [| 5.0; 6.0; 5.0; 7.0 |]);
  Alcotest.(check bool) "reduce" true
    (Vec.approx_equal (Grouping.reduce g [| 1.0; 2.0; 3.0; 4.0 |]) [| 4.0; 2.0; 4.0 |]);
  (* <S v, i> = <v, S' i> — expand and reduce are adjoint. *)
  let v = [| 1.5; -2.0; 0.5 |] and i = [| 1.0; -1.0; 2.0; 0.25 |] in
  Alcotest.(check (float 1e-12)) "adjoint" (Vec.dot (Grouping.expand g v) i)
    (Vec.dot v (Grouping.reduce g i))

let test_grouping_blackbox_matches_dense () =
  (* S' G S computed through the wrapped black box equals the dense triple
     product, and stays a valid conductance matrix. *)
  let s = make_solver () in
  let bb = Eig_solver.blackbox s in
  let grouping = Grouping.of_group_ids (Array.init 16 (fun i -> i mod 4)) in
  let wrapped = Grouping.wrap_blackbox grouping bb in
  let g_elec = Blackbox.extract_dense wrapped in
  let g = Blackbox.extract_dense (Eig_solver.blackbox (make_solver ())) in
  let expected =
    Mat.init 4 4 (fun a b ->
        let acc = ref 0.0 in
        Array.iter
          (fun i -> Array.iter (fun j -> acc := !acc +. Mat.get g i j) (Grouping.members grouping b))
          (Grouping.members grouping a);
        !acc)
  in
  Alcotest.(check bool) "S' G S" true (Mat.approx_equal ~tol:1e-6 g_elec expected);
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric ~tol:1e-6 g_elec);
  for a = 0 to 3 do
    Alcotest.(check bool) "diag positive" true (Mat.get g_elec a a > 0.0)
  done

(* ------------------------------------------------------------------ *)
(* Profile *)

let test_profile_depth_and_conductivity () =
  let p = Profile.thesis_default () in
  Alcotest.(check (float 1e-12)) "depth" 40.0 (Profile.depth p);
  Alcotest.(check (float 1e-12)) "top layer" 1.0 (Profile.conductivity_at p ~z:0.2);
  Alcotest.(check (float 1e-12)) "bulk" 100.0 (Profile.conductivity_at p ~z:20.0);
  Alcotest.(check (float 1e-12)) "resistive bottom" 0.1 (Profile.conductivity_at p ~z:39.5)

let test_integrated_resistivity () =
  let p = Profile.thesis_default () in
  (* Across the top interface: 0.5 at sigma 1 plus 0.5 at sigma 100. *)
  Alcotest.(check (float 1e-12)) "straddling" (0.5 +. (0.5 /. 100.0))
    (Profile.integrated_resistivity p ~z0:0.0 ~z1:1.0);
  (* Entirely in the bulk. *)
  Alcotest.(check (float 1e-12)) "bulk" (2.0 /. 100.0) (Profile.integrated_resistivity p ~z0:5.0 ~z1:7.0)

let () =
  Alcotest.run "eigsolver"
    [
      ( "eigenvalues",
        [
          Alcotest.test_case "uniform grounded" `Quick test_lambda_uniform_grounded;
          Alcotest.test_case "uniform floating" `Quick test_lambda_uniform_floating;
          Alcotest.test_case "dc modes" `Quick test_lambda_dc;
          Alcotest.test_case "matches coefficient recursion" `Quick
            test_lambda_two_layer_matches_coefficient_recursion;
          Alcotest.test_case "positive decreasing" `Quick test_lambda_positive_decreasing;
          Alcotest.test_case "no overflow" `Quick test_lambda_no_overflow_thick_layers;
        ] );
      ( "panel",
        [
          Alcotest.test_case "assignment" `Quick test_panel_assignment;
          Alcotest.test_case "too coarse raises" `Quick test_panel_too_coarse;
          Alcotest.test_case "scatter/gather" `Quick test_panel_scatter_gather;
          Alcotest.test_case "expand/sum" `Quick test_panel_expand_sum;
        ] );
      ( "solver",
        [
          Alcotest.test_case "operator symmetric" `Quick test_operator_symmetric;
          Alcotest.test_case "operator positive" `Quick test_operator_positive;
          Alcotest.test_case "G symmetric, signs" `Quick test_g_symmetric_and_signs;
          Alcotest.test_case "G diagonally dominant" `Quick test_g_diagonally_dominant;
          Alcotest.test_case "matches dense reference" `Quick test_g_matches_dense_reference;
          Alcotest.test_case "slab DC resistance" `Quick test_single_full_contact_dc_resistance;
          Alcotest.test_case "coupling decays" `Slow test_coupling_decays_with_distance;
          Alcotest.test_case "floating backplane conserves current" `Quick
            test_floating_backplane_row_sums;
          Alcotest.test_case "grounded backplane leaks current" `Quick
            test_grounded_backplane_loses_current;
          Alcotest.test_case "fast-inverse preconditioner" `Quick test_fast_inverse_preconditioner;
          Alcotest.test_case "galerkin panel correction" `Quick test_galerkin_correction;
          Alcotest.test_case "blackbox counting" `Quick test_blackbox_counts;
          Alcotest.test_case "blackbox validation" `Quick test_blackbox_rejects_bad_length;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "validation" `Quick test_grouping_validation;
          Alcotest.test_case "expand/reduce adjoint" `Quick test_grouping_expand_reduce;
          Alcotest.test_case "wrapped blackbox = S'GS" `Quick test_grouping_blackbox_matches_dense;
        ] );
      ( "profile",
        [
          Alcotest.test_case "depth and conductivity" `Quick test_profile_depth_and_conductivity;
          Alcotest.test_case "integrated resistivity" `Quick test_integrated_resistivity;
        ] );
    ]
