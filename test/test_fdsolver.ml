(* Tests for the finite-difference substrate solver and the IC(0)
   preconditioner. *)

open La
module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
open Fdsolver

let rng = Rng.create 4242

(* Small uniform substrate: 16 x 16 surface, depth 4, sigma 2, grounded. *)
let uniform_profile ?(backplane = Profile.Grounded) () =
  Profile.make ~a:16.0 ~b:16.0 ~layers:[ { Profile.thickness = 4.0; conductivity = 2.0 } ] ~backplane

let layered_profile () =
  Profile.make ~a:16.0 ~b:16.0
    ~layers:
      [
        { Profile.thickness = 1.0; conductivity = 1.0 };
        { Profile.thickness = 2.0; conductivity = 50.0 };
        { Profile.thickness = 1.0; conductivity = 0.2 };
      ]
    ~backplane:Profile.Grounded

let small_layout () = Geometry.Layout.regular_grid ~size:16.0 ~per_side:2 ~fill:0.5 ()

(* ------------------------------------------------------------------ *)
(* IC(0) *)

let laplacian_1d n =
  let coo = Sparsemat.Coo.create n n in
  for i = 0 to n - 1 do
    Sparsemat.Coo.add coo i i (if i = 0 || i = n - 1 then 2.0 else 2.0);
    if i > 0 then Sparsemat.Coo.add coo i (i - 1) (-1.0);
    if i < n - 1 then Sparsemat.Coo.add coo i (i + 1) (-1.0)
  done;
  Sparsemat.Csr.of_coo coo

let test_ic0_exact_for_tridiagonal () =
  (* A tridiagonal SPD matrix has no fill-in, so IC(0) is the exact Cholesky
     factor and the preconditioner is the exact inverse. *)
  let a = laplacian_1d 12 in
  let f = Sparsemat.Ic0.factor a in
  let x = Rng.gaussian_array rng 12 in
  let b = Sparsemat.Csr.gemv a x in
  Alcotest.(check bool) "exact inverse" true (Vec.approx_equal ~tol:1e-9 x (Sparsemat.Ic0.apply f b))

let test_ic0_reduces_iterations () =
  (* On a 2-D Laplacian IC(0) is inexact but must cut the iteration count. *)
  let n = 15 in
  let coo = Sparsemat.Coo.create (n * n) (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let k = (i * n) + j in
      Sparsemat.Coo.add coo k k 4.1;
      if i > 0 then Sparsemat.Coo.add coo k (k - n) (-1.0);
      if i < n - 1 then Sparsemat.Coo.add coo k (k + n) (-1.0);
      if j > 0 then Sparsemat.Coo.add coo k (k - 1) (-1.0);
      if j < n - 1 then Sparsemat.Coo.add coo k (k + 1) (-1.0)
    done
  done;
  let a = Sparsemat.Csr.of_coo coo in
  let f = Sparsemat.Ic0.factor a in
  let b = Rng.gaussian_array rng (n * n) in
  let plain = Krylov.cg ~apply:(Sparsemat.Csr.gemv a) ~tol:1e-8 b in
  let pre = Krylov.cg ~apply:(Sparsemat.Csr.gemv a) ~precond:(Sparsemat.Ic0.apply f) ~tol:1e-8 b in
  Alcotest.(check bool) "both converge" true (plain.Krylov.converged && pre.Krylov.converged);
  Alcotest.(check bool)
    (Printf.sprintf "fewer iterations (%d < %d)" pre.Krylov.iterations plain.Krylov.iterations)
    true
    (pre.Krylov.iterations < plain.Krylov.iterations);
  Alcotest.(check bool) "same solution" true (Vec.approx_equal ~tol:1e-5 plain.Krylov.x pre.Krylov.x)

let test_ic0_breakdown () =
  let coo = Sparsemat.Coo.create 2 2 in
  Sparsemat.Coo.add coo 0 0 1.0;
  Sparsemat.Coo.add coo 0 1 2.0;
  Sparsemat.Coo.add coo 1 0 2.0;
  Sparsemat.Coo.add coo 1 1 1.0;
  Alcotest.check_raises "indefinite" (Sparsemat.Ic0.Breakdown 1) (fun () ->
      ignore (Sparsemat.Ic0.factor (Sparsemat.Csr.of_coo coo)))

(* ------------------------------------------------------------------ *)
(* Sparse Cholesky + nested dissection *)

let random_spd_sparse rng n density =
  (* Diagonally dominant symmetric matrix with random sparsity. *)
  let coo = Sparsemat.Coo.create n n in
  let row_sums = Array.make n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      if Rng.float rng < density then begin
        let v = Rng.gaussian rng in
        Sparsemat.Coo.add coo i j v;
        Sparsemat.Coo.add coo j i v;
        row_sums.(i) <- row_sums.(i) +. Float.abs v;
        row_sums.(j) <- row_sums.(j) +. Float.abs v
      end
    done
  done;
  for i = 0 to n - 1 do
    Sparsemat.Coo.add coo i i (row_sums.(i) +. 1.0)
  done;
  Sparsemat.Csr.of_coo coo

let test_sparse_chol_matches_dense () =
  let a = random_spd_sparse rng 30 0.15 in
  let f = Sparsemat.Sparse_chol.factor a in
  let x_true = Rng.gaussian_array rng 30 in
  let b = Sparsemat.Csr.gemv a x_true in
  Alcotest.(check bool) "solution" true
    (Vec.approx_equal ~tol:1e-8 (Sparsemat.Sparse_chol.solve f b) x_true)

let test_sparse_chol_with_permutation () =
  let a = random_spd_sparse rng 25 0.2 in
  (* Reverse ordering is a valid permutation; result must be unchanged. *)
  let perm = Array.init 25 (fun i -> 24 - i) in
  let f = Sparsemat.Sparse_chol.factor ~perm a in
  let x_true = Rng.gaussian_array rng 25 in
  let b = Sparsemat.Csr.gemv a x_true in
  Alcotest.(check bool) "permuted solution" true
    (Vec.approx_equal ~tol:1e-8 (Sparsemat.Sparse_chol.solve f b) x_true)

let test_sparse_chol_rejects_indefinite () =
  let coo = Sparsemat.Coo.create 2 2 in
  Sparsemat.Coo.add coo 0 0 1.0;
  Sparsemat.Coo.add coo 0 1 2.0;
  Sparsemat.Coo.add coo 1 0 2.0;
  Sparsemat.Coo.add coo 1 1 1.0;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sparsemat.Sparse_chol.factor (Sparsemat.Csr.of_coo coo));
       false
     with Sparsemat.Sparse_chol.Not_positive_definite _ -> true)

let test_nested_dissection_is_permutation () =
  let p = Ordering.nested_dissection ~nx:8 ~ny:4 ~nz:2 in
  let seen = Array.make 64 false in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "in range" true (i >= 0 && i < 64);
      Alcotest.(check bool) "no duplicates" false seen.(i);
      seen.(i) <- true)
    p;
  Alcotest.(check int) "complete" 64 (Array.length p)

let test_nested_dissection_reduces_fill () =
  (* On the grid system, nested dissection must beat the natural order. *)
  let grid = Grid.create (uniform_profile ()) (small_layout ()) ~nx:16 ~nz:4 in
  let a = Grid.to_csr ~reduce:(fun i -> grid.Grid.is_contact_node.(i)) grid in
  let natural = Sparsemat.Sparse_chol.factor a in
  let nd =
    Sparsemat.Sparse_chol.factor ~perm:(Ordering.nested_dissection ~nx:16 ~ny:16 ~nz:4) a
  in
  Alcotest.(check bool)
    (Printf.sprintf "nd %d < natural %d" (Sparsemat.Sparse_chol.nnz_l nd)
       (Sparsemat.Sparse_chol.nnz_l natural))
    true
    (Sparsemat.Sparse_chol.nnz_l nd < Sparsemat.Sparse_chol.nnz_l natural)

let test_direct_solver_matches_pcg () =
  let layout = small_layout () in
  let profile = layered_profile () in
  let d = Direct_solver.create profile layout ~nx:16 ~nz:4 in
  let s = Fd_solver.create ~precond:(Fd_solver.Fast_poisson 0.25) profile layout ~nx:16 ~nz:4 in
  let u = [| 1.0; -0.5; 0.25; 2.0 |] in
  let a = Direct_solver.solve d u and b = Fd_solver.solve s u in
  Alcotest.(check bool) "same currents" true (Vec.norm2 (Vec.sub a b) < 1e-6 *. Vec.norm2 b)

let test_direct_solver_outside_placement () =
  let layout = small_layout () in
  let d = Direct_solver.create ~placement:Grid.Outside (uniform_profile ()) layout ~nx:16 ~nz:4 in
  let s =
    Fd_solver.create ~placement:Grid.Outside ~precond:(Fd_solver.Fast_poisson 0.25) (uniform_profile ())
      layout ~nx:16 ~nz:4
  in
  let u = [| 1.0; 0.0; 0.0; -1.0 |] in
  let a = Direct_solver.solve d u and b = Fd_solver.solve s u in
  Alcotest.(check bool) "same currents" true (Vec.norm2 (Vec.sub a b) < 1e-6 *. Vec.norm2 b)

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_operator_symmetric_spd () =
  let g = Grid.create (layered_profile ()) (small_layout ()) ~nx:8 ~nz:2 in
  let n = Grid.node_count g in
  let x = Rng.gaussian_array rng n and y = Rng.gaussian_array rng n in
  Alcotest.(check (float 1e-8)) "self-adjoint" (Vec.dot (Grid.apply g x) y) (Vec.dot x (Grid.apply g y));
  Alcotest.(check bool) "positive (grounded backplane)" true (Vec.dot x (Grid.apply g x) > 0.0)

let test_grid_csr_matches_apply () =
  let g = Grid.create (uniform_profile ()) (small_layout ()) ~nx:8 ~nz:2 in
  let a = Grid.to_csr g in
  let x = Rng.gaussian_array rng (Grid.node_count g) in
  Alcotest.(check bool) "csr = operator" true
    (Vec.approx_equal ~tol:1e-9 (Sparsemat.Csr.gemv a x) (Grid.apply g x))

let test_grid_row_sums () =
  (* Without a backplane or contact attachments, the operator kills
     constants (current conservation). *)
  let profile = uniform_profile ~backplane:Profile.Floating () in
  let g = Grid.create ~placement:Grid.Inside profile (small_layout ()) ~nx:8 ~nz:2 in
  let ones = Array.make (Grid.node_count g) 1.0 in
  Alcotest.(check (float 1e-9)) "A 1 = 0" 0.0 (Vec.norm_inf (Grid.apply g ones))

let test_grid_vertical_conductance_series () =
  (* A layer boundary halfway between planes gives the series formula (2.8). *)
  let profile =
    Profile.make ~a:16.0 ~b:16.0
      ~layers:[ { Profile.thickness = 2.0; conductivity = 3.0 }; { Profile.thickness = 2.0; conductivity = 7.0 } ]
      ~backplane:Profile.Grounded
  in
  let g = Grid.create profile (small_layout ()) ~nx:4 ~nz:1 in
  ignore g;
  (* With nx = 4, h = 4: a single plane, no gz. Use nx = 8, h = 2, nz = 2:
     interface at depth 2 = exactly between planes at depths 1 and 3. *)
  let g = Grid.create profile (small_layout ()) ~nx:8 ~nz:2 in
  Alcotest.(check (float 1e-9)) "series conductance"
    (Transforms.Poisson.series_conductance 2.0 3.0 7.0)
    g.Grid.gz.(0)

let test_grid_rejects_mismatched_depth () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Grid.create (uniform_profile ()) (small_layout ()) ~nx:8 ~nz:3);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Solver *)

let make_solver ?placement ?(precond = Fd_solver.Fast_poisson 1.0) ?(profile = uniform_profile ()) () =
  Fd_solver.create ?placement ~precond profile (small_layout ()) ~nx:8 ~nz:2

let test_fd_g_symmetric () =
  let s = make_solver () in
  let g = Blackbox.extract_dense (Fd_solver.blackbox s) in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric ~tol:1e-6 g);
  for i = 0 to 3 do
    Alcotest.(check bool) "diag positive" true (Mat.get g i i > 0.0);
    for j = 0 to 3 do
      if i <> j then Alcotest.(check bool) "offdiag negative" true (Mat.get g i j < 0.0)
    done
  done

let test_fd_matches_dense_direct () =
  (* Compare the PCG path against a dense direct solve of the same reduced
     system. *)
  let s = make_solver () in
  let grid = Fd_solver.grid s in
  let n = Grid.node_count grid in
  let reduce i = grid.Grid.is_contact_node.(i) in
  let a = Sparsemat.Csr.to_dense (Grid.to_csr ~reduce grid) in
  let u = [| 1.0; -0.5; 0.25; 2.0 |] in
  let v_fix = Array.make n 0.0 in
  Array.iteri (fun c nodes -> Array.iter (fun k -> v_fix.(k) <- u.(c)) nodes) grid.Grid.contact_nodes;
  let b = Array.map (fun x -> -.x) (Grid.apply grid v_fix) in
  Array.iteri (fun i _ -> if reduce i then b.(i) <- 0.0) b;
  let x = Cholesky.solve a b in
  let v = Vec.add v_fix x in
  let expected =
    Array.map
      (fun nodes ->
        Array.fold_left
          (fun acc k ->
            let nx = grid.Grid.nx and ny = grid.Grid.ny in
            let ix = k mod nx and iy = k / nx mod ny and iz = k / (nx * ny) in
            let acc' = ref 0.0 in
            let extra =
              Grid.fold_neighbors grid ~ix ~iy ~iz (fun ~neighbor ~g ->
                  acc' := !acc' +. (g *. (v.(k) -. v.(neighbor))))
            in
            acc +. !acc' +. (extra *. v.(k)))
          0.0 nodes)
      grid.Grid.contact_nodes
  in
  let got = Fd_solver.solve s u in
  Alcotest.(check bool) "matches direct" true (Vec.approx_equal ~tol:1e-5 got expected)

let g_entry placement ~nx ~nz i j =
  let s =
    Fd_solver.create ~placement ~precond:(Fd_solver.Fast_poisson 1.0) (uniform_profile ())
      (small_layout ()) ~nx ~nz
  in
  Mat.get (Blackbox.extract_dense (Fd_solver.blackbox s)) i j

let test_fd_placements_converge () =
  (* The two Dirichlet placements are different discretizations of the same
     problem: the thesis reports "substantial differences in the results" at
     coarse spacing (§2.2.1), but the gap must shrink under refinement. *)
  let gap nx nz = Float.abs (g_entry Grid.Inside ~nx ~nz 0 0 -. g_entry Grid.Outside ~nx ~nz 0 0) in
  let coarse = gap 8 2 and mid = gap 16 4 and fine = gap 32 8 in
  Alcotest.(check bool)
    (Printf.sprintf "gap shrinks: %.2f > %.2f > %.2f" coarse mid fine)
    true
    (coarse > mid && mid > fine)

let test_fd_matches_eigenfunction_solver () =
  (* The two FD placements bracket the eigenfunction solver's value on a
     uniform substrate (Inside overestimates, Outside underestimates the
     contact coupling); the surface solver must land inside the bracket. *)
  let profile = uniform_profile () in
  let layout = small_layout () in
  let eig = Eigsolver.Eig_solver.create profile layout ~panels_per_side:32 in
  let g_eig = Mat.get (Blackbox.extract_dense (Eigsolver.Eig_solver.blackbox eig)) 0 0 in
  let g_in = g_entry Grid.Inside ~nx:32 ~nz:8 0 0 in
  let g_out = g_entry Grid.Outside ~nx:32 ~nz:8 0 0 in
  let lo = Float.min g_in g_out and hi = Float.max g_in g_out in
  Alcotest.(check bool)
    (Printf.sprintf "eig %.2f within FD bracket [%.2f, %.2f]" g_eig lo hi)
    true
    (g_eig > 0.9 *. lo && g_eig < 1.1 *. hi)

let count_avg_iterations precond =
  let s = Fd_solver.create ~precond (layered_profile ()) (small_layout ()) ~nx:16 ~nz:4 in
  let bb = Fd_solver.blackbox s in
  for c = 0 to 3 do
    let u = Array.make 4 0.0 in
    u.(c) <- 1.0;
    ignore (Blackbox.apply bb u)
  done;
  Krylov.average_iterations (Fd_solver.stats s)

let test_fd_preconditioners_reduce_iterations () =
  let none = count_avg_iterations Fd_solver.No_preconditioner in
  let ic0 = count_avg_iterations Fd_solver.Ic0 in
  let fast = count_avg_iterations (Fd_solver.Fast_poisson 1.0) in
  Alcotest.(check bool)
    (Printf.sprintf "ic0 (%.1f) < none (%.1f)" ic0 none)
    true (ic0 < none);
  Alcotest.(check bool)
    (Printf.sprintf "fast-poisson (%.1f) < ic0 (%.1f)" fast ic0)
    true (fast < ic0)

let test_fd_area_weighted_beats_dirichlet () =
  (* Table 2.1's shape: pure-Dirichlet is the worst of the fast-solver
     preconditioners; Neumann and area-weighted both beat it. *)
  let dirichlet = count_avg_iterations (Fd_solver.Fast_poisson 1.0) in
  let neumann = count_avg_iterations (Fd_solver.Fast_poisson 0.0) in
  let layout = small_layout () in
  let weighted = count_avg_iterations (Fd_solver.Fast_poisson (Fd_solver.area_fraction layout)) in
  Alcotest.(check bool)
    (Printf.sprintf "area-weighted (%.1f) < dirichlet (%.1f)" weighted dirichlet)
    true (weighted < dirichlet);
  Alcotest.(check bool)
    (Printf.sprintf "neumann (%.1f) < dirichlet (%.1f)" neumann dirichlet)
    true (neumann < dirichlet)

let test_fd_floating_row_sums () =
  (* No backplane contact: current is conserved among the top contacts
     (thesis §2.4). *)
  let s =
    Fd_solver.create ~precond:(Fd_solver.Fast_poisson 0.0)
      (uniform_profile ~backplane:Profile.Floating ())
      (small_layout ()) ~nx:8 ~nz:2
  in
  let g = Blackbox.extract_dense (Fd_solver.blackbox s) in
  let sums = Mat.gemv g (Array.make 4 1.0) in
  Alcotest.(check bool)
    (Printf.sprintf "row sums %.2e" (Vec.norm_inf sums))
    true
    (Vec.norm_inf sums < 1e-5 *. Mat.max_abs g)

let test_fd_outside_current_consistency () =
  (* Outside placement: the same current flows through the contact resistors
     as leaves through the backplane plus other contacts (KCL check). *)
  let s = make_solver ~placement:Grid.Outside () in
  let currents = Fd_solver.solve s [| 1.0; 0.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "driving contact sources current" true (currents.(0) > 0.0);
  for c = 1 to 3 do
    Alcotest.(check bool) "grounded contacts sink current" true (currents.(c) < 0.0)
  done

let test_multigrid_vcycle_reduces_residual () =
  (* One V-cycle must substantially contract the residual of the reduced
     system. *)
  let profile = layered_profile () in
  let layout = small_layout () in
  let mg = Multigrid.create profile layout ~nx:16 ~nz:4 in
  Alcotest.(check bool) "several levels" true (Multigrid.n_levels mg >= 2);
  let grid = Grid.create profile layout ~nx:16 ~nz:4 in
  let n = Grid.node_count grid in
  let fixed i = grid.Grid.is_contact_node.(i) in
  let reduced v =
    let v' = Array.copy v in
    Array.iteri (fun i _ -> if fixed i then v'.(i) <- 0.0) v';
    let y = Grid.apply grid v' in
    Array.iteri (fun i _ -> if fixed i then y.(i) <- 0.0) y;
    y
  in
  let b = Rng.gaussian_array rng n in
  Array.iteri (fun i _ -> if fixed i then b.(i) <- 0.0) b;
  let x = Multigrid.v_cycle mg b in
  let r = Vec.sub b (reduced x) in
  let ratio = Vec.norm2 r /. Vec.norm2 b in
  Alcotest.(check bool) (Printf.sprintf "contraction %.3f" ratio) true (ratio < 0.5)

let test_multigrid_preconditioner_helps () =
  let layout = small_layout () in
  let avg precond =
    let s = Fd_solver.create ~precond (layered_profile ()) layout ~nx:16 ~nz:4 in
    let bb = Fd_solver.blackbox s in
    for c = 0 to 3 do
      let u = Array.make 4 0.0 in
      u.(c) <- 1.0;
      ignore (Blackbox.apply bb u)
    done;
    La.Krylov.average_iterations (Fd_solver.stats s)
  in
  let none = avg Fd_solver.No_preconditioner in
  let mg = avg Fd_solver.Multigrid in
  Alcotest.(check bool) (Printf.sprintf "mg %.1f << none %.1f" mg none) true (mg < 0.3 *. none)

let test_multigrid_matches_other_preconditioners () =
  (* The preconditioner must not change the answer, only the iteration
     count. *)
  let layout = small_layout () in
  let u = [| 1.0; -0.5; 0.25; 2.0 |] in
  let solve precond =
    Fd_solver.solve (Fd_solver.create ~precond (layered_profile ()) layout ~nx:16 ~nz:4) u
  in
  let a = solve (Fd_solver.Fast_poisson 0.25) and b = solve Fd_solver.Multigrid in
  Alcotest.(check bool) "same currents" true
    (Vec.norm2 (Vec.sub a b) < 1e-6 *. Vec.norm2 a)

let test_fd_area_fraction () =
  (* 2x2 contacts at fill 0.5 cover 1/4 of each cell. *)
  Alcotest.(check (float 1e-9)) "fraction" 0.25 (Fd_solver.area_fraction (small_layout ()))

let () =
  Alcotest.run "fdsolver"
    [
      ( "ic0",
        [
          Alcotest.test_case "exact for tridiagonal" `Quick test_ic0_exact_for_tridiagonal;
          Alcotest.test_case "reduces iterations" `Quick test_ic0_reduces_iterations;
          Alcotest.test_case "breakdown on indefinite" `Quick test_ic0_breakdown;
        ] );
      ( "direct",
        [
          Alcotest.test_case "sparse cholesky matches dense" `Quick test_sparse_chol_matches_dense;
          Alcotest.test_case "sparse cholesky permuted" `Quick test_sparse_chol_with_permutation;
          Alcotest.test_case "sparse cholesky rejects indefinite" `Quick
            test_sparse_chol_rejects_indefinite;
          Alcotest.test_case "nested dissection permutation" `Quick test_nested_dissection_is_permutation;
          Alcotest.test_case "nested dissection reduces fill" `Quick test_nested_dissection_reduces_fill;
          Alcotest.test_case "direct matches PCG" `Quick test_direct_solver_matches_pcg;
          Alcotest.test_case "direct outside placement" `Quick test_direct_solver_outside_placement;
        ] );
      ( "grid",
        [
          Alcotest.test_case "symmetric SPD" `Quick test_grid_operator_symmetric_spd;
          Alcotest.test_case "csr matches operator" `Quick test_grid_csr_matches_apply;
          Alcotest.test_case "row sums (floating)" `Quick test_grid_row_sums;
          Alcotest.test_case "series vertical conductance" `Quick test_grid_vertical_conductance_series;
          Alcotest.test_case "rejects mismatched depth" `Quick test_grid_rejects_mismatched_depth;
        ] );
      ( "solver",
        [
          Alcotest.test_case "G symmetric, signs" `Quick test_fd_g_symmetric;
          Alcotest.test_case "matches dense direct solve" `Quick test_fd_matches_dense_direct;
          Alcotest.test_case "placements converge" `Slow test_fd_placements_converge;
          Alcotest.test_case "matches eigenfunction solver" `Slow test_fd_matches_eigenfunction_solver;
          Alcotest.test_case "preconditioners reduce iterations" `Quick
            test_fd_preconditioners_reduce_iterations;
          Alcotest.test_case "area-weighted competitive" `Quick test_fd_area_weighted_beats_dirichlet;
          Alcotest.test_case "floating conserves current" `Quick test_fd_floating_row_sums;
          Alcotest.test_case "multigrid V-cycle contracts" `Quick test_multigrid_vcycle_reduces_residual;
          Alcotest.test_case "multigrid preconditioner helps" `Quick test_multigrid_preconditioner_helps;
          Alcotest.test_case "multigrid same answer" `Quick test_multigrid_matches_other_preconditioners;
          Alcotest.test_case "outside placement KCL" `Quick test_fd_outside_current_consistency;
          Alcotest.test_case "area fraction" `Quick test_fd_area_fraction;
        ] );
    ]
