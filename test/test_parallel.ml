(* Tests for the domain pool (lib/parallel) and the batched black-box solve
   path built on it: pool primitives across jobs counts, exception
   propagation, and the bit-for-bit determinism guarantee — parallel
   extraction must produce exactly the matrix sequential extraction does. *)

open La
module Blackbox = Substrate.Blackbox
module Profile = Substrate.Profile
module Pool = Parallel.Pool
open Sparsify

let rng = Rng.create 271828

(* ------------------------------------------------------------------ *)
(* Pool primitives *)

let test_default_jobs () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_parallel_for () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let n = 103 in
          let out = Array.make n 0 in
          Pool.parallel_for pool n (fun i -> out.(i) <- i * i);
          Array.iteri
            (fun i v -> Alcotest.(check int) (Printf.sprintf "jobs=%d i=%d" jobs i) (i * i) v)
            out))
    [ 1; 2; 4 ]

let test_map_chunks () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let input = Array.init 57 (fun i -> i) in
          let out = Pool.map_chunks pool (fun x -> 3 * x + 1) input in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d" jobs)
            (Array.map (fun x -> (3 * x) + 1) input)
            out))
    [ 1; 2; 4 ]

let test_empty_input () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Pool.parallel_for pool 0 (fun _ -> Alcotest.fail "body called for n = 0");
      let out = Pool.map_chunks pool (fun x -> x + 1) [||] in
      Alcotest.(check int) "empty map" 0 (Array.length out))

exception Boom

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          (match Pool.parallel_for pool 20 (fun i -> if i = 13 then raise Boom) with
          | () -> Alcotest.fail "expected Boom from parallel_for"
          | exception Boom -> ());
          (* The pool must survive a failed batch and run the next one. *)
          let out = Pool.map_chunks pool (fun x -> x * 2) (Array.init 8 Fun.id) in
          Alcotest.(check (array int)) "pool reusable after failure" [| 0; 2; 4; 6; 8; 10; 12; 14 |] out))
    [ 1; 2; 4 ]

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let out = Pool.map_chunks pool (fun x -> x + round) (Array.init 31 Fun.id) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 31 (fun i -> i + round))
          out
      done)

(* ------------------------------------------------------------------ *)
(* Bit-for-bit determinism of batched extraction *)

let bitwise_equal_mat a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get a i j))
             (Int64.bits_of_float (Mat.get b i j)))
      then ok := false
    done
  done;
  !ok

(* A random SPD-ish dense matrix wrapped as a black box. *)
let dense_box n =
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set g i j (Rng.gaussian rng)
    done;
    Mat.set g i i (Mat.get g i i +. 10.0)
  done;
  (g, Blackbox.of_dense g)

let test_extract_dense_deterministic_dense () =
  let g, bb = dense_box 37 in
  let seq = Blackbox.extract_dense bb in
  Alcotest.(check bool) "sequential recovers G" true (bitwise_equal_mat g seq);
  List.iter
    (fun jobs ->
      let par = Blackbox.extract_dense ~jobs bb in
      Alcotest.(check bool) (Printf.sprintf "jobs=%d bitwise" jobs) true (bitwise_equal_mat seq par))
    [ 2; 4 ]

let eig_box () =
  let layout = Geometry.Layout.regular_grid ~size:128.0 ~per_side:4 ~fill:0.5 () in
  let solver = Eigsolver.Eig_solver.create (Profile.thesis_default ()) layout ~panels_per_side:32 in
  (layout, Eigsolver.Eig_solver.blackbox solver)

let test_extract_dense_deterministic_eig () =
  (* The real pipeline: per-domain CG solves through the eigenfunction
     solver must still give a bit-identical matrix. *)
  let _, bb = eig_box () in
  let seq = Blackbox.extract_dense bb in
  let par = Blackbox.extract_dense ~jobs:4 bb in
  Alcotest.(check bool) "eigsolver jobs=4 bitwise" true (bitwise_equal_mat seq par)

let test_extract_columns_deterministic () =
  let _, bb = dense_box 29 in
  let indices = [| 0; 7; 7; 28; 3 |] in
  let seq = Blackbox.extract_columns bb indices in
  let par = Blackbox.extract_columns ~jobs:4 bb indices in
  Array.iteri
    (fun k col ->
      Array.iteri
        (fun i x ->
          Alcotest.(check bool)
            (Printf.sprintf "col %d row %d" k i)
            true
            (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float par.(k).(i))))
        col)
    seq

let test_sparsify_deterministic () =
  (* Wavelet and low-rank extraction with jobs > 1 batch their solves but
     must reproduce the sequential representation exactly. *)
  let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:8 () in
  let g, _ = dense_box (Geometry.Layout.n_contacts layout) in
  let wavelet jobs = Wavelet.extract ~jobs (Wavelet.create ~p:2 layout) (Blackbox.of_dense g) in
  Alcotest.(check bool) "wavelet jobs=4" true
    (bitwise_equal_mat (Repr.to_dense (wavelet 1)) (Repr.to_dense (wavelet 4)));
  let lowrank jobs = Lowrank.extract ~jobs ~seed:5 layout (Blackbox.of_dense g) in
  Alcotest.(check bool) "lowrank jobs=4" true
    (bitwise_equal_mat (Repr.to_dense (lowrank 1)) (Repr.to_dense (lowrank 4)))

(* ------------------------------------------------------------------ *)
(* Solve counting under concurrency *)

let test_solve_count_exact () =
  let _, bb = dense_box 16 in
  Alcotest.(check int) "fresh" 0 (Blackbox.solve_count bb);
  let vs = Array.init 100 (fun _ -> Rng.gaussian_array rng 16) in
  ignore (Blackbox.apply_batch ~jobs:4 bb vs);
  Alcotest.(check int) "one batch of 100" 100 (Blackbox.solve_count bb);
  (* Hammer the same box from several domains at once: the Atomic counter
     must not lose increments. *)
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              ignore (Blackbox.apply bb (Array.make 16 1.0))
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "100 + 4*25 concurrent" 200 (Blackbox.solve_count bb);
  Blackbox.reset_count bb;
  Alcotest.(check int) "reset" 0 (Blackbox.solve_count bb)

let test_batch_jobs_equal_results () =
  (* apply_batch must give identical responses whatever the jobs count. *)
  let _, bb = dense_box 21 in
  let vs = Array.init 13 (fun _ -> Rng.gaussian_array rng 21) in
  let seq = Blackbox.apply_batch bb vs in
  List.iter
    (fun jobs ->
      let par = Blackbox.apply_batch ~jobs bb vs in
      Array.iteri
        (fun k col ->
          Array.iteri
            (fun i x ->
              Alcotest.(check bool)
                (Printf.sprintf "jobs=%d rhs=%d i=%d" jobs k i)
                true
                (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float par.(k).(i))))
            col)
        seq)
    [ 2; 4 ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "map_chunks" `Quick test_map_chunks;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "extract_dense on dense box" `Quick test_extract_dense_deterministic_dense;
          Alcotest.test_case "extract_dense on eigsolver" `Slow test_extract_dense_deterministic_eig;
          Alcotest.test_case "extract_columns" `Quick test_extract_columns_deterministic;
          Alcotest.test_case "wavelet and lowrank" `Slow test_sparsify_deterministic;
          Alcotest.test_case "batch equals sequential" `Quick test_batch_jobs_equal_results;
        ] );
      ( "counting",
        [ Alcotest.test_case "solve_count exact under concurrency" `Quick test_solve_count_exact ] );
    ]
