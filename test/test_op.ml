(* Tests for the operator abstraction (Subcouple_op) and its persisted
   artifacts: every apply path agrees, batching is bit-identical for every
   jobs value, artifacts round-trip bit-exactly, and torn/corrupt/foreign
   files are rejected with the right typed error. *)

open La
module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
module Csr = Sparsemat.Csr
module Op = Subcouple_op
module Artifact = Subcouple_op.Artifact
open Sparsify

let rng = Rng.create 2718

(* A small synthetic representation: random orthogonal Q (from QR) and a
   random symmetric G_w, so Q G_w Q' is exactly representable. *)
let synthetic n =
  let q = (Qr.decomp (Mat.random rng n n)).Qr.q in
  let m = Mat.random rng n n in
  let gw = Mat.add m (Mat.transpose m) in
  Repr.make ~q:(Csr.of_dense q) ~gw:(Csr.of_dense gw) ~solves:5

let vec_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b

let batch_bits_equal a b = Array.length a = Array.length b && Array.for_all2 vec_bits_equal a b

(* ------------------------------------------------------------------ *)
(* The operator interface *)

let test_of_dense_matches_gemv () =
  let g = Mat.random rng 9 9 in
  let op = Op.of_dense g in
  Alcotest.(check int) "n" 9 (Op.n op);
  let v = Rng.gaussian_array rng 9 in
  Alcotest.(check bool) "apply = gemv" true (vec_bits_equal (Op.apply op v) (Mat.gemv g v));
  Alcotest.(check int) "storage" 81 (Op.storage_floats op);
  Alcotest.(check int) "no solves" 0 (Op.solves_spent op)

let test_of_dense_rejects_rectangular () =
  Alcotest.(check bool) "rejects 2x3" true
    (try
       ignore (Op.of_dense (Mat.create 2 3));
       false
     with Invalid_argument _ -> true)

let test_all_paths_agree () =
  (* Dense reference, black-box operator, and the Q G_w Q' representation of
     the same matrix agree through one interface. *)
  let r = synthetic 14 in
  let g = Repr.to_dense r in
  let dense_op = Op.of_dense g in
  let bb_op = Blackbox.op (Blackbox.of_dense g) in
  let repr_op = Repr.op r in
  let v = Rng.gaussian_array rng 14 in
  Alcotest.(check bool) "blackbox = dense" true
    (Vec.approx_equal ~tol:1e-12 (Op.apply bb_op v) (Op.apply dense_op v));
  Alcotest.(check bool) "repr = dense" true
    (Vec.approx_equal ~tol:1e-9 (Op.apply repr_op v) (Op.apply dense_op v))

let test_columns_match_dense () =
  let r = synthetic 10 in
  let g = Repr.to_dense r in
  let cols = Op.columns (Repr.op r) [| 0; 3; 9 |] in
  List.iteri
    (fun k j ->
      Alcotest.(check bool)
        (Printf.sprintf "col %d" j)
        true
        (Vec.approx_equal ~tol:1e-10 cols.(k) (Mat.col g j)))
    [ 0; 3; 9 ]

let test_blackbox_op_counts_solves () =
  let g = Mat.identity 6 in
  let bb = Blackbox.of_dense g in
  let op = Blackbox.op bb in
  let before = Op.solves_spent op in
  ignore (Op.apply op (Rng.gaussian_array rng 6));
  ignore (Op.apply op (Rng.gaussian_array rng 6));
  Alcotest.(check int) "live counter" (before + 2) (Op.solves_spent op);
  Alcotest.(check string) "kind" "blackbox" (Op.describe op).Op.kind

let test_fused_batch_matches_apply () =
  (* [Repr.op]'s batches now go through the fused three-sweep CSR kernel;
     every response must stay bit-identical to a per-column [apply] loop,
     across batch widths and jobs. *)
  let r = synthetic 17 in
  let op = Repr.op r in
  List.iter
    (fun width ->
      let vs = Array.init width (fun i -> Rng.gaussian_array (Rng.create (900 + i)) 17) in
      let want = Array.map (Op.apply op) vs in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "width %d, jobs %d" width jobs)
            true
            (batch_bits_equal want (Repr.apply_batch r ~jobs vs)))
        [ 1; 2; 3; 4 ];
      Alcotest.(check bool)
        (Printf.sprintf "op batch, width %d" width)
        true
        (batch_bits_equal want (Op.apply_batch ~jobs:1 op vs)))
    [ 0; 1; 2; 5; 17 ]

let test_jobs_bitwise_identical () =
  let r = synthetic 16 in
  let op = Repr.op r in
  let vs = Array.init 9 (fun i -> Rng.gaussian_array (Rng.create (50 + i)) 16) in
  let seq = Op.apply_batch ~jobs:1 op vs in
  Alcotest.(check bool) "jobs 4 = jobs 1" true (batch_bits_equal seq (Op.apply_batch ~jobs:4 op vs));
  Alcotest.(check bool) "jobs 2 = jobs 1" true (batch_bits_equal seq (Op.apply_batch ~jobs:2 op vs));
  let c1 = Op.columns ~jobs:1 op [| 1; 5; 11 |] in
  let c4 = Op.columns ~jobs:4 op [| 1; 5; 11 |] in
  Alcotest.(check bool) "columns jobs 4 = jobs 1" true (batch_bits_equal c1 c4)

let test_apply_validates_length () =
  let op = Repr.op (synthetic 8) in
  let bad () =
    try
      ignore (Op.apply op (Array.make 7 0.0));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "wrong length rejected" true (bad ());
  Alcotest.(check bool) "batch with one bad vector rejected" true
    (try
       ignore (Op.apply_batch op [| Array.make 8 0.0; Array.make 9 0.0 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "column index out of range rejected" true
    (try
       ignore (Op.columns op [| 8 |]);
       false
     with Invalid_argument _ -> true)

let test_map_array_deterministic () =
  let input = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun x -> x * x) input in
  Alcotest.(check (array int)) "jobs 4" expect (Parallel.Pool.map_array ~jobs:4 (fun x -> x * x) input);
  Alcotest.(check (array int)) "jobs 1" expect (Parallel.Pool.map_array ~jobs:1 (fun x -> x * x) input)

(* ------------------------------------------------------------------ *)
(* Artifact round trips *)

let with_temp f =
  let path = Filename.temp_file "test_op" ".sca" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let csr_bits_equal a b =
  let rp_a, ci_a, va = Csr.unpack a in
  let rp_b, ci_b, vb = Csr.unpack b in
  rp_a = rp_b && ci_a = ci_b && vec_bits_equal va vb

let test_roundtrip_bit_identical () =
  let r = synthetic 12 in
  with_temp (fun path ->
      Repr.save r ~kind:"test" ~source:"round trip" ~path;
      let a = Artifact.load ~path in
      Alcotest.(check int) "n" 12 a.Artifact.n;
      Alcotest.(check int) "solves" 5 a.Artifact.solves;
      Alcotest.(check string) "kind" "test" a.Artifact.kind;
      Alcotest.(check string) "source" "round trip" a.Artifact.source;
      Alcotest.(check bool) "Q bit-identical" true (csr_bits_equal r.Repr.q a.Artifact.q);
      Alcotest.(check bool) "G_w bit-identical" true (csr_bits_equal r.Repr.gw a.Artifact.gw);
      (* The loaded operator applies bit-identically for every jobs value. *)
      let loaded = Repr.op (Repr.of_artifact a) in
      let vs = Array.init 6 (fun i -> Rng.gaussian_array (Rng.create (90 + i)) 12) in
      let want = Op.apply_batch ~jobs:1 (Repr.op r) vs in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs %d" jobs)
            true
            (batch_bits_equal want (Op.apply_batch ~jobs loaded vs)))
        [ 1; 2; 4 ])

let test_save_is_atomic_rewrite () =
  (* Saving over an existing artifact leaves a loadable file. *)
  let a = synthetic 6 and b = synthetic 7 in
  with_temp (fun path ->
      Repr.save a ~path;
      Repr.save b ~path;
      Alcotest.(check int) "second write wins" 7 (Artifact.load ~path).Artifact.n)

(* ------------------------------------------------------------------ *)
(* Corruption: every failure mode maps to its typed error *)

let check_rejects name path pred =
  match Artifact.load ~path with
  | _ -> Alcotest.fail (name ^ ": corrupt artifact loaded successfully")
  | exception Artifact.Error { error; _ } ->
    Alcotest.(check bool) (name ^ ": " ^ Artifact.error_message error) true (pred error)

let with_corrupted corrupt pred name () =
  with_temp (fun path ->
      Repr.save (synthetic 9) ~path;
      write_file path (corrupt (read_file path));
      check_rejects name path pred)

let test_truncated_header =
  with_corrupted
    (fun s -> String.sub s 0 20)
    (function Artifact.Truncated _ -> true | _ -> false)
    "truncated header"

let test_truncated_payload =
  with_corrupted
    (fun s -> String.sub s 0 (String.length s - 5))
    (function Artifact.Truncated _ -> true | _ -> false)
    "truncated payload"

let test_flipped_byte =
  with_corrupted
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 0x01));
      Bytes.to_string b)
    (function Artifact.Checksum_mismatch -> true | _ -> false)
    "flipped payload byte"

let test_wrong_version =
  with_corrupted
    (fun s -> String.sub s 0 6 ^ "Z9" ^ String.sub s 8 (String.length s - 8))
    (function Artifact.Unsupported_version v -> String.equal v "Z9" | _ -> false)
    "wrong format version"

let test_not_an_artifact =
  with_corrupted
    (fun _ -> "this is not an operator artifact at all")
    (function Artifact.Not_an_artifact _ -> true | _ -> false)
    "foreign file"

let test_empty_file =
  with_corrupted
    (fun _ -> "")
    (function Artifact.Not_an_artifact _ -> true | _ -> false)
    "empty file"

let test_trailing_garbage =
  with_corrupted
    (fun s -> s ^ "xyz")
    (function Artifact.Malformed _ -> true | _ -> false)
    "trailing garbage"

let test_missing_file () =
  check_rejects "missing file" "/nonexistent/g.sca" (function Artifact.Io _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Thresholding through the operator interface *)

(* A real extraction on a small layout, so thresholding has a spread of
   magnitudes to work with. *)
let extracted =
  lazy
    (let layout = Layout.regular_grid ~size:128.0 ~per_side:8 ~fill:0.5 () in
     let n = Layout.n_contacts layout in
     let g = Mat.create n n in
     let rng = Rng.create 31 in
     (* Synthetic SPD stand-in for G: diagonally dominant with decaying
        off-diagonal coupling, cheap and deterministic. *)
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         if i <> j then Mat.set g i j (-1.0 /. (1.0 +. float_of_int (abs (i - j)) ** 1.5))
       done
     done;
     for i = 0 to n - 1 do
       Mat.set g i i (float_of_int n +. Rng.float rng)
     done;
     (Lowrank.extract layout (Blackbox.of_dense g), g))

let probe_error op g =
  let n = Op.n op in
  let worst = ref 0.0 in
  for i = 0 to 4 do
    let v = Rng.gaussian_array (Rng.create (700 + i)) n in
    let exact = Mat.gemv g v in
    worst := Float.max !worst (Vec.norm2 (Vec.sub (Op.apply op v) exact) /. Vec.norm2 exact)
  done;
  !worst

let test_threshold_monotone_through_op () =
  let repr, g = Lazy.force extracted in
  let targets = [ 1.0; 2.0; 4.0; 8.0 ] in
  let points =
    List.map
      (fun target ->
        let thr = Repr.threshold repr ~target in
        (target, Repr.nnz_gw thr, probe_error (Repr.op thr) g))
      targets
  in
  List.iter
    (fun (t, nnz, err) ->
      Alcotest.(check bool) (Printf.sprintf "err finite at %.0f" t) true (Float.is_finite err);
      Alcotest.(check bool) (Printf.sprintf "nnz positive at %.0f" t) true (nnz > 0))
    points;
  let rec pairs = function
    | (_, nnz_a, _) :: ((_, nnz_b, _) :: _ as rest) ->
      Alcotest.(check bool) "nnz nonincreasing in target" true (nnz_b <= nnz_a);
      pairs rest
    | _ -> ()
  in
  pairs points;
  let _, _, err_first = List.hd points in
  let _, _, err_last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "error grows from loosest to tightest target" true (err_last >= err_first)

let test_thresholded_op_symmetric () =
  let repr, _ = Lazy.force extracted in
  let thr = Repr.threshold repr ~target:4.0 in
  let d = Repr.to_dense thr in
  let n = Mat.rows d in
  let defect = Repr.orthogonality_defect thr in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      worst := Float.max !worst (Float.abs (Mat.get d i j -. Mat.get d j i))
    done
  done;
  (* G_w stays symmetric under thresholding; any asymmetry of Q G_w Q' is
     bounded by the orthogonality defect of Q times the operator scale. *)
  let tol = 1e-10 +. (100.0 *. (defect +. 1e-14) *. Mat.max_abs d) in
  Alcotest.(check bool)
    (Printf.sprintf "asymmetry %.2e <= %.2e" !worst tol)
    true (!worst <= tol)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "op"
    [
      ( "operator",
        [
          Alcotest.test_case "of_dense = gemv" `Quick test_of_dense_matches_gemv;
          Alcotest.test_case "of_dense validates" `Quick test_of_dense_rejects_rectangular;
          Alcotest.test_case "all paths agree" `Quick test_all_paths_agree;
          Alcotest.test_case "columns" `Quick test_columns_match_dense;
          Alcotest.test_case "blackbox solves_spent live" `Quick test_blackbox_op_counts_solves;
          Alcotest.test_case "fused batch = per-column apply" `Quick test_fused_batch_matches_apply;
          Alcotest.test_case "jobs bitwise identical" `Quick test_jobs_bitwise_identical;
          Alcotest.test_case "validation" `Quick test_apply_validates_length;
          Alcotest.test_case "map_array deterministic" `Quick test_map_array_deterministic;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "round trip bit-identical" `Quick test_roundtrip_bit_identical;
          Alcotest.test_case "save overwrites atomically" `Quick test_save_is_atomic_rewrite;
          Alcotest.test_case "truncated header" `Quick test_truncated_header;
          Alcotest.test_case "truncated payload" `Quick test_truncated_payload;
          Alcotest.test_case "flipped byte" `Quick test_flipped_byte;
          Alcotest.test_case "wrong version" `Quick test_wrong_version;
          Alcotest.test_case "not an artifact" `Quick test_not_an_artifact;
          Alcotest.test_case "empty file" `Quick test_empty_file;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "missing file" `Quick test_missing_file;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "monotone through operator" `Quick test_threshold_monotone_through_op;
          Alcotest.test_case "thresholded operator symmetric" `Quick test_thresholded_op_symmetric;
        ] );
    ]
