(* Fixture: a suppression without a justification is itself a finding
   (and does not silence the underlying one). *)
let cache = Hashtbl.create 8 [@@lint.allow domain_safety]
