(* The middle hop: the pool callback calls this module, which calls into
   Pool_escape_counter — two call levels between worker and write. *)

let relay () = Pool_escape_counter.bump ()
