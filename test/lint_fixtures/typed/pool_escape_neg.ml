(* The sanctioned patterns: Atomic state, worker-local mutation, and a
   sanctioned exception. None of these is a pool_escape finding. *)

let total = Atomic.make 0
let bump_atomic () = Atomic.incr total

let run pool =
  Pool.parallel_for pool 4 (fun _ -> bump_atomic ());
  Pool.parallel_for pool 4 (fun i ->
      let local = Array.make 4 0 in
      local.(0) <- i;
      if i > 7 then invalid_arg "chunk index out of range")
