(* Rename into an artifact path with no fsync anywhere: on power loss the
   target name can point at a torn or empty file. *)

let save (path : string) (data : string) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp "out.sca"
