(* The full crash-safety protocol (mirrors Subcouple_op.Artifact
   .write_atomic): fsync the data before the rename makes it visible, and
   fsync the directory after so the new entry survives power loss. The
   directory fsync arrives through a helper — the rule's fsync-capable set
   is transitive. A rename between plainly non-artifact names is out of
   scope entirely. *)

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
    Unix.close fd
  | exception Unix.Unix_error (_, _, _) -> ()

let write_atomic path (b : bytes) =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  ignore (Unix.write fd b 0 (Bytes.length b));
  Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp path;
  fsync_dir path

let rotate_logs () = Sys.rename "run.log" "run.log.1"
