(* Opaque float-typed operands. The syntactic floaty-operand heuristic
   cannot see any of these (no literal, no float-returning primitive in
   sight); the typed rule reads the inferred operand types. *)

let same (a : float) (b : float) = a = b
let differ (a : float) (b : float) = a <> b
let order (a : float) (b : float) = compare a b
