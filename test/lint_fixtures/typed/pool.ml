(* Stub of Parallel.Pool. The typed rules match [Pool.*] call heads by
   normalized path suffix, so fixtures compile against this local namesake
   instead of dragging the real multi-domain pool (and its dependencies)
   into an ocamlc one-liner. *)

type t = unit

let parallel_for (_ : t) (n : int) (body : int -> unit) =
  for i = 0 to n - 1 do
    body i
  done

let map_chunks (_ : t) (f : 'a -> 'b) (xs : 'a array) = Array.map f xs

let map_array ?(jobs = 1) (f : 'a -> 'b) (xs : 'a array) =
  ignore jobs;
  Array.map f xs
