(* A site both drivers can see: the float literal makes the syntactic
   floaty heuristic fire, and the inferred type makes the typed rule fire —
   on the same line. *)

let is_zero x = x = 0.0
