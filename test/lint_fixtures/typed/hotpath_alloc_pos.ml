(* Allocations inside the loops of [@@lint.hotpath] functions: an
   allocating stdlib call per iteration, and a closure per iteration. *)

let scale (dst : float array) (src : float array) (k : float) =
  for i = 0 to Array.length src - 1 do
    let tmp = Array.copy src in
    dst.(i) <- k *. tmp.(i)
  done
[@@lint.hotpath "fixture: allocates per iteration"]

let apply_all (fs : (float -> float) array) (x : float ref) =
  while !x < 10.0 do
    Array.iter (fun f -> x := f !x) fs
  done
[@@lint.hotpath "fixture: closure per iteration"]
