(* Module-level mutable state the syntactic domain_safety heuristic does
   NOT see: a record literal with a mutable field is not a ref/Hashtbl/
   array literal, so the Parsetree rule stays silent. The typed pool_escape
   rule reads the setfield through the call graph instead. *)

type t = { mutable hits : int }

let counter = { hits = 0 }
let bump () = counter.hits <- counter.hits + 1
