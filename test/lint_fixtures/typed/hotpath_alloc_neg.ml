(* The legitimate kernel shape: outputs allocated once at entry, loop
   bodies touching only existing arrays and an unboxed local accumulator
   (flambda-less OCaml still unboxes a non-escaping local float ref). *)

let axpy (alpha : float) (x : float array) (y : float array) =
  let out = Array.make (Array.length x) 0.0 in
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. x.(i);
    out.(i) <- (alpha *. x.(i)) +. y.(i)
  done;
  ignore !acc;
  out
[@@lint.hotpath "fixture: loop body stays allocation-free"]
