(* Two violations: an unprotected cross-module write two call levels below
   the callback, and an unsanctioned exception escaping a worker. *)

let run pool = Pool.parallel_for pool 4 (fun _ -> Pool_escape_mid.relay ())

exception Custom_oops

let raises pool = Pool.parallel_for pool 2 (fun i -> if i = 3 then raise Custom_oops)
