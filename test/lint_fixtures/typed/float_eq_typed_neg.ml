(* Not findings: integer equality, Float.equal, tolerance comparison. *)

let eq_int (a : int) (b : int) = a = b
let eq_exact (a : float) (b : float) = Float.equal a b
let close (a : float) (b : float) = Float.abs (a -. b) < 1e-9
