(* Fixture: structural equality and polymorphic compare on float operands. *)
let is_zero x = x = 0.0
let not_half x = x <> 0.5
let against_expr a b = a = (b *. 2.0)
let ordered a b = compare (sqrt a) b
