(* Fixture: no shared mutable state at module level. Function-local state
   is per-call; Atomic/Mutex/DLS are the sanctioned primitives. *)
let make_scratch n = Array.make n 0.0
let fresh_table () = Hashtbl.create 16
let total = Atomic.make 0
let guard = Mutex.create ()
let key = Domain.DLS.new_key (fun () -> 0)
let shades = "immutable string"
let _ = (make_scratch, fresh_table, total, guard, key, shades)
