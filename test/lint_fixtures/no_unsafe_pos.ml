(* Fixture: unchecked accessors outside any annotated hot path. *)
let peek a = Array.unsafe_get a 0
let poke b = Bytes.unsafe_set b 0 'x'
