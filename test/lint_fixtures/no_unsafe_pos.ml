(* Fixture: unchecked accessors outside any annotated hot path. *)
let peek a = Array.unsafe_get a 0
let poke b = Bytes.unsafe_set b 0 'x'

(* Bigarray accessors must be recognized too, qualified or not. *)
let bpeek (v : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) =
  Bigarray.Array1.unsafe_get v 0

open Bigarray

let bpoke (m : (float, float64_elt, c_layout) Array2.t) = Array2.unsafe_set m 0 0 1.0
