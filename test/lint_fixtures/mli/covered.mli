val answer : int
