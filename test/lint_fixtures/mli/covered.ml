let answer = 42
