let orphan = true
