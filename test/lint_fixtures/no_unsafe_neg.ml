(* Fixture: unsafe access inside an annotated, audited hot path. *)
let dot a b n =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc
[@@lint.hotpath "caller checks n <= min (length a) (length b); saves a bounds check per flop"]

let bdot (a : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) b n =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Bigarray.Array1.unsafe_get a i *. Bigarray.Array1.unsafe_get b i)
  done;
  !acc
[@@lint.hotpath "caller checks n <= min (dim a) (dim b); saves a bounds check per flop"]
