(* Fixture: unsafe access inside an annotated, audited hot path. *)
let dot a b n =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc
[@@lint.hotpath "caller checks n <= min (length a) (length b); saves a bounds check per flop"]
