(* Fixture: handlers that swallow every exception. *)
let swallow f = try f () with _ -> ()
let drop f = try f () with e -> ignore e2; 0
let masked f = match f () with exception _ -> None | v -> Some v
