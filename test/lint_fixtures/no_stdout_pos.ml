(* Fixture (linted as lib code): direct stdout output. *)
let announce () = print_endline "starting"
let report n = Printf.printf "n = %d\n" n
