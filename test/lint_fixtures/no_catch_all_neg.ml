(* Fixture: explicit exception cases, or re-raising the catch-all. *)
let expected f = try f () with Not_found | End_of_file -> 0
let logged f = try f () with e -> log_error e; raise e
let cleanup f = try f () with Sys_error m -> fail m
