(* Fixture: integer equality and the sanctioned float comparisons. *)
let is_zero n = n = 0
let eq_ok a b = Float.equal a b
let tol_ok a b = Float.abs (a -. b) <= 1e-12
let ord_ok a b = a <= 0.0 || b >= 1.0
let str_eq s = s = "x"
