(* Fixture: three module-level mutable bindings, one per detected shape. *)
let counter = ref 0
let table = Hashtbl.create 16
let weights = [| 0.25; 0.5; 0.25 |]

let bump () = incr counter
let _ = (bump, table, weights)
