(* Fixture: the violation is inline-suppressed with a justification. *)
let cache : (int, string) Hashtbl.t =
  Hashtbl.create 8
[@@lint.allow domain_safety "all access goes through Mutex.protect cache_mutex below"]

let cache_mutex = Mutex.create ()
let get n = Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache n)
