(* Fixture (linted as lib code): output goes to a formatter or a log. *)
let announce ppf = Format.fprintf ppf "starting@."
let report () = Logs.info (fun m -> m "done")
let render n = Printf.sprintf "n = %d" n
