(* Tests for the scenario layer: the .scn parser (positive and negative
   fixtures per construct), the print -> parse round-trip fixpoint on
   every checked-in scenario file, registry agreement, the legacy CLI
   aliases, and bit-exact layout parity against the direct generator
   calls the CLIs used to make. *)

module Layout = Geometry.Layout
module Contact = Geometry.Contact
module Profile = Substrate.Profile

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let parse text = Scenario.of_string ~file:"<test>" text

let expect_error ?contains text () =
  match parse text with
  | (_ : Scenario.t) -> Alcotest.fail "expected a parse error, got a scenario"
  | exception Scenario.Sexp.Error { file; line; col; message } ->
    Alcotest.(check string) "error file" "<test>" file;
    if line < 1 || col < 1 then
      Alcotest.failf "error position %d:%d is not 1-based" line col;
    (match contains with
    | Some sub ->
      if not (contains_substring message sub) then
        Alcotest.failf "error %S does not mention %S" message sub
    | None -> ())

(* ------------------------------------------------------------------ *)
(* Positive fixtures *)

let base_scn =
  {|(scenario
  (name t)
  (substrate
    (size 16)
    (layers (layer (name epi) (thickness 4) (conductivity 2)))
    (backplane grounded))
  (contacts (generator regular (per-side 4) (seed 1)))
  (solver eig (panels 8)))|}

let test_parse_minimal () =
  let s = parse base_scn in
  Alcotest.(check string) "name" "t" s.Scenario.name;
  Alcotest.(check string) "description defaults empty" "" s.Scenario.description;
  Alcotest.(check (float 0.0)) "size" 16.0 s.Scenario.substrate.Scenario.profile.Profile.a;
  Alcotest.(check (list string)) "layer names" [ "epi" ] s.Scenario.substrate.Scenario.layer_names;
  (match s.Scenario.solver with
  | Scenario.Eig { panels } -> Alcotest.(check int) "panels" 8 panels
  | _ -> Alcotest.fail "expected an eig solver");
  match s.Scenario.placement with
  | Scenario.Generator g ->
    Alcotest.(check int) "per-side" 4 g.Scenario.per_side;
    Alcotest.(check int) "seed" 1 g.Scenario.seed;
    Alcotest.(check bool) "no fill" true (g.Scenario.fill = None)
  | Scenario.Rects _ -> Alcotest.fail "expected a generator placement"

let test_parse_defaults () =
  (* Solver, per-side, seed and description are all optional. *)
  let s =
    parse
      {|(scenario (name d)
         (substrate (size 8)
           (layers (layer (name l) (thickness 1) (conductivity 1)))
           (backplane grounded))
         (contacts (generator regular)))|}
  in
  (match s.Scenario.solver with
  | Scenario.Eig { panels } -> Alcotest.(check int) "default panels" 64 panels
  | _ -> Alcotest.fail "default solver should be eig");
  match s.Scenario.placement with
  | Scenario.Generator g ->
    Alcotest.(check int) "default per-side" 16 g.Scenario.per_side;
    Alcotest.(check int) "default seed" 7 g.Scenario.seed
  | Scenario.Rects _ -> Alcotest.fail "expected a generator placement"

let test_parse_rects_and_fd_substrate () =
  let s =
    parse
      {|(scenario (name r)
         (description "two explicit pads")
         (substrate (size 32)
           (layers (layer (name l) (thickness 8) (conductivity 1)))
           (backplane floating))
         (fd-substrate (size 32)
           (layers (layer (name g) (thickness 8) (conductivity 1)))
           (backplane grounded))
         (contacts (rects (rect 1 1 3 3) (rect 10 10 14 12)))
         (solver fd (grid 16 4)))|}
  in
  Alcotest.(check string) "description" "two explicit pads" s.Scenario.description;
  Alcotest.(check bool) "backplane floating" true
    (s.Scenario.substrate.Scenario.profile.Profile.backplane = Profile.Floating);
  Alcotest.(check bool) "fd override present" true (s.Scenario.fd_substrate <> None);
  Alcotest.(check bool) "fd override grounded" true
    ((Scenario.fd_substrate_of s).Scenario.profile.Profile.backplane = Profile.Grounded);
  (match s.Scenario.solver with
  | Scenario.Fd { nx; nz } ->
    Alcotest.(check int) "nx" 16 nx;
    Alcotest.(check int) "nz" 4 nz
  | _ -> Alcotest.fail "expected an fd solver");
  match s.Scenario.placement with
  | Scenario.Rects rects ->
    Alcotest.(check int) "two rects" 2 (Array.length rects);
    Alcotest.(check (float 0.0)) "x1" 3.0 rects.(0).Contact.x1
  | Scenario.Generator _ -> Alcotest.fail "expected explicit rects"

let test_parse_comments_and_escapes () =
  let s =
    parse
      "(scenario (name e) ; trailing comment\n\
      \  (description \"line one\\nline \\\"two\\\"\")\n\
      \  (substrate (size 8)\n\
      \    (layers (layer (name l) (thickness 1) (conductivity 1)))\n\
      \    (backplane grounded))\n\
      \  (contacts (generator regular)))"
  in
  Alcotest.(check string) "escapes decoded" "line one\nline \"two\"" s.Scenario.description;
  (* And the decoded value survives a print -> parse round trip. *)
  let s2 = Scenario.of_string ~file:"<reprint>" (Scenario.to_string s) in
  Alcotest.(check string) "escape round trip" s.Scenario.description s2.Scenario.description

(* ------------------------------------------------------------------ *)
(* Negative fixtures: one per construct the grammar validates *)

let substrate_with body =
  Printf.sprintf
    {|(scenario (name bad)
       (substrate %s)
       (contacts (generator regular)))|}
    body

let neg_cases =
  [
    ( "unknown field",
      "unknown",
      {|(scenario (name b) (frobnicate 3)
         (substrate (size 8) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded))
         (contacts (generator regular)))|}
    );
    ( "duplicate field",
      "duplicate",
      {|(scenario (name b) (name twice)
         (substrate (size 8) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded))
         (contacts (generator regular)))|}
    );
    ( "bad number",
      "number",
      substrate_with
        {|(size eight) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded)|}
    );
    ( "non-finite number",
      "finite",
      substrate_with
        {|(size inf) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded)|}
    );
    ( "missing backplane",
      "backplane",
      substrate_with {|(size 8) (layers (layer (name l) (thickness 1) (conductivity 1)))|} );
    ( "duplicate layer names",
      "duplicate",
      substrate_with
        {|(size 8)
          (layers (layer (name l) (thickness 1) (conductivity 1))
                  (layer (name l) (thickness 2) (conductivity 3)))
          (backplane grounded)|}
    );
    ( "profile validation carries the field name",
      "thickness",
      substrate_with
        {|(size 8) (layers (layer (name l) (thickness -1) (conductivity 1))) (backplane grounded)|}
    );
    ( "degenerate rect",
      "rect",
      {|(scenario (name b)
         (substrate (size 8) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded))
         (contacts (rects (rect 3 1 3 2))))|}
    );
    ( "rect outside the surface",
      "outside",
      {|(scenario (name b)
         (substrate (size 8) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded))
         (contacts (rects (rect 1 1 9 2))))|}
    );
    ( "unknown generator",
      "generator",
      {|(scenario (name b)
         (substrate (size 8) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded))
         (contacts (generator spiral)))|}
    );
    ( "unknown solver",
      "solver",
      {|(scenario (name b)
         (substrate (size 8) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded))
         (contacts (generator regular))
         (solver magic))|}
    );
    ( "fill outside (0,1]",
      "fill",
      {|(scenario (name b)
         (substrate (size 8) (layers (layer (name l) (thickness 1) (conductivity 1))) (backplane grounded))
         (contacts (generator regular (fill 1.5))))|}
    );
    ( "unterminated list",
      "",
      {|(scenario (name b)|} );
  ]

let test_negative () =
  List.iter
    (fun (label, contains, text) ->
      let contains = if contains = "" then None else Some contains in
      try expect_error ?contains text ()
      with Alcotest.Test_error | Failure _ ->
        Alcotest.failf "negative fixture %S did not fail as expected" label)
    neg_cases

(* ------------------------------------------------------------------ *)
(* Profile.make names the offending field (the scenario parser leans on
   these messages for its diagnostics) *)

let expect_invalid_arg ~contains f =
  match f () with
  | (_ : Profile.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    if not (contains_substring msg contains) then
      Alcotest.failf "Invalid_argument %S does not mention %S" msg contains

let test_profile_make_messages () =
  let layer = { Profile.thickness = 1.0; conductivity = 1.0 } in
  expect_invalid_arg ~contains:"surface extent a" (fun () ->
      Profile.make ~a:(-1.0) ~b:1.0 ~layers:[ layer ] ~backplane:Profile.Grounded);
  expect_invalid_arg ~contains:"surface extent b" (fun () ->
      Profile.make ~a:1.0 ~b:Float.nan ~layers:[ layer ] ~backplane:Profile.Grounded);
  expect_invalid_arg ~contains:"layers is empty" (fun () ->
      Profile.make ~a:1.0 ~b:1.0 ~layers:[] ~backplane:Profile.Grounded);
  expect_invalid_arg ~contains:"layers.(1).thickness" (fun () ->
      Profile.make ~a:1.0 ~b:1.0
        ~layers:[ layer; { Profile.thickness = 0.0; conductivity = 1.0 } ]
        ~backplane:Profile.Grounded);
  expect_invalid_arg ~contains:"layers.(0).conductivity" (fun () ->
      Profile.make ~a:1.0 ~b:1.0
        ~layers:[ { Profile.thickness = 1.0; conductivity = Float.infinity } ]
        ~backplane:Profile.Grounded)

(* ------------------------------------------------------------------ *)
(* Round-trip fixpoint on every checked-in .scn, plus registry agreement *)

let scenario_files () =
  (* Under `dune runtest` the cwd is _build/default/test and the
     (source_tree ../scenarios) dep sits one level up; under `dune exec`
     the cwd is the project root and the sources are used directly. *)
  let dir =
    List.find Sys.file_exists [ Filename.concat ".." "scenarios"; "scenarios" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".scn")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_checked_in_fixpoint () =
  let files = scenario_files () in
  Alcotest.(check bool) "scenarios/ ships files" true (List.length files >= 10);
  List.iter
    (fun path ->
      let t = Scenario.of_file path in
      let printed = Scenario.to_string t in
      let t2 = Scenario.of_string ~file:(path ^ " (reprinted)") printed in
      if not (Scenario.equal t t2) then Alcotest.failf "%s: print -> parse is not a fixpoint" path;
      Alcotest.(check string) (path ^ " second print is byte-stable") printed (Scenario.to_string t2);
      (* The file contents themselves must be the canonical print. *)
      let ic = open_in_bin path in
      let on_disk = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) (path ^ " is canonical") printed on_disk;
      match Scenario.find t.Scenario.name with
      | Some reg ->
        if not (Scenario.equal t reg) then
          Alcotest.failf "%s: drifted from registry entry %s" path t.Scenario.name
      | None -> Alcotest.failf "%s: name %s is not in the registry" path t.Scenario.name)
    files

let test_registry_covers_legacy () =
  let names = Scenario.names () in
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " in registry") true (List.mem l names))
    [ "regular"; "irregular"; "alternating"; "mixed"; "large" ];
  Alcotest.(check bool) "at least two industrial placements" true
    (List.mem "epi" names && List.mem "guard-ring-heavy" names)

(* ------------------------------------------------------------------ *)
(* Legacy aliases: the old CLI flags resolve to registry entries *)

let test_legacy_alias_equals_registry () =
  List.iter
    (fun layout ->
      let via_alias =
        Scenario.of_legacy ~layout ~per_side:16 ~seed:7 ~solver:`Eig ~panels:64
      in
      let reg = Option.get (Scenario.find layout) in
      if not (Scenario.equal via_alias reg) then
        Alcotest.failf "--layout %s --per-side 16 --seed 7 differs from the registry entry" layout)
    [ "regular"; "irregular"; "alternating"; "mixed"; "large" ]

let test_legacy_alias_overrides () =
  let s = Scenario.of_legacy ~layout:"regular" ~per_side:8 ~seed:3 ~solver:`Fd ~panels:64 in
  (match s.Scenario.placement with
  | Scenario.Generator g ->
    Alcotest.(check int) "per-side override" 8 g.Scenario.per_side;
    Alcotest.(check int) "seed override" 3 g.Scenario.seed
  | Scenario.Rects _ -> Alcotest.fail "expected a generator");
  match s.Scenario.solver with
  | Scenario.Fd { nx; nz } ->
    Alcotest.(check int) "fd nx default" 64 nx;
    Alcotest.(check int) "fd nz default" 16 nz
  | _ -> Alcotest.fail "expected the fd solver"

let test_surgery_guards () =
  let epi = Option.get (Scenario.find "epi") in
  (match Scenario.with_per_side epi 8 with
  | (_ : Scenario.t) -> Alcotest.fail "with_per_side on explicit rects should raise"
  | exception Invalid_argument _ -> ());
  let fd = Option.get (Scenario.find "floating-backplane") in
  match Scenario.with_panels fd 32 with
  | (_ : Scenario.t) -> Alcotest.fail "with_panels on an fd scenario should raise"
  | exception Invalid_argument _ -> ()

let test_load_unknown () =
  match Scenario.load "no-such-scenario-or-file" with
  | (_ : Scenario.t) -> Alcotest.fail "load of an unknown name should raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions --list-scenarios" true
      (contains_substring msg "--list-scenarios")

(* ------------------------------------------------------------------ *)
(* Layout parity: scenario materialization is bit-identical to the
   direct generator calls the legacy CLI made *)

let layouts_equal a b =
  a.Layout.size = b.Layout.size
  && Array.length a.Layout.contacts = Array.length b.Layout.contacts
  && Array.for_all2
       (fun (c : Contact.t) (d : Contact.t) ->
         let eq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
         eq c.Contact.x0 d.Contact.x0 && eq c.Contact.y0 d.Contact.y0
         && eq c.Contact.x1 d.Contact.x1 && eq c.Contact.y1 d.Contact.y1)
       a.Layout.contacts b.Layout.contacts

let scenario_layout ?per_side ?seed name =
  let s = Option.get (Scenario.find name) in
  let s = match per_side with Some n -> Scenario.with_per_side s n | None -> s in
  let s = match seed with Some v -> Scenario.with_seed s v | None -> s in
  Scenario.layout s

let test_layout_parity () =
  let check name a b =
    if not (layouts_equal a b) then Alcotest.failf "%s: scenario layout differs from generator" name
  in
  check "regular"
    (scenario_layout ~per_side:8 "regular")
    (Layout.regular_grid ~size:128.0 ~per_side:8 ~fill:0.5 ());
  check "irregular"
    (scenario_layout ~per_side:8 "irregular")
    (Layout.irregular ~size:128.0 ~per_side:8 ~fill:0.4 (La.Rng.create 7) ());
  check "alternating"
    (scenario_layout ~per_side:8 "alternating")
    (Layout.alternating ~size:128.0 ~per_side:8 ());
  check "mixed" (scenario_layout "mixed") (Layout.mixed_shapes ~size:128.0 ~per_side:16 ());
  check "large"
    (scenario_layout ~per_side:8 ~seed:11 "large")
    (Layout.large_mixed ~size:128.0 ~per_side:8 (La.Rng.create 11) ())

(* ------------------------------------------------------------------ *)
(* float_repr: shortest representation, exact bits back *)

let test_float_repr_roundtrip () =
  List.iter
    (fun x ->
      let s = Scenario.float_repr x in
      let y = float_of_string s in
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) then
        Alcotest.failf "float_repr %h -> %s -> %h lost bits" x s y)
    [ 0.5; 38.5; 1.0; 0.1; 128.0; 1.0 /. 3.0; 1e-17; 4.0 *. atan 1.0 ];
  Alcotest.(check string) "integers print bare" "128" (Scenario.float_repr 128.0);
  Alcotest.(check string) "decimals stay short" "0.5" (Scenario.float_repr 0.5)

let () =
  Alcotest.run "scenario"
    [
      ( "parse",
        [
          Alcotest.test_case "minimal scenario" `Quick test_parse_minimal;
          Alcotest.test_case "optional fields default" `Quick test_parse_defaults;
          Alcotest.test_case "rects + fd-substrate" `Quick test_parse_rects_and_fd_substrate;
          Alcotest.test_case "comments and string escapes" `Quick test_parse_comments_and_escapes;
          Alcotest.test_case "negative fixtures" `Quick test_negative;
        ] );
      ( "profile",
        [ Alcotest.test_case "make names the offending field" `Quick test_profile_make_messages ] );
      ( "registry",
        [
          Alcotest.test_case "checked-in .scn fixpoint + agreement" `Quick test_checked_in_fixpoint;
          Alcotest.test_case "registry covers the legacy layouts" `Quick test_registry_covers_legacy;
          Alcotest.test_case "load rejects unknown names" `Quick test_load_unknown;
        ] );
      ( "legacy",
        [
          Alcotest.test_case "alias equals registry entry" `Quick test_legacy_alias_equals_registry;
          Alcotest.test_case "alias overrides apply" `Quick test_legacy_alias_overrides;
          Alcotest.test_case "surgery guards" `Quick test_surgery_guards;
        ] );
      ( "materialize",
        [ Alcotest.test_case "layout parity with the generators" `Quick test_layout_parity ] );
      ( "print",
        [ Alcotest.test_case "float_repr round-trips bits" `Quick test_float_repr_roundtrip ] );
    ]
