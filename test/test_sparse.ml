(* Tests for COO/CSR sparse matrices and spy rendering. *)

open La
open Sparsemat

let rng = Rng.create 99

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_sparse_dense rng m n density =
  Mat.init m n (fun _ _ -> if Rng.float rng < density then Rng.gaussian rng else 0.0)

let test_coo_roundtrip () =
  let coo = Coo.create 3 4 in
  Coo.add coo 0 1 2.0;
  Coo.add coo 2 3 (-1.0);
  Coo.add coo 0 1 3.0;
  (* duplicate: summed *)
  let m = Csr.of_coo coo in
  Alcotest.(check int) "nnz after dedup" 2 (Csr.nnz m);
  Alcotest.(check (float 1e-12)) "summed" 5.0 (Mat.get (Csr.to_dense m) 0 1)

let test_coo_cancellation () =
  let coo = Coo.create 2 2 in
  Coo.add coo 0 0 1.5;
  Coo.add coo 0 0 (-1.5);
  Alcotest.(check int) "exact cancellation dropped" 0 (Csr.nnz (Csr.of_coo coo))

let test_coo_bounds () =
  let coo = Coo.create 2 2 in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Coo.add: index (2, 0) out of bounds for 2x2") (fun () -> Coo.add coo 2 0 1.0)

let test_coo_block () =
  let coo = Coo.create 4 4 in
  Coo.add_block coo ~i0:1 ~j0:2 (Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  let d = Csr.to_dense (Csr.of_coo coo) in
  Alcotest.(check (float 1e-12)) "block entry" 4.0 (Mat.get d 2 3)

let test_coo_block_scattered () =
  let coo = Coo.create 5 5 in
  Coo.add_block_scattered coo ~row_idx:[| 4; 0 |] ~col_idx:[| 1; 3 |]
    (Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  let d = Csr.to_dense (Csr.of_coo coo) in
  Alcotest.(check (float 1e-12)) "scattered (4,1)" 1.0 (Mat.get d 4 1);
  Alcotest.(check (float 1e-12)) "scattered (0,3)" 4.0 (Mat.get d 0 3)

let test_csr_dense_roundtrip () =
  let m = random_sparse_dense rng 10 7 0.3 in
  let s = Csr.of_dense m in
  Alcotest.(check bool) "roundtrip" true (Mat.approx_equal m (Csr.to_dense s))

let prop_csr_gemv_matches_dense =
  let gen = QCheck2.Gen.(pair (int_range 1 12) (int_range 1 12)) in
  qtest "CSR gemv = dense gemv" gen (fun (m, n) ->
      let d = random_sparse_dense rng m n 0.4 in
      let s = Csr.of_dense d in
      let x = Rng.gaussian_array rng n in
      Vec.approx_equal ~tol:1e-10 (Csr.gemv s x) (Mat.gemv d x))

let prop_csr_gemv_t_matches_dense =
  let gen = QCheck2.Gen.(pair (int_range 1 12) (int_range 1 12)) in
  qtest "CSR gemv_t = dense gemv_t" gen (fun (m, n) ->
      let d = random_sparse_dense rng m n 0.4 in
      let s = Csr.of_dense d in
      let x = Rng.gaussian_array rng m in
      Vec.approx_equal ~tol:1e-10 (Csr.gemv_t s x) (Mat.gemv_t d x))

let test_csr_transpose () =
  let d = random_sparse_dense rng 6 9 0.3 in
  let s = Csr.transpose (Csr.of_dense d) in
  Alcotest.(check bool) "transpose" true (Mat.approx_equal (Mat.transpose d) (Csr.to_dense s))

let test_csr_drop_below () =
  let d = Mat.of_arrays [| [| 0.5; -2.0 |]; [| 1.0; 0.1 |] |] in
  let s = Csr.drop_below (Csr.of_dense d) 0.5 in
  Alcotest.(check int) "kept" 2 (Csr.nnz s)

let test_csr_sparsity_factor () =
  let coo = Coo.create 10 10 in
  Coo.add coo 0 0 1.0;
  Coo.add coo 5 5 1.0;
  Alcotest.(check (float 1e-9)) "factor" 50.0 (Csr.sparsity_factor (Csr.of_coo coo))

let test_threshold_for_sparsity () =
  let d = Mat.init 20 20 (fun i j -> 1.0 /. float_of_int (1 + i + j)) in
  let s = Csr.of_dense d in
  let t = Csr.threshold_for_sparsity s ~target:6.0 in
  let s' = Csr.drop_below s t in
  let achieved = float_of_int (Csr.nnz s) /. float_of_int (Csr.nnz s') in
  Alcotest.(check bool)
    (Printf.sprintf "achieved %.2f" achieved)
    true
    (achieved > 4.0 && achieved < 9.0)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_spy_render () =
  let d = Mat.identity 16 in
  let out = Spy.render ~width:16 (Csr.of_dense d) in
  Alcotest.(check bool) "mentions nnz" true (contains ~needle:"nz = 16" out);
  (* The identity's diagonal should produce glyphs on the rendered diagonal. *)
  Alcotest.(check bool) "nonempty body" true (contains ~needle:"#" out || contains ~needle:"*" out || contains ~needle:"." out || contains ~needle:"+" out || contains ~needle:":" out)

let test_matrix_market_roundtrip () =
  let d = random_sparse_dense rng 7 9 0.3 in
  let s = Csr.of_dense d in
  let path = Filename.temp_file "csr" ".mtx" in
  let oc = open_out path in
  Csr.to_matrix_market ~comment:"roundtrip test" s oc;
  close_out oc;
  let ic = open_in path in
  let s' = Csr.of_matrix_market ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "roundtrip" true (Mat.approx_equal ~tol:1e-12 (Csr.to_dense s) (Csr.to_dense s'))

let test_matrix_market_header () =
  let s = Csr.of_dense (Mat.identity 3) in
  let path = Filename.temp_file "csr" ".mtx" in
  let oc = open_out path in
  Csr.to_matrix_market s oc;
  close_out oc;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "banner" "%%MatrixMarket matrix coordinate real general" first

(* ------------------------------------------------------------------ *)
(* Fused / blocked product kernels: bit-identity against gemv/gemv_t *)

let float_bits_equal x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let vec_bits_equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i = i >= Array.length a || (float_bits_equal a.(i) b.(i) && loop (i + 1)) in
  loop 0

let batch_bits_equal xs ys =
  Array.length xs = Array.length ys && Array.for_all2 vec_bits_equal xs ys

(* Sparse matrix of a random shape/density plus a block of right-hand
   sides (with exact zeros salted in, so the gemv_t skip is exercised). *)
let sparse_batch_gen =
  QCheck2.Gen.(
    let* m = int_range 1 24 in
    let* n = int_range 1 24 in
    let* density = float_range 0.05 0.6 in
    let* seed = int_range 0 10_000 in
    let* width = int_range 0 9 in
    let rng = Rng.create seed in
    let d = random_sparse_dense rng m n density in
    let a = Csr.of_dense d in
    let block rows =
      Array.init width (fun _ ->
          Array.init rows (fun _ -> if Rng.float rng < 0.2 then 0.0 else Rng.gaussian rng))
    in
    return (a, block n, block m))

let prop_apply_batch_matches_gemv =
  qtest "apply_batch bit-identical to per-column gemv" sparse_batch_gen (fun (a, xs, _) ->
      batch_bits_equal (Array.map (Csr.gemv a) xs) (Csr.apply_batch a xs))

let prop_apply_batch_t_matches_gemv_t =
  qtest "apply_batch_t bit-identical to per-column gemv_t" sparse_batch_gen (fun (a, _, xs) ->
      batch_bits_equal (Array.map (Csr.gemv_t a) xs) (Csr.apply_batch_t a xs))

let prop_gemv_blocked_matches_gemv =
  let gen =
    QCheck2.Gen.(
      let* t = sparse_batch_gen in
      let* block = int_range 1 30 in
      return (t, block))
  in
  qtest "gemv_blocked bit-identical to gemv for any band size" gen (fun ((a, xs, _), block) ->
      Array.for_all (fun x -> vec_bits_equal (Csr.gemv a x) (Csr.gemv_blocked ~block a x)) xs)

let test_apply_batch_empty () =
  let a = Csr.of_dense (Mat.identity 4) in
  Alcotest.(check int) "empty block" 0 (Array.length (Csr.apply_batch a [||]));
  Alcotest.(check int) "empty block (transposed)" 0 (Array.length (Csr.apply_batch_t a [||]))

let test_apply_batch_mismatch () =
  let a = Csr.of_dense (random_sparse_dense rng 3 5 0.5) in
  Alcotest.check_raises "wrong column length"
    (Invalid_argument "Csr.apply_batch: dimension mismatch") (fun () ->
      ignore (Csr.apply_batch a [| Array.make 5 1.0; Array.make 4 1.0 |]))

let () =
  Alcotest.run "sparse"
    [
      ( "coo",
        [
          Alcotest.test_case "roundtrip + dedup" `Quick test_coo_roundtrip;
          Alcotest.test_case "cancellation" `Quick test_coo_cancellation;
          Alcotest.test_case "bounds" `Quick test_coo_bounds;
          Alcotest.test_case "add_block" `Quick test_coo_block;
          Alcotest.test_case "add_block_scattered" `Quick test_coo_block_scattered;
        ] );
      ( "csr",
        [
          Alcotest.test_case "dense roundtrip" `Quick test_csr_dense_roundtrip;
          prop_csr_gemv_matches_dense;
          prop_csr_gemv_t_matches_dense;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "drop_below" `Quick test_csr_drop_below;
          Alcotest.test_case "sparsity factor" `Quick test_csr_sparsity_factor;
          Alcotest.test_case "threshold search" `Quick test_threshold_for_sparsity;
          Alcotest.test_case "matrix market roundtrip" `Quick test_matrix_market_roundtrip;
          Alcotest.test_case "matrix market header" `Quick test_matrix_market_header;
        ] );
      ( "kernels",
        [
          prop_apply_batch_matches_gemv;
          prop_apply_batch_t_matches_gemv_t;
          prop_gemv_blocked_matches_gemv;
          Alcotest.test_case "empty batch" `Quick test_apply_batch_empty;
          Alcotest.test_case "ragged batch rejected" `Quick test_apply_batch_mismatch;
        ] );
      ("spy", [ Alcotest.test_case "render" `Quick test_spy_render ]);
    ]
