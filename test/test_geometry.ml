(* Tests for contacts, layouts, the quadtree and moment matrices. *)

open La
open Geometry

let rng = Rng.create 2718

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Contact *)

let test_contact_basics () =
  let c = Contact.make ~x0:1.0 ~y0:2.0 ~x1:3.0 ~y1:6.0 in
  Alcotest.(check (float 1e-12)) "area" 8.0 (Contact.area c);
  let cx, cy = Contact.centroid c in
  Alcotest.(check (float 1e-12)) "cx" 2.0 cx;
  Alcotest.(check (float 1e-12)) "cy" 4.0 cy;
  Alcotest.(check bool) "contains center" true (Contact.contains c ~x:2.0 ~y:4.0);
  Alcotest.(check bool) "outside" false (Contact.contains c ~x:0.0 ~y:0.0)

let test_contact_degenerate () =
  Alcotest.check_raises "degenerate" (Invalid_argument "Contact.make: degenerate rectangle")
    (fun () -> ignore (Contact.make ~x0:1.0 ~y0:1.0 ~x1:1.0 ~y1:2.0))

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_regular_grid () =
  let l = Layout.regular_grid ~per_side:4 () in
  Alcotest.(check int) "count" 16 (Layout.n_contacts l);
  (* All contacts equal area, all inside the surface. *)
  let a0 = Contact.area l.Layout.contacts.(0) in
  Array.iter
    (fun c ->
      Alcotest.(check (float 1e-9)) "equal areas" a0 (Contact.area c);
      Alcotest.(check bool) "inside surface" true
        (Contact.inside c ~x0:0.0 ~y0:0.0 ~x1:l.Layout.size ~y1:l.Layout.size))
    l.Layout.contacts

let test_alternating_sizes () =
  let l = Layout.alternating ~per_side:4 () in
  let areas = Array.map Contact.area l.Layout.contacts in
  (* Two distinct sizes present. *)
  let mn = Array.fold_left Float.min infinity areas in
  let mx = Array.fold_left Float.max 0.0 areas in
  Alcotest.(check bool) "two sizes" true (mx > 2.0 *. mn)

let test_irregular_density () =
  let l = Layout.irregular ~per_side:8 ~gap_fraction:0.4 rng () in
  let n = Layout.n_contacts l in
  Alcotest.(check bool) "gaps carved" true (n > 24 && n < 64)

let test_mixed_shapes_fit () =
  let l = Layout.mixed_shapes ~per_side:16 () in
  Alcotest.(check bool) "nonempty" true (Layout.n_contacts l > 50);
  (* Every piece fits in a finest-level square at per_side subdivision. *)
  let t = Quadtree.create ~max_level:4 l in
  ignore t

let test_large_mixed_scales () =
  let l = Layout.large_mixed ~per_side:32 rng () in
  Alcotest.(check bool) "hundreds of contacts" true (Layout.n_contacts l > 300)

let test_two_square_example () =
  let l, s, d = Layout.two_square_example () in
  Alcotest.(check int) "six contacts" 6 (Layout.n_contacts l);
  Alcotest.(check int) "two source" 2 (Array.length s);
  Alcotest.(check int) "four destination" 4 (Array.length d);
  (* Source contact 2 is 2.25x the area of contact 1 (thesis Fig 4-1). *)
  let a1 = Contact.area l.Layout.contacts.(s.(0)) and a2 = Contact.area l.Layout.contacts.(s.(1)) in
  Alcotest.(check (float 1e-9)) "area ratio" 2.25 (a2 /. a1)

let test_render_layout () =
  let l = Layout.regular_grid ~per_side:4 () in
  let s = Layout.render ~width:32 l in
  Alcotest.(check bool) "has contacts drawn" true (String.contains s '#')

(* ------------------------------------------------------------------ *)
(* Quadtree *)

let tree_of per_side max_level = Quadtree.create ~max_level (Layout.regular_grid ~per_side ())

let test_quadtree_counts () =
  let t = tree_of 8 3 in
  Alcotest.(check int) "level 3 squares" 64 (Array.length (Quadtree.squares_at_level t 3));
  Alcotest.(check int) "level 0 squares" 1 (Array.length (Quadtree.squares_at_level t 0));
  (* Root holds all contacts. *)
  Alcotest.(check int) "root contacts" 64 (Array.length (Quadtree.contacts_of t ~level:0 ~ix:0 ~iy:0));
  (* 8x8 contacts over 8x8 finest squares: one each. *)
  Array.iter
    (fun sq -> Alcotest.(check int) "one contact per finest square" 1 (Array.length sq.Quadtree.contacts))
    (Quadtree.squares_at_level t 3)

let test_quadtree_levels_partition () =
  let t = tree_of 8 3 in
  (* At each level the squares partition the contact set. *)
  for l = 0 to 3 do
    let total =
      Array.fold_left (fun acc sq -> acc + Array.length sq.Quadtree.contacts) 0 (Quadtree.squares_at_level t l)
    in
    Alcotest.(check int) (Printf.sprintf "level %d total" l) 64 total
  done

let test_quadtree_crossing_raises () =
  (* One big contact covering the whole surface cannot fit at level 1. *)
  let l =
    { Layout.size = 16.0; contacts = [| Contact.make ~x0:1.0 ~y0:1.0 ~x1:15.0 ~y1:15.0 |]; name = "big" }
  in
  Alcotest.check_raises "crossing" (Quadtree.Contact_crosses_boundary 0) (fun () ->
      ignore (Quadtree.create ~max_level:1 l))

let test_local_squares () =
  (* Interior square: 9 local; corner: 4 local. *)
  Alcotest.(check int) "interior" 9 (List.length (Quadtree.local_squares ~level:3 ~ix:4 ~iy:4));
  Alcotest.(check int) "corner" 4 (List.length (Quadtree.local_squares ~level:3 ~ix:0 ~iy:0));
  Alcotest.(check int) "edge" 6 (List.length (Quadtree.local_squares ~level:3 ~ix:0 ~iy:4))

let test_interactive_squares_properties () =
  (* At level 2 of a 4x4 division, every non-local square is interactive
     (all parents are neighbors at level 1). *)
  let inter = Quadtree.interactive_squares ~level:2 ~ix:1 ~iy:1 in
  let local = Quadtree.local_squares ~level:2 ~ix:1 ~iy:1 in
  Alcotest.(check int) "level 2 covers everything" 16 (List.length inter + List.length local);
  (* Below level 2, no interactive squares. *)
  Alcotest.(check int) "level 1 empty" 0 (List.length (Quadtree.interactive_squares ~level:1 ~ix:0 ~iy:0));
  (* Interactive squares are separated by at least one square. *)
  List.iter
    (fun (jx, jy) ->
      Alcotest.(check bool) "separated" true (max (abs (jx - 1)) (abs (jy - 1)) >= 2))
    inter

let test_interactive_symmetry () =
  (* d in I_s iff s in I_d (thesis: "interactive and local are symmetric
     definitions"). *)
  let level = 3 in
  let n = Quadtree.side_count level in
  for ix = 0 to n - 1 do
    for iy = 0 to n - 1 do
      List.iter
        (fun (jx, jy) ->
          let back = Quadtree.interactive_squares ~level ~ix:jx ~iy:jy in
          Alcotest.(check bool) "symmetric" true (List.mem (ix, iy) back))
        (Quadtree.interactive_squares ~level ~ix ~iy)
    done
  done

let test_interactive_plus_local_is_parent_neighborhood () =
  (* P_s = I_s + L_s refines the local region of the parent square. *)
  let level = 3 and ix = 2 and iy = 5 in
  let px, py = Quadtree.parent_coords ~ix ~iy in
  let parent_local = Quadtree.local_squares ~level:(level - 1) ~ix:px ~iy:py in
  let refined =
    List.concat_map (fun (qx, qy) -> Quadtree.children_coords ~ix:qx ~iy:qy) parent_local
  in
  let p_s = Quadtree.interactive_squares ~level ~ix ~iy @ Quadtree.local_squares ~level ~ix ~iy in
  Alcotest.(check int) "same cardinality" (List.length refined) (List.length p_s);
  List.iter
    (fun sq -> Alcotest.(check bool) "covered" true (List.mem sq refined))
    p_s

let test_region_contacts_sorted_unique () =
  let t = tree_of 8 3 in
  let region = Quadtree.region_contacts t ~level:3 (Quadtree.local_squares ~level:3 ~ix:3 ~iy:3) in
  Alcotest.(check int) "9 contacts" 9 (Array.length region);
  let sorted = Array.copy region in
  Array.sort compare sorted;
  Alcotest.(check bool) "sorted" true (region = sorted)

let test_suggest_max_level () =
  let l = Layout.regular_grid ~per_side:16 () in
  let ml = Quadtree.suggest_max_level ~target:4 l in
  let t = Quadtree.create ~max_level:ml l in
  let max_count =
    Array.fold_left (fun acc sq -> max acc (Array.length sq.Quadtree.contacts)) 0
      (Quadtree.squares_at_level t ml)
  in
  Alcotest.(check bool) "small squares" true (max_count <= 4)

(* ------------------------------------------------------------------ *)
(* Moments *)

let test_exponent_count () =
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "count p=%d" p)
        (Moments.count p)
        (Array.length (Moments.exponents p)))
    [ 0; 1; 2; 3 ];
  Alcotest.(check int) "p=2 has 6" 6 (Moments.count 2)

let test_zeroth_moment_is_area () =
  let c = Contact.make ~x0:1.0 ~y0:2.0 ~x1:4.0 ~y1:3.0 in
  Alcotest.(check (float 1e-12)) "area" (Contact.area c)
    (Moments.contact_moment ~cx:0.0 ~cy:0.0 c ~a:0 ~b:0)

let test_first_moment_centered () =
  (* About its own centroid, a contact's first moments vanish. *)
  let c = Contact.make ~x0:1.0 ~y0:2.0 ~x1:4.0 ~y1:3.0 in
  let cx, cy = Contact.centroid c in
  Alcotest.(check (float 1e-12)) "mx" 0.0 (Moments.contact_moment ~cx ~cy c ~a:1 ~b:0);
  Alcotest.(check (float 1e-12)) "my" 0.0 (Moments.contact_moment ~cx ~cy c ~a:0 ~b:1)

let numeric_moment ~cx ~cy (c : Contact.t) ~a ~b =
  (* Midpoint quadrature reference. *)
  let n = 200 in
  let dx = Contact.width c /. float_of_int n and dy = Contact.height c /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let x = c.Contact.x0 +. ((float_of_int i +. 0.5) *. dx) in
      let y = c.Contact.y0 +. ((float_of_int j +. 0.5) *. dy) in
      acc := !acc +. (((x -. cx) ** float_of_int a) *. ((y -. cy) ** float_of_int b) *. dx *. dy)
    done
  done;
  !acc

let prop_moment_matches_quadrature =
  let gen =
    QCheck2.Gen.(
      let* x0 = float_range (-2.0) 2.0 in
      let* y0 = float_range (-2.0) 2.0 in
      let* w = float_range 0.1 2.0 in
      let* h = float_range 0.1 2.0 in
      let* a = int_range 0 2 in
      let* b = int_range 0 2 in
      return (x0, y0, w, h, a, b))
  in
  qtest ~count:30 "analytic moments match quadrature" gen (fun (x0, y0, w, h, a, b) ->
      let c = Contact.make ~x0 ~y0 ~x1:(x0 +. w) ~y1:(y0 +. h) in
      let exact = Moments.contact_moment ~cx:0.5 ~cy:(-0.5) c ~a ~b in
      let approx = numeric_moment ~cx:0.5 ~cy:(-0.5) c ~a ~b in
      Float.abs (exact -. approx) < 1e-3 *. (1.0 +. Float.abs exact))

let test_moments_matrix_shape () =
  let l = Layout.regular_grid ~per_side:2 () in
  let m = Moments.matrix ~p:2 ~center:(64.0, 64.0) l.Layout.contacts in
  Alcotest.(check int) "rows" 6 (Mat.rows m);
  Alcotest.(check int) "cols" 4 (Mat.cols m)

let test_shift_matrix () =
  (* Shifting moments to a new center agrees with direct computation. *)
  let contacts = [| Contact.make ~x0:0.5 ~y0:1.0 ~x1:2.0 ~y1:2.5 |] in
  let p = 2 in
  let m_old = Moments.matrix ~p ~center:(1.0, 1.0) contacts in
  let m_new = Moments.matrix ~p ~center:(3.0, -2.0) contacts in
  (* Old center offset relative to the new center. *)
  let s = Moments.shift_matrix ~p ~dx:(1.0 -. 3.0) ~dy:(1.0 -. -2.0) in
  Alcotest.(check bool) "shift" true (Mat.approx_equal ~tol:1e-9 (Mat.mul s m_old) m_new)

let test_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (Moments.binomial 5 2);
  Alcotest.(check int) "C(4,0)" 1 (Moments.binomial 4 0);
  Alcotest.(check int) "C(3,5)" 0 (Moments.binomial 3 5)

let () =
  Alcotest.run "geometry"
    [
      ( "contact",
        [
          Alcotest.test_case "basics" `Quick test_contact_basics;
          Alcotest.test_case "degenerate" `Quick test_contact_degenerate;
        ] );
      ( "layout",
        [
          Alcotest.test_case "regular grid" `Quick test_regular_grid;
          Alcotest.test_case "alternating sizes" `Quick test_alternating_sizes;
          Alcotest.test_case "irregular density" `Quick test_irregular_density;
          Alcotest.test_case "mixed shapes fit quadtree" `Quick test_mixed_shapes_fit;
          Alcotest.test_case "large mixed scales" `Quick test_large_mixed_scales;
          Alcotest.test_case "fig 4-1 example" `Quick test_two_square_example;
          Alcotest.test_case "render" `Quick test_render_layout;
        ] );
      ( "quadtree",
        [
          Alcotest.test_case "counts" `Quick test_quadtree_counts;
          Alcotest.test_case "levels partition contacts" `Quick test_quadtree_levels_partition;
          Alcotest.test_case "crossing raises" `Quick test_quadtree_crossing_raises;
          Alcotest.test_case "local squares" `Quick test_local_squares;
          Alcotest.test_case "interactive squares" `Quick test_interactive_squares_properties;
          Alcotest.test_case "interactive symmetric" `Quick test_interactive_symmetry;
          Alcotest.test_case "P_s refines parent neighborhood" `Quick
            test_interactive_plus_local_is_parent_neighborhood;
          Alcotest.test_case "region contacts" `Quick test_region_contacts_sorted_unique;
          Alcotest.test_case "suggest_max_level" `Quick test_suggest_max_level;
        ] );
      ( "moments",
        [
          Alcotest.test_case "exponent count" `Quick test_exponent_count;
          Alcotest.test_case "zeroth = area" `Quick test_zeroth_moment_is_area;
          Alcotest.test_case "first vanish at centroid" `Quick test_first_moment_centered;
          prop_moment_matches_quadrature;
          Alcotest.test_case "matrix shape" `Quick test_moments_matrix_shape;
          Alcotest.test_case "shift matrix" `Quick test_shift_matrix;
          Alcotest.test_case "binomial" `Quick test_binomial;
        ] );
    ]
