(* Tests for subcouple-lint: one positive and one negative fixture per rule
   (test/lint_fixtures/), the suppression machinery, the checked allowlist,
   dune-derived domain-safety scope, and a self-check asserting the linter
   runs clean over the repository itself. *)

open Lint

(* Walk up from cwd to the tree root (works both from the source tree and
   from inside _build/default, whichever dune runs us in). *)
let rec find_root dir =
  if
    Sys.file_exists (Filename.concat dir "lint/domain_safety.allow")
    && Sys.file_exists (Filename.concat dir "lib")
  then dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then Alcotest.fail "repo root not found from cwd" else find_root parent

let fixture name = Filename.concat (find_root (Sys.getcwd ())) (Filename.concat "test/lint_fixtures" name)

let count rule (r : Driver.report) =
  List.length (List.filter (fun f -> f.Finding.rule = rule) r.Driver.findings)

let show (r : Driver.report) =
  String.concat "\n" (List.map Finding.to_string r.Driver.findings)

let check_counts name ?(in_lib = false) ?(domain_safety = false) ?(check_mli = false) file rule
    expected =
  let r = Driver.lint_file ~in_lib ~domain_safety ~check_mli (fixture file) in
  Alcotest.(check int) (name ^ ": " ^ show r) expected (count rule r)

(* ------------------------------------------------------------------ *)
(* Per-rule fixtures *)

let test_domain_safety_pos () =
  check_counts "ref/hashtbl/array literal flagged" ~domain_safety:true "domain_safety_pos.ml"
    Finding.Domain_safety 3

let test_domain_safety_neg () =
  let r = Driver.lint_file ~domain_safety:true (fixture "domain_safety_neg.ml") in
  Alcotest.(check int) ("clean fixture: " ^ show r) 0 (List.length r.Driver.findings)

let test_domain_safety_off_outside_scope () =
  (* The same mutable state is fine in a library the pool cannot reach. *)
  let r = Driver.lint_file ~domain_safety:false (fixture "domain_safety_pos.ml") in
  Alcotest.(check int) "not flagged outside pool-reachable scope" 0
    (count Finding.Domain_safety r)

let test_float_eq_pos () = check_counts "=/<>/compare on floats" "float_eq_pos.ml" Finding.Float_eq 4
let test_float_eq_neg () = check_counts "int eq, Float.equal, tolerances" "float_eq_neg.ml" Finding.Float_eq 0

let test_no_catch_all_pos () =
  check_counts "with _ / unused e / exception _" "no_catch_all_pos.ml" Finding.No_catch_all 3

let test_no_catch_all_neg () =
  check_counts "explicit cases and re-raise" "no_catch_all_neg.ml" Finding.No_catch_all 0

let test_no_unsafe_pos () = check_counts "unsafe accessors" "no_unsafe_pos.ml" Finding.No_unsafe 4

let test_no_unsafe_neg () =
  let r = Driver.lint_file (fixture "no_unsafe_neg.ml") in
  Alcotest.(check int) ("hotpath-annotated: " ^ show r) 0 (count Finding.No_unsafe r);
  Alcotest.(check int) "all four accesses counted as suppressed" 4 r.Driver.suppressed

let test_no_stdout_pos () =
  check_counts "stdout from lib" ~in_lib:true "no_stdout_pos.ml" Finding.No_stdout_in_lib 2

let test_no_stdout_outside_lib () =
  (* The same calls are fine outside lib/. *)
  check_counts "stdout from bin" ~in_lib:false "no_stdout_pos.ml" Finding.No_stdout_in_lib 0

let test_no_stdout_neg () =
  check_counts "formatter/log output" ~in_lib:true "no_stdout_neg.ml" Finding.No_stdout_in_lib 0

let test_mli_pos () =
  check_counts "module without interface" ~in_lib:true ~check_mli:true "mli/missing.ml"
    Finding.Mli_coverage 1

let test_mli_neg () =
  check_counts "module with interface" ~in_lib:true ~check_mli:true "mli/covered.ml"
    Finding.Mli_coverage 0

(* ------------------------------------------------------------------ *)
(* Suppressions *)

let test_suppression_with_justification () =
  let r = Driver.lint_file ~domain_safety:true (fixture "domain_safety_allow.ml") in
  Alcotest.(check int) ("no unsuppressed findings: " ^ show r) 0 (List.length r.Driver.findings);
  Alcotest.(check int) "one suppressed finding" 1 r.Driver.suppressed

let test_suppression_needs_justification () =
  let r = Driver.lint_file ~domain_safety:true (fixture "suppress_bad.ml") in
  (* The bare [@@lint.allow domain_safety] is itself a finding AND fails to
     silence the underlying one. *)
  Alcotest.(check int) ("unjustified suppression reported: " ^ show r) 1
    (count Finding.Suppression r);
  Alcotest.(check int) "underlying finding survives" 1 (count Finding.Domain_safety r)

(* ------------------------------------------------------------------ *)
(* Allowlist *)

let temp_allowlist lines =
  let path = Filename.temp_file "lint_allow" ".allow" in
  let oc = open_out path in
  output_string oc (String.concat "\n" lines);
  output_string oc "\n";
  close_out oc;
  path

let test_allowlist_suppresses () =
  let root = find_root (Sys.getcwd ()) in
  let allowlist =
    temp_allowlist [ "lib/sparse/spy.ml shades read-only ramp, never written after init" ]
  in
  let r = Driver.lint_paths ~allowlist ~root [ "lib/sparse/spy.ml" ] in
  Alcotest.(check int) ("spy.ml clean under allowlist: " ^ show r) 0 (count Finding.Domain_safety r);
  Sys.remove allowlist

let test_allowlist_stale_entry () =
  let root = find_root (Sys.getcwd ()) in
  let allowlist =
    temp_allowlist
      [
        "lib/sparse/spy.ml shades read-only ramp, never written after init";
        "lib/sparse/spy.ml no_such_binding justification for nothing";
      ]
  in
  let r = Driver.lint_paths ~allowlist ~root [ "lib/sparse/spy.ml" ] in
  Alcotest.(check int) ("stale entry reported: " ^ show r) 1 (count Finding.Suppression r);
  Sys.remove allowlist

let test_allowlist_requires_justification () =
  let allowlist = temp_allowlist [ "lib/sparse/spy.ml shades" ] in
  let entries, malformed = Allowlist.load allowlist in
  Alcotest.(check int) "entry rejected" 0 (List.length entries);
  Alcotest.(check int) "malformed line reported" 1 (List.length malformed);
  Sys.remove allowlist

(* ------------------------------------------------------------------ *)
(* Domain-safety scope from the dune files *)

let test_pool_reachable_dirs () =
  let root = find_root (Sys.getcwd ()) in
  let dirs = Dune_deps.pool_reachable_dirs ~root () in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (d ^ " is pool-reachable (" ^ String.concat ", " dirs ^ ")")
        true (List.mem d dirs))
    [ "lib/parallel"; "lib/la"; "lib/transforms"; "lib/substrate"; "lib/sparse" ]

let sexp_atoms = function
  | [ Dune_deps.List atoms ] ->
    List.map (function Dune_deps.Atom a -> a | Dune_deps.List _ -> Alcotest.fail "nested list") atoms
  | _ -> Alcotest.fail "expected a single list"

let test_sexp_escape_decoding () =
  (* The old parser decoded "a\nb" as "anb" and desynced \ddd payloads —
     a wrong [libraries] atom silently shrinks the domain_safety scope. *)
  let atoms = sexp_atoms (Dune_deps.parse_sexps {|("a\nb" "c;d" "e\"f" "g\065h" "i\x41j" "k\\l")|}) in
  Alcotest.(check (list string))
    "OCaml-style escapes decode"
    [ "a\nb"; "c;d"; "e\"f"; "gAh"; "iAj"; "k\\l" ]
    atoms;
  let atoms = sexp_atoms (Dune_deps.parse_sexps "(\"one \\\n   two\")") in
  Alcotest.(check (list string)) "backslash-newline continuation" [ "one two" ] atoms;
  (* Quoted atoms containing comment/paren characters stay one atom. *)
  let atoms = sexp_atoms (Dune_deps.parse_sexps {|("with ; semicolon" "with ( paren")|}) in
  Alcotest.(check (list string)) "; and ( inside strings" [ "with ; semicolon"; "with ( paren" ] atoms

let test_unparseable_dune_stays_in_scope () =
  (* A lib/ directory whose dune file does not parse must still be scanned
     by domain_safety: scope may only ever widen on parse trouble. *)
  let root = Filename.temp_file "lint_dune" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  let mkdune sub content =
    let dir = Filename.concat (Filename.concat root "lib") sub in
    Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir "dune") in
    output_string oc content;
    close_out oc
  in
  mkdune "ok" "(library (name ok))\n";
  mkdune "broken" "(library (name broken)\n";
  let dirs = Dune_deps.pool_reachable_dirs ~root () in
  Alcotest.(check bool)
    ("broken dune dir in scope (" ^ String.concat ", " dirs ^ ")")
    true
    (List.mem "lib/broken" dirs);
  List.iter
    (fun sub ->
      let d = Filename.concat (Filename.concat root "lib") sub in
      Sys.remove (Filename.concat d "dune");
      Sys.rmdir d)
    [ "ok"; "broken" ];
  Sys.rmdir (Filename.concat root "lib");
  Sys.rmdir root

(* ------------------------------------------------------------------ *)
(* Typed rules: compile the fixtures to .cmt with ocamlc (dependency
   order matters), then run the typed driver over the temp dir. *)

let typed_fixture_files =
  [
    "pool.ml";
    "pool_escape_counter.ml";
    "pool_escape_mid.ml";
    "pool_escape_pos.ml";
    "pool_escape_neg.ml";
    "hotpath_alloc_pos.ml";
    "hotpath_alloc_neg.ml";
    "crash_safety_pos.ml";
    "crash_safety_neg.ml";
    "float_eq_typed_pos.ml";
    "float_eq_typed_neg.ml";
    "agree_shared.ml";
  ]

let copy_file src dst =
  let ic = open_in_bin src in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc s;
  close_out oc

let compile_typed_fixtures () =
  let tmp = Filename.temp_dir "lint_typed" "" in
  let src = Filename.concat (find_root (Sys.getcwd ())) "test/lint_fixtures/typed" in
  List.iter (fun f -> copy_file (Filename.concat src f) (Filename.concat tmp f)) typed_fixture_files;
  let cmd =
    Printf.sprintf "ocamlc -c -bin-annot -w -a -I %s -I +unix %s" (Filename.quote tmp)
      (String.concat " "
         (List.map (fun f -> Filename.quote (Filename.concat tmp f)) typed_fixture_files))
  in
  (match Sys.command cmd with
  | 0 -> ()
  | c -> Alcotest.fail (Printf.sprintf "fixture compile failed with %d: %s" c cmd));
  tmp

(* Compile once, reuse across the typed test cases. *)
let typed_report =
  lazy
    (let tmp = compile_typed_fixtures () in
     Driver.lint_typed ~cmt_root:tmp ~paths:[ tmp ])

let typed_count file rule =
  let r = Lazy.force typed_report in
  List.length
    (List.filter
       (fun f -> String.equal (Filename.basename f.Finding.file) file && f.Finding.rule = rule)
       r.Driver.findings)

let check_typed name file rule expected =
  Alcotest.(check int)
    (Printf.sprintf "%s: %s" name (show (Lazy.force typed_report)))
    expected (typed_count file rule)

let test_typed_pool_escape_pos () =
  (* The write sits two call levels below the callback, in a third module;
     the finding lands where the write is. *)
  check_typed "cross-module write found" "pool_escape_counter.ml" Finding.Pool_escape 1;
  check_typed "unsanctioned exception found" "pool_escape_pos.ml" Finding.Pool_escape 1

let test_typed_pool_escape_syntactic_miss () =
  (* The same mutable state is invisible to the syntactic domain_safety
     rule: a mutable-field record literal is not a ref/Hashtbl/array. *)
  let r =
    Driver.lint_file ~domain_safety:true (fixture (Filename.concat "typed" "pool_escape_counter.ml"))
  in
  Alcotest.(check int)
    ("syntactic rule misses the record literal: " ^ show r)
    0 (List.length r.Driver.findings)

let test_typed_pool_escape_neg () =
  check_typed "Atomic/local state/sanctioned exception clean" "pool_escape_neg.ml"
    Finding.Pool_escape 0

let test_typed_hotpath_alloc_pos () =
  check_typed "allocating call + closure per iteration" "hotpath_alloc_pos.ml"
    Finding.Hotpath_alloc 2

let test_typed_hotpath_alloc_neg () =
  check_typed "entry allocations and local accumulator fine" "hotpath_alloc_neg.ml"
    Finding.Hotpath_alloc 0

let test_typed_crash_safety_pos () =
  check_typed "unsynced rename into .sca" "crash_safety_pos.ml" Finding.Crash_safety 1

let test_typed_crash_safety_neg () =
  check_typed "fsync-then-rename-then-dir-fsync protocol clean" "crash_safety_neg.ml"
    Finding.Crash_safety 0

let test_typed_float_eq_pos () =
  check_typed "opaque float operands flagged" "float_eq_typed_pos.ml" Finding.Float_eq_typed 3;
  (* ... and the syntactic rule demonstrably cannot see them. *)
  let r = Driver.lint_file (fixture (Filename.concat "typed" "float_eq_typed_pos.ml")) in
  Alcotest.(check int) ("syntactic heuristic blind to opaque floats: " ^ show r) 0
    (count Finding.Float_eq r)

let test_typed_float_eq_neg () =
  check_typed "int eq / Float.equal / tolerance clean" "float_eq_typed_neg.ml"
    Finding.Float_eq_typed 0

let test_typed_syntactic_agreement () =
  (* On a site both can see, the two drivers must agree on the line. *)
  let syntactic = Driver.lint_file (fixture (Filename.concat "typed" "agree_shared.ml")) in
  let syn_line =
    match List.find_opt (fun f -> f.Finding.rule = Finding.Float_eq) syntactic.Driver.findings with
    | Some f -> f.Finding.line
    | None -> Alcotest.fail ("syntactic driver found nothing:\n" ^ show syntactic)
  in
  let typed = Lazy.force typed_report in
  let typed_line =
    match
      List.find_opt
        (fun f ->
          String.equal (Filename.basename f.Finding.file) "agree_shared.ml"
          && f.Finding.rule = Finding.Float_eq_typed)
        typed.Driver.findings
    with
    | Some f -> f.Finding.line
    | None -> Alcotest.fail ("typed driver found nothing:\n" ^ show typed)
  in
  Alcotest.(check int) "both drivers flag the same line" syn_line typed_line

(* ------------------------------------------------------------------ *)
(* Seeded violation and repo self-check *)

let test_seeded_violation_detected () =
  (* Simulate the acceptance check: drop a single float_eq violation into a
     fresh tree and the driver must report that rule at that file. *)
  let dir = Filename.temp_file "lint_seed" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "lib") 0o755;
  let bad = Filename.concat (Filename.concat dir "lib") "bad.ml" in
  let oc = open_out bad in
  output_string oc "let is_zero x = x = 0.0\n";
  close_out oc;
  let r = Driver.lint_paths ~root:dir [ "lib" ] in
  Alcotest.(check int) ("violation found: " ^ show r) 1 (count Finding.Float_eq r);
  (* The seeded module also (correctly) lacks an .mli. *)
  Alcotest.(check int) ("mli finding too: " ^ show r) 1 (count Finding.Mli_coverage r);
  (match List.find_opt (fun f -> f.Finding.rule = Finding.Float_eq) r.Driver.findings with
  | Some f ->
    Alcotest.(check string) "names the file" "lib/bad.ml" f.Finding.file;
    Alcotest.(check int) "names the line" 1 f.Finding.line
  | None -> Alcotest.fail ("expected a float_eq finding:\n" ^ show r));
  Sys.remove bad;
  Sys.rmdir (Filename.concat dir "lib");
  Sys.rmdir dir

let test_repo_self_check () =
  let root = find_root (Sys.getcwd ()) in
  let allowlist = Filename.concat root "lint/domain_safety.allow" in
  let r = Driver.lint_paths ~allowlist ~root [ "lib"; "bin"; "bench" ] in
  Alcotest.(check string) "repo lints clean" "" (show r);
  Alcotest.(check bool) "checked a substantial tree" true (r.Driver.files > 40)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "domain_safety",
        [
          Alcotest.test_case "positive fixture" `Quick test_domain_safety_pos;
          Alcotest.test_case "negative fixture" `Quick test_domain_safety_neg;
          Alcotest.test_case "scope-gated" `Quick test_domain_safety_off_outside_scope;
        ] );
      ( "float_eq",
        [
          Alcotest.test_case "positive fixture" `Quick test_float_eq_pos;
          Alcotest.test_case "negative fixture" `Quick test_float_eq_neg;
        ] );
      ( "no_catch_all",
        [
          Alcotest.test_case "positive fixture" `Quick test_no_catch_all_pos;
          Alcotest.test_case "negative fixture" `Quick test_no_catch_all_neg;
        ] );
      ( "no_unsafe",
        [
          Alcotest.test_case "positive fixture" `Quick test_no_unsafe_pos;
          Alcotest.test_case "hotpath fixture" `Quick test_no_unsafe_neg;
        ] );
      ( "no_stdout_in_lib",
        [
          Alcotest.test_case "positive fixture" `Quick test_no_stdout_pos;
          Alcotest.test_case "outside lib" `Quick test_no_stdout_outside_lib;
          Alcotest.test_case "negative fixture" `Quick test_no_stdout_neg;
        ] );
      ( "mli_coverage",
        [
          Alcotest.test_case "positive fixture" `Quick test_mli_pos;
          Alcotest.test_case "negative fixture" `Quick test_mli_neg;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "justified attribute" `Quick test_suppression_with_justification;
          Alcotest.test_case "justification required" `Quick test_suppression_needs_justification;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppresses matching finding" `Quick test_allowlist_suppresses;
          Alcotest.test_case "stale entry is an error" `Quick test_allowlist_stale_entry;
          Alcotest.test_case "justification required" `Quick test_allowlist_requires_justification;
        ] );
      ( "scope",
        [
          Alcotest.test_case "dune-derived pool reachability" `Quick test_pool_reachable_dirs;
          Alcotest.test_case "sexp string escapes decode" `Quick test_sexp_escape_decoding;
          Alcotest.test_case "unparseable dune widens scope" `Quick
            test_unparseable_dune_stays_in_scope;
        ] );
      ( "pool_escape",
        [
          Alcotest.test_case "positive fixtures (cross-module)" `Quick test_typed_pool_escape_pos;
          Alcotest.test_case "syntactic rule provably misses it" `Quick
            test_typed_pool_escape_syntactic_miss;
          Alcotest.test_case "negative fixture" `Quick test_typed_pool_escape_neg;
        ] );
      ( "hotpath_alloc",
        [
          Alcotest.test_case "positive fixture" `Quick test_typed_hotpath_alloc_pos;
          Alcotest.test_case "negative fixture" `Quick test_typed_hotpath_alloc_neg;
        ] );
      ( "crash_safety",
        [
          Alcotest.test_case "positive fixture" `Quick test_typed_crash_safety_pos;
          Alcotest.test_case "negative fixture" `Quick test_typed_crash_safety_neg;
        ] );
      ( "float_eq_typed",
        [
          Alcotest.test_case "positive fixture" `Quick test_typed_float_eq_pos;
          Alcotest.test_case "negative fixture" `Quick test_typed_float_eq_neg;
          Alcotest.test_case "typed/syntactic agreement" `Quick test_typed_syntactic_agreement;
        ] );
      ( "driver",
        [
          Alcotest.test_case "seeded violation detected" `Quick test_seeded_violation_detected;
          Alcotest.test_case "repo self-check" `Quick test_repo_self_check;
        ] );
    ]
