(* Tests for FFT, DCT and the fast Poisson solver. *)

open La
open Transforms

let rng = Rng.create 1234

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* FFT *)

let test_fft_matches_naive () =
  List.iter
    (fun n ->
      let re = Rng.gaussian_array rng n and im = Rng.gaussian_array rng n in
      let er, ei = Fft.dft_naive ~sign:(-1) re im in
      let fr = Array.copy re and fi = Array.copy im in
      Fft.forward fr fi;
      Alcotest.(check bool)
        (Printf.sprintf "fft re n=%d" n)
        true
        (Vec.approx_equal ~tol:1e-8 fr er && Vec.approx_equal ~tol:1e-8 fi ei))
    [ 1; 2; 4; 8; 16; 64 ]

let test_fft_roundtrip () =
  let n = 32 in
  let re = Rng.gaussian_array rng n and im = Rng.gaussian_array rng n in
  let fr = Array.copy re and fi = Array.copy im in
  Fft.forward fr fi;
  Fft.inverse fr fi;
  Alcotest.(check bool) "roundtrip" true
    (Vec.approx_equal ~tol:1e-10 fr re && Vec.approx_equal ~tol:1e-10 fi im)

let test_fft_rejects_non_power_of_two () =
  Alcotest.check_raises "n=3" (Invalid_argument "Fft.transform: length must be a power of two")
    (fun () -> Fft.forward (Array.make 3 0.0) (Array.make 3 0.0))

let test_fft_parseval () =
  let n = 64 in
  let re = Rng.gaussian_array rng n and im = Array.make n 0.0 in
  let energy_time = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 re in
  let fr = Array.copy re and fi = Array.copy im in
  Fft.forward fr fi;
  let energy_freq =
    Array.fold_left ( +. ) 0.0 (Array.init n (fun i -> (fr.(i) *. fr.(i)) +. (fi.(i) *. fi.(i))))
    /. float_of_int n
  in
  Alcotest.(check (float 1e-8)) "parseval" energy_time energy_freq

(* ------------------------------------------------------------------ *)
(* DCT *)

(* Explicit orthonormal DCT-II matrix for comparison. *)
let dct_matrix n =
  Mat.init n n (fun k j ->
      let s = if k = 0 then sqrt (1.0 /. float_of_int n) else sqrt (2.0 /. float_of_int n) in
      s *. cos (Float.pi *. (float_of_int j +. 0.5) *. float_of_int k /. float_of_int n))

let test_dct_matches_matrix () =
  List.iter
    (fun n ->
      let x = Rng.gaussian_array rng n in
      let expected = Mat.gemv (dct_matrix n) x in
      Alcotest.(check bool)
        (Printf.sprintf "dct n=%d" n)
        true
        (Vec.approx_equal ~tol:1e-9 (Dct.dct_ii x) expected))
    [ 1; 2; 3; 4; 5; 8; 16; 17; 32 ]

let test_dct_roundtrip () =
  List.iter
    (fun n ->
      let x = Rng.gaussian_array rng n in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip n=%d" n)
        true
        (Vec.approx_equal ~tol:1e-9 (Dct.dct_iii (Dct.dct_ii x)) x))
    [ 1; 2; 3; 7; 8; 64 ]

let test_dct_orthogonal () =
  (* Energy preservation: ||DCT x|| = ||x||. *)
  let x = Rng.gaussian_array rng 128 in
  Alcotest.(check (float 1e-9)) "norm preserved" (Vec.norm2 x) (Vec.norm2 (Dct.dct_ii x))

let test_dct_transpose_property () =
  (* <DCT x, y> = <x, DCT' y> = <x, DCT-III y>. *)
  let x = Rng.gaussian_array rng 16 and y = Rng.gaussian_array rng 16 in
  Alcotest.(check (float 1e-9)) "adjoint" (Vec.dot (Dct.dct_ii x) y) (Vec.dot x (Dct.dct_iii y))

let test_dct_2d_roundtrip () =
  let nx = 8 and ny = 4 in
  let a = Rng.gaussian_array rng (nx * ny) in
  let b = Dct.dct_iii_2d ~nx ~ny (Dct.dct_ii_2d ~nx ~ny a) in
  Alcotest.(check bool) "2d roundtrip" true (Vec.approx_equal ~tol:1e-9 a b)

let test_dct_2d_separable () =
  (* A rank-1 grid f(x) g(y) transforms to dct(f) outer dct(g). *)
  let nx = 4 and ny = 8 in
  let f = Rng.gaussian_array rng nx and g = Rng.gaussian_array rng ny in
  let a = Array.init (nx * ny) (fun i -> f.(i mod nx) *. g.(i / nx)) in
  let fa = Dct.dct_ii f and ga = Dct.dct_ii g in
  let expected = Array.init (nx * ny) (fun i -> fa.(i mod nx) *. ga.(i / nx)) in
  Alcotest.(check bool) "separable" true
    (Vec.approx_equal ~tol:1e-9 (Dct.dct_ii_2d ~nx ~ny a) expected)

let test_dct_plan_matches_naive_large () =
  (* The FFT-plan path agrees with the direct sum at solver-scale lengths. *)
  List.iter
    (fun n ->
      let x = Rng.gaussian_array rng n in
      let fast = Dct.dct_ii x in
      let slow = Mat.gemv (dct_matrix n) x in
      Alcotest.(check bool) (Printf.sprintf "plan n=%d" n) true (Vec.approx_equal ~tol:1e-8 fast slow))
    [ 128; 256 ]

let test_dct_2d_rect_roundtrip () =
  (* Rectangular power-of-two grids through the plan path. *)
  let nx = 32 and ny = 8 in
  let a = Rng.gaussian_array rng (nx * ny) in
  Alcotest.(check bool) "rect roundtrip" true
    (Vec.approx_equal ~tol:1e-9 a (Dct.dct_iii_2d ~nx ~ny (Dct.dct_ii_2d ~nx ~ny a)))

let prop_dct_linear =
  let gen =
    QCheck2.Gen.(
      let* n = oneofl [ 4; 8; 16 ] in
      let* xs = list_repeat n (float_range (-5.0) 5.0) in
      let* ys = list_repeat n (float_range (-5.0) 5.0) in
      return (Array.of_list xs, Array.of_list ys))
  in
  qtest "DCT is linear" gen (fun (x, y) ->
      let lhs = Dct.dct_ii (Vec.add x y) in
      let rhs = Vec.add (Dct.dct_ii x) (Dct.dct_ii y) in
      Vec.approx_equal ~tol:1e-9 lhs rhs)

let test_neumann_eigenpair () =
  (* The DCT mode really is an eigenvector of the 1-D Neumann Laplacian. *)
  let n = 16 and k = 5 in
  let mode = Array.init n (fun j -> cos (Float.pi *. (float_of_int j +. 0.5) *. float_of_int k /. float_of_int n)) in
  let lap v =
    Array.init n (fun i ->
        let left = if i > 0 then v.(i) -. v.(i - 1) else 0.0 in
        let right = if i < n - 1 then v.(i) -. v.(i + 1) else 0.0 in
        left +. right)
  in
  let lambda = Dct.neumann_laplacian_eigenvalue ~n ~k in
  Alcotest.(check bool) "eigenpair" true
    (Vec.approx_equal ~tol:1e-9 (lap mode) (Vec.scale lambda mode))

(* ------------------------------------------------------------------ *)
(* Poisson *)

let make_poisson ?(top_fraction = 1.0) ?(bottom_contact = false) ?(nx = 4) ?(ny = 4) ?(nz = 3) () =
  let sigma = Array.init nz (fun k -> if k = 0 then 1.0 else 10.0) in
  Poisson.create ~nx ~ny ~nz ~h:0.5 ~sigma ~top_fraction ~bottom_contact ()

let test_poisson_solver_exact () =
  (* solve really inverts apply when the operator is nonsingular. *)
  let p = make_poisson () in
  let n = Poisson.size p in
  let x = Rng.gaussian_array rng n in
  let b = Poisson.apply p x in
  let x' = Poisson.solve p b in
  Alcotest.(check bool) "exact inverse" true (Vec.approx_equal ~tol:1e-8 x x')

let test_poisson_solver_exact_backplane () =
  let p = make_poisson ~top_fraction:0.0 ~bottom_contact:true () in
  let n = Poisson.size p in
  let x = Rng.gaussian_array rng n in
  Alcotest.(check bool) "backplane inverse" true
    (Vec.approx_equal ~tol:1e-8 x (Poisson.solve p (Poisson.apply p x)))

let test_poisson_apply_symmetric () =
  (* <M x, y> = <x, M y>. *)
  let p = make_poisson ~top_fraction:0.3 () in
  let n = Poisson.size p in
  let x = Rng.gaussian_array rng n and y = Rng.gaussian_array rng n in
  Alcotest.(check (float 1e-8)) "self-adjoint" (Vec.dot (Poisson.apply p x) y)
    (Vec.dot x (Poisson.apply p y))

let test_poisson_apply_matches_dense_stamp () =
  (* Check the operator against an independently stamped dense matrix on a
     tiny grid. *)
  let p = make_poisson ~nx:2 ~ny:2 ~nz:2 ~top_fraction:1.0 () in
  let n = Poisson.size p in
  let dense = Mat.init n n (fun i j ->
      let ei = Array.make n 0.0 in
      ei.(j) <- 1.0;
      (Poisson.apply p ei).(i))
  in
  Alcotest.(check bool) "symmetric dense" true (Mat.is_symmetric dense);
  (* Diagonal dominance with strictness on the top plane (Dirichlet above). *)
  for i = 0 to n - 1 do
    let off = ref 0.0 in
    for j = 0 to n - 1 do
      if i <> j then off := !off +. Float.abs (Mat.get dense i j)
    done;
    Alcotest.(check bool) "diagonally dominant" true (Mat.get dense i i >= !off -. 1e-12)
  done

let test_poisson_singular_mode_regularized () =
  (* Pure Neumann everywhere: solve must not blow up. *)
  let p = make_poisson ~top_fraction:0.0 ~bottom_contact:false () in
  let n = Poisson.size p in
  (* Zero-mean rhs lies in the range of the singular operator. *)
  let b = Rng.gaussian_array rng n in
  let mean = Vec.sum b /. float_of_int n in
  let b = Array.map (fun x -> x -. mean) b in
  let x = Poisson.solve p b in
  let r = Vec.sub (Poisson.apply p x) b in
  Alcotest.(check bool) "residual small on range" true (Vec.norm2 r < 1e-6 *. Vec.norm2 b)

let test_series_conductance () =
  (* Equal conductivities: series of two half resistors = one full resistor. *)
  Alcotest.(check (float 1e-12)) "uniform" 0.5 (Poisson.series_conductance 0.5 1.0 1.0);
  (* Matches (2.8): g = h / (p/s1 + (1-p)/s2) at p = 1/2. *)
  let h = 2.0 and s1 = 3.0 and s2 = 5.0 in
  Alcotest.(check (float 1e-12)) "layered"
    (h /. ((0.5 /. s1) +. (0.5 /. s2)))
    (Poisson.series_conductance h s1 s2)

let () =
  Alcotest.run "transforms"
    [
      ( "fft",
        [
          Alcotest.test_case "matches naive DFT" `Quick test_fft_matches_naive;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "rejects non-power-of-two" `Quick test_fft_rejects_non_power_of_two;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
        ] );
      ( "dct",
        [
          Alcotest.test_case "matches explicit matrix" `Quick test_dct_matches_matrix;
          Alcotest.test_case "roundtrip" `Quick test_dct_roundtrip;
          Alcotest.test_case "orthogonal" `Quick test_dct_orthogonal;
          Alcotest.test_case "transpose property" `Quick test_dct_transpose_property;
          Alcotest.test_case "2d roundtrip" `Quick test_dct_2d_roundtrip;
          Alcotest.test_case "2d separable" `Quick test_dct_2d_separable;
          Alcotest.test_case "neumann eigenpair" `Quick test_neumann_eigenpair;
          Alcotest.test_case "plan matches naive (large)" `Quick test_dct_plan_matches_naive_large;
          Alcotest.test_case "2d rectangular roundtrip" `Quick test_dct_2d_rect_roundtrip;
          prop_dct_linear;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "exact inverse (top dirichlet)" `Quick test_poisson_solver_exact;
          Alcotest.test_case "exact inverse (backplane)" `Quick test_poisson_solver_exact_backplane;
          Alcotest.test_case "apply symmetric" `Quick test_poisson_apply_symmetric;
          Alcotest.test_case "matches dense stamp" `Quick test_poisson_apply_matches_dense_stamp;
          Alcotest.test_case "singular mode regularized" `Quick test_poisson_singular_mode_regularized;
          Alcotest.test_case "series conductance" `Quick test_series_conductance;
        ] );
    ]
