(* Tests for the wavelet sparsification method (thesis Chapter 3). *)

open La
module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
module Quadtree = Geometry.Quadtree
module Moments = Geometry.Moments
open Sparsify

(* A 16x16 grid of contacts on the thesis's standard substrate, with the
   exact G extracted once via the eigenfunction solver and reused. *)
let layout = Geometry.Layout.regular_grid ~size:128.0 ~per_side:16 ~fill:0.5 ()

let g_exact =
  lazy
    (let profile = Profile.thesis_default () in
     let solver = Eigsolver.Eig_solver.create ~tol:1e-10 profile layout ~panels_per_side:64 in
     Blackbox.extract_dense (Eigsolver.Eig_solver.blackbox solver))

let basis = lazy (Wavelet.create ~p:2 ~max_level:2 layout)

let repr_combined =
  lazy
    (let bb = Blackbox.of_dense (Lazy.force g_exact) in
     (Wavelet.extract (Lazy.force basis) bb, Blackbox.solve_count bb))

(* ------------------------------------------------------------------ *)
(* Basis structure *)

let test_q_column_count () =
  let q = Wavelet.q_matrix (Lazy.force basis) in
  Alcotest.(check int) "square" 256 (Sparsemat.Csr.rows q);
  Alcotest.(check int) "cols" 256 (Sparsemat.Csr.cols q)

let test_q_orthogonal () =
  let q = Wavelet.q_matrix (Lazy.force basis) in
  let qd = Sparsemat.Csr.to_dense q in
  let defect = Mat.max_abs (Mat.sub (Mat.mul (Mat.transpose qd) qd) (Mat.identity 256)) in
  Alcotest.(check bool) (Printf.sprintf "defect %.2e" defect) true (defect < 1e-8)

let test_q_sparse () =
  let q = Wavelet.q_matrix (Lazy.force basis) in
  Alcotest.(check bool)
    (Printf.sprintf "sparsity %.1f" (Sparsemat.Csr.sparsity_factor q))
    true
    (Sparsemat.Csr.sparsity_factor q > 4.0)

let test_moments_vanish () =
  (* Every W column of every square has vanishing moments up to order p
     about its square's center — the defining property (3.14). *)
  let b = Lazy.force basis in
  let tree = Wavelet.tree b in
  for level = 0 to Quadtree.max_level tree do
    let nsq = Quadtree.side_count level in
    for iy = 0 to nsq - 1 do
      for ix = 0 to nsq - 1 do
        match Wavelet.find b ~level ~ix ~iy with
        | None -> ()
        | Some sb ->
          let center = Quadtree.square_center tree ~level ~ix ~iy in
          let contacts = Array.map (fun id -> layout.Geometry.Layout.contacts.(id)) sb.Wavelet.contacts in
          for j = 0 to Mat.cols sb.Wavelet.w - 1 do
            let m = Moments.of_vector ~p:2 ~center contacts (Mat.col sb.Wavelet.w j) in
            Alcotest.(check bool)
              (Printf.sprintf "level %d square (%d,%d) col %d" level ix iy j)
              true
              (Vec.norm_inf m < 1e-8)
          done
      done
    done
  done

let test_v_plus_w_spans_square () =
  (* Per finest square, [V W] is a square orthogonal matrix. *)
  let b = Lazy.force basis in
  match Wavelet.find b ~level:2 ~ix:1 ~iy:1 with
  | None -> Alcotest.fail "square unexpectedly empty"
  | Some sb ->
    let vw = Mat.hcat sb.Wavelet.v sb.Wavelet.w in
    Alcotest.(check int) "square basis" (Array.length sb.Wavelet.contacts) (Mat.cols vw);
    let defect = Mat.max_abs (Mat.sub (Mat.mul (Mat.transpose vw) vw) (Mat.identity (Mat.cols vw))) in
    Alcotest.(check bool) "orthonormal" true (defect < 1e-10)

let test_transformed_matrix_decays () =
  (* The heart of Chapter 3: entries of Q' G Q between well-separated
     squares are far smaller than the corresponding standard-basis entries.
     Measure: dropping the same number of smallest entries from Q'GQ and
     from G, the wavelet basis retains much more accuracy. *)
  let g = Lazy.force g_exact in
  let gw = Wavelet.change_basis_dense (Lazy.force basis) g in
  let spectral_tail m keep_frac =
    (* Energy outside the largest keep_frac fraction of entries. *)
    let entries = Array.init (256 * 256) (fun k -> Float.abs (Mat.get m (k / 256) (k mod 256))) in
    Array.sort (fun a b -> compare b a) entries;
    let keep = int_of_float (keep_frac *. float_of_int (Array.length entries)) in
    let tail = ref 0.0 in
    for k = keep to Array.length entries - 1 do
      tail := !tail +. (entries.(k) *. entries.(k))
    done;
    sqrt !tail
  in
  let tail_g = spectral_tail g 0.1 and tail_gw = spectral_tail gw 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "tail ratio %.2f" (tail_gw /. tail_g))
    true
    (tail_gw < 0.2 *. tail_g)

let test_factored_transform_matches_explicit () =
  (* The O(n)-storage factored form (thesis §3.4.3) applies the same Q. *)
  let b = Lazy.force basis in
  let q = Sparsemat.Csr.to_dense (Wavelet.q_matrix b) in
  let rng = Rng.create 8 in
  for _ = 1 to 3 do
    let x = Rng.gaussian_array rng 256 in
    Alcotest.(check bool) "Q' x" true
      (Vec.approx_equal ~tol:1e-9 (Subcouple_op.apply (Wavelet.qt_op b) x) (Mat.gemv_t q x));
    Alcotest.(check bool) "Q z" true
      (Vec.approx_equal ~tol:1e-9 (Subcouple_op.apply (Wavelet.q_op b) x) (Mat.gemv q x))
  done

let test_factored_storage_linear () =
  (* The factored form stores fewer floats than the explicit sparse Q. *)
  let b = Lazy.force basis in
  let q = Wavelet.q_matrix b in
  let factored = Wavelet.factored_storage_floats b in
  Alcotest.(check bool)
    (Printf.sprintf "factored %d < explicit nnz %d" factored (Sparsemat.Csr.nnz q))
    true
    (factored < Sparsemat.Csr.nnz q)

(* ------------------------------------------------------------------ *)
(* Extraction *)

let test_extraction_accuracy () =
  let repr, _ = Lazy.force repr_combined in
  let err = Metrics.error_dense ~exact:(Lazy.force g_exact) ~approx:(Repr.to_dense repr) in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.3f%%" (100.0 *. err.Metrics.max_rel_error))
    true
    (err.Metrics.max_rel_error < 0.05)

let test_extraction_sparsity () =
  (* At n = 256 only three levels are active, so the always-kept coarse
     interactions dominate; the thesis's factors of 2.5+ appear at n >= 1024
     (exercised by the benches). Here just check G_ws is genuinely sparser
     than dense and that thresholding multiplies the factor. *)
  let repr, _ = Lazy.force repr_combined in
  Alcotest.(check bool)
    (Printf.sprintf "G_ws sparsity %.2f" (Repr.sparsity_gw repr))
    true
    (Repr.sparsity_gw repr > 1.2);
  let thr = Repr.threshold repr ~target:6.0 in
  Alcotest.(check bool)
    (Printf.sprintf "thresholded sparsity %.2f" (Repr.sparsity_gw thr))
    true
    (Repr.sparsity_gw thr > 5.0 *. Repr.sparsity_gw repr)

let test_solve_reduction () =
  let _, solves = Lazy.force repr_combined in
  Alcotest.(check bool) (Printf.sprintf "%d solves for 256 contacts" solves) true (solves < 256)

let test_combine_matches_direct () =
  (* Combine-solves must agree closely with one-solve-per-vector. *)
  let bb1 = Blackbox.of_dense (Lazy.force g_exact) in
  let direct = Wavelet.extract ~combine:false (Lazy.force basis) bb1 in
  let repr, solves_combined = Lazy.force repr_combined in
  Alcotest.(check bool)
    (Printf.sprintf "solves: combined %d < direct %d" solves_combined (Blackbox.solve_count bb1))
    true
    (solves_combined < Blackbox.solve_count bb1);
  let d1 = Repr.to_dense direct and d2 = Repr.to_dense repr in
  let diff = Mat.max_abs (Mat.sub d1 d2) /. Mat.max_abs d1 in
  Alcotest.(check bool) (Printf.sprintf "relative diff %.2e" diff) true (diff < 0.02)

let test_threshold_trades_accuracy_for_sparsity () =
  let repr, _ = Lazy.force repr_combined in
  let thresholded = Repr.threshold repr ~target:6.0 in
  Alcotest.(check bool) "sparser" true (Repr.nnz_gw thresholded < Repr.nnz_gw repr);
  let g = Lazy.force g_exact in
  let err_full = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
  let err_thr = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense thresholded) in
  Alcotest.(check bool) "accuracy decreases" true
    (err_thr.Metrics.max_rel_error >= err_full.Metrics.max_rel_error);
  (* But stays usable: the thesis reports ~1-5% of entries off by > 10%. *)
  Alcotest.(check bool)
    (Printf.sprintf "frac > 10%%: %.3f" err_thr.Metrics.frac_above_10pct)
    true
    (err_thr.Metrics.frac_above_10pct < 0.25)

let test_wavelet_beats_naive_thresholding () =
  (* Thesis §3.7: thresholding G_w is far more accurate than thresholding G
     itself at equal sparsity. *)
  let g = Lazy.force g_exact in
  let repr, _ = Lazy.force repr_combined in
  let thresholded = Repr.threshold repr ~target:6.0 in
  let nnz = Repr.nnz_gw thresholded in
  (* Threshold G directly to the same nnz. *)
  let g_csr = Sparsemat.Csr.of_dense g in
  let target = float_of_int (Sparsemat.Csr.nnz g_csr) /. float_of_int nnz in
  let g_thr = Sparsemat.Csr.drop_below g_csr (Sparsemat.Csr.threshold_for_sparsity g_csr ~target) in
  let err_wavelet = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense thresholded) in
  let err_naive = Metrics.error_dense ~exact:g ~approx:(Sparsemat.Csr.to_dense g_thr) in
  Alcotest.(check bool)
    (Printf.sprintf "wavelet %.3f vs naive %.3f (frac > 10%%)" err_wavelet.Metrics.frac_above_10pct
       err_naive.Metrics.frac_above_10pct)
    true
    (err_wavelet.Metrics.frac_above_10pct < 0.5 *. err_naive.Metrics.frac_above_10pct)

let test_repr_apply_matches_dense () =
  let repr, _ = Lazy.force repr_combined in
  let rng = Rng.create 5 in
  let v = Rng.gaussian_array rng 256 in
  let direct = Mat.gemv (Repr.to_dense repr) v in
  Alcotest.(check bool) "apply consistent" true
    (Vec.approx_equal ~tol:1e-8 direct (Subcouple_op.apply (Repr.op repr) v))

(* ------------------------------------------------------------------ *)
(* Combine grouping *)

let test_groups_well_separated () =
  let coords = List.concat_map (fun i -> List.init 8 (fun j -> (i, j))) (List.init 8 Fun.id) in
  let groups = Combine.groups_of_squares coords in
  Alcotest.(check int) "9 groups" 9 (Array.length groups);
  Array.iter
    (fun g -> Alcotest.(check bool) "separated by 3" true (Combine.well_separated ~gap:3 g))
    groups;
  Alcotest.(check int) "partition" 64 (Array.fold_left (fun acc g -> acc + List.length g) 0 groups)

let test_child_groups_distinct_parents () =
  let coords = List.concat_map (fun i -> List.init 16 (fun j -> (i, j))) (List.init 16 Fun.id) in
  let groups = Combine.groups_of_children coords in
  Alcotest.(check int) "36 groups" 36 (Array.length groups);
  Array.iter
    (fun g ->
      let parents = List.map (fun (x, y) -> (x / 2, y / 2)) g in
      let distinct = List.sort_uniq compare parents in
      Alcotest.(check int) "distinct parents" (List.length parents) (List.length distinct);
      Alcotest.(check bool) "parents separated" true (Combine.well_separated ~gap:3 distinct))
    groups;
  Alcotest.(check int) "partition" 256 (Array.fold_left (fun acc g -> acc + List.length g) 0 groups)

let test_morton_order () =
  (* Top-left quadrant squares come before others at the same level. *)
  Alcotest.(check bool) "quadrants" true
    (Wavelet.morton ~ix:0 ~iy:0 < Wavelet.morton ~ix:1 ~iy:0
    && Wavelet.morton ~ix:1 ~iy:0 < Wavelet.morton ~ix:0 ~iy:1
    && Wavelet.morton ~ix:1 ~iy:1 < Wavelet.morton ~ix:2 ~iy:0)

(* ------------------------------------------------------------------ *)
(* Regions *)

let test_regions_positions () =
  Alcotest.(check bool) "positions" true
    (Regions.positions ~within:[| 2; 5; 7; 9 |] [| 5; 9 |] = [| 1; 3 |])

let test_regions_embed_gather () =
  let within = [| 1; 4; 6; 8 |] and sub = [| 4; 8 |] in
  let embedded = Regions.embed ~within ~sub [| 2.0; 3.0 |] in
  Alcotest.(check bool) "embed" true (Vec.approx_equal embedded [| 0.0; 2.0; 0.0; 3.0 |]);
  let global = [| 0.0; 10.0; 0.0; 0.0; 40.0; 0.0; 60.0; 0.0; 80.0 |] in
  Alcotest.(check bool) "gather" true (Vec.approx_equal (Regions.gather within global) [| 10.0; 40.0; 60.0; 80.0 |])

let test_regions_missing_raises () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Regions.positions ~within:[| 1; 2 |] [| 3 |]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "wavelet"
    [
      ( "regions",
        [
          Alcotest.test_case "positions" `Quick test_regions_positions;
          Alcotest.test_case "embed/gather" `Quick test_regions_embed_gather;
          Alcotest.test_case "missing raises" `Quick test_regions_missing_raises;
        ] );
      ( "combine",
        [
          Alcotest.test_case "square groups separated" `Quick test_groups_well_separated;
          Alcotest.test_case "child groups distinct parents" `Quick test_child_groups_distinct_parents;
        ] );
      ( "basis",
        [
          Alcotest.test_case "column count" `Quick test_q_column_count;
          Alcotest.test_case "orthogonal" `Quick test_q_orthogonal;
          Alcotest.test_case "sparse" `Quick test_q_sparse;
          Alcotest.test_case "moments vanish" `Quick test_moments_vanish;
          Alcotest.test_case "V+W spans square" `Quick test_v_plus_w_spans_square;
          Alcotest.test_case "morton order" `Quick test_morton_order;
          Alcotest.test_case "transformed matrix decays" `Slow test_transformed_matrix_decays;
          Alcotest.test_case "factored transform matches" `Quick test_factored_transform_matches_explicit;
          Alcotest.test_case "factored storage linear" `Quick test_factored_storage_linear;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "accuracy" `Slow test_extraction_accuracy;
          Alcotest.test_case "sparsity" `Slow test_extraction_sparsity;
          Alcotest.test_case "solve reduction" `Slow test_solve_reduction;
          Alcotest.test_case "combine matches direct" `Slow test_combine_matches_direct;
          Alcotest.test_case "threshold tradeoff" `Slow test_threshold_trades_accuracy_for_sparsity;
          Alcotest.test_case "beats naive thresholding" `Slow test_wavelet_beats_naive_thresholding;
          Alcotest.test_case "apply consistent" `Slow test_repr_apply_matches_dense;
        ] );
    ]
