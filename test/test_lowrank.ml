(* Tests for the low-rank method (thesis Chapter 4): the multilevel
   row-basis representation (phase 1) and the wavelet-structured
   Q G_w Q' representation (phase 2). *)

open La
module Blackbox = Substrate.Blackbox
module Profile = Substrate.Profile
module Quadtree = Geometry.Quadtree
open Sparsify

let rng = Rng.create 31415

(* Alternating-size contacts — the layout class where the wavelet method
   fails and the low-rank method shines (thesis Example 3 / low-rank
   Example 2). *)
let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:16 ()

let g_exact =
  lazy
    (let profile = Profile.thesis_default () in
     let solver = Eigsolver.Eig_solver.create ~tol:1e-10 profile layout ~panels_per_side:64 in
     Blackbox.extract_dense (Eigsolver.Eig_solver.blackbox solver))

let tree = lazy (Quadtree.create ~max_level:3 layout)

let rowbasis =
  lazy
    (let bb = Blackbox.of_dense (Lazy.force g_exact) in
     Rowbasis.build (Lazy.force tree) layout bb)

let relative_apply_error rb g =
  (* Worst relative 2-norm error of the represented operator over a few
     random vectors. *)
  let apply_rb = Subcouple_op.apply (Rowbasis.op rb) in
  let worst = ref 0.0 in
  for _ = 1 to 5 do
    let v = Rng.gaussian_array rng 256 in
    let exact = Mat.gemv g v in
    let approx = apply_rb v in
    worst := Float.max !worst (Vec.norm2 (Vec.sub approx exact) /. Vec.norm2 exact)
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Phase 1 *)

let test_row_basis_orthonormal () =
  let rb = Lazy.force rowbasis in
  let checked = ref 0 in
  for level = 2 to 3 do
    let nsq = Quadtree.side_count level in
    for iy = 0 to nsq - 1 do
      for ix = 0 to nsq - 1 do
        match Rowbasis.find rb ~level ~ix ~iy with
        | None -> ()
        | Some d ->
          let v = d.Rowbasis.v in
          if Mat.cols v > 0 then begin
            incr checked;
            let defect = Mat.max_abs (Mat.sub (Mat.mul (Mat.transpose v) v) (Mat.identity (Mat.cols v))) in
            Alcotest.(check bool) "orthonormal" true (defect < 1e-8)
          end
      done
    done
  done;
  Alcotest.(check bool) "some bases" true (!checked > 10)

let test_row_basis_captures_interaction () =
  (* The defining property: G(I_s, s)(I - V_s V_s') is small (thesis
     eq. (4.6)). *)
  let rb = Lazy.force rowbasis in
  let g = Lazy.force g_exact in
  let t = Lazy.force tree in
  let level = 3 and ix = 2 and iy = 3 in
  match Rowbasis.find rb ~level ~ix ~iy with
  | None -> Alcotest.fail "square unexpectedly empty"
  | Some d ->
    let inter = Quadtree.region_contacts t ~level (Quadtree.interactive_squares ~level ~ix ~iy) in
    let block = Mat.select g ~row_idx:inter ~col_idx:d.Rowbasis.contacts in
    let v = d.Rowbasis.v in
    let projector = Mat.sub (Mat.identity (Mat.cols block)) (Mat.mul v (Mat.transpose v)) in
    let leak = Mat.frobenius (Mat.mul block projector) /. Mat.frobenius block in
    Alcotest.(check bool) (Printf.sprintf "leak %.2e" leak) true (leak < 0.02)

let test_apply_accuracy () =
  let err = relative_apply_error (Lazy.force rowbasis) (Lazy.force g_exact) in
  Alcotest.(check bool) (Printf.sprintf "apply rel err %.2e" err) true (err < 0.01)

let test_apply_solve_reduction () =
  let rb = Lazy.force rowbasis in
  Alcotest.(check bool)
    (Printf.sprintf "%d solves for 256 contacts" (Rowbasis.solves rb))
    true
    (Rowbasis.solves rb < 256)

let test_symmetric_refinement_improves_accuracy () =
  (* Thesis §4.3.1: the weaker assumption (4.9) with refinement (4.16) gave
     "a dramatic improvement in accuracy". *)
  let g = Lazy.force g_exact in
  let t = Lazy.force tree in
  let bb1 = Blackbox.of_dense g in
  let with_ref = Rowbasis.build ~symmetric_refinement:true t layout bb1 in
  let bb2 = Blackbox.of_dense g in
  let without_ref = Rowbasis.build ~symmetric_refinement:false t layout bb2 in
  let e_with = relative_apply_error with_ref g in
  let e_without = relative_apply_error without_ref g in
  Alcotest.(check bool)
    (Printf.sprintf "with %.2e < without %.2e" e_with e_without)
    true
    (e_with < e_without)

(* ------------------------------------------------------------------ *)
(* Phase 2 *)

let phase2 = lazy (Lowrank.build (Lazy.force rowbasis))
let repr = lazy (Lowrank.representation (Lazy.force phase2))

let test_q_orthogonal () =
  let r = Lazy.force repr in
  let defect = Repr.orthogonality_defect r in
  Alcotest.(check bool) (Printf.sprintf "defect %.2e" defect) true (defect < 1e-8)

let test_q_sparse () =
  let r = Lazy.force repr in
  Alcotest.(check bool)
    (Printf.sprintf "Q sparsity %.2f" (Repr.sparsity_q r))
    true
    (Repr.sparsity_q r > 4.0)

let test_basis_dimensions_telescope () =
  (* Per square, U and T column counts sum to the children's U counts
     (or the contact count on the finest level), so Q ends square. *)
  let p2 = Lazy.force phase2 in
  match Lowrank.find p2 ~level:2 ~ix:0 ~iy:0 with
  | None -> Alcotest.fail "square empty"
  | Some sq ->
    let child_u = ref 0 in
    List.iter
      (fun (cx, cy) ->
        match Lowrank.find p2 ~level:3 ~ix:cx ~iy:cy with
        | Some c -> child_u := !child_u + Mat.cols c.Lowrank.u
        | None -> ())
      (Quadtree.children_coords ~ix:0 ~iy:0);
    Alcotest.(check int) "telescoping" !child_u (Mat.cols sq.Lowrank.u + Mat.cols sq.Lowrank.t)

let test_representation_accuracy () =
  let err = Metrics.error_dense ~exact:(Lazy.force g_exact) ~approx:(Repr.to_dense (Lazy.force repr)) in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.2f%%" (100.0 *. err.Metrics.max_rel_error))
    true
    (err.Metrics.max_rel_error < 0.15)

let test_representation_solve_reduction () =
  let r = Lazy.force repr in
  Alcotest.(check bool) (Printf.sprintf "%d solves" r.Repr.solves) true (r.Repr.solves < 256)

let test_lowrank_beats_wavelet_on_mixed_sizes () =
  (* The headline claim (thesis Tables 4.1/4.2): on alternating-size
     contacts the wavelet method's accuracy collapses (47% max rel error in
     the thesis) while the low-rank method stays accurate (5.7%). *)
  let g = Lazy.force g_exact in
  let bb = Blackbox.of_dense g in
  let wavelet_repr = Wavelet.extract (Wavelet.create ~p:2 ~max_level:2 layout) bb in
  let err_w = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense wavelet_repr) in
  let err_lr = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense (Lazy.force repr)) in
  Alcotest.(check bool)
    (Printf.sprintf "low-rank %.1f%% much better than wavelet %.1f%%"
       (100.0 *. err_lr.Metrics.max_rel_error) (100.0 *. err_w.Metrics.max_rel_error))
    true
    (err_lr.Metrics.max_rel_error < 0.5 *. err_w.Metrics.max_rel_error)

let test_thresholded_representation () =
  let g = Lazy.force g_exact in
  let thr = Repr.threshold (Lazy.force repr) ~target:6.0 in
  let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense thr) in
  Alcotest.(check bool) "sparser" true (Repr.nnz_gw thr < Repr.nnz_gw (Lazy.force repr));
  Alcotest.(check bool)
    (Printf.sprintf "frac > 10%%: %.3f" err.Metrics.frac_above_10pct)
    true
    (err.Metrics.frac_above_10pct < 0.10)

let test_interaction_block_accuracy () =
  (* The pair formula (4.16) reproduces exact interaction blocks between
     well-separated squares. *)
  let rb = Lazy.force rowbasis in
  let g = Lazy.force g_exact in
  let t = Lazy.force tree in
  (* (3,3) is interactive to (1,1): distance 2, same parent neighborhood. *)
  let src = Option.get (Rowbasis.find rb ~level:3 ~ix:1 ~iy:1) in
  let dst = Option.get (Rowbasis.find rb ~level:3 ~ix:3 ~iy:3) in
  Alcotest.(check bool) "pair is interactive" true
    (List.mem (3, 3) (Quadtree.interactive_squares ~level:3 ~ix:1 ~iy:1));
  let block =
    Mat.select g ~row_idx:dst.Rowbasis.contacts ~col_idx:src.Rowbasis.contacts
  in
  ignore t;
  let worst = ref 0.0 in
  for trial = 0 to 3 do
    let x = Rng.gaussian_array (Rng.create (100 + trial)) (Array.length src.Rowbasis.contacts) in
    let exact = Mat.gemv block x in
    let approx = Rowbasis.interaction_block rb ~src ~dst x in
    worst := Float.max !worst (Vec.norm2 (Vec.sub approx exact) /. Vec.norm2 exact)
  done;
  Alcotest.(check bool) (Printf.sprintf "block rel err %.2e" !worst) true (!worst < 0.01)

let test_robust_to_full_jitter () =
  (* The operator-adapted basis shrugs off placement irregularity that
     destroys the wavelet method (ablation A4). *)
  let jl = Geometry.Layout.irregular ~size:128.0 ~per_side:16 ~fill:0.4 ~jitter:1.0 (Rng.create 7) () in
  let profile = Profile.thesis_default () in
  let solver = Eigsolver.Eig_solver.create ~tol:1e-9 profile jl ~panels_per_side:64 in
  let g = Blackbox.extract_dense (Eigsolver.Eig_solver.blackbox solver) in
  let repr = Lowrank.extract ~max_level:3 jl (Blackbox.of_dense g) in
  let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
  Alcotest.(check bool)
    (Printf.sprintf "jittered max err %.2f%%" (100.0 *. err.Metrics.max_rel_error))
    true
    (err.Metrics.max_rel_error < 0.10)

let test_more_samples_more_accuracy () =
  (* The thesis's §4.3.3 option: extra sample vectors per square cost more
     solves but cannot hurt (and usually help) the row bases. *)
  let g = Lazy.force g_exact in
  let t = Lazy.force tree in
  let run k =
    let bb = Blackbox.of_dense g in
    let rb = Rowbasis.build ~samples_per_square:k t layout bb in
    (relative_apply_error rb g, Rowbasis.solves rb)
  in
  let e1, s1 = run 1 in
  let e3, s3 = run 3 in
  Alcotest.(check bool) (Printf.sprintf "more solves (%d > %d)" s3 s1) true (s3 > s1);
  Alcotest.(check bool)
    (Printf.sprintf "accuracy not worse (%.2e vs %.2e)" e3 e1)
    true
    (e3 < 2.0 *. e1)

(* ------------------------------------------------------------------ *)
(* Pairwise (IES3-style) baseline, §4.5 *)

let test_pairwise_accuracy () =
  let g = Lazy.force g_exact in
  let pw = Pairwise.build (Lazy.force tree) g in
  let err = Metrics.error_dense ~exact:g ~approx:(Pairwise.to_dense pw) in
  Alcotest.(check bool)
    (Printf.sprintf "pairwise max err %.2f%%" (100.0 *. err.Metrics.max_rel_error))
    true
    (err.Metrics.max_rel_error < 0.15)

let test_pairwise_compresses () =
  let g = Lazy.force g_exact in
  let pw = Pairwise.build (Lazy.force tree) g in
  Alcotest.(check bool) "fewer floats than dense" true (Pairwise.storage_floats pw < 256 * 256);
  Alcotest.(check bool) "has blocks" true (Pairwise.block_count pw > 100)

let test_pairwise_apply_matches_dense () =
  let g = Lazy.force g_exact in
  let pw = Pairwise.build (Lazy.force tree) g in
  let v = Rng.gaussian_array rng 256 in
  Alcotest.(check bool) "apply = densified" true
    (Vec.approx_equal ~tol:1e-8
       (Subcouple_op.apply (Pairwise.op pw) v)
       (Mat.gemv (Pairwise.to_dense pw) v))

let test_pipeline_extract () =
  (* The one-call driver produces the same kind of representation. *)
  let g = Lazy.force g_exact in
  let bb = Blackbox.of_dense g in
  let r = Lowrank.extract ~max_level:3 layout bb in
  Alcotest.(check int) "size" 256 r.Repr.n;
  let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense r) in
  Alcotest.(check bool)
    (Printf.sprintf "pipeline max rel err %.2f%%" (100.0 *. err.Metrics.max_rel_error))
    true
    (err.Metrics.max_rel_error < 0.15)

let () =
  Alcotest.run "lowrank"
    [
      ( "phase1",
        [
          Alcotest.test_case "row bases orthonormal" `Slow test_row_basis_orthonormal;
          Alcotest.test_case "row basis captures interaction" `Slow test_row_basis_captures_interaction;
          Alcotest.test_case "apply accuracy" `Slow test_apply_accuracy;
          Alcotest.test_case "solve reduction" `Slow test_apply_solve_reduction;
          Alcotest.test_case "symmetric refinement helps" `Slow test_symmetric_refinement_improves_accuracy;
          Alcotest.test_case "extra samples" `Slow test_more_samples_more_accuracy;
        ] );
      ( "phase2",
        [
          Alcotest.test_case "Q orthogonal" `Slow test_q_orthogonal;
          Alcotest.test_case "Q sparse" `Slow test_q_sparse;
          Alcotest.test_case "dimensions telescope" `Slow test_basis_dimensions_telescope;
          Alcotest.test_case "accuracy" `Slow test_representation_accuracy;
          Alcotest.test_case "solve reduction" `Slow test_representation_solve_reduction;
          Alcotest.test_case "beats wavelet on mixed sizes" `Slow test_lowrank_beats_wavelet_on_mixed_sizes;
          Alcotest.test_case "thresholded" `Slow test_thresholded_representation;
          Alcotest.test_case "interaction block" `Slow test_interaction_block_accuracy;
          Alcotest.test_case "robust to jitter" `Slow test_robust_to_full_jitter;
          Alcotest.test_case "pipeline extract" `Slow test_pipeline_extract;
        ] );
      ( "pairwise",
        [
          Alcotest.test_case "accuracy" `Slow test_pairwise_accuracy;
          Alcotest.test_case "compresses" `Slow test_pairwise_compresses;
          Alcotest.test_case "apply matches dense" `Slow test_pairwise_apply_matches_dense;
        ] );
    ]
