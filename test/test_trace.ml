(* Tests for the solver-diagnostic bugfixes and the lib/trace subsystem.

   Regression side: the non-finite reporter must never crash on a clean
   vector, Krylov.cg must report the *true* residual after breakdown or
   max-iteration exit, and Checkpoint.create must refuse to clobber a short
   non-checkpoint file.

   Tracing side: span nesting, per-domain merge determinism, the
   disabled-mode no-op, Chrome trace_event JSON validity, and the
   load-bearing guarantee that tracing never changes extraction results. *)

open La
module Blackbox = Substrate.Blackbox
module Checkpoint = Substrate.Checkpoint
open Sparsify

let rng = Rng.create 271828

let bitwise_equal_mat a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get a i j))
             (Int64.bits_of_float (Mat.get b i j)))
      then ok := false
    done
  done;
  !ok

let dense_g n =
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set g i j (Rng.gaussian rng)
    done;
    Mat.set g i i (Mat.get g i i +. 10.0)
  done;
  g

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

(* Run [f] with tracing enabled and a clean slate, then always disable and
   clear again so no state leaks into the next test. *)
let with_tracing f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Bugfix: Blackbox.non_finite_reason on an all-finite vector *)

let test_non_finite_reason_all_finite () =
  (* The not-found scan used to index v.(-1): the diagnostic itself raised
     Invalid_argument and masked the real failure. *)
  let reason = Blackbox.non_finite_reason [| 1.0; -2.5; 0.0 |] in
  Alcotest.(check bool)
    "names the clean re-scan" true
    (contains_substring ~sub:"all 3 components finite" reason)

let test_non_finite_reason_names_component () =
  let reason = Blackbox.non_finite_reason [| 1.0; 2.0; Float.nan; 4.0 |] in
  Alcotest.(check bool)
    "names the bad component" true
    (contains_substring ~sub:"component 2" reason)

(* ------------------------------------------------------------------ *)
(* Bugfix: Krylov.cg residual semantics *)

let true_residual ~apply b (r : Krylov.result) = Vec.norm2 (Vec.sub b (apply r.Krylov.x))

let mismatch_expected ~recurrence ~true_norm =
  true_norm > 10.0 *. recurrence || recurrence > 10.0 *. true_norm

(* Near-singular SPD operator: a Hilbert matrix. With an unreachable
   tolerance the iteration exits at max_iter, where the recurrence value
   can no longer be trusted. *)
let test_cg_max_iter_reports_true_residual () =
  let n = 12 in
  let h = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set h i j (1.0 /. float_of_int (i + j + 1))
    done
  done;
  let apply v = Mat.gemv h v in
  let b = Array.make n 1.0 in
  let r = Krylov.cg ~tol:1e-30 ~max_iter:25 ~apply b in
  Alcotest.(check bool) "did not converge" false r.Krylov.converged;
  let tr = true_residual ~apply b r in
  Alcotest.(check bool)
    "residual_norm is the recomputed true residual" true
    (Int64.equal (Int64.bits_of_float r.Krylov.residual_norm) (Int64.bits_of_float tr));
  Alcotest.(check bool)
    "mismatch flag follows the 10x rule" true
    (Bool.equal r.Krylov.residual_mismatch
       (mismatch_expected ~recurrence:r.Krylov.recurrence_residual ~true_norm:tr))

let test_cg_breakdown_reports_true_residual () =
  (* Indefinite diagonal: p' A p = 0 on the very first direction. *)
  let apply v = [| v.(0); -.v.(1) |] in
  let b = [| 1.0; 1.0 |] in
  let r = Krylov.cg ~tol:1e-12 ~apply b in
  Alcotest.(check bool) "breakdown flagged" true r.Krylov.breakdown;
  let tr = true_residual ~apply b r in
  Alcotest.(check bool)
    "residual_norm is the recomputed true residual" true
    (Int64.equal (Int64.bits_of_float r.Krylov.residual_norm) (Int64.bits_of_float tr));
  (* ||b - A x|| = ||b|| here, far above tol * ||b||: the relaxed
     breakdown acceptance must judge the true residual and reject. *)
  Alcotest.(check bool) "not accepted at relaxed threshold" false r.Krylov.converged

let test_cg_converged_keeps_recurrence_residual () =
  (* Symmetric diagonally dominant, hence SPD — CG converges cleanly. *)
  let n = 8 in
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let x = if i = j then 10.0 else Rng.gaussian rng in
      Mat.set g i j x;
      Mat.set g j i x
    done
  done;
  let apply v = Mat.gemv g v in
  let b = Array.init 8 (fun i -> float_of_int (i + 1)) in
  let r = Krylov.cg ~tol:1e-10 ~apply b in
  Alcotest.(check bool) "converged" true r.Krylov.converged;
  Alcotest.(check bool)
    "recurrence residual is reported unchanged" true
    (Int64.equal
       (Int64.bits_of_float r.Krylov.residual_norm)
       (Int64.bits_of_float r.Krylov.recurrence_residual));
  Alcotest.(check bool) "no mismatch on the happy path" false r.Krylov.residual_mismatch

(* ------------------------------------------------------------------ *)
(* Bugfix: Checkpoint.create must not clobber short non-checkpoint files *)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_checkpoint_refuses_short_file () =
  let path = Filename.temp_file "subckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "hello";
      (* 5 bytes, shorter than the 9-byte magic: used to be treated as a
         fresh checkpoint and truncated away. *)
      (match Checkpoint.create path with
      | ck ->
        Checkpoint.close ck;
        Alcotest.fail "expected Corrupt for a 5-byte non-checkpoint file"
      | exception Checkpoint.Corrupt _ -> ());
      Alcotest.(check string) "file left untouched" "hello" (read_file path))

let test_checkpoint_accepts_empty_file () =
  let path = Filename.temp_file "subckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "";
      let ck = Checkpoint.create path in
      Checkpoint.close ck;
      Alcotest.(check int) "no stages" 0 (Checkpoint.stages_on_disk ck);
      Alcotest.(check bool)
        "magic written" true
        (String.length (read_file path) >= 9))

let test_checkpoint_still_rejects_bad_magic () =
  let path = Filename.temp_file "subckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "NOTACKPTFILE-0123456789";
      (match Checkpoint.create path with
      | ck ->
        Checkpoint.close ck;
        Alcotest.fail "expected Corrupt for a bad-magic file"
      | exception Checkpoint.Corrupt _ -> ());
      Alcotest.(check string) "file left untouched" "NOTACKPTFILE-0123456789" (read_file path))

(* ------------------------------------------------------------------ *)
(* Tracing: span nesting *)

let test_span_nesting () =
  with_tracing (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 42)));
      let evs = Trace.events () in
      let find name = List.find (fun (e : Trace.event) -> String.equal e.Trace.name name) evs in
      let outer = find "outer" and inner = find "inner" in
      Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
      Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
      Alcotest.(check bool)
        "inner starts at/after outer" true
        (Int64.compare inner.Trace.t0_ns outer.Trace.t0_ns >= 0);
      Alcotest.(check bool)
        "inner ends at/before outer" true
        (Int64.compare
           (Int64.add inner.Trace.t0_ns inner.Trace.dur_ns)
           (Int64.add outer.Trace.t0_ns outer.Trace.dur_ns)
        <= 0))

let test_span_survives_exception () =
  with_tracing (fun () ->
      (try Trace.with_span "raising" (fun () -> failwith "boom") with Failure _ -> ());
      let evs = Trace.events () in
      Alcotest.(check int) "span recorded on the exceptional exit" 1 (List.length evs);
      (* Depth restored: a following span sits at depth 0 again. *)
      Trace.with_span "after" Fun.id;
      let after =
        List.find (fun (e : Trace.event) -> String.equal e.Trace.name "after") (Trace.events ())
      in
      Alcotest.(check int) "depth restored after exception" 0 after.Trace.depth)

(* ------------------------------------------------------------------ *)
(* Tracing: per-domain recording and merge determinism *)

let test_multi_domain_merge () =
  with_tracing (fun () ->
      let spans_per_domain = 20 in
      let dist = Trace.dist "test.value" in
      let body i () =
        for k = 0 to spans_per_domain - 1 do
          Trace.with_span "test.work" (fun () -> Trace.observe dist (float_of_int (i + k)))
        done
      in
      let domains = Array.init 4 (fun i -> Domain.spawn (body i)) in
      Array.iter Domain.join domains;
      let s = Trace.summary () in
      let span_row = List.find (fun a -> String.equal a.Trace.agg_name "test.work") s.Trace.spans in
      let dist_row = List.find (fun a -> String.equal a.Trace.agg_name "test.value") s.Trace.dists in
      Alcotest.(check int) "every span merged" (4 * spans_per_domain) span_row.Trace.count;
      Alcotest.(check int) "every sample merged" (4 * spans_per_domain) dist_row.Trace.count;
      (* The sample sum is schedule-independent: sum over i,k of (i+k). *)
      let expected = ref 0.0 in
      for i = 0 to 3 do
        for k = 0 to spans_per_domain - 1 do
          expected := !expected +. float_of_int (i + k)
        done
      done;
      Alcotest.(check (float 1e-9)) "deterministic sample total" !expected dist_row.Trace.total;
      (* Events carry at least two distinct recording domains (the spawned
         domains all traced into their own buffers). *)
      let domains_seen =
        List.sort_uniq Int.compare
          (List.map (fun (e : Trace.event) -> e.Trace.domain) (Trace.events ()))
      in
      Alcotest.(check bool) "several recording domains" true (List.length domains_seen >= 2))

let test_summary_sorted_and_repeatable () =
  with_tracing (fun () ->
      Trace.with_span "b.span" Fun.id;
      Trace.with_span "a.span" Fun.id;
      Trace.with_span "a.span" Fun.id;
      let s1 = Trace.summary () in
      let s2 = Trace.summary () in
      let names s = List.map (fun a -> a.Trace.agg_name) s.Trace.spans in
      Alcotest.(check (list string)) "name-sorted" [ "a.span"; "b.span" ] (names s1);
      Alcotest.(check (list string)) "repeatable" (names s1) (names s2);
      let counts s = List.map (fun a -> a.Trace.count) s.Trace.spans in
      Alcotest.(check (list int)) "counts" [ 2; 1 ] (counts s1))

(* ------------------------------------------------------------------ *)
(* Tracing: disabled mode is a no-op *)

let test_disabled_mode_records_nothing () =
  Trace.reset ();
  Trace.set_enabled false;
  let c = Trace.counter "test.disabled_counter" in
  let d = Trace.dist "test.disabled_dist" in
  Trace.with_span "test.disabled_span" (fun () ->
      Trace.incr c;
      Trace.observe d 1.0);
  Alcotest.(check int) "no events recorded" 0 (Trace.event_count ());
  let s = Trace.summary () in
  Alcotest.(check int) "no span rows" 0 (List.length s.Trace.spans);
  Alcotest.(check int) "no dist rows" 0 (List.length s.Trace.dists);
  Alcotest.(check int)
    "counter untouched" 0
    (List.assoc "test.disabled_counter" s.Trace.counters)

let test_disabled_mode_preserves_results () =
  (* The with_span wrapper must be semantically invisible either way. *)
  let f () = 1 + 2 in
  Trace.set_enabled false;
  let off = Trace.with_span "x" f in
  with_tracing (fun () ->
      let on = Trace.with_span "x" f in
      Alcotest.(check int) "same result" off on)

(* ------------------------------------------------------------------ *)
(* Tracing: Chrome trace_event JSON validity *)

(* A tiny recursive-descent JSON parser — enough to validate structure
   without adding a JSON dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail_at msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail_at (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail_at "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'u' ->
          (* skip the 4 hex digits; codepoint fidelity is not under test *)
          advance ();
          advance ();
          advance ();
          advance ()
        | Some c -> Buffer.add_char b c
        | None -> fail_at "unterminated escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail_at "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if (match peek () with Some '}' -> true | _ -> false) then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail_at "expected , or }"
        in
        J_obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if (match peek () with Some ']' -> true | _ -> false) then begin
        advance ();
        J_arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail_at "expected , or ]"
        in
        J_arr (elements [])
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail_at "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail_at "trailing garbage";
  v

let field obj key =
  match obj with
  | J_obj kvs -> List.assoc_opt key kvs
  | _ -> None

let test_chrome_json_valid () =
  with_tracing (fun () ->
      let d = Trace.dist "test.samples" in
      Trace.with_span "phase \"quoted\"\n" (fun () ->
          Trace.with_span "inner" (fun () -> Trace.observe d 2.5));
      let doc = parse_json (Trace.chrome_string ()) in
      let events =
        match field doc "traceEvents" with
        | Some (J_arr evs) -> evs
        | _ -> Alcotest.fail "missing traceEvents array"
      in
      Alcotest.(check int) "three events" 3 (List.length events);
      List.iter
        (fun ev ->
          (match field ev "name" with
          | Some (J_str s) -> Alcotest.(check bool) "non-empty name" true (String.length s > 0)
          | _ -> Alcotest.fail "event without string name");
          (match field ev "ph" with
          | Some (J_str ("X" | "C")) -> ()
          | _ -> Alcotest.fail "event ph must be X or C");
          (match field ev "ts" with
          | Some (J_num ts) -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
          | _ -> Alcotest.fail "event without numeric ts");
          (match (field ev "pid", field ev "tid") with
          | Some (J_num _), Some (J_num _) -> ()
          | _ -> Alcotest.fail "event without pid/tid");
          match field ev "ph" with
          | Some (J_str "X") -> (
            (match field ev "dur" with
            | Some (J_num dur) -> Alcotest.(check bool) "dur >= 0" true (dur >= 0.0)
            | _ -> Alcotest.fail "X event without dur");
            match field ev "args" with
            | Some args -> (
              match field args "depth" with
              | Some (J_num _) -> ()
              | _ -> Alcotest.fail "X event without args.depth")
            | None -> Alcotest.fail "X event without args")
          | _ -> (
            match field ev "args" with
            | Some args -> (
              match field args "value" with
              | Some (J_num v) -> Alcotest.(check (float 0.0)) "sample value" 2.5 v
              | _ -> Alcotest.fail "C event without args.value")
            | None -> Alcotest.fail "C event without args"))
        events)

(* ------------------------------------------------------------------ *)
(* Tracing never changes results *)

let test_traced_extraction_bit_identical () =
  let layout = Geometry.Layout.alternating ~size:128.0 ~per_side:8 () in
  let g = dense_g (Geometry.Layout.n_contacts layout) in
  let extract ~jobs = Repr.to_dense (Lowrank.extract ~seed:5 ~jobs layout (Blackbox.of_dense g)) in
  Trace.set_enabled false;
  let off1 = extract ~jobs:1 in
  let off4 = extract ~jobs:4 in
  let on1, on4 = with_tracing (fun () -> (extract ~jobs:1, extract ~jobs:4)) in
  Alcotest.(check bool) "untraced jobs 1 vs 4" true (bitwise_equal_mat off1 off4);
  Alcotest.(check bool) "traced vs untraced, jobs 1" true (bitwise_equal_mat off1 on1);
  Alcotest.(check bool) "traced vs untraced, jobs 4" true (bitwise_equal_mat off1 on4)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "bugfix-diagnostics",
        [
          Alcotest.test_case "non_finite_reason: all-finite" `Quick test_non_finite_reason_all_finite;
          Alcotest.test_case "non_finite_reason: names component" `Quick
            test_non_finite_reason_names_component;
          Alcotest.test_case "cg: max-iter exit reports true residual" `Quick
            test_cg_max_iter_reports_true_residual;
          Alcotest.test_case "cg: breakdown reports true residual" `Quick
            test_cg_breakdown_reports_true_residual;
          Alcotest.test_case "cg: converged keeps recurrence residual" `Quick
            test_cg_converged_keeps_recurrence_residual;
          Alcotest.test_case "checkpoint: refuses 5-byte file" `Quick
            test_checkpoint_refuses_short_file;
          Alcotest.test_case "checkpoint: accepts empty file" `Quick
            test_checkpoint_accepts_empty_file;
          Alcotest.test_case "checkpoint: rejects bad magic" `Quick
            test_checkpoint_still_rejects_bad_magic;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span survives exception" `Quick test_span_survives_exception;
          Alcotest.test_case "multi-domain merge" `Quick test_multi_domain_merge;
          Alcotest.test_case "summary sorted and repeatable" `Quick
            test_summary_sorted_and_repeatable;
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_disabled_mode_records_nothing;
          Alcotest.test_case "disabled mode preserves results" `Quick
            test_disabled_mode_preserves_results;
          Alcotest.test_case "chrome trace_event JSON valid" `Quick test_chrome_json_valid;
          Alcotest.test_case "traced extraction bit-identical" `Quick
            test_traced_extraction_bit_identical;
        ] );
    ]
